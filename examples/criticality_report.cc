/**
 * @file
 * Criticality stacks for a benchmark run: which thread should a
 * criticality-aware (e.g. per-core DVFS) policy accelerate?
 *
 *   $ example_criticality_report [benchmark] [freq-mhz]
 *
 * Builds the Du Bois-style criticality stack from the same epoch
 * stream DEP uses (src/pred/criticality.hh) and prints it next to
 * per-thread busy time — the difference between the two columns is
 * exactly the serialization the naive M+CRIT predictor cannot see.
 */

#include <cstdlib>
#include <iostream>

#include "dvfs.hh"

using namespace dvfs;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "avrora";
    const auto freq = Frequency::mhz(
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 1000);

    auto params = wl::benchmarkByName(name);
    auto out = exp::runFixed(params, freq);
    pred::CriticalityStack stack(out.record);

    std::cout << "criticality stack for '" << name << "' at "
              << freq.toString() << " (" << out.record.epochs.size()
              << " epochs over " << ticksToMs(out.totalTime)
              << " ms)\n\n";

    exp::Table table({"thread", "criticality (ms)", "share", "busy (ms)",
                      "serialization"});
    for (const auto &s : stack.shares()) {
        const auto &summary = out.record.threads.at(s.tid);
        // A thread whose criticality exceeds its equal-share of busy
        // time spends time as the lone runner: it serializes the app.
        double serial = static_cast<double>(s.criticality) /
                        std::max<double>(1.0, summary.totals.busyTime);
        table.addRow({std::to_string(s.tid),
                      exp::Table::fmt(ticksToMs(s.criticality), 3),
                      exp::Table::pct(s.fraction),
                      exp::Table::fmt(ticksToMs(summary.totals.busyTime),
                                      3),
                      exp::Table::fmt(serial, 2)});
    }
    table.print(std::cout);

    std::cout << "\nidle (no thread scheduled): "
              << ticksToMs(stack.idleTime()) << " ms\n"
              << "accounted: " << ticksToMs(stack.accountedTime())
              << " of " << ticksToMs(out.totalTime) << " ms\n"
              << "most critical thread: tid " << stack.mostCritical()
              << "\n";
    return 0;
}
