/**
 * @file
 * Predictor playground: sweep one workload knob and watch how each
 * DVFS predictor's error responds — the fastest way to build intuition
 * for *why* DEP+BURST works.
 *
 *   $ example_predictor_playground [knob] [base-mhz] [target-mhz]
 *
 * knobs:
 *   alloc   — allocation volume per item (store bursts; BURST's turf)
 *   locks   — critical-section probability (DEP's turf)
 *   chains  — pointer-chase depth (CRIT's turf)
 *   overlap — instructions overlapped with misses (hurts STALL most)
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "dvfs.hh"

using namespace dvfs;

namespace {

wl::WorkloadParams
configure(const std::string &knob, std::uint64_t value)
{
    auto p = wl::syntheticSmall(4, 200);
    if (knob == "alloc") {
        p.allocBytesPerItem = value;
        p.allocChunkBytes = std::max<std::uint64_t>(value, 64);
    } else if (knob == "locks") {
        p.lockProb = static_cast<double>(value) / 100.0;
        p.lockHoldInstr = 1200;
        p.numLocks = 1;
    } else if (knob == "chains") {
        p.chainDepth = static_cast<std::uint32_t>(value);
        p.chains = 1;
        p.pHot = 0.1;
        p.pWarm = 0.2;
    } else if (knob == "overlap") {
        p.clusterOverlapInstr = static_cast<std::uint32_t>(value);
    } else {
        fatal("unknown knob '%s' (alloc|locks|chains|overlap)",
              knob.c_str());
    }
    return p;
}

std::vector<std::uint64_t>
sweepValues(const std::string &knob)
{
    if (knob == "alloc")
        return {0, 512, 2048, 4096, 8192};
    if (knob == "locks")
        return {0, 20, 40, 60, 80};
    if (knob == "chains")
        return {1, 2, 4, 6, 8};
    return {0, 500, 1500, 4000, 10000};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string knob = argc > 1 ? argv[1] : "alloc";
    const auto base = Frequency::mhz(
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 1000);
    const auto target = Frequency::mhz(
        argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 4000);

    auto predictors = pred::PredictorRegistry::instance().figure3Set();

    std::vector<std::string> headers = {knob, "speedup"};
    for (const auto &p : predictors)
        headers.push_back(p->name());
    exp::Table table(headers);

    std::cout << "sweeping '" << knob << "', predicting "
              << base.toString() << " -> " << target.toString() << "\n\n";

    for (std::uint64_t v : sweepValues(knob)) {
        auto params = configure(knob, v);
        auto base_run = exp::runFixed(params, base);
        auto target_run = exp::runFixed(params, target);

        std::vector<std::string> row = {
            std::to_string(v),
            exp::Table::fmt(static_cast<double>(base_run.totalTime) /
                                static_cast<double>(target_run.totalTime),
                            2)};
        for (const auto &p : predictors) {
            double e = pred::Predictor::relativeError(
                p->predict(base_run.record, target), target_run.totalTime);
            row.push_back(exp::Table::pct(e));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
