/**
 * @file
 * GC pause study: how stop-the-world collections shape DVFS
 * sensitivity — the phase behaviour that lets the dynamic energy
 * manager beat a fixed frequency (paper Section VI / Figure 7).
 *
 *   $ example_gc_pause_study [benchmark]
 *
 * Runs the benchmark once per frequency and decomposes the time into
 * mutator vs. collector, showing that GC time barely scales with the
 * core clock (it is memory-bound: trace chains + copy bursts) while
 * mutator time does.
 */

#include <iostream>

#include "dvfs.hh"

using namespace dvfs;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "xalan";
    auto params = wl::benchmarkByName(name);

    std::cout << "GC pause study for '" << name << "' ("
              << (params.memoryIntensive ? "memory" : "compute")
              << "-intensive)\n\n";

    exp::Table table({"frequency", "total (ms)", "mutator (ms)",
                      "GC (ms)", "GC share", "GCs",
                      "mutator speedup", "GC speedup"});

    double mut_1ghz = 0.0, gc_1ghz = 0.0;
    for (std::uint32_t mhz : {1000, 2000, 3000, 4000}) {
        auto out = exp::runFixed(params, Frequency::mhz(mhz));
        double total = ticksToMs(out.totalTime);
        double gc = ticksToMs(out.gcTime);
        double mut = total - gc;
        if (mhz == 1000) {
            mut_1ghz = mut;
            gc_1ghz = gc;
        }
        table.addRow({Frequency::mhz(mhz).toString(),
                      exp::Table::fmt(total, 2), exp::Table::fmt(mut, 2),
                      exp::Table::fmt(gc, 2),
                      exp::Table::pct(gc / total),
                      std::to_string(out.collections),
                      exp::Table::fmt(mut_1ghz / mut, 2),
                      gc > 0 ? exp::Table::fmt(gc_1ghz / gc, 2) : "-"});
    }
    table.print(std::cout);

    std::cout << "\nReading guide: the mutator column should speed up "
                 "close to the clock\nratio while the GC column barely "
                 "moves — the collector is paced by DRAM\n(pointer "
                 "chasing + copy bursts), which is exactly why an "
                 "energy manager can\nclock down during collections "
                 "almost for free.\n";
    return 0;
}
