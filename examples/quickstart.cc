/**
 * @file
 * Quickstart: build a small managed multithreaded workload, run it at
 * a base frequency, and use DEP+BURST to predict — then verify — its
 * execution time at a target frequency.
 *
 *   $ example_quickstart [base-mhz] [target-mhz]
 *
 * This is the 60-second tour of the library: workload construction
 * (wl), ground-truth simulation (os/uarch/rt via exp::runFixed), epoch
 * recording (pred::RunRecorder), and prediction (pred::DepPredictor).
 */

#include <cstdlib>
#include <iostream>

#include "dvfs.hh"

using namespace dvfs;

int
main(int argc, char **argv)
{
    const auto base = Frequency::mhz(
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 1000);
    const auto target = Frequency::mhz(
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4000);

    // 1. Describe a workload: 4 threads, managed allocation, locks.
    wl::WorkloadParams params = wl::syntheticSmall(4, 400);
    params.allocBytesPerItem = 2048;
    params.allocChunkBytes = 2048;
    params.lockProb = 0.3;

    // 2. Ground truth at the base frequency. runFixed wires up the
    //    quad-core machine (Table II), the managed runtime with its
    //    parallel collector, and the epoch recorder.
    std::cout << "running '" << params.name << "' at " << base.toString()
              << " ...\n";
    auto base_run = exp::runFixed(params, base);
    std::cout << "  time          : " << ticksToMs(base_run.totalTime)
              << " ms\n  collections   : " << base_run.collections
              << "\n  sync epochs   : " << base_run.record.epochs.size()
              << "\n  energy        : " << base_run.energy.total() * 1000
              << " mJ\n";

    // 3. Predict the target-frequency time from the base run alone.
    pred::DepPredictor depburst({pred::BaseEstimator::Crit, true}, true);
    Tick predicted = depburst.predict(base_run.record, target);
    std::cout << "\nDEP+BURST prediction for " << target.toString()
              << ": " << ticksToMs(predicted) << " ms\n";

    // 4. Verify against a real run at the target frequency.
    auto target_run = exp::runFixed(params, target);
    double error =
        pred::Predictor::relativeError(predicted, target_run.totalTime);
    std::cout << "measured at " << target.toString() << "        : "
              << ticksToMs(target_run.totalTime) << " ms\n"
              << "prediction error          : " << error * 100.0 << "%\n";

    // 5. Compare with the naive baseline.
    pred::MCritPredictor mcrit({pred::BaseEstimator::Crit, false});
    double naive_error = pred::Predictor::relativeError(
        mcrit.predict(base_run.record, target), target_run.totalTime);
    std::cout << "M+CRIT error (baseline)   : " << naive_error * 100.0
              << "%\n";
    return 0;
}
