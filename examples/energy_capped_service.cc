/**
 * @file
 * Scenario: a latency-tolerant managed service wants to cut its energy
 * bill. The operator tolerates a bounded slowdown; the energy manager
 * (Section VI of the paper) picks DVFS states per scheduling quantum
 * using DEP+BURST.
 *
 *   $ example_energy_capped_service [benchmark] [slowdown-percent]
 *
 * Prints the baseline (max-frequency) run, the managed run, the
 * realized slowdown vs. the budget, the energy savings, and the
 * frequency-residency histogram — everything an operator would check
 * before enabling such a governor.
 */

#include <cstdlib>
#include <iostream>
#include <map>

#include "dvfs.hh"

using namespace dvfs;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "lusearch";
    const double budget = (argc > 2 ? std::atof(argv[2]) : 10.0) / 100.0;

    auto params = wl::benchmarkByName(name);
    auto table = power::VfTable::haswell();

    std::cout << "benchmark '" << name << "', slowdown budget "
              << budget * 100 << "%\n\n";

    auto baseline = exp::runFixed(params, table.highest());
    std::cout << "baseline @ " << table.highest().toString() << " : "
              << ticksToMs(baseline.totalTime) << " ms, "
              << baseline.energy.total() * 1000 << " mJ\n";

    mgr::ManagerConfig mc;
    mc.tolerableSlowdown = budget;
    auto managed = exp::runManaged(params, mc, table);

    double slowdown = static_cast<double>(managed.totalTime) /
                          static_cast<double>(baseline.totalTime) -
                      1.0;
    double savings = 1.0 - managed.energy.total() /
                               baseline.energy.total();

    std::cout << "managed                : "
              << ticksToMs(managed.totalTime) << " ms, "
              << managed.energy.total() * 1000 << " mJ\n\n"
              << "realized slowdown      : " << slowdown * 100 << "%"
              << (slowdown <= budget ? "  (within budget)"
                                     : "  (OVER budget)")
              << "\nenergy savings         : " << savings * 100 << "%\n"
              << "average frequency      : " << managed.averageGHz
              << " GHz over " << managed.transitions
              << " DVFS transitions\n\nfrequency residency:\n";

    // Residency histogram from the decision record.
    std::map<std::uint32_t, int> residency;
    for (const auto &d : managed.decisions)
        residency[d.chosen.toMHz()] += 1;
    for (const auto &[mhz, quanta] : residency) {
        std::cout << "  " << Frequency::mhz(mhz).toString() << " : ";
        int bars = quanta * 50 /
                   static_cast<int>(managed.decisions.size());
        for (int i = 0; i < bars; ++i)
            std::cout << '#';
        std::cout << " (" << quanta << " quanta)\n";
    }
    return 0;
}
