#include "exp/experiment.hh"

#include <cctype>
#include <cmath>
#include <memory>

#include "fault/injector.hh"
#include "sim/log.hh"

namespace dvfs::exp {

const char *
simModeName(SimMode m)
{
    switch (m) {
      case SimMode::Exact:
        return "exact";
      case SimMode::Sampled:
        return "sampled";
    }
    return "?";
}

SimMode
parseSimMode(const std::string &name, const std::string &flag)
{
    std::string low = name;
    for (char &c : low)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (low == "exact")
        return SimMode::Exact;
    if (low == "sampled")
        return SimMode::Sampled;
    fatal("%s: unknown simulation mode '%s' (expected exact|sampled)",
          flag.c_str(), name.c_str());
}

FixedRunOutput
runFixed(const wl::WorkloadParams &params, Frequency freq,
         const RunOptions &opts)
{
    os::SystemConfig sys_cfg = wl::defaultSystemConfig(freq);
    sys_cfg.seed = opts.seed;
    wl::BenchInstance inst = wl::buildBenchmark(params, sys_cfg);
    if (opts.mode == SimMode::Sampled)
        inst.sys->enableSampling(opts.sampling);

    pred::RunRecorder rec(*inst.sys, opts.keepEvents);
    inst.sys->addListener(&rec);

    power::VfTable table = power::VfTable::haswell();
    power::EnergyMeter meter(*inst.sys, table);
    if (opts.measureEnergy)
        meter.attach();

    os::RunResult res = inst.sys->run();
    if (!res.finished)
        fatal("benchmark '%s' did not finish at %s", params.name.c_str(),
              freq.toString().c_str());
    if (opts.measureEnergy)
        meter.finish();

    FixedRunOutput out;
    out.freq = freq;
    out.totalTime = res.totalTime;
    out.record = rec.finalize();
    out.energy = meter.energy();
    out.collections = inst.runtime->collections();
    out.gcTime = inst.runtime->gcTime();
    out.allocatedBytes = inst.runtime->heap().totalAllocated();
    out.totals = inst.sys->totalCounters();
    out.events = res.events;
    out.mode = opts.mode;
    if (const sim::SamplingController *sc = inst.sys->sampling())
        out.sampling = sc->finalStats();
    return out;
}

ManagedRunOutput
runManaged(const wl::WorkloadParams &params,
           const mgr::ManagerConfig &mgr_cfg, const power::VfTable &table,
           const RunOptions &opts)
{
    os::SystemConfig sys_cfg = wl::defaultSystemConfig(table.highest());
    sys_cfg.seed = opts.seed;
    wl::BenchInstance inst = wl::buildBenchmark(params, sys_cfg);
    if (opts.mode == SimMode::Sampled) {
        // The manager's decision epochs are always observed: GC
        // boundaries force detail windows (DVFS transitions force
        // them unconditionally inside System::setFrequency).
        sim::SamplingConfig sc = opts.sampling;
        sc.forceDetailAtGc = true;
        inst.sys->enableSampling(sc);
    }

    pred::RunRecorder rec(*inst.sys, opts.keepEvents);
    inst.sys->addListener(&rec);

    power::EnergyMeter meter(*inst.sys, table);
    if (opts.measureEnergy)
        meter.attach();

    mgr::EnergyManager manager(*inst.sys, rec, table, mgr_cfg);
    manager.attach();

    os::RunResult res = inst.sys->run();
    if (!res.finished)
        fatal("managed run of '%s' did not finish", params.name.c_str());
    if (opts.measureEnergy)
        meter.finish();

    ManagedRunOutput out;
    out.totalTime = res.totalTime;
    out.energy = meter.energy();
    out.decisions = manager.decisions();
    out.collections = inst.runtime->collections();
    out.averageGHz = inst.sys->coreDomain().averageGHz(0, res.totalTime);
    out.transitions = inst.sys->coreDomain().transitions();
    out.mode = opts.mode;
    if (const sim::SamplingController *sc = inst.sys->sampling())
        out.sampling = sc->finalStats();
    return out;
}

HardenedRunOutput
runHardened(const wl::WorkloadParams &params, const power::VfTable &table,
            const HardenedRunOptions &opts)
{
    os::SystemConfig sys_cfg = wl::defaultSystemConfig(table.highest());
    sys_cfg.seed = opts.seed;
    wl::BenchInstance inst = wl::buildBenchmark(params, sys_cfg);

    pred::RunRecorder rec(*inst.sys);
    inst.sys->addListener(&rec);

    fault::FaultPlan plan(opts.faults);
    fault::installFaults(*inst.sys, plan, inst.runtime.get());

    fault::InvariantAuditor auditor(*inst.sys, opts.auditor);
    auditor.observeEpochs(&rec);
    auditor.attach();

    std::unique_ptr<mgr::EnergyManager> manager;
    if (opts.managed) {
        manager = std::make_unique<mgr::EnergyManager>(*inst.sys, rec,
                                                       table, opts.mgrCfg);
        manager->attach();
    }

    os::RunResult res = inst.sys->run();

    HardenedRunOutput out;
    out.totalTime = res.totalTime;
    out.finished = res.finished;
    out.aborted = res.aborted;
    out.abortReason = res.abortReason;
    if (manager) {
        out.decisions = manager->decisions();
        out.fallbacks = manager->fallbacks();
    }
    out.averageGHz = inst.sys->coreDomain().averageGHz(0, res.totalTime);
    out.faultTrace = plan.trace();
    out.faultFingerprint = plan.fingerprint();
    out.faultsInjected = plan.totalInjected();
    out.violations = auditor.violations();
    out.watchdog = auditor.watchdog();
    out.audits = auditor.audits();
    return out;
}

double
meanAbs(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += std::fabs(x);
    return s / static_cast<double>(xs.size());
}

} // namespace dvfs::exp
