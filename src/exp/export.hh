/**
 * @file
 * Machine-readable export of run artifacts.
 *
 * Writes the epoch stream, the raw sync-event trace, per-thread
 * summaries, and energy-manager decisions as CSV so results can be
 * analysed or plotted outside the harness (the binaries' ASCII tables
 * are for humans; these files are for scripts).
 */

#ifndef DVFS_EXP_EXPORT_HH
#define DVFS_EXP_EXPORT_HH

#include <ostream>
#include <vector>

#include "mgr/energy_manager.hh"
#include "pred/record.hh"

namespace dvfs::exp {

/**
 * Epochs as CSV:
 * `epoch,start_ns,end_ns,boundary,stall_tid,active_tids,busy_ns,...`
 * One row per (epoch, active thread) pair, so per-thread columns stay
 * scalar.
 */
void writeEpochsCsv(std::ostream &os, const pred::RunRecord &rec);

/** Raw sync events: `tick_ns,kind,tid,futex`. */
void writeEventsCsv(std::ostream &os, const pred::RunRecord &rec);

/**
 * Per-thread summary: spawn/exit, busy time, and every DVFS counter
 * a predictor may read.
 */
void writeThreadsCsv(std::ostream &os, const pred::RunRecord &rec);

/** Energy-manager decisions: `tick_ns,freq_mhz,pred_slowdown,path`. */
void writeDecisionsCsv(
    std::ostream &os,
    const std::vector<mgr::EnergyManager::Decision> &decisions);

} // namespace dvfs::exp

#endif // DVFS_EXP_EXPORT_HH
