#include "exp/export.hh"

#include "os/trace.hh"

namespace dvfs::exp {

void
writeEpochsCsv(std::ostream &os, const pred::RunRecord &rec)
{
    os << "epoch,start_ns,end_ns,boundary,stall_tid,tid,busy_ns,"
          "crit_ns,leading_ns,stall_ns,sqfull_ns,instructions,"
          "dram_loads,store_lines\n";
    std::size_t idx = 0;
    for (const auto &ep : rec.epochs) {
        for (const auto &et : ep.active) {
            os << idx << ',' << ticksToNs(ep.start) << ','
               << ticksToNs(ep.end) << ','
               << os::syncEventKindName(ep.boundary) << ',';
            if (ep.stallTid != os::kNoThread)
                os << ep.stallTid;
            os << ',' << et.tid << ',' << ticksToNs(et.delta.busyTime)
               << ',' << ticksToNs(et.delta.critNonscaling) << ','
               << ticksToNs(et.delta.leadingNonscaling) << ','
               << ticksToNs(et.delta.stallNonscaling) << ','
               << ticksToNs(et.delta.sqFullTime) << ','
               << et.delta.instructions << ',' << et.delta.dramLoads
               << ',' << et.delta.storeLines << '\n';
        }
        if (ep.active.empty()) {
            os << idx << ',' << ticksToNs(ep.start) << ','
               << ticksToNs(ep.end) << ','
               << os::syncEventKindName(ep.boundary)
               << ",,,,,,,,,,\n";
        }
        ++idx;
    }
}

void
writeEventsCsv(std::ostream &os, const pred::RunRecord &rec)
{
    os << "tick_ns,kind,tid,futex\n";
    for (const auto &ev : rec.events) {
        os << ticksToNs(ev.tick) << ','
           << os::syncEventKindName(ev.kind) << ',';
        if (ev.tid != os::kNoThread)
            os << ev.tid;
        os << ',';
        if (ev.futex != os::kNoSync)
            os << ev.futex;
        os << '\n';
    }
}

void
writeThreadsCsv(std::ostream &os, const pred::RunRecord &rec)
{
    os << "tid,service,spawn_ns,exit_ns,busy_ns,instructions,crit_ns,"
          "leading_ns,stall_ns,sqfull_ns,l1_hits,l2_hits,l3_hits,"
          "dram_loads,miss_clusters,store_bursts,store_lines\n";
    for (const auto &t : rec.threads) {
        const auto &c = t.totals;
        os << t.tid << ',' << (t.service ? 1 : 0) << ','
           << ticksToNs(t.spawnTick) << ',' << ticksToNs(t.exitTick)
           << ',' << ticksToNs(c.busyTime) << ',' << c.instructions
           << ',' << ticksToNs(c.critNonscaling) << ','
           << ticksToNs(c.leadingNonscaling) << ','
           << ticksToNs(c.stallNonscaling) << ','
           << ticksToNs(c.sqFullTime) << ',' << c.l1Hits << ','
           << c.l2Hits << ',' << c.l3Hits << ',' << c.dramLoads << ','
           << c.missClusters << ',' << c.storeBursts << ','
           << c.storeLines << '\n';
    }
}

void
writeDecisionsCsv(
    std::ostream &os,
    const std::vector<mgr::EnergyManager::Decision> &decisions)
{
    os << "tick_ns,freq_mhz,predicted_slowdown,path\n";
    for (const auto &d : decisions) {
        os << ticksToNs(d.tick) << ',' << d.chosen.toMHz() << ','
           << d.predictedSlowdown << ','
           << (d.usedEpochs ? "epochs" : "aggregate") << '\n';
    }
}

} // namespace dvfs::exp
