/**
 * @file
 * Fixed-width ASCII table printer for the benchmark harnesses.
 */

#ifndef DVFS_EXP_TABLE_HH
#define DVFS_EXP_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace dvfs::exp {

/**
 * Accumulates rows of strings and prints them with aligned columns.
 */
class Table
{
  public:
    /** @param headers Column titles. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row (must match the header count). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render to @p os. */
    void print(std::ostream &os) const;

    /** Format helpers. */
    static std::string fmt(double v, int precision = 2);
    static std::string pct(double v, int precision = 1);

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;  ///< empty = separator
};

} // namespace dvfs::exp

#endif // DVFS_EXP_TABLE_HH
