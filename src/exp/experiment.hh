/**
 * @file
 * Experiment harness: canonical ways to run a benchmark and collect
 * everything the paper's evaluation needs.
 */

#ifndef DVFS_EXP_EXPERIMENT_HH
#define DVFS_EXP_EXPERIMENT_HH

#include <string>
#include <vector>

#include "fault/auditor.hh"
#include "fault/fault_plan.hh"
#include "mgr/energy_manager.hh"
#include "power/power_model.hh"
#include "power/vf_table.hh"
#include "pred/record.hh"
#include "sim/sampling.hh"
#include "wl/builder.hh"
#include "wl/suite.hh"

namespace dvfs::exp {

/** Simulation fidelity of a run. */
enum class SimMode {
    Exact,    ///< cycle-accurate throughout (the golden oracle)
    Sampled,  ///< detailed windows + analytically fast-forwarded gaps
};

/** Printable name of a simulation mode ("exact"/"sampled"). */
const char *simModeName(SimMode m);

/**
 * Parse a mode name, case-insensitively; fatals on anything but
 * "exact"/"sampled", naming @p flag (the CLI flag the value came
 * from) in the message.
 */
SimMode parseSimMode(const std::string &name,
                     const std::string &flag = "--mode");

/** Everything collected from one fixed-frequency ground-truth run. */
struct FixedRunOutput {
    Frequency freq;
    Tick totalTime = 0;
    pred::RunRecord record;
    power::EnergyBreakdown energy;
    std::uint32_t collections = 0;
    Tick gcTime = 0;
    std::uint64_t allocatedBytes = 0;
    uarch::PerfCounters totals;
    std::uint64_t events = 0;

    /** Mode the run executed under (new fields: fingerprint-neutral). */
    SimMode mode = SimMode::Exact;

    /** Sampling provenance; all-zero for exact runs. */
    sim::SampleStats sampling;
};

/**
 * Options shared by every canonical run harness (fixed, managed).
 *
 * One options struct instead of one per harness: the fields are the
 * same everywhere, and the sweep engine overrides only the seed per
 * cell.
 */
struct RunOptions {
    bool keepEvents = false;     ///< retain the raw sync-event trace
    bool measureEnergy = true;   ///< attach the energy meter
    std::uint64_t seed = 42;     ///< machine seed (workload determinism)

    /**
     * Fidelity. Sampled applies to fixed and managed runs alike:
     * runManaged forks the fast-path model per operating point and
     * forces detail windows around DVFS transitions and GC
     * boundaries (DESIGN.md section 11.7).
     */
    SimMode mode = SimMode::Exact;

    /** Window placement when mode == Sampled; ignored otherwise. */
    sim::SamplingConfig sampling;
};

/**
 * Run @p params at a fixed frequency on the default Table II machine.
 */
FixedRunOutput runFixed(const wl::WorkloadParams &params, Frequency freq,
                        const RunOptions &opts = RunOptions());

/** Everything collected from one energy-manager-governed run. */
struct ManagedRunOutput {
    Tick totalTime = 0;
    power::EnergyBreakdown energy;
    std::vector<mgr::EnergyManager::Decision> decisions;
    std::uint32_t collections = 0;
    double averageGHz = 0.0;
    std::uint64_t transitions = 0;

    /**
     * Mode the run executed under, and its sampling provenance
     * (all-zero for exact runs). Both are fingerprint-neutral:
     * fingerprintRun(ManagedRunOutput) digests only the observable
     * outcome, so a gapWindow=0 sampled run fingerprints identically
     * to an exact one.
     */
    SimMode mode = SimMode::Exact;
    sim::SampleStats sampling;
};

/**
 * Run @p params under the energy manager (which starts the machine at
 * the table's highest frequency).
 */
ManagedRunOutput runManaged(const wl::WorkloadParams &params,
                            const mgr::ManagerConfig &mgr_cfg,
                            const power::VfTable &table,
                            const RunOptions &opts = RunOptions());

/** Options for runHardened. */
struct HardenedRunOptions {
    fault::FaultConfig faults = fault::FaultConfig::none();
    fault::AuditorConfig auditor;
    bool managed = true;            ///< energy manager vs fixed-at-highest
    mgr::ManagerConfig mgrCfg;      ///< manager parameters when managed
    std::uint64_t seed = 42;        ///< machine seed
};

/**
 * Everything collected from one fault-injected, audited run. Unlike
 * runFixed/runManaged this never fatals on a non-finishing run: a
 * watchdog abort is a *result* here, reported in watchdog/aborted.
 */
struct HardenedRunOutput {
    Tick totalTime = 0;
    bool finished = false;
    bool aborted = false;
    std::string abortReason;

    std::vector<mgr::EnergyManager::Decision> decisions;
    std::uint64_t fallbacks = 0;
    double averageGHz = 0.0;

    std::vector<fault::FaultEvent> faultTrace;
    std::uint64_t faultFingerprint = 0;
    std::uint64_t faultsInjected = 0;

    std::vector<fault::Violation> violations;
    fault::WatchdogReport watchdog;
    std::uint64_t audits = 0;
};

/**
 * Run @p params on the default Table II machine with @p opts.faults
 * injected and the invariant auditor attached throughout.
 */
HardenedRunOutput runHardened(const wl::WorkloadParams &params,
                              const power::VfTable &table,
                              const HardenedRunOptions &opts);

/** Mean of absolute values. */
double meanAbs(const std::vector<double> &xs);

} // namespace dvfs::exp

#endif // DVFS_EXP_EXPERIMENT_HH
