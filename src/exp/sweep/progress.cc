#include "exp/sweep/progress.hh"

#include "sim/log.hh"

namespace dvfs::exp::sweep {

ProgressMeter::ProgressMeter(std::string label, std::ostream *os)
    : _label(std::move(label)), _os(os), _start(Clock::now()),
      _lastPrint(_start)
{
}

double
ProgressMeter::elapsedSeconds() const
{
    return std::chrono::duration<double>(Clock::now() - _start).count();
}

double
ProgressMeter::cellsPerSecond() const
{
    double secs = elapsedSeconds();
    return secs > 0.0 ? static_cast<double>(_done) / secs : 0.0;
}

void
ProgressMeter::update(std::size_t done, std::size_t total)
{
    _done = done;
    if (!_os)
        return;

    auto now = Clock::now();
    bool last = done == total;
    // Throttle to twice a second; always print the final cell.
    if (!last &&
        std::chrono::duration<double>(now - _lastPrint).count() < 0.5)
        return;
    _lastPrint = now;

    double rate = cellsPerSecond();
    double eta = rate > 0.0
                     ? static_cast<double>(total - done) / rate
                     : 0.0;
    *_os << strprintf("[%s] %zu/%zu cells, %.1f cells/s, ETA %.1fs\n",
                      _label.c_str(), done, total, rate, eta);
}

void
ProgressMeter::finish(std::size_t total)
{
    if (!_os)
        return;
    *_os << strprintf("[%s] done: %zu cells in %.2fs (%.1f cells/s)\n",
                      _label.c_str(), total, elapsedSeconds(),
                      cellsPerSecond());
}

} // namespace dvfs::exp::sweep
