/**
 * @file
 * Progress/ETA reporting for long sweeps.
 *
 * Prints a throttled one-line status (cells done, rate, ETA) to a
 * stream of the caller's choosing — stderr by default, so harness
 * table output on stdout stays machine-readable. Timing uses the
 * wall clock; nothing here feeds back into simulated behaviour.
 */

#ifndef DVFS_EXP_SWEEP_PROGRESS_HH
#define DVFS_EXP_SWEEP_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <ostream>
#include <string>

#include "exp/sweep/pool.hh"

namespace dvfs::exp::sweep {

/**
 * Wall-clock meter over a sweep. Construct just before the sweep,
 * hand callback() to runIndexed, call finish() after it returns.
 * update() is called under the pool's progress lock, so the meter
 * needs no locking of its own.
 */
class ProgressMeter
{
  public:
    /**
     * @param label Prefix for status lines, e.g. the bench name.
     * @param os    Destination stream (nullptr silences output; the
     *              meter still measures, for cellsPerSecond()).
     */
    explicit ProgressMeter(std::string label, std::ostream *os);

    /** Record a completed cell; maybe print a status line. */
    void update(std::size_t done, std::size_t total);

    /** Print the closing summary line (rate over the whole sweep). */
    void finish(std::size_t total);

    /** Progress callback bound to this meter. */
    ProgressFn
    callback()
    {
        return [this](std::size_t done, std::size_t total) {
            update(done, total);
        };
    }

    /** Wall seconds since construction. */
    double elapsedSeconds() const;

    /** Completed cells per wall second so far. */
    double cellsPerSecond() const;

  private:
    using Clock = std::chrono::steady_clock;

    std::string _label;
    std::ostream *_os;
    Clock::time_point _start;
    Clock::time_point _lastPrint;
    std::size_t _done = 0;
};

} // namespace dvfs::exp::sweep

#endif // DVFS_EXP_SWEEP_PROGRESS_HH
