#include "exp/sweep/differential.hh"

#include <chrono>
#include <cmath>

#include "exp/sweep/fingerprint.hh"
#include "pred/registry.hh"
#include "pred/run_view.hh"
#include "sim/log.hh"

namespace dvfs::exp::sweep {

double
ModeComparison::meanPredictorErrPct() const
{
    if (predictors.empty())
        return 0.0;
    double s = 0.0;
    for (const auto &p : predictors)
        s += p.meanAbsPct;
    return s / static_cast<double>(predictors.size());
}

double
ModeComparison::maxPredictorErrPct() const
{
    double m = 0.0;
    for (const auto &p : predictors)
        m = std::max(m, p.maxAbsPct);
    return m;
}

std::uint64_t
gridDigest(const SweepResult &res)
{
    Fnv1a h;
    for (const auto &cell : res.cells)
        h.mix(fingerprintRun(cell));
    return h.digest();
}

namespace {

SweepResult
runGrid(SweepSpec spec, unsigned workers, bool progress,
        const std::string &label, double &wallSec)
{
    SweepRunner::Options ro;
    ro.workers = workers;
    ro.progress = progress;
    ro.label = label;
    const auto t0 = std::chrono::steady_clock::now();
    SweepResult res = SweepRunner(std::move(spec), ro).run();
    const auto t1 = std::chrono::steady_clock::now();
    wallSec = std::chrono::duration<double>(t1 - t0).count();
    return res;
}

} // namespace

ModeComparison
compareModes(const SweepSpec &spec, const sim::SamplingConfig &sampling,
             unsigned workers, bool progress)
{
    ModeComparison cmp;
    cmp.spec = spec;
    cmp.sampling = sampling;

    SweepSpec exactSpec = spec;
    exactSpec.runOptions.mode = SimMode::Exact;
    // Predictors read the sampled base record, so the sampled side
    // must keep its event trace; the exact side needs only timings.
    SweepSpec sampledSpec = spec;
    sampledSpec.runOptions.mode = SimMode::Sampled;
    sampledSpec.runOptions.sampling = sampling;

    SweepResult exact = runGrid(std::move(exactSpec), workers, progress,
                                "exact", cmp.exactWallSec);
    SweepResult sampled = runGrid(std::move(sampledSpec), workers,
                                  progress, "sampled", cmp.sampledWallSec);

    cmp.exactDigest = gridDigest(exact);
    cmp.sampledDigest = gridDigest(sampled);

    // Per-cell total-time error, and summed sampling provenance.
    const std::size_t n = exact.cells.size();
    cmp.cellTimeErrPct.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double et = static_cast<double>(exact.cells[i].totalTime);
        const double st = static_cast<double>(sampled.cells[i].totalTime);
        const double err = et > 0.0 ? (st - et) / et * 100.0 : 0.0;
        cmp.cellTimeErrPct.push_back(err);
        cmp.meanAbsTimeErrPct += std::fabs(err);
        cmp.maxAbsTimeErrPct = std::max(cmp.maxAbsTimeErrPct,
                                        std::fabs(err));
        cmp.sampleTotals.accumulate(sampled.cells[i].sampling);
    }
    if (n > 0)
        cmp.meanAbsTimeErrPct /= static_cast<double>(n);

    const auto &ws = spec.workloads;
    const auto &fs = spec.frequencies;
    const auto &ss = spec.seeds;

    // Headline gate: the sampled simulation as a slowdown predictor.
    // Ratios against the base frequency cancel systematic per-cell
    // bias, matching the paper's use case (relative DVFS performance).
    for (std::size_t w = 0; w < ws.size(); ++w) {
        for (std::size_t s = 0; s < ss.size(); ++s) {
            const auto &exBase = exact.at(w, std::size_t{0}, s);
            const auto &smBase = sampled.at(w, std::size_t{0}, s);
            for (std::size_t f = 1; f < fs.size(); ++f) {
                const double actual =
                    static_cast<double>(exact.at(w, f, s).totalTime) /
                    static_cast<double>(exBase.totalTime);
                const double predicted =
                    static_cast<double>(sampled.at(w, f, s).totalTime) /
                    static_cast<double>(smBase.totalTime);
                const double err =
                    std::fabs(predicted - actual) / actual * 100.0;
                cmp.meanAbsSlowdownErrPct += err;
                cmp.maxAbsSlowdownErrPct =
                    std::max(cmp.maxAbsSlowdownErrPct, err);
                cmp.slowdownSamples += 1;
            }
        }
    }
    if (cmp.slowdownSamples > 0)
        cmp.meanAbsSlowdownErrPct /=
            static_cast<double>(cmp.slowdownSamples);

    // Per-predictor envelopes: predict from the sampled base record,
    // score against the slowdown the exact runs exhibit. The
    // exact-fed envelope isolates the predictor's inherent model
    // error from what sampling adds on top.
    auto zoo = pred::PredictorRegistry::instance().figure3Set();
    for (const auto &p : zoo) {
        PredictorErrorBound b;
        b.predictor = p->name();
        for (std::size_t w = 0; w < ws.size(); ++w) {
            for (std::size_t s = 0; s < ss.size(); ++s) {
                const auto &exBase = exact.at(w, std::size_t{0}, s);
                const auto &smBase = sampled.at(w, std::size_t{0}, s);
                pred::SampledView view(smBase.record, smBase.sampling);
                pred::RecordView exView(exBase.record);
                for (std::size_t f = 1; f < fs.size(); ++f) {
                    const auto &exTgt = exact.at(w, f, s);
                    const double actual =
                        static_cast<double>(exTgt.totalTime) /
                        static_cast<double>(exBase.totalTime);
                    const double predicted =
                        static_cast<double>(p->predict(view, fs[f])) /
                        static_cast<double>(smBase.totalTime);
                    const double err =
                        std::fabs(predicted - actual) / actual * 100.0;
                    b.meanAbsPct += err;
                    b.maxAbsPct = std::max(b.maxAbsPct, err);
                    const double exPredicted =
                        static_cast<double>(p->predict(exView, fs[f])) /
                        static_cast<double>(exBase.totalTime);
                    const double exErr =
                        std::fabs(exPredicted - actual) / actual * 100.0;
                    b.meanAbsPctExactFed += exErr;
                    b.maxAbsPctExactFed =
                        std::max(b.maxAbsPctExactFed, exErr);
                    b.samples += 1;
                }
            }
        }
        if (b.samples > 0) {
            b.meanAbsPct /= static_cast<double>(b.samples);
            b.meanAbsPctExactFed /= static_cast<double>(b.samples);
        }
        cmp.predictors.push_back(std::move(b));
    }
    return cmp;
}

std::uint64_t
managedGridDigest(const std::vector<ManagedRunOutput> &cells)
{
    Fnv1a h;
    for (const auto &cell : cells)
        h.mix(fingerprintRun(cell));
    return h.digest();
}

namespace {

/** One managed grid: (workload x seed) cells in flattened order. */
std::vector<ManagedRunOutput>
runManagedGrid(const std::vector<wl::WorkloadParams> &workloads,
               const std::vector<std::uint64_t> &seeds,
               const mgr::ManagerConfig &mgrCfg,
               const power::VfTable &table, const RunOptions &opts,
               unsigned workers, double &wallSec)
{
    const std::size_t n = workloads.size() * seeds.size();
    const auto t0 = std::chrono::steady_clock::now();
    auto cells = sweepMap<ManagedRunOutput>(
        n, workers, [&](std::size_t i) {
            RunOptions ro = opts;
            ro.seed = seeds[i % seeds.size()];
            return runManaged(workloads[i / seeds.size()], mgrCfg, table,
                              ro);
        });
    const auto t1 = std::chrono::steady_clock::now();
    wallSec = std::chrono::duration<double>(t1 - t0).count();
    return cells;
}

/** Fixed-at-highest baselines for the same cells, one per (w, s). */
std::vector<FixedRunOutput>
runBaselineGrid(const std::vector<wl::WorkloadParams> &workloads,
                const std::vector<std::uint64_t> &seeds,
                const power::VfTable &table, const RunOptions &opts,
                unsigned workers)
{
    const std::size_t n = workloads.size() * seeds.size();
    return sweepMap<FixedRunOutput>(n, workers, [&](std::size_t i) {
        RunOptions ro = opts;
        ro.seed = seeds[i % seeds.size()];
        return runFixed(workloads[i / seeds.size()], table.highest(), ro);
    });
}

} // namespace

ManagedComparison
compareManagedModes(const std::vector<wl::WorkloadParams> &workloads,
                    const mgr::ManagerConfig &mgrCfg,
                    const power::VfTable &table,
                    const sim::SamplingConfig &sampling,
                    const std::vector<std::uint64_t> &seeds,
                    unsigned workers, bool progress)
{
    if (workloads.empty() || seeds.empty())
        fatal("compareManagedModes: empty workload or seed dimension");
    (void)progress;

    ManagedComparison cmp;
    cmp.sampling = sampling;
    cmp.cells = workloads.size() * seeds.size();

    RunOptions exactOpts;
    exactOpts.mode = SimMode::Exact;
    RunOptions sampledOpts;
    sampledOpts.mode = SimMode::Sampled;
    sampledOpts.sampling = sampling;

    auto exact = runManagedGrid(workloads, seeds, mgrCfg, table,
                                exactOpts, workers, cmp.exactWallSec);
    auto sampled = runManagedGrid(workloads, seeds, mgrCfg, table,
                                  sampledOpts, workers,
                                  cmp.sampledWallSec);
    auto exactBase =
        runBaselineGrid(workloads, seeds, table, exactOpts, workers);
    auto sampledBase =
        runBaselineGrid(workloads, seeds, table, sampledOpts, workers);

    cmp.exactDigest = managedGridDigest(exact);
    cmp.sampledDigest = managedGridDigest(sampled);

    cmp.cellTimeErrPct.reserve(cmp.cells);
    for (std::size_t i = 0; i < cmp.cells; ++i) {
        const double et = static_cast<double>(exact[i].totalTime);
        const double st = static_cast<double>(sampled[i].totalTime);
        const double err = et > 0.0 ? (st - et) / et * 100.0 : 0.0;
        cmp.cellTimeErrPct.push_back(err);
        cmp.meanAbsTimeErrPct += std::fabs(err);
        cmp.maxAbsTimeErrPct =
            std::max(cmp.maxAbsTimeErrPct, std::fabs(err));

        // Achieved slowdown, normalized within-mode so the sampled
        // path's systematic time bias cancels (the same ratio trick
        // compareModes uses).
        const double exactS =
            static_cast<double>(exact[i].totalTime) /
            static_cast<double>(exactBase[i].totalTime);
        const double sampledS =
            static_cast<double>(sampled[i].totalTime) /
            static_cast<double>(sampledBase[i].totalTime);
        const double sErr = std::fabs(sampledS - exactS) / exactS * 100.0;
        cmp.meanAbsSlowdownErrPct += sErr;
        cmp.maxAbsSlowdownErrPct =
            std::max(cmp.maxAbsSlowdownErrPct, sErr);
        cmp.slowdownSamples += 1;

        cmp.sampleTotals.accumulate(sampled[i].sampling);
        cmp.transitions += sampled[i].transitions;
    }
    cmp.meanAbsTimeErrPct /= static_cast<double>(cmp.cells);
    cmp.meanAbsSlowdownErrPct /= static_cast<double>(cmp.cells);
    return cmp;
}

} // namespace dvfs::exp::sweep
