/**
 * @file
 * Trace-backed sweeps: record a ground-truth grid once, replay it
 * offline forever.
 *
 * A figure harness needs two things per grid cell: the cell's total
 * execution time (ground truth) and, for base-frequency cells, the
 * full RunView a predictor consumes. ObservedGrid is that surface,
 * backed either by a live sweep (cells freshly simulated, optionally
 * persisted to .dvfstrace files) or by a trace directory (cells
 * loaded, zero simulation). fig3/ablation compute their tables from
 * an ObservedGrid, so a recorded grid replays bit-identically at a
 * fraction of the cost — the record-once/reuse-many move the ROADMAP's
 * caching north star asks for.
 *
 * Cell trace files are named traceFileName(workload, freqMHz, seed)
 * inside the directory; a grid is replayable iff every cell's file is
 * present and valid.
 */

#ifndef DVFS_EXP_SWEEP_TRACE_CACHE_HH
#define DVFS_EXP_SWEEP_TRACE_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "exp/sweep/sweep.hh"
#include "pred/run_view.hh"
#include "trace/reader.hh"

namespace dvfs::exp::sweep {

/** One observed grid cell: ground truth + the predictor view. */
struct ObservedCell {
    Frequency freq;
    Tick totalTime = 0;

    /** The predictor-observable surface of this cell's run. */
    std::shared_ptr<const pred::RunView> run;

    const pred::RunView &view() const { return *run; }
};

/** A grid of observed cells, flattened exactly like SweepSpec. */
struct ObservedGrid {
    SweepSpec spec;
    bool replayed = false;  ///< true when loaded from traces
    std::vector<ObservedCell> cells;

    /** Cell by coordinates (workload index, frequency value, seed). */
    const ObservedCell &at(std::size_t workload, Frequency f,
                           std::size_t seed = 0) const;

    /** The live sweep output, when this grid was freshly simulated. */
    std::shared_ptr<const SweepResult> live;
};

/**
 * Simulate every cell of @p spec on the sweep engine and, when @p dir
 * is non-empty, persist each cell as a .dvfstrace in it (the
 * directory is created if needed).
 *
 * @throws trace::TraceError if a trace file cannot be written.
 */
ObservedGrid recordGrid(const SweepSpec &spec,
                        const SweepRunner::Options &opts,
                        const std::string &dir = "");

/**
 * Load every cell of @p spec from @p dir without simulating.
 *
 * @throws trace::TraceError if any cell's file is missing or invalid,
 *         or if a loaded trace does not match its cell's coordinates
 *         (wrong workload/seed/frequency).
 */
ObservedGrid loadGrid(const SweepSpec &spec, const std::string &dir);

/** True iff every cell of @p spec has a trace file in @p dir. */
bool gridTracesPresent(const SweepSpec &spec, const std::string &dir);

/**
 * Replay @p spec from @p dir when complete, else record it (and
 * persist into @p dir). The convenience entry point for harnesses'
 * --trace-dir flag.
 */
ObservedGrid observeGrid(const SweepSpec &spec,
                         const SweepRunner::Options &opts,
                         const std::string &dir);

} // namespace dvfs::exp::sweep

#endif // DVFS_EXP_SWEEP_TRACE_CACHE_HH
