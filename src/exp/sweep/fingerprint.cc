#include "exp/sweep/fingerprint.hh"

#include "exp/experiment.hh"

namespace dvfs::exp::sweep {

namespace {

void
mixCounters(Fnv1a &h, const uarch::PerfCounters &c)
{
    h.mix(c.busyTime);
    h.mix(c.instructions);
    h.mix(c.critNonscaling);
    h.mix(c.leadingNonscaling);
    h.mix(c.stallNonscaling);
    h.mix(c.sqFullTime);
    h.mix(c.trueMemTime);
    h.mix(c.computeTime);
    h.mix(c.l1Hits);
    h.mix(c.l2Hits);
    h.mix(c.l3Hits);
    h.mix(c.dramLoads);
    h.mix(c.missClusters);
    h.mix(c.storeBursts);
    h.mix(c.storeLines);
}

void
mixRecord(Fnv1a &h, const pred::RunRecord &rec)
{
    h.mix(rec.baseFreq.toMHz());
    h.mix(rec.totalTime);
    h.mix(rec.epochs.size());
    for (const auto &e : rec.epochs) {
        h.mix(e.start);
        h.mix(e.end);
        h.mix(static_cast<std::uint64_t>(e.boundary));
        h.mix(static_cast<std::uint64_t>(e.stallTid));
        h.mix(e.active.size());
        for (const auto &t : e.active) {
            h.mix(static_cast<std::uint64_t>(t.tid));
            mixCounters(h, t.delta);
        }
    }
    h.mix(rec.threads.size());
    for (const auto &t : rec.threads) {
        h.mix(static_cast<std::uint64_t>(t.tid));
        h.mix(t.service ? 1 : 0);
        h.mix(t.spawnTick);
        h.mix(t.exitTick);
        mixCounters(h, t.totals);
    }
    h.mix(rec.gcMarks.size());
    for (const auto &m : rec.gcMarks) {
        h.mix(m.tick);
        h.mix(m.begin ? 1 : 0);
    }
}

void
mixEnergy(Fnv1a &h, const power::EnergyBreakdown &e)
{
    h.mixDouble(e.coreDynamic);
    h.mixDouble(e.coreStatic);
    h.mixDouble(e.uncore);
    h.mixDouble(e.dram);
}

} // namespace

std::uint64_t
fingerprintRun(const FixedRunOutput &out)
{
    Fnv1a h;
    h.mix(out.freq.toMHz());
    h.mix(out.totalTime);
    h.mix(out.events);
    h.mix(out.collections);
    h.mix(out.gcTime);
    h.mix(out.allocatedBytes);
    mixCounters(h, out.totals);
    mixEnergy(h, out.energy);
    mixRecord(h, out.record);
    return h.digest();
}

std::uint64_t
fingerprintRun(const ManagedRunOutput &out)
{
    Fnv1a h;
    h.mix(out.totalTime);
    h.mix(out.collections);
    h.mix(out.transitions);
    h.mixDouble(out.averageGHz);
    mixEnergy(h, out.energy);
    h.mix(out.decisions.size());
    for (const auto &d : out.decisions) {
        h.mix(d.tick);
        h.mix(d.chosen.toMHz());
        h.mixDouble(d.predictedSlowdown);
        h.mix(d.usedEpochs ? 1 : 0);
        h.mix(d.fallback ? 1 : 0);
    }
    return h.digest();
}

} // namespace dvfs::exp::sweep
