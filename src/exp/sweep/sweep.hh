/**
 * @file
 * The sweep engine: declarative (workload x frequency x seed) grids
 * executed concurrently with deterministic aggregation.
 *
 * Every figure bench boils down to a grid of independent ground-truth
 * simulations. A SweepSpec names that grid once; SweepRunner executes
 * its cells on the work-stealing pool, each cell in its own isolated
 * System (the cell seed is a pure function of the cell's coordinates,
 * never of its position or schedule), and collects results keyed by
 * cell index. The determinism contract — parallel output bit-identical
 * to the serial run, and existing cells unperturbed by added ones — is
 * spelled out in DESIGN.md section 7 and enforced by the golden-trace
 * tests.
 */

#ifndef DVFS_EXP_SWEEP_SWEEP_HH
#define DVFS_EXP_SWEEP_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "exp/sweep/pool.hh"
#include "wl/suite.hh"

namespace dvfs::exp::sweep {

/** Coordinates of one cell within a SweepSpec grid. */
struct Cell {
    std::size_t index = 0;     ///< flattened (serial) position
    std::size_t workload = 0;  ///< index into SweepSpec::workloads
    std::size_t freq = 0;      ///< index into SweepSpec::frequencies
    std::size_t seed = 0;      ///< index into SweepSpec::seeds
};

/**
 * A declarative ground-truth sweep: the cross product of workloads,
 * frequencies and machine seeds, flattened row-major with the seed as
 * the innermost dimension.
 *
 * All frequencies of one (workload, seed) pair share the seed value,
 * so a cell's workload sees an identical instruction stream at every
 * operating point — the property every predictor experiment depends
 * on.
 */
struct SweepSpec {
    std::vector<wl::WorkloadParams> workloads;
    std::vector<Frequency> frequencies;
    std::vector<std::uint64_t> seeds{42};

    /** Per-cell run options; the seed field is overridden per cell. */
    RunOptions runOptions{};

    /** Total number of cells. fatal()s on an empty dimension. */
    std::size_t cellCount() const;

    /** Coordinates of the cell at flattened @p index. */
    Cell cell(std::size_t index) const;

    /** Flattened index of (workload, freq, seed) coordinates. */
    std::size_t indexOf(std::size_t workload, std::size_t freq,
                        std::size_t seed = 0) const;

    /** Index of @p f in frequencies; fatal() if absent. */
    std::size_t freqIndex(Frequency f) const;

    /**
     * @p n decorrelated replicate seeds split off @p base with the
     * workload RNG. Seed i is a pure function of (base, i), so
     * growing a replication study never changes earlier replicates.
     */
    static std::vector<std::uint64_t> replicateSeeds(std::uint64_t base,
                                                     std::size_t n);
};

/** All cells of a completed sweep, in flattened (serial) order. */
struct SweepResult {
    SweepSpec spec;
    std::vector<FixedRunOutput> cells;

    /** Cell output by coordinates. */
    const FixedRunOutput &at(std::size_t workload, std::size_t freq,
                             std::size_t seed = 0) const;

    /** Cell output by workload index and frequency value. */
    const FixedRunOutput &at(std::size_t workload, Frequency f,
                             std::size_t seed = 0) const;
};

/**
 * Executes a SweepSpec on the work-stealing pool.
 */
class SweepRunner
{
  public:
    struct Options {
        /** Pool width; 1 = serial baseline. 0 is fatal. */
        unsigned workers = 1;
        /** Print progress/ETA lines to stderr. */
        bool progress = false;
        /** Label for progress lines. */
        std::string label = "sweep";
    };

    SweepRunner(SweepSpec spec, Options opts);

    /**
     * Run every cell; blocks until the sweep completes or fails.
     *
     * @throws SweepError on the first failing cell (remaining cells
     *         are cancelled).
     */
    SweepResult run();

  private:
    SweepSpec _spec;
    Options _opts;
};

} // namespace dvfs::exp::sweep

#endif // DVFS_EXP_SWEEP_SWEEP_HH
