#include "exp/sweep/trace_cache.hh"

#include <algorithm>
#include <filesystem>

#include "sim/log.hh"
#include "trace/writer.hh"

namespace dvfs::exp::sweep {

namespace {

namespace fs = std::filesystem;

std::string
cellPath(const SweepSpec &spec, const std::string &dir, std::size_t index)
{
    const Cell c = spec.cell(index);
    return (fs::path(dir) /
            trace::traceFileName(spec.workloads[c.workload].name,
                                 spec.frequencies[c.freq].toMHz(),
                                 spec.seeds[c.seed]))
        .string();
}

/**
 * Trace file names encode (workload name, frequency, seed), so two
 * cells may only share a name if the spec holds duplicate coordinates
 * — which would make one cell's file silently overwrite (on record)
 * or impersonate (on load) the other's.
 */
void
requireUniqueCellPaths(const SweepSpec &spec, const std::string &dir)
{
    const std::size_t n = spec.cellCount();
    std::vector<std::string> paths;
    paths.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        paths.push_back(cellPath(spec, dir, i));
    std::sort(paths.begin(), paths.end());
    auto dup = std::adjacent_find(paths.begin(), paths.end());
    if (dup != paths.end()) {
        throw trace::TraceError(
            trace::TraceError::Kind::DuplicateCell, 0,
            "two grid cells map to the same trace file '" + *dup +
                "' — workloads sharing a name need distinct "
                "WorkloadParams::name values to be trace-backed");
    }
}

} // namespace

const ObservedCell &
ObservedGrid::at(std::size_t workload, Frequency f, std::size_t seed) const
{
    const std::size_t index =
        spec.indexOf(workload, spec.freqIndex(f), seed);
    DVFS_ASSERT(index < cells.size(), "observed grid cell out of range");
    return cells[index];
}

ObservedGrid
recordGrid(const SweepSpec &spec, const SweepRunner::Options &opts,
           const std::string &dir)
{
    ObservedGrid grid;
    grid.spec = spec;

    auto live = std::make_shared<SweepResult>(
        SweepRunner(spec, opts).run());
    grid.live = live;

    if (!dir.empty()) {
        requireUniqueCellPaths(spec, dir);
        std::error_code ec;
        fs::create_directories(dir, ec);
        if (ec) {
            throw trace::TraceError(trace::TraceError::Kind::Io, 0,
                                    "cannot create trace directory '" +
                                        dir + "': " + ec.message());
        }
    }

    grid.cells.reserve(live->cells.size());
    for (std::size_t i = 0; i < live->cells.size(); ++i) {
        const FixedRunOutput &out = live->cells[i];
        const Cell c = spec.cell(i);

        if (!dir.empty()) {
            trace::TraceMeta meta;
            meta.workload = spec.workloads[c.workload].name;
            meta.seed = spec.seeds[c.seed];
            trace::writeTraceFile(cellPath(spec, dir, i), out.record,
                                  meta);
        }

        ObservedCell cell;
        cell.freq = out.freq;
        cell.totalTime = out.totalTime;
        // The view aliases the record inside `live`; the deleter
        // captures `live` so a cell copied out of the grid keeps the
        // backing sweep result alive on its own.
        cell.run = std::shared_ptr<const pred::RunView>(
            new pred::RecordView(out.record),
            [live](const pred::RunView *v) { delete v; });
        grid.cells.push_back(std::move(cell));
    }
    return grid;
}

ObservedGrid
loadGrid(const SweepSpec &spec, const std::string &dir)
{
    ObservedGrid grid;
    grid.spec = spec;
    grid.replayed = true;
    requireUniqueCellPaths(spec, dir);

    const std::size_t n = spec.cellCount();
    grid.cells.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Cell c = spec.cell(i);
        auto loaded = std::make_shared<trace::LoadedTrace>(
            trace::readTraceFile(cellPath(spec, dir, i)));

        // A trace that parses but describes a different run would
        // silently poison every downstream number; cross-check the
        // cell coordinates.
        const std::string &want_wl = spec.workloads[c.workload].name;
        if (loaded->meta().workload != want_wl ||
            loaded->meta().seed != spec.seeds[c.seed] ||
            loaded->baseFreq() != spec.frequencies[c.freq]) {
            throw trace::TraceError(
                trace::TraceError::Kind::CellMismatch, 0,
                "trace '" + cellPath(spec, dir, i) +
                    "' does not match its grid cell (want " + want_wl +
                    " @ " + spec.frequencies[c.freq].toString() + ")");
        }

        ObservedCell cell;
        cell.freq = loaded->baseFreq();
        cell.totalTime = loaded->totalTime();
        cell.run = std::move(loaded);
        grid.cells.push_back(std::move(cell));
    }
    return grid;
}

bool
gridTracesPresent(const SweepSpec &spec, const std::string &dir)
{
    if (dir.empty())
        return false;
    const std::size_t n = spec.cellCount();
    for (std::size_t i = 0; i < n; ++i) {
        std::error_code ec;
        if (!fs::exists(cellPath(spec, dir, i), ec) || ec)
            return false;
    }
    return true;
}

ObservedGrid
observeGrid(const SweepSpec &spec, const SweepRunner::Options &opts,
            const std::string &dir)
{
    if (gridTracesPresent(spec, dir))
        return loadGrid(spec, dir);
    return recordGrid(spec, opts, dir);
}

} // namespace dvfs::exp::sweep
