/**
 * @file
 * FNV-1a fingerprints of run outputs — the sweep's replay witness.
 *
 * A fingerprint digests everything a sweep cell observably produced
 * (total time, epoch decomposition, per-thread counters, energy, GC
 * activity) into one 64-bit value, the same scheme fault::FaultPlan
 * uses for its trace. Two runs with equal fingerprints produced
 * bit-identical records, so the golden-trace tests can assert that a
 * parallel sweep is indistinguishable from the serial one with a
 * single comparison per cell.
 */

#ifndef DVFS_EXP_SWEEP_FINGERPRINT_HH
#define DVFS_EXP_SWEEP_FINGERPRINT_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace dvfs::exp {
struct FixedRunOutput;
struct ManagedRunOutput;
}

namespace dvfs::exp::sweep {

/** Incremental FNV-1a hasher over 64-bit words. */
class Fnv1a
{
  public:
    /** Fold a 64-bit word into the digest, byte by byte. */
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _h ^= (v >> (i * 8)) & 0xff;
            _h *= 0x100000001b3ULL;
        }
    }

    /** Fold a double via its bit pattern (exact, not rounded). */
    void
    mixDouble(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }

    /** Fold a string (length then bytes). */
    void
    mixString(const std::string &s)
    {
        mix(s.size());
        for (unsigned char c : s) {
            _h ^= c;
            _h *= 0x100000001b3ULL;
        }
    }

    std::uint64_t digest() const { return _h; }

  private:
    std::uint64_t _h = 0xcbf29ce484222325ULL;
};

/** Digest of one fixed-frequency ground-truth run. */
std::uint64_t fingerprintRun(const FixedRunOutput &out);

/** Digest of one energy-manager-governed run. */
std::uint64_t fingerprintRun(const ManagedRunOutput &out);

} // namespace dvfs::exp::sweep

#endif // DVFS_EXP_SWEEP_FINGERPRINT_HH
