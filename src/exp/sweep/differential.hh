/**
 * @file
 * Exact-vs-sampled differential harness: measured error bounds.
 *
 * A sampled run (exp::SimMode::Sampled) is only useful if its error
 * against the cycle-accurate oracle is *measured*, not assumed. This
 * module runs the same sweep grid in both modes and reports
 *
 *  - per-cell total-time error (the direct fidelity of the fast path),
 *  - per-predictor slowdown-prediction error envelopes: each registry
 *    predictor consumes the *sampled* base-frequency record through
 *    SampledView and predicts the slowdown at every other grid
 *    frequency; the envelope compares that against the slowdown the
 *    *exact* runs actually exhibit — the end-to-end number the paper's
 *    use case (DVFS performance prediction) cares about,
 *  - both grid digests and wall-clock times, so CI can pin the sampled
 *    fingerprint and gate on the speedup/error trade-off.
 */

#ifndef DVFS_EXP_SWEEP_DIFFERENTIAL_HH
#define DVFS_EXP_SWEEP_DIFFERENTIAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/sweep/sweep.hh"
#include "sim/sampling.hh"

namespace dvfs::exp::sweep {

/** Slowdown-prediction error envelope of one predictor. */
struct PredictorErrorBound {
    std::string predictor;
    double meanAbsPct = 0.0;  ///< mean |pred - actual|/actual, percent
    double maxAbsPct = 0.0;   ///< worst cell, percent
    std::size_t samples = 0;  ///< (workload, seed, target-freq) triples

    /**
     * Same envelope with the predictor fed the *exact* base record —
     * the predictor's inherent model error on this grid. The spread
     * between meanAbsPct and this is the error sampling itself adds.
     */
    double meanAbsPctExactFed = 0.0;
    double maxAbsPctExactFed = 0.0;
};

/** Everything one exact-vs-sampled differential run measured. */
struct ModeComparison {
    /** The grid both modes executed (mode fields overridden). */
    SweepSpec spec;

    /** Window placement the sampled side ran with. */
    sim::SamplingConfig sampling;

    /** Per-cell signed total-time error, percent, flattened order. */
    std::vector<double> cellTimeErrPct;
    double meanAbsTimeErrPct = 0.0;
    double maxAbsTimeErrPct = 0.0;

    /**
     * Slowdown-prediction error of the sampled simulation itself: for
     * every (workload, seed, target frequency), how far the sampled
     * slowdown T_s(f)/T_s(f0) lands from the exact T_e(f)/T_e(f0).
     * This is the headline fidelity gate — systematic per-cell time
     * bias cancels in the ratio, exactly as it does for the paper's
     * use case (predicting relative performance across DVFS states).
     */
    double meanAbsSlowdownErrPct = 0.0;
    double maxAbsSlowdownErrPct = 0.0;
    std::size_t slowdownSamples = 0;

    /** Slowdown-prediction envelopes, registry order. */
    std::vector<PredictorErrorBound> predictors;

    /** Grid digests (gridDigest over each mode's cells). */
    std::uint64_t exactDigest = 0;
    std::uint64_t sampledDigest = 0;

    /** Wall-clock seconds each mode took (whole grid). */
    double exactWallSec = 0.0;
    double sampledWallSec = 0.0;

    /** Sampling stats summed over all sampled cells. */
    sim::SampleStats sampleTotals;

    /** Grid-level wall-clock speedup of sampled over exact. */
    double
    speedup() const
    {
        return sampledWallSec > 0.0 ? exactWallSec / sampledWallSec : 0.0;
    }

    /** Mean over predictors of meanAbsPct (the headline number). */
    double meanPredictorErrPct() const;

    /** Max over predictors of maxAbsPct. */
    double maxPredictorErrPct() const;
};

/** FNV-1a digest over a whole grid, cell fingerprints in order. */
std::uint64_t gridDigest(const SweepResult &res);

/**
 * Run @p spec in both modes and measure the error bounds.
 *
 * @p spec.frequencies.front() is the prediction base; a grid with a
 * single frequency yields empty predictor envelopes (there is nothing
 * to predict) but still measures per-cell time error.
 * spec.runOptions.mode/sampling are overridden per side.
 */
ModeComparison compareModes(const SweepSpec &spec,
                            const sim::SamplingConfig &sampling,
                            unsigned workers = 1, bool progress = false);

/**
 * Everything one exact-vs-sampled *managed* differential measured.
 *
 * The managed analogue of ModeComparison: each (workload, seed) cell
 * runs under the energy manager in both modes, plus a fixed-at-highest
 * baseline per mode so the headline error is on the *achieved
 * slowdown* S = T_managed / T_fixedHighest computed within-mode —
 * exactly the quantity fig6 reports, with systematic per-cell time
 * bias cancelling in the ratio as it does for compareModes.
 */
struct ManagedComparison {
    /** Window placement the sampled side ran with. */
    sim::SamplingConfig sampling;

    /** (workload, seed) cells per mode, flattened seed-innermost. */
    std::size_t cells = 0;

    /** Per-cell signed managed total-time error, percent. */
    std::vector<double> cellTimeErrPct;
    double meanAbsTimeErrPct = 0.0;
    double maxAbsTimeErrPct = 0.0;

    /** Achieved-slowdown error (the headline fidelity gate). */
    double meanAbsSlowdownErrPct = 0.0;
    double maxAbsSlowdownErrPct = 0.0;
    std::size_t slowdownSamples = 0;

    /** Managed grid digests (managedGridDigest over each mode). */
    std::uint64_t exactDigest = 0;
    std::uint64_t sampledDigest = 0;

    /** Wall-clock seconds of each managed grid (baselines excluded). */
    double exactWallSec = 0.0;
    double sampledWallSec = 0.0;

    /** Sampling stats summed over all sampled managed cells. */
    sim::SampleStats sampleTotals;

    /** DVFS transitions summed over the sampled managed cells. */
    std::uint64_t transitions = 0;

    /** Grid-level wall-clock speedup of sampled over exact managed. */
    double
    speedup() const
    {
        return sampledWallSec > 0.0 ? exactWallSec / sampledWallSec : 0.0;
    }
};

/** FNV-1a digest over a managed grid, cell fingerprints in order. */
std::uint64_t managedGridDigest(const std::vector<ManagedRunOutput> &cells);

/**
 * Run every (workload, seed) cell under the energy manager in both
 * modes (plus fixed-at-highest baselines per mode) and measure the
 * sampled side's error and speedup. @p sampling applies to the
 * sampled side's managed cells and baseline alike.
 */
ManagedComparison
compareManagedModes(const std::vector<wl::WorkloadParams> &workloads,
                    const mgr::ManagerConfig &mgrCfg,
                    const power::VfTable &table,
                    const sim::SamplingConfig &sampling,
                    const std::vector<std::uint64_t> &seeds = {42},
                    unsigned workers = 1, bool progress = false);

} // namespace dvfs::exp::sweep

#endif // DVFS_EXP_SWEEP_DIFFERENTIAL_HH
