/**
 * @file
 * Work-stealing thread pool for embarrassingly parallel sweeps.
 *
 * The evaluation pipeline is dominated by independent simulation runs
 * (benchmark x frequency x seed grids). Each cell builds its own
 * System, so cells share no mutable state and the only engine problems
 * are load balance, deterministic aggregation, and failure handling:
 *
 *  - Cells are distributed round-robin over per-worker deques; an idle
 *    worker steals from the opposite end of a victim's deque, so a
 *    straggler benchmark never serializes the tail of a sweep.
 *  - Results are keyed by cell index (the caller writes out[i]), so
 *    aggregated output is bit-identical to the serial order no matter
 *    how cells were scheduled.
 *  - The first cell that throws cancels all not-yet-started cells and
 *    is reported to the caller as a SweepError carrying the cell index;
 *    workers are always joined before runIndexed returns or throws.
 */

#ifndef DVFS_EXP_SWEEP_POOL_HH
#define DVFS_EXP_SWEEP_POOL_HH

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace dvfs::exp::sweep {

/** Thrown when a sweep cell fails; identifies the first failing cell. */
class SweepError : public std::runtime_error
{
  public:
    SweepError(std::size_t cell, const std::string &what)
        : std::runtime_error("sweep cell " + std::to_string(cell) +
                             " failed: " + what),
          _cell(cell)
    {
    }

    /** Index of the cell whose exception aborted the sweep. */
    std::size_t cell() const { return _cell; }

  private:
    std::size_t _cell;
};

/** Serialized progress callback: (cells done, cells total). */
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/**
 * Worker count to use when the caller has no opinion:
 * DVFS_SWEEP_WORKERS from the environment if set and >= 1, else
 * std::thread::hardware_concurrency(), else 1.
 */
unsigned defaultWorkers();

/**
 * Execute @p fn(i) for every i in [0, n) on @p workers threads.
 *
 * @p workers == 1 runs inline on the calling thread in index order
 * (the serial baseline); @p workers == 0 is a configuration error and
 * fatal()s. More workers than cells is fine — the extra workers find
 * their deques empty, fail to steal, and exit.
 *
 * @p fn must only touch per-cell state (it runs concurrently).
 * @p on_progress, if set, is invoked under a lock after each completed
 * cell.
 *
 * @throws SweepError wrapping the first cell failure, after cancelling
 *         remaining cells and joining all workers.
 */
void runIndexed(std::size_t n, unsigned workers,
                const std::function<void(std::size_t)> &fn,
                const ProgressFn &on_progress = nullptr);

/**
 * Map @p fn over [0, n) with runIndexed, collecting results by cell
 * index. R must be default-constructible and movable.
 */
template <typename R>
std::vector<R>
sweepMap(std::size_t n, unsigned workers,
         const std::function<R(std::size_t)> &fn,
         const ProgressFn &on_progress = nullptr)
{
    std::vector<R> out(n);
    runIndexed(
        n, workers, [&](std::size_t i) { out[i] = fn(i); }, on_progress);
    return out;
}

} // namespace dvfs::exp::sweep

#endif // DVFS_EXP_SWEEP_POOL_HH
