#include "exp/sweep/pool.hh"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "sim/log.hh"

namespace dvfs::exp::sweep {

unsigned
defaultWorkers()
{
    if (const char *env = std::getenv("DVFS_SWEEP_WORKERS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<unsigned>(v);
        warn("ignoring invalid DVFS_SWEEP_WORKERS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace {

/** One worker's cell queue. Owner pops the front, thieves the back. */
struct WorkDeque {
    std::mutex mtx;
    std::deque<std::size_t> cells;
};

/** Shared sweep state: cancellation, first failure, progress. */
struct SweepState {
    std::atomic<bool> cancelled{false};
    std::atomic<std::size_t> done{0};

    std::mutex failMtx;
    bool failed = false;
    std::size_t failCell = 0;
    std::string failWhat;

    std::mutex progressMtx;

    void
    recordFailure(std::size_t cell, const std::string &what)
    {
        {
            std::lock_guard<std::mutex> lock(failMtx);
            if (!failed) {
                failed = true;
                failCell = cell;
                failWhat = what;
            }
        }
        cancelled.store(true, std::memory_order_release);
    }
};

void
workerLoop(unsigned wid, unsigned workers, std::size_t total,
           std::vector<WorkDeque> &deques, SweepState &state,
           const std::function<void(std::size_t)> &fn,
           const ProgressFn &on_progress)
{
    for (;;) {
        if (state.cancelled.load(std::memory_order_acquire))
            return;

        std::size_t idx = 0;
        bool got = false;
        {
            WorkDeque &own = deques[wid];
            std::lock_guard<std::mutex> lock(own.mtx);
            if (!own.cells.empty()) {
                idx = own.cells.front();
                own.cells.pop_front();
                got = true;
            }
        }
        // Own deque drained: steal from the back of a victim's.
        for (unsigned k = 1; k < workers && !got; ++k) {
            WorkDeque &victim = deques[(wid + k) % workers];
            std::lock_guard<std::mutex> lock(victim.mtx);
            if (!victim.cells.empty()) {
                idx = victim.cells.back();
                victim.cells.pop_back();
                got = true;
            }
        }
        // Cells never spawn cells, so all-empty means the sweep is
        // complete (cells still in flight belong to other workers).
        if (!got)
            return;

        try {
            fn(idx);
        } catch (const std::exception &e) {
            state.recordFailure(idx, e.what());
            return;
        } catch (...) {
            state.recordFailure(idx, "unknown exception");
            return;
        }

        std::size_t d = state.done.fetch_add(1) + 1;
        if (on_progress) {
            std::lock_guard<std::mutex> lock(state.progressMtx);
            on_progress(d, total);
        }
    }
}

} // namespace

void
runIndexed(std::size_t n, unsigned workers,
           const std::function<void(std::size_t)> &fn,
           const ProgressFn &on_progress)
{
    if (workers == 0)
        fatal("sweep: worker count must be at least 1 (got 0)");

    if (workers == 1) {
        // Serial baseline: the calling thread walks cells in index
        // order, with the same failure contract as the pool.
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (const std::exception &e) {
                throw SweepError(i, e.what());
            } catch (...) {
                throw SweepError(i, "unknown exception");
            }
            if (on_progress)
                on_progress(i + 1, n);
        }
        return;
    }

    std::vector<WorkDeque> deques(workers);
    for (std::size_t i = 0; i < n; ++i)
        deques[i % workers].cells.push_back(i);

    SweepState state;
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            workerLoop(w, workers, n, deques, state, fn, on_progress);
        });
    }
    for (auto &t : threads)
        t.join();

    if (state.failed)
        throw SweepError(state.failCell, state.failWhat);
}

} // namespace dvfs::exp::sweep
