#include "exp/sweep/sweep.hh"

#include <iostream>

#include "exp/sweep/progress.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

namespace dvfs::exp::sweep {

std::size_t
SweepSpec::cellCount() const
{
    if (workloads.empty() || frequencies.empty() || seeds.empty())
        fatal("sweep spec has an empty dimension "
              "(%zu workloads, %zu frequencies, %zu seeds)",
              workloads.size(), frequencies.size(), seeds.size());
    return workloads.size() * frequencies.size() * seeds.size();
}

Cell
SweepSpec::cell(std::size_t index) const
{
    DVFS_ASSERT(index < cellCount(), "cell index out of range");
    Cell c;
    c.index = index;
    c.seed = index % seeds.size();
    index /= seeds.size();
    c.freq = index % frequencies.size();
    c.workload = index / frequencies.size();
    return c;
}

std::size_t
SweepSpec::indexOf(std::size_t workload, std::size_t freq,
                   std::size_t seed) const
{
    DVFS_ASSERT(workload < workloads.size(), "workload index out of range");
    DVFS_ASSERT(freq < frequencies.size(), "frequency index out of range");
    DVFS_ASSERT(seed < seeds.size(), "seed index out of range");
    return (workload * frequencies.size() + freq) * seeds.size() + seed;
}

std::size_t
SweepSpec::freqIndex(Frequency f) const
{
    for (std::size_t i = 0; i < frequencies.size(); ++i) {
        if (frequencies[i] == f)
            return i;
    }
    fatal("frequency %s is not part of this sweep", f.toString().c_str());
}

std::vector<std::uint64_t>
SweepSpec::replicateSeeds(std::uint64_t base, std::size_t n)
{
    // Each replicate is split directly off the base with its ordinal
    // as the salt — seed i never depends on how many replicates were
    // requested, mirroring the fault subsystem's per-class streams.
    std::vector<std::uint64_t> out;
    out.reserve(n);
    sim::Rng root(base);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(root.split(i).next());
    return out;
}

const FixedRunOutput &
SweepResult::at(std::size_t workload, std::size_t freq,
                std::size_t seed) const
{
    return cells.at(spec.indexOf(workload, freq, seed));
}

const FixedRunOutput &
SweepResult::at(std::size_t workload, Frequency f, std::size_t seed) const
{
    return cells.at(spec.indexOf(workload, spec.freqIndex(f), seed));
}

SweepRunner::SweepRunner(SweepSpec spec, Options opts)
    : _spec(std::move(spec)), _opts(std::move(opts))
{
}

SweepResult
SweepRunner::run()
{
    const std::size_t n = _spec.cellCount();

    SweepResult res;
    res.spec = _spec;
    res.cells.resize(n);

    ProgressMeter meter(_opts.label, _opts.progress ? &std::cerr : nullptr);

    // Each cell builds, runs and tears down its own System; the only
    // shared state is the result slot it owns.
    const SweepSpec &spec = _spec;
    auto runCell = [&spec, &res](std::size_t index) {
        Cell c = spec.cell(index);
        RunOptions opts = spec.runOptions;
        opts.seed = spec.seeds[c.seed];
        res.cells[index] = runFixed(spec.workloads[c.workload],
                                    spec.frequencies[c.freq], opts);
    };

    runIndexed(n, _opts.workers, runCell,
               _opts.progress ? meter.callback() : ProgressFn());
    if (_opts.progress)
        meter.finish(n);
    return res;
}

} // namespace dvfs::exp::sweep
