#include "exp/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/log.hh"

namespace dvfs::exp {

Table::Table(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    if (_headers.empty())
        fatal("a table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != _headers.size())
        fatal("table row has %zu cells, expected %zu", row.size(),
              _headers.size());
    _rows.push_back(std::move(row));
}

void
Table::addSeparator()
{
    _rows.emplace_back();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        width[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto print_line = [&](char fill) {
        for (std::size_t c = 0; c < width.size(); ++c) {
            os << '+' << std::string(width[c] + 2, fill);
        }
        os << "+\n";
    };
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            os << "| " << v << std::string(width[c] - v.size() + 1, ' ');
        }
        os << "|\n";
    };

    print_line('-');
    print_row(_headers);
    print_line('=');
    for (const auto &row : _rows) {
        if (row.empty())
            print_line('-');
        else
            print_row(row);
    }
    print_line('-');
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
Table::pct(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << (v * 100.0) << "%";
    return ss.str();
}

} // namespace dvfs::exp
