/**
 * @file
 * Blocking DVFSRPC1 client used by dvfsd_load, tests and examples.
 *
 * One RpcClient owns one connected socket. send() and recv() may be
 * driven from two threads (one sender, one receiver — the open-loop
 * load generator's shape); call() is the simple synchronous
 * request/response helper for everything else. Responses are matched
 * to requests by the request id the caller (or call()) assigned.
 */

#ifndef DVFS_NET_CLIENT_HH
#define DVFS_NET_CLIENT_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "net/proto.hh"

namespace dvfs::net {

class RpcClient
{
  public:
    /** Connect to a dvfsd TCP endpoint on 127.0.0.1. */
    static RpcClient connectTcp(std::uint16_t port);

    /** Connect to a dvfsd Unix-domain endpoint. */
    static RpcClient connectUnix(const std::string &path);

    RpcClient(RpcClient &&other) noexcept;
    RpcClient &operator=(RpcClient &&other) noexcept;
    RpcClient(const RpcClient &) = delete;
    RpcClient &operator=(const RpcClient &) = delete;
    ~RpcClient();

    /** Serialize and send one frame. Throws SocketError on failure. */
    void send(const Frame &frame);

    /**
     * Receive one frame (blocking).
     *
     * @throws SocketError on transport failure or mid-frame EOF,
     *         ProtoError on a malformed frame. A clean EOF between
     *         frames (server drained and closed) throws SocketError
     *         too — a client awaiting a reply is owed one.
     */
    Frame recv();

    /**
     * Send @p body as a request with a fresh id and wait for the
     * matching response.
     *
     * @throws SocketError / ProtoError as above, and SocketError if
     *         the response id does not match (protocol confusion).
     */
    Frame call(Body body);

    /** Next unused request id (atomically reserved). */
    std::uint64_t nextId() { return _nextId.fetch_add(1); }

  private:
    explicit RpcClient(int fd) : _fd(fd) {}

    int _fd = -1;
    std::atomic<std::uint64_t> _nextId{1};
};

} // namespace dvfs::net

#endif // DVFS_NET_CLIENT_HH
