/**
 * @file
 * Little-endian wire codec shared by every binary format in the tree.
 *
 * One strict-decode implementation serves both the .dvfstrace file
 * format (src/trace/) and the DVFSRPC1 request/response protocol
 * (src/net/proto.hh): an append-only Encoder, a bounds-checked
 * BasicCursor, the FNV-1a payload digest, and an LEB128 varint for
 * compact counts. The cursor is templated on an error policy so each
 * format reports overruns with its own structured exception type
 * (trace::TraceError, net::ProtoError) while sharing the single
 * decode implementation — a malformed length can never walk past the
 * input in either format.
 *
 * The policy contract:
 *
 *   struct Policy {
 *       [[noreturn]] static void truncated(std::uint64_t offset,
 *                                          const char *what);
 *       [[noreturn]] static void badValue(std::uint64_t offset,
 *                                         const char *what);
 *   };
 *
 * truncated() fires when a field would read past the input; badValue()
 * when the bytes themselves are impossible (e.g. an overlong varint).
 */

#ifndef DVFS_NET_WIRE_HH
#define DVFS_NET_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dvfs::net {

/** Append-only little-endian byte sink. */
class Encoder
{
  public:
    void u8(std::uint8_t v) { _bytes.push_back(v); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            _bytes.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            _bytes.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }

    /** Length-prefixed string (u64 length, then raw bytes). */
    void
    str(const std::string &s)
    {
        u64(s.size());
        _bytes.insert(_bytes.end(), s.begin(), s.end());
    }

    /** LEB128 varint: 7 value bits per byte, high bit = continue. */
    void
    varu64(std::uint64_t v)
    {
        while (v >= 0x80) {
            _bytes.push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        _bytes.push_back(static_cast<std::uint8_t>(v));
    }

    /** Raw byte range, no length prefix. */
    void
    raw(const std::uint8_t *data, std::size_t size)
    {
        _bytes.insert(_bytes.end(), data, data + size);
    }

    std::vector<std::uint8_t> &bytes() { return _bytes; }
    const std::vector<std::uint8_t> &bytes() const { return _bytes; }

  private:
    std::vector<std::uint8_t> _bytes;
};

/**
 * Bounds-checked little-endian reader over a byte range.
 *
 * The range is [begin, end) of a larger buffer; offsets in errors are
 * absolute within that buffer (@p base is the range's position).
 */
template <typename Policy>
class BasicCursor
{
  public:
    BasicCursor(const std::uint8_t *data, std::size_t size,
                std::uint64_t base)
        : _data(data), _size(size), _base(base)
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return _data[_pos++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(_data[_pos + i]) << (i * 8);
        _pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(_data[_pos + i]) << (i * 8);
        _pos += 8;
        return v;
    }

    std::string
    str()
    {
        std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(_data + _pos),
                      static_cast<std::size_t>(n));
        _pos += static_cast<std::size_t>(n);
        return s;
    }

    std::uint64_t
    varu64()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0;; shift += 7) {
            // 10 bytes (70 bits) is the longest legal u64 varint; the
            // tenth byte may only carry the top bit of the value.
            if (shift >= 64) {
                Policy::badValue(offset(), "varint longer than 64 bits");
            }
            const std::uint8_t b = u8();
            if (shift == 63 && (b & 0x7e) != 0) {
                Policy::badValue(offset(),
                                 "varint overflows 64 bits");
            }
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if ((b & 0x80) == 0)
                break;
        }
        return v;
    }

    /** Advance @p n bytes without reading them. */
    void
    skip(std::uint64_t n)
    {
        need(n);
        _pos += static_cast<std::size_t>(n);
    }

    /** Borrow @p n raw bytes (valid while the input buffer lives). */
    const std::uint8_t *
    raw(std::uint64_t n)
    {
        need(n);
        const std::uint8_t *p = _data + _pos;
        _pos += static_cast<std::size_t>(n);
        return p;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return _size - _pos; }

    /** Absolute offset of the next unread byte. */
    std::uint64_t offset() const { return _base + _pos; }

  private:
    void
    need(std::uint64_t n)
    {
        if (n > _size - _pos)
            Policy::truncated(offset(), "input ends inside a field");
    }

    const std::uint8_t *_data;
    std::size_t _size;
    std::size_t _pos = 0;
    std::uint64_t _base;
};

/** FNV-1a over a raw byte range (the payload digest). */
inline std::uint64_t
fnv1aBytes(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace dvfs::net

#endif // DVFS_NET_WIRE_HH
