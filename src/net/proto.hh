/**
 * @file
 * DVFSRPC1: the versioned request/response frame format dvfsd speaks.
 *
 * One frame is one message. The layout follows the .dvfstrace house
 * style (format.hh): a fixed header whose every byte is load-bearing,
 * then a digested payload serialized field-by-field little-endian (no
 * struct memcpy, so the format is independent of host padding):
 *
 *   offset  size  field
 *   ------  ----  -----------------------------------------------
 *        0     8  magic "DVFSRPC1" (little-endian u64)
 *        8     4  protocol version (u32, currently 1)
 *       12     4  payload length N (u32, <= kMaxPayloadBytes)
 *       16     8  payload digest: FNV-1a over bytes [24, 24+N) (u64)
 *       24     N  payload
 *
 *   payload := u64 request id
 *            | u32 message type (kResponseBit | MsgType)
 *            | u32 reserved (zero)
 *            | type-specific body fields
 *            | u32 trailing-section count, then per section
 *              u32 id | u32 reserved (zero) | u64 byte length | bytes
 *
 * The digest covers the whole payload — request id and type included —
 * so any bit flip below the header is a DigestMismatch before any
 * field is parsed; every header byte is magic, version, a length the
 * decoder cross-checks, or the digest itself. Malformed input of any
 * kind raises a structured ProtoError(kind, offset), never undefined
 * behaviour.
 *
 * Compatibility rules (DESIGN.md section 12, mirroring section 10.3):
 *
 *  - Unknown *trailing sections* are skipped: a newer peer may append
 *    sections after the known body fields of any message; v1 writers
 *    emit a count of zero. Adding a field to an existing message is
 *    done by appending a section, never by growing the body.
 *  - Unknown *message types* decode to a Frame with an empty body and
 *    rawType preserved; a server answers them with
 *    Error{UnknownMessage} instead of dropping the connection, so old
 *    servers and new clients interoperate.
 *  - Changing the layout of an existing body requires a version bump,
 *    which old peers reject with ProtoError{BadVersion}.
 */

#ifndef DVFS_NET_PROTO_HH
#define DVFS_NET_PROTO_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace dvfs::net {

/** "DVFSRPC1" as a little-endian u64. */
constexpr std::uint64_t kRpcMagic = 0x3143505253465644ULL;

/** Current protocol version. */
constexpr std::uint32_t kRpcVersion = 1;

/** Size of the fixed header preceding the payload. */
constexpr std::size_t kFrameHeaderBytes = 24;

/** Largest payload a peer must accept (bounds one trace upload). */
constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

/** High bit of the message-type word marks a response. */
constexpr std::uint32_t kResponseBit = 0x80000000u;

/** Message types (the request/response pairs share one id). */
enum class MsgType : std::uint32_t {
    UploadTrace = 1,  ///< load a .dvfstrace image into the server
    Predict = 2,      ///< all predictors at one target frequency
    WhatIfGrid = 3,   ///< all predictors across a target grid
    OptimalVf = 4,    ///< lowest V/f point within a slowdown bound
    Stats = 5,        ///< server/cache counters
    Error = 6,        ///< structured failure reply (response only)
};

/** Printable name of a message type ("?" when unknown). */
const char *msgTypeName(std::uint32_t raw);

/**
 * Structured failure of frame encoding/decoding.
 *
 * Every malformed input maps to exactly one kind; offset() is the
 * byte position at which the problem was detected.
 */
class ProtoError : public std::runtime_error
{
  public:
    enum class Kind {
        Truncated,      ///< input ends inside a field or section
        BadMagic,       ///< not a DVFSRPC1 frame
        BadVersion,     ///< protocol version this peer cannot parse
        BadLength,      ///< header length disagrees with the input
        Oversized,      ///< payload length exceeds kMaxPayloadBytes
        BadValue,       ///< field holds an impossible value
        DigestMismatch, ///< payload bytes do not match the digest
    };

    ProtoError(Kind kind, std::uint64_t offset, const std::string &what)
        : std::runtime_error("proto: " + what + " (at byte " +
                             std::to_string(offset) + ")"),
          _kind(kind), _offset(offset)
    {
    }

    Kind kind() const { return _kind; }

    /** Byte offset at which the error was detected. */
    std::uint64_t offset() const { return _offset; }

    /** Printable name of an error kind. */
    static const char *kindName(Kind kind);

  private:
    Kind _kind;
    std::uint64_t _offset;
};

/** Error{...} reply codes (application level, not decode level). */
enum class ErrorCode : std::uint32_t {
    BadRequest = 1,      ///< request decoded but is semantically invalid
    UnknownTrace = 2,    ///< no cached trace under the given digest
    UnknownMessage = 3,  ///< message type this server does not serve
    Overloaded = 4,      ///< shed under backpressure; retry later
    ShuttingDown = 5,    ///< server is draining; no new work accepted
    Internal = 6,        ///< unexpected server-side failure
};

/** Printable name of an error code ("?" when unknown). */
const char *errorCodeName(std::uint32_t raw);

// --- message bodies ----------------------------------------------------

/** Load a .dvfstrace image; the reply names it by payload digest. */
struct UploadTraceReq {
    std::vector<std::uint8_t> image;  ///< a complete .dvfstrace file
};

struct UploadTraceResp {
    std::uint64_t traceDigest = 0;  ///< cache key for later queries
    std::uint32_t alreadyCached = 0;  ///< 1 when the upload was a no-op
    std::uint32_t baseMHz = 0;
    std::uint64_t totalTime = 0;
    std::uint64_t epochs = 0;
    std::uint64_t threads = 0;
};

/** Every registry predictor at one target frequency. */
struct PredictReq {
    std::uint64_t traceDigest = 0;
    std::uint32_t targetMHz = 0;
};

struct PredictCell {
    std::string predictor;       ///< canonical registry spelling
    std::uint64_t predicted = 0; ///< predicted total time (ticks)
};

struct PredictResp {
    std::uint64_t baseTotalTime = 0;  ///< recorded time at base freq
    std::vector<PredictCell> cells;
};

/** Every registry predictor across a target-frequency grid. */
struct WhatIfGridReq {
    std::uint64_t traceDigest = 0;
    std::vector<std::uint32_t> targetsMHz;
};

struct WhatIfGridResp {
    std::vector<std::string> predictors;
    std::vector<std::uint32_t> targetsMHz;
    /** Predicted ticks, target-major: [t * predictors + p]. */
    std::vector<std::uint64_t> predicted;
};

/**
 * Lowest operating point whose predicted slowdown vs the table's
 * highest point stays within the bound — the static energy-manager
 * query ("optimal V/f under this power cap"): on the monotone Haswell
 * V(f) curve the minimum admissible frequency is the minimum-energy
 * point.
 */
struct OptimalVfReq {
    std::uint64_t traceDigest = 0;
    std::uint32_t slowdownPermille = 0;  ///< e.g. 100 = 10% bound
    std::uint32_t stepMHz = 0;           ///< 0 = table default (125)
    std::string predictor;               ///< "" = DEP+BURST
};

struct OptimalVfResp {
    std::uint32_t chosenMHz = 0;
    std::uint32_t pad = 0;
    std::uint64_t microvolts = 0;  ///< supply voltage at chosenMHz
    std::uint64_t predictedAtChosen = 0;
    std::uint64_t predictedAtHighest = 0;
};

struct StatsReq {};

/** Server counters; all cumulative since process start. */
struct StatsResp {
    std::uint64_t requests = 0;       ///< frames decoded
    std::uint64_t responses = 0;      ///< non-error replies sent
    std::uint64_t errors = 0;         ///< Error replies sent
    std::uint64_t tracesCached = 0;   ///< live cache entries
    std::uint64_t cacheBytes = 0;     ///< bytes held by the cache
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEvictions = 0;
    std::uint64_t shedOverload = 0;   ///< requests shed by backpressure
    std::uint64_t batches = 0;        ///< pool dispatch batches run
    std::uint64_t maxBatch = 0;       ///< largest batch so far
};

struct ErrorResp {
    std::uint32_t code = 0;    ///< ErrorCode
    std::uint64_t offset = 0;  ///< decode position when applicable
    std::string message;
};

/** Unknown message type: body skipped, rawType preserved. */
using Body =
    std::variant<std::monostate, UploadTraceReq, UploadTraceResp,
                 PredictReq, PredictResp, WhatIfGridReq, WhatIfGridResp,
                 OptimalVfReq, OptimalVfResp, StatsReq, StatsResp,
                 ErrorResp>;

/** One decoded (or to-be-encoded) message. */
struct Frame {
    std::uint64_t requestId = 0;
    bool isResponse = false;
    /** MsgType value without the response bit. */
    std::uint32_t rawType = 0;
    Body body;

    MsgType type() const { return static_cast<MsgType>(rawType); }

    /** Build a request/response frame with the type derived from @p b. */
    static Frame request(std::uint64_t id, Body b);
    static Frame response(std::uint64_t id, Body b);
};

/** Serialize @p frame to a complete wire image (header + payload). */
std::vector<std::uint8_t> encodeFrame(const Frame &frame);

/**
 * Validate a frame header and return its payload length.
 *
 * For stream peers: read kFrameHeaderBytes, call this, then read the
 * returned number of payload bytes and hand both to decodeFrame.
 *
 * @throws ProtoError{BadMagic, BadVersion, Oversized, Truncated}
 */
std::uint32_t peekPayloadLength(const std::uint8_t *header,
                                std::size_t size);

/**
 * Decode a complete frame image.
 *
 * @throws ProtoError on any malformed input (see above).
 */
Frame decodeFrame(const std::uint8_t *data, std::size_t size);
Frame decodeFrame(const std::vector<std::uint8_t> &image);

} // namespace dvfs::net

#endif // DVFS_NET_PROTO_HH
