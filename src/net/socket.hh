/**
 * @file
 * Thin POSIX socket helpers shared by dvfsd and its clients.
 *
 * TCP endpoints bind 127.0.0.1 only (dvfsd is an internal service; a
 * fronting proxy owns external exposure), Unix-domain endpoints take a
 * filesystem path. All failures raise SocketError with errno context —
 * callers decide whether that is fatal (daemon startup) or retryable
 * (a load generator racing the daemon's bind).
 */

#ifndef DVFS_NET_SOCKET_HH
#define DVFS_NET_SOCKET_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dvfs::net {

class SocketError : public std::runtime_error
{
  public:
    explicit SocketError(const std::string &what)
        : std::runtime_error("socket: " + what)
    {
    }
};

/**
 * Listen on 127.0.0.1:@p port (0 = ephemeral). Returns the fd;
 * @p chosen_port receives the actual port.
 */
int listenTcp(std::uint16_t port, std::uint16_t *chosen_port);

/** Listen on a Unix-domain socket, replacing a stale file at @p path. */
int listenUnix(const std::string &path);

/** Connect to 127.0.0.1:@p port. */
int connectTcp(std::uint16_t port);

/** Connect to the Unix-domain socket at @p path. */
int connectUnix(const std::string &path);

/** Write exactly @p n bytes (retrying short writes); throws on error. */
void sendAll(int fd, const std::uint8_t *data, std::size_t n);

/**
 * Read exactly @p n bytes. Returns false on clean EOF at offset 0
 * (peer closed between frames); throws on error or mid-buffer EOF.
 */
bool recvAll(int fd, std::uint8_t *data, std::size_t n);

/** Set O_NONBLOCK. */
void setNonBlocking(int fd);

} // namespace dvfs::net

#endif // DVFS_NET_SOCKET_HH
