#include "net/socket.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dvfs::net {

namespace {

[[noreturn]] void
fail(const std::string &what)
{
    throw SocketError(what + ": " + std::strerror(errno));
}

sockaddr_un
unixAddr(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw SocketError("unix socket path '" + path +
                          "' exceeds sun_path");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

int
listenTcp(std::uint16_t port, std::uint16_t *chosen_port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fail("socket(AF_INET)");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        ::close(fd);
        fail("bind(127.0.0.1:" + std::to_string(port) + ")");
    }
    if (::listen(fd, 128) < 0) {
        ::close(fd);
        fail("listen");
    }
    if (chosen_port) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &len) < 0) {
            ::close(fd);
            fail("getsockname");
        }
        *chosen_port = ntohs(bound.sin_port);
    }
    return fd;
}

int
listenUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fail("socket(AF_UNIX)");
    sockaddr_un addr = unixAddr(path);
    ::unlink(path.c_str());  // replace a stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        ::close(fd);
        fail("bind('" + path + "')");
    }
    if (::listen(fd, 128) < 0) {
        ::close(fd);
        fail("listen('" + path + "')");
    }
    return fd;
}

int
connectTcp(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fail("socket(AF_INET)");
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        fail("connect(127.0.0.1:" + std::to_string(port) + ")");
    }
    return fd;
}

int
connectUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fail("socket(AF_UNIX)");
    sockaddr_un addr = unixAddr(path);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        fail("connect('" + path + "')");
    }
    return fd;
}

void
sendAll(int fd, const std::uint8_t *data, std::size_t n)
{
    std::size_t sent = 0;
    while (sent < n) {
        ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            fail("send");
        }
        sent += static_cast<std::size_t>(w);
    }
}

bool
recvAll(int fd, std::uint8_t *data, std::size_t n)
{
    std::size_t got = 0;
    while (got < n) {
        ssize_t r = ::recv(fd, data + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            fail("recv");
        }
        if (r == 0) {
            if (got == 0)
                return false;  // clean EOF between frames
            throw SocketError("peer closed mid-frame (" +
                              std::to_string(got) + " of " +
                              std::to_string(n) + " bytes)");
        }
        got += static_cast<std::size_t>(r);
    }
    return true;
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fail("fcntl(O_NONBLOCK)");
}

} // namespace dvfs::net
