#include "net/proto.hh"

#include "net/wire.hh"

namespace dvfs::net {

namespace {

/** Maps shared-cursor failures onto structured ProtoErrors. */
struct ProtoWirePolicy {
    [[noreturn]] static void
    truncated(std::uint64_t offset, const char *what)
    {
        throw ProtoError(ProtoError::Kind::Truncated, offset, what);
    }

    [[noreturn]] static void
    badValue(std::uint64_t offset, const char *what)
    {
        throw ProtoError(ProtoError::Kind::BadValue, offset, what);
    }
};

using Cursor = BasicCursor<ProtoWirePolicy>;

void
checkZero(std::uint32_t v, std::uint64_t offset, const char *what)
{
    if (v != 0) {
        throw ProtoError(ProtoError::Kind::BadValue, offset,
                         std::string("reserved field ") + what +
                             " is nonzero");
    }
}

/** Range-check a count field against the bytes that must back it. */
void
checkCount(const Cursor &c, std::uint64_t count, std::uint64_t min_bytes,
           const char *what)
{
    if (min_bytes != 0 && count > c.remaining() / min_bytes) {
        throw ProtoError(ProtoError::Kind::BadValue, c.offset(),
                         std::string(what) +
                             " count exceeds the payload's bytes");
    }
}

std::uint32_t
nonZeroMHz(Cursor &c, const char *what)
{
    const std::uint32_t mhz = c.u32();
    if (mhz == 0) {
        throw ProtoError(ProtoError::Kind::BadValue, c.offset(),
                         std::string(what) + " frequency is zero");
    }
    return mhz;
}

// --- body encoders -----------------------------------------------------

void
encodeBody(Encoder &e, const UploadTraceReq &m)
{
    e.u64(m.image.size());
    e.raw(m.image.data(), m.image.size());
}

void
encodeBody(Encoder &e, const UploadTraceResp &m)
{
    e.u64(m.traceDigest);
    e.u32(m.alreadyCached);
    e.u32(m.baseMHz);
    e.u64(m.totalTime);
    e.u64(m.epochs);
    e.u64(m.threads);
}

void
encodeBody(Encoder &e, const PredictReq &m)
{
    e.u64(m.traceDigest);
    e.u32(m.targetMHz);
    e.u32(0);
}

void
encodeBody(Encoder &e, const PredictResp &m)
{
    e.u64(m.baseTotalTime);
    e.varu64(m.cells.size());
    for (const PredictCell &c : m.cells) {
        e.varu64(c.predictor.size());
        e.raw(reinterpret_cast<const std::uint8_t *>(
                  c.predictor.data()),
              c.predictor.size());
        e.u64(c.predicted);
    }
}

void
encodeBody(Encoder &e, const WhatIfGridReq &m)
{
    e.u64(m.traceDigest);
    e.varu64(m.targetsMHz.size());
    for (std::uint32_t t : m.targetsMHz)
        e.u32(t);
}

void
encodeBody(Encoder &e, const WhatIfGridResp &m)
{
    e.varu64(m.predictors.size());
    for (const std::string &p : m.predictors) {
        e.varu64(p.size());
        e.raw(reinterpret_cast<const std::uint8_t *>(p.data()),
              p.size());
    }
    e.varu64(m.targetsMHz.size());
    for (std::uint32_t t : m.targetsMHz)
        e.u32(t);
    for (std::uint64_t v : m.predicted)
        e.u64(v);
}

void
encodeBody(Encoder &e, const OptimalVfReq &m)
{
    e.u64(m.traceDigest);
    e.u32(m.slowdownPermille);
    e.u32(m.stepMHz);
    e.str(m.predictor);
}

void
encodeBody(Encoder &e, const OptimalVfResp &m)
{
    e.u32(m.chosenMHz);
    e.u32(0);
    e.u64(m.microvolts);
    e.u64(m.predictedAtChosen);
    e.u64(m.predictedAtHighest);
}

void
encodeBody(Encoder &, const StatsReq &)
{
}

void
encodeBody(Encoder &e, const StatsResp &m)
{
    e.u64(m.requests);
    e.u64(m.responses);
    e.u64(m.errors);
    e.u64(m.tracesCached);
    e.u64(m.cacheBytes);
    e.u64(m.cacheHits);
    e.u64(m.cacheMisses);
    e.u64(m.cacheEvictions);
    e.u64(m.shedOverload);
    e.u64(m.batches);
    e.u64(m.maxBatch);
}

void
encodeBody(Encoder &e, const ErrorResp &m)
{
    e.u32(m.code);
    e.u32(0);
    e.u64(m.offset);
    e.str(m.message);
}

// --- body decoders -----------------------------------------------------

std::string
varStr(Cursor &c, const char *what)
{
    const std::uint64_t n = c.varu64();
    checkCount(c, n, 1, what);
    const std::uint8_t *p = c.raw(n);
    return std::string(reinterpret_cast<const char *>(p),
                       static_cast<std::size_t>(n));
}

UploadTraceReq
decodeUploadTraceReq(Cursor &c)
{
    UploadTraceReq m;
    const std::uint64_t n = c.u64();
    checkCount(c, n, 1, "trace image byte");
    const std::uint8_t *p = c.raw(n);
    m.image.assign(p, p + n);
    return m;
}

UploadTraceResp
decodeUploadTraceResp(Cursor &c)
{
    UploadTraceResp m;
    m.traceDigest = c.u64();
    m.alreadyCached = c.u32();
    if (m.alreadyCached > 1) {
        throw ProtoError(ProtoError::Kind::BadValue, c.offset(),
                         "uploadTrace.alreadyCached is not a boolean");
    }
    m.baseMHz = c.u32();
    m.totalTime = c.u64();
    m.epochs = c.u64();
    m.threads = c.u64();
    return m;
}

PredictReq
decodePredictReq(Cursor &c)
{
    PredictReq m;
    m.traceDigest = c.u64();
    m.targetMHz = nonZeroMHz(c, "predict.target");
    checkZero(c.u32(), c.offset(), "predict.pad");
    return m;
}

PredictResp
decodePredictResp(Cursor &c)
{
    PredictResp m;
    m.baseTotalTime = c.u64();
    const std::uint64_t n = c.varu64();
    checkCount(c, n, 1 + 8, "predict cell");
    m.cells.resize(static_cast<std::size_t>(n));
    for (PredictCell &cell : m.cells) {
        cell.predictor = varStr(c, "predictor name byte");
        cell.predicted = c.u64();
    }
    return m;
}

WhatIfGridReq
decodeWhatIfGridReq(Cursor &c)
{
    WhatIfGridReq m;
    m.traceDigest = c.u64();
    const std::uint64_t n = c.varu64();
    checkCount(c, n, 4, "target");
    m.targetsMHz.resize(static_cast<std::size_t>(n));
    for (std::uint32_t &t : m.targetsMHz)
        t = nonZeroMHz(c, "whatIfGrid.target");
    return m;
}

WhatIfGridResp
decodeWhatIfGridResp(Cursor &c)
{
    WhatIfGridResp m;
    const std::uint64_t np = c.varu64();
    checkCount(c, np, 1, "predictor");
    m.predictors.resize(static_cast<std::size_t>(np));
    for (std::string &p : m.predictors)
        p = varStr(c, "predictor name byte");
    const std::uint64_t nt = c.varu64();
    checkCount(c, nt, 4, "target");
    m.targetsMHz.resize(static_cast<std::size_t>(nt));
    for (std::uint32_t &t : m.targetsMHz)
        t = nonZeroMHz(c, "whatIfGrid.target");
    if (np != 0 && nt > c.remaining() / 8 / np) {
        throw ProtoError(ProtoError::Kind::BadValue, c.offset(),
                         "whatIfGrid cell count exceeds the "
                         "payload's bytes");
    }
    m.predicted.resize(static_cast<std::size_t>(np * nt));
    for (std::uint64_t &v : m.predicted)
        v = c.u64();
    return m;
}

OptimalVfReq
decodeOptimalVfReq(Cursor &c)
{
    OptimalVfReq m;
    m.traceDigest = c.u64();
    m.slowdownPermille = c.u32();
    m.stepMHz = c.u32();
    m.predictor = c.str();
    return m;
}

OptimalVfResp
decodeOptimalVfResp(Cursor &c)
{
    OptimalVfResp m;
    m.chosenMHz = nonZeroMHz(c, "optimalVf.chosen");
    checkZero(c.u32(), c.offset(), "optimalVf.pad");
    m.microvolts = c.u64();
    m.predictedAtChosen = c.u64();
    m.predictedAtHighest = c.u64();
    return m;
}

StatsResp
decodeStatsResp(Cursor &c)
{
    StatsResp m;
    m.requests = c.u64();
    m.responses = c.u64();
    m.errors = c.u64();
    m.tracesCached = c.u64();
    m.cacheBytes = c.u64();
    m.cacheHits = c.u64();
    m.cacheMisses = c.u64();
    m.cacheEvictions = c.u64();
    m.shedOverload = c.u64();
    m.batches = c.u64();
    m.maxBatch = c.u64();
    return m;
}

ErrorResp
decodeErrorResp(Cursor &c)
{
    ErrorResp m;
    m.code = c.u32();
    if (m.code == 0 ||
        m.code > static_cast<std::uint32_t>(ErrorCode::Internal)) {
        throw ProtoError(ProtoError::Kind::BadValue, c.offset(),
                         "error.code is not an ErrorCode");
    }
    checkZero(c.u32(), c.offset(), "error.pad");
    m.offset = c.u64();
    m.message = c.str();
    return m;
}

Body
decodeBody(Cursor &c, std::uint32_t raw_type, bool is_response)
{
    switch (static_cast<MsgType>(raw_type)) {
      case MsgType::UploadTrace:
        return is_response ? Body(decodeUploadTraceResp(c))
                           : Body(decodeUploadTraceReq(c));
      case MsgType::Predict:
        return is_response ? Body(decodePredictResp(c))
                           : Body(decodePredictReq(c));
      case MsgType::WhatIfGrid:
        return is_response ? Body(decodeWhatIfGridResp(c))
                           : Body(decodeWhatIfGridReq(c));
      case MsgType::OptimalVf:
        return is_response ? Body(decodeOptimalVfResp(c))
                           : Body(decodeOptimalVfReq(c));
      case MsgType::Stats:
        return is_response ? Body(decodeStatsResp(c)) : Body(StatsReq{});
      case MsgType::Error:
        if (is_response)
            return Body(decodeErrorResp(c));
        throw ProtoError(ProtoError::Kind::BadValue, c.offset(),
                         "Error message with the request direction");
      default:
        // Unknown message type: a newer peer's extension. The digest
        // already vouched for the bytes; skip the body so the caller
        // can answer Error{UnknownMessage} instead of disconnecting.
        c.skip(c.remaining());
        return Body(std::monostate{});
    }
}

/** Skip the trailing-section list (forward-compat extension point). */
void
skipTrailingSections(Cursor &c)
{
    const std::uint32_t sections = c.u32();
    for (std::uint32_t s = 0; s < sections; ++s) {
        c.u32();  // id: every id is skippable in v1
        checkZero(c.u32(), c.offset(), "section.reserved");
        const std::uint64_t length = c.u64();
        if (length > c.remaining()) {
            throw ProtoError(ProtoError::Kind::Truncated, c.offset(),
                             "section length exceeds the payload");
        }
        c.skip(length);
    }
}

std::uint32_t
rawTypeOf(const Body &body, bool &is_response)
{
    struct Typer {
        bool resp = false;
        std::uint32_t
        operator()(const std::monostate &) const
        {
            return 0;
        }
        std::uint32_t
        type(MsgType t, bool r)
        {
            resp = r;
            return static_cast<std::uint32_t>(t);
        }
        std::uint32_t operator()(const UploadTraceReq &) { return type(MsgType::UploadTrace, false); }
        std::uint32_t operator()(const UploadTraceResp &) { return type(MsgType::UploadTrace, true); }
        std::uint32_t operator()(const PredictReq &) { return type(MsgType::Predict, false); }
        std::uint32_t operator()(const PredictResp &) { return type(MsgType::Predict, true); }
        std::uint32_t operator()(const WhatIfGridReq &) { return type(MsgType::WhatIfGrid, false); }
        std::uint32_t operator()(const WhatIfGridResp &) { return type(MsgType::WhatIfGrid, true); }
        std::uint32_t operator()(const OptimalVfReq &) { return type(MsgType::OptimalVf, false); }
        std::uint32_t operator()(const OptimalVfResp &) { return type(MsgType::OptimalVf, true); }
        std::uint32_t operator()(const StatsReq &) { return type(MsgType::Stats, false); }
        std::uint32_t operator()(const StatsResp &) { return type(MsgType::Stats, true); }
        std::uint32_t operator()(const ErrorResp &) { return type(MsgType::Error, true); }
    } typer;
    const std::uint32_t raw = std::visit(typer, body);
    is_response = typer.resp;
    return raw;
}

} // namespace

const char *
msgTypeName(std::uint32_t raw)
{
    switch (static_cast<MsgType>(raw)) {
      case MsgType::UploadTrace: return "UploadTrace";
      case MsgType::Predict: return "Predict";
      case MsgType::WhatIfGrid: return "WhatIfGrid";
      case MsgType::OptimalVf: return "OptimalVf";
      case MsgType::Stats: return "Stats";
      case MsgType::Error: return "Error";
    }
    return "?";
}

const char *
errorCodeName(std::uint32_t raw)
{
    switch (static_cast<ErrorCode>(raw)) {
      case ErrorCode::BadRequest: return "BadRequest";
      case ErrorCode::UnknownTrace: return "UnknownTrace";
      case ErrorCode::UnknownMessage: return "UnknownMessage";
      case ErrorCode::Overloaded: return "Overloaded";
      case ErrorCode::ShuttingDown: return "ShuttingDown";
      case ErrorCode::Internal: return "Internal";
    }
    return "?";
}

const char *
ProtoError::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Truncated: return "Truncated";
      case Kind::BadMagic: return "BadMagic";
      case Kind::BadVersion: return "BadVersion";
      case Kind::BadLength: return "BadLength";
      case Kind::Oversized: return "Oversized";
      case Kind::BadValue: return "BadValue";
      case Kind::DigestMismatch: return "DigestMismatch";
    }
    return "?";
}

Frame
Frame::request(std::uint64_t id, Body b)
{
    Frame f;
    f.requestId = id;
    f.body = std::move(b);
    f.rawType = rawTypeOf(f.body, f.isResponse);
    return f;
}

Frame
Frame::response(std::uint64_t id, Body b)
{
    return request(id, std::move(b));
}

std::vector<std::uint8_t>
encodeFrame(const Frame &frame)
{
    bool is_response = false;
    std::uint32_t raw = rawTypeOf(frame.body, is_response);
    if (raw == 0) {
        // An unknown-type frame round-trips its raw type; there is no
        // body to re-encode, which is fine — only tests and proxies
        // ever re-encode one.
        raw = frame.rawType;
        is_response = frame.isResponse;
    }

    Encoder payload;
    payload.u64(frame.requestId);
    payload.u32(raw | (is_response ? kResponseBit : 0));
    payload.u32(0);
    std::visit(
        [&payload](const auto &body) {
            using T = std::decay_t<decltype(body)>;
            if constexpr (!std::is_same_v<T, std::monostate>)
                encodeBody(payload, body);
        },
        frame.body);
    payload.u32(0);  // trailing-section count (none in v1)

    Encoder file;
    file.u64(kRpcMagic);
    file.u32(kRpcVersion);
    file.u32(static_cast<std::uint32_t>(payload.bytes().size()));
    file.u64(fnv1aBytes(payload.bytes().data(), payload.bytes().size()));
    file.raw(payload.bytes().data(), payload.bytes().size());
    return std::move(file.bytes());
}

std::uint32_t
peekPayloadLength(const std::uint8_t *header, std::size_t size)
{
    if (size < kFrameHeaderBytes) {
        throw ProtoError(ProtoError::Kind::Truncated, size,
                         "input smaller than the frame header");
    }
    Cursor c(header, kFrameHeaderBytes, 0);
    if (c.u64() != kRpcMagic) {
        throw ProtoError(ProtoError::Kind::BadMagic, 0,
                         "not a DVFSRPC1 frame");
    }
    const std::uint32_t version = c.u32();
    if (version != kRpcVersion) {
        throw ProtoError(ProtoError::Kind::BadVersion, 8,
                         "unsupported protocol version " +
                             std::to_string(version));
    }
    const std::uint32_t length = c.u32();
    if (length > kMaxPayloadBytes) {
        throw ProtoError(ProtoError::Kind::Oversized, 12,
                         "payload length " + std::to_string(length) +
                             " exceeds the frame cap");
    }
    return length;
}

Frame
decodeFrame(const std::uint8_t *data, std::size_t size)
{
    const std::uint32_t length = peekPayloadLength(data, size);
    if (size != kFrameHeaderBytes + length) {
        throw ProtoError(size < kFrameHeaderBytes + length
                             ? ProtoError::Kind::Truncated
                             : ProtoError::Kind::BadLength,
                         12,
                         "header length disagrees with the input size");
    }

    Cursor header(data, kFrameHeaderBytes, 0);
    header.skip(16);
    const std::uint64_t stored_digest = header.u64();

    const std::uint8_t *payload = data + kFrameHeaderBytes;
    if (fnv1aBytes(payload, length) != stored_digest) {
        throw ProtoError(ProtoError::Kind::DigestMismatch, 16,
                         "payload digest mismatch (corrupt frame)");
    }

    // The digest has vouched for every payload byte; parse fields.
    Cursor c(payload, length, kFrameHeaderBytes);
    Frame frame;
    frame.requestId = c.u64();
    const std::uint32_t type_word = c.u32();
    frame.isResponse = (type_word & kResponseBit) != 0;
    frame.rawType = type_word & ~kResponseBit;
    checkZero(c.u32(), c.offset(), "frame.reserved");
    frame.body = decodeBody(c, frame.rawType, frame.isResponse);
    if (std::holds_alternative<std::monostate>(frame.body)) {
        // Unknown type: the body skip consumed everything, trailing
        // sections included.
        return frame;
    }
    skipTrailingSections(c);
    if (c.remaining() != 0) {
        throw ProtoError(ProtoError::Kind::BadValue, c.offset(),
                         "trailing bytes after the last section");
    }
    return frame;
}

Frame
decodeFrame(const std::vector<std::uint8_t> &image)
{
    return decodeFrame(image.data(), image.size());
}

} // namespace dvfs::net
