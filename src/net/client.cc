#include "net/client.hh"

#include <utility>

#include <unistd.h>

#include "net/socket.hh"

namespace dvfs::net {

RpcClient
RpcClient::connectTcp(std::uint16_t port)
{
    return RpcClient(net::connectTcp(port));
}

RpcClient
RpcClient::connectUnix(const std::string &path)
{
    return RpcClient(net::connectUnix(path));
}

RpcClient::RpcClient(RpcClient &&other) noexcept
    : _fd(other._fd), _nextId(other._nextId.load())
{
    other._fd = -1;
}

RpcClient &
RpcClient::operator=(RpcClient &&other) noexcept
{
    if (this != &other) {
        if (_fd >= 0)
            ::close(_fd);
        _fd = other._fd;
        _nextId.store(other._nextId.load());
        other._fd = -1;
    }
    return *this;
}

RpcClient::~RpcClient()
{
    if (_fd >= 0)
        ::close(_fd);
}

void
RpcClient::send(const Frame &frame)
{
    const std::vector<std::uint8_t> bytes = encodeFrame(frame);
    sendAll(_fd, bytes.data(), bytes.size());
}

Frame
RpcClient::recv()
{
    std::uint8_t header[kFrameHeaderBytes];
    if (!recvAll(_fd, header, sizeof(header)))
        throw SocketError("server closed while a reply was pending");

    const std::uint32_t payload =
        peekPayloadLength(header, sizeof(header));
    std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload);
    std::copy(header, header + kFrameHeaderBytes, frame.begin());
    if (payload > 0 &&
        !recvAll(_fd, frame.data() + kFrameHeaderBytes, payload)) {
        throw SocketError("server closed mid-frame");
    }
    return decodeFrame(frame);
}

Frame
RpcClient::call(Body body)
{
    const std::uint64_t id = nextId();
    send(Frame::request(id, std::move(body)));
    Frame resp = recv();
    if (resp.requestId != id || !resp.isResponse) {
        throw SocketError(
            "response id " + std::to_string(resp.requestId) +
            " does not match request id " + std::to_string(id));
    }
    return resp;
}

} // namespace dvfs::net
