#include "fault/auditor.hh"

#include "sim/log.hh"

namespace dvfs::fault {

InvariantAuditor::InvariantAuditor(os::System &sys,
                                   const AuditorConfig &cfg)
    : _sys(sys), _cfg(cfg)
{
    if (_cfg.interval == 0)
        fatal("auditor interval must be positive");
    if (_cfg.watchdogTimeout < _cfg.interval)
        fatal("watchdog timeout must be at least one audit interval");
}

void
InvariantAuditor::attach()
{
    if (_attached)
        fatal("InvariantAuditor::attach called twice");
    _attached = true;
    _sys.addListener(this);
    _lastProgressTick = _sys.now();
    scheduleNext();
}

void
InvariantAuditor::scheduleNext()
{
    _sys.eventQueue().scheduleAfter(_cfg.interval, [this] { audit(); });
}

void
InvariantAuditor::violation(const char *check, std::string message)
{
    if (_cfg.haltOnViolation)
        panic("invariant '%s' violated at tick %llu: %s", check,
              static_cast<unsigned long long>(_sys.now()),
              message.c_str());
    if (_violations.size() < _cfg.maxViolations)
        _violations.push_back(
            Violation{_sys.now(), check, std::move(message)});
}

void
InvariantAuditor::onSyncEvent(const os::SyncEvent &ev, const os::System &)
{
    // The trace is the predictors' ground truth: it must never move
    // backwards in time.
    if (ev.tick < _lastEventTick) {
        violation("monotonic-trace",
                  strprintf("event %s at tick %llu after tick %llu",
                            os::syncEventKindName(ev.kind),
                            static_cast<unsigned long long>(ev.tick),
                            static_cast<unsigned long long>(_lastEventTick)));
    }
    _lastEventTick = ev.tick;
}

void
InvariantAuditor::audit()
{
    if (_sys.runEnded() || _sys.stopRequested())
        return;
    ++_audits;
    checkMonotonicTime();
    checkSchedulerOccupancy();
    checkThreadConservation();
    checkEpochAccounting();
    checkWatchdog();
    if (!_watchdog.fired)
        scheduleNext();
}

void
InvariantAuditor::checkMonotonicTime()
{
    ++_checksRun;
    const Tick now = _sys.now();
    if (now < _lastAuditTick) {
        violation("monotonic-clock",
                  strprintf("audit at tick %llu after tick %llu",
                            static_cast<unsigned long long>(now),
                            static_cast<unsigned long long>(_lastAuditTick)));
    }
    _lastAuditTick = now;
}

void
InvariantAuditor::checkSchedulerOccupancy()
{
    ++_checksRun;
    const os::Scheduler &sched = _sys.scheduler();

    // Every occupied core must hold a Running thread that agrees
    // about its placement, and vice versa.
    std::uint32_t occupied = 0;
    for (std::uint32_t c = 0; c < sched.cores(); ++c) {
        os::ThreadId tid = sched.occupant(c);
        if (tid == os::kNoThread)
            continue;
        ++occupied;
        if (tid >= _sys.numThreads()) {
            violation("sched-occupancy",
                      strprintf("core %u holds unknown thread %u", c, tid));
            continue;
        }
        const os::Thread &t = _sys.thread(tid);
        if (t.state != os::ThreadState::Running ||
            t.core != static_cast<std::int32_t>(c)) {
            violation(
                "sched-occupancy",
                strprintf("core %u holds thread %u ('%s') in state %s "
                          "with core field %d",
                          c, tid, t.name.c_str(),
                          os::threadStateName(t.state), t.core));
        }
    }

    std::uint32_t running = 0;
    for (std::size_t i = 0; i < _sys.numThreads(); ++i) {
        const os::Thread &t = _sys.thread(static_cast<os::ThreadId>(i));
        if (t.state != os::ThreadState::Running)
            continue;
        ++running;
        if (t.core < 0 ||
            static_cast<std::uint32_t>(t.core) >= sched.cores() ||
            sched.occupant(static_cast<std::uint32_t>(t.core)) != t.id) {
            violation("sched-occupancy",
                      strprintf("running thread %u ('%s') not the "
                                "occupant of its core %d",
                                t.id, t.name.c_str(), t.core));
        }
    }

    if (occupied != running || occupied != sched.busyCores()) {
        violation("sched-occupancy",
                  strprintf("occupied cores %u, running threads %u, "
                            "busyCores() %u disagree",
                            occupied, running, sched.busyCores()));
    }
}

void
InvariantAuditor::checkThreadConservation()
{
    ++_checksRun;
    // Committed busy time only covers completed actions, each of which
    // ran inside [spawn, now]: a thread can never have been busier
    // than it has been alive.
    const Tick now = _sys.now();
    for (std::size_t i = 0; i < _sys.numThreads(); ++i) {
        const os::Thread &t = _sys.thread(static_cast<os::ThreadId>(i));
        const Tick alive = now - t.spawnTick;
        if (t.counters.busyTime > alive + _cfg.decompositionSlack) {
            violation("busy-conservation",
                      strprintf("thread %u ('%s') busy %llu ticks but "
                                "alive only %llu",
                                t.id, t.name.c_str(),
                                static_cast<unsigned long long>(
                                    t.counters.busyTime),
                                static_cast<unsigned long long>(alive)));
        }
    }
}

void
InvariantAuditor::checkEpochAccounting()
{
    if (!_rec)
        return;
    ++_checksRun;
    const auto &epochs = _rec->epochs();
    for (; _epochCursor < epochs.size(); ++_epochCursor) {
        const pred::Epoch &ep = epochs[_epochCursor];
        if (ep.end <= ep.start) {
            violation("epoch-order",
                      strprintf("epoch %zu is empty or reversed "
                                "(%llu..%llu)",
                                _epochCursor,
                                static_cast<unsigned long long>(ep.start),
                                static_cast<unsigned long long>(ep.end)));
        }
        if (_epochCursor > 0 &&
            ep.start < epochs[_epochCursor - 1].end) {
            violation("epoch-order",
                      strprintf("epoch %zu overlaps its predecessor",
                                _epochCursor));
        }
        // Scaling + non-scaling decomposition must conserve busy time
        // for every active thread: the core model splits each action's
        // elapsed time exactly into computeTime and trueMemTime.
        for (const pred::EpochThread &et : ep.active) {
            const Tick split = et.delta.computeTime + et.delta.trueMemTime;
            const Tick busy = et.delta.busyTime;
            const Tick diff = split > busy ? split - busy : busy - split;
            if (diff > _cfg.decompositionSlack) {
                violation(
                    "epoch-conservation",
                    strprintf("epoch %zu thread %u: scaling %llu + "
                              "non-scaling %llu != busy %llu",
                              _epochCursor, et.tid,
                              static_cast<unsigned long long>(
                                  et.delta.computeTime),
                              static_cast<unsigned long long>(
                                  et.delta.trueMemTime),
                              static_cast<unsigned long long>(busy)));
            }
        }
    }
}

void
InvariantAuditor::checkWatchdog()
{
    ++_checksRun;
    const std::uint64_t instructions =
        _sys.totalCounters().instructions;
    if (instructions != _lastInstructions) {
        _lastInstructions = instructions;
        _lastProgressTick = _sys.now();
        return;
    }
    if (_sys.liveAppThreads() == 0)
        return;  // winding down, nothing to watch
    if (_sys.now() - _lastProgressTick < _cfg.watchdogTimeout)
        return;

    // Hung: events still fire (or we would not be here), yet no thread
    // has retired an instruction for a full timeout. Produce the
    // structured diagnostic and stop the run.
    _watchdog.fired = true;
    _watchdog.tick = _sys.now();
    _watchdog.stalledSince = _lastProgressTick;
    std::string detail;
    for (std::size_t i = 0; i < _sys.numThreads(); ++i) {
        const os::Thread &t = _sys.thread(static_cast<os::ThreadId>(i));
        if (t.state != os::ThreadState::Blocked)
            continue;
        _watchdog.blockedThreads.push_back(t.id);
        detail += strprintf("  thread %u ('%s') blocked on futex %u "
                            "since tick %llu\n",
                            t.id, t.name.c_str(), t.blockedOn,
                            static_cast<unsigned long long>(
                                t.blockedSince));
    }
    _watchdog.message = strprintf(
        "watchdog: no instruction retired since tick %llu "
        "(%zu thread(s) blocked)\n%s",
        static_cast<unsigned long long>(_lastProgressTick),
        _watchdog.blockedThreads.size(), detail.c_str());
    _sys.requestStop(_watchdog.message);
}

} // namespace dvfs::fault
