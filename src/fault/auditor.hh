/**
 * @file
 * Continuous invariant auditing for the simulated machine.
 *
 * The InvariantAuditor rides the event queue next to the workload it
 * audits: a periodic audit event checks cross-layer invariants that a
 * silent corruption would break long before any test notices —
 * monotonic time, scheduler/core-occupancy consistency, per-thread
 * busy-time conservation, and the scaling/non-scaling decomposition
 * of every closed synchronization epoch. A deadlock/livelock watchdog
 * turns "the simulation hangs forever" (an event source such as the
 * energy manager keeps the queue alive while no thread makes
 * progress) into a structured diagnostic naming the blocked threads,
 * and stops the run.
 *
 * Violations either panic immediately (haltOnViolation, for tests and
 * CI) or accumulate into a queryable list (for harnesses that want to
 * report them).
 */

#ifndef DVFS_FAULT_AUDITOR_HH
#define DVFS_FAULT_AUDITOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "os/system.hh"
#include "pred/record.hh"

namespace dvfs::fault {

/** Auditor parameters. */
struct AuditorConfig {
    /** Spacing of periodic audit passes. */
    Tick interval = 10 * kTicksPerUs;

    /**
     * No instruction retired anywhere for this long, while threads
     * are blocked, means the machine is hung. Must comfortably exceed
     * the longest legitimate all-blocked window (a GC handshake).
     */
    Tick watchdogTimeout = 2 * kTicksPerMs;

    /** Panic on the first violation instead of collecting it. */
    bool haltOnViolation = false;

    /**
     * Absolute slack (ticks) allowed when checking that an epoch
     * delta's computeTime + trueMemTime equals its busyTime: covers
     * cycle-to-tick rounding at action commit.
     */
    Tick decompositionSlack = 2 * kTicksPerNs;

    /** Stop collecting after this many violations. */
    std::size_t maxViolations = 64;
};

/** One failed invariant check. */
struct Violation {
    Tick tick = 0;
    std::string check;    ///< short check id, e.g. "sched-occupancy"
    std::string message;  ///< what exactly went wrong
};

/** Structured hang diagnostic. */
struct WatchdogReport {
    bool fired = false;
    Tick tick = 0;          ///< when the watchdog gave up
    Tick stalledSince = 0;  ///< last observed forward progress
    std::vector<os::ThreadId> blockedThreads;
    std::string message;    ///< per-thread blocked-on detail
};

/**
 * The auditor. Construct, optionally point it at a RunRecorder for
 * epoch checks, attach(), then System::run() as usual.
 */
class InvariantAuditor : public os::SyncListener
{
  public:
    explicit InvariantAuditor(os::System &sys,
                              const AuditorConfig &cfg = AuditorConfig());

    /** Enable epoch-accounting checks against @p rec (nullable). */
    void observeEpochs(const pred::RunRecorder *rec) { _rec = rec; }

    /** Register the trace listener and schedule the first audit. */
    void attach();

    /// @name SyncListener (monotonic trace-time check)
    /// @{
    void onSyncEvent(const os::SyncEvent &ev, const os::System &sys)
        override;
    /// @}

    /// @name Results
    /// @{
    const std::vector<Violation> &violations() const { return _violations; }
    const WatchdogReport &watchdog() const { return _watchdog; }
    bool clean() const { return _violations.empty() && !_watchdog.fired; }
    std::uint64_t audits() const { return _audits; }
    std::uint64_t checksRun() const { return _checksRun; }
    const AuditorConfig &config() const { return _cfg; }
    /// @}

  private:
    void audit();
    void scheduleNext();
    void violation(const char *check, std::string message);

    void checkMonotonicTime();
    void checkSchedulerOccupancy();
    void checkThreadConservation();
    void checkEpochAccounting();
    void checkWatchdog();

    os::System &_sys;
    AuditorConfig _cfg;
    const pred::RunRecorder *_rec = nullptr;

    std::vector<Violation> _violations;
    WatchdogReport _watchdog;
    std::uint64_t _audits = 0;
    std::uint64_t _checksRun = 0;

    Tick _lastEventTick = 0;
    Tick _lastAuditTick = 0;
    std::size_t _epochCursor = 0;

    std::uint64_t _lastInstructions = 0;
    Tick _lastProgressTick = 0;
    bool _attached = false;
};

} // namespace dvfs::fault

#endif // DVFS_FAULT_AUDITOR_HH
