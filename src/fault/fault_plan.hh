/**
 * @file
 * Deterministic fault injection: the FaultPlan.
 *
 * Robustness work needs realistic disturbances that are *replayable*:
 * a fault schedule must be a pure function of its seed and of the
 * (deterministic) simulation that consumes it, so a failure observed
 * once can be reproduced bit-identically from the seed alone.
 *
 * The plan exposes one query per hook point (DRAM access, DVFS
 * transition, action boundary, collection start, ...). Each fault
 * class draws from its own split RNG stream, so enabling or disabling
 * one class never perturbs the schedule of another. Every fault that
 * actually fires is appended to an in-memory trace; the trace's
 * fingerprint is the replay witness the tests and fig8 compare.
 *
 * Layering: this header depends only on sim/, so the uarch and os
 * layers can hold a FaultPlan pointer without include cycles.
 */

#ifndef DVFS_FAULT_FAULT_PLAN_HH
#define DVFS_FAULT_FAULT_PLAN_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/rng.hh"
#include "sim/time.hh"

namespace dvfs::fault {

/** The injectable disturbance classes. */
enum class FaultClass : std::uint8_t {
    DramLatencySpike, ///< extra latency on a DRAM read (ECC retry, refresh)
    DramBankStall,    ///< a bank blacked out for a while (maintenance)
    DvfsDelay,        ///< a DVFS transition takes longer than specified
    DvfsReject,       ///< a DVFS transition is dropped by the PCU
    SpuriousWake,     ///< a parked thread wakes without a signal
    PreemptJitter,    ///< a running thread is preempted off-schedule
    GcInflation,      ///< a collection traces more than the live set
};

/** Number of fault classes (array sizing). */
constexpr std::size_t kNumFaultClasses = 7;

/** Printable name of a fault class. */
const char *faultClassName(FaultClass c);

/**
 * Fault schedule parameters. All classes default to *off*; a
 * default-constructed config injects nothing.
 */
struct FaultConfig {
    /** Seed of the whole schedule. Same seed -> same schedule. */
    std::uint64_t seed = 0x5eed;

    /// @name DRAM faults
    /// @{
    double dramSpikeProb = 0.0;       ///< per read access
    double dramSpikeNsMean = 300.0;   ///< exponential extra latency
    double dramBankStallProb = 0.0;   ///< per access
    double dramBankStallNsMean = 500.0;
    /// @}

    /// @name DVFS transition faults
    /// @{
    double dvfsDelayProb = 0.0;       ///< per attempted transition
    double dvfsDelayNsMean = 100.0;   ///< extra chip-wide stall
    double dvfsRejectProb = 0.0;      ///< per attempted transition
    /// @}

    /// @name OS-layer faults
    /// @{
    /** Mean ticks between injected spurious wakeups (0 = off). */
    Tick spuriousWakeMeanInterval = 0;
    double preemptProb = 0.0;         ///< per action boundary
    /** Min spacing between forced preemptions of the same machine. */
    Tick preemptMinSpacing = 5 * kTicksPerUs;
    /// @}

    /// @name Managed-runtime faults
    /// @{
    double gcInflateProb = 0.0;       ///< per collection
    std::uint32_t gcInflateExtraClusters = 4; ///< extra trace clusters/unit
    /// @}

    /** A config with every class disabled (explicit spelling). */
    static FaultConfig none() { return FaultConfig{}; }

    /**
     * A config with exactly one class enabled at a stress intensity
     * suitable for the fig8 tolerance runs.
     */
    static FaultConfig only(FaultClass c, std::uint64_t seed = 0x5eed);

    /** True if any class can fire. */
    bool anyEnabled() const;
};

/** One injected fault, as recorded in the replay trace. */
struct FaultEvent {
    Tick tick = 0;
    FaultClass cls = FaultClass::DramLatencySpike;
    /** Class-specific magnitude (ticks of delay, clusters, or 1). */
    std::uint64_t magnitude = 0;
};

/**
 * A seeded, deterministic fault schedule.
 *
 * Hook points call the query methods; a query returns the fault to
 * apply (or zero/false) and records fired faults in the trace. The
 * plan is passive — it never touches the machine itself.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultConfig &cfg = FaultConfig());

    const FaultConfig &config() const { return _cfg; }

    /// @name Hook-point queries
    /// @{

    /** Extra latency for a DRAM read issued at @p now (0 = none). */
    Tick dramReadSpike(Tick now);

    /** Extra bank-occupancy ticks for an access at @p now (0 = none). */
    Tick dramBankStall(Tick now);

    /** True if the transition attempted at @p now is dropped. */
    bool dvfsReject(Tick now);

    /** Extra transition stall for the transition at @p now (0 = none). */
    Tick dvfsExtraDelay(Tick now);

    /** True if the action boundary at @p now forces a preemption. */
    bool preemptNow(Tick now);

    /** Extra trace clusters per unit for the collection at @p now. */
    std::uint32_t gcExtraClusters(Tick now);

    /**
     * Delay until the next injected spurious wake (exponential around
     * the configured mean), or 0 if the class is disabled.
     */
    Tick nextSpuriousWakeDelay();

    /**
     * Deterministic choice among @p bound candidates (victim
     * selection for spurious wakes). Draws from the SpuriousWake
     * stream. @p bound must be nonzero.
     */
    std::uint64_t pickVictim(std::uint64_t bound);

    /** Record a spurious wake that was actually delivered. */
    void recordSpuriousWake(Tick now);
    /// @}

    /// @name Replay trace
    /// @{

    /** Every fault that fired, in firing order. */
    const std::vector<FaultEvent> &trace() const { return _trace; }

    /** Number of fired faults of class @p c. */
    std::uint64_t injected(FaultClass c) const
    {
        return _counts[static_cast<std::size_t>(c)];
    }

    /** Total fired faults across all classes. */
    std::uint64_t totalInjected() const;

    /**
     * FNV-1a fingerprint over (tick, class, magnitude) of the whole
     * trace: two runs with the same seed and workload must agree.
     */
    std::uint64_t fingerprint() const;

    /** Human-readable trace dump, one fault per line. */
    void writeTrace(std::ostream &os) const;
    /// @}

  private:
    sim::Rng &rng(FaultClass c)
    {
        return _rngs[static_cast<std::size_t>(c)];
    }

    void record(Tick now, FaultClass c, std::uint64_t magnitude);

    FaultConfig _cfg;
    std::array<sim::Rng, kNumFaultClasses> _rngs;
    std::array<std::uint64_t, kNumFaultClasses> _counts{};
    std::vector<FaultEvent> _trace;
    Tick _nextPreemptAllowed = 0;
};

} // namespace dvfs::fault

#endif // DVFS_FAULT_FAULT_PLAN_HH
