#include "fault/fault_plan.hh"

#include <ostream>

#include "sim/log.hh"

namespace dvfs::fault {

const char *
faultClassName(FaultClass c)
{
    switch (c) {
      case FaultClass::DramLatencySpike: return "dram-latency-spike";
      case FaultClass::DramBankStall: return "dram-bank-stall";
      case FaultClass::DvfsDelay: return "dvfs-delay";
      case FaultClass::DvfsReject: return "dvfs-reject";
      case FaultClass::SpuriousWake: return "spurious-wake";
      case FaultClass::PreemptJitter: return "preempt-jitter";
      case FaultClass::GcInflation: return "gc-inflation";
    }
    return "?";
}

FaultConfig
FaultConfig::only(FaultClass c, std::uint64_t seed)
{
    FaultConfig cfg;
    cfg.seed = seed;
    switch (c) {
      case FaultClass::DramLatencySpike:
        cfg.dramSpikeProb = 0.02;
        break;
      case FaultClass::DramBankStall:
        cfg.dramBankStallProb = 0.01;
        break;
      case FaultClass::DvfsDelay:
        cfg.dvfsDelayProb = 0.5;
        break;
      case FaultClass::DvfsReject:
        cfg.dvfsRejectProb = 0.6;
        break;
      case FaultClass::SpuriousWake:
        cfg.spuriousWakeMeanInterval = 10 * kTicksPerUs;
        break;
      case FaultClass::PreemptJitter:
        cfg.preemptProb = 0.05;
        break;
      case FaultClass::GcInflation:
        cfg.gcInflateProb = 1.0;
        break;
    }
    return cfg;
}

bool
FaultConfig::anyEnabled() const
{
    return dramSpikeProb > 0.0 || dramBankStallProb > 0.0 ||
           dvfsDelayProb > 0.0 || dvfsRejectProb > 0.0 ||
           spuriousWakeMeanInterval > 0 || preemptProb > 0.0 ||
           gcInflateProb > 0.0;
}

FaultPlan::FaultPlan(const FaultConfig &cfg)
    : _cfg(cfg)
{
    if (_cfg.dramSpikeProb < 0.0 || _cfg.dramSpikeProb > 1.0 ||
        _cfg.dramBankStallProb < 0.0 || _cfg.dramBankStallProb > 1.0 ||
        _cfg.dvfsDelayProb < 0.0 || _cfg.dvfsDelayProb > 1.0 ||
        _cfg.dvfsRejectProb < 0.0 || _cfg.dvfsRejectProb > 1.0 ||
        _cfg.preemptProb < 0.0 || _cfg.preemptProb > 1.0 ||
        _cfg.gcInflateProb < 0.0 || _cfg.gcInflateProb > 1.0) {
        fatal("fault probabilities must be in [0, 1]");
    }
    // One decorrelated stream per class: toggling a class cannot shift
    // the draws any other class sees.
    sim::Rng root(_cfg.seed);
    for (std::size_t i = 0; i < kNumFaultClasses; ++i)
        _rngs[i] = root.split(i + 1);
}

void
FaultPlan::record(Tick now, FaultClass c, std::uint64_t magnitude)
{
    _counts[static_cast<std::size_t>(c)] += 1;
    _trace.push_back(FaultEvent{now, c, magnitude});
}

Tick
FaultPlan::dramReadSpike(Tick now)
{
    if (_cfg.dramSpikeProb <= 0.0 ||
        !rng(FaultClass::DramLatencySpike).nextBool(_cfg.dramSpikeProb)) {
        return 0;
    }
    Tick extra = nsToTicks(
        rng(FaultClass::DramLatencySpike).nextExp(_cfg.dramSpikeNsMean));
    record(now, FaultClass::DramLatencySpike, extra);
    return extra;
}

Tick
FaultPlan::dramBankStall(Tick now)
{
    if (_cfg.dramBankStallProb <= 0.0 ||
        !rng(FaultClass::DramBankStall).nextBool(_cfg.dramBankStallProb)) {
        return 0;
    }
    Tick extra = nsToTicks(
        rng(FaultClass::DramBankStall).nextExp(_cfg.dramBankStallNsMean));
    record(now, FaultClass::DramBankStall, extra);
    return extra;
}

bool
FaultPlan::dvfsReject(Tick now)
{
    if (_cfg.dvfsRejectProb <= 0.0 ||
        !rng(FaultClass::DvfsReject).nextBool(_cfg.dvfsRejectProb)) {
        return false;
    }
    record(now, FaultClass::DvfsReject, 1);
    return true;
}

Tick
FaultPlan::dvfsExtraDelay(Tick now)
{
    if (_cfg.dvfsDelayProb <= 0.0 ||
        !rng(FaultClass::DvfsDelay).nextBool(_cfg.dvfsDelayProb)) {
        return 0;
    }
    Tick extra = nsToTicks(
        rng(FaultClass::DvfsDelay).nextExp(_cfg.dvfsDelayNsMean));
    record(now, FaultClass::DvfsDelay, extra);
    return extra;
}

bool
FaultPlan::preemptNow(Tick now)
{
    if (_cfg.preemptProb <= 0.0 || now < _nextPreemptAllowed)
        return false;
    if (!rng(FaultClass::PreemptJitter).nextBool(_cfg.preemptProb))
        return false;
    _nextPreemptAllowed = now + _cfg.preemptMinSpacing;
    record(now, FaultClass::PreemptJitter, 1);
    return true;
}

std::uint32_t
FaultPlan::gcExtraClusters(Tick now)
{
    if (_cfg.gcInflateProb <= 0.0 ||
        !rng(FaultClass::GcInflation).nextBool(_cfg.gcInflateProb)) {
        return 0;
    }
    record(now, FaultClass::GcInflation, _cfg.gcInflateExtraClusters);
    return _cfg.gcInflateExtraClusters;
}

Tick
FaultPlan::nextSpuriousWakeDelay()
{
    if (_cfg.spuriousWakeMeanInterval == 0)
        return 0;
    double mean = static_cast<double>(_cfg.spuriousWakeMeanInterval);
    auto d = static_cast<Tick>(rng(FaultClass::SpuriousWake).nextExp(mean));
    return d > 0 ? d : 1;
}

std::uint64_t
FaultPlan::pickVictim(std::uint64_t bound)
{
    DVFS_ASSERT(bound > 0, "victim pick from an empty candidate set");
    return rng(FaultClass::SpuriousWake).nextBounded(bound);
}

void
FaultPlan::recordSpuriousWake(Tick now)
{
    record(now, FaultClass::SpuriousWake, 1);
}

std::uint64_t
FaultPlan::totalInjected() const
{
    std::uint64_t n = 0;
    for (std::uint64_t c : _counts)
        n += c;
    return n;
}

std::uint64_t
FaultPlan::fingerprint() const
{
    // FNV-1a over the trace fields; stable across platforms.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (const FaultEvent &ev : _trace) {
        mix(ev.tick);
        mix(static_cast<std::uint64_t>(ev.cls));
        mix(ev.magnitude);
    }
    return h;
}

void
FaultPlan::writeTrace(std::ostream &os) const
{
    for (const FaultEvent &ev : _trace) {
        os << ev.tick << " " << faultClassName(ev.cls) << " "
           << ev.magnitude << "\n";
    }
}

} // namespace dvfs::fault
