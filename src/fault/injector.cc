#include "fault/injector.hh"

#include <vector>

#include "rt/runtime.hh"
#include "sim/log.hh"

namespace dvfs::fault {

namespace {

/**
 * Deliver one spurious wake to a deterministically chosen blocked
 * thread, then reschedule. Victims are picked among *all* blocked
 * threads (application and service alike): GC workers parked on the
 * work futex are exactly the kind of waiter real spurious wakeups hit.
 */
void
pumpSpuriousWakes(os::System &sys, FaultPlan &plan)
{
    Tick delay = plan.nextSpuriousWakeDelay();
    if (delay == 0)
        return;
    sys.eventQueue().scheduleAfter(delay, [&sys, &plan] {
        if (sys.runEnded() || sys.stopRequested())
            return;
        std::vector<os::ThreadId> blocked;
        for (std::size_t i = 0; i < sys.numThreads(); ++i) {
            auto tid = static_cast<os::ThreadId>(i);
            if (sys.thread(tid).state == os::ThreadState::Blocked)
                blocked.push_back(tid);
        }
        if (!blocked.empty()) {
            os::ThreadId victim =
                blocked[plan.pickVictim(blocked.size())];
            if (sys.injectSpuriousWake(victim))
                plan.recordSpuriousWake(sys.now());
        }
        pumpSpuriousWakes(sys, plan);
    });
}

} // namespace

void
installFaults(os::System &sys, FaultPlan &plan, rt::Runtime *runtime)
{
    sys.setFaultPlan(&plan);
    if (runtime)
        runtime->setFaultPlan(&plan);
    pumpSpuriousWakes(sys, plan);
}

} // namespace dvfs::fault
