/**
 * @file
 * Wiring a FaultPlan into a machine.
 *
 * The plan itself is passive; this installer connects it to every
 * hook point — the DRAM controller, the DVFS path, the scheduler's
 * action boundaries, optionally the managed runtime — and drives the
 * one fault class that needs an active pump: spurious futex wakeups,
 * delivered by a self-rescheduling event whose spacing and victim
 * choice come from the plan's own deterministic streams.
 */

#ifndef DVFS_FAULT_INJECTOR_HH
#define DVFS_FAULT_INJECTOR_HH

#include "fault/fault_plan.hh"
#include "os/system.hh"

namespace dvfs::rt {
class Runtime;
}

namespace dvfs::fault {

/**
 * Install @p plan on @p sys (and @p runtime, if given) and start the
 * spurious-wake pump when that class is enabled.
 *
 * Call after threads are added and before System::run(). The plan
 * must outlive the system.
 */
void installFaults(os::System &sys, FaultPlan &plan,
                   rt::Runtime *runtime = nullptr);

} // namespace dvfs::fault

#endif // DVFS_FAULT_INJECTOR_HH
