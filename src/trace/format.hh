/**
 * @file
 * The .dvfstrace on-disk format: constants, header layout, TraceError.
 *
 * A trace file persists everything a predictor may legally observe
 * about one recorded run (the pred::RunView surface plus identifying
 * metadata), so predictor evaluation can replay a run offline without
 * re-simulating it. The format is versioned, sectioned and digested:
 *
 *   offset  size  field
 *   ------  ----  -----------------------------------------------
 *        0     8  magic "DVFSTRC1" (little-endian u64)
 *        8     4  format version (u32, currently 1)
 *       12     4  reserved, must be zero (u32)
 *       16     8  payload digest: FNV-1a over bytes [24, EOF) (u64)
 *       24     …  payload
 *
 *   payload := u32 section count, then per section
 *       u32 section id | u32 reserved (zero) | u64 byte length | bytes
 *
 * All integers are little-endian, serialized field-by-field (no struct
 * memcpy, so the format is independent of host padding). The digest
 * covers every payload byte including the section table, so any
 * corruption below the header is caught before section parsing
 * begins; corrupt, truncated or alien input always raises a
 * structured TraceError, never undefined behaviour.
 *
 * Compatibility rules (DESIGN.md section 10): readers skip unknown
 * section ids (new observation fields are added as new sections);
 * changing the layout *inside* an existing section requires a version
 * bump, which old readers reject with TraceError::Kind::BadVersion.
 */

#ifndef DVFS_TRACE_FORMAT_HH
#define DVFS_TRACE_FORMAT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dvfs::trace {

/** "DVFSTRC1" as a little-endian u64. */
constexpr std::uint64_t kTraceMagic = 0x3143525453465644ULL;

/** Current format version. */
constexpr std::uint32_t kTraceVersion = 1;

/** Size of the fixed header preceding the payload. */
constexpr std::size_t kTraceHeaderBytes = 24;

/** Section identifiers. */
enum class SectionId : std::uint32_t {
    Meta = 1,     ///< workload name, seed, base frequency, total time
    Threads = 2,  ///< whole-run per-thread summaries
    Epochs = 3,   ///< epoch decomposition with per-thread deltas
    GcMarks = 4,  ///< GC phase boundaries (COOP signal)
    Events = 5,   ///< raw sync-event trace (present iff recorded)
};

/**
 * Structured failure of trace encoding/decoding.
 *
 * Every malformed input maps to exactly one kind; offset() is the
 * byte position at which the problem was detected (0 when it has no
 * meaningful position, e.g. an unopenable file).
 */
class TraceError : public std::runtime_error
{
  public:
    enum class Kind {
        Io,             ///< file unreadable/unwritable
        Truncated,      ///< input ends inside a field or section
        BadMagic,       ///< not a .dvfstrace file
        BadVersion,     ///< format version this reader cannot parse
        BadValue,       ///< field holds an impossible value
        DigestMismatch, ///< payload bytes do not match the digest
        MissingSection, ///< a required section is absent
        DuplicateCell,  ///< two grid cells map to one trace file
        CellMismatch,   ///< a trace describes a different run than
                        ///< the grid cell it was loaded for
    };

    TraceError(Kind kind, std::uint64_t offset, const std::string &what)
        : std::runtime_error("trace: " + what + " (at byte " +
                             std::to_string(offset) + ")"),
          _kind(kind), _offset(offset)
    {
    }

    Kind kind() const { return _kind; }

    /** Byte offset at which the error was detected. */
    std::uint64_t offset() const { return _offset; }

    /** Printable name of an error kind. */
    static const char *kindName(Kind kind);

  private:
    Kind _kind;
    std::uint64_t _offset;
};

} // namespace dvfs::trace

#endif // DVFS_TRACE_FORMAT_HH
