/**
 * @file
 * Trace writer: serialize one recorded run to the .dvfstrace format.
 *
 * The writer persists the full pred::RunView observation surface of a
 * run (epochs with per-thread counter deltas, thread summaries, GC
 * marks, and the raw sync-event trace when it was recorded) plus
 * identifying metadata, under the layout documented in format.hh.
 * Serialization is fully deterministic: the same record and metadata
 * always produce the same bytes and the same payload digest, which is
 * what lets tests pin golden digests and lets replay prove
 * bit-identity against the live path.
 */

#ifndef DVFS_TRACE_WRITER_HH
#define DVFS_TRACE_WRITER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pred/record.hh"

namespace dvfs::trace {

/** Identifying metadata stored alongside the record. */
struct TraceMeta {
    std::string workload;    ///< benchmark name (wl::WorkloadParams::name)
    std::uint64_t seed = 0;  ///< machine seed of the recorded run
};

/** Serialize @p rec (+ @p meta) to an in-memory .dvfstrace image. */
std::vector<std::uint8_t> encodeTrace(const pred::RunRecord &rec,
                                      const TraceMeta &meta);

/**
 * Serialize @p rec (+ @p meta) to @p path.
 *
 * @throws TraceError{Io} if the file cannot be written.
 */
void writeTraceFile(const std::string &path, const pred::RunRecord &rec,
                    const TraceMeta &meta);

/** The payload digest stored in an encoded trace image's header. */
std::uint64_t tracePayloadDigest(const std::vector<std::uint8_t> &image);

/**
 * Canonical file name of one recorded cell:
 * "<workload>_f<mhz>_s<seed>.dvfstrace".
 */
std::string traceFileName(const std::string &workload,
                          std::uint32_t freq_mhz, std::uint64_t seed);

} // namespace dvfs::trace

#endif // DVFS_TRACE_WRITER_HH
