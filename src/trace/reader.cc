#include "trace/reader.hh"

#include <fstream>

#include "trace/wire.hh"

namespace dvfs::trace {

namespace {

void
decodeCounters(Cursor &c, uarch::PerfCounters &out)
{
    out.busyTime = c.u64();
    out.instructions = c.u64();
    out.critNonscaling = c.u64();
    out.leadingNonscaling = c.u64();
    out.stallNonscaling = c.u64();
    out.sqFullTime = c.u64();
    out.trueMemTime = c.u64();
    out.computeTime = c.u64();
    out.l1Hits = c.u64();
    out.l2Hits = c.u64();
    out.l3Hits = c.u64();
    out.dramLoads = c.u64();
    out.missClusters = c.u64();
    out.storeBursts = c.u64();
    out.storeLines = c.u64();
}

/** Range-check a count field against the bytes that must back it. */
void
checkCount(const Cursor &c, std::uint64_t count, std::uint64_t min_bytes,
           const char *what)
{
    if (min_bytes != 0 && count > c.remaining() / min_bytes) {
        throw TraceError(TraceError::Kind::BadValue, c.offset(),
                         std::string(what) +
                             " count exceeds the section's bytes");
    }
}

void
checkZero(std::uint32_t v, std::uint64_t offset, const char *what)
{
    if (v != 0) {
        throw TraceError(TraceError::Kind::BadValue, offset,
                         std::string("reserved field ") + what +
                             " is nonzero");
    }
}

constexpr std::uint64_t kCounterBytes = 15 * 8;

void
decodeMeta(Cursor &c, TraceMeta &meta, pred::RunRecord &rec)
{
    meta.workload = c.str();
    meta.seed = c.u64();
    const std::uint32_t mhz = c.u32();
    if (mhz == 0) {
        throw TraceError(TraceError::Kind::BadValue, c.offset(),
                         "base frequency is zero");
    }
    checkZero(c.u32(), c.offset(), "meta.pad");
    rec.baseFreq = Frequency::mhz(mhz);
    rec.totalTime = c.u64();
}

void
decodeThreads(Cursor &c, pred::RunRecord &rec)
{
    const std::uint64_t n = c.u64();
    checkCount(c, n, 24 + kCounterBytes, "thread");
    rec.threads.resize(static_cast<std::size_t>(n));
    for (pred::ThreadSummary &t : rec.threads) {
        t.tid = c.u32();
        const std::uint32_t service = c.u32();
        if (service > 1) {
            throw TraceError(TraceError::Kind::BadValue, c.offset(),
                             "thread.service is not a boolean");
        }
        t.service = service != 0;
        t.spawnTick = c.u64();
        t.exitTick = c.u64();
        decodeCounters(c, t.totals);
    }
}

void
decodeEpochs(Cursor &c, pred::RunRecord &rec)
{
    const std::uint64_t n = c.u64();
    checkCount(c, n, 32, "epoch");
    rec.epochs.resize(static_cast<std::size_t>(n));
    for (pred::Epoch &ep : rec.epochs) {
        ep.start = c.u64();
        ep.end = c.u64();
        const std::uint32_t boundary = c.u32();
        if (boundary > static_cast<std::uint32_t>(
                           os::SyncEventKind::RunEnd)) {
            throw TraceError(TraceError::Kind::BadValue, c.offset(),
                             "epoch.boundary is not a SyncEventKind");
        }
        ep.boundary = static_cast<os::SyncEventKind>(boundary);
        ep.stallTid = c.u32();
        const std::uint64_t actives = c.u64();
        checkCount(c, actives, 8 + kCounterBytes, "epoch.active");
        ep.active.resize(static_cast<std::size_t>(actives));
        for (pred::EpochThread &et : ep.active) {
            et.tid = c.u32();
            checkZero(c.u32(), c.offset(), "epoch.active.pad");
            decodeCounters(c, et.delta);
        }
    }
}

void
decodeGcMarks(Cursor &c, pred::RunRecord &rec)
{
    const std::uint64_t n = c.u64();
    checkCount(c, n, 16, "gc mark");
    rec.gcMarks.resize(static_cast<std::size_t>(n));
    for (pred::GcPhaseMark &m : rec.gcMarks) {
        m.tick = c.u64();
        const std::uint32_t begin = c.u32();
        if (begin > 1) {
            throw TraceError(TraceError::Kind::BadValue, c.offset(),
                             "gcMark.begin is not a boolean");
        }
        m.begin = begin != 0;
        checkZero(c.u32(), c.offset(), "gcMark.pad");
    }
}

void
decodeEvents(Cursor &c, pred::RunRecord &rec)
{
    const std::uint64_t n = c.u64();
    checkCount(c, n, 24, "event");
    rec.events.resize(static_cast<std::size_t>(n));
    for (os::SyncEvent &ev : rec.events) {
        ev.tick = c.u64();
        const std::uint32_t kind = c.u32();
        if (kind >
            static_cast<std::uint32_t>(os::SyncEventKind::RunEnd)) {
            throw TraceError(TraceError::Kind::BadValue, c.offset(),
                             "event.kind is not a SyncEventKind");
        }
        ev.kind = static_cast<os::SyncEventKind>(kind);
        ev.tid = c.u32();
        ev.futex = c.u32();
        checkZero(c.u32(), c.offset(), "event.pad");
    }
}

void
requireConsumed(const Cursor &c, const char *section)
{
    if (c.remaining() != 0) {
        throw TraceError(TraceError::Kind::BadValue, c.offset(),
                         std::string(section) +
                             " section has trailing bytes");
    }
}

} // namespace

const char *
TraceError::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Io: return "Io";
      case Kind::Truncated: return "Truncated";
      case Kind::BadMagic: return "BadMagic";
      case Kind::BadVersion: return "BadVersion";
      case Kind::BadValue: return "BadValue";
      case Kind::DigestMismatch: return "DigestMismatch";
      case Kind::MissingSection: return "MissingSection";
      case Kind::DuplicateCell: return "DuplicateCell";
      case Kind::CellMismatch: return "CellMismatch";
    }
    return "?";
}

LoadedTrace
decodeTrace(const std::vector<std::uint8_t> &image)
{
    if (image.size() < kTraceHeaderBytes) {
        throw TraceError(TraceError::Kind::Truncated, image.size(),
                         "input smaller than the trace header");
    }

    Cursor header(image.data(), kTraceHeaderBytes, 0);
    if (header.u64() != kTraceMagic) {
        throw TraceError(TraceError::Kind::BadMagic, 0,
                         "not a .dvfstrace file");
    }
    const std::uint32_t version = header.u32();
    if (version != kTraceVersion) {
        throw TraceError(TraceError::Kind::BadVersion, 8,
                         "unsupported format version " +
                             std::to_string(version));
    }
    checkZero(header.u32(), 12, "header.reserved");
    const std::uint64_t stored_digest = header.u64();

    const std::uint8_t *payload = image.data() + kTraceHeaderBytes;
    const std::size_t payload_size = image.size() - kTraceHeaderBytes;
    if (fnv1aBytes(payload, payload_size) != stored_digest) {
        throw TraceError(TraceError::Kind::DigestMismatch, 16,
                         "payload digest mismatch (corrupt or "
                         "truncated trace)");
    }

    // The digest has vouched for every payload byte; parse sections.
    Cursor c(payload, payload_size, kTraceHeaderBytes);
    const std::uint32_t sections = c.u32();

    TraceMeta meta;
    pred::RunRecord rec;
    bool have_meta = false, have_threads = false, have_epochs = false,
         have_gc = false;

    for (std::uint32_t s = 0; s < sections; ++s) {
        const std::uint32_t id = c.u32();
        checkZero(c.u32(), c.offset(), "section.reserved");
        const std::uint64_t length = c.u64();
        if (length > c.remaining()) {
            throw TraceError(TraceError::Kind::Truncated, c.offset(),
                             "section length exceeds the input");
        }
        Cursor body(payload + (c.offset() - kTraceHeaderBytes),
                    static_cast<std::size_t>(length), c.offset());
        c.skip(length);
        switch (static_cast<SectionId>(id)) {
          case SectionId::Meta:
            decodeMeta(body, meta, rec);
            requireConsumed(body, "meta");
            have_meta = true;
            break;
          case SectionId::Threads:
            decodeThreads(body, rec);
            requireConsumed(body, "threads");
            have_threads = true;
            break;
          case SectionId::Epochs:
            decodeEpochs(body, rec);
            requireConsumed(body, "epochs");
            have_epochs = true;
            break;
          case SectionId::GcMarks:
            decodeGcMarks(body, rec);
            requireConsumed(body, "gcMarks");
            have_gc = true;
            break;
          case SectionId::Events:
            decodeEvents(body, rec);
            requireConsumed(body, "events");
            break;
          default:
            // Unknown section: a newer writer's extra observation
            // field. The digest already covers its bytes; skip it.
            break;
        }
    }
    if (c.remaining() != 0) {
        throw TraceError(TraceError::Kind::BadValue, c.offset(),
                         "trailing bytes after the last section");
    }

    if (!have_meta) {
        throw TraceError(TraceError::Kind::MissingSection, 0,
                         "meta section absent");
    }
    if (!have_threads || !have_epochs || !have_gc) {
        throw TraceError(TraceError::Kind::MissingSection, 0,
                         "record section absent");
    }

    return LoadedTrace(std::move(meta), std::move(rec), stored_digest);
}

LoadedTrace
readTraceFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        throw TraceError(TraceError::Kind::Io, 0,
                         "cannot open '" + path + "' for reading");
    }
    std::vector<std::uint8_t> image(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    if (f.bad()) {
        throw TraceError(TraceError::Kind::Io, 0,
                         "read failure on '" + path + "'");
    }
    return decodeTrace(image);
}

} // namespace dvfs::trace
