#include "trace/writer.hh"

#include <fstream>

#include "trace/format.hh"
#include "trace/wire.hh"

namespace dvfs::trace {

namespace {

void
encodeCounters(Encoder &e, const uarch::PerfCounters &c)
{
    e.u64(c.busyTime);
    e.u64(c.instructions);
    e.u64(c.critNonscaling);
    e.u64(c.leadingNonscaling);
    e.u64(c.stallNonscaling);
    e.u64(c.sqFullTime);
    e.u64(c.trueMemTime);
    e.u64(c.computeTime);
    e.u64(c.l1Hits);
    e.u64(c.l2Hits);
    e.u64(c.l3Hits);
    e.u64(c.dramLoads);
    e.u64(c.missClusters);
    e.u64(c.storeBursts);
    e.u64(c.storeLines);
}

Encoder
encodeMeta(const pred::RunRecord &rec, const TraceMeta &meta)
{
    Encoder e;
    e.str(meta.workload);
    e.u64(meta.seed);
    e.u32(rec.baseFreq.toMHz());
    e.u32(0);
    e.u64(rec.totalTime);
    return e;
}

Encoder
encodeThreads(const pred::RunRecord &rec)
{
    Encoder e;
    e.u64(rec.threads.size());
    for (const pred::ThreadSummary &t : rec.threads) {
        e.u32(t.tid);
        e.u32(t.service ? 1 : 0);
        e.u64(t.spawnTick);
        e.u64(t.exitTick);
        encodeCounters(e, t.totals);
    }
    return e;
}

Encoder
encodeEpochs(const pred::RunRecord &rec)
{
    Encoder e;
    e.u64(rec.epochs.size());
    for (const pred::Epoch &ep : rec.epochs) {
        e.u64(ep.start);
        e.u64(ep.end);
        e.u32(static_cast<std::uint32_t>(ep.boundary));
        e.u32(ep.stallTid);
        e.u64(ep.active.size());
        for (const pred::EpochThread &et : ep.active) {
            e.u32(et.tid);
            e.u32(0);
            encodeCounters(e, et.delta);
        }
    }
    return e;
}

Encoder
encodeGcMarks(const pred::RunRecord &rec)
{
    Encoder e;
    e.u64(rec.gcMarks.size());
    for (const pred::GcPhaseMark &m : rec.gcMarks) {
        e.u64(m.tick);
        e.u32(m.begin ? 1 : 0);
        e.u32(0);
    }
    return e;
}

Encoder
encodeEvents(const pred::RunRecord &rec)
{
    Encoder e;
    e.u64(rec.events.size());
    for (const os::SyncEvent &ev : rec.events) {
        e.u64(ev.tick);
        e.u32(static_cast<std::uint32_t>(ev.kind));
        e.u32(ev.tid);
        e.u32(ev.futex);
        e.u32(0);
    }
    return e;
}

void
appendSection(Encoder &payload, SectionId id, const Encoder &body)
{
    payload.u32(static_cast<std::uint32_t>(id));
    payload.u32(0);
    payload.u64(body.bytes().size());
    payload.bytes().insert(payload.bytes().end(), body.bytes().begin(),
                           body.bytes().end());
}

} // namespace

std::vector<std::uint8_t>
encodeTrace(const pred::RunRecord &rec, const TraceMeta &meta)
{
    // The Events section is written only when the recorder kept the
    // raw trace, mirroring RunRecord's own optionality.
    const bool with_events = !rec.events.empty();

    Encoder payload;
    payload.u32(with_events ? 5 : 4);
    appendSection(payload, SectionId::Meta, encodeMeta(rec, meta));
    appendSection(payload, SectionId::Threads, encodeThreads(rec));
    appendSection(payload, SectionId::Epochs, encodeEpochs(rec));
    appendSection(payload, SectionId::GcMarks, encodeGcMarks(rec));
    if (with_events)
        appendSection(payload, SectionId::Events, encodeEvents(rec));

    Encoder file;
    file.u64(kTraceMagic);
    file.u32(kTraceVersion);
    file.u32(0);
    file.u64(fnv1aBytes(payload.bytes().data(), payload.bytes().size()));
    file.bytes().insert(file.bytes().end(), payload.bytes().begin(),
                        payload.bytes().end());
    return std::move(file.bytes());
}

void
writeTraceFile(const std::string &path, const pred::RunRecord &rec,
               const TraceMeta &meta)
{
    const std::vector<std::uint8_t> image = encodeTrace(rec, meta);
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        throw TraceError(TraceError::Kind::Io, 0,
                         "cannot open '" + path + "' for writing");
    }
    f.write(reinterpret_cast<const char *>(image.data()),
            static_cast<std::streamsize>(image.size()));
    f.flush();
    if (!f) {
        throw TraceError(TraceError::Kind::Io, 0,
                         "short write to '" + path + "'");
    }
}

std::uint64_t
tracePayloadDigest(const std::vector<std::uint8_t> &image)
{
    if (image.size() < kTraceHeaderBytes) {
        throw TraceError(TraceError::Kind::Truncated, image.size(),
                         "image smaller than the trace header");
    }
    Cursor c(image.data(), kTraceHeaderBytes, 0);
    c.u64();  // magic
    c.u32();  // version
    c.u32();  // reserved
    return c.u64();
}

std::string
traceFileName(const std::string &workload, std::uint32_t freq_mhz,
              std::uint64_t seed)
{
    return workload + "_f" + std::to_string(freq_mhz) + "_s" +
           std::to_string(seed) + ".dvfstrace";
}

} // namespace dvfs::trace
