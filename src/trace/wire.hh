/**
 * @file
 * Little-endian wire encoding helpers shared by the trace writer and
 * reader. Internal to src/trace/ — not part of the stable surface.
 *
 * Encoder appends explicit-width little-endian fields to a byte
 * buffer; Cursor reads them back and throws TraceError::Truncated on
 * any overrun, so a malformed length can never walk past the input.
 */

#ifndef DVFS_TRACE_WIRE_HH
#define DVFS_TRACE_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/format.hh"

namespace dvfs::trace {

/** Append-only little-endian byte sink. */
class Encoder
{
  public:
    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            _bytes.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            _bytes.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }

    /** Length-prefixed string (u64 length, then raw bytes). */
    void
    str(const std::string &s)
    {
        u64(s.size());
        _bytes.insert(_bytes.end(), s.begin(), s.end());
    }

    std::vector<std::uint8_t> &bytes() { return _bytes; }
    const std::vector<std::uint8_t> &bytes() const { return _bytes; }

  private:
    std::vector<std::uint8_t> _bytes;
};

/**
 * Bounds-checked little-endian reader over a byte range.
 *
 * The range is [begin, end) of a larger buffer; offsets in errors are
 * absolute within that buffer (@p base is the range's position).
 */
class Cursor
{
  public:
    Cursor(const std::uint8_t *data, std::size_t size, std::uint64_t base)
        : _data(data), _size(size), _base(base)
    {
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(_data[_pos + i]) << (i * 8);
        _pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(_data[_pos + i]) << (i * 8);
        _pos += 8;
        return v;
    }

    std::string
    str()
    {
        std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(_data + _pos),
                      static_cast<std::size_t>(n));
        _pos += static_cast<std::size_t>(n);
        return s;
    }

    /** Advance @p n bytes without reading them. */
    void
    skip(std::uint64_t n)
    {
        need(n);
        _pos += static_cast<std::size_t>(n);
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return _size - _pos; }

    /** Absolute offset of the next unread byte. */
    std::uint64_t offset() const { return _base + _pos; }

  private:
    void
    need(std::uint64_t n)
    {
        if (n > _size - _pos) {
            throw TraceError(TraceError::Kind::Truncated, offset(),
                             "input ends inside a field");
        }
    }

    const std::uint8_t *_data;
    std::size_t _size;
    std::size_t _pos = 0;
    std::uint64_t _base;
};

/** FNV-1a over a raw byte range (the payload digest). */
inline std::uint64_t
fnv1aBytes(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace dvfs::trace

#endif // DVFS_TRACE_WIRE_HH
