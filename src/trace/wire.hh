/**
 * @file
 * Trace-flavoured view of the shared wire codec (src/net/wire.hh).
 * Internal to src/trace/ — not part of the stable surface.
 *
 * The encoder, cursor and digest implementations live in net::wire so
 * the .dvfstrace format and the DVFSRPC1 protocol share exactly one
 * strict-decode implementation; this header only binds the cursor's
 * error policy to trace::TraceError, so any overrun or impossible
 * byte sequence raises TraceError::Truncated / TraceError::BadValue
 * exactly as before the codec was shared.
 */

#ifndef DVFS_TRACE_WIRE_HH
#define DVFS_TRACE_WIRE_HH

#include <cstdint>

#include "net/wire.hh"
#include "trace/format.hh"

namespace dvfs::trace {

using Encoder = net::Encoder;

/** Maps shared-cursor failures onto structured TraceErrors. */
struct TraceWirePolicy {
    [[noreturn]] static void
    truncated(std::uint64_t offset, const char *what)
    {
        throw TraceError(TraceError::Kind::Truncated, offset, what);
    }

    [[noreturn]] static void
    badValue(std::uint64_t offset, const char *what)
    {
        throw TraceError(TraceError::Kind::BadValue, offset, what);
    }
};

using Cursor = net::BasicCursor<TraceWirePolicy>;

using net::fnv1aBytes;

} // namespace dvfs::trace

#endif // DVFS_TRACE_WIRE_HH
