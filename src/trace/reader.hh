/**
 * @file
 * Trace reader: validate and load a .dvfstrace into a pred::RunView.
 *
 * The reader is strict before it is lenient: magic, version, reserved
 * fields and the FNV-1a payload digest are checked before any section
 * is parsed, every section length is bounds-checked against the
 * input, and every enum/id field is range-checked. Malformed input of
 * any kind — truncated, bit-flipped, alien — raises a structured
 * TraceError; it can never produce undefined behaviour or a silently
 * wrong record. Unknown section ids, by contrast, are skipped (they
 * are how future writers add observation fields, see DESIGN.md
 * section 10), which is safe precisely because the digest has already
 * vouched for the bytes.
 */

#ifndef DVFS_TRACE_READER_HH
#define DVFS_TRACE_READER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pred/record.hh"
#include "pred/run_view.hh"
#include "trace/format.hh"
#include "trace/writer.hh"

namespace dvfs::trace {

/**
 * A run loaded from a .dvfstrace file — the offline RunView backend.
 *
 * Owns the deserialized record; views handed to predictors stay valid
 * for the lifetime of the LoadedTrace.
 */
class LoadedTrace final : public pred::RunView
{
  public:
    LoadedTrace() = default;
    LoadedTrace(TraceMeta meta, pred::RunRecord rec,
                std::uint64_t payload_digest)
        : _meta(std::move(meta)), _rec(std::move(rec)),
          _digest(payload_digest)
    {
    }

    /** Identifying metadata (workload name, seed). */
    const TraceMeta &meta() const { return _meta; }

    /** The reconstructed record (equal field-by-field to the source). */
    const pred::RunRecord &record() const { return _rec; }

    /** The verified payload digest from the file header. */
    std::uint64_t payloadDigest() const { return _digest; }

    // RunView surface.
    Frequency baseFreq() const override { return _rec.baseFreq; }
    Tick totalTime() const override { return _rec.totalTime; }

    const std::vector<pred::Epoch> &
    epochs() const override
    {
        return _rec.epochs;
    }

    const std::vector<pred::ThreadSummary> &
    threads() const override
    {
        return _rec.threads;
    }

    const std::vector<pred::GcPhaseMark> &
    gcMarks() const override
    {
        return _rec.gcMarks;
    }

  private:
    TraceMeta _meta;
    pred::RunRecord _rec;
    std::uint64_t _digest = 0;
};

/**
 * Decode an in-memory .dvfstrace image.
 *
 * @throws TraceError on any malformed input (see format.hh).
 */
LoadedTrace decodeTrace(const std::vector<std::uint8_t> &image);

/**
 * Read and decode @p path.
 *
 * @throws TraceError{Io} if unreadable, else as decodeTrace.
 */
LoadedTrace readTraceFile(const std::string &path);

} // namespace dvfs::trace

#endif // DVFS_TRACE_READER_HH
