#include "trace/replay.hh"

#include "pred/registry.hh"

namespace dvfs::trace {

ReplayEngine::ReplayEngine()
    : _predictors(pred::PredictorRegistry::instance().figure3Set())
{
}

ReplayEngine::ReplayEngine(
    std::vector<std::unique_ptr<pred::Predictor>> predictors)
    : _predictors(std::move(predictors))
{
}

std::vector<std::string>
ReplayEngine::predictorNames() const
{
    std::vector<std::string> names;
    names.reserve(_predictors.size());
    for (const auto &p : _predictors)
        names.push_back(p->name());
    return names;
}

std::vector<ReplayCell>
ReplayEngine::evaluate(const pred::RunView &base,
                       const std::vector<ReplayTarget> &targets) const
{
    std::vector<ReplayCell> cells;
    cells.reserve(targets.size() * _predictors.size());
    for (const ReplayTarget &t : targets) {
        for (const auto &p : _predictors) {
            ReplayCell cell;
            cell.predictor = p->name();
            cell.target = t.freq;
            cell.predicted = p->predict(base, t.freq);
            cell.actual = t.actual;
            if (t.actual != 0) {
                cell.error = pred::Predictor::relativeError(
                    cell.predicted, t.actual);
            }
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

} // namespace dvfs::trace
