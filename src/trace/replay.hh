/**
 * @file
 * Replay engine: evaluate predictors offline from recorded traces.
 *
 * DEP+BURST's record-once/reuse-many move: one base-frequency run is
 * recorded to a .dvfstrace, and every ModelSpec predictor variant is
 * then evaluated across the full target-frequency grid without
 * touching the simulator. When the actual execution time at a target
 * is known (from a recorded run of the same workload/seed at that
 * frequency), the replay also produces the signed relative error —
 * bit-identical to what the live path computes, because predictors
 * are pure functions of the RunView and the trace round-trips every
 * observed field exactly.
 */

#ifndef DVFS_TRACE_REPLAY_HH
#define DVFS_TRACE_REPLAY_HH

#include <memory>
#include <string>
#include <vector>

#include "pred/predictors.hh"
#include "pred/run_view.hh"
#include "sim/time.hh"

namespace dvfs::trace {

/** One target operating point to replay against. */
struct ReplayTarget {
    Frequency freq;
    /** Ground-truth execution time at freq; 0 = unknown. */
    Tick actual = 0;
};

/** One (predictor, target) evaluation from one recorded run. */
struct ReplayCell {
    std::string predictor;  ///< canonical name (Predictor::name())
    Frequency target;
    Tick predicted = 0;
    Tick actual = 0;        ///< 0 = no ground truth supplied
    double error = 0.0;     ///< relative error; 0 when actual unknown
};

/**
 * Evaluates a set of predictors over target grids.
 *
 * The default predictor set is the registry's Figure 3 zoo; any list
 * of Predictor instances can be supplied instead (e.g. the estimator
 * ablation ladder).
 */
class ReplayEngine
{
  public:
    /** Replay with the canonical Figure 3 predictor set. */
    ReplayEngine();

    /** Replay with an explicit predictor set (takes ownership). */
    explicit ReplayEngine(
        std::vector<std::unique_ptr<pred::Predictor>> predictors);

    /** Names of the predictors evaluated, in evaluation order. */
    std::vector<std::string> predictorNames() const;

    /** The predictor set itself (borrowed; lives as long as *this). */
    const std::vector<std::unique_ptr<pred::Predictor>> &
    predictors() const
    {
        return _predictors;
    }

    /**
     * Evaluate every predictor at every target from @p base.
     *
     * Cells are ordered target-major, predictor-minor: all predictors
     * at targets[0], then all at targets[1], ...
     */
    std::vector<ReplayCell>
    evaluate(const pred::RunView &base,
             const std::vector<ReplayTarget> &targets) const;

  private:
    std::vector<std::unique_ptr<pred::Predictor>> _predictors;
};

} // namespace dvfs::trace

#endif // DVFS_TRACE_REPLAY_HH
