#include "uarch/core.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/profile.hh"

namespace dvfs::uarch {

CoreModel::CoreModel(std::uint32_t id, const CoreConfig &cfg,
                     CacheHierarchy &mem, const FreqDomain &domain)
    : _id(id), _cfg(cfg), _mem(mem), _domain(domain)
{
    if (_cfg.baseIpc <= 0.0 || _cfg.storeDispatchPerCycle <= 0.0)
        fatal("core %u: IPC and store dispatch rate must be positive", id);
}

void
CoreModel::reset()
{
    _sqPending.clear();
    _sqOccupied = 0;
    _missScratch.clear();
}

Tick
CoreModel::instrTicks(double n, double ipc_scale) const
{
    double cycles = n / (_cfg.baseIpc * ipc_scale);
    return _domain.frequency().cyclesToTicks(cycles);
}

Tick
CoreModel::executeCompute(const ComputeSpec &spec, Tick start,
                          PerfCounters &pc)
{
    DVFS_PROFILE_SCOPE(Core);
    Tick t_compute = instrTicks(static_cast<double>(spec.instructions),
                                spec.ipcScale);
    // Medium-locality loads: L2 hits scale with the core clock, L3
    // hits are uncore-clocked wall time. About half of each hit
    // latency is assumed hidden by the out-of-order window.
    Tick t_l2 = static_cast<Tick>(
        spec.l2Loads * (_mem.l2HitTicks(_domain.frequency()) / 2));
    Tick t_l3 = static_cast<Tick>(spec.l3Loads * (_mem.l3HitTicks() / 2));

    Tick elapsed = t_compute + t_l2 + t_l3;

    pc.busyTime += elapsed;
    pc.instructions += spec.instructions;
    pc.computeTime += t_compute + t_l2;  // both scale with frequency
    pc.trueMemTime += t_l3;
    pc.l2Hits += spec.l2Loads;
    pc.l3Hits += spec.l3Loads;
    return start + elapsed;
}

Tick
CoreModel::executeCluster(const MissClusterSpec &spec, Tick start,
                          PerfCounters &pc)
{
    DVFS_PROFILE_SCOPE(Core);
    const Frequency freq = _domain.frequency();

    // Record per-DRAM-miss (issue, completion) pairs for the Leading
    // Loads estimate, in the core's reusable scratch arena.
    std::vector<MissWindow> &dram_misses = _missScratch;
    dram_misses.clear();

    Tick mem_end = start;
    Tick crit = 0;  // CRIT: max over chains of accumulated DRAM latency

    for (const auto &chain : spec.chains) {
        Tick t = start;
        Tick chain_dram = 0;
        for (std::uint64_t addr : chain) {
            auto out = _mem.load(_id, addr, t, freq);
            switch (out.level) {
              case HitLevel::L1:
                pc.l1Hits += 1;
                break;
              case HitLevel::L2:
                pc.l2Hits += 1;
                break;
              case HitLevel::L3:
                pc.l3Hits += 1;
                break;
              case HitLevel::Dram:
                pc.dramLoads += 1;
                chain_dram += out.memLatency;
                dram_misses.push_back(
                    MissWindow{t, out.completion});
                break;
            }
            t = out.completion;
        }
        mem_end = std::max(mem_end, t);
        crit = std::max(crit, chain_dram);
    }

    // Leading Loads: walk DRAM misses in issue order; a miss that
    // begins while another is outstanding is shadowed and contributes
    // nothing, regardless of its actual (possibly longer) latency.
    std::sort(dram_misses.begin(), dram_misses.end(),
              [](const MissWindow &a, const MissWindow &b) {
                  if (a.issue != b.issue)
                      return a.issue < b.issue;
                  return a.completion < b.completion;
              });
    Tick leading = 0;
    Tick window_end = 0;
    for (const auto &m : dram_misses) {
        if (m.issue >= window_end) {
            leading += m.completion - m.issue;
            window_end = m.completion;
        } else {
            window_end = std::max(window_end, m.completion);
        }
    }

    Tick t_cpu = instrTicks(static_cast<double>(spec.overlapInstructions));
    Tick elapsed = std::max(mem_end - start, t_cpu);

    pc.busyTime += elapsed;
    pc.instructions += spec.overlapInstructions;
    pc.missClusters += 1;
    pc.computeTime += std::min(t_cpu, elapsed);
    pc.trueMemTime += elapsed > t_cpu ? elapsed - t_cpu : 0;
    pc.critNonscaling += crit;
    pc.leadingNonscaling += leading;
    pc.stallNonscaling += elapsed > t_cpu ? elapsed - t_cpu : 0;
    return start + elapsed;
}

Tick
CoreModel::executeStoreBurst(const StoreBurstSpec &spec, Tick start,
                             PerfCounters &pc)
{
    DVFS_PROFILE_SCOPE(Core);
    if (spec.lines == 0)
        return start;

    const Frequency freq = _domain.frequency();
    const double store_period_cycles = 1.0 / _cfg.storeDispatchPerCycle;
    const Tick line_dispatch =
        freq.cyclesToTicks(store_period_cycles * spec.storesPerLine);
    const std::uint32_t spl = std::max<std::uint32_t>(1, spec.storesPerLine);

    Tick t = start;
    Tick sq_full = 0;

    for (std::uint32_t i = 0; i < spec.lines; ++i) {
        // Retire drained lines.
        while (!_sqPending.empty() && _sqPending.front().first <= t) {
            _sqOccupied -= _sqPending.front().second;
            _sqPending.pop_front();
        }
        // Block dispatch while the SQ cannot take this line's stores.
        while (_sqOccupied + spl > _cfg.sqEntries && !_sqPending.empty()) {
            Tick drain = _sqPending.front().first;
            if (drain > t) {
                sq_full += drain - t;
                t = drain;
            }
            _sqOccupied -= _sqPending.front().second;
            _sqPending.pop_front();
        }
        // Dispatch the line's stores (core-clock paced).
        t += line_dispatch;
        // Hand the line to the memory system; it occupies SQ entries
        // until the hierarchy structurally accepts it.
        std::uint64_t addr =
            spec.baseAddr + static_cast<std::uint64_t>(i) * 64;
        Tick done = _mem.storeLine(_id, addr, t);
        if (done > t) {
            _sqPending.emplace_back(done, spl);
            _sqOccupied += spl;
        }
    }

    Tick elapsed = t - start;
    pc.busyTime += elapsed;
    // Roughly one micro-op per store retires.
    pc.instructions += static_cast<std::uint64_t>(spec.lines) * spl;
    pc.storeBursts += 1;
    pc.storeLines += spec.lines;
    pc.sqFullTime += sq_full;
    pc.trueMemTime += sq_full;
    pc.computeTime += elapsed - sq_full;
    return t;
}

Tick
CoreModel::atomicRmw(Tick start, bool contended, PerfCounters &pc)
{
    Tick elapsed = _domain.frequency().cyclesToTicks(_cfg.atomicCycles);
    if (contended) {
        // Cross-core line transfer through the shared L3: fixed-time
        // (uncore) cost, invisible to the DVFS counters.
        elapsed += _mem.l3HitTicks();
        pc.trueMemTime += _mem.l3HitTicks();
    }
    pc.busyTime += elapsed;
    pc.instructions += _cfg.atomicCycles;  // approx: 1 IPC through RMW
    pc.computeTime += _domain.frequency().cyclesToTicks(_cfg.atomicCycles);
    return start + elapsed;
}

} // namespace dvfs::uarch
