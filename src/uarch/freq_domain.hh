/**
 * @file
 * Clock/frequency domains with DVFS transition history.
 *
 * The modelled chip has two domains, as in the paper's Haswell-like
 * configuration (Table II): a core domain whose frequency is scaled
 * chip-wide between 1.0 and 4.0 GHz, and a fixed 1.5 GHz uncore domain
 * clocking the shared L3. DRAM timing is specified in wall-clock
 * nanoseconds and needs no domain.
 */

#ifndef DVFS_UARCH_FREQ_DOMAIN_HH
#define DVFS_UARCH_FREQ_DOMAIN_HH

#include <string>
#include <vector>

#include "sim/time.hh"

namespace dvfs::uarch {

/**
 * A frequency domain: a clock shared by one or more components, with a
 * record of every DVFS transition for later energy integration.
 */
class FreqDomain
{
  public:
    /** One DVFS setting that was in effect starting at a given tick. */
    struct Setting {
        Tick since;       ///< tick at which this frequency took effect
        Frequency freq;   ///< the frequency
    };

    /**
     * @param name Human-readable domain name ("core", "uncore").
     * @param initial Frequency in effect from tick 0.
     */
    FreqDomain(std::string name, Frequency initial);

    /** Domain name. */
    const std::string &name() const { return _name; }

    /** Frequency currently in effect. */
    Frequency frequency() const { return _history.back().freq; }

    /**
     * Change the domain frequency at time @p now.
     *
     * Transitions at the same tick overwrite each other (last wins);
     * a transition to the current frequency is recorded anyway so the
     * caller can count attempted switches.
     *
     * @return true if the frequency actually changed.
     */
    bool setFrequency(Frequency f, Tick now);

    /** Complete transition history, oldest first. */
    const std::vector<Setting> &history() const { return _history; }

    /** Number of actual frequency changes (excluding same-value sets). */
    std::uint64_t transitions() const { return _transitions; }

    /** Convert cycles in this domain to ticks at the current setting. */
    Tick
    cyclesToTicks(double cycles) const
    {
        return frequency().cyclesToTicks(cycles);
    }

    /**
     * Integrate frequency over [from, to): returns average frequency
     * weighted by residency, useful for reports.
     */
    double averageGHz(Tick from, Tick to) const;

  private:
    std::string _name;
    std::vector<Setting> _history;
    std::uint64_t _transitions;
};

} // namespace dvfs::uarch

#endif // DVFS_UARCH_FREQ_DOMAIN_HH
