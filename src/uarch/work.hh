/**
 * @file
 * Microarchitectural work-item descriptors.
 *
 * Thread programs (workloads, the garbage collector, runtime services)
 * describe what a thread does as a sequence of work items; the core
 * model turns each item into elapsed time and hardware-counter
 * updates. Items carry *logical* work (instruction counts, addresses)
 * only — never durations — so the identical item stream can be
 * executed at any DVFS setting.
 */

#ifndef DVFS_UARCH_WORK_HH
#define DVFS_UARCH_WORK_HH

#include <cstdint>
#include <vector>

namespace dvfs::uarch {

/**
 * Straight-line computation with good cache behaviour.
 *
 * @c l2Loads and @c l3Loads charge hit latencies in the private
 * (core-clock) and shared (uncore-clock) levels analytically; they
 * model the medium-locality accesses that are too frequent to walk
 * through the tag arrays one by one but too slow to fold into IPC.
 */
struct ComputeSpec {
    std::uint64_t instructions = 0;
    std::uint32_t l2Loads = 0;   ///< loads hitting the private L2
    std::uint32_t l3Loads = 0;   ///< loads hitting the shared L3
    double ipcScale = 1.0;       ///< per-phase IPC multiplier (JIT plan)
};

/**
 * A cluster of potentially long-latency loads.
 *
 * The cluster consists of one or more dependence chains; loads within
 * a chain are address-dependent (each issues when its predecessor's
 * data returns), chains are mutually independent and overlap (MLP).
 * @c overlapInstructions is the independent work the out-of-order
 * window can retire underneath the cluster.
 */
struct MissClusterSpec {
    std::vector<std::vector<std::uint64_t>> chains;
    std::uint64_t overlapInstructions = 0;

    /**
     * Opaque shape-classification key provided by the generator
     * (e.g. the hot/warm/cold region mix of the chains). The core
     * model ignores it; the fast-path model (fastpath.hh) uses it to
     * separate clusters whose load counts match but whose latency
     * distributions do not.
     */
    std::uint32_t shapeHint = 0;

    /**
     * Lite descriptor, produced instead of @c chains when a program is
     * asked for a fast-forward action (ThreadContext::liteTiming): the
     * generator performs the identical RNG draws but materialises no
     * addresses. Lite specs can only be charged analytically, never
     * executed by the detailed core model.
     */
    std::uint32_t liteChains = 0;
    std::uint32_t liteChainDepth = 0;

    /** True if this is an address-free lite descriptor. */
    bool lite() const { return liteChains != 0; }

    /** Total loads, for either representation. */
    std::uint32_t
    loadCount() const
    {
        if (lite())
            return liteChains * liteChainDepth;
        std::size_t n = 0;
        for (const auto &c : chains)
            n += c.size();
        return static_cast<std::uint32_t>(n);
    }
};

/**
 * A burst of stores to consecutive cache lines (zero-initialisation of
 * freshly allocated memory, or GC copying).
 *
 * The default of two stores per line models the 32-byte vector stores
 * runtimes use for bulk zeroing and copying; scalar code would use
 * eight. The choice sets the dispatch-side cost of a burst — with wide
 * stores, bursts are drain-limited at every DVFS setting, which is
 * what makes their duration (mostly) non-scaling.
 */
struct StoreBurstSpec {
    std::uint64_t baseAddr = 0;
    std::uint32_t lines = 0;
    std::uint32_t storesPerLine = 2;  ///< 32-byte stores filling a line
};

} // namespace dvfs::uarch

#endif // DVFS_UARCH_WORK_HH
