/**
 * @file
 * Interval-style out-of-order core model.
 *
 * Each core executes work items (see work.hh) for whatever thread the
 * OS schedules on it and charges the elapsed time plus hardware
 * counter updates to that thread's PerfCounters block.
 *
 * The model follows Sniper's interval philosophy: plain computation
 * retires at a base IPC in the core clock domain; a miss cluster
 * elapses max(memory critical path, overlapped compute); a store burst
 * is paced by the faster of store dispatch (core clock) and store
 * queue drain (memory-side, wall-clock) with explicit tracking of the
 * time the store queue is full.
 *
 * Alongside the ground-truth timing the core maintains the three
 * DVFS-counter estimates the paper discusses (stall / leading loads /
 * CRIT) plus the store-queue-full counter for BURST — each computed
 * the way the corresponding proposed hardware would see events, blind
 * spots included.
 */

#ifndef DVFS_UARCH_CORE_HH
#define DVFS_UARCH_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/time.hh"
#include "uarch/cache.hh"
#include "uarch/freq_domain.hh"
#include "uarch/perf_counters.hh"
#include "uarch/work.hh"

namespace dvfs::uarch {

/** Static configuration of one core. */
struct CoreConfig {
    double baseIpc = 2.0;           ///< retire rate for plain compute
    std::uint32_t robEntries = 192; ///< reorder buffer (Haswell-like)
    std::uint32_t sqEntries = 42;   ///< store queue entries
    /** Stores the core can dispatch into the SQ per cycle. */
    double storeDispatchPerCycle = 1.0;
    /** Core cycles for an uncontended atomic RMW (lock fast path). */
    std::uint32_t atomicCycles = 20;
};

/**
 * One out-of-order core.
 *
 * The core itself is stateless with respect to *which* thread runs on
 * it (the OS virtualizes counters); it does keep microarchitectural
 * state that legitimately persists across context switches: the store
 * queue drain horizon.
 */
class CoreModel
{
  public:
    /**
     * @param id     Core number (selects the private caches).
     * @param cfg    Core parameters.
     * @param mem    Shared cache hierarchy.
     * @param domain Core clock domain (chip-wide DVFS).
     */
    CoreModel(std::uint32_t id, const CoreConfig &cfg, CacheHierarchy &mem,
              const FreqDomain &domain);

    /** Core number. */
    std::uint32_t id() const { return _id; }

    /**
     * Execute straight-line compute.
     * @return Completion tick.
     */
    Tick executeCompute(const ComputeSpec &spec, Tick start,
                        PerfCounters &pc);

    /** Execute a long-latency miss cluster. @return completion tick. */
    Tick executeCluster(const MissClusterSpec &spec, Tick start,
                        PerfCounters &pc);

    /** Execute a store burst. @return completion tick. */
    Tick executeStoreBurst(const StoreBurstSpec &spec, Tick start,
                           PerfCounters &pc);

    /**
     * Execute an atomic read-modify-write (lock acquisition/release).
     *
     * @param contended If true, the line is owned by another core and
     *                  a fixed-time cross-core transfer is charged (in
     *                  the uncore domain, i.e. non-scaling — and
     *                  invisible to all three DVFS counters, which is
     *                  faithful to real hardware).
     * @return Completion tick.
     */
    Tick atomicRmw(Tick start, bool contended, PerfCounters &pc);

    /** Drop microarchitectural state (between runs). */
    void reset();

    const CoreConfig &config() const { return _cfg; }

    /** Current core frequency. */
    Frequency frequency() const { return _domain.frequency(); }

  private:
    /** Ticks to retire @p n instructions at the current frequency. */
    Tick instrTicks(double n, double ipc_scale = 1.0) const;

    /** One DRAM miss's (issue, completion) pair, for Leading Loads. */
    struct MissWindow {
        Tick issue;
        Tick completion;
    };

    std::uint32_t _id;
    CoreConfig _cfg;
    CacheHierarchy &_mem;
    const FreqDomain &_domain;

    /**
     * Scratch arena for executeCluster's per-cluster DRAM-miss list.
     * Cleared (capacity kept) at the top of each cluster, so the
     * buffer is allocated once per core and reused for the life of the
     * run instead of malloc'd per miss cluster. Valid only during one
     * executeCluster call; never read across calls.
     */
    std::vector<MissWindow> _missScratch;

    /**
     * Store-queue occupancy: drain completion tick and store count of
     * each line still occupying SQ entries, oldest first.
     */
    std::deque<std::pair<Tick, std::uint32_t>> _sqPending;
    std::uint32_t _sqOccupied = 0;
};

} // namespace dvfs::uarch

#endif // DVFS_UARCH_CORE_HH
