/**
 * @file
 * Banked DRAM model with variable access latency.
 *
 * The model is deliberately richer than any of the predictors' views
 * of memory: accesses see row-buffer hits and misses, per-bank
 * serialization, data-bus occupancy, and a controller queue — so a
 * cluster of "long-latency load misses" genuinely has variable
 * per-miss latency. That variability is exactly what separates the
 * Leading Loads model from CRIT in the paper (Section II-A).
 *
 * Timing is wall-clock (nanosecond-specified) and therefore
 * independent of the core frequency — the "non-scaling" component of
 * execution time originates here.
 *
 * The model is analytic rather than event-driven: an access computes
 * its completion time immediately from the current bank/bus state and
 * mutates that state. Cross-core contention appears through the shared
 * state. See DESIGN.md section 5 ("atomic cluster issue").
 */

#ifndef DVFS_UARCH_DRAM_HH
#define DVFS_UARCH_DRAM_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/time.hh"

namespace dvfs::fault {
class FaultPlan;
}

namespace dvfs::uarch {

/** Configuration of the DRAM subsystem. */
struct DramConfig {
    std::uint32_t channels = 2;        ///< independent channels
    std::uint32_t banksPerChannel = 16;///< banks per channel (dual rank)
    std::uint32_t rowBytes = 8192;     ///< row-buffer size
    std::uint32_t lineBytes = 64;      ///< transfer granule

    double tCasNs = 13.75;   ///< column access (row-buffer hit part)
    double tRcdNs = 13.75;   ///< RAS-to-CAS (activate)
    double tRpNs = 13.75;    ///< precharge
    double tBurstNs = 5.0;   ///< data transfer of one line on the bus
    double tCtrlNs = 10.0;   ///< controller + queueing fixed overhead
    double tWrNs = 10.0;     ///< write recovery after a write burst

    /** Max reads a channel can overlap; beyond this, queueing delay. */
    std::uint32_t channelQueueDepth = 32;
};

/**
 * The DRAM device + controller model shared by all cores.
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg = DramConfig());

    /**
     * Perform a read of one line.
     *
     * @param addr  Physical address (line-aligned internally).
     * @param issue Tick at which the request reaches the controller.
     * @return Tick at which the critical word is available to the core.
     */
    Tick read(std::uint64_t addr, Tick issue);

    /**
     * Perform a write (e.g. dirty writeback or store-burst drain) of
     * one line.
     *
     * @param addr  Physical address.
     * @param issue Tick at which the write is handed to the controller.
     * @return Tick at which the write has drained (bank free again);
     *         used to pace store-queue drain.
     */
    Tick write(std::uint64_t addr, Tick issue);

    /**
     * An idealized read latency with no contention, for configuration
     * reports: tCtrl + tRcd + tCas + tBurst.
     */
    Tick unloadedReadLatency() const;

    const DramConfig &config() const { return _cfg; }

    /** Reset all bank/bus state (between independent runs). */
    void reset();

    /**
     * Install a fault plan (nullable): reads may see injected latency
     * spikes, and banks may be stalled for maintenance blackouts.
     */
    void setFaultPlan(fault::FaultPlan *plan) { _faultPlan = plan; }

    /// @name Statistics
    /// @{
    std::uint64_t reads() const { return _reads.value(); }
    std::uint64_t writes() const { return _writes.value(); }
    std::uint64_t rowHits() const { return _rowHits.value(); }
    std::uint64_t rowMisses() const { return _rowMisses.value(); }
    /** Mean read latency (ns) since construction/reset. */
    double meanReadLatencyNs() const;
    /** Mean write-drain latency (ns) since construction/reset. */
    double meanWriteLatencyNs() const;
    /// @}

  private:
    /**
     * Bank state. Only reads manage the row buffer here: buffered
     * writes are drained row-batched by the controller (flat amortized
     * service in access()). Timing occupancy (freeAt) is shared — the
     * bank is one resource.
     */
    struct Bank {
        Tick freeAt = 0;               ///< bank busy until this tick
        std::uint64_t openRow = ~0ULL; ///< row open for reads
    };

    /**
     * Per-channel state. Reads and writes are tracked separately:
     * modern controllers buffer writes and drain them with read
     * priority, so a store stream consumes write bandwidth without
     * serializing demand loads behind it. Bank occupancy (including
     * write recovery) is shared — the physical resource conflicts
     * remain visible to reads.
     */
    struct Channel {
        std::vector<Bank> banks;
        Tick readBusFreeAt = 0;   ///< read data bus busy until
        Tick writeBusFreeAt = 0;  ///< write drain bandwidth budget
        /**
         * Completion times of recent reads (read queue depth), a ring
         * buffer: per-direction completion times never decrease (each
         * transfer starts no earlier than the previous one ends), so
         * the oldest entry is always the minimum and a head index
         * replaces a full scan.
         */
        std::vector<Tick> inflightReads;
        std::uint32_t readHead = 0;  ///< oldest slot in inflightReads
        /** Completion times of recent writes (write buffer depth). */
        std::vector<Tick> inflightWrites;
        std::uint32_t writeHead = 0; ///< oldest slot in inflightWrites
    };

    /** Map an address to (channel, bank, row). */
    void decode(std::uint64_t addr, std::uint32_t &channel,
                std::uint32_t &bank, std::uint64_t &row) const;

    /** Common access path for reads and writes. */
    Tick access(std::uint64_t addr, Tick issue, bool is_write);

    DramConfig _cfg;
    std::vector<Channel> _channels;
    fault::FaultPlan *_faultPlan = nullptr;

    Tick _tCas, _tRcd, _tRp, _tBurst, _tCtrl, _tWr;

    /**
     * Shift/mask form of decode(), valid when every geometry parameter
     * is a power of two (the default and every realistic config).
     * Falls back to the division form otherwise.
     */
    bool _pow2Decode = false;
    std::uint32_t _lineShift = 0, _chanShift = 0, _bankShift = 0,
                  _rowShift = 0;
    std::uint64_t _chanMask = 0, _bankMask = 0;

    sim::Counter _reads, _writes, _rowHits, _rowMisses;
    Tick _readLatencySum = 0;
    Tick _writeLatencySum = 0;
};

} // namespace dvfs::uarch

#endif // DVFS_UARCH_DRAM_HH
