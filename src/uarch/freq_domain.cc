#include "uarch/freq_domain.hh"

#include <algorithm>

#include "sim/log.hh"

namespace dvfs::uarch {

FreqDomain::FreqDomain(std::string name, Frequency initial)
    : _name(std::move(name)), _transitions(0)
{
    if (!initial.valid())
        fatal("frequency domain '%s' needs a valid initial frequency",
              _name.c_str());
    _history.push_back(Setting{0, initial});
}

bool
FreqDomain::setFrequency(Frequency f, Tick now)
{
    if (!f.valid())
        fatal("cannot set domain '%s' to an invalid frequency",
              _name.c_str());
    if (now < _history.back().since)
        panic("DVFS transition out of order in domain '%s'", _name.c_str());

    bool changed = f != _history.back().freq;
    if (now == _history.back().since) {
        _history.back().freq = f;
    } else {
        _history.push_back(Setting{now, f});
    }
    if (changed)
        ++_transitions;
    return changed;
}

double
FreqDomain::averageGHz(Tick from, Tick to) const
{
    if (to <= from)
        return frequency().toGHz();

    double weighted = 0.0;
    for (std::size_t i = 0; i < _history.size(); ++i) {
        Tick seg_start = std::max(_history[i].since, from);
        Tick seg_end = (i + 1 < _history.size()) ? _history[i + 1].since : to;
        seg_end = std::min(seg_end, to);
        if (seg_end > seg_start) {
            weighted += _history[i].freq.toGHz() *
                        static_cast<double>(seg_end - seg_start);
        }
    }
    return weighted / static_cast<double>(to - from);
}

} // namespace dvfs::uarch
