#include "uarch/fastpath.hh"

#include <algorithm>

#include "sim/log.hh"

namespace dvfs::uarch {

FastPathModel::FastPathModel(std::uint32_t cores, const FastPathConfig &cfg)
    : _cores(std::max<std::uint32_t>(1, cores)), _cfg(cfg)
{
}

FastPathModel::ClusterShape &
FastPathModel::clusterShape(std::uint32_t loads, std::uint64_t overlap,
                            std::uint32_t hint)
{
    // Linear scan: a workload produces a handful of shapes (one per
    // region-mix of its cluster recipe, plus the GC tracer's), so a
    // short vector beats any hash map here.
    for (auto &s : _clusters) {
        if (s.loads == loads && s.overlapInstructions == overlap &&
            s.shapeHint == hint) {
            return s;
        }
    }
    ClusterShape s;
    s.loads = loads;
    s.overlapInstructions = overlap;
    s.shapeHint = hint;
    s.lanes.resize(_cores + 1);
    _clusters.push_back(std::move(s));
    return _clusters.back();
}

FastPathModel::BurstShape &
FastPathModel::burstShape(std::uint32_t storesPerLine)
{
    for (auto &s : _bursts) {
        if (s.storesPerLine == storesPerLine)
            return s;
    }
    BurstShape s;
    s.storesPerLine = storesPerLine;
    s.lanes.resize(_cores + 1);
    _bursts.push_back(std::move(s));
    return _bursts.back();
}

void
FastPathModel::age()
{
    for (auto &s : _clusters)
        for (auto &l : s.lanes)
            l.promote(_cfg.minClusterObs);
    for (auto &s : _bursts)
        for (auto &l : s.lanes)
            l.promote(_cfg.minBurstLines);
}

void
FastPathModel::observeCluster(const MissClusterSpec &spec,
                              std::uint32_t busyCores, Tick elapsed,
                              const PerfCounters &delta)
{
    DVFS_ASSERT(!spec.lite(), "observing a lite cluster spec");
    ClusterShape &s =
        clusterShape(spec.loadCount(), spec.overlapInstructions,
                     spec.shapeHint);
    const std::uint32_t b = std::clamp<std::uint32_t>(busyCores, 1, _cores);
    for (std::uint32_t lane : {0u, b}) {
        Lane<CfCount_> &l = s.lanes[lane];
        l.winWeight += 1;
        l.winObs[CfElapsed] += elapsed;
        l.winObs[CfCompute] += delta.computeTime;
        l.winObs[CfTrueMem] += delta.trueMemTime;
        l.winObs[CfCrit] += delta.critNonscaling;
        l.winObs[CfLeading] += delta.leadingNonscaling;
        l.winObs[CfStall] += delta.stallNonscaling;
        l.winObs[CfL1] += delta.l1Hits;
        l.winObs[CfL2] += delta.l2Hits;
        l.winObs[CfL3] += delta.l3Hits;
        l.winObs[CfDram] += delta.dramLoads;
    }
    _observedClusters += 1;
}

void
FastPathModel::observeBurst(const StoreBurstSpec &spec,
                            std::uint32_t busyCores, Tick elapsed,
                            const PerfCounters &delta)
{
    if (spec.lines == 0)
        return;
    BurstShape &s = burstShape(spec.storesPerLine);
    const std::uint32_t b = std::clamp<std::uint32_t>(busyCores, 1, _cores);
    for (std::uint32_t lane : {0u, b}) {
        Lane<BfCount_> &l = s.lanes[lane];
        l.winWeight += spec.lines;
        l.winObs[BfElapsed] += elapsed;
        l.winObs[BfCompute] += delta.computeTime;
        l.winObs[BfTrueMem] += delta.trueMemTime;
        l.winObs[BfSqFull] += delta.sqFullTime;
    }
    _observedLines += spec.lines;
}

bool
FastPathModel::chargeCluster(const MissClusterSpec &spec,
                             std::uint32_t busyCores, Tick &elapsed,
                             PerfCounters &pc)
{
    ClusterShape *s = nullptr;
    const std::uint32_t loads = spec.loadCount();
    for (auto &cand : _clusters) {
        if (cand.loads == loads &&
            cand.overlapInstructions == spec.overlapInstructions &&
            cand.shapeHint == spec.shapeHint) {
            s = &cand;
            break;
        }
    }
    if (!s)
        return false;

    // Prefer the occupancy-matched lane (contention-aware); fall back
    // to the shape aggregate while the bucket is cold.
    const std::uint32_t b = std::clamp<std::uint32_t>(busyCores, 1, _cores);
    Lane<CfCount_> *lane = &s->lanes[b];
    if (lane->eraWeight < _cfg.minClusterObs)
        lane = &s->lanes[0];
    if (lane->eraWeight < _cfg.minClusterObs)
        return false;

    lane->charged += 1;
    const std::uint64_t w = lane->charged;
    elapsed = emitShare(*lane, CfElapsed, w);
    pc.busyTime += elapsed;
    pc.instructions += spec.overlapInstructions;
    pc.missClusters += 1;
    pc.computeTime += emitShare(*lane, CfCompute, w);
    pc.trueMemTime += emitShare(*lane, CfTrueMem, w);
    pc.critNonscaling += emitShare(*lane, CfCrit, w);
    pc.leadingNonscaling += emitShare(*lane, CfLeading, w);
    pc.stallNonscaling += emitShare(*lane, CfStall, w);
    pc.l1Hits += emitShare(*lane, CfL1, w);
    pc.l2Hits += emitShare(*lane, CfL2, w);
    pc.l3Hits += emitShare(*lane, CfL3, w);
    pc.dramLoads += emitShare(*lane, CfDram, w);
    return true;
}

bool
FastPathModel::chargeBurst(const StoreBurstSpec &spec,
                           std::uint32_t busyCores, Tick &elapsed,
                           PerfCounters &pc)
{
    if (spec.lines == 0) {
        elapsed = 0;
        return true;
    }
    BurstShape *s = nullptr;
    for (auto &cand : _bursts) {
        if (cand.storesPerLine == spec.storesPerLine) {
            s = &cand;
            break;
        }
    }
    if (!s)
        return false;

    const std::uint32_t b = std::clamp<std::uint32_t>(busyCores, 1, _cores);
    Lane<BfCount_> *lane = &s->lanes[b];
    if (lane->eraWeight < _cfg.minBurstLines)
        lane = &s->lanes[0];
    if (lane->eraWeight < _cfg.minBurstLines)
        return false;

    lane->charged += spec.lines;
    const std::uint64_t w = lane->charged;
    elapsed = emitShare(*lane, BfElapsed, w);
    const std::uint32_t spl =
        std::max<std::uint32_t>(1, spec.storesPerLine);
    pc.busyTime += elapsed;
    pc.instructions += static_cast<std::uint64_t>(spec.lines) * spl;
    pc.storeBursts += 1;
    pc.storeLines += spec.lines;
    pc.computeTime += emitShare(*lane, BfCompute, w);
    pc.trueMemTime += emitShare(*lane, BfTrueMem, w);
    pc.sqFullTime += emitShare(*lane, BfSqFull, w);
    return true;
}

} // namespace dvfs::uarch
