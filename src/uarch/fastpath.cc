#include "uarch/fastpath.hh"

#include <algorithm>

#include "sim/log.hh"

namespace dvfs::uarch {

FastPathModel::FastPathModel(std::uint32_t cores, const FastPathConfig &cfg)
    : _cores(std::max<std::uint32_t>(1, cores)), _cfg(cfg)
{
    // One unlabeled point: fixed-frequency runs (and direct model
    // tests) never call setOperatingPoint and live here throughout.
    _points.emplace_back();
}

FastPathModel::ClusterShape &
FastPathModel::clusterShape(std::uint32_t loads, std::uint64_t overlap,
                            std::uint32_t hint)
{
    // Linear scan: a workload produces a handful of shapes (one per
    // region-mix of its cluster recipe, plus the GC tracer's), so a
    // short vector beats any hash map here.
    auto &clusters = _points[_cur].clusters;
    for (auto &s : clusters) {
        if (s.loads == loads && s.overlapInstructions == overlap &&
            s.shapeHint == hint) {
            return s;
        }
    }
    ClusterShape s;
    s.loads = loads;
    s.overlapInstructions = overlap;
    s.shapeHint = hint;
    s.lanes.resize(_cores + 1);
    clusters.push_back(std::move(s));
    return clusters.back();
}

FastPathModel::BurstShape &
FastPathModel::burstShape(std::uint32_t storesPerLine)
{
    auto &bursts = _points[_cur].bursts;
    for (auto &s : bursts) {
        if (s.storesPerLine == storesPerLine)
            return s;
    }
    BurstShape s;
    s.storesPerLine = storesPerLine;
    s.lanes.resize(_cores + 1);
    bursts.push_back(std::move(s));
    return bursts.back();
}

FastPathModel::PointState
FastPathModel::forkPoint(const PointState &src, std::uint32_t newMhz)
{
    PointState dst;
    dst.mhz = newMhz;
    const std::uint32_t oldMhz = src.mhz;
    dst.clusters.reserve(src.clusters.size());
    for (const auto &s : src.clusters) {
        ClusterShape c;
        c.loads = s.loads;
        c.overlapInstructions = s.overlapInstructions;
        c.shapeHint = s.shapeHint;
        c.lanes.resize(s.lanes.size());
        for (std::size_t i = 0; i < s.lanes.size(); ++i)
            c.lanes[i].fork(s.lanes[i], CfCompute, CfElapsed, oldMhz,
                            newMhz);
        dst.clusters.push_back(std::move(c));
    }
    dst.bursts.reserve(src.bursts.size());
    for (const auto &s : src.bursts) {
        BurstShape b;
        b.storesPerLine = s.storesPerLine;
        b.lanes.resize(s.lanes.size());
        for (std::size_t i = 0; i < s.lanes.size(); ++i)
            b.lanes[i].fork(s.lanes[i], BfCompute, BfElapsed, oldMhz,
                            newMhz);
        dst.bursts.push_back(std::move(b));
    }
    return dst;
}

void
FastPathModel::setOperatingPoint(std::uint32_t mhz)
{
    DVFS_ASSERT(mhz != 0, "operating point must name a real frequency");
    if (_points[_cur].mhz == mhz)
        return;
    for (std::size_t i = 0; i < _points.size(); ++i) {
        if (_points[i].mhz == mhz) {
            // Revisited frequency: resume its own fitted eras (the
            // forced detail window around the transition refreshes
            // them before the next gap charges).
            _cur = i;
            return;
        }
    }
    PointState &cur = _points[_cur];
    if (cur.mhz == 0 && cur.observations == 0) {
        // First label of the construction-time point: nothing fitted
        // yet, no fork to do.
        cur.mhz = mhz;
        return;
    }
    if (cur.mhz == 0) {
        // Observations landed before the point was ever labeled (a
        // directly driven model): the fitted ticks have no known
        // frequency, so a fork cannot rescale them. Start cold.
        _points.emplace_back();
        _points.back().mhz = mhz;
    } else {
        _points.push_back(forkPoint(cur, mhz));
    }
    _cur = _points.size() - 1;
}

void
FastPathModel::age()
{
    PointState &pt = _points[_cur];
    // Drift of the fitted terms: the worst aggregate-lane elapsed-mean
    // movement across the shapes about to promote over a live era.
    // Computed before promote() overwrites the old era; integer-only.
    std::uint32_t drift = kDriftUnknown;
    auto note = [&drift](std::uint64_t oldW, std::uint64_t oldSum,
                         std::uint64_t newW, std::uint64_t newSum) {
        if (oldW == 0 || newW == 0)
            return;
        const unsigned __int128 oldMean =
            (static_cast<unsigned __int128>(oldSum) << 20) / oldW;
        const unsigned __int128 newMean =
            (static_cast<unsigned __int128>(newSum) << 20) / newW;
        if (oldMean == 0)
            return;
        const unsigned __int128 diff =
            oldMean > newMean ? oldMean - newMean : newMean - oldMean;
        const unsigned __int128 permille = diff * 1000 / oldMean;
        const std::uint32_t p =
            permille > kDriftUnknown - 1
                ? kDriftUnknown - 1
                : static_cast<std::uint32_t>(permille);
        if (drift == kDriftUnknown || p > drift)
            drift = p;
    };
    for (auto &s : pt.clusters) {
        Lane<CfCount_> &agg = s.lanes[0];
        if (agg.winWeight >= _cfg.minClusterObs && agg.eraWeight > 0)
            note(agg.eraWeight, agg.eraObs[CfElapsed], agg.winWeight,
                 agg.winObs[CfElapsed]);
        for (auto &l : s.lanes)
            l.promote(_cfg.minClusterObs);
    }
    for (auto &s : pt.bursts) {
        Lane<BfCount_> &agg = s.lanes[0];
        if (agg.winWeight >= _cfg.minBurstLines && agg.eraWeight > 0)
            note(agg.eraWeight, agg.eraObs[BfElapsed], agg.winWeight,
                 agg.winObs[BfElapsed]);
        for (auto &l : s.lanes)
            l.promote(_cfg.minBurstLines);
    }
    _lastDrift = drift;
}

void
FastPathModel::observeCluster(const MissClusterSpec &spec,
                              std::uint32_t busyCores, Tick elapsed,
                              const PerfCounters &delta)
{
    DVFS_ASSERT(!spec.lite(), "observing a lite cluster spec");
    ClusterShape &s =
        clusterShape(spec.loadCount(), spec.overlapInstructions,
                     spec.shapeHint);
    const std::uint32_t b = std::clamp<std::uint32_t>(busyCores, 1, _cores);
    for (std::uint32_t lane : {0u, b}) {
        Lane<CfCount_> &l = s.lanes[lane];
        l.winWeight += 1;
        l.winObs[CfElapsed] += elapsed;
        l.winObs[CfCompute] += delta.computeTime;
        l.winObs[CfTrueMem] += delta.trueMemTime;
        l.winObs[CfCrit] += delta.critNonscaling;
        l.winObs[CfLeading] += delta.leadingNonscaling;
        l.winObs[CfStall] += delta.stallNonscaling;
        l.winObs[CfL1] += delta.l1Hits;
        l.winObs[CfL2] += delta.l2Hits;
        l.winObs[CfL3] += delta.l3Hits;
        l.winObs[CfDram] += delta.dramLoads;
    }
    _points[_cur].observations += 1;
    _observedClusters += 1;
}

void
FastPathModel::observeBurst(const StoreBurstSpec &spec,
                            std::uint32_t busyCores, Tick elapsed,
                            const PerfCounters &delta)
{
    if (spec.lines == 0)
        return;
    BurstShape &s = burstShape(spec.storesPerLine);
    const std::uint32_t b = std::clamp<std::uint32_t>(busyCores, 1, _cores);
    for (std::uint32_t lane : {0u, b}) {
        Lane<BfCount_> &l = s.lanes[lane];
        l.winWeight += spec.lines;
        l.winObs[BfElapsed] += elapsed;
        l.winObs[BfCompute] += delta.computeTime;
        l.winObs[BfTrueMem] += delta.trueMemTime;
        l.winObs[BfSqFull] += delta.sqFullTime;
    }
    _points[_cur].observations += spec.lines;
    _observedLines += spec.lines;
}

bool
FastPathModel::chargeCluster(const MissClusterSpec &spec,
                             std::uint32_t busyCores, Tick &elapsed,
                             PerfCounters &pc)
{
    ClusterShape *s = nullptr;
    const std::uint32_t loads = spec.loadCount();
    for (auto &cand : _points[_cur].clusters) {
        if (cand.loads == loads &&
            cand.overlapInstructions == spec.overlapInstructions &&
            cand.shapeHint == spec.shapeHint) {
            s = &cand;
            break;
        }
    }
    if (!s)
        return false;

    // Prefer the occupancy-matched lane (contention-aware); fall back
    // to the shape aggregate while the bucket is cold.
    const std::uint32_t b = std::clamp<std::uint32_t>(busyCores, 1, _cores);
    Lane<CfCount_> *lane = &s->lanes[b];
    if (lane->eraWeight < _cfg.minClusterObs)
        lane = &s->lanes[0];
    if (lane->eraWeight < _cfg.minClusterObs)
        return false;

    lane->charged += 1;
    const std::uint64_t w = lane->charged;
    elapsed = emitShare(*lane, CfElapsed, w);
    pc.busyTime += elapsed;
    pc.instructions += spec.overlapInstructions;
    pc.missClusters += 1;
    pc.computeTime += emitShare(*lane, CfCompute, w);
    pc.trueMemTime += emitShare(*lane, CfTrueMem, w);
    pc.critNonscaling += emitShare(*lane, CfCrit, w);
    pc.leadingNonscaling += emitShare(*lane, CfLeading, w);
    pc.stallNonscaling += emitShare(*lane, CfStall, w);
    pc.l1Hits += emitShare(*lane, CfL1, w);
    pc.l2Hits += emitShare(*lane, CfL2, w);
    pc.l3Hits += emitShare(*lane, CfL3, w);
    pc.dramLoads += emitShare(*lane, CfDram, w);
    return true;
}

bool
FastPathModel::chargeBurst(const StoreBurstSpec &spec,
                           std::uint32_t busyCores, Tick &elapsed,
                           PerfCounters &pc)
{
    if (spec.lines == 0) {
        elapsed = 0;
        return true;
    }
    BurstShape *s = nullptr;
    for (auto &cand : _points[_cur].bursts) {
        if (cand.storesPerLine == spec.storesPerLine) {
            s = &cand;
            break;
        }
    }
    if (!s)
        return false;

    const std::uint32_t b = std::clamp<std::uint32_t>(busyCores, 1, _cores);
    Lane<BfCount_> *lane = &s->lanes[b];
    if (lane->eraWeight < _cfg.minBurstLines)
        lane = &s->lanes[0];
    if (lane->eraWeight < _cfg.minBurstLines)
        return false;

    lane->charged += spec.lines;
    const std::uint64_t w = lane->charged;
    elapsed = emitShare(*lane, BfElapsed, w);
    const std::uint32_t spl =
        std::max<std::uint32_t>(1, spec.storesPerLine);
    pc.busyTime += elapsed;
    pc.instructions += static_cast<std::uint64_t>(spec.lines) * spl;
    pc.storeBursts += 1;
    pc.storeLines += spec.lines;
    pc.computeTime += emitShare(*lane, BfCompute, w);
    pc.trueMemTime += emitShare(*lane, BfTrueMem, w);
    pc.sqFullTime += emitShare(*lane, BfSqFull, w);
    return true;
}

} // namespace dvfs::uarch
