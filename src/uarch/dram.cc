#include "uarch/dram.hh"

#include <algorithm>

#include "fault/fault_plan.hh"
#include "sim/log.hh"
#include "sim/profile.hh"

namespace dvfs::uarch {

Dram::Dram(const DramConfig &cfg)
    : _cfg(cfg)
{
    if (_cfg.channels == 0 || _cfg.banksPerChannel == 0)
        fatal("DRAM needs at least one channel and one bank");
    if (_cfg.rowBytes == 0 || _cfg.lineBytes == 0 ||
        _cfg.rowBytes % _cfg.lineBytes != 0) {
        fatal("DRAM row size must be a positive multiple of the line size");
    }

    _tCas = nsToTicks(_cfg.tCasNs);
    _tRcd = nsToTicks(_cfg.tRcdNs);
    _tRp = nsToTicks(_cfg.tRpNs);
    _tBurst = nsToTicks(_cfg.tBurstNs);
    _tCtrl = nsToTicks(_cfg.tCtrlNs);
    _tWr = nsToTicks(_cfg.tWrNs);

    auto pow2 = [](std::uint64_t v) { return (v & (v - 1)) == 0; };
    auto log2u = [](std::uint64_t v) {
        std::uint32_t s = 0;
        while (v > 1) { v >>= 1; ++s; }
        return s;
    };
    const std::uint64_t lines_per_row = _cfg.rowBytes / _cfg.lineBytes;
    _pow2Decode = pow2(_cfg.lineBytes) && pow2(_cfg.channels) &&
                  pow2(_cfg.banksPerChannel) && pow2(lines_per_row);
    if (_pow2Decode) {
        _lineShift = log2u(_cfg.lineBytes);
        _chanShift = log2u(_cfg.channels);
        _bankShift = log2u(_cfg.banksPerChannel);
        _rowShift = log2u(lines_per_row);
        _chanMask = _cfg.channels - 1;
        _bankMask = _cfg.banksPerChannel - 1;
    }

    reset();
}

void
Dram::reset()
{
    _channels.assign(_cfg.channels, Channel{});
    for (auto &ch : _channels) {
        ch.banks.assign(_cfg.banksPerChannel, Bank{});
        ch.readBusFreeAt = 0;
        ch.writeBusFreeAt = 0;
        ch.inflightReads.assign(_cfg.channelQueueDepth, 0);
        ch.inflightWrites.assign(_cfg.channelQueueDepth, 0);
        ch.readHead = 0;
        ch.writeHead = 0;
    }
    _reads.reset();
    _writes.reset();
    _rowHits.reset();
    _rowMisses.reset();
    _readLatencySum = 0;
    _writeLatencySum = 0;
}

void
Dram::decode(std::uint64_t addr, std::uint32_t &channel,
             std::uint32_t &bank, std::uint64_t &row) const
{
    // Interleave channels then banks at line granularity so that
    // streaming accesses spread across the machine, as real
    // controllers do.
    if (_pow2Decode) {
        std::uint64_t line = addr >> _lineShift;
        channel = static_cast<std::uint32_t>(line & _chanMask);
        std::uint64_t in_channel = line >> _chanShift;
        bank = static_cast<std::uint32_t>(in_channel & _bankMask);
        row = (in_channel >> _bankShift) >> _rowShift;
        return;
    }
    std::uint64_t line = addr / _cfg.lineBytes;
    channel = static_cast<std::uint32_t>(line % _cfg.channels);
    std::uint64_t in_channel = line / _cfg.channels;
    bank = static_cast<std::uint32_t>(in_channel % _cfg.banksPerChannel);
    std::uint64_t in_bank = in_channel / _cfg.banksPerChannel;
    row = in_bank / (_cfg.rowBytes / _cfg.lineBytes);
}

Tick
Dram::access(std::uint64_t addr, Tick issue, bool is_write)
{
    DVFS_PROFILE_SCOPE(Dram);
    std::uint32_t ci, bi;
    std::uint64_t row;
    decode(addr, ci, bi, row);
    Channel &ch = _channels[ci];
    Bank &bank = ch.banks[bi];

    // The controller tracks channelQueueDepth outstanding requests per
    // direction; a new one must wait for the oldest to finish. The
    // oldest completion is the ring-buffer head (completions per
    // direction never decrease).
    auto &inflight = is_write ? ch.inflightWrites : ch.inflightReads;
    std::uint32_t &head = is_write ? ch.writeHead : ch.readHead;
    Tick &oldest = inflight[head];
    Tick t = issue + _tCtrl;
    if (oldest > t)
        t = oldest;

    // Injected maintenance blackout: the bank is unavailable for a
    // while, on top of whatever it was already doing.
    if (_faultPlan) {
        Tick stall = _faultPlan->dramBankStall(issue);
        if (stall > 0)
            bank.freeAt = std::max(bank.freeAt, t) + stall;
    }

    // Wait for the bank.
    t = std::max(t, bank.freeAt);

    // Row-buffer management. Reads see the open-page policy in full.
    // Writes are buffered and drained in row-batched order by the
    // FR-FCFS controller, so their activate/precharge cost is
    // amortized across each drained batch: they pay a flat CAS-level
    // service. (Victim writebacks have scattered addresses; without
    // batching they would thrash every row buffer, which no real
    // write-drain policy allows.)
    Tick ready;
    if (is_write) {
        ready = t + _tCas;
    } else if (bank.openRow == row) {
        _rowHits.inc();
        ready = t + _tCas;
    } else if (bank.openRow == ~0ULL) {
        _rowMisses.inc();
        ready = t + _tRcd + _tCas;
    } else {
        _rowMisses.inc();
        ready = t + _tRp + _tRcd + _tCas;
    }
    if (!is_write)
        bank.openRow = row;

    // Injected latency spike on the read path (ECC retry, refresh
    // collision): delays the critical word and holds the bank through
    // the retry.
    if (_faultPlan && !is_write)
        ready += _faultPlan->dramReadSpike(issue);

    // Data transfer occupies the per-direction bandwidth budget
    // (read-priority controller: buffered writes drain in gaps).
    Tick &bus = is_write ? ch.writeBusFreeAt : ch.readBusFreeAt;
    Tick xfer_start = std::max(ready, bus);
    Tick done = xfer_start + _tBurst;
    bus = done;

    // The bank is occupied for its own service (activate + CAS +
    // transfer + write recovery), independent of how long the data
    // waited for the shared bus — charging bus queueing into bank
    // occupancy would compound delays for bursty streams.
    bank.freeAt = ready + _tBurst + (is_write ? _tWr : 0);

    // Record completion for queue modelling: overwrite the slot we
    // just waited on and advance the ring head.
    oldest = done;
    if (++head == inflight.size())
        head = 0;

    if (is_write) {
        _writes.inc();
        _writeLatencySum += done - issue;
    } else {
        _reads.inc();
        _readLatencySum += done - issue;
    }
    return done;
}

Tick
Dram::read(std::uint64_t addr, Tick issue)
{
    return access(addr, issue, false);
}

Tick
Dram::write(std::uint64_t addr, Tick issue)
{
    return access(addr, issue, true);
}

double
Dram::meanReadLatencyNs() const
{
    return _reads.value()
               ? ticksToNs(_readLatencySum) / static_cast<double>(_reads.value())
               : 0.0;
}

double
Dram::meanWriteLatencyNs() const
{
    return _writes.value()
               ? ticksToNs(_writeLatencySum) /
                     static_cast<double>(_writes.value())
               : 0.0;
}

Tick
Dram::unloadedReadLatency() const
{
    return _tCtrl + _tRcd + _tCas + _tBurst;
}

} // namespace dvfs::uarch
