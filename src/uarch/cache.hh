/**
 * @file
 * Set-associative cache hierarchy: private L1D/L2 per core, shared L3.
 *
 * The hierarchy classifies every data access issued by the core model
 * and composes latencies from three regimes:
 *
 *  - L1 hits are folded into the core's base IPC (zero extra cost),
 *  - L2 hits cost cycles in the *core* clock domain (they scale with
 *    the DVFS frequency),
 *  - L3 hits cost cycles in the fixed 1.5 GHz *uncore* domain
 *    (Table II), i.e. wall-clock-constant time, and
 *  - misses go to the DRAM model.
 *
 * This split matters: CRIT-style predictors only treat DRAM time as
 * non-scaling, so the fixed-clock L3 component is a built-in source of
 * honest prediction error, as on real hardware.
 *
 * The model tracks tags and dirtiness only (no data), with true LRU
 * replacement. There is no coherence protocol: the workloads
 * communicate through synchronization costs modelled separately (see
 * CoreModel::atomicRmw), and no data values flow through the caches.
 */

#ifndef DVFS_UARCH_CACHE_HH
#define DVFS_UARCH_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/time.hh"
#include "uarch/dram.hh"
#include "uarch/freq_domain.hh"

namespace dvfs::uarch {

/** Where in the hierarchy an access was satisfied. */
enum class HitLevel {
    L1,    ///< private L1 data cache
    L2,    ///< private unified L2
    L3,    ///< shared last-level cache (uncore clock)
    Dram,  ///< memory
};

/** Printable name of a hit level. */
const char *hitLevelName(HitLevel level);

/** Geometry and timing of one cache level. */
struct CacheConfig {
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t lineBytes = 64;
    std::uint32_t latencyCycles = 2;  ///< access latency, in its domain
};

/**
 * One physical cache: a tag array with true-LRU replacement.
 */
class Cache
{
  public:
    /** Result of a lookup-with-allocate. */
    struct Result {
        bool hit = false;
        /** Address of an evicted dirty line, if any. */
        std::optional<std::uint64_t> writeback;
    };

    Cache(std::string name, const CacheConfig &cfg);

    /**
     * Probe for @p addr; on miss, allocate the line (evicting LRU).
     *
     * Defined inline below the class: the hierarchy calls this for
     * every load and store on the simulator's hottest path, and
     * inlining it into CacheHierarchy::load/storeLine is a measurable
     * win.
     *
     * @param addr  Byte address.
     * @param dirty Mark the (new or existing) line dirty.
     */
    Result access(std::uint64_t addr, bool dirty);

    /** Probe without modifying any state. */
    bool probe(std::uint64_t addr) const;

    /** Drop all lines (between runs). */
    void reset();

    const CacheConfig &config() const { return _cfg; }
    const std::string &name() const { return _name; }

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    std::uint64_t writebacks() const { return _writebacks.value(); }

  private:
    struct Way {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;  ///< last-touch stamp; larger = newer
        bool valid = false;
        bool dirty = false;
    };

    std::uint32_t setIndex(std::uint64_t addr) const
    {
        return static_cast<std::uint32_t>((addr >> _lineShift) &
                                          (_numSets - 1));
    }

    std::uint64_t tagOf(std::uint64_t addr) const
    {
        return (addr >> _lineShift) >> _setBits;
    }

    std::uint64_t lineAddr(std::uint64_t tag, std::uint32_t set) const
    {
        return ((tag << _setBits) | set) << _lineShift;
    }

    std::string _name;
    CacheConfig _cfg;
    std::uint32_t _numSets;
    std::uint32_t _lineShift;  ///< log2(lineBytes)
    std::uint32_t _setBits;    ///< log2(_numSets)
    std::vector<Way> _ways;  ///< _numSets * assoc, set-major
    /**
     * Most-recently-touched way per set. Lookups probe it before
     * scanning the set: locality makes repeat hits to the same line
     * the common case on the simulator's hot path, and the probe is
     * one compare. Purely an access-path shortcut — hit/miss results,
     * LRU state and stats are identical with or without it.
     */
    std::vector<std::uint32_t> _mru;
    std::uint64_t _stamp;

    sim::Counter _hits, _misses, _writebacks;
};

inline Cache::Result
Cache::access(std::uint64_t addr, bool dirty)
{
    const std::uint32_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Way *base = &_ways[static_cast<std::size_t>(set) * _cfg.assoc];

    ++_stamp;

    // Fast path: the set's most-recently-touched way.
    {
        Way &mway = base[_mru[set]];
        if (mway.valid && mway.tag == tag) {
            mway.lru = _stamp;
            mway.dirty = mway.dirty || dirty;
            _hits.inc();
            return Result{true, std::nullopt};
        }
    }

    // Hit scan first, victim selection only on a miss: hits (the
    // common case) pay one tag compare per way and nothing else, and
    // the miss-path second pass re-reads set-local data already in
    // the host L1. Selection is identical to the classic fused loop:
    // the first invalid way wins, else the lowest-lru way (first
    // among equals).
    for (std::uint32_t w = 0; w < _cfg.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lru = _stamp;
            way.dirty = way.dirty || dirty;
            _mru[set] = w;
            _hits.inc();
            return Result{true, std::nullopt};
        }
    }

    Way *victim = base;
    for (std::uint32_t w = 1; w < _cfg.assoc; ++w) {
        if (!victim->valid)
            break;
        Way &way = base[w];
        if (!way.valid || way.lru < victim->lru)
            victim = &way;
    }

    _misses.inc();
    Result res{false, std::nullopt};
    if (victim->valid && victim->dirty) {
        res.writeback = lineAddr(victim->tag, set);
        _writebacks.inc();
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = _stamp;
    victim->dirty = dirty;
    _mru[set] = static_cast<std::uint32_t>(victim - base);
    return res;
}

/** Configuration of the full hierarchy. */
struct HierarchyConfig {
    CacheConfig l1d{32 * 1024, 4, 64, 2};
    CacheConfig l2{256 * 1024, 8, 64, 11};
    CacheConfig l3{4 * 1024 * 1024, 16, 64, 40};

    /**
     * Per-core sustained service time for draining one store-missed
     * line (miss handling through the core's limited line-fill
     * buffers). Wall-clock: the drain path is paced by the memory
     * side, not the core clock — the physical origin of the paper's
     * non-scaling store bursts.
     */
    double writeDrainNs = 11.0;
};

/**
 * The multi-level hierarchy shared by all cores.
 *
 * Owns per-core L1D and L2 instances plus the shared L3, and routes
 * misses and dirty writebacks to the DRAM model.
 */
class CacheHierarchy
{
  public:
    /** Outcome of a load walked through the hierarchy. */
    struct LoadOutcome {
        HitLevel level;    ///< where the load was satisfied
        Tick completion;   ///< tick the data reaches the core
        Tick memLatency;   ///< completion - issue
    };

    /**
     * @param cores  Number of cores (private cache instances).
     * @param cfg    Geometry/timing for the three levels.
     * @param dram   Backing memory model.
     * @param uncore Fixed-frequency domain clocking the L3.
     */
    CacheHierarchy(std::uint32_t cores, const HierarchyConfig &cfg,
                   Dram &dram, const FreqDomain &uncore);

    /**
     * Walk a load through the hierarchy.
     *
     * @param core      Issuing core.
     * @param addr      Byte address.
     * @param issue     Tick the access leaves the core.
     * @param core_freq Core frequency (for the scaling L2 latency).
     */
    LoadOutcome load(std::uint32_t core, std::uint64_t addr, Tick issue,
                     Frequency core_freq);

    /**
     * Perform a line-filling store from a store burst.
     *
     * If the line is on chip it drains at cache speed. On a miss the
     * line is handled by the core's write port (a line-fill-buffer
     * pipeline with fixed wall-clock service), and a dirty L3 victim
     * consumes DRAM write bandwidth — so sustained bursts drain at
     * memory speed at every DVFS setting, the mechanism behind the
     * paper's store-queue backpressure (Section III-D).
     *
     * @return Tick at which the store structurally completes and its
     *         SQ entries can be released.
     */
    Tick storeLine(std::uint32_t core, std::uint64_t addr, Tick issue);

    /** Reset all cache state (between runs). */
    void reset();

    /** L2-hit latency in ticks at the given core frequency. */
    Tick l2HitTicks(Frequency core_freq) const;

    /** L3-hit latency in ticks (fixed uncore clock). */
    Tick l3HitTicks() const;

    const HierarchyConfig &config() const { return _cfg; }
    Cache &l1d(std::uint32_t core) { return _l1d[core]; }
    Cache &l2(std::uint32_t core) { return _l2[core]; }
    Cache &l3() { return _l3; }
    Dram &dram() { return _dram; }

  private:
    HierarchyConfig _cfg;
    Dram &_dram;
    const FreqDomain &_uncore;
    std::vector<Cache> _l1d;
    std::vector<Cache> _l2;
    Cache _l3;
    /** Per-core write-port horizon (line-fill buffer pipeline). */
    std::vector<Tick> _writePortFreeAt;
    /** nsToTicks(_cfg.writeDrainNs), hoisted off the store path. */
    Tick _writeDrainTicks = 0;
};

} // namespace dvfs::uarch

#endif // DVFS_UARCH_CACHE_HH
