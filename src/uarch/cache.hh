/**
 * @file
 * Set-associative cache hierarchy: private L1D/L2 per core, shared L3.
 *
 * The hierarchy classifies every data access issued by the core model
 * and composes latencies from three regimes:
 *
 *  - L1 hits are folded into the core's base IPC (zero extra cost),
 *  - L2 hits cost cycles in the *core* clock domain (they scale with
 *    the DVFS frequency),
 *  - L3 hits cost cycles in the fixed 1.5 GHz *uncore* domain
 *    (Table II), i.e. wall-clock-constant time, and
 *  - misses go to the DRAM model.
 *
 * This split matters: CRIT-style predictors only treat DRAM time as
 * non-scaling, so the fixed-clock L3 component is a built-in source of
 * honest prediction error, as on real hardware.
 *
 * The model tracks tags and dirtiness only (no data), with true LRU
 * replacement. There is no coherence protocol: the workloads
 * communicate through synchronization costs modelled separately (see
 * CoreModel::atomicRmw), and no data values flow through the caches.
 */

#ifndef DVFS_UARCH_CACHE_HH
#define DVFS_UARCH_CACHE_HH

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/time.hh"
#include "uarch/dram.hh"
#include "uarch/freq_domain.hh"

namespace dvfs::uarch {

/** Where in the hierarchy an access was satisfied. */
enum class HitLevel {
    L1,    ///< private L1 data cache
    L2,    ///< private unified L2
    L3,    ///< shared last-level cache (uncore clock)
    Dram,  ///< memory
};

/** Printable name of a hit level. */
const char *hitLevelName(HitLevel level);

/** Geometry and timing of one cache level. */
struct CacheConfig {
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t lineBytes = 64;
    std::uint32_t latencyCycles = 2;  ///< access latency, in its domain
};

/**
 * One physical cache: a tag array with true-LRU replacement.
 */
class Cache
{
  public:
    /** Result of a lookup-with-allocate. */
    struct Result {
        bool hit = false;
        /** Address of an evicted dirty line, if any. */
        std::optional<std::uint64_t> writeback;
        /**
         * Address of an evicted *clean* line, if any. Exact-mode
         * walks ignore it; the hierarchy's warm overlay consults it
         * to restore the writeback a fast-forwarded burst's dirty
         * install would have produced.
         */
        std::optional<std::uint64_t> evictedClean;
    };

    Cache(std::string name, const CacheConfig &cfg);

    /**
     * Probe for @p addr; on miss, allocate the line (evicting LRU).
     *
     * Defined inline below the class: the hierarchy calls this for
     * every load and store on the simulator's hottest path, and
     * inlining it into CacheHierarchy::load/storeLine is a measurable
     * win.
     *
     * @param addr  Byte address.
     * @param dirty Mark the (new or existing) line dirty.
     */
    Result access(std::uint64_t addr, bool dirty);

    /** Probe without modifying any state. */
    bool probe(std::uint64_t addr) const;

    /** Drop all lines (between runs). */
    void reset();

    const CacheConfig &config() const { return _cfg; }
    const std::string &name() const { return _name; }

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    std::uint64_t writebacks() const { return _writebacks.value(); }

  private:
    /// @name Packed way metadata
    /// A way's {tag, valid, dirty} live in one 32-bit word: tag << 2
    /// | dirty << 1 | valid. A hit test is then a single compare per
    /// way against the wanted word with the dirty bit forced on, and
    /// the tag array for a whole set is dense — an L3 set's 16 tags
    /// span one host cache line instead of six with the old
    /// {tag, lru, valid, dirty} struct. Simulated addresses are
    /// region-based (src/wl/params.hh, heaps at 0x1-0x2'0000'0000 and
    /// regions up to 0x5'0000'0000 + 256 MB, so < 2^35) and the
    /// smallest index width leaves tags under 23 bits; access()
    /// guards the 30-bit packing limit.
    /// @{
    static constexpr std::uint32_t kWayValid = 1;
    static constexpr std::uint32_t kWayDirty = 2;
    static constexpr unsigned kWayTagShift = 2;
    /// @}

    /**
     * Move way @p w to the most-recent position of a set's recency
     * word. The word is a base-16 permutation: nibble 0 holds the
     * most recently touched way index, nibble assoc-1 the least
     * recent. The double shifts keep the p == 15 case (shift by 60+4)
     * well-defined without a branch.
     */
    static void
    touchWay(std::uint64_t &ord, std::uint32_t w)
    {
        unsigned p = 0;
        while (((ord >> (4 * p)) & 0xF) != w)
            ++p;
        if (p) {
            const unsigned sh = 4 * p;
            const std::uint64_t low = ord & ((std::uint64_t{1} << sh) - 1);
            const std::uint64_t high = (ord >> sh >> 4) << sh << 4;
            ord = high | (low << 4) | w;
        }
    }

    /** Identity recency word: nibble i = i for i < assoc. */
    static std::uint64_t
    identityOrder(std::uint32_t assoc)
    {
        std::uint64_t ord = 0;
        for (std::uint32_t i = 0; i < assoc; ++i)
            ord |= static_cast<std::uint64_t>(i) << (4 * i);
        return ord;
    }

    /** access() body, specialized on a compile-time associativity
     *  (0 = runtime _cfg.assoc). */
    template <std::uint32_t A>
    Result accessWays(std::uint64_t addr, bool dirty);

    std::uint32_t setIndex(std::uint64_t addr) const
    {
        return static_cast<std::uint32_t>((addr >> _lineShift) &
                                          (_numSets - 1));
    }

    std::uint64_t tagOf(std::uint64_t addr) const
    {
        return (addr >> _lineShift) >> _setBits;
    }

    std::uint64_t lineAddr(std::uint64_t tag, std::uint32_t set) const
    {
        return ((tag << _setBits) | set) << _lineShift;
    }

    std::string _name;
    CacheConfig _cfg;
    std::uint32_t _numSets;
    std::uint32_t _lineShift;  ///< log2(lineBytes)
    std::uint32_t _setBits;    ///< log2(_numSets)
    std::vector<std::uint32_t> _meta;  ///< _numSets * assoc, set-major
    /**
     * Per-set true-LRU recency as a nibble permutation (touchWay).
     * Replaces per-way last-touch stamps: victim selection reads one
     * nibble instead of scanning an assoc-sized stamp array, hits
     * update one word, and the MRU fast path (which by definition
     * touches the way already at nibble 0) updates nothing at all.
     * Selection is bit-identical to stamp LRU: both implement exact
     * least-recently-touched with the first invalid way preferred.
     */
    std::vector<std::uint64_t> _order;
    /**
     * Most-recently-touched way per set. Lookups probe it before
     * scanning the set: locality makes repeat hits to the same line
     * the common case on the simulator's hot path, and the probe is
     * one compare. Purely an access-path shortcut — hit/miss results,
     * LRU state and stats are identical with or without it.
     */
    std::vector<std::uint32_t> _mru;

    sim::Counter _hits, _misses, _writebacks;
};

template <std::uint32_t A>
inline Cache::Result
Cache::accessWays(std::uint64_t addr, bool dirty)
{
    // A is the compile-time associativity (0 = use the runtime
    // config): the scans below get constant trip counts for the
    // standard 4/8/16-way geometries, which lets the compiler unroll
    // and vectorize them.
    const std::uint32_t assoc = A ? A : _cfg.assoc;
    const std::uint32_t set = setIndex(addr);
    const std::uint64_t tag64 = tagOf(addr);
    DVFS_ASSERT(tag64 >> (32 - kWayTagShift) == 0,
                "address tag overflows the packed way word");
    const std::uint32_t tag = static_cast<std::uint32_t>(tag64);
    std::uint32_t *meta =
        _meta.data() + static_cast<std::size_t>(set) * assoc;
    // A hit is (valid && tag match) regardless of dirtiness; forcing
    // the dirty bit on in both operands makes that one compare.
    const std::uint32_t want = (tag << kWayTagShift) | kWayDirty | kWayValid;
    const std::uint32_t mark = dirty ? kWayDirty : 0;

    // Fast path: the set's most-recently-touched way. It already
    // holds recency nibble 0, so the order word needs no update.
    {
        const std::uint32_t m = _mru[set];
        if ((meta[m] | kWayDirty) == want) {
            meta[m] |= mark;
            _hits.inc();
            return Result{true, std::nullopt, std::nullopt};
        }
    }

    // Hit scan first, victim selection only on a miss: hits (the
    // common case) pay one word compare per way and nothing else, and
    // the miss-path second pass re-reads set-local data already in
    // the host L1. The scan is branchless — at most one way can hold
    // a tag, so reducing the compares into a bitmask and taking the
    // lowest set bit finds the same way an early-exit loop would.
    std::uint32_t hit_mask = 0;
    for (std::uint32_t w = 0; w < assoc; ++w)
        hit_mask |=
            static_cast<std::uint32_t>((meta[w] | kWayDirty) == want) << w;
    if (hit_mask) {
        const std::uint32_t w =
            static_cast<std::uint32_t>(std::countr_zero(hit_mask));
        meta[w] |= mark;
        touchWay(_order[set], w);
        _mru[set] = w;
        _hits.inc();
        return Result{true, std::nullopt, std::nullopt};
    }

    // Selection is identical to the classic stamp-per-way loop: the
    // first invalid way wins, else the least recently touched way.
    std::uint32_t invalid_mask = 0;
    for (std::uint32_t w = 0; w < assoc; ++w)
        invalid_mask |=
            static_cast<std::uint32_t>((meta[w] & kWayValid) == 0) << w;
    std::uint32_t victim =
        invalid_mask
            ? static_cast<std::uint32_t>(std::countr_zero(invalid_mask))
            : assoc;
    if (victim == assoc) {
        // No invalid way: evict the tail nibble of the recency word.
        // Moving it to the front is then a plain rotate — no
        // position-finding loop on the (hot) full-set miss path.
        const std::uint64_t ord = _order[set];
        victim = static_cast<std::uint32_t>(
            (ord >> (4 * (assoc - 1))) & 0xF);
        _order[set] =
            ((ord & ((std::uint64_t{1} << (4 * (assoc - 1))) - 1)) << 4) |
            victim;
        _mru[set] = victim;
        _misses.inc();
        Result res{false, std::nullopt, std::nullopt};
        const std::uint32_t vm = meta[victim];
        if ((vm & kWayValid) != 0) {
            const std::uint64_t va = lineAddr(
                static_cast<std::uint64_t>(vm >> kWayTagShift), set);
            if ((vm & kWayDirty) != 0) {
                res.writeback = va;
                _writebacks.inc();
            } else {
                res.evictedClean = va;
            }
        }
        meta[victim] = (tag << kWayTagShift) | kWayValid | mark;
        return res;
    }

    // Cold fill into the first invalid way: never a writeback.
    _misses.inc();
    meta[victim] = (tag << kWayTagShift) | kWayValid | mark;
    touchWay(_order[set], victim);
    _mru[set] = victim;
    return Result{false, std::nullopt, std::nullopt};
}

inline Cache::Result
Cache::access(std::uint64_t addr, bool dirty)
{
    switch (_cfg.assoc) {
      case 4: return accessWays<4>(addr, dirty);
      case 8: return accessWays<8>(addr, dirty);
      case 16: return accessWays<16>(addr, dirty);
      default: return accessWays<0>(addr, dirty);
    }
}

/** Configuration of the full hierarchy. */
struct HierarchyConfig {
    CacheConfig l1d{32 * 1024, 4, 64, 2};
    CacheConfig l2{256 * 1024, 8, 64, 11};
    CacheConfig l3{4 * 1024 * 1024, 16, 64, 40};

    /**
     * Per-core sustained service time for draining one store-missed
     * line (miss handling through the core's limited line-fill
     * buffers). Wall-clock: the drain path is paced by the memory
     * side, not the core clock — the physical origin of the paper's
     * non-scaling store bursts.
     */
    double writeDrainNs = 11.0;
};

/**
 * The multi-level hierarchy shared by all cores.
 *
 * Owns per-core L1D and L2 instances plus the shared L3, and routes
 * misses and dirty writebacks to the DRAM model.
 */
class CacheHierarchy
{
  public:
    /** Outcome of a load walked through the hierarchy. */
    struct LoadOutcome {
        HitLevel level;    ///< where the load was satisfied
        Tick completion;   ///< tick the data reaches the core
        Tick memLatency;   ///< completion - issue
    };

    /**
     * @param cores  Number of cores (private cache instances).
     * @param cfg    Geometry/timing for the three levels.
     * @param dram   Backing memory model.
     * @param uncore Fixed-frequency domain clocking the L3.
     */
    CacheHierarchy(std::uint32_t cores, const HierarchyConfig &cfg,
                   Dram &dram, const FreqDomain &uncore);

    /**
     * Walk a load through the hierarchy.
     *
     * @param core      Issuing core.
     * @param addr      Byte address.
     * @param issue     Tick the access leaves the core.
     * @param core_freq Core frequency (for the scaling L2 latency).
     */
    LoadOutcome load(std::uint32_t core, std::uint64_t addr, Tick issue,
                     Frequency core_freq);

    /**
     * Perform a line-filling store from a store burst.
     *
     * If the line is on chip it drains at cache speed. On a miss the
     * line is handled by the core's write port (a line-fill-buffer
     * pipeline with fixed wall-clock service), and a dirty L3 victim
     * consumes DRAM write bandwidth — so sustained bursts drain at
     * memory speed at every DVFS setting, the mechanism behind the
     * paper's store-queue backpressure (Section III-D).
     *
     * @return Tick at which the store structurally completes and its
     *         SQ entries can be released.
     */
    Tick storeLine(std::uint32_t core, std::uint64_t addr, Tick issue);

    /// @name Warm-range overlay (sampled runs only)
    ///
    /// Fast-forwarded store bursts are charged analytically, so their
    /// lines never walk the tag arrays — yet their residency is
    /// load-bearing: GC trace speed depends on freshly zeroed nursery
    /// lines hitting on chip. The overlay records burst footprints as
    /// coalesced address ranges (O(1) per burst instead of O(lines)
    /// tag walks) and answers "would this line be L3-resident had the
    /// burst executed in detail?" for loads and stores that miss the
    /// real tags. A range stays warm until roughly one L3 capacity of
    /// younger lines has been written past it (streaming LRU decay).
    ///
    /// Exact runs never enable the overlay, so their tag state,
    /// timing and fingerprints are bit-identical with this machinery
    /// compiled in.
    /// @{

    /** Arm the overlay (called once, before the run, by sampling). */
    void enableWarmOverlay();

    /** Record @p lines freshly written lines starting at @p baseAddr. */
    void warmLines(std::uint64_t baseAddr, std::uint32_t lines);

    /** Misses answered warm by the overlay so far (diagnostics). */
    std::uint64_t warmHits() const { return _warmHitCount; }
    /// @}

    /** Reset all cache state (between runs). */
    void reset();

    /** L2-hit latency in ticks at the given core frequency. */
    Tick l2HitTicks(Frequency core_freq) const;

    /** L3-hit latency in ticks (fixed uncore clock). */
    Tick l3HitTicks() const;

    const HierarchyConfig &config() const { return _cfg; }
    Cache &l1d(std::uint32_t core) { return _l1d[core]; }
    Cache &l2(std::uint32_t core) { return _l2[core]; }
    Cache &l3() { return _l3; }
    Dram &dram() { return _dram; }

  private:
    /**
     * One coalesced run of warm lines. [first, last) in line units;
     * stamp is the overlay write clock when the range was last
     * extended — the range decays once _warmWritten outruns it by an
     * L3 capacity.
     */
    struct WarmRange {
        std::uint64_t first = 0;
        std::uint64_t last = 0;
        std::uint64_t stamp = 0;
    };

    /** True when @p addr falls in a still-warm overlay range. */
    bool warmHit(std::uint64_t addr);

    /**
     * Dirty-victim debt accumulator. In exact mode the L3 is largely
     * populated by the gap's (dirty) burst lines, so a detail-window
     * install usually evicts a dirty line and costs a DRAM write. The
     * sampled tags never held those lines, so installs find clean or
     * invalid ways and the write pressure vanishes — which quiets the
     * banks and makes window loads read as less memory-bound than the
     * exact run. Each install that produced no real writeback calls
     * this; it returns true at a deterministic rate equal to the
     * overlay's live coverage over L3 capacity (the probability the
     * displaced line would have been a warm dirty one), and the
     * caller issues the victim writeback exact mode would have paid.
     */
    bool warmVictimDue();

    HierarchyConfig _cfg;
    Dram &_dram;
    const FreqDomain &_uncore;
    std::vector<Cache> _l1d;
    std::vector<Cache> _l2;
    Cache _l3;
    /** Per-core write-port horizon (line-fill buffer pipeline). */
    std::vector<Tick> _writePortFreeAt;
    /** nsToTicks(_cfg.writeDrainNs), hoisted off the store path. */
    Tick _writeDrainTicks = 0;
    /**
     * Memoized hit latencies: cyclesToTicks is a double divide +
     * llround, paid per walked load before these caches. Frequencies
     * change only at DVFS decisions (and the uncore never does), so
     * one compare almost always short-circuits the math. Same values,
     * just cached — bit-exact.
     */
    mutable Frequency _l2TickFreq{};
    mutable Tick _l2TickCache = 0;
    mutable Frequency _l3TickFreq{};
    mutable Tick _l3TickCache = 0;

    /// @name Warm-range overlay state
    /// @{
    bool _warmEnabled = false;
    std::uint32_t _warmLineShift = 6;   ///< log2(L3 line bytes)
    std::uint64_t _warmCapLines = 0;    ///< L3 capacity, in lines
    std::uint64_t _warmL3Lines = 0;     ///< total L3 lines (debt scale)
    std::uint64_t _warmWritten = 0;     ///< overlay write clock (lines)
    std::uint64_t _warmDebt = 0;        ///< dirty-victim accumulator
    std::uint64_t _warmHitCount = 0;
    std::vector<WarmRange> _warmRanges; ///< stamp-ordered, newest last
    /// @}
};

} // namespace dvfs::uarch

#endif // DVFS_UARCH_CACHE_HH
