/**
 * @file
 * Online-fitted analytical timing model for fast-forwarded execution.
 *
 * During detail windows the model *observes* every miss cluster and
 * store burst the cycle-accurate core executes: elapsed time plus the
 * per-action counter deltas, keyed by the action's logical shape and
 * by the number of busy cores at issue (the thread-count-aware term —
 * more active cores means more shared-cache and DRAM contention, and
 * the paper's synchronization epochs change the active count all the
 * time). During fast-forward gaps the model *charges* actions of the
 * same shape from the fitted means.
 *
 * Fitting is *era-based*: observations accumulate in a window; age()
 * — called at each flip into fast-forward — promotes a window that
 * met the observation threshold to the frozen era that charging draws
 * from, and starts a new window. Each gap is therefore charged at the
 * rates of the freshest detail window, so transient program phases
 * (cold caches at startup, GC pressure, lock convoys) do not bleed
 * into the whole run's means. A window too thin to qualify keeps
 * accumulating across detail windows until it does, so rare shapes
 * warm up instead of flapping.
 *
 * All fitted state is additionally keyed by the *operating point* (the
 * core frequency the observations were taken at): tick means fitted at
 * one frequency are wrong at another, so an energy-manager DVFS
 * transition switches the model to the new point's era set via
 * setOperatingPoint(). A point visited for the first time is
 * warm-started by *forking* the previous point's charging eras with
 * the scaling/non-scaling split the paper's model rests on: the
 * computeTime share rescales by f_old/f_new (integer math), the memory
 * and synchronization shares carry over unchanged, and the forked eras
 * serve charges until the forced detail window around the transition
 * refits the point from real execution. Fixed-frequency runs only ever
 * touch one point, so their behaviour (and golden fingerprints) are
 * untouched by the keying.
 *
 * Charging is integer-only and drift-free: for every fitted quantity
 * the model emits cumulative shares
 *
 *     emit_k = floor(chargedWeight_k * eraSum / eraWeight)
 *              - emittedSoFar
 *
 * so after charging N actions the synthesized totals equal the era
 * mean scaled by N to within one unit — no floating-point
 * accumulation, no rounding drift, bit-identical at any worker count.
 *
 * The decomposition mirrors the paper's epoch model: per shape the
 * observed elapsed time is split into its scaling (computeTime) and
 * non-scaling (trueMemTime, CRIT / Leading-Loads / stall estimates,
 * SQ-full time) components, so the fast-forwarded counters feed the
 * predictors exactly like detailed ones.
 */

#ifndef DVFS_UARCH_FASTPATH_HH
#define DVFS_UARCH_FASTPATH_HH

#include <cstdint>
#include <vector>

#include "sim/time.hh"
#include "uarch/perf_counters.hh"
#include "uarch/work.hh"

namespace dvfs::uarch {

/** Fitting thresholds of the fast-path model. */
struct FastPathConfig {
    /** Cluster observations a lane needs before it may charge. */
    std::uint32_t minClusterObs = 8;
    /** Store-burst *lines* a lane needs before it may charge. */
    std::uint32_t minBurstLines = 64;
};

/**
 * The model. One instance per System; all state is per-run.
 */
class FastPathModel
{
  public:
    FastPathModel(std::uint32_t cores, const FastPathConfig &cfg = {});

    /// @name Operating points (DVFS-aware charging)
    /// @{

    /**
     * Switch the model to the era set of the operating point @p mhz
     * (the chip's new core frequency). A revisited point resumes its
     * own fitted eras; a new point is warm-started by forking the
     * previous point's eras with the compute share rescaled by
     * f_old/f_new. Call at every DVFS transition (and once before the
     * run to label the initial point).
     */
    void setOperatingPoint(std::uint32_t mhz);

    /** Operating point currently charged/observed, in MHz. */
    std::uint32_t operatingPoint() const { return _points[_cur].mhz; }

    /** Number of operating points the model has era sets for. */
    std::size_t operatingPoints() const { return _points.size(); }
    /// @}

    /// @name Observation (detail windows)
    /// @{
    void observeCluster(const MissClusterSpec &spec,
                        std::uint32_t busyCores, Tick elapsed,
                        const PerfCounters &delta);
    void observeBurst(const StoreBurstSpec &spec, std::uint32_t busyCores,
                      Tick elapsed, const PerfCounters &delta);

    /**
     * Promote qualifying observation windows to the charging era and
     * open fresh windows. Call at each detail -> fast-forward flip.
     */
    void age();
    /// @}

    /// @name Charging (fast-forward gaps)
    /// @{

    /**
     * Charge one miss cluster analytically. On success, @p elapsed is
     * the synthesized duration and @p pc accumulates the synthesized
     * counters (all fields the detailed path would touch).
     *
     * @return false if the model is too cold for this shape (the
     *         caller falls back to detailed execution).
     */
    bool chargeCluster(const MissClusterSpec &spec,
                       std::uint32_t busyCores, Tick &elapsed,
                       PerfCounters &pc);

    /** Charge one store burst analytically; see chargeCluster. */
    bool chargeBurst(const StoreBurstSpec &spec, std::uint32_t busyCores,
                     Tick &elapsed, PerfCounters &pc);
    /// @}

    /// @name Drift (adaptive window placement)
    /// @{

    /** lastDriftPermille() when age() had nothing comparable. */
    static constexpr std::uint32_t kDriftUnknown = ~0u;

    /**
     * Relative movement of the fitted terms at the most recent age():
     * the worst per-shape change of the aggregate-lane elapsed mean
     * between the era just promoted and the era it replaced, in
     * permille. kDriftUnknown when no shape promoted over a previous
     * era (cold model, thin window) — callers must treat that as "not
     * demonstrably steady". Pure integer arithmetic over observed
     * sums, so it is deterministic and worker-count-independent.
     */
    std::uint32_t lastDriftPermille() const { return _lastDrift; }
    /// @}

    /// @name Introspection (tests, diagnostics)
    /// @{
    std::size_t clusterShapes() const
    {
        return _points[_cur].clusters.size();
    }
    std::uint64_t observedClusters() const { return _observedClusters; }
    std::uint64_t observedBurstLines() const { return _observedLines; }
    /// @}

  private:
    /** Fitted per-cluster quantities (sums over observations). */
    enum ClusterField {
        CfElapsed,
        CfCompute,
        CfTrueMem,
        CfCrit,
        CfLeading,
        CfStall,
        CfL1,
        CfL2,
        CfL3,
        CfDram,
        CfCount_,
    };

    /** Fitted per-burst-line quantities. */
    enum BurstField {
        BfElapsed,
        BfCompute,
        BfTrueMem,
        BfSqFull,
        BfCount_,
    };

    /**
     * One (shape, occupancy) accumulator: the accumulating fitting
     * window, the frozen charging era, and the era's drift-free
     * emission bookkeeping.
     */
    template <int N>
    struct Lane {
        std::uint64_t winWeight = 0;     ///< window observations (lines)
        std::uint64_t winObs[N] = {};    ///< window sums
        std::uint64_t eraWeight = 0;     ///< promoted-era weight
        std::uint64_t eraObs[N] = {};    ///< promoted-era sums
        std::uint64_t charged = 0;       ///< weight charged this era
        std::uint64_t emitted[N] = {};   ///< sums emitted this era

        /** Promote the window if it met @p minWeight. */
        void
        promote(std::uint64_t minWeight)
        {
            if (winWeight < minWeight)
                return;
            eraWeight = winWeight;
            for (int i = 0; i < N; ++i) {
                eraObs[i] = winObs[i];
                winObs[i] = 0;
                emitted[i] = 0;
            }
            winWeight = 0;
            charged = 0;
        }

        /**
         * Warm-start this lane from @p src fitted at @p oldMhz: the
         * era's compute share rescales to @p newMhz, the non-scaling
         * shares carry over, the in-progress window and the emission
         * bookkeeping start empty.
         */
        void
        fork(const Lane &src, int computeField, int elapsedField,
             std::uint32_t oldMhz, std::uint32_t newMhz)
        {
            if (src.eraWeight == 0)
                return;
            eraWeight = src.eraWeight;
            for (int i = 0; i < N; ++i)
                eraObs[i] = src.eraObs[i];
            const std::uint64_t oldCompute = src.eraObs[computeField];
            const auto newCompute = static_cast<std::uint64_t>(
                static_cast<unsigned __int128>(oldCompute) * oldMhz
                / newMhz);
            const std::uint64_t elapsed = src.eraObs[elapsedField];
            const std::uint64_t nonScaling =
                elapsed > oldCompute ? elapsed - oldCompute : 0;
            eraObs[computeField] = newCompute;
            eraObs[elapsedField] = nonScaling + newCompute;
        }
    };

    struct ClusterShape {
        std::uint32_t loads = 0;
        std::uint64_t overlapInstructions = 0;
        std::uint32_t shapeHint = 0;
        /** Index 1..cores by busy-core count; [0] is the aggregate. */
        std::vector<Lane<CfCount_>> lanes;
    };

    struct BurstShape {
        std::uint32_t storesPerLine = 0;
        std::vector<Lane<BfCount_>> lanes;
    };

    /**
     * One operating point's complete era set. The model observes and
     * charges only through the current point; other points keep their
     * fitted state for when the manager revisits their frequency.
     */
    struct PointState {
        std::uint32_t mhz = 0;  ///< 0 until the first setOperatingPoint
        std::vector<ClusterShape> clusters;
        std::vector<BurstShape> bursts;
        std::uint64_t observations = 0;  ///< total obs landed here
    };

    /** Cumulative-emission share of one fitted quantity. */
    template <int N>
    static std::uint64_t
    emitShare(Lane<N> &lane, int field, std::uint64_t chargedWeight)
    {
        const auto entitled = static_cast<std::uint64_t>(
            static_cast<unsigned __int128>(chargedWeight)
            * lane.eraObs[field] / lane.eraWeight);
        std::uint64_t out = entitled > lane.emitted[field]
                                ? entitled - lane.emitted[field]
                                : 0;
        lane.emitted[field] += out;
        return out;
    }

    ClusterShape &clusterShape(std::uint32_t loads,
                               std::uint64_t overlap,
                               std::uint32_t hint);
    BurstShape &burstShape(std::uint32_t storesPerLine);

    /** Fork every era of @p src into a new point at @p newMhz. */
    PointState forkPoint(const PointState &src, std::uint32_t newMhz);

    std::uint32_t _cores;
    FastPathConfig _cfg;
    std::vector<PointState> _points;
    std::size_t _cur = 0;
    std::uint32_t _lastDrift = kDriftUnknown;
    std::uint64_t _observedClusters = 0;
    std::uint64_t _observedLines = 0;
};

} // namespace dvfs::uarch

#endif // DVFS_UARCH_FASTPATH_HH
