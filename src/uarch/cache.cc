#include "uarch/cache.hh"

#include <algorithm>
#include <bit>

#include "sim/log.hh"
#include "sim/profile.hh"

namespace dvfs::uarch {

const char *
hitLevelName(HitLevel level)
{
    switch (level) {
      case HitLevel::L1: return "L1";
      case HitLevel::L2: return "L2";
      case HitLevel::L3: return "L3";
      case HitLevel::Dram: return "DRAM";
    }
    return "?";
}

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(std::string name, const CacheConfig &cfg)
    : _name(std::move(name)), _cfg(cfg)
{
    if (_cfg.lineBytes == 0 || !isPow2(_cfg.lineBytes))
        fatal("cache '%s': line size must be a power of two", _name.c_str());
    if (_cfg.assoc == 0)
        fatal("cache '%s': associativity must be positive", _name.c_str());
    if (_cfg.assoc > 16)
        fatal("cache '%s': associativity above 16 does not fit the "
              "per-set recency word", _name.c_str());
    std::uint64_t lines = _cfg.sizeBytes / _cfg.lineBytes;
    if (lines == 0 || lines % _cfg.assoc != 0)
        fatal("cache '%s': size/assoc/line geometry does not divide",
              _name.c_str());
    _numSets = static_cast<std::uint32_t>(lines / _cfg.assoc);
    if (!isPow2(_numSets))
        fatal("cache '%s': set count must be a power of two", _name.c_str());
    _lineShift = static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint64_t>(_cfg.lineBytes)));
    _setBits = static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint64_t>(_numSets)));
    _meta.assign(static_cast<std::size_t>(_numSets) * _cfg.assoc, 0);
    _order.assign(_numSets, identityOrder(_cfg.assoc));
    _mru.assign(_numSets, 0);
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint32_t set = setIndex(addr);
    const std::uint64_t tag64 = tagOf(addr);
    if (tag64 >> (32 - kWayTagShift))
        return false;  // unpackable tags are never resident
    const std::uint32_t *meta =
        _meta.data() + static_cast<std::size_t>(set) * _cfg.assoc;
    const std::uint32_t want =
        (static_cast<std::uint32_t>(tag64) << kWayTagShift) | kWayDirty |
        kWayValid;
    for (std::uint32_t w = 0; w < _cfg.assoc; ++w) {
        if ((meta[w] | kWayDirty) == want)
            return true;
    }
    return false;
}

void
Cache::reset()
{
    std::fill(_meta.begin(), _meta.end(), 0u);
    std::fill(_order.begin(), _order.end(), identityOrder(_cfg.assoc));
    std::fill(_mru.begin(), _mru.end(), 0u);
    _hits.reset();
    _misses.reset();
    _writebacks.reset();
}

CacheHierarchy::CacheHierarchy(std::uint32_t cores,
                               const HierarchyConfig &cfg, Dram &dram,
                               const FreqDomain &uncore)
    : _cfg(cfg), _dram(dram), _uncore(uncore),
      _l3("L3", cfg.l3)
{
    if (cores == 0)
        fatal("cache hierarchy needs at least one core");
    _l1d.reserve(cores);
    _l2.reserve(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        _l1d.emplace_back(strprintf("L1D.%u", c), cfg.l1d);
        _l2.emplace_back(strprintf("L2.%u", c), cfg.l2);
    }
    _writePortFreeAt.assign(cores, 0);
    _writeDrainTicks = nsToTicks(_cfg.writeDrainNs);
}

Tick
CacheHierarchy::l2HitTicks(Frequency core_freq) const
{
    if (core_freq != _l2TickFreq) {
        _l2TickFreq = core_freq;
        _l2TickCache = core_freq.cyclesToTicks(_cfg.l2.latencyCycles);
    }
    return _l2TickCache;
}

Tick
CacheHierarchy::l3HitTicks() const
{
    const Frequency f = _uncore.frequency();
    if (f != _l3TickFreq) {
        _l3TickFreq = f;
        _l3TickCache = f.cyclesToTicks(_cfg.l3.latencyCycles);
    }
    return _l3TickCache;
}

void
CacheHierarchy::enableWarmOverlay()
{
    _warmEnabled = true;
    _warmLineShift = static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint64_t>(_cfg.l3.lineBytes)));
    // Three quarters of the L3: the real cache splits capacity
    // between the write stream and load-installed lines (mutator
    // working set, GC trace fronts), so a written line's expected
    // residency is somewhat under one full L3 of younger installs.
    _warmCapLines = _cfg.l3.sizeBytes / _cfg.l3.lineBytes * 3 / 4;
    _warmL3Lines = _cfg.l3.sizeBytes / _cfg.l3.lineBytes;
}

bool
CacheHierarchy::warmVictimDue()
{
    if (_warmRanges.empty())
        return false;
    // Live coverage: lines still warm across all non-stale ranges,
    // saturated at one L3 capacity. With the default geometry a
    // single gap writes more than an L3 of lines, so after the first
    // gap this sits at the cap; during startup detail it is zero and
    // no synthetic pressure is emitted (exact-equivalent warmup).
    std::uint64_t coverage = 0;
    for (auto it = _warmRanges.rbegin(); it != _warmRanges.rend(); ++it) {
        if (_warmWritten - it->stamp > _warmCapLines)
            break;
        coverage += it->last - it->first;
        if (coverage >= _warmL3Lines) {
            coverage = _warmL3Lines;
            break;
        }
    }
    _warmDebt += coverage;
    if (_warmDebt < _warmL3Lines)
        return false;
    _warmDebt -= _warmL3Lines;
    return true;
}

void
CacheHierarchy::warmLines(std::uint64_t baseAddr, std::uint32_t lines)
{
    if (!_warmEnabled || lines == 0)
        return;
    const std::uint64_t first = baseAddr >> _warmLineShift;
    const std::uint64_t last = first + lines;
    _warmWritten += lines;
    if (!_warmRanges.empty()) {
        WarmRange &top = _warmRanges.back();
        // Nursery allocation is a bump pointer, so consecutive bursts
        // are contiguous or overlapping: extend the newest range in
        // place and refresh its stamp. Trimming the head keeps a
        // range streamed past L3 capacity from claiming lines the
        // real cache would long have evicted.
        if (first <= top.last && last >= top.first) {
            top.first = std::min(top.first, first);
            top.last = std::max(top.last, last);
            top.stamp = _warmWritten;
            if (top.last - top.first > _warmCapLines)
                top.first = top.last - _warmCapLines;
            return;
        }
    }
    if (_warmRanges.size() >= 8) {
        const std::uint64_t now = _warmWritten;
        const std::uint64_t cap = _warmCapLines;
        std::erase_if(_warmRanges, [now, cap](const WarmRange &r) {
            return now - r.stamp > cap;
        });
    }
    WarmRange r{first, last, _warmWritten};
    if (r.last - r.first > _warmCapLines)
        r.first = r.last - _warmCapLines;
    _warmRanges.push_back(r);
}

bool
CacheHierarchy::warmHit(std::uint64_t addr)
{
    const std::uint64_t line = addr >> _warmLineShift;
    // Stamps grow toward the back; once one range is too old, all
    // earlier ones are older still.
    for (auto it = _warmRanges.rbegin(); it != _warmRanges.rend(); ++it) {
        if (_warmWritten - it->stamp > _warmCapLines)
            break;
        if (line >= it->first && line < it->last) {
            _warmHitCount += 1;
            return true;
        }
    }
    return false;
}

CacheHierarchy::LoadOutcome
CacheHierarchy::load(std::uint32_t core, std::uint64_t addr, Tick issue,
                     Frequency core_freq)
{
    DVFS_PROFILE_SCOPE(Cache);
    DVFS_ASSERT(core < _l1d.size(), "core index out of range");

    LoadOutcome out{};
    Cache &l1 = _l1d[core];
    Cache &l2 = _l2[core];

    auto r1 = l1.access(addr, false);
    if (r1.hit) {
        // L1 hit latency is part of the core's base IPC.
        out.level = HitLevel::L1;
        out.completion = issue;
        out.memLatency = 0;
        return out;
    }
    // A dirty L1 victim folds into the L2 (same clock domain, cheap);
    // install it there so its eventual eviction generates traffic.
    if (r1.writeback) {
        auto r = l2.access(*r1.writeback, true);
        if (r.writeback) {
            auto wb = _l3.access(*r.writeback, true);
            if (wb.writeback)
                _dram.write(*wb.writeback, issue);
        }
    }

    Tick t = issue + l2HitTicks(core_freq);
    auto r2 = l2.access(addr, false);
    if (r2.hit) {
        out.level = HitLevel::L2;
        out.completion = t;
        out.memLatency = t - issue;
        return out;
    }
    if (r2.writeback) {
        auto wb = _l3.access(*r2.writeback, true);
        if (wb.writeback)
            _dram.write(*wb.writeback, t);
    }

    t += l3HitTicks();
    auto r3 = _l3.access(addr, false);
    if (r3.hit) {
        out.level = HitLevel::L3;
        out.completion = t;
        out.memLatency = t - issue;
        return out;
    }
    // A line the overlay still holds warm would have been L3-resident
    // had its burst executed in detail: satisfy the load at L3 speed.
    // The access above already installed it in the real tags, and the
    // victim's writeback is suppressed — in detail the set would not
    // have evicted at all. Either way the install displaces a line,
    // so the overlay's decay clock advances for loads too.
    if (_warmEnabled) {
        _warmWritten += 1;
        if (warmHit(addr)) {
            out.level = HitLevel::L3;
            out.completion = t;
            out.memLatency = t - issue;
            return out;
        }
    }
    if (r3.writeback)
        _dram.write(*r3.writeback, t);
    // The displaced line would, at overlay-coverage rate, have been a
    // dirty burst line in exact mode: pay the writeback it would have
    // cost. A clean victim gives the faithful address; on a cold fill
    // flip a tag bit — channel and bank decode from the low line bits
    // either way, so the read sees the same bank pressure.
    else if (_warmEnabled && warmVictimDue())
        _dram.write(r3.evictedClean ? *r3.evictedClean
                                    : (addr ^ (std::uint64_t{1} << 32)),
                    t);

    Tick done = _dram.read(addr, t);
    out.level = HitLevel::Dram;
    out.completion = done;
    out.memLatency = done - issue;
    return out;
}

Tick
CacheHierarchy::storeLine(std::uint32_t core, std::uint64_t addr, Tick issue)
{
    DVFS_PROFILE_SCOPE(Cache);
    DVFS_ASSERT(core < _l1d.size(), "core index out of range");

    // Every detailed store line advances the overlay's write clock so
    // warm ranges decay at the same rate whether the writes that push
    // them out executed in detail or were charged analytically.
    if (_warmEnabled)
        _warmWritten += 1;

    // Install dirty in the private levels so subsequent reads of
    // freshly initialized memory hit.
    auto r1 = _l1d[core].access(addr, true);
    if (r1.writeback) {
        auto r = _l2[core].access(*r1.writeback, true);
        if (r.writeback)
            _l3.access(*r.writeback, true);
    }

    auto r3 = _l3.access(addr, true);
    if (r3.hit) {
        // Line owned on chip: the store drains at cache speed, i.e.
        // the SQ entry is released structurally immediately.
        return issue;
    }
    // Warm-overlay lines count as on-chip for stores too: re-zeroing
    // a line a fast-forwarded burst wrote drains at cache speed, as
    // it would have had that burst executed in detail.
    if (_warmEnabled && warmHit(addr))
        return issue;

    // Store miss: the line allocates without fetching (write-combined
    // zeroing/copying), but its SQ entries are held until the core's
    // write port — the limited line-fill-buffer pipeline draining the
    // miss and the displaced victim — accepts the line. The port runs
    // at memory speed (wall clock), which is what makes sustained
    // store bursts drain-limited and back up the SQ at every DVFS
    // setting (Section III-D). A dirty victim additionally consumes
    // DRAM write bandwidth (and disturbs banks that reads share).
    if (r3.writeback)
        _dram.write(*r3.writeback, issue);
    // As in load(): the displaced line would usually have been a
    // dirty burst line in exact mode — pay its writeback.
    else if (_warmEnabled && warmVictimDue())
        _dram.write(r3.evictedClean ? *r3.evictedClean
                                    : (addr ^ (std::uint64_t{1} << 32)),
                    issue);
    Tick &port = _writePortFreeAt[core];
    port = std::max(port, issue) + _writeDrainTicks;
    return port;
}

void
CacheHierarchy::reset()
{
    for (auto &c : _l1d)
        c.reset();
    for (auto &c : _l2)
        c.reset();
    _l3.reset();
    std::fill(_writePortFreeAt.begin(), _writePortFreeAt.end(), 0);
    _warmRanges.clear();
    _warmWritten = 0;
    _warmDebt = 0;
    _warmHitCount = 0;
}

} // namespace dvfs::uarch
