/**
 * @file
 * The per-thread hardware performance-counter block.
 *
 * This is the *interface between the machine and the predictors*: a
 * predictor may read nothing about a run except these counters, the
 * futex/sched event trace, and wall-clock epoch boundaries. Fields
 * marked [oracle] exist for analysis/tests only and must not be read
 * by any predictor.
 *
 * The OS virtualizes the per-core counters per thread on context
 * switches (as the paper's kernel-module deployment would), so the
 * simulator simply accumulates into the owning thread's block.
 */

#ifndef DVFS_UARCH_PERF_COUNTERS_HH
#define DVFS_UARCH_PERF_COUNTERS_HH

#include <cstdint>

#include "sim/time.hh"

namespace dvfs::uarch {

/** Accumulated hardware counters for one thread. */
struct PerfCounters {
    /** Time scheduled on a core (never includes futex wait time). */
    Tick busyTime = 0;

    /** Retired instructions. */
    std::uint64_t instructions = 0;

    /**
     * Non-scaling time as the CRIT hardware would measure it:
     * accumulated DRAM latency along the critical dependence chain of
     * each miss cluster.
     */
    Tick critNonscaling = 0;

    /**
     * Non-scaling time as the Leading Loads hardware would measure it:
     * the latency of the leading miss of each overlapping burst.
     */
    Tick leadingNonscaling = 0;

    /**
     * Non-scaling time as the stall-time hardware would measure it:
     * time the pipeline could not commit because of load misses.
     */
    Tick stallNonscaling = 0;

    /**
     * Time the store queue was full (the new counter the paper
     * proposes for BURST, Section III-E).
     */
    Tick sqFullTime = 0;

    /** [oracle] True memory-bound (frequency-invariant) load time. */
    Tick trueMemTime = 0;

    /** [oracle] Pure compute time (scales exactly with frequency). */
    Tick computeTime = 0;

    /// @name Cache/memory event counts (available as ordinary HPCs).
    /// @{
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l3Hits = 0;
    std::uint64_t dramLoads = 0;
    std::uint64_t missClusters = 0;
    std::uint64_t storeBursts = 0;
    std::uint64_t storeLines = 0;
    /// @}

    /** Field-wise difference (this - earlier snapshot). */
    PerfCounters
    operator-(const PerfCounters &o) const
    {
        PerfCounters d;
        d.busyTime = busyTime - o.busyTime;
        d.instructions = instructions - o.instructions;
        d.critNonscaling = critNonscaling - o.critNonscaling;
        d.leadingNonscaling = leadingNonscaling - o.leadingNonscaling;
        d.stallNonscaling = stallNonscaling - o.stallNonscaling;
        d.sqFullTime = sqFullTime - o.sqFullTime;
        d.trueMemTime = trueMemTime - o.trueMemTime;
        d.computeTime = computeTime - o.computeTime;
        d.l1Hits = l1Hits - o.l1Hits;
        d.l2Hits = l2Hits - o.l2Hits;
        d.l3Hits = l3Hits - o.l3Hits;
        d.dramLoads = dramLoads - o.dramLoads;
        d.missClusters = missClusters - o.missClusters;
        d.storeBursts = storeBursts - o.storeBursts;
        d.storeLines = storeLines - o.storeLines;
        return d;
    }

    /** Field-wise accumulate. */
    PerfCounters &
    operator+=(const PerfCounters &o)
    {
        busyTime += o.busyTime;
        instructions += o.instructions;
        critNonscaling += o.critNonscaling;
        leadingNonscaling += o.leadingNonscaling;
        stallNonscaling += o.stallNonscaling;
        sqFullTime += o.sqFullTime;
        trueMemTime += o.trueMemTime;
        computeTime += o.computeTime;
        l1Hits += o.l1Hits;
        l2Hits += o.l2Hits;
        l3Hits += o.l3Hits;
        dramLoads += o.dramLoads;
        missClusters += o.missClusters;
        storeBursts += o.storeBursts;
        storeLines += o.storeLines;
        return *this;
    }
};

} // namespace dvfs::uarch

#endif // DVFS_UARCH_PERF_COUNTERS_HH
