/**
 * @file
 * Umbrella header: the supported public surface of the DEP+BURST
 * library in one include.
 *
 * Applications (and everything under examples/) should include only
 * this header. It re-exports the *stable facade* — the API tier that
 * changes only with a deprecation cycle (DESIGN.md section 10.5):
 *
 *  - workload description and construction (wl::WorkloadParams,
 *    wl::dacapoSuite, wl::syntheticSmall, wl::buildBenchmark)
 *  - canonical run harnesses (exp::runFixed / exp::runManaged /
 *    exp::RunOptions) and the sweep engine with trace-backed grids
 *  - the observation surface (pred::RunView) with both backends,
 *    predictors and the PredictorRegistry
 *  - trace record/replay I/O (trace::writeTraceFile,
 *    trace::readTraceFile, trace::ReplayEngine)
 *  - report helpers (exp::Table) and criticality analysis
 *
 * Everything not reachable from here (os::, uarch::, rt::, sim::
 * internals) is the *internal* tier: usable, but its layout may change
 * in any PR without notice.
 */

#ifndef DVFS_DVFS_HH
#define DVFS_DVFS_HH

// Workloads.
#include "wl/builder.hh"
#include "wl/params.hh"
#include "wl/suite.hh"

// Run harnesses and sweeps.
#include "exp/experiment.hh"
#include "exp/sweep/fingerprint.hh"
#include "exp/sweep/sweep.hh"
#include "exp/sweep/trace_cache.hh"
#include "exp/table.hh"

// Prediction: observation surface, predictors, registry, analysis.
#include "pred/criticality.hh"
#include "pred/predictors.hh"
#include "pred/registry.hh"
#include "pred/run_view.hh"

// Trace record/replay.
#include "trace/format.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "trace/writer.hh"

// Diagnostics used by caller code (fatal/warn/inform).
#include "sim/log.hh"

#endif // DVFS_DVFS_HH
