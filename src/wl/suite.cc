#include "wl/suite.hh"

#include "sim/log.hh"

namespace dvfs::wl {

namespace {

/**
 * Common defaults shared by the suite; per-benchmark factories below
 * override what makes each benchmark itself.
 */
WorkloadParams
base(const std::string &name, bool memory_intensive, std::uint32_t heap_mb)
{
    WorkloadParams p;
    p.name = name;
    p.memoryIntensive = memory_intensive;
    p.heapMB = heap_mb;
    p.runtime.heap.nurseryBytes = 4ULL << 20;
    return p;
}

/**
 * xalan: XSLT transformation. Memory-intensive, allocation-heavy,
 * with contention on the shared document/table locks.
 */
WorkloadParams
xalan()
{
    WorkloadParams p = base("xalan", true, 108);
    p.workItems = 1400;
    p.computeInstr = 9000;
    p.l2LoadsPerItem = 10;
    p.clustersPerItem = 2;
    p.chainDepth = 3;
    p.chains = 2;
    p.clusterOverlapInstr = 1200;
    p.pHot = 0.25;
    p.pWarm = 0.35;
    p.allocBytesPerItem = 5632;
    p.allocChunkBytes = 5632;
    p.lockProb = 0.35;
    p.lockHoldInstr = 800;
    p.numLocks = 1;
    p.runtime.survivalRate = 0.40;
    return p;
}

/**
 * pmd: source-code analysis. Memory-intensive with deep pointer
 * chasing (AST traversal), phase barriers, and a straggler worker
 * caused by one oversized input file [14].
 */
WorkloadParams
pmd()
{
    WorkloadParams p = base("pmd", true, 98);
    p.workItems = 1320;
    p.computeInstr = 8500;
    p.l2LoadsPerItem = 8;
    p.clustersPerItem = 2;
    p.chainDepth = 5;
    p.chains = 1;
    p.clusterOverlapInstr = 700;
    p.pHot = 0.25;
    p.pWarm = 0.25;
    p.allocBytesPerItem = 2816;
    p.allocChunkBytes = 2816;
    p.lockProb = 0.20;
    p.lockHoldInstr = 600;
    p.numLocks = 1;
    p.barrierEvery = 200;
    p.stragglerFactor = 1.7;
    p.runtime.survivalRate = 0.80;
    p.runtime.heap.nurseryBytes = 2ULL << 20;
    return p;
}

/** pmd.scale: pmd with the scaling bottleneck removed [14]. */
WorkloadParams
pmdScale()
{
    WorkloadParams p = pmd();
    p.name = "pmd.scale";
    p.stragglerFactor = 1.0;
    p.workItems = 700;
    return p;
}

/**
 * lusearch: text search with per-query needless allocation — the
 * heaviest allocator in the suite [43].
 */
WorkloadParams
lusearch()
{
    WorkloadParams p = base("lusearch", true, 68);
    p.workItems = 4600;
    p.computeInstr = 7000;
    p.l2LoadsPerItem = 6;
    p.clustersPerItem = 1;
    p.chainDepth = 2;
    p.chains = 2;
    p.clusterOverlapInstr = 800;
    p.pHot = 0.30;
    p.pWarm = 0.30;
    p.allocBytesPerItem = 4608;
    p.allocChunkBytes = 4608;
    p.lockProb = 0.05;
    p.lockHoldInstr = 200;
    p.numLocks = 1;
    p.runtime.survivalRate = 0.20;  // query-local garbage dies young
    return p;
}

/** lusearch.fix: the allocation fix of [43] — same search, ~8x less
 * allocation, turning the benchmark compute-intensive. */
WorkloadParams
lusearchFix()
{
    WorkloadParams p = lusearch();
    p.name = "lusearch.fix";
    p.memoryIntensive = false;
    p.workItems = 2900;
    p.allocBytesPerItem = 1280;
    p.allocChunkBytes = 1280;
    return p;
}

/**
 * avrora: AVR microcontroller simulation. Six threads with
 * fine-grained synchronization and limited parallelism [14]; barely
 * any allocation or DRAM traffic.
 */
WorkloadParams
avrora()
{
    WorkloadParams p = base("avrora", false, 98);
    p.appThreads = 6;
    p.workItems = 15700;
    p.computeInstr = 900;
    p.l2LoadsPerItem = 2;
    p.l3LoadsPerItem = 0;
    p.clustersPerItem = 1;
    p.chainDepth = 1;
    p.chains = 1;
    p.clusterOverlapInstr = 200;
    p.pHot = 0.75;
    p.pWarm = 0.22;
    p.allocBytesPerItem = 64;
    p.allocChunkBytes = 64;
    p.runtime.heap.nurseryBytes = 1ULL << 20;
    p.lockProb = 0.85;
    p.lockHoldInstr = 150;
    p.numLocks = 3;
    p.runtime.survivalRate = 0.05;
    return p;
}

/**
 * sunflow: ray tracing. Long, cache-friendly parallel compute with
 * good MLP and little synchronization.
 */
WorkloadParams
sunflow()
{
    WorkloadParams p = base("sunflow", false, 108);
    p.workItems = 2750;
    p.computeInstr = 30'000;
    p.l2LoadsPerItem = 12;
    p.l3LoadsPerItem = 2;
    p.clustersPerItem = 2;
    p.chainDepth = 2;
    p.chains = 3;
    p.clusterOverlapInstr = 2500;
    p.pHot = 0.50;
    p.pWarm = 0.30;
    p.allocBytesPerItem = 1024;
    p.allocChunkBytes = 1024;
    p.lockProb = 0.02;
    p.lockHoldInstr = 200;
    p.numLocks = 1;
    p.runtime.survivalRate = 0.30;
    return p;
}

} // namespace

std::vector<WorkloadParams>
dacapoSuite()
{
    return {xalan(),       pmd(),    pmdScale(), lusearch(),
            lusearchFix(), avrora(), sunflow()};
}

WorkloadParams
benchmarkByName(const std::string &name)
{
    for (auto &p : dacapoSuite()) {
        if (p.name == name)
            return p;
    }
    if (name == "synthetic")
        return syntheticSmall();
    fatal("unknown benchmark '%s'", name.c_str());
}

std::vector<WorkloadParams>
memoryIntensiveSuite()
{
    std::vector<WorkloadParams> v;
    for (auto &p : dacapoSuite()) {
        if (p.memoryIntensive)
            v.push_back(p);
    }
    return v;
}

WorkloadParams
syntheticSmall(std::uint32_t app_threads, std::uint64_t work_items)
{
    WorkloadParams p = base("synthetic", true, 64);
    p.appThreads = app_threads;
    p.workItems = work_items;
    p.computeInstr = 3000;
    p.clustersPerItem = 1;
    p.allocBytesPerItem = 1024;
    p.allocChunkBytes = 1024;
    p.lockProb = 0.2;
    p.serialSetupInstr = 10'000;
    p.serialTeardownInstr = 5'000;
    return p;
}

} // namespace dvfs::wl
