/**
 * @file
 * Workload parameterisation.
 *
 * Each synthetic benchmark is a WorkloadParams instance: a main thread
 * plus appThreads workers, each executing workItems loop iterations.
 * One iteration mixes straight-line compute, long-latency miss
 * clusters over hot/warm/cold address regions, managed allocation
 * (zero-initialised, GC-pressure-generating), critical sections, and
 * optional barrier phases — the ingredient list Section II-B of the
 * paper identifies for managed multithreaded behaviour.
 *
 * All durations in Table I are reproduced at 1/100 time scale (see
 * DESIGN.md); kTimeScale converts between simulated and reported time.
 */

#ifndef DVFS_WL_PARAMS_HH
#define DVFS_WL_PARAMS_HH

#include <cstdint>
#include <string>

#include "rt/runtime.hh"
#include "sim/time.hh"

namespace dvfs::wl {

/** Factor by which all Table I durations are scaled down. */
constexpr double kTimeScale = 1.0 / 100.0;

/** Convert a simulated duration to the paper-scale (de-scaled) value. */
inline double
descaleMs(Tick t)
{
    return ticksToMs(t) / kTimeScale;
}

/// @name Simulated address-space layout
/// @{

/** Per-thread hot region (L1/L2-resident working set). */
constexpr std::uint64_t kHotBase = 0x3'0000'0000ULL;
/** Stride between consecutive threads' hot regions. */
constexpr std::uint64_t kHotStride = 8ULL << 20;
/** Shared warm region (mostly L3-resident). */
constexpr std::uint64_t kWarmBase = 0x4'0000'0000ULL;
/** Shared cold region (DRAM-resident). */
constexpr std::uint64_t kColdBase = 0x5'0000'0000ULL;
/// @}

/**
 * Full description of one benchmark.
 */
struct WorkloadParams {
    std::string name;

    /** Table I classification: memory-intensive (M) vs compute (C). */
    bool memoryIntensive = true;

    /** Heap size reported in Table I (MB, unscaled, for reports). */
    std::uint32_t heapMB = 98;

    /** Worker threads (Table I: 4; avrora: 6). */
    std::uint32_t appThreads = 4;

    /** Loop iterations per worker. */
    std::uint64_t workItems = 1000;

    /** Per-item work multiplier for worker 0 (pmd's large input). */
    double stragglerFactor = 1.0;

    /// @name Per-item compute
    /// @{
    std::uint64_t computeInstr = 4000;    ///< instructions per item
    std::uint32_t l2LoadsPerItem = 4;     ///< analytic L2-hit loads
    std::uint32_t l3LoadsPerItem = 1;     ///< analytic L3-hit loads
    /// @}

    /// @name Per-item memory behaviour
    /// @{
    std::uint32_t clustersPerItem = 2;    ///< miss clusters per item
    std::uint32_t chainDepth = 3;         ///< dependent loads per chain
    std::uint32_t chains = 2;             ///< parallel chains (MLP)
    std::uint32_t clusterOverlapInstr = 800;
    double pHot = 0.3;                    ///< chain targets hot region
    double pWarm = 0.2;                   ///< chain targets warm region
    std::uint64_t hotBytes = 96ULL << 10;
    std::uint64_t warmBytes = 2560ULL << 10;
    std::uint64_t coldBytes = 256ULL << 20;
    /// @}

    /// @name Per-item allocation
    /// @{
    std::uint64_t allocBytesPerItem = 2048;
    std::uint32_t allocChunkBytes = 2048; ///< bytes per Alloc action
    /// @}

    /// @name Synchronization
    /// @{
    double lockProb = 0.2;           ///< item contains a critical section
    std::uint64_t lockHoldInstr = 300;
    std::uint32_t numLocks = 2;
    std::uint32_t barrierEvery = 0;  ///< items between barriers (0 = off)
    /// @}

    /// @name Main thread
    /// @{
    std::uint64_t serialSetupInstr = 50'000;
    std::uint64_t serialTeardownInstr = 20'000;
    /// @}

    /** Managed-runtime (heap / GC) configuration. */
    rt::RuntimeConfig runtime{};
};

} // namespace dvfs::wl

#endif // DVFS_WL_PARAMS_HH
