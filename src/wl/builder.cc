#include "wl/builder.hh"

#include "sim/log.hh"

namespace dvfs::wl {

os::SystemConfig
defaultSystemConfig(Frequency core_freq)
{
    os::SystemConfig cfg;
    cfg.cores = 4;
    cfg.coreFreq = core_freq;
    cfg.uncoreFreq = Frequency::mhz(1500);
    return cfg;
}

BenchInstance
buildBenchmark(const WorkloadParams &params, const os::SystemConfig &sys_cfg)
{
    if (params.appThreads == 0)
        fatal("benchmark '%s' needs at least one worker",
              params.name.c_str());
    if (params.workItems == 0)
        fatal("benchmark '%s' needs at least one work item",
              params.name.c_str());
    if (params.allocBytesPerItem > 0 && params.allocChunkBytes == 0)
        fatal("benchmark '%s': allocChunkBytes must be positive when "
              "items allocate", params.name.c_str());
    if (params.lockProb < 0.0 || params.lockProb > 1.0 ||
        params.pHot < 0.0 || params.pWarm < 0.0 ||
        params.pHot + params.pWarm > 1.0)
        fatal("benchmark '%s': probabilities must lie in [0,1]",
              params.name.c_str());
    if (params.lockProb > 0.0 && params.numLocks == 0)
        fatal("benchmark '%s' takes locks but defines none",
              params.name.c_str());

    BenchInstance inst;
    inst.sys = std::make_unique<os::System>(sys_cfg);
    os::System &sys = *inst.sys;

    inst.shared = std::make_unique<SharedWorkload>();
    SharedWorkload &sh = *inst.shared;
    sh.params = params;

    for (std::uint32_t i = 0; i < params.numLocks; ++i)
        sh.locks.push_back(sys.createMutex());
    if (params.barrierEvery > 0)
        sh.barrier = sys.createBarrier(params.appThreads);

    for (std::uint32_t w = 0; w < params.appThreads; ++w) {
        auto prog = std::make_unique<WorkerProgram>(sh, w);
        sh.workers.push_back(sys.addThread(
            strprintf("%s-worker-%u", params.name.c_str(), w),
            std::move(prog)));
    }
    inst.mainTid = sys.addThread(params.name + "-main",
                                 std::make_unique<MainProgram>(sh));
    sys.setMainThread(inst.mainTid);

    inst.runtime = std::make_unique<rt::Runtime>(sys, params.runtime);
    inst.runtime->attach();

    return inst;
}

} // namespace dvfs::wl
