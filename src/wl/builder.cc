#include "wl/builder.hh"

#include "sim/log.hh"

namespace dvfs::wl {

os::SystemConfig
defaultSystemConfig(Frequency core_freq)
{
    os::SystemConfig cfg;
    cfg.cores = 4;
    cfg.coreFreq = core_freq;
    cfg.uncoreFreq = Frequency::mhz(1500);
    return cfg;
}

BenchInstance
buildBenchmark(const WorkloadParams &params, const os::SystemConfig &sys_cfg)
{
    if (params.appThreads == 0)
        fatal("benchmark '%s' needs at least one worker",
              params.name.c_str());

    BenchInstance inst;
    inst.sys = std::make_unique<os::System>(sys_cfg);
    os::System &sys = *inst.sys;

    inst.shared = std::make_unique<SharedWorkload>();
    SharedWorkload &sh = *inst.shared;
    sh.params = params;

    for (std::uint32_t i = 0; i < params.numLocks; ++i)
        sh.locks.push_back(sys.createMutex());
    if (params.barrierEvery > 0)
        sh.barrier = sys.createBarrier(params.appThreads);

    for (std::uint32_t w = 0; w < params.appThreads; ++w) {
        auto prog = std::make_unique<WorkerProgram>(sh, w);
        sh.workers.push_back(sys.addThread(
            strprintf("%s-worker-%u", params.name.c_str(), w),
            std::move(prog)));
    }
    inst.mainTid = sys.addThread(params.name + "-main",
                                 std::make_unique<MainProgram>(sh));
    sys.setMainThread(inst.mainTid);

    inst.runtime = std::make_unique<rt::Runtime>(sys, params.runtime);
    inst.runtime->attach();

    return inst;
}

} // namespace dvfs::wl
