#include "wl/programs.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace dvfs::wl {

WorkerProgram::WorkerProgram(const SharedWorkload &shared,
                             std::uint32_t index)
    : _sh(shared), _index(index)
{
    _items = _sh.params.workItems;
    // Worker 0 models pmd's oversized input file: same item count
    // (keeping barrier arrivals matched) but heavier items.
    _workScale = (index == 0) ? _sh.params.stragglerFactor : 1.0;
}

uarch::MissClusterSpec
WorkerProgram::makeCluster(os::ThreadContext &ctx) const
{
    const WorkloadParams &p = _sh.params;
    uarch::MissClusterSpec spec;
    spec.overlapInstructions = p.clusterOverlapInstr;

    std::uint32_t hot = 0, warm = 0, cold = 0;
    for (std::uint32_t c = 0; c < p.chains; ++c) {
        // A chain stays within one region: a pointer chase does not
        // hop between data structures of different temperature.
        double roll = ctx.rng.nextDouble();
        std::uint64_t base, span;
        if (roll < p.pHot) {
            base = kHotBase + ctx.tid * kHotStride;
            span = p.hotBytes;
            ++hot;
        } else if (roll < p.pHot + p.pWarm) {
            base = kWarmBase;
            span = p.warmBytes;
            ++warm;
        } else {
            base = kColdBase;
            span = p.coldBytes;
            ++cold;
        }
        if (ctx.liteTiming) {
            // No address materialisation — and no per-hop draws: the
            // fast path charges by shape, so only the per-chain
            // region roll above affects anything downstream. The
            // sampled trajectory is its own deterministic stream, not
            // a draw-for-draw replay of the exact one, and skipping
            // uniform draws leaves the workload statistics unchanged.
            continue;
        }
        std::vector<std::uint64_t> chain;
        chain.reserve(p.chainDepth);
        for (std::uint32_t d = 0; d < p.chainDepth; ++d)
            chain.push_back(base + (ctx.rng.nextBounded(span) & ~63ULL));
        spec.chains.push_back(std::move(chain));
    }
    // The region mix keys the fast-path model's shape table: clusters
    // with equal load counts but different temperatures must not share
    // a latency distribution. Set in both modes so lite charges match
    // full observations.
    spec.shapeHint = hot | warm << 8 | cold << 16;
    if (ctx.liteTiming) {
        spec.liteChains = p.chains;
        spec.liteChainDepth = p.chainDepth;
    }
    return spec;
}

os::Action
WorkerProgram::next(os::ThreadContext &ctx)
{
    const WorkloadParams &p = _sh.params;

    switch (_state) {
      case State::ItemStart: {
        if (_item >= _items) {
            _state = State::Done;
            return os::Action::makeExit();
        }
        // Barrier phases: all workers synchronize every barrierEvery
        // items (same arrival count for everyone, straggler included).
        if (p.barrierEvery > 0 && _sh.barrier != os::kNoSync &&
            _item > 0 && _item % p.barrierEvery == 0 && !_barrierTaken) {
            _barrierTaken = true;
            return os::Action::makeBarrierWait(_sh.barrier);
        }
        _barrierTaken = false;

        _clustersLeft = p.clustersPerItem;
        _state = _clustersLeft > 0 ? State::Clusters : State::LockEnter;
        auto instr = static_cast<std::uint64_t>(
            std::llround(p.computeInstr * 0.5 * _workScale));
        return os::Action::makeCompute(instr, p.l2LoadsPerItem,
                                       p.l3LoadsPerItem);
      }

      case State::Clusters: {
        if (_clustersLeft == 0) {
            _state = State::LockEnter;
            return next(ctx);
        }
        --_clustersLeft;
        return os::Action::makeCluster(makeCluster(ctx));
      }

      case State::LockEnter: {
        if (p.lockProb > 0.0 && p.numLocks > 0 &&
            ctx.rng.nextBool(p.lockProb)) {
            _lockId = static_cast<std::uint32_t>(
                ctx.rng.nextBounded(p.numLocks));
            _state = State::LockHold;
            return os::Action::makeMutexLock(_sh.locks[_lockId]);
        }
        _state = State::Alloc;
        return next(ctx);
    }

      case State::LockHold:
        _state = State::LockExit;
        return os::Action::makeCompute(static_cast<std::uint64_t>(
            std::llround(p.lockHoldInstr * _workScale)));

      case State::LockExit:
        _state = State::Alloc;
        return os::Action::makeMutexUnlock(_sh.locks[_lockId]);

      case State::Alloc: {
        if (_allocLeft == 0)
            _allocLeft = static_cast<std::uint64_t>(
                std::llround(p.allocBytesPerItem * _workScale));
        if (_allocLeft == 0 || p.allocChunkBytes == 0) {
            _allocLeft = 0;
            _state = State::ItemEnd;
            return next(ctx);
        }
        std::uint64_t chunk =
            std::min<std::uint64_t>(_allocLeft, p.allocChunkBytes);
        _allocLeft -= chunk;
        if (_allocLeft == 0)
            _state = State::ItemEnd;
        return os::Action::makeAlloc(chunk);
      }

      case State::ItemEnd: {
        ++_item;
        _state = State::ItemStart;
        auto instr = static_cast<std::uint64_t>(
            std::llround(p.computeInstr * 0.5 * _workScale));
        return os::Action::makeCompute(instr, p.l2LoadsPerItem, 0);
      }

      case State::Done:
        return os::Action::makeExit();
    }
    panic("unreachable worker state");
}

MainProgram::MainProgram(const SharedWorkload &shared)
    : _sh(shared)
{
}

os::Action
MainProgram::next(os::ThreadContext &ctx)
{
    (void)ctx;
    const WorkloadParams &p = _sh.params;
    switch (_state) {
      case State::Setup:
        _state = State::Join;
        return os::Action::makeCompute(p.serialSetupInstr, 8, 2);

      case State::Join:
        if (_joinIndex < _sh.workers.size())
            return os::Action::makeJoin(_sh.workers[_joinIndex++]);
        _state = State::Teardown;
        return os::Action::makeCompute(p.serialTeardownInstr, 8, 2);

      case State::Teardown:
        _state = State::Done;
        return os::Action::makeExit();

      case State::Done:
        return os::Action::makeExit();
    }
    panic("unreachable main state");
}

} // namespace dvfs::wl
