/**
 * @file
 * The DaCapo-like benchmark suite (Table I).
 *
 * Seven multithreaded benchmarks calibrated against Table I of the
 * paper: relative running time at 1 GHz, GC-time share, thread count,
 * and memory/compute character. The knobs are documented per
 * benchmark; see DESIGN.md for the substitution rationale.
 */

#ifndef DVFS_WL_SUITE_HH
#define DVFS_WL_SUITE_HH

#include <vector>

#include "wl/params.hh"

namespace dvfs::wl {

/** All seven benchmarks, in Table I order. */
std::vector<WorkloadParams> dacapoSuite();

/** Look up one benchmark by name; fatal() if unknown. */
WorkloadParams benchmarkByName(const std::string &name);

/** The memory-intensive subset (Figure 6/7 focus). */
std::vector<WorkloadParams> memoryIntensiveSuite();

/**
 * A small, fully parameterised synthetic workload for examples and
 * tests: @p item-level knobs preconfigured for a short run.
 */
WorkloadParams syntheticSmall(std::uint32_t app_threads = 4,
                              std::uint64_t work_items = 200);

} // namespace dvfs::wl

#endif // DVFS_WL_SUITE_HH
