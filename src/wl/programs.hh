/**
 * @file
 * Thread programs realising a WorkloadParams description.
 */

#ifndef DVFS_WL_PROGRAMS_HH
#define DVFS_WL_PROGRAMS_HH

#include <cstdint>
#include <vector>

#include "os/thread.hh"
#include "wl/params.hh"

namespace dvfs::wl {

/**
 * Workload-wide immutable context shared by all of a benchmark's
 * thread programs (created by the builder).
 */
struct SharedWorkload {
    WorkloadParams params;
    std::vector<os::SyncId> locks;       ///< application mutexes
    os::SyncId barrier = os::kNoSync;    ///< phase barrier (if used)
    std::vector<os::ThreadId> workers;   ///< worker tids (for joins)
};

/**
 * One worker: the benchmark's parallel loop.
 */
class WorkerProgram : public os::ThreadProgram
{
  public:
    /**
     * @param shared Workload context.
     * @param index  Worker index (0-based; index 0 may be a straggler).
     */
    WorkerProgram(const SharedWorkload &shared, std::uint32_t index);

    os::Action next(os::ThreadContext &ctx) override;

  private:
    enum class State {
        ItemStart,   ///< barrier check, first compute half
        Clusters,    ///< memory clusters
        LockEnter,   ///< optional critical section: acquire
        LockHold,    ///< work inside the critical section
        LockExit,    ///< release
        Alloc,       ///< allocation chunks
        ItemEnd,     ///< second compute half, advance the loop
        Done,        ///< exit
    };

    /** Build one miss cluster over the hot/warm/cold regions. */
    uarch::MissClusterSpec makeCluster(os::ThreadContext &ctx) const;

    const SharedWorkload &_sh;
    std::uint32_t _index;
    std::uint64_t _items;        ///< total items for this worker
    std::uint64_t _item = 0;     ///< current item
    double _workScale = 1.0;     ///< straggler multiplier on item work

    State _state = State::ItemStart;
    bool _barrierTaken = false;
    std::uint32_t _clustersLeft = 0;
    std::uint64_t _allocLeft = 0;
    std::uint32_t _lockId = 0;
};

/**
 * The main (driver) thread: serial setup, join workers, serial
 * teardown — the DaCapo harness shape.
 */
class MainProgram : public os::ThreadProgram
{
  public:
    explicit MainProgram(const SharedWorkload &shared);

    os::Action next(os::ThreadContext &ctx) override;

  private:
    enum class State { Setup, Join, Teardown, Done };

    const SharedWorkload &_sh;
    State _state = State::Setup;
    std::size_t _joinIndex = 0;
};

} // namespace dvfs::wl

#endif // DVFS_WL_PROGRAMS_HH
