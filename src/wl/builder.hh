/**
 * @file
 * Benchmark instantiation: turn a WorkloadParams into a ready-to-run
 * machine with application threads, the managed runtime, and GC
 * workers.
 */

#ifndef DVFS_WL_BUILDER_HH
#define DVFS_WL_BUILDER_HH

#include <memory>

#include "os/system.hh"
#include "rt/runtime.hh"
#include "wl/programs.hh"

namespace dvfs::wl {

/**
 * A fully wired benchmark instance. The instance owns the machine,
 * the runtime, and the shared workload context; it must outlive the
 * run.
 */
struct BenchInstance {
    std::unique_ptr<os::System> sys;
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<SharedWorkload> shared;
    os::ThreadId mainTid = os::kNoThread;
};

/**
 * Build a benchmark on a fresh machine.
 *
 * @param params Workload description.
 * @param sys_cfg Machine configuration; the core frequency in it is
 *                the run's (initial) frequency.
 */
BenchInstance buildBenchmark(const WorkloadParams &params,
                             const os::SystemConfig &sys_cfg);

/** Default machine configuration (Table II) at the given frequency. */
os::SystemConfig defaultSystemConfig(Frequency core_freq);

} // namespace dvfs::wl

#endif // DVFS_WL_BUILDER_HH
