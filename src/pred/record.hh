/**
 * @file
 * Run records: everything a DVFS predictor may legally observe.
 *
 * The RunRecorder listens to the machine's synchronization trace and
 * builds the paper's epoch decomposition online (Section III-B): every
 * futex sleep/wake, scheduling event, spawn and exit closes the
 * current synchronization epoch. For each closed epoch the recorder
 * captures, per *active* (scheduled) thread, the hardware-counter
 * deltas accumulated during the epoch — precisely the bookkeeping the
 * paper's kernel module would perform by reading the per-core DVFS
 * counters on each intercepted futex call.
 */

#ifndef DVFS_PRED_RECORD_HH
#define DVFS_PRED_RECORD_HH

#include <cstdint>
#include <vector>

#include "os/system.hh"
#include "os/trace.hh"
#include "sim/time.hh"
#include "uarch/perf_counters.hh"

namespace dvfs::pred {

/** Counter deltas of one active thread within one epoch. */
struct EpochThread {
    os::ThreadId tid = os::kNoThread;
    uarch::PerfCounters delta;
};

/** One synchronization epoch. */
struct Epoch {
    Tick start = 0;
    Tick end = 0;

    /** Threads scheduled on cores during this epoch. */
    std::vector<EpochThread> active;

    /** Event kind that closed the epoch. */
    os::SyncEventKind boundary = os::SyncEventKind::RunEnd;

    /**
     * Thread that went to sleep at the closing boundary (Algorithm 1's
     * stall_tid), or kNoThread.
     */
    os::ThreadId stallTid = os::kNoThread;

    Tick duration() const { return end - start; }
};

/** Whole-run facts about one thread. */
struct ThreadSummary {
    os::ThreadId tid = os::kNoThread;
    bool service = false;
    Tick spawnTick = 0;
    Tick exitTick = 0;  ///< end-of-run tick if the thread never exited
    uarch::PerfCounters totals;
};

/** A GC phase boundary (the COOP signal). */
struct GcPhaseMark {
    Tick tick = 0;
    bool begin = false;
};

/** Immutable record of one ground-truth run. */
struct RunRecord {
    Frequency baseFreq;  ///< frequency of the recorded (base) run
    Tick totalTime = 0;
    std::vector<Epoch> epochs;
    std::vector<ThreadSummary> threads;
    std::vector<GcPhaseMark> gcMarks;
    std::vector<os::SyncEvent> events;  ///< raw trace (diagnostics)
};

/**
 * Online builder of a RunRecord.
 *
 * Construct, register with System::addListener, run, then call
 * finalize() once.
 */
class RunRecorder : public os::SyncListener
{
  public:
    /**
     * @param sys          The machine to observe.
     * @param keep_events  Retain the raw event trace (memory-heavy;
     *                     enable for walkthroughs/tests only).
     */
    explicit RunRecorder(os::System &sys, bool keep_events = false);

    void onSyncEvent(const os::SyncEvent &ev, const os::System &sys)
        override;

    /** Build the final record. Call after System::run(). */
    RunRecord finalize();

    /** Epochs closed so far (live view for the energy manager). */
    const std::vector<Epoch> &epochs() const { return _epochs; }

    /** GC phase marks so far. */
    const std::vector<GcPhaseMark> &gcMarks() const { return _gcMarks; }

  private:
    /** Close the epoch ending at @p ev (if it has nonzero length). */
    void closeEpoch(const os::SyncEvent &ev, const os::System &sys);

    os::System &_sys;
    bool _keepEvents;
    Frequency _baseFreq;

    Tick _epochStart = 0;
    std::vector<uarch::PerfCounters> _snapshots;

    std::vector<Epoch> _epochs;
    std::vector<GcPhaseMark> _gcMarks;
    std::vector<os::SyncEvent> _events;
    bool _finalized = false;
};

} // namespace dvfs::pred

#endif // DVFS_PRED_RECORD_HH
