/**
 * @file
 * Per-thread scaling laws: the Stall / Leading Loads / CRIT estimators
 * and the BURST extension.
 *
 * Every whole-application predictor in this library reduces, for one
 * thread over one interval, to the classic two-component law
 * (Section II-A of the paper):
 *
 *     T(f_target) = T_scaling * (f_base / f_target) + T_nonscaling
 *
 * The estimators differ only in how T_nonscaling is read from the
 * hardware counters; BURST adds the store-queue-full time to whichever
 * estimator is in use (Section III-D).
 */

#ifndef DVFS_PRED_SCALING_HH
#define DVFS_PRED_SCALING_HH

#include <algorithm>
#include <string>

#include "sim/time.hh"
#include "uarch/perf_counters.hh"

namespace dvfs::pred {

/** Which hardware counter supplies the non-scaling component. */
enum class BaseEstimator {
    StallTime,    ///< commit-stall cycles [16], [26]
    LeadingLoads, ///< leading-load latency per miss burst [16],[26],[34]
    Crit,         ///< critical dependent-miss path (CRIT) [31]
    Oracle,       ///< simulator's true memory time (analysis only)
};

/** A per-thread scaling model: base estimator +/- BURST. */
struct ModelSpec {
    BaseEstimator base = BaseEstimator::Crit;
    bool burst = false;

    std::string name() const;
};

/** Printable name of a base estimator. */
const char *baseEstimatorName(BaseEstimator e);

/** Non-scaling time of a counter block under @p spec. */
inline Tick
nonscalingTime(const uarch::PerfCounters &c, const ModelSpec &spec)
{
    Tick n = 0;
    switch (spec.base) {
      case BaseEstimator::StallTime:
        n = c.stallNonscaling;
        break;
      case BaseEstimator::LeadingLoads:
        n = c.leadingNonscaling;
        break;
      case BaseEstimator::Crit:
        n = c.critNonscaling;
        break;
      case BaseEstimator::Oracle:
        n = c.trueMemTime;
        break;
    }
    if (spec.burst)
        n += c.sqFullTime;
    return n;
}

/**
 * Predict the duration of an interval measured as @p span at the base
 * frequency, given the counters accumulated within it.
 *
 * @param span  Observed duration at the base frequency.
 * @param c     Counter deltas over the interval.
 * @param spec  Estimator choice.
 * @param ratio f_base / f_target.
 */
inline Tick
predictSpan(Tick span, const uarch::PerfCounters &c, const ModelSpec &spec,
            double ratio)
{
    Tick n = std::min(nonscalingTime(c, spec), span);
    Tick s = span - n;
    return static_cast<Tick>(
               std::llround(static_cast<double>(s) * ratio)) + n;
}

} // namespace dvfs::pred

#endif // DVFS_PRED_SCALING_HH
