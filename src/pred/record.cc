#include "pred/record.hh"

#include "sim/log.hh"

namespace dvfs::pred {

RunRecorder::RunRecorder(os::System &sys, bool keep_events)
    : _sys(sys), _keepEvents(keep_events), _baseFreq(sys.frequency())
{
}

void
RunRecorder::onSyncEvent(const os::SyncEvent &ev, const os::System &sys)
{
    if (_keepEvents)
        _events.push_back(ev);

    switch (ev.kind) {
      case os::SyncEventKind::GcBegin:
        _gcMarks.push_back(GcPhaseMark{ev.tick, true});
        closeEpoch(ev, sys);
        break;
      case os::SyncEventKind::GcEnd:
        _gcMarks.push_back(GcPhaseMark{ev.tick, false});
        closeEpoch(ev, sys);
        break;
      default:
        closeEpoch(ev, sys);
        break;
    }
}

void
RunRecorder::closeEpoch(const os::SyncEvent &ev, const os::System &sys)
{
    const std::size_t n = sys.numThreads();
    if (_snapshots.size() < n)
        _snapshots.resize(n);

    if (ev.tick <= _epochStart)
        return;  // zero-length: deltas carry to the next real epoch

    Epoch ep;
    ep.start = _epochStart;
    ep.end = ev.tick;
    ep.boundary = ev.kind;
    ep.stallTid = (ev.kind == os::SyncEventKind::FutexWait)
                      ? ev.tid
                      : os::kNoThread;
    for (std::size_t tid = 0; tid < n; ++tid) {
        const os::Thread &t = sys.thread(static_cast<os::ThreadId>(tid));
        // The listener runs before the event's state change, so a
        // thread still marked Running was scheduled during the closing
        // epoch. Only counted threads have their snapshot refreshed:
        // counters committed while a thread was briefly on a core
        // between boundaries (same-tick preemptions) must carry
        // forward to the next epoch that observes the thread running,
        // or they would silently vanish from the decomposition.
        if (t.state == os::ThreadState::Running) {
            EpochThread et;
            et.tid = t.id;
            et.delta = t.counters - _snapshots[tid];
            ep.active.push_back(et);
            _snapshots[tid] = t.counters;
        }
    }
    _epochs.push_back(std::move(ep));
    _epochStart = ev.tick;
}

RunRecord
RunRecorder::finalize()
{
    if (_finalized)
        fatal("RunRecorder::finalize called twice");
    _finalized = true;

    RunRecord rec;
    rec.baseFreq = _baseFreq;
    rec.totalTime = _sys.now();
    rec.epochs = std::move(_epochs);
    rec.gcMarks = std::move(_gcMarks);
    rec.events = std::move(_events);

    for (std::size_t i = 0; i < _sys.numThreads(); ++i) {
        const os::Thread &t = _sys.thread(static_cast<os::ThreadId>(i));
        ThreadSummary s;
        s.tid = t.id;
        s.service = t.service;
        s.spawnTick = t.spawnTick;
        s.exitTick = t.exitTick != kTickNever ? t.exitTick : _sys.now();
        s.totals = t.counters;
        rec.threads.push_back(s);
    }
    return rec;
}

} // namespace dvfs::pred
