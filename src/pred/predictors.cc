#include "pred/predictors.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace dvfs::pred {

const char *
baseEstimatorName(BaseEstimator e)
{
    switch (e) {
      case BaseEstimator::StallTime: return "STALL";
      case BaseEstimator::LeadingLoads: return "LL";
      case BaseEstimator::Crit: return "CRIT";
      case BaseEstimator::Oracle: return "ORACLE";
    }
    return "?";
}

std::string
ModelSpec::name() const
{
    std::string n = baseEstimatorName(base);
    if (burst)
        n += "+BURST";
    return n;
}

namespace {

double
freqRatio(Frequency base, Frequency target)
{
    return static_cast<double>(base.toMHz()) /
           static_cast<double>(target.toMHz());
}

} // namespace

// ---------------------------------------------------------------- M+CRIT

std::string
MCritPredictor::name() const
{
    return "M+" + _spec.name();
}

Tick
MCritPredictor::predict(const RunView &run, Frequency target) const
{
    const double ratio = freqRatio(run.baseFreq(), target);
    Tick best = 0;
    for (const ThreadSummary &t : run.threads()) {
        // A thread's "execution time" is its lifetime span: without
        // epoch decomposition, futex wait time is indistinguishable
        // from running time and lands in the scaling component — the
        // naive predictor's central flaw (Section II-C). Threads whose
        // CPU time is a negligible share of their lifetime (the
        // harness driver parked in join, GC workers parked between
        // collections) are pure coordinators; any practical
        // implementation skips them, or the max would degenerate to
        // ratio * total for every application.
        Tick span = t.exitTick - t.spawnTick;
        if (span == 0 ||
            static_cast<double>(t.totals.busyTime) <
                0.1 * static_cast<double>(span)) {
            continue;
        }
        best = std::max(best, predictSpan(span, t.totals, _spec, ratio));
    }
    return best;
}

// ------------------------------------------------------------------ COOP

std::string
CoopPredictor::name() const
{
    return "COOP(" + _spec.name() + ")";
}

Tick
CoopPredictor::predict(const RunView &run, Frequency target) const
{
    const double ratio = freqRatio(run.baseFreq(), target);
    const std::vector<Epoch> &epochs = run.epochs();
    const std::vector<ThreadSummary> &threads = run.threads();

    // Phase boundaries: 0, each GC mark, end of run.
    std::vector<Tick> cuts;
    cuts.push_back(0);
    for (const GcPhaseMark &m : run.gcMarks())
        cuts.push_back(m.tick);
    cuts.push_back(run.totalTime());

    // Per phase, aggregate per-thread counter deltas from the epochs
    // inside the phase, then apply M+CRIT within the phase.
    Tick total = 0;
    std::size_t ei = 0;
    const std::size_t nthreads = threads.size();
    std::vector<Tick> busy(nthreads);
    std::vector<uarch::PerfCounters> acc(nthreads);

    for (std::size_t p = 0; p + 1 < cuts.size(); ++p) {
        const Tick a = cuts[p];
        const Tick b = cuts[p + 1];
        if (b <= a)
            continue;

        std::fill(busy.begin(), busy.end(), 0);
        std::fill(acc.begin(), acc.end(), uarch::PerfCounters{});
        while (ei < epochs.size() && epochs[ei].end <= b) {
            const Epoch &ep = epochs[ei];
            if (ep.start >= a) {
                for (const EpochThread &et : ep.active) {
                    busy[et.tid] += et.delta.busyTime;
                    acc[et.tid] += et.delta;
                }
            }
            ++ei;
        }

        // M+CRIT within the phase: a participating thread's execution
        // time is its overlap with the phase (waits included — COOP
        // fixes only the application/collector alternation, not
        // fine-grained waits). Coordinator threads (negligible CPU
        // share of the phase) are skipped as in MCritPredictor.
        const Tick phase_len = b - a;
        Tick phase_pred = 0;
        for (std::size_t t = 0; t < nthreads; ++t) {
            if (busy[t] == 0)
                continue;
            Tick span = std::min(threads[t].exitTick, b) -
                        std::max(threads[t].spawnTick, a);
            span = std::min(span, phase_len);
            if (static_cast<double>(busy[t]) <
                0.1 * static_cast<double>(span)) {
                continue;
            }
            phase_pred = std::max(
                phase_pred, predictSpan(span, acc[t], _spec, ratio));
        }
        total += phase_pred;
    }
    return total;
}

// ------------------------------------------------------------------- DEP

std::string
DepPredictor::name() const
{
    std::string n = "DEP";
    if (_spec.burst)
        n += "+BURST";
    if (!_acrossEpochs)
        n += "(per-epoch CTP)";
    if (_spec.base != BaseEstimator::Crit)
        n += "[" + std::string(baseEstimatorName(_spec.base)) + "]";
    return n;
}

Tick
DepPredictor::predictEpochRange(const std::vector<Epoch> &epochs,
                                std::size_t first, std::size_t last,
                                double ratio) const
{
    // Delta counters (Algorithm 1): accumulated slack per thread.
    // Keyed sparsely: thread ids are small and dense in practice.
    std::vector<double> delta;
    auto delta_of = [&delta](os::ThreadId tid) -> double & {
        if (tid >= delta.size())
            delta.resize(tid + 1, 0.0);
        return delta[tid];
    };

    double total = 0.0;
    for (std::size_t i = first; i < last && i < epochs.size(); ++i) {
        const Epoch &ep = epochs[i];

        if (ep.active.empty()) {
            // Nothing was scheduled (e.g. everyone asleep around a
            // wake chain): the gap does not scale with frequency.
            total += static_cast<double>(ep.duration());
            continue;
        }

        if (!_acrossEpochs) {
            // Per-epoch CTP: the epoch lasts as long as its slowest
            // active thread, with no memory of earlier epochs.
            Tick crit = 0;
            for (const EpochThread &et : ep.active) {
                crit = std::max(crit, predictSpan(et.delta.busyTime,
                                                  et.delta, _spec, ratio));
            }
            total += static_cast<double>(crit);
            continue;
        }

        // Across-epoch CTP, Algorithm 1 of the paper.
        double epoch_pred = 0.0;
        for (const EpochThread &et : ep.active) {
            double a_t = static_cast<double>(
                predictSpan(et.delta.busyTime, et.delta, _spec, ratio));
            double e_t = a_t - delta_of(et.tid);
            epoch_pred = std::max(epoch_pred, e_t);
        }
        epoch_pred = std::max(epoch_pred, 0.0);
        for (const EpochThread &et : ep.active) {
            double a_t = static_cast<double>(
                predictSpan(et.delta.busyTime, et.delta, _spec, ratio));
            delta_of(et.tid) += epoch_pred - a_t;
        }
        if (ep.stallTid != os::kNoThread)
            delta_of(ep.stallTid) = 0.0;
        total += epoch_pred;
    }
    return static_cast<Tick>(std::llround(total));
}

Tick
DepPredictor::predict(const RunView &run, Frequency target) const
{
    const double ratio = freqRatio(run.baseFreq(), target);
    const std::vector<Epoch> &epochs = run.epochs();
    return predictEpochRange(epochs, 0, epochs.size(), ratio);
}

} // namespace dvfs::pred
