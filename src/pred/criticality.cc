#include "pred/criticality.hh"

#include <algorithm>
#include <unordered_map>

namespace dvfs::pred {

CriticalityStack::CriticalityStack(const RunRecord &rec)
{
    std::unordered_map<os::ThreadId, CriticalityShare> acc;

    for (const Epoch &ep : rec.epochs) {
        if (ep.active.empty()) {
            _idle += ep.duration();
            continue;
        }
        // Integer split with the remainder charged to the first
        // active thread keeps the decomposition exact.
        const Tick share = ep.duration() / ep.active.size();
        Tick remainder = ep.duration() - share * ep.active.size();
        for (const EpochThread &et : ep.active) {
            auto &s = acc[et.tid];
            s.tid = et.tid;
            s.criticality += share + remainder;
            remainder = 0;
            s.activeTime += ep.duration();
        }
    }

    _shares.reserve(acc.size());
    for (auto &[tid, s] : acc) {
        if (rec.totalTime > 0) {
            s.fraction = static_cast<double>(s.criticality) /
                         static_cast<double>(rec.totalTime);
        }
        _shares.push_back(s);
    }
    std::sort(_shares.begin(), _shares.end(),
              [](const CriticalityShare &a, const CriticalityShare &b) {
                  if (a.criticality != b.criticality)
                      return a.criticality > b.criticality;
                  return a.tid < b.tid;
              });
}

os::ThreadId
CriticalityStack::mostCritical() const
{
    return _shares.empty() ? os::kNoThread : _shares.front().tid;
}

Tick
CriticalityStack::accountedTime() const
{
    Tick sum = _idle;
    for (const auto &s : _shares)
        sum += s.criticality;
    return sum;
}

} // namespace dvfs::pred
