#include "pred/registry.hh"

#include "sim/log.hh"

namespace dvfs::pred {

namespace {

std::unique_ptr<Predictor>
makeMCrit(const ModelSpec &spec)
{
    return std::make_unique<MCritPredictor>(spec);
}

std::unique_ptr<Predictor>
makeCoop(const ModelSpec &spec)
{
    return std::make_unique<CoopPredictor>(spec);
}

std::unique_ptr<Predictor>
makeDep(const ModelSpec &spec)
{
    return std::make_unique<DepPredictor>(spec, true);
}

std::unique_ptr<Predictor>
makeDepPerEpoch(const ModelSpec &spec)
{
    return std::make_unique<DepPredictor>(spec, false);
}

} // namespace

PredictorRegistry::PredictorRegistry()
{
    _entries.push_back({"M+CRIT", &makeMCrit});
    _entries.push_back({"COOP", &makeCoop});
    _entries.push_back({"DEP", &makeDep});
    _entries.push_back({"DEP/per-epoch", &makeDepPerEpoch});
}

const PredictorRegistry &
PredictorRegistry::instance()
{
    static const PredictorRegistry reg;
    return reg;
}

bool
PredictorRegistry::has(const std::string &family) const
{
    for (const Entry &e : _entries) {
        if (e.name == family)
            return true;
    }
    return false;
}

std::unique_ptr<Predictor>
PredictorRegistry::make(const std::string &family,
                        const ModelSpec &spec) const
{
    for (const Entry &e : _entries) {
        if (e.name == family)
            return e.factory(spec);
    }
    fatal("unknown predictor family '%s' (known: M+CRIT, COOP, DEP, "
          "DEP/per-epoch)",
          family.c_str());
}

std::vector<std::string>
PredictorRegistry::families() const
{
    std::vector<std::string> names;
    names.reserve(_entries.size());
    for (const Entry &e : _entries)
        names.push_back(e.name);
    return names;
}

std::vector<std::unique_ptr<Predictor>>
PredictorRegistry::figure3Set() const
{
    const ModelSpec crit{BaseEstimator::Crit, false};
    const ModelSpec crit_burst{BaseEstimator::Crit, true};
    std::vector<std::unique_ptr<Predictor>> v;
    for (const char *family : {"M+CRIT", "COOP", "DEP"}) {
        v.push_back(make(family, crit));
        v.push_back(make(family, crit_burst));
    }
    return v;
}

std::vector<std::unique_ptr<Predictor>>
PredictorRegistry::estimatorLadder(const std::string &family) const
{
    std::vector<std::unique_ptr<Predictor>> v;
    for (BaseEstimator base :
         {BaseEstimator::StallTime, BaseEstimator::LeadingLoads,
          BaseEstimator::Crit, BaseEstimator::Oracle}) {
        v.push_back(make(family, ModelSpec{base, false}));
        v.push_back(make(family, ModelSpec{base, true}));
    }
    return v;
}

} // namespace dvfs::pred
