/**
 * @file
 * Whole-application DVFS performance predictors.
 *
 * All predictors implement the same contract: given the RunRecord of a
 * base-frequency run, estimate the total execution time at a target
 * frequency. They differ in decomposition granularity:
 *
 *  - M+CRIT  (Section II-C): one interval per thread — its lifetime;
 *    the application prediction is the slowest thread's prediction.
 *    Wait time lands in the scaling component, the paper's motivating
 *    flaw.
 *  - COOP    (Section II-C): the timeline is cut only at GC phase
 *    boundaries; M+CRIT is applied per phase and the phases are
 *    summed.
 *  - DEP     (Section III): the timeline is cut at every
 *    synchronization epoch; per epoch the critical thread is found via
 *    per-epoch CTP (max) or across-epoch CTP (Algorithm 1, with delta
 *    counters carrying thread slack between epochs).
 *
 * Each takes a ModelSpec, so every combination the paper evaluates
 * (M+CRIT, COOP, DEP, each with and without BURST, and DEP+BURST with
 * per-epoch vs across-epoch CTP) is one constructor call.
 */

#ifndef DVFS_PRED_PREDICTORS_HH
#define DVFS_PRED_PREDICTORS_HH

#include <memory>
#include <string>
#include <vector>

#include "pred/record.hh"
#include "pred/run_view.hh"
#include "pred/scaling.hh"
#include "sim/time.hh"

namespace dvfs::pred {

/**
 * Interface of a whole-run execution-time predictor.
 *
 * Predictors observe a run exclusively through the RunView interface
 * (run_view.hh), so the same instance predicts from a live RunRecord
 * or from a loaded .dvfstrace with bit-identical results.
 */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /** Human-readable name, e.g. "DEP+BURST". */
    virtual std::string name() const = 0;

    /** Estimate total execution time at @p target. */
    virtual Tick predict(const RunView &run, Frequency target) const = 0;

    /** Convenience overload for the live in-memory backend. */
    Tick
    predict(const RunRecord &rec, Frequency target) const
    {
        return predict(RecordView(rec), target);
    }

    /** Signed relative error vs. @p actual: estimated/actual - 1. */
    static double
    relativeError(Tick estimated, Tick actual)
    {
        return static_cast<double>(estimated) /
                   static_cast<double>(actual) -
               1.0;
    }
};

/**
 * M+CRIT: per-thread whole-lifetime scaling, slowest thread wins.
 */
class MCritPredictor : public Predictor
{
  public:
    explicit MCritPredictor(ModelSpec spec) : _spec(spec) {}

    using Predictor::predict;
    std::string name() const override;
    Tick predict(const RunView &run, Frequency target) const override;

  private:
    ModelSpec _spec;
};

/**
 * COOP: M+CRIT applied independently to application and collector
 * phases (cut at the GC begin/end signals), summed.
 */
class CoopPredictor : public Predictor
{
  public:
    explicit CoopPredictor(ModelSpec spec) : _spec(spec) {}

    using Predictor::predict;
    std::string name() const override;
    Tick predict(const RunView &run, Frequency target) const override;

  private:
    ModelSpec _spec;
};

/**
 * DEP: synchronization-epoch decomposition with critical-thread
 * prediction, per-epoch or across-epoch (Algorithm 1).
 */
class DepPredictor : public Predictor
{
  public:
    /**
     * @param spec          Per-thread estimator (CRIT for the paper's
     *                      DEP; +burst for DEP+BURST).
     * @param across_epochs true = across-epoch CTP (Algorithm 1),
     *                      false = per-epoch CTP.
     */
    DepPredictor(ModelSpec spec, bool across_epochs = true)
        : _spec(spec), _acrossEpochs(across_epochs)
    {
    }

    using Predictor::predict;
    std::string name() const override;
    Tick predict(const RunView &run, Frequency target) const override;

    /**
     * Predict the duration of a contiguous span of epochs — the
     * building block shared by predict() and the energy manager's
     * per-quantum estimation.
     *
     * @param epochs Epoch sequence (begin/end iterator-style indices).
     * @param ratio  f_base / f_target.
     */
    Tick predictEpochRange(const std::vector<Epoch> &epochs,
                           std::size_t first, std::size_t last,
                           double ratio) const;

  private:
    ModelSpec _spec;
    bool _acrossEpochs;
};

} // namespace dvfs::pred

#endif // DVFS_PRED_PREDICTORS_HH
