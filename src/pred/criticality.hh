/**
 * @file
 * Criticality stacks from the synchronization-epoch stream.
 *
 * Related work the paper builds on (Section VII-B, Du Bois et al.
 * [13]) identifies critical threads by monitoring synchronization
 * behaviour: each instant of execution is charged to the threads
 * running at that instant, split evenly — a thread that is frequently
 * the *only* runner accumulates criticality fast, threads that always
 * run alongside others share it. Summed per thread, the "criticality
 * stack" decomposes total execution time exactly.
 *
 * The epoch stream DEP already maintains contains exactly the needed
 * information (which threads ran, for how long), so the stack comes
 * for free. It is useful as a diagnostic (which thread should a
 * per-core DVFS policy accelerate?) and is exercised by the
 * criticality example and the ablation benches.
 */

#ifndef DVFS_PRED_CRITICALITY_HH
#define DVFS_PRED_CRITICALITY_HH

#include <cstdint>
#include <vector>

#include "pred/record.hh"

namespace dvfs::pred {

/** One thread's slice of the criticality stack. */
struct CriticalityShare {
    os::ThreadId tid = os::kNoThread;
    /** Accumulated criticality (time units). */
    Tick criticality = 0;
    /** Time the thread was running at all. */
    Tick activeTime = 0;
    /** criticality / total run time. */
    double fraction = 0.0;
};

/**
 * The criticality stack of one run.
 */
class CriticalityStack
{
  public:
    /**
     * Build the stack from a run record.
     *
     * Every epoch's duration is split evenly over its active threads
     * (an epoch with no active thread — everyone asleep — is charged
     * to a synthetic "idle" share, reported separately).
     */
    explicit CriticalityStack(const RunRecord &rec);

    /** Per-thread shares, sorted by descending criticality. */
    const std::vector<CriticalityShare> &shares() const { return _shares; }

    /** Time during which no thread was scheduled. */
    Tick idleTime() const { return _idle; }

    /** The most critical thread (kNoThread for an empty record). */
    os::ThreadId mostCritical() const;

    /**
     * Invariant of the construction: idle + sum of criticality equals
     * the record's total time (up to the final partial epoch).
     */
    Tick accountedTime() const;

  private:
    std::vector<CriticalityShare> _shares;
    Tick _idle = 0;
};

} // namespace dvfs::pred

#endif // DVFS_PRED_CRITICALITY_HH
