/**
 * @file
 * PredictorRegistry: the canonical name -> factory map over ModelSpec.
 *
 * Every harness used to hand-roll its predictor list, so the spelling
 * of a predictor variant ("DEP+BURST", "COOP(CRIT)", ...) was
 * duplicated across fig3, the ablation, the microbenchmarks and the
 * replay tools. The registry is the single source of truth: a *family*
 * name selects the whole-run decomposition (M+CRIT, COOP, DEP,
 * DEP/per-epoch), a ModelSpec selects the per-thread estimator inside
 * it, and the constructed predictor's name() is the canonical spelling
 * used in tables and JSONL output.
 */

#ifndef DVFS_PRED_REGISTRY_HH
#define DVFS_PRED_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "pred/predictors.hh"
#include "pred/scaling.hh"

namespace dvfs::pred {

/**
 * Immutable registry of predictor families.
 *
 * Families registered (canonical names):
 *
 *  - "M+CRIT"        MCritPredictor
 *  - "COOP"          CoopPredictor
 *  - "DEP"           DepPredictor, across-epoch CTP (Algorithm 1)
 *  - "DEP/per-epoch" DepPredictor, per-epoch CTP
 */
class PredictorRegistry
{
  public:
    /** Factory: construct one family member over a ModelSpec. */
    using Factory = std::unique_ptr<Predictor> (*)(const ModelSpec &);

    /** The process-wide registry (built once, never mutated). */
    static const PredictorRegistry &instance();

    /** True if @p family is registered. */
    bool has(const std::string &family) const;

    /**
     * Construct family @p family over @p spec.
     *
     * fatal()s on an unknown family name (user error: the name came
     * from a CLI flag or a config file).
     */
    std::unique_ptr<Predictor> make(const std::string &family,
                                    const ModelSpec &spec) const;

    /** All registered family names, in registration order. */
    std::vector<std::string> families() const;

    /**
     * The Figure 3 zoo: M+CRIT, COOP and DEP, each with CRIT and
     * CRIT+BURST, in the paper's column order.
     */
    std::vector<std::unique_ptr<Predictor>> figure3Set() const;

    /**
     * The estimator-ablation ladder inside one family: @p family over
     * every BaseEstimator x {-BURST, +BURST}, in ablation column
     * order (STALL, STALL+BURST, LL, ..., ORACLE+BURST).
     */
    std::vector<std::unique_ptr<Predictor>>
    estimatorLadder(const std::string &family = "DEP") const;

  private:
    PredictorRegistry();

    struct Entry {
        std::string name;
        Factory factory;
    };
    std::vector<Entry> _entries;
};

} // namespace dvfs::pred

#endif // DVFS_PRED_REGISTRY_HH
