/**
 * @file
 * RunView: the abstract observation surface of one recorded run.
 *
 * DEP+BURST's premise (PAPER.md Section III) is that a predictor needs
 * only the epoch decomposition, per-thread counter deltas, thread
 * summaries and GC phase marks of one base-frequency run — never the
 * machine that produced them. RunView is that contract as an
 * interface: Predictor::predict consumes a RunView, so the predictor
 * layer is decoupled from the simulator's in-memory layout and the
 * same predictor runs unchanged against
 *
 *  - a live in-memory record (RecordView over pred::RunRecord), or
 *  - a run loaded from a .dvfstrace file (trace::LoadedTrace),
 *
 * with bit-identical results: both backends expose the same field
 * values, and the predictors are pure functions of them.
 *
 * The accessors return references to vectors rather than iterator
 * abstractions on purpose: every backend materialises the epoch list
 * anyway, and the energy manager's hot loop (predictEpochRange) indexes
 * it directly.
 */

#ifndef DVFS_PRED_RUN_VIEW_HH
#define DVFS_PRED_RUN_VIEW_HH

#include <vector>

#include "pred/record.hh"
#include "sim/sampling.hh"
#include "sim/time.hh"

namespace dvfs::pred {

/**
 * Everything a DVFS predictor may legally observe about one run.
 *
 * Implementations must return stable references: the vectors live as
 * long as the view does.
 */
class RunView
{
  public:
    virtual ~RunView() = default;

    /** Frequency of the recorded (base) run. */
    virtual Frequency baseFreq() const = 0;

    /** Total wall-clock time of the run, in ticks. */
    virtual Tick totalTime() const = 0;

    /** The synchronization-epoch decomposition, in tick order. */
    virtual const std::vector<Epoch> &epochs() const = 0;

    /** Whole-run per-thread summaries, indexed by ThreadId. */
    virtual const std::vector<ThreadSummary> &threads() const = 0;

    /** GC phase boundaries (the COOP signal), in tick order. */
    virtual const std::vector<GcPhaseMark> &gcMarks() const = 0;
};

/**
 * The live backend: a RunView over an in-memory RunRecord.
 *
 * Non-owning — the record must outlive the view (it is a cheap
 * adapter, constructed at the call site).
 */
class RecordView final : public RunView
{
  public:
    explicit RecordView(const RunRecord &rec) : _rec(&rec) {}

    Frequency baseFreq() const override { return _rec->baseFreq; }
    Tick totalTime() const override { return _rec->totalTime; }

    const std::vector<Epoch> &
    epochs() const override
    {
        return _rec->epochs;
    }

    const std::vector<ThreadSummary> &
    threads() const override
    {
        return _rec->threads;
    }

    const std::vector<GcPhaseMark> &
    gcMarks() const override
    {
        return _rec->gcMarks;
    }

    /** The underlying record. */
    const RunRecord &record() const { return *_rec; }

  private:
    const RunRecord *_rec;
};

/**
 * The sampled backend: a RunView over a record produced by an
 * interval-sampled run (exp::SimMode::Sampled).
 *
 * Sampled runs keep the observation surface well-formed — epochs
 * tile the run, counters are charged from the online model, GC marks
 * come from real (exactly executed) phase transitions — so predictors
 * consume a sampled record through the unchanged RunView contract.
 * This adapter additionally carries the sampling provenance so
 * analysis code (error-bound reports, JSONL exporters) can tell how
 * much of the observed run was fast-forwarded; predictors themselves
 * must not (and cannot, through RunView) depend on it.
 *
 * Non-owning, like RecordView.
 */
class SampledView final : public RunView
{
  public:
    SampledView(const RunRecord &rec, const sim::SampleStats &stats)
        : _rec(&rec), _stats(stats)
    {
    }

    Frequency baseFreq() const override { return _rec->baseFreq; }
    Tick totalTime() const override { return _rec->totalTime; }

    const std::vector<Epoch> &
    epochs() const override
    {
        return _rec->epochs;
    }

    const std::vector<ThreadSummary> &
    threads() const override
    {
        return _rec->threads;
    }

    const std::vector<GcPhaseMark> &
    gcMarks() const override
    {
        return _rec->gcMarks;
    }

    /** The underlying record. */
    const RunRecord &record() const { return *_rec; }

    /** Sampling provenance of the run that produced the record. */
    const sim::SampleStats &sampleStats() const { return _stats; }

    /** Fraction of simulated time spent in detailed windows. */
    double coverage() const { return _stats.coverage(); }

  private:
    const RunRecord *_rec;
    sim::SampleStats _stats;
};

} // namespace dvfs::pred

#endif // DVFS_PRED_RUN_VIEW_HH
