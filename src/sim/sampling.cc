#include "sim/sampling.hh"

#include "sim/log.hh"

namespace dvfs::sim {

SamplingController::SamplingController(EventQueue &eq,
                                       const SamplingConfig &cfg)
    : _eq(eq), _cfg(cfg)
{
    if (_cfg.detailWindow == 0)
        fatal("sampling: detailWindow must be positive (the analytical "
              "model is fitted from detail windows)");
}

void
SamplingController::start()
{
    if (_started)
        fatal("SamplingController::start called twice");
    _started = true;
    _phase = SamplePhase::Detail;
    _phaseStart = _eq.now();
    if (_cfg.gapWindow == 0) {
        // Degenerate schedule: detail forever, bit-identical to exact.
        _phaseEnd = kTickNever;
        return;
    }
    _phaseEnd = _eq.now() + _cfg.startupDetail;
    if (_cfg.startupDetail == 0)
        _phaseEnd = _eq.now() + _cfg.detailWindow;
    _flipEvent = _eq.schedule(_phaseEnd, [this] { flip(); });
}

void
SamplingController::flip()
{
    const Tick now = _eq.now();
    DVFS_ASSERT(now == _phaseEnd, "sampling phase flip at wrong tick");
    if (_phase == SamplePhase::Detail) {
        _stats.detailWindows += 1;
        _stats.detailTicks += now - _phaseStart;
        _phase = SamplePhase::FastForward;
        _phaseStart = now;
        // The hook ages the model first so the drift probe consulted
        // by enterGap() compares the era just promoted against its
        // predecessor — the two freshest detail windows.
        if (_onFlip)
            _onFlip(_phase);
        enterGap(now);
    } else {
        _stats.ffWindows += 1;
        _stats.ffTicks += now - _phaseStart;
        enterDetail(now, _cfg.detailWindow);
        if (_onFlip)
            _onFlip(_phase);
    }
}

void
SamplingController::enterGap(Tick now)
{
    Tick gap = _cfg.gapWindow;
    if (_cfg.maxGapWindow > _cfg.gapWindow) {
        // Deterministic adaptation: the stretch factor is a pure
        // function of the drift sequence the run itself produced.
        // Unknown drift (cold model, nothing promoted) never
        // stretches.
        const std::uint32_t drift = _driftProbe ? _driftProbe() : ~0u;
        if (drift <= _cfg.driftThresholdPermille) {
            const std::uint64_t cap =
                1ull << (SampleStats::kGapStretchBuckets - 1);
            if (_stretch < cap &&
                _cfg.gapWindow * (_stretch * 2) <= _cfg.maxGapWindow)
                _stretch *= 2;
        } else {
            _stretch = 1;
        }
        gap = _cfg.gapWindow * _stretch;
    }
    int bucket = 0;
    for (std::uint64_t s = _stretch; s > 1; s >>= 1)
        bucket += 1;
    _stats.gapStretch[bucket] += 1;
    _phaseEnd = now + gap;
    _flipEvent = _eq.schedule(_phaseEnd, [this] { flip(); });
}

void
SamplingController::enterDetail(Tick now, Tick len)
{
    _phase = SamplePhase::Detail;
    _phaseStart = now;
    _phaseEnd = now + len;
    _flipEvent = _eq.schedule(_phaseEnd, [this] { flip(); });
}

void
SamplingController::forceDetail()
{
    if (!_started || _cfg.gapWindow == 0)
        return;
    const Tick now = _eq.now();
    _stretch = 1;
    if (_phase == SamplePhase::FastForward) {
        // Cut the gap short: account it as a (possibly zero-length)
        // completed gap and open a full detail window here. The
        // pending flip is cancelled eagerly, so the schedule stays a
        // single live boundary event at all times.
        _stats.ffWindows += 1;
        _stats.ffTicks += now - _phaseStart;
        _stats.forcedWindows += 1;
        _eq.cancel(_flipEvent);
        enterDetail(now, _cfg.detailWindow);
        if (_onFlip)
            _onFlip(_phase);
        return;
    }
    // Already detailed: only act when the remaining window is shorter
    // than a full detailWindow (a forced window must fully observe
    // what follows the forcing event).
    const Tick end = now + _cfg.detailWindow;
    if (end <= _phaseEnd)
        return;
    _stats.forcedWindows += 1;
    _eq.cancel(_flipEvent);
    _phaseEnd = end;
    _flipEvent = _eq.schedule(_phaseEnd, [this] { flip(); });
}

SampleStats
SamplingController::finalStats() const
{
    SampleStats s = _stats;
    const Tick partial =
        _eq.now() > _phaseStart ? _eq.now() - _phaseStart : 0;
    if (_phase == SamplePhase::Detail)
        s.detailTicks += partial;
    else
        s.ffTicks += partial;
    return s;
}

} // namespace dvfs::sim
