#include "sim/sampling.hh"

#include "sim/log.hh"

namespace dvfs::sim {

SamplingController::SamplingController(EventQueue &eq,
                                       const SamplingConfig &cfg)
    : _eq(eq), _cfg(cfg)
{
    if (_cfg.detailWindow == 0)
        fatal("sampling: detailWindow must be positive (the analytical "
              "model is fitted from detail windows)");
}

void
SamplingController::start()
{
    if (_started)
        fatal("SamplingController::start called twice");
    _started = true;
    _phase = SamplePhase::Detail;
    _phaseStart = _eq.now();
    if (_cfg.gapWindow == 0) {
        // Degenerate schedule: detail forever, bit-identical to exact.
        _phaseEnd = kTickNever;
        return;
    }
    _phaseEnd = _eq.now() + _cfg.startupDetail;
    if (_cfg.startupDetail == 0)
        _phaseEnd = _eq.now() + _cfg.detailWindow;
    _eq.schedule(_phaseEnd, [this] { flip(); });
}

void
SamplingController::flip()
{
    const Tick now = _eq.now();
    DVFS_ASSERT(now == _phaseEnd, "sampling phase flip at wrong tick");
    if (_phase == SamplePhase::Detail) {
        _stats.detailWindows += 1;
        _stats.detailTicks += now - _phaseStart;
        _phase = SamplePhase::FastForward;
        _phaseEnd = now + _cfg.gapWindow;
    } else {
        _stats.ffWindows += 1;
        _stats.ffTicks += now - _phaseStart;
        _phase = SamplePhase::Detail;
        _phaseEnd = now + _cfg.detailWindow;
    }
    _phaseStart = now;
    _eq.schedule(_phaseEnd, [this] { flip(); });
    if (_onFlip)
        _onFlip(_phase);
}

SampleStats
SamplingController::finalStats() const
{
    SampleStats s = _stats;
    const Tick partial =
        _eq.now() > _phaseStart ? _eq.now() - _phaseStart : 0;
    if (_phase == SamplePhase::Detail)
        s.detailTicks += partial;
    else
        s.ffTicks += partial;
    return s;
}

} // namespace dvfs::sim
