#include "sim/event_queue.hh"

#include <cstring>

#include "sim/log.hh"
#include "sim/profile.hh"

namespace dvfs::sim {

EventQueue::EventQueue()
    : _now(0), _cursor(0), _live(0), _executed(0), _levelMask(0),
      _overflowMin(kTickNever)
{
    std::memset(_occ, 0, sizeof(_occ));
}

EventQueue::~EventQueue()
{
    // A run may end (main exit, requestStop) with events still
    // scheduled; every entry ever allocated is owned by _entries.
    for (Entry *e : _entries)
        delete e;
}

EventQueue::Entry *
EventQueue::allocEntry()
{
    if (!_pool.empty()) {
        Entry *e = _pool.back();
        _pool.pop_back();
        return e;
    }
    Entry *e = new Entry();
    e->slot = static_cast<std::uint32_t>(_entries.size());
    e->gen = 0;
    e->home = kHomeNone;
    _entries.push_back(e);
    return e;
}

void
EventQueue::freeEntry(Entry *e)
{
    e->cb.reset();
    ++e->gen;  // invalidate any EventId still pointing at this entry
    e->home = kHomeNone;
    if (_pool.size() < 4096)
        _pool.push_back(e);
    // Over-full pool: the entry stays parked in _entries and is
    // reclaimed by the destructor.
}

EventQueue::Entry *
EventQueue::resolve(EventId id) const
{
    std::uint64_t slot_plus_one = id >> 32;
    if (slot_plus_one == 0 || slot_plus_one > _entries.size())
        return nullptr;
    Entry *e = _entries[static_cast<std::size_t>(slot_plus_one) - 1];
    if (!e->live || e->gen != static_cast<std::uint32_t>(id))
        return nullptr;
    return e;
}

EventQueue::Entry *
EventQueue::acquire(Tick when)
{
    if (when < _now) {
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    }
    if (when == kTickNever)
        panic("event scheduled at the kTickNever sentinel");
    Entry *e = allocEntry();
    e->when = when;
    e->live = true;
    place(e);
    ++_live;
    return e;
}

void
EventQueue::unlink(Entry *e)
{
    const std::uint16_t home = e->home;
    e->home = kHomeNone;
    if (home == kHomeOverflow) {
        remove(_overflow, e);
        if (_overflow.head == nullptr) {
            _overflowMin = kTickNever;
        } else if (e->when == _overflowMin) {
            // Rare (a cancelled far-future watchdog): rescan for the
            // exact minimum so rebase() keeps landing on a real tick.
            Tick min = kTickNever;
            for (Entry *o = _overflow.head; o; o = o->next)
                min = o->when < min ? o->when : min;
            _overflowMin = min;
        }
        return;
    }
    DVFS_ASSERT(home != kHomeNone, "entry not on any wheel list");
    List &l = _slots[home];
    remove(l, e);
    if (l.head == nullptr) {
        const unsigned level = home >> kLevelBits;
        const unsigned idx = home & (kSlotsPerLevel - 1);
        _occ[level][idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
        const std::uint64_t *w = _occ[level];
        if ((w[0] | w[1] | w[2] | w[3]) == 0)
            _levelMask &= ~(1u << level);
    }
}

bool
EventQueue::cancel(EventId id)
{
    Entry *e = resolve(id);
    if (!e)
        return false;
    unlink(e);
    e->live = false;
    --_live;
    freeEntry(e);
    return true;
}

void
EventQueue::cascade(unsigned level, unsigned idx)
{
    // The caller moved the cursor to this slot's start tick; every
    // entry re-files at a strictly lower level (its tick now agrees
    // with the cursor in all bytes at or above `level`). Walking the
    // FIFO in order keeps same-tick entries in insertion order.
    List &l = _slots[level * kSlotsPerLevel + idx];
    Entry *e = l.head;
    l.head = l.tail = nullptr;
    _occ[level][idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
    const std::uint64_t *w = _occ[level];
    if ((w[0] | w[1] | w[2] | w[3]) == 0)
        _levelMask &= ~(1u << level);
    while (e) {
        Entry *n = e->next;
        place(e);
        e = n;
    }
}

void
EventQueue::rebase()
{
    // Wheel empty, overflow not: jump the cursor straight to the
    // overflow minimum and pull in every overflow entry sharing its
    // top-level epoch. Entries keep FIFO order both in the wheel
    // (placed in list order) and in the residual overflow list, so
    // same-tick insertion order survives the crossing.
    DVFS_ASSERT(_levelMask == 0 && _overflow.head != nullptr,
                "rebase without overflow work");
    _cursor = _overflowMin;
    const Tick epoch = _overflowMin >> kHorizonBits;
    Entry *e = _overflow.head;
    _overflow.head = _overflow.tail = nullptr;
    Tick min = kTickNever;
    while (e) {
        Entry *n = e->next;
        if ((e->when >> kHorizonBits) == epoch) {
            place(e);
        } else {
            append(_overflow, e);
            e->home = kHomeOverflow;
            min = e->when < min ? e->when : min;
        }
        e = n;
    }
    _overflowMin = min;
    DVFS_ASSERT(_levelMask != 0, "rebase produced an empty wheel");
}

EventQueue::List *
EventQueue::advance(Tick limit, Tick *tick_out)
{
    for (;;) {
        if (_levelMask == 0) {
            if (_overflow.head == nullptr || _overflowMin >= limit)
                return nullptr;
            rebase();
            continue;
        }
        const unsigned level =
            static_cast<unsigned>(std::countr_zero(_levelMask));
        const std::uint64_t *w = _occ[level];
        unsigned idx = 0;
        for (unsigned i = 0; i < kOccWords; ++i) {
            if (w[i]) {
                idx = i * 64 +
                      static_cast<unsigned>(std::countr_zero(w[i]));
                break;
            }
        }
        // All occupied slots sit at or after the cursor's position on
        // their level (wheel invariant), and the lowest non-empty
        // level always holds the earliest tick, so the first set bit
        // is the next thing to happen.
        if (level == 0) {
            const Tick t =
                (_cursor & ~Tick{kSlotsPerLevel - 1}) | idx;
            if (t >= limit)
                return nullptr;
            _cursor = t;
            *tick_out = t;
            return &_slots[idx];
        }
        const unsigned shift = level * kLevelBits;
        const Tick span_mask = (Tick{1} << (shift + kLevelBits)) - 1;
        const Tick start =
            (_cursor & ~span_mask) | (Tick{idx} << shift);
        if (start >= limit)
            return nullptr;
        _cursor = start;
        cascade(level, idx);
    }
}

void
EventQueue::dispatch(Entry *e)
{
    unlink(e);
    e->live = false;
    --_live;
    ++_executed;
    // Invoke in place: the entry is already off the wheel, so the
    // callback may schedule (including same-tick) or cancel freely;
    // it just cannot be recycled until it returns.
    e->cb();
    freeEntry(e);
}

bool
EventQueue::runOne()
{
    DVFS_PROFILE_SCOPE(Kernel);
    Tick t;
    List *slot = advance(kTickNever, &t);
    if (!slot)
        return false;
    DVFS_ASSERT(t >= _now, "event time went backwards");
    _now = t;
    dispatch(slot->head);
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    DVFS_PROFILE_SCOPE(Kernel);
    std::uint64_t n = 0;
    for (;;) {
        Tick t;
        List *slot = advance(limit, &t);
        if (!slot) {
            if (_live > 0)
                _now = limit;  // events remain at or beyond the limit
            break;
        }
        DVFS_ASSERT(t >= _now, "event time went backwards");
        _now = t;
        // Batch dispatch: every entry here fires at exactly t, and a
        // callback scheduling at the current tick appends to this very
        // slot, so draining the head until the FIFO empties needs no
        // wheel re-scan between entries.
        while (Entry *e = slot->head) {
            dispatch(e);
            ++n;
        }
    }
    return n;
}

std::uint64_t
EventQueue::run()
{
    DVFS_PROFILE_SCOPE(Kernel);
    std::uint64_t n = 0;
    for (;;) {
        Tick t;
        List *slot = advance(kTickNever, &t);
        if (!slot)
            break;
        DVFS_ASSERT(t >= _now, "event time went backwards");
        _now = t;
        while (Entry *e = slot->head) {
            dispatch(e);
            ++n;
        }
    }
    return n;
}

} // namespace dvfs::sim
