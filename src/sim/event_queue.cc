#include "sim/event_queue.hh"

#include "sim/log.hh"

namespace dvfs::sim {

EventQueue::EventQueue()
    : _now(0), _nextSeq(1), _live(0), _executed(0)
{
}

EventQueue::~EventQueue()
{
    // A run may end (main exit, requestStop) with events still
    // scheduled; reclaim them and the freelist.
    while (!_heap.empty()) {
        delete _heap.top();
        _heap.pop();
    }
    for (Entry *e : _pool)
        delete e;
}

EventQueue::Entry *
EventQueue::allocEntry()
{
    if (!_pool.empty()) {
        Entry *e = _pool.back();
        _pool.pop_back();
        return e;
    }
    return new Entry();
}

void
EventQueue::freeEntry(Entry *e)
{
    e->cb = nullptr;
    if (_pool.size() < 4096) {
        _pool.push_back(e);
    } else {
        delete e;
    }
}

EventId
EventQueue::schedule(Tick when, EventCallback cb)
{
    if (when < _now) {
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    }
    Entry *e = allocEntry();
    e->when = when;
    e->seq = _nextSeq++;
    e->cb = std::move(cb);
    e->cancelled = false;
    _heap.push(e);
    _liveIndex.emplace(e->seq, e);
    ++_live;
    return e->seq;
}

bool
EventQueue::cancel(EventId id)
{
    auto it = _liveIndex.find(id);
    if (it == _liveIndex.end())
        return false;
    it->second->cancelled = true;
    _liveIndex.erase(it);
    --_live;
    return true;
}

EventQueue::Entry *
EventQueue::pop()
{
    while (!_heap.empty()) {
        Entry *e = _heap.top();
        _heap.pop();
        if (e->cancelled) {
            freeEntry(e);
            continue;
        }
        return e;
    }
    return nullptr;
}

bool
EventQueue::runOne()
{
    Entry *e = pop();
    if (!e)
        return false;
    DVFS_ASSERT(e->when >= _now, "event time went backwards");
    _now = e->when;
    _liveIndex.erase(e->seq);
    --_live;
    ++_executed;
    EventCallback cb = std::move(e->cb);
    freeEntry(e);
    cb();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (true) {
        Entry *e = pop();
        if (!e)
            break;
        if (e->when >= limit) {
            // Put it back; it stays scheduled for a later call.
            _heap.push(e);
            _now = limit;
            break;
        }
        _now = e->when;
        _liveIndex.erase(e->seq);
        --_live;
        ++_executed;
        ++n;
        EventCallback cb = std::move(e->cb);
        freeEntry(e);
        cb();
    }
    return n;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (runOne())
        ++n;
    return n;
}

} // namespace dvfs::sim
