/**
 * @file
 * Zero-cost-when-off hot-path wall-time profiler.
 *
 * Scoped RAII markers (DVFS_PROFILE_SCOPE) attribute host wall time to
 * coarse simulator subsystems — event kernel, core model, cache
 * hierarchy, DRAM, OS layer — using *self-time* accounting: entering a
 * nested scope charges the elapsed time since the last boundary to the
 * subsystem being left, so a storeLine that spends most of its time in
 * Dram::write shows up mostly as Dram, not Cache.
 *
 * The whole mechanism compiles away unless DVFS_PROFILE is defined
 * (CMake option of the same name): the macro expands to nothing and
 * the query API returns an all-zero snapshot, so call sites need no
 * conditional compilation. Instrumented builds must stay bit-identical
 * in simulated behaviour — the profiler only ever *reads* the host
 * clock and never feeds anything back into the simulation; CI's
 * profile-smoke job holds it to that by diffing sweep fingerprints
 * against the plain build.
 *
 * Aggregation is thread-friendly for the sweep engine: each thread
 * accumulates into a thread_local block registered with a
 * mutex-protected global list; snapshot() sums all blocks. Workers
 * that exited before the snapshot have already flushed their totals
 * (the blocks are owned by the registry, not the thread).
 */

#ifndef DVFS_SIM_PROFILE_HH
#define DVFS_SIM_PROFILE_HH

#include <array>
#include <cstdint>

namespace dvfs::sim::prof {

/** Subsystems wall time is attributed to. */
enum class Subsystem : unsigned {
    Kernel,  ///< event queue: schedule/dispatch machinery
    Core,    ///< core model: instruction/cluster/burst execution
    Cache,   ///< cache hierarchy walks
    Dram,    ///< DRAM bank/bus model
    Os,      ///< scheduler, futexes, syscalls, managed runtime
    Other,   ///< anything outside an instrumented scope
    Count
};

inline constexpr unsigned kSubsystemCount =
    static_cast<unsigned>(Subsystem::Count);

/** Printable subsystem name ("kernel", "core", ...). */
const char *subsystemName(Subsystem s);

/** Aggregated self-time totals across all threads so far. */
struct Snapshot {
    struct Entry {
        std::uint64_t selfNs = 0;   ///< wall time charged, nanoseconds
        std::uint64_t enters = 0;   ///< scope entries
    };
    std::array<Entry, kSubsystemCount> bySubsystem{};

    std::uint64_t
    totalNs() const
    {
        std::uint64_t t = 0;
        for (const auto &e : bySubsystem)
            t += e.selfNs;
        return t;
    }
};

#ifdef DVFS_PROFILE

/** True when the profiler is compiled in. */
inline constexpr bool kEnabled = true;

namespace detail {

struct ThreadBlock {
    std::uint64_t selfNs[kSubsystemCount] = {};
    std::uint64_t enters[kSubsystemCount] = {};
    unsigned current = static_cast<unsigned>(Subsystem::Other);
    std::uint64_t lastStamp = 0;
};

/** The calling thread's block (registered on first use). */
ThreadBlock &threadBlock();

/** Monotonic host nanoseconds. */
std::uint64_t nowNs();

} // namespace detail

/**
 * RAII subsystem scope. On entry, charges elapsed time to the
 * enclosing subsystem and switches attribution; on exit, charges the
 * inner time and switches back.
 */
class Scope
{
  public:
    explicit Scope(Subsystem s)
    {
        detail::ThreadBlock &b = detail::threadBlock();
        const std::uint64_t t = detail::nowNs();
        b.selfNs[b.current] += t - b.lastStamp;
        b.lastStamp = t;
        _prev = b.current;
        b.current = static_cast<unsigned>(s);
        ++b.enters[b.current];
    }

    ~Scope()
    {
        detail::ThreadBlock &b = detail::threadBlock();
        const std::uint64_t t = detail::nowNs();
        b.selfNs[b.current] += t - b.lastStamp;
        b.lastStamp = t;
        b.current = _prev;
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    unsigned _prev;
};

/** Zero all accumulated totals (all threads registered so far). */
void reset();

/** Sum the totals of every thread that ever entered a scope. */
Snapshot snapshot();

#else // !DVFS_PROFILE

inline constexpr bool kEnabled = false;

class Scope
{
  public:
    explicit Scope(Subsystem) {}
};

inline void reset() {}
inline Snapshot snapshot() { return Snapshot{}; }

#endif // DVFS_PROFILE

} // namespace dvfs::sim::prof

#ifdef DVFS_PROFILE
#define DVFS_PROFILE_CAT2(a, b) a##b
#define DVFS_PROFILE_CAT(a, b) DVFS_PROFILE_CAT2(a, b)
/** Attribute the rest of the enclosing block to subsystem @p s. */
#define DVFS_PROFILE_SCOPE(s)                                           \
    ::dvfs::sim::prof::Scope DVFS_PROFILE_CAT(dvfs_prof_scope_,         \
                                              __LINE__)(                \
        ::dvfs::sim::prof::Subsystem::s)
#else
#define DVFS_PROFILE_SCOPE(s)                                           \
    do {                                                                \
    } while (0)
#endif

#endif // DVFS_SIM_PROFILE_HH
