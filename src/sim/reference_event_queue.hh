/**
 * @file
 * Reference binary-heap event queue.
 *
 * This is the pre-timing-wheel EventQueue implementation, kept verbatim
 * as an executable specification of the dispatch-order contract:
 * earliest tick first, insertion order within a tick. The differential
 * test (tests/test_event_queue_differential.cc) drives a seeded random
 * op stream through this queue and the production timing wheel and
 * requires identical firing sequences.
 *
 * Not used on any simulation path; only tests link against it.
 */

#ifndef DVFS_SIM_REFERENCE_EVENT_QUEUE_HH
#define DVFS_SIM_REFERENCE_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/inline_callback.hh"
#include "sim/time.hh"

namespace dvfs::sim {

/**
 * A deterministic discrete-event queue over a binary heap.
 *
 * Same external contract as EventQueue: events scheduled for the same
 * tick fire in insertion order, events may schedule further events
 * (including at the current tick), scheduling in the past panics.
 * Ordering within a tick is enforced by an explicit insertion sequence
 * number in the heap comparator rather than by construction.
 */
class ReferenceEventQueue
{
  public:
    ReferenceEventQueue();
    ~ReferenceEventQueue();

    ReferenceEventQueue(const ReferenceEventQueue &) = delete;
    ReferenceEventQueue &operator=(const ReferenceEventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p cb to run at absolute time @p when. */
    template <typename F>
    EventId
    schedule(Tick when, F &&cb)
    {
        Entry *e = acquire(when);
        e->cb.emplace(std::forward<F>(cb));
        return makeId(e->slot, e->gen);
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    template <typename F>
    EventId
    scheduleAfter(Tick delay, F &&cb)
    {
        return schedule(_now + delay, std::forward<F>(cb));
    }

    /** Cancel a previously scheduled event (false if already gone). */
    bool cancel(EventId id);

    /** True if no runnable events remain. */
    bool empty() const { return _live == 0; }

    /** Number of pending (non-cancelled) events. */
    std::uint64_t pending() const { return _live; }

    /** Run the next event, advancing time to its tick. */
    bool runOne();

    /**
     * Run events until the queue empties or @p limit is reached.
     * Events at exactly @p limit are not executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run until the queue is empty. @return events executed. */
    std::uint64_t run();

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    /** Number of entries ever allocated (pool high-water mark). */
    std::size_t entriesAllocated() const { return _entries.size(); }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;   ///< insertion order (same-tick FIFO)
        EventCallback cb;
        std::uint32_t slot;  ///< permanent index into _entries
        std::uint32_t gen;   ///< bumped on retire; stale ids mismatch
        bool cancelled;
        bool live;           ///< scheduled and not yet fired/cancelled
    };

    static constexpr EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(slot) + 1) << 32 | gen;
    }

    Entry *acquire(Tick when);

    /** Min-heap ordering: earliest tick first, then insertion order. */
    struct Later {
        bool
        operator()(const Entry *a, const Entry *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    Entry *pop();

    Tick _now;
    std::uint64_t _nextSeq;
    std::uint64_t _live;
    std::uint64_t _executed;
    std::priority_queue<Entry *, std::vector<Entry *>, Later> _heap;
    std::vector<Entry *> _entries;  ///< every entry ever allocated
    std::vector<Entry *> _pool;     ///< freelist of recycled entries

    Entry *allocEntry();
    void freeEntry(Entry *e);

    Entry *resolve(EventId id) const;
};

} // namespace dvfs::sim

#endif // DVFS_SIM_REFERENCE_EVENT_QUEUE_HH
