/**
 * @file
 * Fixed-capacity, allocation-free callable storage for the event
 * kernel.
 *
 * `std::function` type-erases into heap storage as soon as a capture
 * list outgrows its small-buffer optimization (16 bytes in libstdc++),
 * which put one malloc/free pair on the path of nearly every simulated
 * event. InlineCallback trades that generality for a hard capacity:
 * the callable is constructed directly inside the object, a capture
 * list that does not fit is a *compile-time* error (so the capacity
 * contract is enforced at every schedule site, not discovered by a
 * profiler), and move transfers the capture bytes with the callable's
 * own move constructor — never the allocator.
 */

#ifndef DVFS_SIM_INLINE_CALLBACK_HH
#define DVFS_SIM_INLINE_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dvfs::sim {

/**
 * A move-only `void()` callable with @p Capacity bytes of inline
 * storage and no heap fallback.
 *
 * Requirements on the stored callable F, all checked statically:
 *  - sizeof(F) <= Capacity and alignof(F) <= alignof(std::max_align_t)
 *  - nothrow move constructible (moves happen inside noexcept kernel
 *    paths)
 *
 * Invoking an empty callback is undefined (the owner checks with
 * operator bool where emptiness is a legal state).
 */
template <std::size_t Capacity>
class InlineCallback
{
  public:
    InlineCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback>>>
    InlineCallback(F &&f)  // NOLINT: implicit from any callable, like
    {                      // the std::function it replaces
        emplace(std::forward<F>(f));
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    /** Construct a callable in place, replacing any current one. */
    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "callback captures exceed InlineCallback capacity; "
                      "raise the owner's capacity constant "
                      "(see sim/event_queue.hh: kEventCallbackBytes)");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "callback requires extended alignment");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "callback must be nothrow move constructible");
        reset();
        ::new (static_cast<void *>(_buf)) Fn(std::forward<F>(f));
        _ops = &OpsImpl<Fn>::ops;
    }

    /** Invoke. Undefined if empty. */
    void operator()() { _ops->invoke(_buf); }

    /** True if a callable is stored. */
    explicit operator bool() const { return _ops != nullptr; }

    /** Destroy the stored callable (no-op if empty). */
    void
    reset()
    {
        if (_ops) {
            _ops->destroy(_buf);
            _ops = nullptr;
        }
    }

  private:
    struct Ops {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    struct OpsImpl {
        static void
        invoke(void *p)
        {
            (*static_cast<Fn *>(p))();
        }

        static void
        relocate(void *src, void *dst) noexcept
        {
            Fn *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        }

        static void
        destroy(void *p) noexcept
        {
            static_cast<Fn *>(p)->~Fn();
        }

        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    /** Steal @p other's callable; leaves @p other empty. */
    void
    moveFrom(InlineCallback &other) noexcept
    {
        _ops = other._ops;
        if (_ops) {
            _ops->relocate(other._buf, _buf);
            other._ops = nullptr;
        }
    }

    const Ops *_ops = nullptr;
    alignas(alignof(std::max_align_t)) std::byte _buf[Capacity];
};

} // namespace dvfs::sim

#endif // DVFS_SIM_INLINE_CALLBACK_HH
