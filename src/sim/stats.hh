/**
 * @file
 * Lightweight statistics primitives.
 *
 * Components own Counter/Accumulator/Histogram members and register
 * them with a StatRegistry for uniform dumping. Stats never affect
 * simulated behaviour; they exist purely for reporting and tests.
 */

#ifndef DVFS_SIM_STATS_HH
#define DVFS_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dvfs::sim {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() : _value(0) {}

    void inc(std::uint64_t by = 1) { _value += by; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value;
};

/** Accumulates a double-valued quantity with min/max/mean tracking. */
class Accumulator
{
  public:
    Accumulator() { reset(); }

    void add(double v);
    void reset();

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _min; }
    double max() const { return _max; }
    double mean() const { return _count ? _sum / _count : 0.0; }

  private:
    std::uint64_t _count;
    double _sum;
    double _min;
    double _max;
};

/**
 * A fixed-bucket histogram over [0, limit) with an overflow bucket.
 *
 * Bucket boundaries are linear; good enough for latency distributions
 * in reports and tests.
 */
class Histogram
{
  public:
    /**
     * @param buckets Number of linear buckets.
     * @param limit   Upper edge of the last linear bucket.
     */
    Histogram(std::size_t buckets = 32, double limit = 1.0);

    void add(double v);
    void reset();

    std::uint64_t count() const { return _count; }
    std::uint64_t bucket(std::size_t i) const { return _counts.at(i); }
    std::uint64_t overflow() const { return _overflow; }
    std::size_t buckets() const { return _counts.size(); }
    double bucketWidth() const;

    /** Value below which the given fraction of samples fall. */
    double percentile(double p) const;

  private:
    double _limit;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _overflow;
    std::uint64_t _count;
};

/**
 * A named collection of scalar statistics for dumping.
 *
 * Values are captured at dump time through registered getter
 * functions, so the registry never dangles across resets.
 */
class StatRegistry
{
  public:
    using Getter = double (*)(const void *);

    /** Register a named uint64 counter by reference. */
    void addCounter(const std::string &name, const Counter &c);

    /** Register a named double-returning accumulator sum. */
    void addAccumulator(const std::string &name, const Accumulator &a);

    /** Register an arbitrary scalar via object pointer + getter. */
    void addScalar(const std::string &name, const void *obj, Getter get);

    /** Snapshot of all registered values, sorted by name. */
    std::map<std::string, double> snapshot() const;

    /** Write "name value" lines to @p os, sorted by name. */
    void dump(std::ostream &os) const;

  private:
    struct Item {
        std::string name;
        const void *obj;
        Getter get;
    };
    std::vector<Item> _items;
};

} // namespace dvfs::sim

#endif // DVFS_SIM_STATS_HH
