#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dvfs {

namespace {

LogLevel g_level = LogLevel::Warn;

/** Format a va_list into a std::string. */
std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
emit(const char *prefix, const char *fmt, va_list ap)
{
    std::string msg = vstrprintf(fmt, ap);
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info: ", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug: ", fmt, ap);
    va_end(ap);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace dvfs
