#include "sim/rng.hh"

#include <cmath>

namespace dvfs::sim {

namespace {

/** splitmix64 step, used for seeding and stream splitting. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : _s)
        s = splitmix64(sm);
    // xoshiro must not start in the all-zero state.
    if ((_s[0] | _s[1] | _s[2] | _s[3]) == 0)
        _s[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;
    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // 128-bit multiply-shift; negligible, deterministic bias.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextExp(double mean)
{
    double u = nextDouble();
    if (u < 1e-12)
        u = 1e-12;
    return -mean * std::log(u);
}

Rng
Rng::split(std::uint64_t salt)
{
    std::uint64_t sm = _s[0] ^ rotl(salt, 13) ^ (_s[3] + salt);
    return Rng(splitmix64(sm));
}

} // namespace dvfs::sim
