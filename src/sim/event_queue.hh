/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The event queue is the single source of simulated time. Components
 * schedule callbacks at absolute ticks; the kernel dispatches them in
 * (tick, insertion-order) order, which makes simulations bitwise
 * deterministic for a given workload and configuration.
 */

#ifndef DVFS_SIM_EVENT_QUEUE_HH
#define DVFS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_callback.hh"
#include "sim/time.hh"

namespace dvfs::sim {

/**
 * Inline storage for an event callback's captures.
 *
 * Sized for the largest capture list in the tree: the mutex-unlock
 * continuation in os/system.cc captures {System*, Thread*, MutexObj*,
 * Tick, PerfCounters} = 152 bytes. A schedule site whose captures
 * outgrow this fails to compile (see InlineCallback::emplace), at
 * which point either shrink the capture or raise this constant —
 * every pooled event entry carries this many bytes.
 */
inline constexpr std::size_t kEventCallbackBytes = 160;

/** Callback type executed when an event fires (allocation-free). */
using EventCallback = InlineCallback<kEventCallbackBytes>;

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/** Sentinel for "no event". */
constexpr EventId kNoEvent = 0;

/**
 * A deterministic discrete-event queue.
 *
 * Events scheduled for the same tick fire in insertion order. Events
 * may schedule further events, including at the current tick (they run
 * after all previously-inserted same-tick events). Scheduling in the
 * past is a simulator bug and panics.
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * The callable is constructed directly into the pooled entry's
     * inline storage; captures larger than kEventCallbackBytes are a
     * compile-time error.
     *
     * @param when Absolute tick, must be >= now().
     * @param cb   Callback to execute.
     * @return Handle usable with cancel().
     */
    template <typename F>
    EventId
    schedule(Tick when, F &&cb)
    {
        Entry *e = acquire(when);
        e->cb.emplace(std::forward<F>(cb));
        return makeId(e->slot, e->gen);
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    template <typename F>
    EventId
    scheduleAfter(Tick delay, F &&cb)
    {
        return schedule(_now + delay, std::forward<F>(cb));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an event that already fired (or was already cancelled)
     * is a no-op and returns false.
     */
    bool cancel(EventId id);

    /** True if no runnable events remain. */
    bool empty() const { return _live == 0; }

    /** Number of pending (non-cancelled) events. */
    std::uint64_t pending() const { return _live; }

    /**
     * Run the next event, advancing time to its tick.
     *
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue empties or @p limit is reached.
     *
     * Events scheduled at exactly @p limit are not executed; time
     * stops at the last executed event (or @p limit if provided and
     * events remain beyond it).
     *
     * @return Number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run until the queue is empty. @return events executed. */
    std::uint64_t run();

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Number of entries ever allocated (pool high-water mark). Stays
     * flat in steady state: retired entries are recycled, so this only
     * grows with the peak number of simultaneously pending events.
     */
    std::size_t entriesAllocated() const { return _entries.size(); }

  private:
    /**
     * Entries are pooled and identified by a permanent slot plus a
     * per-reuse generation; an EventId packs (slot+1, generation), so
     * cancel() is two array reads instead of a hash lookup and stale
     * handles (fired, cancelled, or from a recycled entry) are
     * rejected by the generation check. The callback's captures live
     * inside the entry (EventCallback is inline storage), so a
     * schedule/fire cycle through the pool performs zero heap
     * allocations.
     */
    struct Entry {
        Tick when;
        std::uint64_t seq;   ///< insertion order (same-tick FIFO)
        EventCallback cb;
        std::uint32_t slot;  ///< permanent index into _entries
        std::uint32_t gen;   ///< bumped on retire; stale ids mismatch
        bool cancelled;
        bool live;           ///< scheduled and not yet fired/cancelled
    };

    /** Pack an entry's identity into an opaque EventId (never 0). */
    static constexpr EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(slot) + 1) << 32 | gen;
    }

    /**
     * Validate @p when, pull an entry from the pool and enqueue it.
     * The caller fills in the callback.
     */
    Entry *acquire(Tick when);

    /** Min-heap ordering: earliest tick first, then insertion order. */
    struct Later {
        bool
        operator()(const Entry *a, const Entry *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    Entry *pop();

    Tick _now;
    std::uint64_t _nextSeq;
    std::uint64_t _live;
    std::uint64_t _executed;
    std::priority_queue<Entry *, std::vector<Entry *>, Later> _heap;
    std::vector<Entry *> _entries;  ///< every entry ever allocated
    std::vector<Entry *> _pool;     ///< freelist of recycled entries

    Entry *allocEntry();
    void freeEntry(Entry *e);

    /** Resolve an EventId to its live entry, or nullptr if stale. */
    Entry *resolve(EventId id) const;
};

} // namespace dvfs::sim

#endif // DVFS_SIM_EVENT_QUEUE_HH
