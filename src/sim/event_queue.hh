/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The event queue is the single source of simulated time. Components
 * schedule callbacks at absolute ticks; the kernel dispatches them in
 * (tick, insertion-order) order, which makes simulations bitwise
 * deterministic for a given workload and configuration.
 *
 * The implementation is a hierarchical timing wheel (DESIGN.md §9):
 * six levels of 256 slots indexed by successive bytes of the event
 * tick, a far-future overflow FIFO beyond the 48-bit horizon, and an
 * intrusive doubly-linked FIFO of pooled entries per slot. Schedule,
 * cancel and dispatch are all O(1) amortized; the deterministic
 * ordering contract — earliest tick first, insertion order within a
 * tick — holds by construction because a tick maps to exactly one
 * slot and slot lists are append-only FIFOs. The pre-wheel binary
 * heap survives as ReferenceEventQueue for differential testing.
 */

#ifndef DVFS_SIM_EVENT_QUEUE_HH
#define DVFS_SIM_EVENT_QUEUE_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/inline_callback.hh"
#include "sim/time.hh"

namespace dvfs::sim {

/**
 * Inline storage for an event callback's captures.
 *
 * Sized for the largest capture list in the tree: the mutex-unlock
 * continuation in os/system.cc captures {System*, Thread*, MutexObj*,
 * Tick, PerfCounters} = 152 bytes. A schedule site whose captures
 * outgrow this fails to compile (see InlineCallback::emplace), at
 * which point either shrink the capture or raise this constant —
 * every pooled event entry carries this many bytes.
 */
inline constexpr std::size_t kEventCallbackBytes = 160;

/** Callback type executed when an event fires (allocation-free). */
using EventCallback = InlineCallback<kEventCallbackBytes>;

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/** Sentinel for "no event". */
constexpr EventId kNoEvent = 0;

/**
 * A deterministic discrete-event queue over a hierarchical timing
 * wheel.
 *
 * Events scheduled for the same tick fire in insertion order. Events
 * may schedule further events, including at the current tick (they run
 * after all previously-inserted same-tick events). Scheduling in the
 * past is a simulator bug and panics; so is scheduling at the
 * kTickNever sentinel, which the wheel reserves as "no deadline".
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * The callable is constructed directly into the pooled entry's
     * inline storage; captures larger than kEventCallbackBytes are a
     * compile-time error.
     *
     * @param when Absolute tick, must be >= now() and != kTickNever.
     * @param cb   Callback to execute.
     * @return Handle usable with cancel().
     */
    template <typename F>
    EventId
    schedule(Tick when, F &&cb)
    {
        Entry *e = acquire(when);
        e->cb.emplace(std::forward<F>(cb));
        return makeId(e->slot, e->gen);
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    template <typename F>
    EventId
    scheduleAfter(Tick delay, F &&cb)
    {
        return schedule(_now + delay, std::forward<F>(cb));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an event that already fired (or was already cancelled)
     * is a no-op and returns false. Cancellation is eager: the entry is
     * unlinked from its wheel slot (or the overflow list) and recycled
     * immediately, so parked far-future timers never pin pool entries.
     */
    bool cancel(EventId id);

    /** True if no runnable events remain. */
    bool empty() const { return _live == 0; }

    /** Number of pending (non-cancelled) events. */
    std::uint64_t pending() const { return _live; }

    /**
     * Run the next event, advancing time to its tick.
     *
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue empties or @p limit is reached.
     *
     * Events scheduled at exactly @p limit are not executed; time
     * stops at the last executed event (or @p limit if provided and
     * events remain beyond it). Same-tick events are batch-dispatched:
     * a slot's FIFO is drained without re-consulting the wheel between
     * entries.
     *
     * @return Number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run until the queue is empty. @return events executed. */
    std::uint64_t run();

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Number of entries ever allocated (pool high-water mark). Stays
     * flat in steady state: retired entries are recycled, so this only
     * grows with the peak number of simultaneously pending events.
     */
    std::size_t entriesAllocated() const { return _entries.size(); }

  private:
    /// @name Wheel geometry
    /// @{
    static constexpr unsigned kLevelBits = 8;
    static constexpr unsigned kSlotsPerLevel = 1u << kLevelBits;  // 256
    static constexpr unsigned kLevels = 6;
    /** Ticks addressable by the wheel before the overflow list. */
    static constexpr unsigned kHorizonBits = kLevels * kLevelBits; // 48
    static constexpr unsigned kOccWords = kSlotsPerLevel / 64;     // 4
    /// @}

    /**
     * Entries are pooled and identified by a permanent slot plus a
     * per-reuse generation; an EventId packs (slot+1, generation), so
     * cancel() is two array reads instead of a hash lookup and stale
     * handles (fired, cancelled, or from a recycled entry) are
     * rejected by the generation check. The callback's captures live
     * inside the entry (EventCallback is inline storage), so a
     * schedule/fire cycle through the pool performs zero heap
     * allocations. next/prev link the entry into its wheel slot's
     * FIFO (or the overflow list); `home` records which list so
     * cancel can unlink eagerly.
     */
    struct Entry {
        Tick when;
        Entry *next;
        Entry *prev;
        EventCallback cb;
        std::uint32_t slot;  ///< permanent index into _entries
        std::uint32_t gen;   ///< bumped on retire; stale ids mismatch
        std::uint16_t home;  ///< level<<8|idx, kHomeOverflow, kHomeNone
        bool live;           ///< scheduled and not yet fired/cancelled
    };

    static constexpr std::uint16_t kHomeOverflow = 0xFFFF;
    static constexpr std::uint16_t kHomeNone = 0xFFFE;

    /** Intrusive FIFO: append at tail, dispatch from head. */
    struct List {
        Entry *head = nullptr;
        Entry *tail = nullptr;
    };

    /** Pack an entry's identity into an opaque EventId (never 0). */
    static constexpr EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(slot) + 1) << 32 | gen;
    }

    static void
    append(List &l, Entry *e)
    {
        e->next = nullptr;
        e->prev = l.tail;
        if (l.tail)
            l.tail->next = e;
        else
            l.head = e;
        l.tail = e;
    }

    static void
    remove(List &l, Entry *e)
    {
        if (e->prev)
            e->prev->next = e->next;
        else
            l.head = e->next;
        if (e->next)
            e->next->prev = e->prev;
        else
            l.tail = e->prev;
    }

    /**
     * File @p e into the wheel (or overflow) by its tick, relative to
     * the wheel cursor. The level is the highest byte in which the
     * tick differs from the cursor; the slot within the level is that
     * byte of the tick. Requires e->when >= _cursor.
     */
    void
    place(Entry *e)
    {
        const Tick diff = e->when ^ _cursor;
        if (diff >> kHorizonBits) {
            // Beyond the 48-bit horizon: park in the overflow FIFO.
            if (_overflow.head == nullptr || e->when < _overflowMin)
                _overflowMin = e->when;
            append(_overflow, e);
            e->home = kHomeOverflow;
            return;
        }
        const unsigned level =
            diff ? (63u - static_cast<unsigned>(std::countl_zero(diff))) /
                       kLevelBits
                 : 0u;
        const unsigned idx = static_cast<unsigned>(
            (e->when >> (level * kLevelBits)) & (kSlotsPerLevel - 1));
        const unsigned s = level * kSlotsPerLevel + idx;
        append(_slots[s], e);
        e->home = static_cast<std::uint16_t>(s);
        _occ[level][idx / 64] |= std::uint64_t{1} << (idx % 64);
        _levelMask |= 1u << level;
    }

    /** Unlink @p e from whichever list `home` says it is on. */
    void unlink(Entry *e);

    /**
     * Validate @p when, pull an entry from the pool and file it into
     * the wheel. The caller fills in the callback.
     */
    Entry *acquire(Tick when);

    /**
     * Advance the cursor to the earliest pending tick, cascading
     * upper-level slots and rebasing from the overflow list as
     * needed. On success sets *tick_out (< @p limit), points the
     * cursor at it, and returns the level-0 slot list holding every
     * event at that tick. Returns nullptr if the queue is empty or
     * the earliest event is at or beyond @p limit (cursor untouched
     * past that point, so later schedules stay well-formed).
     */
    List *advance(Tick limit, Tick *tick_out);

    /** Re-place every entry of an upper-level slot after the cursor
     *  moved to the slot's start (FIFO order preserved). */
    void cascade(unsigned level, unsigned idx);

    /** Move the cursor to the overflow minimum and drain every
     *  overflow entry in the cursor's new top-level epoch. */
    void rebase();

    /** Fire @p e (head of the current level-0 slot) in place. */
    void dispatch(Entry *e);

    Tick _now;     ///< reported simulated time
    /**
     * Wheel placement reference. Invariants: _cursor <= _now; every
     * wheel entry's tick shares the cursor's top 16 bits and is >=
     * _cursor; every overflow entry's tick has a strictly greater
     * top-16-bit epoch. Unlike _now, the cursor never moves past an
     * undispatched event, so slot indices computed from it always
     * land at or after it on every level.
     */
    Tick _cursor;
    std::uint64_t _live;
    std::uint64_t _executed;

    List _slots[kLevels * kSlotsPerLevel];
    std::uint64_t _occ[kLevels][kOccWords];  ///< slot occupancy bitmaps
    std::uint32_t _levelMask;                ///< bit l: level l non-empty
    List _overflow;
    Tick _overflowMin;  ///< exact min tick on _overflow when non-empty

    std::vector<Entry *> _entries;  ///< every entry ever allocated
    std::vector<Entry *> _pool;     ///< freelist of recycled entries

    Entry *allocEntry();
    void freeEntry(Entry *e);

    /** Resolve an EventId to its live entry, or nullptr if stale. */
    Entry *resolve(EventId id) const;
};

} // namespace dvfs::sim

#endif // DVFS_SIM_EVENT_QUEUE_HH
