/**
 * @file
 * Interval-sampling controller: detail <-> fast-forward phase driver.
 *
 * Sampled simulation alternates between *detail* windows, executed
 * with the full cycle-accurate machinery, and *fast-forward* gaps, in
 * which timed actions are charged from an analytical model fitted
 * online during the detail windows (see uarch/fastpath.hh and the
 * batching executor in os/system.cc). The controller owns only the
 * phase schedule: window boundaries are fixed simulated-time marks
 * scheduled on the event queue, so the phase a given tick falls into
 * is a pure function of the sampling configuration — never of host
 * scheduling — and sampled runs are exactly as deterministic and
 * worker-count-independent as exact runs (DESIGN.md section 11).
 */

#ifndef DVFS_SIM_SAMPLING_HH
#define DVFS_SIM_SAMPLING_HH

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace dvfs::sim {

/** Window schedule of a sampled run. */
struct SamplingConfig {
    /**
     * Initial detailed period before the first fast-forward gap.
     * Covers the serial setup phase and warms caches and the
     * analytical model. 0 means "start alternating immediately".
     */
    Tick startupDetail = 60 * kTicksPerUs;

    /** Length of each periodic detail window. Must be positive. */
    Tick detailWindow = 30 * kTicksPerUs;

    /**
     * Length of each fast-forwarded gap between detail windows.
     * 0 disables fast-forwarding entirely: the run stays in detail
     * phase forever and is bit-identical to an exact run.
     *
     * The defaults (60us startup, 30us detail / 980us gap, ~3%
     * detail coverage) are the measured sweet spot on the fig3 grid:
     * >= 10x per-cell speedup at <= 5% mean slowdown-prediction
     * error (see bench/fig9_sampling_accuracy.cc).
     */
    Tick gapWindow = 980 * kTicksPerUs;
};

/** Execution fidelity of the current instant. */
enum class SamplePhase {
    Detail,      ///< cycle-accurate execution (model observation)
    FastForward, ///< analytical charging (model application)
};

/** Accounting of one sampled run, reported with the run output. */
struct SampleStats {
    std::uint64_t detailWindows = 0; ///< completed detail windows
    std::uint64_t ffWindows = 0;     ///< completed fast-forward gaps
    Tick detailTicks = 0;            ///< simulated time spent in detail
    Tick ffTicks = 0;                ///< simulated time fast-forwarded
    std::uint64_t detailActions = 0; ///< timed actions executed in detail
    std::uint64_t ffActions = 0;     ///< timed actions charged analytically
    std::uint64_t ffCommits = 0;     ///< lump-commit events (batches)
    std::uint64_t ffFallbacks = 0;   ///< cold-model naive charges

    /** Fraction of simulated time spent in detail windows. */
    double
    coverage() const
    {
        Tick total = detailTicks + ffTicks;
        return total == 0
                   ? 1.0
                   : static_cast<double>(detailTicks)
                         / static_cast<double>(total);
    }
};

/**
 * Drives detail <-> fast-forward transitions on the timing wheel.
 *
 * The schedule is purely time-based: [0, startupDetail) is detailed,
 * then gaps of gapWindow and detail windows of detailWindow alternate
 * forever. Phase-flip events are scheduled before any same-tick lump
 * commit (they are inserted when the previous phase begins), so an
 * action starting at a boundary tick is charged under the new phase's
 * rules.
 */
class SamplingController
{
  public:
    SamplingController(EventQueue &eq, const SamplingConfig &cfg);

    /** Begin the schedule. Call once, before the run's first event. */
    void start();

    /** Phase at the current tick. */
    SamplePhase phase() const { return _phase; }

    /** True while fast-forwarding. */
    bool fastForward() const
    {
        return _phase == SamplePhase::FastForward;
    }

    /**
     * Tick at which the current phase ends (kTickNever when the run
     * stays in detail forever). Lump construction must not cross it.
     */
    Tick phaseEnd() const { return _phaseEnd; }

    const SamplingConfig &config() const { return _cfg; }

    /**
     * Hook invoked at every phase flip, after the phase changed, with
     * the phase just entered. The executor uses it to age the
     * analytical model at each detail -> fast-forward boundary.
     */
    void
    onFlip(std::function<void(SamplePhase)> hook)
    {
        _onFlip = std::move(hook);
    }

    /** Mutable counters, bumped by the executor. */
    SampleStats &stats() { return _stats; }

    /**
     * Stats with the in-progress phase folded in up to the current
     * tick (for end-of-run reporting).
     */
    SampleStats finalStats() const;

  private:
    /** Boundary event: close the current phase, open the next. */
    void flip();

    EventQueue &_eq;
    SamplingConfig _cfg;
    SamplePhase _phase = SamplePhase::Detail;
    Tick _phaseStart = 0;
    Tick _phaseEnd = kTickNever;
    bool _started = false;
    SampleStats _stats;
    std::function<void(SamplePhase)> _onFlip;
};

} // namespace dvfs::sim

#endif // DVFS_SIM_SAMPLING_HH
