/**
 * @file
 * Interval-sampling controller: detail <-> fast-forward phase driver.
 *
 * Sampled simulation alternates between *detail* windows, executed
 * with the full cycle-accurate machinery, and *fast-forward* gaps, in
 * which timed actions are charged from an analytical model fitted
 * online during the detail windows (see uarch/fastpath.hh and the
 * batching executor in os/system.cc). The controller owns only the
 * phase schedule: window boundaries are simulated-time marks scheduled
 * on the event queue, so the phase a given tick falls into is a pure
 * function of the sampling configuration and of the run's own observed
 * integer state — never of host scheduling — and sampled runs are
 * exactly as deterministic and worker-count-independent as exact runs
 * (DESIGN.md section 11).
 *
 * Two refinements on top of the fixed cadence:
 *
 *  - *Forced detail*: forceDetail() cuts a fast-forward gap short (or
 *    extends the current detail window) so that DVFS transitions and —
 *    when forceDetailAtGc is set — GC boundaries are always observed
 *    by the cycle-accurate path, never synthesized from stale eras.
 *  - *Adaptive placement*: when maxGapWindow raises the cap above
 *    gapWindow, each detail -> gap flip consults the model's fitted-
 *    term drift (an integer permille, see FastPathModel::
 *    lastDriftPermille) and doubles the upcoming gap while consecutive
 *    windows agree, shrinking back to the base gap on drift, phase
 *    change or any forced window — long gaps in steady phases, full
 *    detail around transitions.
 */

#ifndef DVFS_SIM_SAMPLING_HH
#define DVFS_SIM_SAMPLING_HH

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace dvfs::sim {

/** Window schedule of a sampled run. */
struct SamplingConfig {
    /**
     * Initial detailed period before the first fast-forward gap.
     * Covers the serial setup phase and warms caches and the
     * analytical model. 0 means "start alternating immediately".
     */
    Tick startupDetail = 60 * kTicksPerUs;

    /** Length of each periodic detail window. Must be positive. */
    Tick detailWindow = 30 * kTicksPerUs;

    /**
     * Length of each fast-forwarded gap between detail windows.
     * 0 disables fast-forwarding entirely: the run stays in detail
     * phase forever and is bit-identical to an exact run.
     *
     * The defaults (60us startup, 30us detail / 980us gap, ~3%
     * detail coverage) are the measured sweet spot on the fig3 grid:
     * >= 10x per-cell speedup at <= 5% mean slowdown-prediction
     * error (see bench/fig9_sampling_accuracy.cc).
     */
    Tick gapWindow = 980 * kTicksPerUs;

    /**
     * Adaptive-placement gap cap. 0 (or anything <= gapWindow) keeps
     * the gap fixed at gapWindow — the pre-adaptive schedule. When
     * larger, gaps double from gapWindow up to this cap while the
     * fitted model reports steady terms, and snap back to gapWindow
     * on drift or a forced window.
     */
    Tick maxGapWindow = 0;

    /**
     * Fitted-term drift (permille, see FastPathModel::
     * lastDriftPermille) at or below which consecutive detail windows
     * count as "steady" for gap stretching.
     */
    std::uint32_t driftThresholdPermille = 50;

    /**
     * Force a detail window at every GC phase boundary (GcBegin /
     * GcEnd). Managed runs set this so the collector activity the
     * energy manager's COOP signal keys on is always observed; fixed
     * sampled runs leave it off (their golden schedule predates it).
     */
    bool forceDetailAtGc = false;
};

/** Execution fidelity of the current instant. */
enum class SamplePhase {
    Detail,      ///< cycle-accurate execution (model observation)
    FastForward, ///< analytical charging (model application)
};

/** Accounting of one sampled run, reported with the run output. */
struct SampleStats {
    /** Buckets of the gap-stretch histogram (powers of two). */
    static constexpr int kGapStretchBuckets = 8;

    std::uint64_t detailWindows = 0; ///< completed detail windows
    std::uint64_t ffWindows = 0;     ///< completed fast-forward gaps
    Tick detailTicks = 0;            ///< simulated time spent in detail
    Tick ffTicks = 0;                ///< simulated time fast-forwarded
    std::uint64_t detailActions = 0; ///< timed actions executed in detail
    std::uint64_t ffActions = 0;     ///< timed actions charged analytically
    std::uint64_t ffCommits = 0;     ///< lump-commit events (batches)
    std::uint64_t ffFallbacks = 0;   ///< cold-model naive charges
    std::uint64_t forcedWindows = 0; ///< forceDetail calls that acted
    std::uint64_t transitions = 0;   ///< DVFS transitions observed

    /**
     * Gaps entered at stretch factor 2^k (bucket k). Bucket 0 counts
     * base-length gaps; all gaps of a non-adaptive run land there.
     */
    std::uint64_t gapStretch[kGapStretchBuckets] = {};

    /** Fraction of simulated time spent in detail windows. */
    double
    coverage() const
    {
        Tick total = detailTicks + ffTicks;
        return total == 0
                   ? 1.0
                   : static_cast<double>(detailTicks)
                         / static_cast<double>(total);
    }

    /** Fold @p other's counters into this (sweep aggregation). */
    void
    accumulate(const SampleStats &other)
    {
        detailWindows += other.detailWindows;
        ffWindows += other.ffWindows;
        detailTicks += other.detailTicks;
        ffTicks += other.ffTicks;
        detailActions += other.detailActions;
        ffActions += other.ffActions;
        ffCommits += other.ffCommits;
        ffFallbacks += other.ffFallbacks;
        forcedWindows += other.forcedWindows;
        transitions += other.transitions;
        for (int i = 0; i < kGapStretchBuckets; ++i)
            gapStretch[i] += other.gapStretch[i];
    }
};

/**
 * Drives detail <-> fast-forward transitions on the timing wheel.
 *
 * The schedule is time-based: [0, startupDetail) is detailed, then
 * gaps and detail windows alternate, with gap lengths adapted from
 * the model drift probe and cut short by forceDetail(). Phase-flip
 * events are scheduled before any same-tick lump commit (they are
 * inserted when the previous phase begins), so an action starting at
 * a boundary tick is charged under the new phase's rules.
 */
class SamplingController
{
  public:
    SamplingController(EventQueue &eq, const SamplingConfig &cfg);

    /** Begin the schedule. Call once, before the run's first event. */
    void start();

    /** Phase at the current tick. */
    SamplePhase phase() const { return _phase; }

    /** True while fast-forwarding. */
    bool fastForward() const
    {
        return _phase == SamplePhase::FastForward;
    }

    /**
     * Tick at which the current phase ends (kTickNever when the run
     * stays in detail forever). Lump construction must not cross it.
     */
    Tick phaseEnd() const { return _phaseEnd; }

    const SamplingConfig &config() const { return _cfg; }

    /**
     * Force the cycle-accurate path around the current tick: a
     * fast-forward gap is cut short (flipping to detail immediately),
     * a running detail window is extended so at least a full
     * detailWindow still lies ahead. Either way the adaptive stretch
     * resets to the base gap. No-op when gapWindow == 0 (the run is
     * already all-detail) or before start().
     */
    void forceDetail();

    /**
     * Record an observed DVFS transition and force a detail window
     * around it (the fitted eras of the old operating point cannot
     * charge the new one soundly).
     */
    void
    noteTransition()
    {
        _stats.transitions += 1;
        forceDetail();
    }

    /**
     * Hook invoked at every phase flip, after the phase changed, with
     * the phase just entered. The executor uses it to age the
     * analytical model at each detail -> fast-forward boundary.
     */
    void
    onFlip(std::function<void(SamplePhase)> hook)
    {
        _onFlip = std::move(hook);
    }

    /**
     * Probe consulted at each detail -> gap flip (after the onFlip
     * hook aged the model) for the fitted-term drift in permille.
     * Unset or absent data (see FastPathModel::kDriftUnknown) counts
     * as drifting, so gaps only stretch on demonstrated steadiness.
     */
    void
    driftProbe(std::function<std::uint32_t()> probe)
    {
        _driftProbe = std::move(probe);
    }

    /** Mutable counters, bumped by the executor. */
    SampleStats &stats() { return _stats; }

    /**
     * Stats with the in-progress phase folded in up to the current
     * tick (for end-of-run reporting).
     */
    SampleStats finalStats() const;

  private:
    /** Boundary event: close the current phase, open the next. */
    void flip();

    /** Enter a gap at the current tick: adapt its length, schedule. */
    void enterGap(Tick now);

    /** Enter a detail window of @p len at the current tick. */
    void enterDetail(Tick now, Tick len);

    EventQueue &_eq;
    SamplingConfig _cfg;
    SamplePhase _phase = SamplePhase::Detail;
    Tick _phaseStart = 0;
    Tick _phaseEnd = kTickNever;
    EventId _flipEvent = kNoEvent;
    std::uint64_t _stretch = 1;
    bool _started = false;
    SampleStats _stats;
    std::function<void(SamplePhase)> _onFlip;
    std::function<std::uint32_t()> _driftProbe;
};

} // namespace dvfs::sim

#endif // DVFS_SIM_SAMPLING_HH
