#include "sim/stats.hh"

#include <algorithm>
#include <limits>

#include "sim/log.hh"

namespace dvfs::sim {

void
Accumulator::add(double v)
{
    ++_count;
    _sum += v;
    _min = std::min(_min, v);
    _max = std::max(_max, v);
}

void
Accumulator::reset()
{
    _count = 0;
    _sum = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
}

Histogram::Histogram(std::size_t buckets, double limit)
    : _limit(limit), _counts(buckets, 0), _overflow(0), _count(0)
{
    if (buckets == 0 || limit <= 0.0)
        fatal("histogram needs >=1 bucket and positive limit");
}

double
Histogram::bucketWidth() const
{
    return _limit / static_cast<double>(_counts.size());
}

void
Histogram::add(double v)
{
    ++_count;
    if (v < 0.0)
        v = 0.0;
    if (v >= _limit) {
        ++_overflow;
        return;
    }
    auto idx = static_cast<std::size_t>(v / bucketWidth());
    if (idx >= _counts.size())
        idx = _counts.size() - 1;
    ++_counts[idx];
}

void
Histogram::reset()
{
    std::fill(_counts.begin(), _counts.end(), 0);
    _overflow = 0;
    _count = 0;
}

double
Histogram::percentile(double p) const
{
    if (_count == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(p * static_cast<double>(_count));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        seen += _counts[i];
        if (seen >= target)
            return (static_cast<double>(i) + 1.0) * bucketWidth();
    }
    return _limit;
}

void
StatRegistry::addCounter(const std::string &name, const Counter &c)
{
    addScalar(name, &c, [](const void *obj) {
        return static_cast<double>(static_cast<const Counter *>(obj)->value());
    });
}

void
StatRegistry::addAccumulator(const std::string &name, const Accumulator &a)
{
    addScalar(name, &a, [](const void *obj) {
        return static_cast<const Accumulator *>(obj)->sum();
    });
}

void
StatRegistry::addScalar(const std::string &name, const void *obj, Getter get)
{
    _items.push_back(Item{name, obj, get});
}

std::map<std::string, double>
StatRegistry::snapshot() const
{
    std::map<std::string, double> out;
    for (const auto &item : _items)
        out[item.name] = item.get(item.obj);
    return out;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, value] : snapshot())
        os << name << " " << value << "\n";
}

} // namespace dvfs::sim
