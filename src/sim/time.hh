/**
 * @file
 * Fundamental time and frequency types for the simulator.
 *
 * The simulator measures time in integer femtoseconds ("ticks"). A
 * femtosecond base unit keeps cycle periods of every DVFS operating
 * point (1.0 GHz to 4.0 GHz in 125 MHz steps) representable with a
 * relative rounding error below 1e-6 while still covering more than
 * five simulated hours in a 64-bit counter.
 */

#ifndef DVFS_SIM_TIME_HH
#define DVFS_SIM_TIME_HH

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace dvfs {

/** Simulated time in femtoseconds. */
using Tick = std::uint64_t;

/** Signed tick difference, for deltas that may be negative. */
using TickDelta = std::int64_t;

/** One picosecond worth of ticks. */
constexpr Tick kTicksPerPs = 1000;
/** One nanosecond worth of ticks. */
constexpr Tick kTicksPerNs = 1000 * kTicksPerPs;
/** One microsecond worth of ticks. */
constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
/** One millisecond worth of ticks. */
constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
/** One second worth of ticks. */
constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** Sentinel for "never" / "not scheduled". */
constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Convert a tick count to (double) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

/** Convert a tick count to (double) milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerMs);
}

/** Convert a tick count to (double) microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

/** Convert a tick count to (double) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/** Convert (double) seconds to ticks, rounding to nearest. */
inline Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(
        std::llround(s * static_cast<double>(kTicksPerSec)));
}

/** Convert (double) nanoseconds to ticks, rounding to nearest. */
inline Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(
        std::llround(ns * static_cast<double>(kTicksPerNs)));
}

/**
 * A clock frequency, stored with megahertz resolution.
 *
 * Megahertz resolution exactly represents every operating point used by
 * the energy manager (125 MHz granularity) as well as the DRAM and
 * uncore clocks. Frequency is a value type and is freely copyable.
 */
class Frequency
{
  public:
    /** Default-constructed frequency is invalid (0 MHz). */
    constexpr Frequency() : _mhz(0) {}

    /** Construct from a raw megahertz count. */
    constexpr explicit Frequency(std::uint32_t mhz) : _mhz(mhz) {}

    /** Named constructor, megahertz. */
    static constexpr Frequency mhz(std::uint32_t v) { return Frequency(v); }

    /** Named constructor, gigahertz (fractional values allowed). */
    static Frequency
    ghz(double v)
    {
        return Frequency(static_cast<std::uint32_t>(std::llround(v * 1000.0)));
    }

    /** Raw megahertz value. */
    constexpr std::uint32_t toMHz() const { return _mhz; }

    /** Frequency in GHz as a double. */
    constexpr double toGHz() const { return _mhz / 1000.0; }

    /** Frequency in Hz as a double. */
    constexpr double toHz() const { return _mhz * 1e6; }

    /** True if this is a usable, non-zero frequency. */
    constexpr bool valid() const { return _mhz != 0; }

    /** Clock period in ticks (femtoseconds), as a double. */
    constexpr double
    periodTicks() const
    {
        return 1e9 / static_cast<double>(_mhz);
    }

    /**
     * Convert a (possibly fractional) cycle count at this frequency
     * into ticks, rounding to nearest.
     */
    Tick
    cyclesToTicks(double cycles) const
    {
        return static_cast<Tick>(std::llround(cycles * periodTicks()));
    }

    /** Convert a tick duration into (double) cycles at this frequency. */
    constexpr double
    ticksToCycles(Tick t) const
    {
        return static_cast<double>(t) / periodTicks();
    }

    /** Human-readable rendering, e.g. "2.125 GHz". */
    std::string toString() const;

    constexpr auto operator<=>(const Frequency &other) const = default;

  private:
    std::uint32_t _mhz;
};

} // namespace dvfs

#endif // DVFS_SIM_TIME_HH
