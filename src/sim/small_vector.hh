/**
 * @file
 * A vector with inline storage for its first N elements.
 *
 * Hot OS structures (futex wait queues, wake lists) hold a handful of
 * elements almost all the time; node- or heap-backed containers put an
 * allocation on paths that run once per synchronization event. A
 * SmallVector keeps those elements in the object itself and only
 * touches the allocator when a queue genuinely outgrows its inline
 * capacity — after which it behaves like a plain vector (the heap
 * block is kept until destruction/shrink, so steady-state growth never
 * reallocates either).
 */

#ifndef DVFS_SIM_SMALL_VECTOR_HH
#define DVFS_SIM_SMALL_VECTOR_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dvfs::sim {

/**
 * A dynamically sized array whose first @p N elements live inline.
 *
 * Supports the subset of the std::vector interface the simulator
 * needs; grows geometrically once spilled to the heap. T must be
 * nothrow move constructible (elements are relocated on growth).
 */
template <typename T, std::size_t N>
class SmallVector
{
    static_assert(N > 0, "inline capacity must be positive");
    static_assert(std::is_nothrow_move_constructible_v<T>,
                  "T must be nothrow move constructible");

  public:
    SmallVector() = default;

    SmallVector(const SmallVector &other) { appendAll(other); }

    SmallVector(SmallVector &&other) noexcept { stealFrom(other); }

    SmallVector &
    operator=(const SmallVector &other)
    {
        if (this != &other) {
            clear();
            appendAll(other);
        }
        return *this;
    }

    SmallVector &
    operator=(SmallVector &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            stealFrom(other);
        }
        return *this;
    }

    ~SmallVector() { destroyAll(); }

    T *begin() { return _data; }
    T *end() { return _data + _size; }
    const T *begin() const { return _data; }
    const T *end() const { return _data + _size; }

    T &operator[](std::size_t i) { return _data[i]; }
    const T &operator[](std::size_t i) const { return _data[i]; }

    T &front() { return _data[0]; }
    const T &front() const { return _data[0]; }
    T &back() { return _data[_size - 1]; }
    const T &back() const { return _data[_size - 1]; }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    std::size_t capacity() const { return _cap; }

    /** True while no heap block has been acquired. */
    bool inlined() const { return _data == inlinePtr(); }

    void
    push_back(const T &v)
    {
        emplace_back(v);
    }

    void
    push_back(T &&v)
    {
        emplace_back(std::move(v));
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (_size == _cap)
            grow();
        T *slot = ::new (static_cast<void *>(_data + _size))
            T(std::forward<Args>(args)...);
        ++_size;
        return *slot;
    }

    void
    pop_back()
    {
        --_size;
        _data[_size].~T();
    }

    /** Erase the element at @p pos, shifting the tail left. */
    T *
    erase(T *pos)
    {
        for (T *p = pos; p + 1 != end(); ++p)
            *p = std::move(p[1]);
        pop_back();
        return pos;
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < _size; ++i)
            _data[i].~T();
        _size = 0;
    }

  private:
    T *inlinePtr() { return reinterpret_cast<T *>(_inline); }
    const T *inlinePtr() const { return reinterpret_cast<const T *>(_inline); }

    void
    grow()
    {
        relocateTo(_cap * 2);
    }

    /** Move all elements into a fresh heap block of @p new_cap. */
    void
    relocateTo(std::size_t new_cap)
    {
        T *fresh = static_cast<T *>(
            ::operator new(new_cap * sizeof(T), std::align_val_t(alignof(T))));
        for (std::size_t i = 0; i < _size; ++i) {
            ::new (static_cast<void *>(fresh + i)) T(std::move(_data[i]));
            _data[i].~T();
        }
        releaseHeap();
        _data = fresh;
        _cap = new_cap;
    }

    void
    releaseHeap()
    {
        if (!inlined())
            ::operator delete(_data, std::align_val_t(alignof(T)));
    }

    void
    destroyAll()
    {
        clear();
        releaseHeap();
        _data = inlinePtr();
        _cap = N;
    }

    void
    appendAll(const SmallVector &other)
    {
        if (other._size > _cap)
            relocateTo(other._size);
        for (std::size_t i = 0; i < other._size; ++i)
            ::new (static_cast<void *>(_data + i)) T(other._data[i]);
        _size = other._size;
    }

    /** Take @p other's contents; leaves @p other empty. Callee owns no
     *  elements or heap block on entry. */
    void
    stealFrom(SmallVector &other) noexcept
    {
        if (other.inlined()) {
            _data = inlinePtr();
            _cap = N;
            for (std::size_t i = 0; i < other._size; ++i) {
                ::new (static_cast<void *>(_data + i))
                    T(std::move(other._data[i]));
                other._data[i].~T();
            }
            _size = other._size;
            other._size = 0;
        } else {
            _data = other._data;
            _cap = other._cap;
            _size = other._size;
            other._data = other.inlinePtr();
            other._cap = N;
            other._size = 0;
        }
    }

    T *_data = inlinePtr();
    std::size_t _size = 0;
    std::size_t _cap = N;
    alignas(T) std::byte _inline[N * sizeof(T)];
};

} // namespace dvfs::sim

#endif // DVFS_SIM_SMALL_VECTOR_HH
