/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs), fatal() is for user errors (bad
 * configuration); warn() and inform() report conditions without
 * stopping the simulation. Log output goes to stderr so harness
 * table output on stdout stays machine-readable.
 */

#ifndef DVFS_SIM_LOG_HH
#define DVFS_SIM_LOG_HH

#include <cstdarg>
#include <string>

namespace dvfs {

/** Verbosity levels for runtime logging. */
enum class LogLevel {
    Quiet = 0,  ///< errors only
    Warn = 1,   ///< warnings
    Info = 2,   ///< informational messages
    Debug = 3,  ///< detailed tracing
};

/** Set the global log verbosity. Default is Warn. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Report an internal simulator bug and abort.
 *
 * Use for conditions that should be impossible regardless of user
 * input. Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user/configuration error and exit with status 1.
 *
 * Use for conditions that are the caller's fault. Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning (if verbosity >= Warn). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational message (if verbosity >= Info). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug-level trace message (if verbosity >= Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Internal assertion that is active in all build types.
 *
 * Unlike <cassert>, these checks guard simulator invariants that must
 * hold even in release builds; a silent corruption would invalidate
 * every downstream measurement.
 */
#define DVFS_ASSERT(cond, msg)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::dvfs::panic("assertion failed at %s:%d: %s (%s)",         \
                          __FILE__, __LINE__, #cond, msg);              \
        }                                                               \
    } while (0)

} // namespace dvfs

#endif // DVFS_SIM_LOG_HH
