/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every stochastic choice in the simulator draws from an Rng seeded
 * from the workload configuration, never from wall-clock entropy, so
 * that ground-truth runs at different frequencies see *identical*
 * instruction streams, addresses, and allocation sequences — the same
 * property the paper gets from replay compilation and fixed inputs.
 */

#ifndef DVFS_SIM_RNG_HH
#define DVFS_SIM_RNG_HH

#include <cstdint>

namespace dvfs::sim {

/**
 * A small, fast, high-quality PRNG (xoshiro256** with splitmix64
 * seeding). Not cryptographic; statistical quality is ample for
 * workload synthesis.
 */
class Rng
{
  public:
    /** Seed deterministically from a 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection-free scaling. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + nextBounded(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p);

    /**
     * Geometric-ish draw: exponentially distributed double with the
     * given mean, clamped away from zero. Used for inter-arrival
     * spacing of misses, lock attempts, etc.
     */
    double nextExp(double mean);

    /**
     * Split off an independent child generator. Children derived with
     * distinct salts produce decorrelated streams; used to give each
     * simulated thread its own stream regardless of interleaving.
     */
    Rng split(std::uint64_t salt);

  private:
    std::uint64_t _s[4];
};

} // namespace dvfs::sim

#endif // DVFS_SIM_RNG_HH
