#include "sim/profile.hh"

namespace dvfs::sim::prof {

const char *
subsystemName(Subsystem s)
{
    switch (s) {
      case Subsystem::Kernel: return "kernel";
      case Subsystem::Core: return "core";
      case Subsystem::Cache: return "cache";
      case Subsystem::Dram: return "dram";
      case Subsystem::Os: return "os";
      case Subsystem::Other: return "other";
      case Subsystem::Count: break;
    }
    return "?";
}

} // namespace dvfs::sim::prof

#ifdef DVFS_PROFILE

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

namespace dvfs::sim::prof {
namespace detail {
namespace {

// Blocks are owned here, not by the threads: a sweep worker that
// exits before snapshot() leaves its totals behind intact.
std::mutex registryMutex;
std::vector<std::unique_ptr<ThreadBlock>> registry;

} // namespace

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

ThreadBlock &
threadBlock()
{
    thread_local ThreadBlock *block = [] {
        auto owned = std::make_unique<ThreadBlock>();
        ThreadBlock *raw = owned.get();
        raw->lastStamp = nowNs();
        std::lock_guard<std::mutex> lock(registryMutex);
        registry.push_back(std::move(owned));
        return raw;
    }();
    return *block;
}

} // namespace detail

void
reset()
{
    std::lock_guard<std::mutex> lock(detail::registryMutex);
    const std::uint64_t t = detail::nowNs();
    for (auto &b : detail::registry) {
        for (unsigned i = 0; i < kSubsystemCount; ++i) {
            b->selfNs[i] = 0;
            b->enters[i] = 0;
        }
        b->lastStamp = t;
    }
}

Snapshot
snapshot()
{
    Snapshot snap;
    std::lock_guard<std::mutex> lock(detail::registryMutex);
    for (const auto &b : detail::registry) {
        for (unsigned i = 0; i < kSubsystemCount; ++i) {
            snap.bySubsystem[i].selfNs += b->selfNs[i];
            snap.bySubsystem[i].enters += b->enters[i];
        }
    }
    return snap;
}

} // namespace dvfs::sim::prof

#endif // DVFS_PROFILE
