#include "sim/time.hh"

#include "sim/log.hh"

namespace dvfs {

std::string
Frequency::toString() const
{
    if (_mhz == 0)
        return "<invalid>";
    if (_mhz % 1000 == 0)
        return strprintf("%u.0 GHz", _mhz / 1000);
    return strprintf("%.3f GHz", toGHz());
}

} // namespace dvfs
