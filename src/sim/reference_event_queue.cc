#include "sim/reference_event_queue.hh"

#include "sim/log.hh"

namespace dvfs::sim {

ReferenceEventQueue::ReferenceEventQueue()
    : _now(0), _nextSeq(1), _live(0), _executed(0)
{
}

ReferenceEventQueue::~ReferenceEventQueue()
{
    for (Entry *e : _entries)
        delete e;
}

ReferenceEventQueue::Entry *
ReferenceEventQueue::allocEntry()
{
    if (!_pool.empty()) {
        Entry *e = _pool.back();
        _pool.pop_back();
        return e;
    }
    Entry *e = new Entry();
    e->slot = static_cast<std::uint32_t>(_entries.size());
    e->gen = 0;
    _entries.push_back(e);
    return e;
}

void
ReferenceEventQueue::freeEntry(Entry *e)
{
    e->cb.reset();
    ++e->gen;  // invalidate any EventId still pointing at this entry
    if (_pool.size() < 4096)
        _pool.push_back(e);
}

ReferenceEventQueue::Entry *
ReferenceEventQueue::resolve(EventId id) const
{
    std::uint64_t slot_plus_one = id >> 32;
    if (slot_plus_one == 0 || slot_plus_one > _entries.size())
        return nullptr;
    Entry *e = _entries[static_cast<std::size_t>(slot_plus_one) - 1];
    if (!e->live || e->gen != static_cast<std::uint32_t>(id))
        return nullptr;
    return e;
}

ReferenceEventQueue::Entry *
ReferenceEventQueue::acquire(Tick when)
{
    if (when < _now) {
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    }
    Entry *e = allocEntry();
    e->when = when;
    e->seq = _nextSeq++;
    e->cancelled = false;
    e->live = true;
    _heap.push(e);
    ++_live;
    return e;
}

bool
ReferenceEventQueue::cancel(EventId id)
{
    Entry *e = resolve(id);
    if (!e)
        return false;
    e->cancelled = true;
    e->live = false;
    --_live;
    return true;
}

ReferenceEventQueue::Entry *
ReferenceEventQueue::pop()
{
    while (!_heap.empty()) {
        Entry *e = _heap.top();
        _heap.pop();
        if (e->cancelled) {
            freeEntry(e);
            continue;
        }
        return e;
    }
    return nullptr;
}

bool
ReferenceEventQueue::runOne()
{
    Entry *e = pop();
    if (!e)
        return false;
    DVFS_ASSERT(e->when >= _now, "event time went backwards");
    _now = e->when;
    e->live = false;
    --_live;
    ++_executed;
    EventCallback cb = std::move(e->cb);
    freeEntry(e);
    cb();
    return true;
}

std::uint64_t
ReferenceEventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (true) {
        Entry *e = pop();
        if (!e)
            break;
        if (e->when >= limit) {
            // Put it back; it stays scheduled for a later call.
            _heap.push(e);
            _now = limit;
            break;
        }
        _now = e->when;
        e->live = false;
        --_live;
        ++_executed;
        ++n;
        EventCallback cb = std::move(e->cb);
        freeEntry(e);
        cb();
    }
    return n;
}

std::uint64_t
ReferenceEventQueue::run()
{
    std::uint64_t n = 0;
    while (runOne())
        ++n;
    return n;
}

} // namespace dvfs::sim
