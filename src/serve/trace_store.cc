#include "serve/trace_store.hh"

#include "trace/writer.hh"

namespace dvfs::serve {

std::size_t
TraceStore::footprint(const trace::LoadedTrace &t)
{
    const pred::RunRecord &rec = t.record();
    std::size_t bytes = sizeof(trace::LoadedTrace);
    bytes += rec.threads.size() * sizeof(pred::ThreadSummary);
    bytes += rec.gcMarks.size() * sizeof(pred::GcPhaseMark);
    bytes += rec.events.size() * sizeof(rec.events[0]);
    for (const pred::Epoch &ep : rec.epochs) {
        bytes += sizeof(pred::Epoch);
        bytes += ep.active.size() * sizeof(pred::EpochThread);
    }
    return bytes;
}

TraceStore::PutResult
TraceStore::put(const std::vector<std::uint8_t> &image)
{
    // The header digest names the entry; cheap to read, and decode
    // verifies it against the bytes before anything is cached.
    const std::uint64_t digest = trace::tracePayloadDigest(image);

    {
        std::lock_guard<std::mutex> lock(_mtx);
        auto it = _index.find(digest);
        if (it != _index.end()) {
            _lru.splice(_lru.begin(), _lru, it->second);
            ++_stats.reuses;
            return {digest, true, it->second->trace};
        }
    }

    // Strict decode outside the lock: uploads of distinct traces
    // never serialize behind each other's parsing.
    auto loaded = std::make_shared<const trace::LoadedTrace>(
        trace::decodeTrace(image));
    const std::size_t bytes = footprint(*loaded);

    std::lock_guard<std::mutex> lock(_mtx);
    auto it = _index.find(digest);
    if (it != _index.end()) {
        // Raced with another upload of the same bytes; keep theirs.
        _lru.splice(_lru.begin(), _lru, it->second);
        ++_stats.reuses;
        return {digest, true, it->second->trace};
    }
    _lru.push_front(Entry{digest, bytes, loaded});
    _index[digest] = _lru.begin();
    _bytes += bytes;
    ++_stats.insertions;
    evictOverBudgetLocked();
    return {digest, false, std::move(loaded)};
}

std::shared_ptr<const trace::LoadedTrace>
TraceStore::get(std::uint64_t digest)
{
    std::lock_guard<std::mutex> lock(_mtx);
    auto it = _index.find(digest);
    if (it == _index.end()) {
        ++_stats.misses;
        return nullptr;
    }
    _lru.splice(_lru.begin(), _lru, it->second);
    ++_stats.hits;
    return it->second->trace;
}

void
TraceStore::evictOverBudgetLocked()
{
    // Keep at least the most recent entry even when it alone exceeds
    // the budget — a cache that cannot hold one trace serves nothing.
    while (_bytes > _capacity && _lru.size() > 1) {
        const Entry &victim = _lru.back();
        _bytes -= victim.bytes;
        _index.erase(victim.digest);
        _lru.pop_back();
        ++_stats.evictions;
    }
}

TraceStoreStats
TraceStore::stats() const
{
    std::lock_guard<std::mutex> lock(_mtx);
    TraceStoreStats s = _stats;
    s.entries = _lru.size();
    s.bytes = _bytes;
    return s;
}

} // namespace dvfs::serve
