#include "serve/service.hh"

#include <cmath>

#include "power/vf_table.hh"
#include "trace/format.hh"

namespace dvfs::serve {

namespace {

net::ErrorResp
errorBody(net::ErrorCode code, std::uint64_t offset,
          const std::string &message)
{
    net::ErrorResp e;
    e.code = static_cast<std::uint32_t>(code);
    e.offset = offset;
    e.message = message;
    return e;
}

constexpr const char *kDefaultOptimalPredictor = "DEP+BURST";

} // namespace

Service::Service(TraceStore &store, const ServerCounters *counters)
    : _store(store), _counters(counters)
{
    for (const auto &p : _engine.predictors())
        _byName.emplace(p->name(), p.get());
}

const pred::Predictor *
Service::predictorByName(const std::string &name) const
{
    auto it = _byName.find(name);
    return it == _byName.end() ? nullptr : it->second;
}

net::Frame
Service::handle(const net::Frame &request)
{
    _requests.fetch_add(1, std::memory_order_relaxed);
    net::Frame resp = serve(request);
    if (std::holds_alternative<net::ErrorResp>(resp.body))
        _errors.fetch_add(1, std::memory_order_relaxed);
    else
        _responses.fetch_add(1, std::memory_order_relaxed);
    return resp;
}

net::Frame
Service::serve(const net::Frame &request)
{
    const std::uint64_t id = request.requestId;
    if (request.isResponse) {
        return net::Frame::response(
            id, errorBody(net::ErrorCode::BadRequest, 0,
                          "a response frame is not a request"));
    }

    net::Body body;
    try {
        if (const auto *m =
                std::get_if<net::UploadTraceReq>(&request.body)) {
            body = handleUpload(*m);
        } else if (const auto *m =
                       std::get_if<net::PredictReq>(&request.body)) {
            body = handlePredict(*m);
        } else if (const auto *m =
                       std::get_if<net::WhatIfGridReq>(&request.body)) {
            body = handleWhatIf(*m);
        } else if (const auto *m =
                       std::get_if<net::OptimalVfReq>(&request.body)) {
            body = handleOptimalVf(*m);
        } else if (std::holds_alternative<net::StatsReq>(request.body)) {
            body = handleStats();
        } else {
            // Unknown message type (monostate): a newer client's
            // extension. Answer, don't disconnect.
            body = errorBody(
                net::ErrorCode::UnknownMessage, 0,
                std::string("message type ") +
                    std::to_string(request.rawType) +
                    " is not served by this protocol version");
        }
    } catch (const trace::TraceError &e) {
        body = errorBody(net::ErrorCode::BadRequest, e.offset(),
                         e.what());
    } catch (const std::exception &e) {
        body = errorBody(net::ErrorCode::Internal, 0, e.what());
    }
    return net::Frame::response(id, std::move(body));
}

net::Body
Service::handleUpload(const net::UploadTraceReq &req)
{
    // TraceError from the strict decode is translated to BadRequest
    // by the caller's catch — offset included, so a client can see
    // where its upload went wrong.
    TraceStore::PutResult put = _store.put(req.image);

    net::UploadTraceResp resp;
    resp.traceDigest = put.digest;
    resp.alreadyCached = put.alreadyCached ? 1 : 0;
    resp.baseMHz = put.trace->baseFreq().toMHz();
    resp.totalTime = put.trace->totalTime();
    resp.epochs = put.trace->epochs().size();
    resp.threads = put.trace->threads().size();
    return resp;
}

net::Body
Service::handlePredict(const net::PredictReq &req)
{
    auto trace = _store.get(req.traceDigest);
    if (!trace) {
        return errorBody(net::ErrorCode::UnknownTrace, 0,
                         "no cached trace with the given digest; "
                         "UploadTrace it first");
    }

    auto cells = _engine.evaluate(
        *trace, {{Frequency::mhz(req.targetMHz), 0}});

    net::PredictResp resp;
    resp.baseTotalTime = trace->totalTime();
    resp.cells.reserve(cells.size());
    for (const trace::ReplayCell &c : cells)
        resp.cells.push_back({c.predictor, c.predicted});
    return resp;
}

net::Body
Service::handleWhatIf(const net::WhatIfGridReq &req)
{
    auto trace = _store.get(req.traceDigest);
    if (!trace) {
        return errorBody(net::ErrorCode::UnknownTrace, 0,
                         "no cached trace with the given digest; "
                         "UploadTrace it first");
    }
    if (req.targetsMHz.empty()) {
        return errorBody(net::ErrorCode::BadRequest, 0,
                         "whatIfGrid needs at least one target");
    }

    std::vector<trace::ReplayTarget> targets;
    targets.reserve(req.targetsMHz.size());
    for (std::uint32_t mhz : req.targetsMHz)
        targets.push_back({Frequency::mhz(mhz), 0});

    auto cells = _engine.evaluate(*trace, targets);

    net::WhatIfGridResp resp;
    resp.predictors = _engine.predictorNames();
    resp.targetsMHz = req.targetsMHz;
    resp.predicted.reserve(cells.size());
    // evaluate() is target-major, predictor-minor — exactly the
    // response's cell order.
    for (const trace::ReplayCell &c : cells)
        resp.predicted.push_back(c.predicted);
    return resp;
}

net::Body
Service::handleOptimalVf(const net::OptimalVfReq &req)
{
    auto trace = _store.get(req.traceDigest);
    if (!trace) {
        return errorBody(net::ErrorCode::UnknownTrace, 0,
                         "no cached trace with the given digest; "
                         "UploadTrace it first");
    }

    const std::string name =
        req.predictor.empty() ? kDefaultOptimalPredictor : req.predictor;
    const pred::Predictor *p = predictorByName(name);
    if (!p) {
        return errorBody(net::ErrorCode::BadRequest, 0,
                         "unknown predictor '" + name + "'");
    }

    const auto table = power::VfTable::haswell(
        req.stepMHz == 0 ? 125 : req.stepMHz);

    // Admissibility is predicted-vs-predicted: slowdown relative to
    // the predicted time at the table's highest point, so the whole
    // decision is a pure function of the trace (the manager's static
    // query). On the monotone V(f) curve the lowest admissible
    // frequency is the minimum-energy point.
    const Tick at_highest = p->predict(*trace, table.highest());
    const double limit =
        static_cast<double>(at_highest) *
        (1.0 + static_cast<double>(req.slowdownPermille) / 1000.0);

    net::OptimalVfResp resp;
    resp.chosenMHz = table.highest().toMHz();
    resp.predictedAtChosen = at_highest;
    resp.predictedAtHighest = at_highest;
    for (const power::OperatingPoint &point : table.points()) {
        const Tick predicted = p->predict(*trace, point.freq);
        if (static_cast<double>(predicted) <= limit) {
            resp.chosenMHz = point.freq.toMHz();
            resp.predictedAtChosen = predicted;
            break;  // points ascend; the first admissible is lowest
        }
    }
    resp.microvolts = static_cast<std::uint64_t>(
        std::llround(table.voltageAt(Frequency::mhz(resp.chosenMHz)) *
                     1e6));
    return resp;
}

net::Body
Service::handleStats()
{
    const TraceStoreStats cache = _store.stats();

    net::StatsResp resp;
    resp.requests = _requests.load(std::memory_order_relaxed);
    resp.responses = _responses.load(std::memory_order_relaxed);
    resp.errors = _errors.load(std::memory_order_relaxed);
    resp.tracesCached = cache.entries;
    resp.cacheBytes = cache.bytes;
    resp.cacheHits = cache.hits;
    resp.cacheMisses = cache.misses;
    resp.cacheEvictions = cache.evictions;
    if (_counters) {
        resp.shedOverload =
            _counters->shedOverload.load(std::memory_order_relaxed);
        resp.batches =
            _counters->batches.load(std::memory_order_relaxed);
        resp.maxBatch =
            _counters->maxBatch.load(std::memory_order_relaxed);
    }
    return resp;
}

} // namespace dvfs::serve
