/**
 * @file
 * dvfsd's socket front end: accept, frame, batch, reply, drain.
 *
 * One poll()-driven loop owns every connection. Complete frames pulled
 * off the sockets queue per connection; each loop iteration then drains
 * every queued request across all connections into one batch and runs
 * it on the sweep work-stealing pool (`exp::sweep::runIndexed`) — so
 * concurrent clients' replays share the same worker set the offline
 * sweeps use, and a single slow replay never serializes the others.
 *
 * Flow control and failure policy:
 *  - Per-connection backpressure: at most `maxInFlight` queued requests
 *    per connection. When a new frame lands on a full queue the OLDEST
 *    queued request is shed with Error{Overloaded} (its reply slot is
 *    the cheapest to abandon — the client has waited longest and can
 *    retry) and the new frame takes its place.
 *  - A payload-level ProtoError (bad digest, bad field) keeps the
 *    connection: the frame boundary is known, so the server replies
 *    Error{BadRequest} and resynchronizes on the next frame. A
 *    header-level ProtoError (bad magic/version/oversized) means the
 *    stream itself can't be trusted: reply Error{BadRequest} and close
 *    after the flush.
 *  - stop() (async-signal-safe; SIGTERM handlers call it) starts a
 *    graceful drain: stop accepting and reading, serve every request
 *    already queued, flush every reply, then return from run().
 */

#ifndef DVFS_SERVE_SERVER_HH
#define DVFS_SERVE_SERVER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "net/proto.hh"
#include "serve/service.hh"
#include "serve/trace_store.hh"

namespace dvfs::serve {

struct ServerConfig {
    /** TCP listen port (0 = ephemeral); ignored if unixPath is set. */
    std::uint16_t tcpPort = 0;
    /** If non-empty, listen on this Unix-domain socket instead. */
    std::string unixPath;
    /** Replay pool width (0 = exp::sweep::defaultWorkers()). */
    unsigned workers = 0;
    /** Trace cache budget in decoded bytes. */
    std::size_t cacheBytes = 256u << 20;
    /** Per-connection queued-request bound (>= 1). */
    std::size_t maxInFlight = 64;
};

class Server
{
  public:
    /** Binds the listen socket immediately; run() starts serving. */
    explicit Server(const ServerConfig &config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Actual TCP port (after ephemeral resolution); 0 for Unix. */
    std::uint16_t port() const { return _port; }

    /**
     * Serve until stop(). Blocks; the caller owns the thread. Returns
     * after the graceful drain completes.
     */
    void run();

    /**
     * Begin graceful drain. Async-signal-safe (a single write to the
     * self-pipe), so SIGTERM/SIGINT handlers may call it directly.
     */
    void stop();

    /** Request totals served so far (for the daemon's exit summary). */
    std::uint64_t requestsServed() const
    {
        return _service.requestsServed();
    }

  private:
    struct Conn {
        std::vector<std::uint8_t> readBuf;
        /** Encoded replies not yet written, plus write offset. */
        std::vector<std::uint8_t> outBuf;
        std::size_t outOff = 0;
        /** Complete frames awaiting a batch slot. */
        std::deque<net::Frame> pending;
        bool peerClosed = false;   ///< EOF seen; no more reads
        bool closeAfterFlush = false;  ///< framing broken; hang up
    };

    void acceptReady();
    void readConn(int fd, Conn &conn);
    /** Extract complete frames from conn.readBuf into conn.pending. */
    void extractFrames(Conn &conn);
    void enqueueRequest(Conn &conn, net::Frame frame);
    void runBatch();
    void flushConn(int fd, Conn &conn);
    void queueReply(Conn &conn, const net::Frame &reply);
    bool finished(const Conn &conn) const;

    std::uint16_t _port = 0;
    int _listenFd = -1;
    int _stopPipe[2] = {-1, -1};
    bool _draining = false;
    std::string _unixPath;  ///< unlinked on destruction if non-empty
    unsigned _workers;
    std::size_t _maxInFlight;

    std::map<int, Conn> _conns;
    std::vector<int> _doomed;  ///< fds to erase after the sweep

    TraceStore _store;
    ServerCounters _counters;
    Service _service;
};

} // namespace dvfs::serve

#endif // DVFS_SERVE_SERVER_HH
