/**
 * @file
 * In-memory LRU cache of loaded traces, keyed by payload digest.
 *
 * One uploaded .dvfstrace serves thousands of predictor×frequency
 * queries with zero re-simulation and zero re-parsing: the first
 * upload pays the strict decode once, and every later query hits the
 * cache by the digest the upload reply named. The digest key makes
 * re-uploads idempotent — the bytes vouch for themselves, so two
 * clients uploading the same trace share one entry.
 *
 * Capacity is bounded by decoded payload bytes; inserting past the
 * bound evicts least-recently-used entries (entries currently shared
 * with in-flight queries stay alive through their shared_ptr until
 * the last query drops them). All operations are thread-safe.
 */

#ifndef DVFS_SERVE_TRACE_STORE_HH
#define DVFS_SERVE_TRACE_STORE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "trace/reader.hh"

namespace dvfs::serve {

/** Cumulative cache counters (monotone; snapshot under the lock). */
struct TraceStoreStats {
    std::uint64_t hits = 0;        ///< get() found the digest
    std::uint64_t misses = 0;      ///< get() did not
    std::uint64_t insertions = 0;  ///< put() decoded a new entry
    std::uint64_t reuses = 0;      ///< put() found the digest cached
    std::uint64_t evictions = 0;   ///< entries dropped by the bound
    std::uint64_t entries = 0;     ///< live entries right now
    std::uint64_t bytes = 0;       ///< decoded bytes held right now
};

class TraceStore
{
  public:
    /** @param capacity_bytes decoded-trace byte budget (>= 1 entry). */
    explicit TraceStore(std::size_t capacity_bytes)
        : _capacity(capacity_bytes)
    {
    }

    /**
     * Decode @p image and cache it under its payload digest.
     *
     * Returns the cached (or pre-existing) trace and whether it was
     * already present. The decode is strict — any malformed image
     * throws trace::TraceError and caches nothing.
     */
    struct PutResult {
        std::uint64_t digest = 0;
        bool alreadyCached = false;
        std::shared_ptr<const trace::LoadedTrace> trace;
    };
    PutResult put(const std::vector<std::uint8_t> &image);

    /** Look up @p digest, promoting the entry to most-recently-used. */
    std::shared_ptr<const trace::LoadedTrace> get(std::uint64_t digest);

    TraceStoreStats stats() const;

  private:
    struct Entry {
        std::uint64_t digest;
        std::size_t bytes;
        std::shared_ptr<const trace::LoadedTrace> trace;
    };

    /** Approximate decoded footprint of a loaded trace. */
    static std::size_t footprint(const trace::LoadedTrace &t);

    void evictOverBudgetLocked();

    mutable std::mutex _mtx;
    std::size_t _capacity;
    std::size_t _bytes = 0;
    /** MRU at the front; eviction pops the back. */
    std::list<Entry> _lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> _index;
    TraceStoreStats _stats;
};

} // namespace dvfs::serve

#endif // DVFS_SERVE_TRACE_STORE_HH
