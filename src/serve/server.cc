#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "exp/sweep/pool.hh"
#include "net/socket.hh"

namespace dvfs::serve {

namespace {

net::Frame
errorReply(std::uint64_t request_id, net::ErrorCode code,
           std::uint64_t offset, std::string message)
{
    net::ErrorResp e;
    e.code = static_cast<std::uint32_t>(code);
    e.offset = offset;
    e.message = std::move(message);
    return net::Frame::response(request_id, std::move(e));
}

} // namespace

Server::Server(const ServerConfig &config)
    : _unixPath(config.unixPath),
      _workers(config.workers != 0 ? config.workers
                                   : exp::sweep::defaultWorkers()),
      _maxInFlight(std::max<std::size_t>(1, config.maxInFlight)),
      _store(config.cacheBytes),
      _service(_store, &_counters)
{
    if (::pipe(_stopPipe) < 0) {
        throw net::SocketError(std::string("pipe: ") +
                               std::strerror(errno));
    }
    net::setNonBlocking(_stopPipe[0]);

    if (!_unixPath.empty())
        _listenFd = net::listenUnix(_unixPath);
    else
        _listenFd = net::listenTcp(config.tcpPort, &_port);
    net::setNonBlocking(_listenFd);
}

Server::~Server()
{
    for (auto &[fd, conn] : _conns)
        ::close(fd);
    if (_listenFd >= 0)
        ::close(_listenFd);
    if (_stopPipe[0] >= 0)
        ::close(_stopPipe[0]);
    if (_stopPipe[1] >= 0)
        ::close(_stopPipe[1]);
    if (!_unixPath.empty())
        ::unlink(_unixPath.c_str());
}

void
Server::stop()
{
    // Single write(2): async-signal-safe by POSIX, so SIGTERM/SIGINT
    // handlers call this directly. The byte value is irrelevant.
    const char byte = 's';
    [[maybe_unused]] ssize_t w = ::write(_stopPipe[1], &byte, 1);
}

void
Server::run()
{
    std::vector<pollfd> fds;
    std::vector<int> fdOwner;  // conn fd per pollfd slot; -1 = control

    while (true) {
        fds.clear();
        fdOwner.clear();
        fds.push_back({_stopPipe[0], POLLIN, 0});
        fdOwner.push_back(-1);
        if (!_draining && _listenFd >= 0) {
            fds.push_back({_listenFd, POLLIN, 0});
            fdOwner.push_back(-2);
        }
        bool anyPending = false;
        for (auto &[fd, conn] : _conns) {
            short events = 0;
            if (!_draining && !conn.peerClosed && !conn.closeAfterFlush)
                events |= POLLIN;
            if (conn.outOff < conn.outBuf.size())
                events |= POLLOUT;
            fds.push_back({fd, events, 0});
            fdOwner.push_back(fd);
            anyPending = anyPending || !conn.pending.empty();
        }

        if (_draining && !anyPending) {
            // Every queued request is served; all that may remain is
            // unflushed reply bytes, which the loop below pushes out.
            bool flushed = true;
            for (auto &[fd, conn] : _conns)
                flushed = flushed && conn.outOff >= conn.outBuf.size();
            if (flushed)
                break;
        }

        int rc = ::poll(fds.data(), fds.size(), anyPending ? 0 : -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw net::SocketError(std::string("poll: ") +
                                   std::strerror(errno));
        }

        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLOUT | POLLHUP | POLLERR)))
                continue;
            if (fdOwner[i] == -1) {
                // stop(): drain the pipe, stop accepting and reading.
                std::uint8_t sink[64];
                while (::read(_stopPipe[0], sink, sizeof(sink)) > 0) {}
                _draining = true;
                if (_listenFd >= 0) {
                    ::close(_listenFd);
                    _listenFd = -1;
                }
            } else if (fdOwner[i] == -2) {
                if (!_draining)
                    acceptReady();
            } else {
                auto it = _conns.find(fdOwner[i]);
                if (it == _conns.end())
                    continue;
                if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
                    if (!_draining)
                        readConn(it->first, it->second);
                    else
                        it->second.peerClosed = true;
                }
            }
        }

        runBatch();

        _doomed.clear();
        for (auto &[fd, conn] : _conns) {
            if (conn.outOff < conn.outBuf.size())
                flushConn(fd, conn);
            if (finished(conn))
                _doomed.push_back(fd);
        }
        for (int fd : _doomed) {
            ::close(fd);
            _conns.erase(fd);
        }
    }

    // Drained: every reply flushed. Hang up on the survivors.
    for (auto &[fd, conn] : _conns)
        ::close(fd);
    _conns.clear();
}

void
Server::acceptReady()
{
    while (true) {
        int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            throw net::SocketError(std::string("accept: ") +
                                   std::strerror(errno));
        }
        net::setNonBlocking(fd);
        if (_unixPath.empty()) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
        }
        _conns.emplace(fd, Conn{});
    }
}

void
Server::readConn(int fd, Conn &conn)
{
    std::uint8_t chunk[64 * 1024];
    while (true) {
        ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
        if (r > 0) {
            conn.readBuf.insert(conn.readBuf.end(), chunk, chunk + r);
            continue;
        }
        if (r == 0) {
            conn.peerClosed = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        // Transport failure: nothing further can be read or written.
        conn.peerClosed = true;
        conn.closeAfterFlush = true;
        conn.pending.clear();
        conn.outBuf.clear();
        conn.outOff = 0;
        return;
    }
    extractFrames(conn);
}

void
Server::extractFrames(Conn &conn)
{
    std::size_t consumed = 0;
    while (!conn.closeAfterFlush &&
           conn.readBuf.size() - consumed >= net::kFrameHeaderBytes) {
        const std::uint8_t *head = conn.readBuf.data() + consumed;
        std::uint32_t payload = 0;
        try {
            payload = net::peekPayloadLength(head,
                                             net::kFrameHeaderBytes);
        } catch (const net::ProtoError &e) {
            // The stream can no longer be framed; answer and hang up.
            queueReply(conn,
                       errorReply(0, net::ErrorCode::BadRequest,
                                  e.offset(), e.what()));
            conn.closeAfterFlush = true;
            consumed = conn.readBuf.size();
            break;
        }

        const std::size_t whole = net::kFrameHeaderBytes + payload;
        if (conn.readBuf.size() - consumed < whole)
            break;  // incomplete tail; wait for more bytes

        try {
            enqueueRequest(conn, net::decodeFrame(head, whole));
        } catch (const net::ProtoError &e) {
            // Payload-level damage: the frame boundary is still known,
            // so reply and resynchronize on the next frame. The
            // request id cannot be trusted out of a corrupt payload,
            // so the reply carries id 0.
            queueReply(conn,
                       errorReply(0, net::ErrorCode::BadRequest,
                                  e.offset(), e.what()));
        }
        consumed += whole;
    }
    conn.readBuf.erase(conn.readBuf.begin(),
                       conn.readBuf.begin() +
                           static_cast<std::ptrdiff_t>(consumed));
}

void
Server::enqueueRequest(Conn &conn, net::Frame frame)
{
    if (conn.pending.size() >= _maxInFlight) {
        // Shed the OLDEST queued request: its client has waited the
        // longest already and is the most likely to have given up.
        const net::Frame &oldest = conn.pending.front();
        queueReply(conn,
                   errorReply(oldest.requestId,
                              net::ErrorCode::Overloaded, 0,
                              "request shed under backpressure; "
                              "retry later"));
        conn.pending.pop_front();
        _counters.shedOverload.fetch_add(1, std::memory_order_relaxed);
    }
    conn.pending.push_back(std::move(frame));
}

void
Server::runBatch()
{
    // One batch per loop iteration: every request queued on any
    // connection, in (fd, arrival) order so replies are deterministic.
    std::vector<std::pair<Conn *, net::Frame>> work;
    for (auto &[fd, conn] : _conns) {
        while (!conn.pending.empty()) {
            work.emplace_back(&conn, std::move(conn.pending.front()));
            conn.pending.pop_front();
        }
    }
    if (work.empty())
        return;

    std::vector<net::Frame> replies(work.size());
    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        _workers, work.size()));
    exp::sweep::runIndexed(work.size(), std::max(1u, workers),
                           [&](std::size_t i) {
                               replies[i] =
                                   _service.handle(work[i].second);
                           });

    _counters.batches.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t prev =
        _counters.maxBatch.load(std::memory_order_relaxed);
    while (prev < work.size() &&
           !_counters.maxBatch.compare_exchange_weak(
               prev, work.size(), std::memory_order_relaxed)) {
    }

    // Replies are appended by this thread only, after the barrier, in
    // batch order — per-connection reply order matches request order.
    for (std::size_t i = 0; i < work.size(); ++i)
        queueReply(*work[i].first, replies[i]);
}

void
Server::queueReply(Conn &conn, const net::Frame &reply)
{
    const std::vector<std::uint8_t> bytes = net::encodeFrame(reply);
    conn.outBuf.insert(conn.outBuf.end(), bytes.begin(), bytes.end());
}

void
Server::flushConn(int fd, Conn &conn)
{
    while (conn.outOff < conn.outBuf.size()) {
        ssize_t w = ::send(fd, conn.outBuf.data() + conn.outOff,
                           conn.outBuf.size() - conn.outOff,
                           MSG_NOSIGNAL);
        if (w >= 0) {
            conn.outOff += static_cast<std::size_t>(w);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        // Peer is gone; nothing left worth keeping.
        conn.peerClosed = true;
        conn.closeAfterFlush = true;
        conn.pending.clear();
        conn.outBuf.clear();
        conn.outOff = 0;
        return;
    }
    conn.outBuf.clear();
    conn.outOff = 0;
}

bool
Server::finished(const Conn &conn) const
{
    return (conn.peerClosed || conn.closeAfterFlush) &&
           conn.pending.empty() && conn.outOff >= conn.outBuf.size();
}

} // namespace dvfs::serve
