/**
 * @file
 * The dvfsd request handler: one decoded Frame in, one response out.
 *
 * Pure application logic over the trace store and the replay engine —
 * no sockets, no threads of its own — so the exact code path the
 * daemon serves is also the code path unit tests and
 * `dvfsd_load --verify-live` exercise directly. handle() is safe to
 * call concurrently: the store is internally locked, predictors are
 * stateless pure functions, and counters are atomic.
 *
 * Every reply to request id R carries id R; failures become
 * Error{code, offset, message} replies rather than dropped
 * connections (ErrorCode semantics in net/proto.hh).
 */

#ifndef DVFS_SERVE_SERVICE_HH
#define DVFS_SERVE_SERVICE_HH

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "net/proto.hh"
#include "serve/trace_store.hh"
#include "trace/replay.hh"

namespace dvfs::serve {

/** Counters the socket layer owns but Stats replies report. */
struct ServerCounters {
    std::atomic<std::uint64_t> shedOverload{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> maxBatch{0};
};

class Service
{
  public:
    /**
     * @param store     shared trace cache (caller owns).
     * @param counters  socket-layer counters folded into Stats
     *                  replies; may be null (standalone/test use).
     */
    explicit Service(TraceStore &store,
                     const ServerCounters *counters = nullptr);

    /**
     * Serve one request frame.
     *
     * Always returns a response frame carrying the request's id; a
     * request that cannot be served (unknown trace, unknown message
     * type, semantic error) returns an Error response. Never throws
     * for malformed requests; only genuine programming errors
     * propagate.
     */
    net::Frame handle(const net::Frame &request);

    /** Frames handled so far (requests / ok replies / error replies). */
    std::uint64_t requestsServed() const { return _requests.load(); }
    std::uint64_t errorsServed() const { return _errors.load(); }

  private:
    net::Frame serve(const net::Frame &request);

    net::Body handleUpload(const net::UploadTraceReq &req);
    net::Body handlePredict(const net::PredictReq &req);
    net::Body handleWhatIf(const net::WhatIfGridReq &req);
    net::Body handleOptimalVf(const net::OptimalVfReq &req);
    net::Body handleStats();

    /** Predictor by canonical name, or null. */
    const pred::Predictor *predictorByName(const std::string &name) const;

    TraceStore &_store;
    const ServerCounters *_counters;
    trace::ReplayEngine _engine;  ///< the registry's Figure 3 zoo
    /** name() -> borrowed pointer into the engine's set. */
    std::map<std::string, const pred::Predictor *> _byName;

    std::atomic<std::uint64_t> _requests{0};
    std::atomic<std::uint64_t> _responses{0};
    std::atomic<std::uint64_t> _errors{0};
};

} // namespace dvfs::serve

#endif // DVFS_SERVE_SERVICE_HH
