/**
 * @file
 * Futex table: kernel-side wait queues keyed by sync id.
 *
 * Mirrors the Linux futex interface the paper intercepts: user-space
 * synchronization objects (mutexes, barriers) enter the kernel only to
 * sleep and to wake sleepers. The table holds FIFO wait queues; policy
 * (who to wake, when) lives in the callers.
 */

#ifndef DVFS_OS_FUTEX_HH
#define DVFS_OS_FUTEX_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "os/action.hh"

namespace dvfs::os {

/**
 * Wait queues for all futexes in the machine.
 */
class FutexTable
{
  public:
    /** Allocate a fresh futex id. */
    SyncId allocate();

    /** Enqueue @p tid on futex @p f (caller marks the thread Blocked). */
    void wait(SyncId f, ThreadId tid);

    /**
     * Dequeue up to @p n waiters from futex @p f, FIFO order.
     * @return The woken thread ids (may be fewer than @p n).
     */
    std::vector<ThreadId> wake(SyncId f, std::uint32_t n);

    /** Number of threads parked on futex @p f. */
    std::size_t waiters(SyncId f) const;

    /**
     * Remove @p tid from whatever queue it is in (used only for
     * diagnostics/teardown; normal operation never cancels waits).
     * @return true if the thread was found and removed.
     */
    bool remove(SyncId f, ThreadId tid);

    /** Total threads parked across all futexes. */
    std::size_t totalWaiters() const;

    /** Drop all queues and reset the id allocator. */
    void reset();

  private:
    SyncId _next = 0;
    std::unordered_map<SyncId, std::deque<ThreadId>> _queues;
};

} // namespace dvfs::os

#endif // DVFS_OS_FUTEX_HH
