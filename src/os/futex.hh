/**
 * @file
 * Futex table: kernel-side wait queues keyed by sync id.
 *
 * Mirrors the Linux futex interface the paper intercepts: user-space
 * synchronization objects (mutexes, barriers) enter the kernel only to
 * sleep and to wake sleepers. The table holds FIFO wait queues; policy
 * (who to wake, when) lives in the callers.
 *
 * Sync ids are allocated densely, so the queues live in a flat vector
 * indexed by id, and each queue keeps its first few waiters inline
 * (SmallVector): the wait/wake fast path performs no hashing and, in
 * steady state, no allocation.
 */

#ifndef DVFS_OS_FUTEX_HH
#define DVFS_OS_FUTEX_HH

#include <cstdint>
#include <vector>

#include "os/action.hh"
#include "sim/small_vector.hh"

namespace dvfs::os {

/**
 * Wait queues for all futexes in the machine.
 */
class FutexTable
{
  public:
    /** Allocate a fresh futex id. */
    SyncId allocate();

    /** Enqueue @p tid on futex @p f (caller marks the thread Blocked). */
    void wait(SyncId f, ThreadId tid);

    /**
     * Dequeue up to @p n waiters from futex @p f into @p out (cleared
     * first), FIFO order.
     *
     * The out-parameter form exists for the hot path: callers keep a
     * reusable buffer so a wake allocates nothing. The buffer is the
     * caller's; the table never holds a reference past the call.
     *
     * @return Number of threads woken (== out.size()).
     */
    std::size_t wake(SyncId f, std::uint32_t n, std::vector<ThreadId> &out);

    /** Convenience form of wake() returning a fresh vector. */
    std::vector<ThreadId>
    wake(SyncId f, std::uint32_t n)
    {
        std::vector<ThreadId> out;
        wake(f, n, out);
        return out;
    }

    /** Number of threads parked on futex @p f. */
    std::size_t waiters(SyncId f) const;

    /**
     * Remove @p tid from whatever queue it is in (used only for
     * diagnostics/teardown; normal operation never cancels waits).
     * @return true if the thread was found and removed.
     */
    bool remove(SyncId f, ThreadId tid);

    /** Total threads parked across all futexes. */
    std::size_t totalWaiters() const { return _waiting; }

    /** Drop all queues and reset the id allocator. */
    void reset();

  private:
    /**
     * One futex's FIFO wait queue. Four inline slots cover the common
     * case (a handful of threads per mutex/barrier); a queue that
     * grows past that spills to the heap once and keeps the block.
     */
    using WaitQueue = sim::SmallVector<ThreadId, 4>;

    SyncId _next = 0;
    std::vector<WaitQueue> _queues;  ///< indexed by SyncId, dense
    std::size_t _waiting = 0;        ///< total parked threads
};

} // namespace dvfs::os

#endif // DVFS_OS_FUTEX_HH
