/**
 * @file
 * Simulated threads and the thread-program interface.
 */

#ifndef DVFS_OS_THREAD_HH
#define DVFS_OS_THREAD_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "os/action.hh"
#include "sim/rng.hh"
#include "sim/time.hh"
#include "uarch/perf_counters.hh"

namespace dvfs::os {

/** Lifecycle state of a thread. */
enum class ThreadState {
    New,      ///< created, not yet released to the scheduler
    Ready,    ///< runnable, waiting for a core
    Running,  ///< occupying a core
    Blocked,  ///< parked on a futex
    Finished, ///< exited
};

/** Printable name of a thread state. */
const char *threadStateName(ThreadState s);

/**
 * Context handed to a thread program when it is asked for its next
 * action. Deliberately minimal: programs must be time-blind (they may
 * not observe simulated time) so the identical action stream is
 * produced at every DVFS setting.
 */
struct ThreadContext {
    ThreadId tid;
    sim::Rng &rng;

    /**
     * True when the OS is fast-forwarding (sampled mode): the program
     * must perform the *identical* RNG draw sequence but may return
     * address-free lite work descriptors (uarch work specs with their
     * lite fields set) instead of materialising addresses. Programs
     * may ignore the flag — a full spec is always acceptable.
     */
    bool liteTiming = false;
};

/**
 * A thread's behaviour: a pull-driven generator of actions.
 *
 * next() is called exactly once per completed action; returning an
 * Exit action ends the thread. Programs own all their workload state
 * (loop counters, address cursors, ...).
 */
class ThreadProgram
{
  public:
    virtual ~ThreadProgram() = default;

    /** Produce the thread's next action. */
    virtual Action next(ThreadContext &ctx) = 0;
};

/**
 * OS bookkeeping for one thread.
 */
class Thread
{
  public:
    Thread(ThreadId id, std::string name,
           std::unique_ptr<ThreadProgram> program, bool service,
           sim::Rng rng)
        : id(id), name(std::move(name)), program(std::move(program)),
          service(service), rng(rng)
    {
    }

    const ThreadId id;
    const std::string name;
    std::unique_ptr<ThreadProgram> program;

    /** True for runtime service threads (GC workers). */
    const bool service;

    /** Per-thread deterministic random stream. */
    sim::Rng rng;

    ThreadState state = ThreadState::New;

    /** Core the thread occupies while Running, -1 otherwise. */
    std::int32_t core = -1;

    /** Futex the thread is parked on while Blocked. */
    SyncId blockedOn = kNoSync;

    /**
     * Set when the thread was spuriously woken: on its next dispatch
     * it re-parks on this futex (the user-space retry loop) instead of
     * consulting its program. The thread keeps its wait-queue entry,
     * so a genuine wake during the retry window is never lost.
     */
    SyncId retryFutex = kNoSync;

    /** Tick at which the thread last became Blocked (diagnostics). */
    Tick blockedSince = kTickNever;

    /** Hardware counters, virtualized per thread by the OS. */
    uarch::PerfCounters counters;

    /** Tick the thread first became ready. */
    Tick spawnTick = 0;

    /** Tick the thread was first scheduled onto a core. */
    Tick firstRunTick = kTickNever;

    /** Tick the thread exited (kTickNever while live). */
    Tick exitTick = kTickNever;

    /** Start of the thread's current timeslice. */
    Tick sliceStart = 0;

    /** Futex other threads wait on to join this thread. */
    SyncId exitFutex = kNoSync;

    /// @name Fast-forward lump state (sampled mode)
    ///
    /// A fast-forward batch charges many actions at construction time
    /// and commits them with a single event; the accumulators live on
    /// the thread so the commit callback captures only a pointer
    /// (staying inside the event kernel's inline-callback budget).
    /// @{

    /** Counters accumulated by the in-flight lump. */
    uarch::PerfCounters ffAccum;

    /** Non-chargeable action that terminated the lump, if any. */
    std::optional<Action> ffPending;
    /// @}

    bool finished() const { return state == ThreadState::Finished; }
};

} // namespace dvfs::os

#endif // DVFS_OS_THREAD_HH
