/**
 * @file
 * The synchronization event trace — what a DEP kernel module sees.
 *
 * The paper's predictor observes the machine through intercepted
 * futex_wait/futex_wake system calls plus scheduler activity
 * (Section III-B) and, for COOP, signals marking garbage-collection
 * phases. SyncEvent is the simulator's rendering of that stream.
 *
 * Listeners are invoked *before* the thread-state change implied by
 * the event is applied, so a listener closing an epoch observes the
 * machine as it was during that epoch.
 */

#ifndef DVFS_OS_TRACE_HH
#define DVFS_OS_TRACE_HH

#include <cstdint>

#include "os/action.hh"
#include "sim/time.hh"

namespace dvfs::os {

class System;

/** Kinds of observable synchronization/scheduling events. */
enum class SyncEventKind {
    ThreadSpawn, ///< thread became ready for the first time
    ThreadExit,  ///< thread finished
    FutexWait,   ///< thread is about to park (scheduled out + sleep)
    FutexWake,   ///< thread was woken (about to become runnable)
    SchedIn,     ///< thread placed on a core
    SchedOut,    ///< thread preempted (timeslice), still runnable
    GcBegin,     ///< stop-the-world collection starts (COOP signal)
    GcEnd,       ///< collection finished, application resumes
    RunEnd,      ///< benchmark finished (trace terminator)
};

/** Printable name of an event kind. */
const char *syncEventKindName(SyncEventKind kind);

/** One event in the synchronization trace. */
struct SyncEvent {
    Tick tick = 0;
    SyncEventKind kind = SyncEventKind::RunEnd;
    ThreadId tid = kNoThread;  ///< thread concerned (if any)
    SyncId futex = kNoSync;    ///< futex concerned (if any)
};

/**
 * Observer interface for the synchronization trace.
 *
 * The system reference allows listeners to snapshot thread state and
 * counters at the event boundary.
 */
class SyncListener
{
  public:
    virtual ~SyncListener() = default;

    /** Called for every trace event, in tick order. */
    virtual void onSyncEvent(const SyncEvent &ev, const System &sys) = 0;
};

} // namespace dvfs::os

#endif // DVFS_OS_TRACE_HH
