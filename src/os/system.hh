/**
 * @file
 * The simulated machine: cores + memory + OS, driven by the event
 * queue.
 *
 * The System executes thread programs action by action. Compute and
 * memory actions are timed by the core model; synchronization actions
 * go through user-space mutex/barrier objects that sleep and wake via
 * the futex table, producing the event trace the predictors consume.
 * Managed-runtime behaviour (allocation, GC) is plugged in through the
 * ActionInterceptor interface so the OS layer stays runtime-agnostic.
 */

#ifndef DVFS_OS_SYSTEM_HH
#define DVFS_OS_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/action.hh"
#include "os/futex.hh"
#include "os/scheduler.hh"
#include "os/thread.hh"
#include "os/trace.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/sampling.hh"
#include "uarch/cache.hh"
#include "uarch/core.hh"
#include "uarch/dram.hh"
#include "uarch/fastpath.hh"
#include "uarch/freq_domain.hh"

namespace dvfs::fault {
class FaultPlan;
}

namespace dvfs::os {

/** Full machine configuration. */
struct SystemConfig {
    std::uint32_t cores = 4;
    uarch::CoreConfig core{};
    uarch::HierarchyConfig caches{};
    uarch::DramConfig dram{};

    /** Initial chip-wide core frequency. */
    Frequency coreFreq = Frequency::mhz(1000);
    /** Fixed uncore (shared L3) frequency, Table II. */
    Frequency uncoreFreq = Frequency::mhz(1500);

    /** Round-robin timeslice when threads outnumber cores. */
    Tick timeslice = 20 * kTicksPerUs;

    /**
     * Chip-wide stall on a DVFS transition. The paper models 2 us;
     * our default is scaled 1/100 with the rest of the time base.
     */
    Tick dvfsTransitionLatency = 20 * kTicksPerNs;

    /** Kernel instructions charged when a thread is scheduled in. */
    std::uint64_t ctxSwitchInstructions = 300;

    /** Deterministic seed for all thread RNG streams. */
    std::uint64_t seed = 42;

    /** Hard cap on executed events (runaway guard). */
    std::uint64_t maxEvents = 400'000'000ULL;
};

/**
 * Managed-runtime hook points.
 *
 * The runtime sees every thread just before it asks its program for
 * the next action (safepoint polls, deferred allocation continuations)
 * and owns the translation of Alloc actions.
 */
class ActionInterceptor
{
  public:
    virtual ~ActionInterceptor() = default;

    /**
     * Called before pulling the program's next action. A returned
     * action is executed first (the program is not consulted).
     */
    virtual std::optional<Action> interceptNext(Thread &t) = 0;

    /**
     * Translate an Alloc action into a machine action (zero-init
     * burst, or a park when a collection is required). Returning
     * nullopt makes the allocation free (no managed runtime).
     */
    virtual std::optional<Action> onAlloc(Thread &t,
                                          std::uint64_t bytes) = 0;
};

/** Outcome of System::run(). */
struct RunResult {
    Tick totalTime = 0;        ///< tick at which the main thread exited
    bool finished = false;     ///< main thread exited before the limit
    std::uint64_t events = 0;  ///< events executed
    bool aborted = false;      ///< a component requested an early stop
    std::string abortReason;   ///< why (watchdog diagnostic, ...)
};

/**
 * The machine.
 */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /// @name Construction-time setup
    /// @{

    /**
     * Create a thread.
     *
     * @param name    Debug name.
     * @param program Behaviour (ownership transferred).
     * @param service True for runtime service threads (GC workers);
     *                service threads do not gate stop-the-world
     *                quiescence and are excluded from "application"
     *                accounting.
     */
    ThreadId addThread(const std::string &name,
                       std::unique_ptr<ThreadProgram> program,
                       bool service = false);

    /** Create a mutex; returns its sync id. */
    SyncId createMutex();

    /** Create a barrier for @p parties threads; returns its sync id. */
    SyncId createBarrier(std::uint32_t parties);

    /** Create a raw futex (FutexWait/futexWake*). */
    SyncId createFutex();

    /** Thread whose exit terminates the run. */
    void setMainThread(ThreadId tid) { _mainThread = tid; }

    /** Install the managed-runtime hooks (at most one). */
    void setInterceptor(ActionInterceptor *icpt) { _interceptor = icpt; }

    /** Register a trace listener (predictor recorder, runtime, ...). */
    void addListener(SyncListener *l) { _listeners.push_back(l); }

    /**
     * Enable interval-sampled execution: detail windows run the full
     * cycle-accurate path (and fit the fast-path model), gaps charge
     * timed actions analytically in batched lumps. Call before run().
     * DVFS transitions are legal while sampling: setFrequency switches
     * the fast-path model to the new operating point (forking its eras
     * on first visit) and forces a detail window around the
     * transition, so energy-manager-governed runs sample soundly.
     */
    void enableSampling(const sim::SamplingConfig &cfg);
    /// @}

    /// @name Services for the runtime and the energy manager
    /// @{

    /** Wake up to @p n threads parked on @p f. */
    std::uint32_t futexWake(SyncId f, std::uint32_t n);

    /** Wake every thread parked on @p f. */
    std::uint32_t futexWakeAll(SyncId f);

    /**
     * Chip-wide DVFS transition: all cores stall for the transition
     * latency, then run at @p f. No-op if @p f is already set.
     */
    void setFrequency(Frequency f);

    /** Observe DVFS transitions (energy meter). */
    void addFrequencyObserver(std::function<void(Frequency, Tick)> fn);

    /** Emit a GC phase marker into the trace (GcBegin / GcEnd). */
    void recordPhaseEvent(SyncEventKind kind);

    /**
     * Install a fault plan (nullable). Covers the DVFS, preemption and
     * DRAM hook points; spurious-wake pumping is driven externally via
     * injectSpuriousWake (see fault::installFaults).
     */
    void setFaultPlan(fault::FaultPlan *plan);

    /** The installed fault plan, or nullptr. */
    fault::FaultPlan *faultPlan() const { return _faultPlan; }

    /**
     * Deliver a spurious wakeup to @p tid: the thread gets a brief
     * runnable episode and re-parks (user-space retry loop), keeping
     * its wait-queue entry so genuine wakes are never lost.
     *
     * @return false if the thread is not currently Blocked.
     */
    bool injectSpuriousWake(ThreadId tid);

    /**
     * Ask the run loop to stop before the next event (watchdog /
     * auditor escalation). The RunResult reports the reason.
     */
    void requestStop(std::string reason);

    /** True once a stop was requested. */
    bool stopRequested() const { return _stopRequested; }

    /** True once the main thread exited. */
    bool runEnded() const { return _runEnded; }
    /// @}

    /// @name Execution
    /// @{

    /**
     * Release all threads and run until the main thread exits (or
     * @p limit / the event cap is hit). May be called once.
     */
    RunResult run(Tick limit = kTickNever);
    /// @}

    /// @name Queries
    /// @{
    Tick now() const { return _eq.now(); }
    sim::EventQueue &eventQueue() { return _eq; }
    Frequency frequency() const { return _coreDomain.frequency(); }
    const uarch::FreqDomain &coreDomain() const { return _coreDomain; }
    const uarch::FreqDomain &uncoreDomain() const { return _uncoreDomain; }
    uarch::CacheHierarchy &memory() { return *_mem; }
    uarch::Dram &dram() { return _dram; }
    const SystemConfig &config() const { return _cfg; }

    std::size_t numThreads() const { return _threads.size(); }
    const Thread &thread(ThreadId tid) const { return *_threads.at(tid); }
    Thread &threadMut(ThreadId tid) { return *_threads.at(tid); }

    /** Sum of all threads' counters. */
    uarch::PerfCounters totalCounters() const;

    /** True if no non-service thread is Running or Ready. */
    bool appThreadsQuiescent() const;

    /** Number of live (not Finished) non-service threads. */
    std::uint32_t liveAppThreads() const;

    const Scheduler &scheduler() const { return _sched; }

    /** Sampling controller, or nullptr when running exact. */
    const sim::SamplingController *sampling() const
    {
        return _sampler.get();
    }

    /** Fast-path model, or nullptr when running exact. */
    const uarch::FastPathModel *fastPath() const
    {
        return _fastPath.get();
    }
    /// @}

  private:
    struct MutexObj {
        SyncId futex = kNoSync;
        bool held = false;
        ThreadId owner = kNoThread;
    };

    struct BarrierObj {
        SyncId futex = kNoSync;
        std::uint32_t parties = 0;
        std::uint32_t arrived = 0;
    };

    /** Emit a trace event to all listeners. */
    void emit(SyncEventKind kind, ThreadId tid, SyncId futex = kNoSync);

    /** Thread becomes runnable (spawn or wake); core fill is deferred. */
    void becomeReady(Thread &t, bool isWake);

    /** Idempotently schedule a core-fill pass at the current tick. */
    void requestFill();

    /** Assign ready threads to free cores. */
    void fillCores();

    /** Put @p t on core @p c and start its dispatch. */
    void schedIn(Thread &t, std::uint32_t c);

    /** Ask for and start the thread's next action. */
    void dispatch(Thread &t);

    /** Execute one action for a running thread. */
    void execute(Thread &t, Action a);

    /** The cycle-accurate half of execute() (detail phase/fallback). */
    void executeDetailed(Thread &t, Action a);

    /**
     * Fast-forward batching: charge @p first and as many subsequent
     * actions as possible analytically, then schedule one lump-commit
     * event at the accumulated virtual time.
     */
    void executeFastForward(Thread &t, Action first);

    /**
     * Charge one action from the fast-path model at virtual time
     * @p vt. Returns false for actions that must execute exactly
     * (sync, exit, cold-model full-spec work).
     */
    bool chargeFastForward(Thread &t, const Action &a, Tick vt,
                           Tick &elapsed, uarch::PerfCounters &acc);

    /** Commit an in-flight fast-forward lump (event callback). */
    void commitFastForward(Thread &t);

    /** Commit deferred counters and continue the thread. */
    void finishTimedAction(Thread &t, Tick end,
                           const uarch::PerfCounters &delta);

    /** Action-boundary scheduling policy (timeslice round-robin). */
    void onActionDone(Thread &t);

    /** Thread parks on futex @p f (commits a pending sleep). */
    void parkCommit(Thread &t, SyncId f);

    /** Release the core @p t occupies. */
    void vacateCore(Thread &t);

    /** Terminal handling of an Exit action. */
    void finishThread(Thread &t);

    /** Per-action helpers. */
    void doMutexLock(Thread &t, SyncId m);
    void doMutexUnlock(Thread &t, SyncId m);
    void doBarrierWait(Thread &t, SyncId b);
    void doJoin(Thread &t, ThreadId target);

    Tick frozenStart(Tick t) const
    {
        return t < _frozenUntil ? _frozenUntil : t;
    }

    SystemConfig _cfg;
    sim::EventQueue _eq;
    uarch::FreqDomain _coreDomain;
    uarch::FreqDomain _uncoreDomain;
    uarch::Dram _dram;
    std::unique_ptr<uarch::CacheHierarchy> _mem;
    std::vector<std::unique_ptr<uarch::CoreModel>> _cores;
    Scheduler _sched;
    FutexTable _futexes;
    sim::Rng _rootRng;

    std::vector<std::unique_ptr<Thread>> _threads;
    std::unordered_map<SyncId, MutexObj> _mutexes;
    std::unordered_map<SyncId, BarrierObj> _barriers;
    /** Threads woken between futex enqueue and park commit. */
    std::vector<bool> _pendingWake;

    ActionInterceptor *_interceptor = nullptr;
    std::vector<SyncListener *> _listeners;
    std::vector<std::function<void(Frequency, Tick)>> _freqObservers;

    /**
     * Reusable buffer for futex wake lists, so the wake path performs
     * no allocation in steady state. Valid only within one wake call
     * chain; safe because nothing in becomeReady()/requestFill()
     * triggers a nested wake synchronously (fills are deferred to an
     * event).
     */
    std::vector<ThreadId> _wokenScratch;
    bool _wakeActive = false;  ///< guards _wokenScratch reentrancy

    ThreadId _mainThread = kNoThread;
    bool _runStarted = false;
    bool _runEnded = false;
    bool _fillPending = false;
    Tick _frozenUntil = 0;

    fault::FaultPlan *_faultPlan = nullptr;
    bool _stopRequested = false;
    std::string _stopReason;

    /** Sampled-mode machinery (both null when running exact). */
    std::unique_ptr<sim::SamplingController> _sampler;
    std::unique_ptr<uarch::FastPathModel> _fastPath;
};

} // namespace dvfs::os

#endif // DVFS_OS_SYSTEM_HH
