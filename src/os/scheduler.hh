/**
 * @file
 * Core-occupancy and ready-queue bookkeeping.
 *
 * Pure mechanism: the System decides *when* to schedule; the Scheduler
 * tracks which thread occupies which core and who is waiting for one.
 * FIFO ready queue (round-robin with the System's timeslice policy).
 */

#ifndef DVFS_OS_SCHEDULER_HH
#define DVFS_OS_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "os/action.hh"

namespace dvfs::os {

/**
 * Tracks cores and the ready queue.
 */
class Scheduler
{
  public:
    explicit Scheduler(std::uint32_t cores);

    /** Number of cores. */
    std::uint32_t cores() const
    {
        return static_cast<std::uint32_t>(_coreOccupant.size());
    }

    /** Index of a free core, or -1. */
    std::int32_t freeCore() const;

    /** Thread on core @p c, or kNoThread. */
    ThreadId occupant(std::uint32_t c) const { return _coreOccupant[c]; }

    /** Place @p tid on core @p c (must be free). */
    void assign(ThreadId tid, std::uint32_t c);

    /** Vacate core @p c (must be occupied). */
    void release(std::uint32_t c);

    /** Append @p tid to the ready queue. */
    void enqueueReady(ThreadId tid);

    /** Pop the oldest ready thread, or kNoThread. */
    ThreadId popReady();

    bool hasReady() const { return !_ready.empty(); }
    std::size_t readyCount() const { return _ready.size(); }

    /** Number of occupied cores. */
    std::uint32_t busyCores() const;

    /** Clear all state, keeping the core count. */
    void reset();

  private:
    std::vector<ThreadId> _coreOccupant;
    std::deque<ThreadId> _ready;
};

} // namespace dvfs::os

#endif // DVFS_OS_SCHEDULER_HH
