/**
 * @file
 * The action vocabulary of simulated threads.
 *
 * A thread program is a pull-driven state machine: whenever a thread's
 * previous action completes, the OS asks the program for the next
 * action. Actions carry only *logical* work — instruction counts,
 * addresses, synchronization object ids, allocation sizes — never
 * durations, so a program run at 1 GHz and at 4 GHz performs the
 * identical sequence of work (the replay-compilation property the
 * paper's methodology relies on).
 */

#ifndef DVFS_OS_ACTION_HH
#define DVFS_OS_ACTION_HH

#include <cstdint>

#include "uarch/work.hh"

namespace dvfs::os {

/** Identifies a simulated thread. */
using ThreadId = std::uint32_t;

/** Sentinel thread id. */
constexpr ThreadId kNoThread = static_cast<ThreadId>(-1);

/** Identifies a futex / mutex / barrier. */
using SyncId = std::uint32_t;

/** Sentinel sync id. */
constexpr SyncId kNoSync = static_cast<SyncId>(-1);

/** What a thread wants to do next. */
enum class ActionKind {
    Compute,     ///< straight-line computation (uarch::ComputeSpec)
    MissCluster, ///< long-latency load cluster (uarch::MissClusterSpec)
    StoreBurst,  ///< store burst (uarch::StoreBurstSpec)
    MutexLock,   ///< acquire a mutex (may block)
    MutexUnlock, ///< release a mutex (may wake a waiter)
    BarrierWait, ///< arrive at a barrier (blocks unless last)
    FutexWait,   ///< park on a raw futex until woken
    Alloc,       ///< allocate managed memory (handled by the runtime)
    Join,        ///< wait for another thread to exit
    Exit,        ///< terminate this thread
};

/**
 * One action. A tagged struct rather than std::variant: the payloads
 * are small, and the OS dispatch switch stays flat and readable.
 */
struct Action {
    ActionKind kind = ActionKind::Exit;

    uarch::ComputeSpec compute{};      ///< valid for Compute
    uarch::MissClusterSpec cluster{};  ///< valid for MissCluster
    uarch::StoreBurstSpec burst{};     ///< valid for StoreBurst
    SyncId sync = kNoSync;             ///< mutex/barrier/futex id
    std::uint64_t allocBytes = 0;      ///< valid for Alloc
    ThreadId joinTarget = kNoThread;   ///< valid for Join

    /// @name Factories
    /// @{
    static Action
    makeCompute(std::uint64_t instructions, std::uint32_t l2_loads = 0,
                std::uint32_t l3_loads = 0, double ipc_scale = 1.0)
    {
        Action a;
        a.kind = ActionKind::Compute;
        a.compute = uarch::ComputeSpec{instructions, l2_loads, l3_loads,
                                       ipc_scale};
        return a;
    }

    static Action
    makeCluster(uarch::MissClusterSpec spec)
    {
        Action a;
        a.kind = ActionKind::MissCluster;
        a.cluster = std::move(spec);
        return a;
    }

    static Action
    makeStoreBurst(std::uint64_t base, std::uint32_t lines,
                   std::uint32_t stores_per_line = 2)
    {
        Action a;
        a.kind = ActionKind::StoreBurst;
        a.burst = uarch::StoreBurstSpec{base, lines, stores_per_line};
        return a;
    }

    static Action
    makeMutexLock(SyncId m)
    {
        Action a;
        a.kind = ActionKind::MutexLock;
        a.sync = m;
        return a;
    }

    static Action
    makeMutexUnlock(SyncId m)
    {
        Action a;
        a.kind = ActionKind::MutexUnlock;
        a.sync = m;
        return a;
    }

    static Action
    makeBarrierWait(SyncId b)
    {
        Action a;
        a.kind = ActionKind::BarrierWait;
        a.sync = b;
        return a;
    }

    static Action
    makeFutexWait(SyncId f)
    {
        Action a;
        a.kind = ActionKind::FutexWait;
        a.sync = f;
        return a;
    }

    static Action
    makeAlloc(std::uint64_t bytes)
    {
        Action a;
        a.kind = ActionKind::Alloc;
        a.allocBytes = bytes;
        return a;
    }

    static Action
    makeJoin(ThreadId target)
    {
        Action a;
        a.kind = ActionKind::Join;
        a.joinTarget = target;
        return a;
    }

    static Action
    makeExit()
    {
        Action a;
        a.kind = ActionKind::Exit;
        return a;
    }
    /// @}
};

/** Printable name of an action kind. */
const char *actionKindName(ActionKind kind);

} // namespace dvfs::os

#endif // DVFS_OS_ACTION_HH
