#include "os/scheduler.hh"

#include "sim/log.hh"

namespace dvfs::os {

Scheduler::Scheduler(std::uint32_t cores)
{
    if (cores == 0)
        fatal("scheduler needs at least one core");
    _coreOccupant.assign(cores, kNoThread);
}

std::int32_t
Scheduler::freeCore() const
{
    for (std::size_t c = 0; c < _coreOccupant.size(); ++c) {
        if (_coreOccupant[c] == kNoThread)
            return static_cast<std::int32_t>(c);
    }
    return -1;
}

void
Scheduler::assign(ThreadId tid, std::uint32_t c)
{
    DVFS_ASSERT(tid != kNoThread, "assigning no-thread to a core");
    DVFS_ASSERT(c < _coreOccupant.size(), "core index out of range");
    DVFS_ASSERT(_coreOccupant[c] == kNoThread, "core already occupied");
    _coreOccupant[c] = tid;
}

void
Scheduler::release(std::uint32_t c)
{
    DVFS_ASSERT(c < _coreOccupant.size(), "core index out of range");
    DVFS_ASSERT(_coreOccupant[c] != kNoThread, "releasing a free core");
    _coreOccupant[c] = kNoThread;
}

void
Scheduler::enqueueReady(ThreadId tid)
{
    DVFS_ASSERT(tid != kNoThread, "enqueueing no-thread");
    _ready.push_back(tid);
}

ThreadId
Scheduler::popReady()
{
    if (_ready.empty())
        return kNoThread;
    ThreadId t = _ready.front();
    _ready.pop_front();
    return t;
}

std::uint32_t
Scheduler::busyCores() const
{
    std::uint32_t n = 0;
    for (ThreadId t : _coreOccupant) {
        if (t != kNoThread)
            ++n;
    }
    return n;
}

void
Scheduler::reset()
{
    std::fill(_coreOccupant.begin(), _coreOccupant.end(), kNoThread);
    _ready.clear();
}

} // namespace dvfs::os
