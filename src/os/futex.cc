#include "os/futex.hh"

#include <algorithm>

#include "sim/log.hh"

namespace dvfs::os {

SyncId
FutexTable::allocate()
{
    return _next++;
}

void
FutexTable::wait(SyncId f, ThreadId tid)
{
    if (f == kNoSync)
        panic("futex wait on invalid sync id (thread %u)", tid);
    _queues[f].push_back(tid);
}

std::vector<ThreadId>
FutexTable::wake(SyncId f, std::uint32_t n)
{
    std::vector<ThreadId> woken;
    auto it = _queues.find(f);
    if (it == _queues.end())
        return woken;
    auto &q = it->second;
    while (n-- > 0 && !q.empty()) {
        woken.push_back(q.front());
        q.pop_front();
    }
    if (q.empty())
        _queues.erase(it);
    return woken;
}

std::size_t
FutexTable::waiters(SyncId f) const
{
    auto it = _queues.find(f);
    return it == _queues.end() ? 0 : it->second.size();
}

bool
FutexTable::remove(SyncId f, ThreadId tid)
{
    auto it = _queues.find(f);
    if (it == _queues.end())
        return false;
    auto &q = it->second;
    auto pos = std::find(q.begin(), q.end(), tid);
    if (pos == q.end())
        return false;
    q.erase(pos);
    if (q.empty())
        _queues.erase(it);
    return true;
}

std::size_t
FutexTable::totalWaiters() const
{
    std::size_t n = 0;
    for (const auto &[id, q] : _queues)
        n += q.size();
    return n;
}

void
FutexTable::reset()
{
    _queues.clear();
    _next = 0;
}

} // namespace dvfs::os
