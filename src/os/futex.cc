#include "os/futex.hh"

#include <algorithm>

#include "sim/log.hh"

namespace dvfs::os {

SyncId
FutexTable::allocate()
{
    _queues.emplace_back();
    return _next++;
}

void
FutexTable::wait(SyncId f, ThreadId tid)
{
    if (f == kNoSync)
        panic("futex wait on invalid sync id (thread %u)", tid);
    // Ids are normally dense (from allocate()), but tolerate waits on
    // ids minted elsewhere, as the hash-map representation did.
    if (f >= _queues.size())
        _queues.resize(f + 1);
    _queues[f].push_back(tid);
    ++_waiting;
}

std::size_t
FutexTable::wake(SyncId f, std::uint32_t n, std::vector<ThreadId> &out)
{
    out.clear();
    if (f >= _queues.size())
        return 0;
    WaitQueue &q = _queues[f];
    while (n-- > 0 && !q.empty()) {
        out.push_back(q.front());
        q.erase(q.begin());
    }
    _waiting -= out.size();
    return out.size();
}

std::size_t
FutexTable::waiters(SyncId f) const
{
    return f < _queues.size() ? _queues[f].size() : 0;
}

bool
FutexTable::remove(SyncId f, ThreadId tid)
{
    if (f >= _queues.size())
        return false;
    WaitQueue &q = _queues[f];
    auto pos = std::find(q.begin(), q.end(), tid);
    if (pos == q.end())
        return false;
    q.erase(pos);
    --_waiting;
    return true;
}

void
FutexTable::reset()
{
    _queues.clear();
    _waiting = 0;
    _next = 0;
}

} // namespace dvfs::os
