#include "os/system.hh"

#include <algorithm>

#include "fault/fault_plan.hh"
#include "sim/log.hh"
#include "sim/profile.hh"

namespace dvfs::os {

const char *
actionKindName(ActionKind kind)
{
    switch (kind) {
      case ActionKind::Compute: return "Compute";
      case ActionKind::MissCluster: return "MissCluster";
      case ActionKind::StoreBurst: return "StoreBurst";
      case ActionKind::MutexLock: return "MutexLock";
      case ActionKind::MutexUnlock: return "MutexUnlock";
      case ActionKind::BarrierWait: return "BarrierWait";
      case ActionKind::FutexWait: return "FutexWait";
      case ActionKind::Alloc: return "Alloc";
      case ActionKind::Join: return "Join";
      case ActionKind::Exit: return "Exit";
    }
    return "?";
}

const char *
threadStateName(ThreadState s)
{
    switch (s) {
      case ThreadState::New: return "New";
      case ThreadState::Ready: return "Ready";
      case ThreadState::Running: return "Running";
      case ThreadState::Blocked: return "Blocked";
      case ThreadState::Finished: return "Finished";
    }
    return "?";
}

const char *
syncEventKindName(SyncEventKind kind)
{
    switch (kind) {
      case SyncEventKind::ThreadSpawn: return "ThreadSpawn";
      case SyncEventKind::ThreadExit: return "ThreadExit";
      case SyncEventKind::FutexWait: return "FutexWait";
      case SyncEventKind::FutexWake: return "FutexWake";
      case SyncEventKind::SchedIn: return "SchedIn";
      case SyncEventKind::SchedOut: return "SchedOut";
      case SyncEventKind::GcBegin: return "GcBegin";
      case SyncEventKind::GcEnd: return "GcEnd";
      case SyncEventKind::RunEnd: return "RunEnd";
    }
    return "?";
}

System::System(const SystemConfig &cfg)
    : _cfg(cfg),
      _coreDomain("core", cfg.coreFreq),
      _uncoreDomain("uncore", cfg.uncoreFreq),
      _dram(cfg.dram),
      _sched(cfg.cores),
      _rootRng(cfg.seed)
{
    _mem = std::make_unique<uarch::CacheHierarchy>(cfg.cores, cfg.caches,
                                                   _dram, _uncoreDomain);
    _cores.reserve(cfg.cores);
    for (std::uint32_t c = 0; c < cfg.cores; ++c) {
        _cores.push_back(std::make_unique<uarch::CoreModel>(
            c, cfg.core, *_mem, _coreDomain));
    }
}

ThreadId
System::addThread(const std::string &name,
                  std::unique_ptr<ThreadProgram> program, bool service)
{
    if (_runStarted)
        fatal("cannot add threads after the run started");
    auto tid = static_cast<ThreadId>(_threads.size());
    auto t = std::make_unique<Thread>(tid, name, std::move(program),
                                      service, _rootRng.split(tid + 1));
    t->exitFutex = _futexes.allocate();
    _threads.push_back(std::move(t));
    _pendingWake.push_back(false);
    return tid;
}

SyncId
System::createMutex()
{
    SyncId f = _futexes.allocate();
    _mutexes.emplace(f, MutexObj{f, false, kNoThread});
    return f;
}

SyncId
System::createBarrier(std::uint32_t parties)
{
    if (parties == 0)
        fatal("barrier needs at least one party");
    SyncId f = _futexes.allocate();
    _barriers.emplace(f, BarrierObj{f, parties, 0});
    return f;
}

SyncId
System::createFutex()
{
    return _futexes.allocate();
}

void
System::emit(SyncEventKind kind, ThreadId tid, SyncId futex)
{
    SyncEvent ev{_eq.now(), kind, tid, futex};
    for (auto *l : _listeners)
        l->onSyncEvent(ev, *this);
}

void
System::recordPhaseEvent(SyncEventKind kind)
{
    DVFS_ASSERT(kind == SyncEventKind::GcBegin ||
                kind == SyncEventKind::GcEnd,
                "recordPhaseEvent takes only GC phase markers");
    // Managed sampled runs observe every GC boundary in detail: the
    // collector's behaviour is what the manager's COOP signal keys on,
    // so it must never be synthesized from stale eras.
    if (_sampler && _sampler->config().forceDetailAtGc)
        _sampler->forceDetail();
    emit(kind, kNoThread, kNoSync);
}

void
System::addFrequencyObserver(std::function<void(Frequency, Tick)> fn)
{
    // Grow in explicit steps so registration from inside an observer
    // callback (mid-notification) never reallocates out from under
    // the iteration in setFrequency — which additionally walks by
    // index over a size snapshot, so a mid-notification registrant
    // starts observing with the *next* transition and misses none
    // after it.
    if (_freqObservers.size() == _freqObservers.capacity())
        _freqObservers.reserve(std::max<std::size_t>(
            8, _freqObservers.capacity() * 2));
    _freqObservers.push_back(std::move(fn));
}

void
System::setFaultPlan(fault::FaultPlan *plan)
{
    _faultPlan = plan;
    _dram.setFaultPlan(plan);
}

void
System::requestStop(std::string reason)
{
    if (_stopRequested)
        return;
    _stopRequested = true;
    _stopReason = std::move(reason);
}

void
System::enableSampling(const sim::SamplingConfig &cfg)
{
    if (_runStarted)
        fatal("enableSampling must be called before run()");
    if (_sampler)
        fatal("enableSampling called twice");
    _sampler = std::make_unique<sim::SamplingController>(_eq, cfg);
    _fastPath = std::make_unique<uarch::FastPathModel>(_cfg.cores);
    _fastPath->setOperatingPoint(_coreDomain.frequency().toMHz());
    _mem->enableWarmOverlay();
    // Each gap charges at the freshest detail window's rates: promote
    // the model's fitting windows at every detail -> gap boundary.
    _sampler->onFlip([this](sim::SamplePhase p) {
        if (p == sim::SamplePhase::FastForward)
            _fastPath->age();
    });
    // Adaptive placement keys off the model's fitted-term drift.
    _sampler->driftProbe(
        [this] { return _fastPath->lastDriftPermille(); });
}

void
System::setFrequency(Frequency f)
{
    if (!f.valid())
        fatal("setFrequency: invalid frequency");
    if (f == _coreDomain.frequency())
        return;
    Tick stall = _cfg.dvfsTransitionLatency;
    if (_faultPlan) {
        // The PCU may drop the request entirely, or take longer than
        // the documented transition latency.
        if (_faultPlan->dvfsReject(_eq.now())) {
            debugLog("dvfs transition to %s rejected (injected fault)",
                     f.toString().c_str());
            return;
        }
        stall += _faultPlan->dvfsExtraDelay(_eq.now());
    }
    if (_sampler) {
        // The fitted eras are valid only at the frequency they were
        // observed at: switch the model to the new operating point
        // (warm-forking its eras from the old one on first visit) and
        // force a detail window so the point refits from real
        // execution. In-flight fast-forward lumps commit with the old
        // timing, matching the "in-flight work completes" semantics
        // of the transition stall below.
        _fastPath->setOperatingPoint(f.toMHz());
        _sampler->noteTransition();
    }
    // All in-flight work completes with the old timing; newly
    // dispatched work waits out the chip-wide transition stall.
    _frozenUntil = std::max(_frozenUntil, _eq.now() + stall);
    // Index loop over a size snapshot: an observer registered during
    // notification must not invalidate this walk (and sees only
    // subsequent transitions).
    const std::size_t n_obs = _freqObservers.size();
    for (std::size_t i = 0; i < n_obs; ++i)
        _freqObservers[i](f, _eq.now());
    _coreDomain.setFrequency(f, _eq.now());
}

std::uint32_t
System::futexWake(SyncId f, std::uint32_t n)
{
    DVFS_ASSERT(!_wakeActive,
                "reentrant futexWake would clobber the wake scratch");
    _wakeActive = true;
    auto &woken = _wokenScratch;
    _futexes.wake(f, n, woken);
    for (ThreadId tid : woken) {
        Thread &w = *_threads[tid];
        if (w.state == ThreadState::Blocked) {
            becomeReady(w, true);
        } else {
            // The waiter has not committed its sleep yet; its
            // park will turn into an immediate continue.
            _pendingWake[tid] = true;
        }
    }
    _wakeActive = false;
    return static_cast<std::uint32_t>(woken.size());
}

std::uint32_t
System::futexWakeAll(SyncId f)
{
    return futexWake(f, std::numeric_limits<std::uint32_t>::max());
}

void
System::becomeReady(Thread &t, bool isWake)
{
    emit(isWake ? SyncEventKind::FutexWake : SyncEventKind::ThreadSpawn,
         t.id, isWake ? t.blockedOn : kNoSync);
    t.state = ThreadState::Ready;
    t.blockedOn = kNoSync;
    _sched.enqueueReady(t.id);
    requestFill();
}

void
System::requestFill()
{
    if (_fillPending || _runEnded)
        return;
    _fillPending = true;
    _eq.schedule(_eq.now(), [this] {
        _fillPending = false;
        fillCores();
    });
}

void
System::fillCores()
{
    while (_sched.hasReady()) {
        std::int32_t c = _sched.freeCore();
        if (c < 0)
            return;
        ThreadId tid = _sched.popReady();
        schedIn(*_threads[tid], static_cast<std::uint32_t>(c));
    }
}

void
System::schedIn(Thread &t, std::uint32_t c)
{
    DVFS_ASSERT(t.state == ThreadState::Ready, "schedIn of non-ready thread");
    _sched.assign(t.id, c);
    t.state = ThreadState::Running;
    t.core = static_cast<std::int32_t>(c);
    t.sliceStart = _eq.now();
    if (t.firstRunTick == kTickNever)
        t.firstRunTick = _eq.now();
    emit(SyncEventKind::SchedIn, t.id);

    // Context-switch cost: kernel instructions charged to the
    // incoming thread, scaling with frequency like any other code.
    uarch::ComputeSpec cs{_cfg.ctxSwitchInstructions, 0, 0, 1.0};
    uarch::PerfCounters tmp;
    Tick end = _cores[c]->executeCompute(cs, frozenStart(_eq.now()), tmp);
    Thread *tp = &t;
    _eq.schedule(end, [this, tp, tmp] {
        tp->counters += tmp;
        dispatch(*tp);
    });
}

void
System::dispatch(Thread &t)
{
    DVFS_PROFILE_SCOPE(Os);
    if (_runEnded)
        return;
    DVFS_ASSERT(t.state == ThreadState::Running,
                "dispatch of non-running thread");

    // Retry loop after a spurious wakeup: re-park on the same futex
    // without consulting the program. If a genuine wake raced with the
    // retry window, parkCommit's pendingWake check turns this into an
    // immediate continue.
    if (t.retryFutex != kNoSync) {
        SyncId f = t.retryFutex;
        t.retryFutex = kNoSync;
        parkCommit(t, f);
        return;
    }

    std::optional<Action> a;
    if (_interceptor)
        a = _interceptor->interceptNext(t);
    if (!a) {
        ThreadContext ctx{t.id, t.rng,
                          _sampler && _sampler->fastForward()};
        a = t.program->next(ctx);
    }
    execute(t, std::move(*a));
}

void
System::execute(Thread &t, Action a)
{
    if (_sampler && _sampler->fastForward()) {
        switch (a.kind) {
          case ActionKind::Compute:
          case ActionKind::MissCluster:
          case ActionKind::StoreBurst:
          case ActionKind::Alloc:
            executeFastForward(t, std::move(a));
            return;
          default:
            break;
        }
    }
    executeDetailed(t, std::move(a));
}

void
System::executeDetailed(Thread &t, Action a)
{
    DVFS_PROFILE_SCOPE(Os);
    DVFS_ASSERT(t.core >= 0, "executing on no core");
    uarch::CoreModel &core = *_cores[static_cast<std::uint32_t>(t.core)];
    const Tick start = frozenStart(_eq.now());
    Thread *tp = &t;

    switch (a.kind) {
      case ActionKind::Compute: {
        uarch::PerfCounters tmp;
        Tick end = core.executeCompute(a.compute, start, tmp);
        if (_sampler)
            _sampler->stats().detailActions += 1;
        _eq.schedule(end, [this, tp, end, tmp] {
            finishTimedAction(*tp, end, tmp);
        });
        break;
      }
      case ActionKind::MissCluster: {
        uarch::PerfCounters tmp;
        Tick end = core.executeCluster(a.cluster, start, tmp);
        if (_fastPath) {
            _fastPath->observeCluster(a.cluster, _sched.busyCores(),
                                      end - start, tmp);
            _sampler->stats().detailActions += 1;
        }
        _eq.schedule(end, [this, tp, end, tmp] {
            finishTimedAction(*tp, end, tmp);
        });
        break;
      }
      case ActionKind::StoreBurst: {
        uarch::PerfCounters tmp;
        Tick end = core.executeStoreBurst(a.burst, start, tmp);
        if (_fastPath) {
            _fastPath->observeBurst(a.burst, _sched.busyCores(),
                                    end - start, tmp);
            _sampler->stats().detailActions += 1;
        }
        _eq.schedule(end, [this, tp, end, tmp] {
            finishTimedAction(*tp, end, tmp);
        });
        break;
      }
      case ActionKind::MutexLock:
        doMutexLock(t, a.sync);
        break;
      case ActionKind::MutexUnlock:
        doMutexUnlock(t, a.sync);
        break;
      case ActionKind::BarrierWait:
        doBarrierWait(t, a.sync);
        break;
      case ActionKind::FutexWait:
        _futexes.wait(a.sync, t.id);
        parkCommit(t, a.sync);
        break;
      case ActionKind::Alloc: {
        std::optional<Action> repl;
        if (_interceptor)
            repl = _interceptor->onAlloc(t, a.allocBytes);
        if (repl) {
            execute(t, std::move(*repl));
        } else {
            // No managed runtime attached: allocation is free.
            onActionDone(t);
        }
        break;
      }
      case ActionKind::Join:
        doJoin(t, a.joinTarget);
        break;
      case ActionKind::Exit:
        finishThread(t);
        break;
    }
}

void
System::executeFastForward(Thread &t, Action first)
{
    DVFS_PROFILE_SCOPE(Os);
    DVFS_ASSERT(t.core >= 0, "executing on no core");
    const Tick lumpStart = frozenStart(_eq.now());
    // Lumps are capped at one timeslice of virtual time so scheduling
    // decisions, safepoint polls and stop-the-world quiescence are
    // delayed by at most the quantum exact mode already allows a
    // thread to run unpreempted.
    const Tick cap = lumpStart + _cfg.timeslice;
    const Tick ffEnd = _sampler->phaseEnd();
    sim::SampleStats &stats = _sampler->stats();

    Tick vt = lumpStart;
    uarch::PerfCounters acc;
    std::optional<Action> tail;
    std::uint64_t charged = 0;
    Action a = std::move(first);

    while (true) {
        if (a.kind == ActionKind::Alloc) {
            // The allocator is time-blind, so allocation folds into
            // the lump: a zero-init replacement is charged like any
            // other action; a GC park replacement terminates the lump
            // below as a non-chargeable action.
            std::optional<Action> repl;
            if (_interceptor)
                repl = _interceptor->onAlloc(t, a.allocBytes);
            if (repl) {
                a = std::move(*repl);
                continue;
            }
            // No managed runtime: allocation is free; pull the next
            // action.
        } else {
            Tick elapsed = 0;
            if (!chargeFastForward(t, a, vt, elapsed, acc)) {
                tail = std::move(a);
                break;
            }
            vt += elapsed;
            charged += 1;
            stats.ffActions += 1;
            // The action cap keeps the run's event cap meaningful for
            // pathological programs whose actions take zero time.
            if (vt >= cap || vt >= ffEnd || charged >= 1u << 16)
                break;
        }
        // Pull the next action exactly as dispatch() would, with the
        // lite-timing hint raised.
        std::optional<Action> next;
        if (_interceptor)
            next = _interceptor->interceptNext(t);
        if (!next) {
            ThreadContext ctx{t.id, t.rng, true};
            next = t.program->next(ctx);
        }
        a = std::move(*next);
    }

    if (charged == 0 && tail) {
        // The first action was not chargeable (cold model or a
        // non-timed action): nothing accumulated, run it exactly.
        // Never a lite spec — lite work is always chargeable (naive
        // fallback), so a tail is either sync/exit or a full spec.
        executeDetailed(t, std::move(*tail));
        return;
    }

    stats.ffCommits += 1;
    t.ffAccum = acc;
    t.ffPending = std::move(tail);
    Thread *tp = &t;
    _eq.schedule(vt, [this, tp] { commitFastForward(*tp); });
}

bool
System::chargeFastForward(Thread &t, const Action &a, Tick vt,
                          Tick &elapsed, uarch::PerfCounters &acc)
{
    uarch::CoreModel &core = *_cores[static_cast<std::uint32_t>(t.core)];
    switch (a.kind) {
      case ActionKind::Compute:
        // Already O(1) analytic and exact at any frequency.
        elapsed = core.executeCompute(a.compute, vt, acc) - vt;
        return true;

      case ActionKind::MissCluster: {
        if (_fastPath->chargeCluster(a.cluster, _sched.busyCores(),
                                     elapsed, acc)) {
            return true;
        }
        if (!a.cluster.lite())
            return false;
        // Cold model on an address-free spec: coarse deterministic
        // estimate (loads charged as shared-cache hits), surfaced in
        // the stats as a fallback.
        uarch::ComputeSpec naive{a.cluster.overlapInstructions, 0,
                                 a.cluster.loadCount(), 1.0};
        elapsed = core.executeCompute(naive, vt, acc) - vt;
        acc.missClusters += 1;
        _sampler->stats().ffFallbacks += 1;
        return true;
      }

      case ActionKind::StoreBurst: {
        // The burst's cache side effects are load-bearing — GC trace
        // speed depends on freshly zeroed nursery lines being
        // resident — but per-line tag walks dominate the whole
        // simulator's wall time. Charge the timing from the fitted
        // model and record the footprint in the hierarchy's warm
        // overlay, which answers later misses to these lines at L3
        // speed without ever having walked them.
        if (!_fastPath->chargeBurst(a.burst, _sched.busyCores(), elapsed,
                                    acc)) {
            return false;  // cold shape: the detailed tail warms it
        }
        _mem->warmLines(a.burst.baseAddr, a.burst.lines);
        return true;
      }

      default:
        return false;
    }
}

void
System::commitFastForward(Thread &t)
{
    if (_runEnded)
        return;
    if (t.state != ThreadState::Running)
        panic("thread %u ('%s') committing a fast-forward lump while %s",
              t.id, t.name.c_str(), threadStateName(t.state));
    t.counters += t.ffAccum;
    t.ffAccum = uarch::PerfCounters{};
    if (t.ffPending) {
        Action tail = std::move(*t.ffPending);
        t.ffPending.reset();
        // Re-enters execute(): a sync tail runs its exact path, a
        // cold-model timed tail either starts the next lump (model
        // warmed meanwhile) or falls back to detailed execution.
        execute(t, std::move(tail));
        return;
    }
    onActionDone(t);
}

void
System::finishTimedAction(Thread &t, Tick end, const uarch::PerfCounters &d)
{
    DVFS_ASSERT(_eq.now() == end, "timed action finishing at wrong tick");
    t.counters += d;
    onActionDone(t);
}

void
System::onActionDone(Thread &t)
{
    if (_runEnded)
        return;
    if (t.state != ThreadState::Running)
        panic("thread %u ('%s') finished an action while %s", t.id,
              t.name.c_str(), threadStateName(t.state));

    // Round-robin: yield the core at action boundaries once the
    // timeslice is exhausted and someone is waiting. An installed
    // fault plan may also preempt off-schedule (kernel jitter).
    const bool forced = _faultPlan && _faultPlan->preemptNow(_eq.now());
    if (forced ||
        (_sched.hasReady() && _eq.now() - t.sliceStart >= _cfg.timeslice)) {
        emit(SyncEventKind::SchedOut, t.id);
        t.state = ThreadState::Ready;
        vacateCore(t);
        _sched.enqueueReady(t.id);
        return;
    }
    dispatch(t);
}

void
System::parkCommit(Thread &t, SyncId f)
{
    if (_pendingWake[t.id]) {
        // A wake raced with the sleep: the futex_wait returns
        // immediately (kernel-side value check), no sleep happens.
        _pendingWake[t.id] = false;
        onActionDone(t);
        return;
    }
    t.blockedOn = f;
    emit(SyncEventKind::FutexWait, t.id, f);
    t.state = ThreadState::Blocked;
    t.blockedSince = _eq.now();
    vacateCore(t);
}

bool
System::injectSpuriousWake(ThreadId tid)
{
    if (tid >= _threads.size() || _runEnded)
        return false;
    Thread &t = *_threads[tid];
    if (t.state != ThreadState::Blocked || t.retryFutex != kNoSync)
        return false;
    // The kernel lets the waiter through without a signal; the
    // user-space retry loop re-checks and re-parks (see dispatch()).
    // The wait-queue entry is kept so a genuine wake during the retry
    // window is delivered through the pendingWake path.
    SyncId f = t.blockedOn;
    emit(SyncEventKind::FutexWake, t.id, f);
    t.state = ThreadState::Ready;
    t.blockedOn = kNoSync;
    t.retryFutex = f;
    _sched.enqueueReady(t.id);
    requestFill();
    return true;
}

void
System::vacateCore(Thread &t)
{
    DVFS_ASSERT(t.core >= 0, "vacating with no core");
    _sched.release(static_cast<std::uint32_t>(t.core));
    t.core = -1;
    requestFill();
}

void
System::finishThread(Thread &t)
{
    emit(SyncEventKind::ThreadExit, t.id);
    t.state = ThreadState::Finished;
    t.exitTick = _eq.now();
    vacateCore(t);
    futexWakeAll(t.exitFutex);
    if (t.id == _mainThread) {
        emit(SyncEventKind::RunEnd, kNoThread);
        _runEnded = true;
    }
}

void
System::doMutexLock(Thread &t, SyncId m)
{
    auto it = _mutexes.find(m);
    if (it == _mutexes.end())
        fatal("MutexLock on unknown mutex %u", m);
    MutexObj &mu = it->second;
    uarch::CoreModel &core = *_cores[static_cast<std::uint32_t>(t.core)];
    Thread *tp = &t;

    const bool contended = mu.held;
    uarch::PerfCounters tmp;
    Tick end = core.atomicRmw(frozenStart(_eq.now()), contended, tmp);

    if (!contended) {
        mu.held = true;
        mu.owner = t.id;
        _eq.schedule(end, [this, tp, end, tmp] {
            finishTimedAction(*tp, end, tmp);
        });
        return;
    }

    // Contended: queue on the futex now (so an unlock between now and
    // the sleep commit finds us), pay the failed-CAS cost, then sleep.
    _futexes.wait(mu.futex, t.id);
    MutexObj *mup = &mu;
    _eq.schedule(end, [this, tp, mup, tmp] {
        tp->counters += tmp;
        parkCommit(*tp, mup->futex);
    });
}

void
System::doMutexUnlock(Thread &t, SyncId m)
{
    auto it = _mutexes.find(m);
    if (it == _mutexes.end())
        fatal("MutexUnlock on unknown mutex %u", m);
    MutexObj &mu = it->second;
    if (!mu.held || mu.owner != t.id)
        panic("thread %u unlocking mutex %u it does not own", t.id, m);

    uarch::CoreModel &core = *_cores[static_cast<std::uint32_t>(t.core)];
    uarch::PerfCounters tmp;
    Tick end = core.atomicRmw(frozenStart(_eq.now()), false, tmp);
    Thread *tp = &t;
    MutexObj *mup = &mu;
    _eq.schedule(end, [this, tp, mup, end, tmp] {
        auto &woken = _wokenScratch;
        _futexes.wake(mup->futex, 1, woken);
        if (!woken.empty()) {
            // Direct handoff: ownership passes to the woken waiter.
            mup->owner = woken[0];
            Thread &w = *_threads[woken[0]];
            if (w.state == ThreadState::Blocked)
                becomeReady(w, true);
            else
                _pendingWake[w.id] = true;
        } else {
            mup->held = false;
            mup->owner = kNoThread;
        }
        finishTimedAction(*tp, end, tmp);
    });
}

void
System::doBarrierWait(Thread &t, SyncId b)
{
    auto it = _barriers.find(b);
    if (it == _barriers.end())
        fatal("BarrierWait on unknown barrier %u", b);
    BarrierObj &bar = it->second;
    uarch::CoreModel &core = *_cores[static_cast<std::uint32_t>(t.core)];
    Thread *tp = &t;

    uarch::PerfCounters tmp;
    Tick end = core.atomicRmw(frozenStart(_eq.now()), bar.parties > 1, tmp);

    bar.arrived += 1;
    if (bar.arrived == bar.parties) {
        // Last arrival releases everyone.
        bar.arrived = 0;
        BarrierObj *bp = &bar;
        _eq.schedule(end, [this, tp, bp, end, tmp] {
            futexWakeAll(bp->futex);
            finishTimedAction(*tp, end, tmp);
        });
        return;
    }

    _futexes.wait(bar.futex, t.id);
    BarrierObj *bp = &bar;
    _eq.schedule(end, [this, tp, bp, tmp] {
        tp->counters += tmp;
        parkCommit(*tp, bp->futex);
    });
}

void
System::doJoin(Thread &t, ThreadId target)
{
    if (target >= _threads.size())
        fatal("Join on unknown thread %u", target);
    Thread &tgt = *_threads[target];
    if (tgt.finished()) {
        onActionDone(t);
        return;
    }
    _futexes.wait(tgt.exitFutex, t.id);
    parkCommit(t, tgt.exitFutex);
}

uarch::PerfCounters
System::totalCounters() const
{
    uarch::PerfCounters sum;
    for (const auto &t : _threads)
        sum += t->counters;
    return sum;
}

bool
System::appThreadsQuiescent() const
{
    for (const auto &t : _threads) {
        if (t->service)
            continue;
        if (t->state == ThreadState::Running ||
            t->state == ThreadState::Ready) {
            return false;
        }
    }
    return true;
}

std::uint32_t
System::liveAppThreads() const
{
    std::uint32_t n = 0;
    for (const auto &t : _threads) {
        if (!t->service && !t->finished())
            ++n;
    }
    return n;
}

RunResult
System::run(Tick limit)
{
    if (_runStarted)
        fatal("System::run may be called only once");
    if (_threads.empty())
        fatal("System::run with no threads");
    if (_mainThread == kNoThread)
        fatal("System::run without a main thread");
    _runStarted = true;

    if (_sampler)
        _sampler->start();

    for (auto &t : _threads) {
        t->spawnTick = _eq.now();
        becomeReady(*t, false);
    }

    while (!_runEnded) {
        if (_eq.executed() > _cfg.maxEvents)
            panic("event cap exceeded (%llu events) — runaway simulation?",
                  static_cast<unsigned long long>(_cfg.maxEvents));
        if (_stopRequested)
            break;
        if (limit != kTickNever && _eq.now() >= limit)
            break;
        if (!_eq.runOne())
            break;
    }

    RunResult res;
    res.finished = _runEnded;
    res.events = _eq.executed();
    res.aborted = _stopRequested;
    res.abortReason = _stopReason;
    const Thread &main = *_threads[_mainThread];
    res.totalTime = main.exitTick != kTickNever ? main.exitTick : _eq.now();
    if (_stopRequested) {
        warn("run stopped early: %s", _stopReason.c_str());
    } else if (!_runEnded) {
        warn("run ended without main thread exit (deadlock or limit); "
             "%zu threads blocked", _futexes.totalWaiters());
    }
    return res;
}

} // namespace dvfs::os
