#include "power/vf_table.hh"

#include "sim/log.hh"

namespace dvfs::power {

VfTable::VfTable(std::vector<OperatingPoint> points)
    : _points(std::move(points))
{
    if (_points.empty())
        fatal("a V/f table needs at least one operating point");
    for (std::size_t i = 1; i < _points.size(); ++i) {
        if (_points[i].freq <= _points[i - 1].freq)
            fatal("V/f table points must ascend in frequency");
        if (_points[i].volts < _points[i - 1].volts)
            fatal("V/f table voltage must be non-decreasing");
    }
}

VfTable
VfTable::haswell(std::uint32_t step_mhz)
{
    if (step_mhz == 0)
        fatal("V/f table step must be positive");
    std::vector<OperatingPoint> pts;
    for (std::uint32_t mhz = 1000; mhz <= 4000; mhz += step_mhz) {
        double ghz = mhz / 1000.0;
        pts.push_back(OperatingPoint{Frequency::mhz(mhz),
                                     0.65 + 0.15 * ghz});
    }
    if (pts.back().freq.toMHz() != 4000) {
        pts.push_back(OperatingPoint{Frequency::mhz(4000),
                                     0.65 + 0.15 * 4.0});
    }
    return VfTable(std::move(pts));
}

double
VfTable::voltageAt(Frequency f) const
{
    if (f <= _points.front().freq)
        return _points.front().volts;
    if (f >= _points.back().freq)
        return _points.back().volts;
    for (std::size_t i = 1; i < _points.size(); ++i) {
        if (f <= _points[i].freq) {
            const auto &lo = _points[i - 1];
            const auto &hi = _points[i];
            double t = (f.toGHz() - lo.freq.toGHz()) /
                       (hi.freq.toGHz() - lo.freq.toGHz());
            return lo.volts + t * (hi.volts - lo.volts);
        }
    }
    return _points.back().volts;
}

OperatingPoint
VfTable::ceilPoint(Frequency f) const
{
    for (const auto &p : _points) {
        if (p.freq >= f)
            return p;
    }
    return _points.back();
}

} // namespace dvfs::power
