#include "power/power_model.hh"

#include <algorithm>

#include "sim/log.hh"

namespace dvfs::power {

double
PowerModel::coreDynamicWatts(std::uint32_t cores, Frequency f, double volts,
                             double utilization) const
{
    utilization = std::clamp(utilization, 0.0, 1.0);
    double activity = _cfg.idleActivity +
                      (1.0 - _cfg.idleActivity) * utilization;
    return cores * _cfg.coreCeffFarad * volts * volts * f.toHz() * activity;
}

double
PowerModel::coreStaticWatts(std::uint32_t cores, double volts) const
{
    return cores * _cfg.leakWattsPerVolt * volts;
}

double
PowerModel::dramAccessJoules(std::uint64_t accesses) const
{
    return static_cast<double>(accesses) * _cfg.dramEnergyPerAccess;
}

double
PowerModel::totalWatts(std::uint32_t cores, Frequency f, double volts,
                       double utilization) const
{
    return coreDynamicWatts(cores, f, volts, utilization) +
           coreStaticWatts(cores, volts) + _cfg.uncoreWatts +
           _cfg.dramBackgroundWatts;
}

EnergyMeter::EnergyMeter(os::System &sys, const VfTable &table,
                         const PowerConfig &cfg)
    : _sys(sys), _table(table), _model(cfg)
{
}

void
EnergyMeter::attach()
{
    if (_attached)
        fatal("EnergyMeter::attach called twice");
    _attached = true;
    _segStart = _sys.now();
    _segFreq = _sys.frequency();
    _sys.addFrequencyObserver([this](Frequency next, Tick when) {
        closeSegment(when);
        _segFreq = next;
    });
}

void
EnergyMeter::closeSegment(Tick now)
{
    if (now <= _segStart)
        return;

    const double dt = ticksToSeconds(now - _segStart);
    const auto cores = _sys.config().cores;

    // Utilization: busy core-time accumulated this segment over the
    // available core-time.
    uarch::PerfCounters total = _sys.totalCounters();
    Tick busy_sum = total.busyTime;
    Tick busy_delta = busy_sum - _lastBusySum;
    _lastBusySum = busy_sum;
    double util = static_cast<double>(busy_delta) /
                  (static_cast<double>(now - _segStart) * cores);
    util = std::clamp(util, 0.0, 1.0);

    std::uint64_t dram_accesses = _sys.dram().reads() + _sys.dram().writes();
    std::uint64_t dram_delta = dram_accesses - _lastDramAccesses;
    _lastDramAccesses = dram_accesses;

    const double volts = _table.voltageAt(_segFreq);
    _energy.coreDynamic +=
        _model.coreDynamicWatts(cores, _segFreq, volts, util) * dt;
    _energy.coreStatic += _model.coreStaticWatts(cores, volts) * dt;
    _energy.uncore += _model.uncoreWatts() * dt;
    _energy.dram += _model.dramBackgroundWatts() * dt +
                    _model.dramAccessJoules(dram_delta);

    _segStart = now;
}

void
EnergyMeter::finish()
{
    if (_finished)
        return;
    _finished = true;
    closeSegment(_sys.now());
}

} // namespace dvfs::power
