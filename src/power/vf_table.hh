/**
 * @file
 * Voltage/frequency operating points.
 *
 * Patterned on the Intel i7-4770K (22 nm Haswell) settings the paper
 * uses (Table II): core frequency from 1.0 to 4.0 GHz in 125 MHz
 * steps, with supply voltage rising roughly linearly across that
 * range. Absolute volts are a calibrated approximation; the energy
 * results consume only the *relative* V(f) shape.
 */

#ifndef DVFS_POWER_VF_TABLE_HH
#define DVFS_POWER_VF_TABLE_HH

#include <vector>

#include "sim/time.hh"

namespace dvfs::power {

/** One DVFS operating point. */
struct OperatingPoint {
    Frequency freq;
    double volts;
};

/**
 * An ordered table of operating points (ascending frequency).
 */
class VfTable
{
  public:
    /** Build from explicit points (must be ascending in frequency). */
    explicit VfTable(std::vector<OperatingPoint> points);

    /**
     * The default Haswell-like table: 1.0-4.0 GHz, @p step_mhz steps,
     * V(f) = 0.65 + 0.15 * f_GHz.
     */
    static VfTable haswell(std::uint32_t step_mhz = 125);

    const std::vector<OperatingPoint> &points() const { return _points; }

    Frequency lowest() const { return _points.front().freq; }
    Frequency highest() const { return _points.back().freq; }

    /**
     * Supply voltage at @p f (linear interpolation; clamped at the
     * table edges).
     */
    double voltageAt(Frequency f) const;

    /** Nearest table point with frequency >= @p f (clamped). */
    OperatingPoint ceilPoint(Frequency f) const;

    /** Number of points. */
    std::size_t size() const { return _points.size(); }

  private:
    std::vector<OperatingPoint> _points;
};

} // namespace dvfs::power

#endif // DVFS_POWER_VF_TABLE_HH
