/**
 * @file
 * McPAT-style power model and run-time energy integration.
 *
 * Power is decomposed as in the paper's McPAT setup (22 nm node,
 * static + dynamic, Section IV):
 *
 *  - per-core dynamic power:  Ceff * V^2 * f * activity, where
 *    activity follows core utilization (clock gating leaves a small
 *    residual on idle cores);
 *  - per-core static power:   leakage, proportional to V;
 *  - uncore power:            fixed-frequency L3/interconnect;
 *  - DRAM power:              background + per-access energy.
 *
 * The EnergyMeter integrates this over the run by closing an
 * accounting segment at every DVFS transition (and at the end of the
 * run), using the machine's counters to recover per-segment
 * utilization and memory traffic. Absolute watts are calibrated to be
 * plausible for a quad-core Haswell; the evaluation consumes only
 * relative energies.
 */

#ifndef DVFS_POWER_POWER_MODEL_HH
#define DVFS_POWER_POWER_MODEL_HH

#include <cstdint>

#include "os/system.hh"
#include "power/vf_table.hh"
#include "sim/time.hh"

namespace dvfs::power {

/** Power model coefficients. */
struct PowerConfig {
    /** Effective switched capacitance per core (F). */
    double coreCeffFarad = 1.25e-9;
    /** Residual activity of a clock-gated idle core. */
    double idleActivity = 0.10;
    /** Core leakage coefficient (W per volt, per core). */
    double leakWattsPerVolt = 1.6;
    /** Fixed uncore power (shared L3 + interconnect at 1.5 GHz), W. */
    double uncoreWatts = 8.0;
    /** DRAM background power, W. */
    double dramBackgroundWatts = 2.0;
    /** DRAM energy per line access (J). */
    double dramEnergyPerAccess = 20e-9;
};

/**
 * Stateless power formulas.
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerConfig &cfg = PowerConfig())
        : _cfg(cfg)
    {
    }

    /**
     * Dynamic power of @p cores cores at (f, V) with the given mean
     * utilization in [0, 1].
     */
    double coreDynamicWatts(std::uint32_t cores, Frequency f, double volts,
                            double utilization) const;

    /** Static (leakage) power of @p cores cores at V. */
    double coreStaticWatts(std::uint32_t cores, double volts) const;

    /** Fixed uncore power. */
    double uncoreWatts() const { return _cfg.uncoreWatts; }

    /** DRAM background power. */
    double dramBackgroundWatts() const { return _cfg.dramBackgroundWatts; }

    /** DRAM access energy for @p accesses line transfers. */
    double dramAccessJoules(std::uint64_t accesses) const;

    /**
     * Total chip+memory power at an operating point, for reports and
     * the static oracle.
     */
    double totalWatts(std::uint32_t cores, Frequency f, double volts,
                      double utilization) const;

    const PowerConfig &config() const { return _cfg; }

  private:
    PowerConfig _cfg;
};

/** Energy breakdown of a run (J). */
struct EnergyBreakdown {
    double coreDynamic = 0.0;
    double coreStatic = 0.0;
    double uncore = 0.0;
    double dram = 0.0;

    double
    total() const
    {
        return coreDynamic + coreStatic + uncore + dram;
    }
};

/**
 * Integrates energy over a live run.
 *
 * Attach before System::run(); call finish() after it returns.
 */
class EnergyMeter
{
  public:
    EnergyMeter(os::System &sys, const VfTable &table,
                const PowerConfig &cfg = PowerConfig());

    /** Register the DVFS observer with the system. Call once. */
    void attach();

    /** Close the final segment (at the end-of-run tick). */
    void finish();

    /** Accumulated energy (valid after finish()). */
    const EnergyBreakdown &energy() const { return _energy; }

    /** Total joules (valid after finish()). */
    double totalJoules() const { return _energy.total(); }

  private:
    /** Close the accounting segment [_segStart, now). */
    void closeSegment(Tick now);

    os::System &_sys;
    const VfTable &_table;
    PowerModel _model;

    Tick _segStart = 0;
    Frequency _segFreq;
    Tick _lastBusySum = 0;
    std::uint64_t _lastDramAccesses = 0;
    EnergyBreakdown _energy;
    bool _attached = false;
    bool _finished = false;
};

} // namespace dvfs::power

#endif // DVFS_POWER_POWER_MODEL_HH
