#include "rt/runtime.hh"

#include <algorithm>
#include <memory>

#include "fault/fault_plan.hh"
#include "rt/gc_worker.hh"
#include "sim/log.hh"

namespace dvfs::rt {

Runtime::Runtime(os::System &sys, const RuntimeConfig &cfg)
    : _sys(sys), _cfg(cfg), _heap(cfg.heap)
{
    if (_cfg.gcThreads == 0)
        fatal("runtime needs at least one GC thread");
    if (_cfg.survivalRate < 0.0 || _cfg.survivalRate > 1.0)
        fatal("survival rate must be in [0, 1]");
}

void
Runtime::attach()
{
    if (_attached)
        fatal("Runtime::attach called twice");
    _attached = true;

    _gcStartFutex = _sys.createFutex();
    _gcWorkFutex = _sys.createFutex();
    _gcWorkLock = _sys.createMutex();
    _gcBarrier = _sys.createBarrier(_cfg.gcThreads);

    _workerRemaining.assign(_cfg.gcThreads, 0);
    for (std::uint32_t i = 0; i < _cfg.gcThreads; ++i) {
        auto prog = std::make_unique<GcWorkerProgram>(*this, i);
        os::ThreadId tid = _sys.addThread(strprintf("gc-%u", i),
                                          std::move(prog), true);
        _workers.push_back(tid);
    }

    _sys.setInterceptor(this);
    _sys.addListener(this);
}

Runtime::MutatorState &
Runtime::mutatorState(os::ThreadId tid)
{
    if (tid >= _mutators.size())
        _mutators.resize(tid + 1);
    return _mutators[tid];
}

os::Action
Runtime::beginZeroing(os::ThreadId tid, std::uint64_t addr,
                      std::uint64_t bytes)
{
    MutatorState &ms = mutatorState(tid);
    ms.zeroCursor = addr;
    ms.zeroLinesLeft = (bytes + 63) / 64;
    return nextZeroChunk(ms);
}

os::Action
Runtime::nextZeroChunk(MutatorState &ms)
{
    auto lines = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        ms.zeroLinesLeft, _cfg.maxZeroLinesPerBurst));
    os::Action a = os::Action::makeStoreBurst(ms.zeroCursor, lines);
    ms.zeroCursor += static_cast<std::uint64_t>(lines) * 64;
    ms.zeroLinesLeft -= lines;
    return a;
}

std::optional<os::Action>
Runtime::interceptNext(os::Thread &t)
{
    if (t.service)
        return std::nullopt;

    MutatorState &ms = mutatorState(t.id);

    // Continuation of a split zero-initialisation burst.
    if (ms.zeroLinesLeft > 0)
        return nextZeroChunk(ms);

    // Safepoint poll: park while a collection is pending or active.
    if (_phase != GcPhase::Idle)
        return os::Action::makeFutexWait(_gcStartFutex);

    // Retry an allocation that triggered the last collection.
    if (ms.pendingAllocBytes > 0) {
        std::uint64_t bytes = ms.pendingAllocBytes;
        auto addr = _heap.allocate(bytes);
        if (!addr) {
            // Nursery filled up again before this thread got to run
            // (another mutator won the race): collect again.
            requestGc();
            return os::Action::makeFutexWait(_gcStartFutex);
        }
        ms.pendingAllocBytes = 0;
        return beginZeroing(t.id, *addr, bytes);
    }

    return std::nullopt;
}

std::optional<os::Action>
Runtime::onAlloc(os::Thread &t, std::uint64_t bytes)
{
    DVFS_ASSERT(!t.service, "GC worker performed a managed allocation");
    if (bytes == 0)
        return os::Action::makeCompute(10);

    auto addr = _heap.allocate(bytes);
    if (addr)
        return beginZeroing(t.id, *addr, bytes);

    // Nursery full: remember the request, stop the world.
    mutatorState(t.id).pendingAllocBytes = bytes;
    requestGc();
    return os::Action::makeFutexWait(_gcStartFutex);
}

void
Runtime::requestGc()
{
    if (_phase == GcPhase::Idle)
        _phase = GcPhase::Requested;
}

void
Runtime::onSyncEvent(const os::SyncEvent &ev, const os::System &sys)
{
    (void)sys;
    if (_phase != GcPhase::Requested)
        return;
    // Quiescence can only be reached when a thread parks or exits.
    // The event fires before the state change is applied, so defer
    // the check until the current event finishes.
    if (ev.kind == os::SyncEventKind::FutexWait ||
        ev.kind == os::SyncEventKind::ThreadExit) {
        _sys.eventQueue().schedule(_sys.now(),
                                   [this] { maybeBeginCollection(); });
    }
}

void
Runtime::maybeBeginCollection()
{
    if (_phase != GcPhase::Requested)
        return;
    if (!_sys.appThreadsQuiescent())
        return;
    // All workers must be parked on the work futex (they might still
    // be winding down from the previous collection).
    for (os::ThreadId w : _workers) {
        const os::Thread &wt = _sys.thread(w);
        if (wt.state != os::ThreadState::Blocked ||
            wt.blockedOn != _gcWorkFutex) {
            return;
        }
    }

    _phase = GcPhase::Active;
    _collections += 1;
    _gcBeginTick = _sys.now();
    _scanBytes = std::max<std::uint64_t>(_heap.nurseryUsed(), 64);
    _inflateExtra =
        _faultPlan ? _faultPlan->gcExtraClusters(_sys.now()) : 0;

    // Partition the surviving bytes over the workers.
    auto live = static_cast<std::uint64_t>(
        _cfg.survivalRate * static_cast<double>(_heap.nurseryUsed()));
    std::uint64_t share = live / _cfg.gcThreads;
    for (std::uint32_t i = 0; i < _cfg.gcThreads; ++i)
        _workerRemaining[i] = share;
    _workerRemaining[0] += live - share * _cfg.gcThreads;

    _sys.recordPhaseEvent(os::SyncEventKind::GcBegin);
    _sys.futexWakeAll(_gcWorkFutex);
}

void
Runtime::finishCollection()
{
    DVFS_ASSERT(_phase == GcPhase::Active,
                "finishCollection outside a collection");
    _heap.resetNursery();
    _gcTime += _sys.now() - _gcBeginTick;
    _phase = GcPhase::Idle;
    _inflateExtra = 0;
    _sys.recordPhaseEvent(os::SyncEventKind::GcEnd);
    _sys.futexWakeAll(_gcStartFutex);
}

} // namespace dvfs::rt
