/**
 * @file
 * GC worker thread behaviour.
 *
 * Each worker loops: park on the GC work futex; when released by the
 * runtime's stop-the-world handshake, repeatedly grab a work unit
 * (under the shared work lock), trace it (pointer-chasing load
 * cluster), and evacuate it (store burst into the mature space);
 * synchronize on the termination barrier; worker 0 then finishes the
 * collection and everyone parks again.
 *
 * All of this synchronization flows through the ordinary futex layer,
 * so the predictor's epoch decomposition sees GC-internal activity
 * exactly like application activity — the property Section III-B of
 * the paper highlights.
 */

#ifndef DVFS_RT_GC_WORKER_HH
#define DVFS_RT_GC_WORKER_HH

#include "os/thread.hh"

namespace dvfs::rt {

class Runtime;

/**
 * The per-worker action generator.
 */
class GcWorkerProgram : public os::ThreadProgram
{
  public:
    /**
     * @param rt   Owning runtime.
     * @param idx  Worker index (0 .. gcThreads-1); worker 0 finishes
     *             each collection.
     */
    GcWorkerProgram(Runtime &rt, std::uint32_t idx);

    os::Action next(os::ThreadContext &ctx) override;

  private:
    enum class State {
        Parked,     ///< waiting for a collection
        GrabWork,   ///< lock the work queue
        PopWork,    ///< pop a unit (inside the lock)
        ReleaseWork,///< unlock
        Trace,      ///< pointer-chase the unit
        Copy,       ///< evacuate the unit
        Terminate,  ///< arrive at the termination barrier
        Finish,     ///< (worker 0) finish the collection
    };

    Runtime &_rt;
    std::uint32_t _idx;
    State _state = State::Parked;
    bool _haveUnit = false;
    std::uint64_t _unitBytes = 0;
    std::uint32_t _traceClustersDone = 0;
    /** Trace clusters this unit owes (scales with batched grabs). */
    std::uint32_t _traceClustersDue = 0;
};

} // namespace dvfs::rt

#endif // DVFS_RT_GC_WORKER_HH
