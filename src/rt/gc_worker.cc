#include "rt/gc_worker.hh"

#include <algorithm>

#include "rt/runtime.hh"
#include "sim/log.hh"

namespace dvfs::rt {

GcWorkerProgram::GcWorkerProgram(Runtime &rt, std::uint32_t idx)
    : _rt(rt), _idx(idx)
{
}

os::Action
GcWorkerProgram::next(os::ThreadContext &ctx)
{
    const RuntimeConfig &cfg = _rt.config();

    switch (_state) {
      case State::Parked:
        // Woken by the runtime: a collection is starting.
        _state = State::GrabWork;
        return os::Action::makeFutexWait(_rt.gcWorkFutex());

      case State::GrabWork:
        _state = State::PopWork;
        return os::Action::makeMutexLock(_rt.gcWorkLock());

      case State::PopWork: {
        // Inside the work lock: take a unit if any work remains. A
        // fast-forwarding simulation grabs several units per lock
        // round trip — the traced and copied bytes are identical, the
        // per-unit lock churn is what gets amortised.
        std::uint64_t grab = cfg.copyUnitBytes;
        if (ctx.liteTiming && cfg.ffCopyUnitBatch > 1)
            grab *= cfg.ffCopyUnitBatch;
        std::uint64_t &rem = _rt.workerRemaining(_idx);
        if (rem > 0) {
            _unitBytes = std::min<std::uint64_t>(rem, grab);
            rem -= _unitBytes;
            _haveUnit = true;
            const auto units = static_cast<std::uint32_t>(
                (_unitBytes + cfg.copyUnitBytes - 1) / cfg.copyUnitBytes);
            _traceClustersDue =
                (cfg.traceClustersPerUnit + _rt.gcInflateExtraClusters()) *
                units;
        } else {
            _haveUnit = false;
        }
        _state = State::ReleaseWork;
        return os::Action::makeCompute(cfg.workPopInstructions);
      }

      case State::ReleaseWork:
        _state = _haveUnit ? State::Trace : State::Terminate;
        return os::Action::makeMutexUnlock(_rt.gcWorkLock());

      case State::Trace: {
        // Pointer-chase the live objects of this unit: dependent
        // loads spread over the used nursery. One unit takes several
        // clusters (roughly one pointer hop per few tens of bytes).
        //
        // In fast-forward gaps the addresses are never walked — the
        // fast-path model charges by shape — so from the second
        // collection on the spec goes lite: same shape key, no
        // address generation. The first collection always
        // materialises; its clusters execute detailed while the mark
        // shape's era is cold (promotion happens only at window
        // flips, so nothing this collection observes can be charged
        // within it) and teach the model. Detail windows and exact
        // mode materialise too, so window-overlapping marks keep
        // refreshing the mark era.
        uarch::MissClusterSpec spec;
        spec.overlapInstructions = cfg.traceOverlapInstructions;
        if (ctx.liteTiming && _rt.collections() > 1) {
            spec.liteChains = cfg.traceChains;
            spec.liteChainDepth = cfg.traceChainDepth;
        } else {
            std::uint64_t span = std::max<std::uint64_t>(
                _rt.nurseryScanBytes(), 64);
            spec.chains.reserve(cfg.traceChains);
            for (std::uint32_t c = 0; c < cfg.traceChains; ++c) {
                std::vector<std::uint64_t> chain;
                chain.reserve(cfg.traceChainDepth);
                for (std::uint32_t d = 0; d < cfg.traceChainDepth; ++d) {
                    std::uint64_t off = ctx.rng.nextBounded(span) & ~63ULL;
                    chain.push_back(_rt.nurseryScanBase() + off);
                }
                spec.chains.push_back(std::move(chain));
            }
        }
        if (++_traceClustersDone >= _traceClustersDue) {
            _traceClustersDone = 0;
            _state = State::Copy;
        }
        return os::Action::makeCluster(std::move(spec));
      }

      case State::Copy: {
        // Evacuate the unit into the mature space: a store burst.
        std::uint64_t target = _rt.copyTarget(_unitBytes);
        auto lines = static_cast<std::uint32_t>((_unitBytes + 63) / 64);
        _state = State::GrabWork;
        return os::Action::makeStoreBurst(target, lines);
      }

      case State::Terminate:
        _state = (_idx == 0) ? State::Finish : State::Parked;
        return os::Action::makeBarrierWait(_rt.gcBarrier());

      case State::Finish:
        // Worker 0 completes the collection: resets the nursery and
        // releases the mutators, then parks like everyone else.
        _rt.finishCollection();
        _state = State::GrabWork;
        return os::Action::makeFutexWait(_rt.gcWorkFutex());
    }
    panic("unreachable GC worker state");
}

} // namespace dvfs::rt
