/**
 * @file
 * The managed-runtime facade: allocation, safepoints, and the
 * stop-the-world parallel copying collector.
 *
 * The runtime plugs into the OS at two points. As the
 * ActionInterceptor it owns allocation (bump + zero-initialisation
 * store bursts) and parks application threads at safepoints while a
 * collection is pending. As a SyncListener it watches futex activity
 * to detect the stop-the-world quiescence point at which the GC
 * worker threads can be released — exactly the signal flow a JVM
 * implements with its safepoint protocol, expressed through the same
 * futex primitives the application uses (so DEP sees all of it, as
 * the paper requires).
 */

#ifndef DVFS_RT_RUNTIME_HH
#define DVFS_RT_RUNTIME_HH

#include <cstdint>
#include <vector>

#include "os/system.hh"
#include "rt/heap.hh"

namespace dvfs::fault {
class FaultPlan;
}

namespace dvfs::rt {

/** Runtime/GC configuration. */
struct RuntimeConfig {
    HeapConfig heap{};

    /** Number of parallel GC worker threads. */
    std::uint32_t gcThreads = 4;

    /** Fraction of the nursery that survives a collection. */
    double survivalRate = 0.25;

    /** Bytes moved per GC work unit (one grab from the work queue). */
    std::uint32_t copyUnitBytes = 4096;

    /**
     * Pointer-chase clusters issued while tracing one work unit.
     * Real collectors follow roughly one pointer per few tens of
     * bytes, so a 4 KB unit is many dependent-load clusters.
     */
    std::uint32_t traceClustersPerUnit = 4;

    /** Pointer-chase depth per trace cluster. */
    std::uint32_t traceChainDepth = 6;

    /** Parallel chains per trace cluster (memory-level parallelism). */
    std::uint32_t traceChains = 2;

    /** Instructions overlapped with each trace cluster. */
    std::uint32_t traceOverlapInstructions = 600;

    /** Instructions per work-queue pop (inside the work lock). */
    std::uint32_t workPopInstructions = 150;

    /** Max lines zero-initialised in one burst action (zeroing chunk). */
    std::uint32_t maxZeroLinesPerBurst = 64;

    /**
     * Copy units a worker grabs per work-lock round trip while the
     * simulation is fast-forwarding. Trace and copy work still scale
     * with the bytes grabbed, so the collection does the same amount
     * of simulated work; only the lock/pop/unlock action churn — the
     * dominant host cost of a fast-forwarded collection — shrinks.
     * Detail windows and exact mode always grab single units.
     */
    std::uint32_t ffCopyUnitBatch = 8;

};

/**
 * The managed runtime.
 */
class Runtime : public os::ActionInterceptor, public os::SyncListener
{
  public:
    /**
     * Create the runtime for @p sys. Call attach() once the
     * application threads have been added; it registers the hooks and
     * spawns the GC worker threads.
     */
    Runtime(os::System &sys, const RuntimeConfig &cfg);

    /** Register hooks and spawn GC workers. Call exactly once. */
    void attach();

    /// @name ActionInterceptor
    /// @{
    std::optional<os::Action> interceptNext(os::Thread &t) override;
    std::optional<os::Action> onAlloc(os::Thread &t,
                                      std::uint64_t bytes) override;
    /// @}

    /// @name SyncListener
    /// @{
    void onSyncEvent(const os::SyncEvent &ev, const os::System &sys)
        override;
    /// @}

    /// @name Introspection
    /// @{
    Heap &heap() { return _heap; }
    std::uint32_t collections() const { return _collections; }
    /** Total stop-the-world time. */
    Tick gcTime() const { return _gcTime; }
    bool gcActive() const { return _phase == GcPhase::Active; }
    const RuntimeConfig &config() const { return _cfg; }

    /**
     * Install a fault plan (nullable): collections may be inflated
     * with extra trace work (fragmented heap, reference storms).
     */
    void setFaultPlan(fault::FaultPlan *plan) { _faultPlan = plan; }

    /**
     * Extra trace clusters per work unit for the collection in
     * progress (0 unless a GC-inflation fault fired at its start).
     */
    std::uint32_t gcInflateExtraClusters() const { return _inflateExtra; }
    /// @}

    /// @name Interface for GC worker programs
    /// @{

    /** Remaining bytes in worker @p idx's collection package. */
    std::uint64_t &workerRemaining(std::uint32_t idx)
    {
        return _workerRemaining[idx];
    }

    /** Called by worker 0 after the termination barrier. */
    void finishCollection();

    os::SyncId gcWorkFutex() const { return _gcWorkFutex; }
    os::SyncId gcWorkLock() const { return _gcWorkLock; }
    os::SyncId gcBarrier() const { return _gcBarrier; }

    /** Address range holding live nursery data (for trace loads). */
    std::uint64_t nurseryScanBase() const { return _heap.nurseryBase(); }
    std::uint64_t nurseryScanBytes() const { return _scanBytes; }

    /** Mature-space address for the next copied unit. */
    std::uint64_t copyTarget(std::uint64_t bytes)
    {
        return _heap.matureAlloc(bytes);
    }
    /// @}

  private:
    enum class GcPhase { Idle, Requested, Active };

    /** Per-application-thread runtime state. */
    struct MutatorState {
        std::uint64_t pendingAllocBytes = 0; ///< retry after the GC
        std::uint64_t zeroLinesLeft = 0;     ///< zero-init continuation
        std::uint64_t zeroCursor = 0;        ///< next line address
    };

    MutatorState &mutatorState(os::ThreadId tid);

    /** Start the zero-initialisation of a fresh allocation. */
    os::Action beginZeroing(os::ThreadId tid, std::uint64_t addr,
                            std::uint64_t bytes);

    /** Next chunk of a split zeroing burst. */
    os::Action nextZeroChunk(MutatorState &ms);

    /** Ask for a collection (idempotent). */
    void requestGc();

    /** Begin the collection if the world has stopped. */
    void maybeBeginCollection();

    os::System &_sys;
    RuntimeConfig _cfg;
    Heap _heap;

    GcPhase _phase = GcPhase::Idle;
    Tick _gcBeginTick = 0;
    Tick _gcTime = 0;
    std::uint32_t _collections = 0;
    std::uint64_t _scanBytes = 0;
    fault::FaultPlan *_faultPlan = nullptr;
    std::uint32_t _inflateExtra = 0;

    os::SyncId _gcStartFutex = os::kNoSync; ///< mutators park here
    os::SyncId _gcWorkFutex = os::kNoSync;  ///< workers park here
    os::SyncId _gcWorkLock = os::kNoSync;   ///< GC work-queue lock
    os::SyncId _gcBarrier = os::kNoSync;    ///< GC termination barrier

    std::vector<os::ThreadId> _workers;
    std::vector<std::uint64_t> _workerRemaining;
    std::vector<MutatorState> _mutators;

    bool _attached = false;
};

} // namespace dvfs::rt

#endif // DVFS_RT_RUNTIME_HH
