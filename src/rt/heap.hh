/**
 * @file
 * The managed heap: a generational layout with bump allocation.
 *
 * Mirrors the structure the paper's setup gets from Jikes RVM's
 * generational Immix collector: a contiguous nursery allocated by
 * bumping a pointer (with mandatory zero-initialisation, the first
 * source of store bursts) and a mature space that nursery survivors
 * are copied into (the second source).
 *
 * Addresses are modelled: the nursery and mature space live in
 * distinct regions of the simulated physical address space, so cache
 * and DRAM behaviour of allocation, tracing, and copying is real.
 */

#ifndef DVFS_RT_HEAP_HH
#define DVFS_RT_HEAP_HH

#include <cstdint>
#include <optional>

#include "sim/stats.hh"

namespace dvfs::rt {

/** Heap sizing and placement. */
struct HeapConfig {
    std::uint64_t nurseryBytes = 2ULL << 20;   ///< nursery size
    std::uint64_t matureBytes = 64ULL << 20;   ///< mature space size
    std::uint64_t nurseryBase = 0x1'0000'0000; ///< nursery start address
    std::uint64_t matureBase = 0x2'0000'0000;  ///< mature start address

    /**
     * Number of nursery-sized windows the nursery rotates through.
     * After each collection the nursery advances to the next window,
     * modelling the physical-page recycling that makes fresh
     * allocation touch cache-cold memory in a real system (zeroing a
     * region whose lines still sit dirty in the LLC would otherwise be
     * artificially free).
     */
    std::uint32_t nurseryWindows = 8;
};

/**
 * Bump-allocated generational heap.
 */
class Heap
{
  public:
    explicit Heap(const HeapConfig &cfg = HeapConfig());

    /**
     * Allocate @p bytes in the nursery (rounded up to a line).
     *
     * @return Start address, or nullopt when a collection is needed.
     */
    std::optional<std::uint64_t> allocate(std::uint64_t bytes);

    /**
     * Allocate @p bytes in the mature space for a copied survivor.
     * The mature bump pointer wraps when the space fills (modelling
     * space reuse after mature collections, which we do not model as
     * pauses; see DESIGN.md).
     */
    std::uint64_t matureAlloc(std::uint64_t bytes);

    /** Empty the nursery after a collection. */
    void resetNursery();

    std::uint64_t nurseryUsed() const { return _nurseryCursor; }
    std::uint64_t nurseryBytes() const { return _cfg.nurseryBytes; }

    /** Base address of the *current* nursery window. */
    std::uint64_t
    nurseryBase() const
    {
        return _cfg.nurseryBase + _window * _cfg.nurseryBytes;
    }
    std::uint64_t matureBase() const { return _cfg.matureBase; }

    /** Bytes allocated in the nursery over the whole run. */
    std::uint64_t totalAllocated() const { return _totalAllocated; }

    /** Bytes copied into the mature space over the whole run. */
    std::uint64_t totalCopied() const { return _totalCopied; }

    const HeapConfig &config() const { return _cfg; }

  private:
    HeapConfig _cfg;
    std::uint64_t _nurseryCursor = 0;
    std::uint64_t _matureCursor = 0;
    std::uint64_t _totalAllocated = 0;
    std::uint64_t _totalCopied = 0;
    std::uint32_t _window = 0;
};

} // namespace dvfs::rt

#endif // DVFS_RT_HEAP_HH
