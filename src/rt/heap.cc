#include "rt/heap.hh"

#include "sim/log.hh"

namespace dvfs::rt {

namespace {
constexpr std::uint64_t kLine = 64;

std::uint64_t
roundUp(std::uint64_t v, std::uint64_t to)
{
    return (v + to - 1) / to * to;
}
} // namespace

Heap::Heap(const HeapConfig &cfg)
    : _cfg(cfg)
{
    if (_cfg.nurseryBytes < kLine || _cfg.matureBytes < kLine)
        fatal("heap spaces must hold at least one line");
}

std::optional<std::uint64_t>
Heap::allocate(std::uint64_t bytes)
{
    bytes = roundUp(bytes, kLine);
    if (bytes > _cfg.nurseryBytes)
        fatal("allocation of %llu bytes exceeds the nursery (%llu bytes)",
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(_cfg.nurseryBytes));
    if (_nurseryCursor + bytes > _cfg.nurseryBytes)
        return std::nullopt;
    std::uint64_t addr = nurseryBase() + _nurseryCursor;
    _nurseryCursor += bytes;
    _totalAllocated += bytes;
    return addr;
}

std::uint64_t
Heap::matureAlloc(std::uint64_t bytes)
{
    bytes = roundUp(bytes, kLine);
    if (_matureCursor + bytes > _cfg.matureBytes)
        _matureCursor = 0;
    std::uint64_t addr = _cfg.matureBase + _matureCursor;
    _matureCursor += bytes;
    _totalCopied += bytes;
    return addr;
}

void
Heap::resetNursery()
{
    _nurseryCursor = 0;
    if (_cfg.nurseryWindows > 1)
        _window = (_window + 1) % _cfg.nurseryWindows;
}

} // namespace dvfs::rt
