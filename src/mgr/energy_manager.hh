/**
 * @file
 * The DVFS energy manager of Section VI.
 *
 * Every scheduling quantum the manager reads the DVFS counters and the
 * epoch stream accumulated during the quantum, estimates the quantum's
 * duration at every operating point (two-step: first re-normalize to
 * the highest frequency, then evaluate each candidate), and picks the
 * lowest frequency whose predicted slowdown relative to the highest
 * frequency stays within the user-specified Tolerable-Slowdown. If
 * each interval individually respects the bound, the whole run does —
 * the paper's key guarantee argument.
 *
 * The per-quantum estimation uses DEP(+BURST) with across-epoch CTP by
 * default; the ModelSpec and CTP mode are configurable so the
 * benchmarks can ablate the predictor choice inside the manager.
 *
 * The manager is hardened against a misbehaving predictor: any
 * non-finite, negative, or incredibly large predicted slowdown is
 * rejected and the quantum falls back to the highest operating point
 * (safe for the slowdown bound, merely wasteful for energy), recorded
 * as Decision::fallback. When decisions oscillate A->B->A the
 * effective hold-off doubles per flip (up to maxBackoff) so a noisy
 * prediction cannot thrash the voltage regulator.
 */

#ifndef DVFS_MGR_ENERGY_MANAGER_HH
#define DVFS_MGR_ENERGY_MANAGER_HH

#include <vector>

#include "os/system.hh"
#include "power/vf_table.hh"
#include "pred/predictors.hh"
#include "pred/record.hh"

namespace dvfs::mgr {

/** Manager parameters (Figure 5). */
struct ManagerConfig {
    /** Scheduling quantum. Paper: 5 ms; scaled default 50 us. */
    Tick quantum = 50 * kTicksPerUs;

    /** Intervals to wait after a change before changing again. */
    std::uint32_t holdOff = 1;

    /** Tolerable-Slowdown vs. always running at the highest point. */
    double tolerableSlowdown = 0.05;

    /** Per-thread scaling model used inside the manager. */
    pred::ModelSpec model{pred::BaseEstimator::Crit, true};

    /** Across-epoch CTP (Algorithm 1) vs. per-epoch CTP. */
    bool acrossEpochCtp = true;

    /**
     * Predicted slowdowns above this are rejected as garbage (a sane
     * prediction is bounded by the frequency ratio of the table's
     * extreme points, nowhere near this) and trigger the
     * highest-frequency fallback.
     */
    double maxCredibleSlowdown = 100.0;

    /**
     * Cap on the oscillation backoff multiplier: when decisions
     * flip A->B->A the effective hold-off doubles per flip, up to
     * holdOff * maxBackoff intervals.
     */
    std::uint32_t maxBackoff = 8;
};

/**
 * Quantum-driven DVFS governor.
 */
class EnergyManager
{
  public:
    /** One frequency decision, for timeline reports (Figure 5). */
    struct Decision {
        Tick tick = 0;                ///< decision time (quantum end)
        Frequency chosen;             ///< frequency for the next quantum
        double predictedSlowdown = 0; ///< at the chosen point
        bool usedEpochs = false;      ///< epoch path vs. aggregate path
        bool fallback = false;        ///< degraded mode: prediction rejected
    };

    /**
     * @param sys   The machine to govern.
     * @param rec   Live epoch recorder attached to the same machine.
     * @param table Available operating points.
     * @param cfg   Manager parameters.
     */
    EnergyManager(os::System &sys, pred::RunRecorder &rec,
                  const power::VfTable &table, const ManagerConfig &cfg);

    /**
     * Arm the manager: jumps to the highest operating point (the
     * paper's managers always start there) and schedules the first
     * quantum. Call before System::run().
     */
    void attach();

    /** Decision history. */
    const std::vector<Decision> &decisions() const { return _decisions; }

    /** Number of quanta evaluated. */
    std::uint64_t quanta() const { return _quanta; }

    /** Quanta that fell back to the highest point (degraded mode). */
    std::uint64_t fallbacks() const { return _fallbacks; }

    /** Current oscillation backoff multiplier (1 = none). */
    std::uint32_t backoff() const { return _backoff; }

    const ManagerConfig &config() const { return _cfg; }

    virtual ~EnergyManager() = default;

  protected:
    /**
     * Predicted slowdown of the last quantum at ratio @p r_cand
     * (f_current / f_candidate) relative to the reference duration
     * @p t_ref at the highest point. Virtual so tests can substitute
     * a broken predictor: any non-finite, clearly negative, or
     * incredibly large return value trips the degraded path instead
     * of steering the machine.
     */
    virtual double predictSlowdown(std::size_t epoch_first,
                                   std::size_t epoch_last, Tick t_ref,
                                   double r_cand,
                                   bool &used_epochs) const;

  private:
    void onQuantum();

    /** A prediction the manager is willing to act on. */
    bool credibleSlowdown(double slowdown) const;

    /**
     * Predicted duration of the last quantum had the machine run at
     * @p ratio = f_current / f_candidate.
     */
    Tick predictQuantum(std::size_t epoch_first, std::size_t epoch_last,
                        double ratio, bool &used_epochs) const;

    os::System &_sys;
    pred::RunRecorder &_rec;
    const power::VfTable &_table;
    ManagerConfig _cfg;
    pred::DepPredictor _dep;

    std::size_t _epochCursor = 0;
    std::vector<uarch::PerfCounters> _lastCounters;
    Tick _quantumStart = 0;
    std::uint32_t _sinceChange = 0;
    std::uint64_t _quanta = 0;
    std::uint64_t _fallbacks = 0;
    std::uint32_t _backoff = 1;
    Frequency _prevFreq;  ///< frequency before the last change
    std::vector<Decision> _decisions;
};

} // namespace dvfs::mgr

#endif // DVFS_MGR_ENERGY_MANAGER_HH
