#include "mgr/energy_manager.hh"

#include <algorithm>

#include "sim/log.hh"

namespace dvfs::mgr {

EnergyManager::EnergyManager(os::System &sys, pred::RunRecorder &rec,
                             const power::VfTable &table,
                             const ManagerConfig &cfg)
    : _sys(sys), _rec(rec), _table(table), _cfg(cfg),
      _dep(cfg.model, cfg.acrossEpochCtp)
{
    if (_cfg.quantum == 0)
        fatal("energy manager quantum must be positive");
    if (_cfg.holdOff == 0)
        fatal("energy manager hold-off must be at least one interval");
    if (_cfg.tolerableSlowdown < 0.0)
        fatal("tolerable slowdown cannot be negative");
}

void
EnergyManager::attach()
{
    // The application always starts at the highest frequency; the
    // first interval profiles it there (Section VI-A).
    _sys.setFrequency(_table.highest());
    _quantumStart = _sys.now();
    _sinceChange = _cfg.holdOff;  // allow a decision at the first quantum
    _sys.eventQueue().schedule(_sys.now() + _cfg.quantum,
                               [this] { onQuantum(); });
}

Tick
EnergyManager::predictQuantum(std::size_t epoch_first,
                              std::size_t epoch_last, double ratio,
                              bool &used_epochs) const
{
    const auto &epochs = _rec.epochs();
    if (epoch_last > epoch_first) {
        used_epochs = true;
        return _dep.predictEpochRange(epochs, epoch_first, epoch_last,
                                      ratio);
    }

    // No synchronization activity this quantum: fall back to the
    // aggregate per-thread deltas (M+CRIT-style within the quantum).
    used_epochs = false;
    Tick best = 0;
    for (std::size_t i = 0; i < _sys.numThreads(); ++i) {
        const os::Thread &t = _sys.thread(static_cast<os::ThreadId>(i));
        uarch::PerfCounters delta = t.counters;
        if (i < _lastCounters.size())
            delta = delta - _lastCounters[i];
        if (delta.busyTime == 0)
            continue;
        best = std::max(best, pred::predictSpan(delta.busyTime, delta,
                                                _cfg.model, ratio));
    }
    return best;
}

void
EnergyManager::onQuantum()
{
    ++_quanta;
    const auto &epochs = _rec.epochs();
    const std::size_t first = _epochCursor;
    const std::size_t last = epochs.size();
    const Frequency f_cur = _sys.frequency();
    const Frequency f_max = _table.highest();

    ++_sinceChange;
    if (_sinceChange >= _cfg.holdOff) {
        bool used_epochs = false;

        // Step 1: what would this quantum have taken at the highest
        // frequency?
        const double r_max = static_cast<double>(f_cur.toMHz()) /
                             static_cast<double>(f_max.toMHz());
        Tick t_ref = predictQuantum(first, last, r_max, used_epochs);

        // Step 2: lowest candidate whose predicted slowdown stays
        // inside the bound.
        Frequency chosen = f_max;
        double chosen_slowdown = 0.0;
        if (t_ref > 0) {
            for (const auto &p : _table.points()) {
                const double r = static_cast<double>(f_cur.toMHz()) /
                                 static_cast<double>(p.freq.toMHz());
                Tick t_p = predictQuantum(first, last, r, used_epochs);
                double slowdown = static_cast<double>(t_p) /
                                      static_cast<double>(t_ref) -
                                  1.0;
                if (slowdown <= _cfg.tolerableSlowdown) {
                    chosen = p.freq;
                    chosen_slowdown = slowdown;
                    break;  // points ascend: first hit is the lowest
                }
            }
        }

        if (chosen != f_cur)
            _sinceChange = 0;
        _sys.setFrequency(chosen);
        _decisions.push_back(
            Decision{_sys.now(), chosen, chosen_slowdown, used_epochs});
    }

    // Roll the window.
    _epochCursor = last;
    _lastCounters.resize(_sys.numThreads());
    for (std::size_t i = 0; i < _sys.numThreads(); ++i)
        _lastCounters[i] = _sys.thread(static_cast<os::ThreadId>(i)).counters;
    _quantumStart = _sys.now();

    _sys.eventQueue().schedule(_sys.now() + _cfg.quantum,
                               [this] { onQuantum(); });
}

} // namespace dvfs::mgr
