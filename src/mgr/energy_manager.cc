#include "mgr/energy_manager.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace dvfs::mgr {

EnergyManager::EnergyManager(os::System &sys, pred::RunRecorder &rec,
                             const power::VfTable &table,
                             const ManagerConfig &cfg)
    : _sys(sys), _rec(rec), _table(table), _cfg(cfg),
      _dep(cfg.model, cfg.acrossEpochCtp)
{
    if (_cfg.quantum == 0)
        fatal("energy manager quantum must be positive");
    if (_cfg.holdOff == 0)
        fatal("energy manager hold-off must be at least one interval");
    if (!std::isfinite(_cfg.tolerableSlowdown) ||
        _cfg.tolerableSlowdown < 0.0)
        fatal("tolerable slowdown must be finite and non-negative");
    if (!std::isfinite(_cfg.maxCredibleSlowdown) ||
        _cfg.maxCredibleSlowdown <= 0.0)
        fatal("max credible slowdown must be finite and positive");
    if (_cfg.maxBackoff == 0)
        fatal("oscillation backoff cap must be at least 1");
    if (_table.points().empty())
        fatal("energy manager needs a non-empty operating-point table");
}

void
EnergyManager::attach()
{
    // The application always starts at the highest frequency; the
    // first interval profiles it there (Section VI-A).
    _sys.setFrequency(_table.highest());
    _quantumStart = _sys.now();
    _prevFreq = _table.highest();
    _sinceChange = _cfg.holdOff;  // allow a decision at the first quantum
    _sys.eventQueue().schedule(_sys.now() + _cfg.quantum,
                               [this] { onQuantum(); });
}

bool
EnergyManager::credibleSlowdown(double slowdown) const
{
    // Tiny negatives are rounding; anything clearly below zero claims
    // a lower frequency makes the program faster and means the
    // predictor is broken.
    return std::isfinite(slowdown) && slowdown >= -0.01 &&
           slowdown <= _cfg.maxCredibleSlowdown;
}

double
EnergyManager::predictSlowdown(std::size_t epoch_first,
                               std::size_t epoch_last, Tick t_ref,
                               double r_cand, bool &used_epochs) const
{
    Tick t_p = predictQuantum(epoch_first, epoch_last, r_cand,
                              used_epochs);
    return static_cast<double>(t_p) / static_cast<double>(t_ref) - 1.0;
}

Tick
EnergyManager::predictQuantum(std::size_t epoch_first,
                              std::size_t epoch_last, double ratio,
                              bool &used_epochs) const
{
    const auto &epochs = _rec.epochs();
    if (epoch_last > epoch_first) {
        used_epochs = true;
        return _dep.predictEpochRange(epochs, epoch_first, epoch_last,
                                      ratio);
    }

    // No synchronization activity this quantum: fall back to the
    // aggregate per-thread deltas (M+CRIT-style within the quantum).
    used_epochs = false;
    Tick best = 0;
    for (std::size_t i = 0; i < _sys.numThreads(); ++i) {
        const os::Thread &t = _sys.thread(static_cast<os::ThreadId>(i));
        uarch::PerfCounters delta = t.counters;
        if (i < _lastCounters.size())
            delta = delta - _lastCounters[i];
        if (delta.busyTime == 0)
            continue;
        best = std::max(best, pred::predictSpan(delta.busyTime, delta,
                                                _cfg.model, ratio));
    }
    return best;
}

void
EnergyManager::onQuantum()
{
    ++_quanta;
    const auto &epochs = _rec.epochs();
    const std::size_t first = _epochCursor;
    const std::size_t last = epochs.size();
    const Frequency f_cur = _sys.frequency();
    const Frequency f_max = _table.highest();

    ++_sinceChange;
    if (_sinceChange >= _cfg.holdOff * _backoff) {
        bool used_epochs = false;

        // Step 1: what would this quantum have taken at the highest
        // frequency?
        const double r_max = static_cast<double>(f_cur.toMHz()) /
                             static_cast<double>(f_max.toMHz());
        Tick t_ref = predictQuantum(first, last, r_max, used_epochs);

        // Step 2: lowest candidate whose predicted slowdown stays
        // inside the bound. A prediction the manager cannot trust
        // aborts the search: degraded mode pins the machine at the
        // highest point, which always satisfies the bound.
        Frequency chosen = f_max;
        double chosen_slowdown = 0.0;
        bool fallback = false;
        if (t_ref > 0) {
            for (const auto &p : _table.points()) {
                const double r = static_cast<double>(f_cur.toMHz()) /
                                 static_cast<double>(p.freq.toMHz());
                double slowdown = predictSlowdown(first, last, t_ref, r,
                                                  used_epochs);
                if (!credibleSlowdown(slowdown)) {
                    chosen = f_max;
                    chosen_slowdown = 0.0;
                    fallback = true;
                    break;
                }
                if (slowdown <= _cfg.tolerableSlowdown) {
                    chosen = p.freq;
                    chosen_slowdown = slowdown;
                    break;  // points ascend: first hit is the lowest
                }
            }
        }

        if (fallback) {
            ++_fallbacks;
            debugLog("quantum %llu: implausible slowdown prediction, "
                     "falling back to %u MHz",
                     static_cast<unsigned long long>(_quanta),
                     f_max.toMHz());
        }
        if (chosen != f_cur) {
            // A->B->A flips mean the quantum signal straddles the
            // decision boundary: back off exponentially so the
            // regulator settles instead of thrashing.
            if (chosen == _prevFreq)
                _backoff = std::min(_backoff * 2, _cfg.maxBackoff);
            else
                _backoff = 1;
            _prevFreq = f_cur;
            _sinceChange = 0;
        }
        _sys.setFrequency(chosen);
        _decisions.push_back(Decision{_sys.now(), chosen,
                                      chosen_slowdown, used_epochs,
                                      fallback});
    }

    // Roll the window.
    _epochCursor = last;
    _lastCounters.resize(_sys.numThreads());
    for (std::size_t i = 0; i < _sys.numThreads(); ++i)
        _lastCounters[i] = _sys.thread(static_cast<os::ThreadId>(i)).counters;
    _quantumStart = _sys.now();

    _sys.eventQueue().schedule(_sys.now() + _cfg.quantum,
                               [this] { onQuantum(); });
}

} // namespace dvfs::mgr
