# Empty compiler generated dependencies file for example_gc_pause_study.
# This may be replaced when dependencies are built.
