file(REMOVE_RECURSE
  "CMakeFiles/example_gc_pause_study.dir/gc_pause_study.cc.o"
  "CMakeFiles/example_gc_pause_study.dir/gc_pause_study.cc.o.d"
  "example_gc_pause_study"
  "example_gc_pause_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gc_pause_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
