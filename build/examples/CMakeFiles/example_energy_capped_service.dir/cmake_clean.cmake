file(REMOVE_RECURSE
  "CMakeFiles/example_energy_capped_service.dir/energy_capped_service.cc.o"
  "CMakeFiles/example_energy_capped_service.dir/energy_capped_service.cc.o.d"
  "example_energy_capped_service"
  "example_energy_capped_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_energy_capped_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
