# Empty compiler generated dependencies file for example_energy_capped_service.
# This may be replaced when dependencies are built.
