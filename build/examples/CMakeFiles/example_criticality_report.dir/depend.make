# Empty dependencies file for example_criticality_report.
# This may be replaced when dependencies are built.
