file(REMOVE_RECURSE
  "CMakeFiles/example_criticality_report.dir/criticality_report.cc.o"
  "CMakeFiles/example_criticality_report.dir/criticality_report.cc.o.d"
  "example_criticality_report"
  "example_criticality_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_criticality_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
