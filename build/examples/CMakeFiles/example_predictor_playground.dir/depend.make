# Empty dependencies file for example_predictor_playground.
# This may be replaced when dependencies are built.
