file(REMOVE_RECURSE
  "CMakeFiles/example_predictor_playground.dir/predictor_playground.cc.o"
  "CMakeFiles/example_predictor_playground.dir/predictor_playground.cc.o.d"
  "example_predictor_playground"
  "example_predictor_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_predictor_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
