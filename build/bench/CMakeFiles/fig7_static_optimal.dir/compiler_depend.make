# Empty compiler generated dependencies file for fig7_static_optimal.
# This may be replaced when dependencies are built.
