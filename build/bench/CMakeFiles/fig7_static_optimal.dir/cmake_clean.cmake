file(REMOVE_RECURSE
  "CMakeFiles/fig7_static_optimal.dir/fig7_static_optimal.cc.o"
  "CMakeFiles/fig7_static_optimal.dir/fig7_static_optimal.cc.o.d"
  "fig7_static_optimal"
  "fig7_static_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_static_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
