# Empty dependencies file for fig2_epoch_walkthrough.
# This may be replaced when dependencies are built.
