# Empty compiler generated dependencies file for fig4_ctp.
# This may be replaced when dependencies are built.
