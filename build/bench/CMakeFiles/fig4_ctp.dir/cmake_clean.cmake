file(REMOVE_RECURSE
  "CMakeFiles/fig4_ctp.dir/fig4_ctp.cc.o"
  "CMakeFiles/fig4_ctp.dir/fig4_ctp.cc.o.d"
  "fig4_ctp"
  "fig4_ctp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ctp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
