file(REMOVE_RECURSE
  "CMakeFiles/fig6_energy_manager.dir/fig6_energy_manager.cc.o"
  "CMakeFiles/fig6_energy_manager.dir/fig6_energy_manager.cc.o.d"
  "fig6_energy_manager"
  "fig6_energy_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_energy_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
