# Empty compiler generated dependencies file for table2_system.
# This may be replaced when dependencies are built.
