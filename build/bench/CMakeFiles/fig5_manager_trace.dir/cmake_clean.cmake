file(REMOVE_RECURSE
  "CMakeFiles/fig5_manager_trace.dir/fig5_manager_trace.cc.o"
  "CMakeFiles/fig5_manager_trace.dir/fig5_manager_trace.cc.o.d"
  "fig5_manager_trace"
  "fig5_manager_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_manager_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
