# Empty compiler generated dependencies file for fig5_manager_trace.
# This may be replaced when dependencies are built.
