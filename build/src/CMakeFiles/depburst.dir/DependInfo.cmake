
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/experiment.cc" "src/CMakeFiles/depburst.dir/exp/experiment.cc.o" "gcc" "src/CMakeFiles/depburst.dir/exp/experiment.cc.o.d"
  "/root/repo/src/exp/export.cc" "src/CMakeFiles/depburst.dir/exp/export.cc.o" "gcc" "src/CMakeFiles/depburst.dir/exp/export.cc.o.d"
  "/root/repo/src/exp/table.cc" "src/CMakeFiles/depburst.dir/exp/table.cc.o" "gcc" "src/CMakeFiles/depburst.dir/exp/table.cc.o.d"
  "/root/repo/src/mgr/energy_manager.cc" "src/CMakeFiles/depburst.dir/mgr/energy_manager.cc.o" "gcc" "src/CMakeFiles/depburst.dir/mgr/energy_manager.cc.o.d"
  "/root/repo/src/os/futex.cc" "src/CMakeFiles/depburst.dir/os/futex.cc.o" "gcc" "src/CMakeFiles/depburst.dir/os/futex.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/CMakeFiles/depburst.dir/os/scheduler.cc.o" "gcc" "src/CMakeFiles/depburst.dir/os/scheduler.cc.o.d"
  "/root/repo/src/os/system.cc" "src/CMakeFiles/depburst.dir/os/system.cc.o" "gcc" "src/CMakeFiles/depburst.dir/os/system.cc.o.d"
  "/root/repo/src/power/power_model.cc" "src/CMakeFiles/depburst.dir/power/power_model.cc.o" "gcc" "src/CMakeFiles/depburst.dir/power/power_model.cc.o.d"
  "/root/repo/src/power/vf_table.cc" "src/CMakeFiles/depburst.dir/power/vf_table.cc.o" "gcc" "src/CMakeFiles/depburst.dir/power/vf_table.cc.o.d"
  "/root/repo/src/pred/criticality.cc" "src/CMakeFiles/depburst.dir/pred/criticality.cc.o" "gcc" "src/CMakeFiles/depburst.dir/pred/criticality.cc.o.d"
  "/root/repo/src/pred/predictors.cc" "src/CMakeFiles/depburst.dir/pred/predictors.cc.o" "gcc" "src/CMakeFiles/depburst.dir/pred/predictors.cc.o.d"
  "/root/repo/src/pred/record.cc" "src/CMakeFiles/depburst.dir/pred/record.cc.o" "gcc" "src/CMakeFiles/depburst.dir/pred/record.cc.o.d"
  "/root/repo/src/rt/gc_worker.cc" "src/CMakeFiles/depburst.dir/rt/gc_worker.cc.o" "gcc" "src/CMakeFiles/depburst.dir/rt/gc_worker.cc.o.d"
  "/root/repo/src/rt/heap.cc" "src/CMakeFiles/depburst.dir/rt/heap.cc.o" "gcc" "src/CMakeFiles/depburst.dir/rt/heap.cc.o.d"
  "/root/repo/src/rt/runtime.cc" "src/CMakeFiles/depburst.dir/rt/runtime.cc.o" "gcc" "src/CMakeFiles/depburst.dir/rt/runtime.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/depburst.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/depburst.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/log.cc" "src/CMakeFiles/depburst.dir/sim/log.cc.o" "gcc" "src/CMakeFiles/depburst.dir/sim/log.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/depburst.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/depburst.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/depburst.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/depburst.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/time.cc" "src/CMakeFiles/depburst.dir/sim/time.cc.o" "gcc" "src/CMakeFiles/depburst.dir/sim/time.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/CMakeFiles/depburst.dir/uarch/cache.cc.o" "gcc" "src/CMakeFiles/depburst.dir/uarch/cache.cc.o.d"
  "/root/repo/src/uarch/core.cc" "src/CMakeFiles/depburst.dir/uarch/core.cc.o" "gcc" "src/CMakeFiles/depburst.dir/uarch/core.cc.o.d"
  "/root/repo/src/uarch/dram.cc" "src/CMakeFiles/depburst.dir/uarch/dram.cc.o" "gcc" "src/CMakeFiles/depburst.dir/uarch/dram.cc.o.d"
  "/root/repo/src/uarch/freq_domain.cc" "src/CMakeFiles/depburst.dir/uarch/freq_domain.cc.o" "gcc" "src/CMakeFiles/depburst.dir/uarch/freq_domain.cc.o.d"
  "/root/repo/src/wl/builder.cc" "src/CMakeFiles/depburst.dir/wl/builder.cc.o" "gcc" "src/CMakeFiles/depburst.dir/wl/builder.cc.o.d"
  "/root/repo/src/wl/programs.cc" "src/CMakeFiles/depburst.dir/wl/programs.cc.o" "gcc" "src/CMakeFiles/depburst.dir/wl/programs.cc.o.d"
  "/root/repo/src/wl/suite.cc" "src/CMakeFiles/depburst.dir/wl/suite.cc.o" "gcc" "src/CMakeFiles/depburst.dir/wl/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
