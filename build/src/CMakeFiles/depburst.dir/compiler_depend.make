# Empty compiler generated dependencies file for depburst.
# This may be replaced when dependencies are built.
