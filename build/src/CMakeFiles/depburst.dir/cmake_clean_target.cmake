file(REMOVE_RECURSE
  "libdepburst.a"
)
