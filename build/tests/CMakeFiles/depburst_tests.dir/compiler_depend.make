# Empty compiler generated dependencies file for depburst_tests.
# This may be replaced when dependencies are built.
