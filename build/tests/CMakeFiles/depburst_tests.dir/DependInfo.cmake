
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_actions.cc" "tests/CMakeFiles/depburst_tests.dir/test_actions.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_actions.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/depburst_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_core_model.cc" "tests/CMakeFiles/depburst_tests.dir/test_core_model.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_core_model.cc.o.d"
  "/root/repo/tests/test_criticality.cc" "tests/CMakeFiles/depburst_tests.dir/test_criticality.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_criticality.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/depburst_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/depburst_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_exp_table.cc" "tests/CMakeFiles/depburst_tests.dir/test_exp_table.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_exp_table.cc.o.d"
  "/root/repo/tests/test_export.cc" "tests/CMakeFiles/depburst_tests.dir/test_export.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_export.cc.o.d"
  "/root/repo/tests/test_freq_domain.cc" "tests/CMakeFiles/depburst_tests.dir/test_freq_domain.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_freq_domain.cc.o.d"
  "/root/repo/tests/test_futex.cc" "tests/CMakeFiles/depburst_tests.dir/test_futex.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_futex.cc.o.d"
  "/root/repo/tests/test_heap.cc" "tests/CMakeFiles/depburst_tests.dir/test_heap.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_heap.cc.o.d"
  "/root/repo/tests/test_integration_accuracy.cc" "tests/CMakeFiles/depburst_tests.dir/test_integration_accuracy.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_integration_accuracy.cc.o.d"
  "/root/repo/tests/test_manager.cc" "tests/CMakeFiles/depburst_tests.dir/test_manager.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_manager.cc.o.d"
  "/root/repo/tests/test_perf_counters.cc" "tests/CMakeFiles/depburst_tests.dir/test_perf_counters.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_perf_counters.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/depburst_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_predictors.cc" "tests/CMakeFiles/depburst_tests.dir/test_predictors.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_predictors.cc.o.d"
  "/root/repo/tests/test_programs.cc" "tests/CMakeFiles/depburst_tests.dir/test_programs.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_programs.cc.o.d"
  "/root/repo/tests/test_record_epochs.cc" "tests/CMakeFiles/depburst_tests.dir/test_record_epochs.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_record_epochs.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/depburst_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_runtime_gc.cc" "tests/CMakeFiles/depburst_tests.dir/test_runtime_gc.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_runtime_gc.cc.o.d"
  "/root/repo/tests/test_scaling.cc" "tests/CMakeFiles/depburst_tests.dir/test_scaling.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_scaling.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/depburst_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/depburst_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/depburst_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_time.cc" "tests/CMakeFiles/depburst_tests.dir/test_time.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_time.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/depburst_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/depburst_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/depburst.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
