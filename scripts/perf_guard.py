#!/usr/bin/env python3
"""Soft performance-regression guard over the benchmark trajectories.

Compares freshly measured dvfs-sweep-bench-v1, dvfs-trace-bench-v1 and
dvfs-serve-bench-v1 records — from any emitting bench: sweep_bench,
micro_simulator, the trace record/replay tools, and the dvfsd_load
serving soak — against the last committed record for the same
configuration (bench + run + cells, preferring rows from a machine
with the same hardware_threads) and emits a GitHub Actions
::warning:: annotation when throughput (cells_per_sec, or
throughput_rps for serve rows) dropped by more than the threshold. Sampled rows carrying mean_abs_slowdown_err_pct also get an
accuracy soft-gate: a warning fires when the error worsens by more
than --err-threshold percentage points against the last committed
same-config row. Always exits 0:
wall-clock numbers on shared CI runners are noisy, so the guard
annotates instead of failing; a real regression shows up as the
warning persisting across commits. (Accuracy is deterministic, but the
hard bounds live in the fig9/fig10 gates — this guard watches the
trajectory between those bounds.)

When a step-summary file is available (--summary, defaulting to the
GITHUB_STEP_SUMMARY env var), a per-configuration markdown delta table
(last committed vs current cells/s and %, plus slowdown-error columns
for rows that report one) is appended to it.

Usage:
  perf_guard.py --fresh NEW.json [--baseline BENCH_sweep.json]
                [--threshold 0.15] [--err-threshold 1.5]
                [--summary FILE]
"""

import argparse
import json
import os
import sys


KNOWN_SCHEMAS = ("dvfs-sweep-bench-v1", "dvfs-trace-bench-v1",
                 "dvfs-serve-bench-v1")


def throughput_of(rec):
    """The guarded throughput metric: cells/s for simulation benches,
    replies/s for the serving soak."""
    return rec.get("cells_per_sec") or rec.get("throughput_rps")


def load_records(path):
    records = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if rec.get("schema") in KNOWN_SCHEMAS:
                    records.append(rec)
    except OSError as exc:
        print(f"perf_guard: cannot read {path}: {exc}", file=sys.stderr)
    return records


def config_key(rec):
    # Rows predate the mode field; they were all exact-mode runs, so a
    # missing mode compares like-for-like against explicit "exact".
    # Sampled rows only ever compare against sampled rows: the two
    # modes differ by an order of magnitude in throughput, and a
    # cross-mode comparison would drown every real regression.
    return (rec.get("bench"), rec.get("run"), rec.get("cells"),
            rec.get("mode", "exact"))


def latest_baseline(baseline, rec):
    """Last committed record for rec's configuration, preferring rows
    measured on a machine with the same hardware_threads (cross-machine
    throughput is not comparable)."""
    matches = [b for b in baseline if config_key(b) == config_key(rec)]
    same_hw = [
        b for b in matches
        if b.get("hardware_threads") == rec.get("hardware_threads")
    ]
    pool = same_hw or matches
    return pool[-1] if pool else None


def fmt_err(err):
    return "—" if err is None else f"{err:.2f}"


def write_summary(path, rows):
    """Append a markdown delta table to the CI step summary."""
    lines = [
        "### Sweep throughput vs last committed trajectory",
        "",
        "| configuration | baseline cells/s | current cells/s | delta |"
        " baseline err % | current err % |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for config, ref, now, ref_err, now_err in rows:
        errs = f" {fmt_err(ref_err)} | {fmt_err(now_err)} |"
        if ref is None:
            lines.append(f"| {config} | — | {now:.2f} | n/a |{errs}")
        else:
            delta = (now / ref - 1) * 100
            lines.append(
                f"| {config} | {ref:.2f} | {now:.2f} | {delta:+.1f}% |"
                f"{errs}")
    lines.append("")
    try:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines))
    except OSError as exc:
        print(f"perf_guard: cannot write summary {path}: {exc}",
              file=sys.stderr)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--fresh", required=True,
                    help="records just measured (JSON Lines)")
    ap.add_argument("--baseline", default="BENCH_sweep.json",
                    help="committed trajectory to compare against")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative cells_per_sec drop that triggers a "
                         "warning (default 0.15)")
    ap.add_argument("--err-threshold", type=float, default=1.5,
                    help="absolute mean_abs_slowdown_err_pct worsening "
                         "(percentage points) that triggers a warning "
                         "(default 1.5)")
    ap.add_argument("--summary",
                    default=os.environ.get("GITHUB_STEP_SUMMARY"),
                    help="file to append the markdown delta table to "
                         "(default: $GITHUB_STEP_SUMMARY)")
    args = ap.parse_args()

    fresh = load_records(args.fresh)
    baseline = load_records(args.baseline)
    if not fresh:
        print(f"perf_guard: no fresh records in {args.fresh}; nothing "
              "to check")
        return 0

    warned = 0
    summary_rows = []
    for rec in fresh:
        base = latest_baseline(baseline, rec)
        now = throughput_of(rec)
        now_err = rec.get("mean_abs_slowdown_err_pct")
        config = f"{rec.get('bench')}/{rec.get('run')}"
        if not now:
            continue
        if base is None:
            print(f"perf_guard: {config}: no comparable baseline row, "
                  "skipping")
            summary_rows.append((config, None, now, None, now_err))
            continue
        ref = throughput_of(base)
        if not ref:
            continue
        ref_err = base.get("mean_abs_slowdown_err_pct")
        summary_rows.append((config, ref, now, ref_err, now_err))
        ratio = now / ref
        unit = "cells/s" if rec.get("cells_per_sec") else "req/s"
        line = (f"{config}: {now:.2f} {unit} vs baseline {ref:.2f} "
                f"({(ratio - 1) * 100:+.1f}%)")
        if ratio < 1.0 - args.threshold:
            # GitHub Actions annotation; informational elsewhere.
            print(f"::warning title=sweep perf regression::{line}")
            warned += 1
        else:
            print(f"perf_guard: {line}")
        if now_err is not None and ref_err is not None:
            err_line = (f"{config}: mean |slowdown err| {now_err:.2f}% "
                        f"vs baseline {ref_err:.2f}% "
                        f"({now_err - ref_err:+.2f} points)")
            if now_err > ref_err + args.err_threshold:
                print("::warning title=sampled accuracy regression::"
                      f"{err_line}")
                warned += 1
            else:
                print(f"perf_guard: {err_line}")

    if args.summary and summary_rows:
        write_summary(args.summary, summary_rows)

    if warned:
        print(f"perf_guard: {warned} configuration(s) regressed past "
              f"{args.threshold * 100:.0f}% (soft: not failing the "
              "build)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
