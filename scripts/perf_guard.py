#!/usr/bin/env python3
"""Soft performance-regression guard over BENCH_sweep.json trajectories.

Compares freshly measured dvfs-sweep-bench-v1 records against the last
committed record for the same configuration (bench + run + cells,
preferring rows from a machine with the same hardware_threads) and
emits a GitHub Actions ::warning:: annotation when throughput dropped
by more than the threshold. Always exits 0: wall-clock numbers on
shared CI runners are noisy, so the guard annotates instead of
failing; a real regression shows up as the warning persisting across
commits.

Usage:
  perf_guard.py --fresh NEW.json [--baseline BENCH_sweep.json]
                [--threshold 0.15]
"""

import argparse
import json
import sys


def load_records(path):
    records = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if rec.get("schema") == "dvfs-sweep-bench-v1":
                    records.append(rec)
    except OSError as exc:
        print(f"perf_guard: cannot read {path}: {exc}", file=sys.stderr)
    return records


def config_key(rec):
    return (rec.get("bench"), rec.get("run"), rec.get("cells"))


def latest_baseline(baseline, rec):
    """Last committed record for rec's configuration, preferring rows
    measured on a machine with the same hardware_threads (cross-machine
    throughput is not comparable)."""
    matches = [b for b in baseline if config_key(b) == config_key(rec)]
    same_hw = [
        b for b in matches
        if b.get("hardware_threads") == rec.get("hardware_threads")
    ]
    pool = same_hw or matches
    return pool[-1] if pool else None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--fresh", required=True,
                    help="records just measured (JSON Lines)")
    ap.add_argument("--baseline", default="BENCH_sweep.json",
                    help="committed trajectory to compare against")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative cells_per_sec drop that triggers a "
                         "warning (default 0.15)")
    args = ap.parse_args()

    fresh = load_records(args.fresh)
    baseline = load_records(args.baseline)
    if not fresh:
        print(f"perf_guard: no fresh records in {args.fresh}; nothing "
              "to check")
        return 0

    warned = 0
    for rec in fresh:
        base = latest_baseline(baseline, rec)
        now = rec.get("cells_per_sec")
        if base is None or not now:
            print(f"perf_guard: {rec.get('bench')}/{rec.get('run')}: "
                  "no comparable baseline row, skipping")
            continue
        ref = base.get("cells_per_sec")
        if not ref:
            continue
        ratio = now / ref
        line = (f"{rec.get('bench')}/{rec.get('run')}: "
                f"{now:.2f} cells/s vs baseline {ref:.2f} "
                f"({(ratio - 1) * 100:+.1f}%)")
        if ratio < 1.0 - args.threshold:
            # GitHub Actions annotation; informational elsewhere.
            print(f"::warning title=sweep_bench perf regression::{line}")
            warned += 1
        else:
            print(f"perf_guard: {line}")

    if warned:
        print(f"perf_guard: {warned} configuration(s) regressed past "
              f"{args.threshold * 100:.0f}% (soft: not failing the "
              "build)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
