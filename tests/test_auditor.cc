/**
 * @file
 * InvariantAuditor: a healthy machine audits clean, a deadlocked one
 * produces a structured watchdog diagnostic instead of hanging, and
 * the fault-injected paths stay invariant-clean too.
 */

#include <gtest/gtest.h>

#include "fault/auditor.hh"
#include "fault/fault_plan.hh"
#include "fault/injector.hh"
#include "mgr/energy_manager.hh"
#include "test_util.hh"
#include "wl/builder.hh"
#include "wl/suite.hh"

using namespace dvfs;
using namespace dvfs::test;

TEST(Auditor, CleanRunAuditsClean)
{
    power::VfTable table = power::VfTable::haswell();
    os::SystemConfig cfg = wl::defaultSystemConfig(table.highest());
    wl::BenchInstance inst =
        wl::buildBenchmark(wl::syntheticSmall(4, 200), cfg);

    pred::RunRecorder rec(*inst.sys);
    inst.sys->addListener(&rec);

    fault::InvariantAuditor auditor(*inst.sys);
    auditor.observeEpochs(&rec);
    auditor.attach();

    ASSERT_TRUE(inst.sys->run().finished);
    EXPECT_TRUE(auditor.clean()) << (auditor.violations().empty()
                                         ? ""
                                         : auditor.violations()[0].message);
    EXPECT_GT(auditor.audits(), 0u);
    EXPECT_GT(auditor.checksRun(), auditor.audits());
    EXPECT_FALSE(auditor.watchdog().fired);
}

TEST(Auditor, FaultInjectedRunStaysInvariantClean)
{
    // Faults disturb timing, never bookkeeping: every invariant must
    // survive all classes firing at once.
    power::VfTable table = power::VfTable::haswell();
    os::SystemConfig cfg = wl::defaultSystemConfig(table.highest());
    wl::BenchInstance inst =
        wl::buildBenchmark(wl::syntheticSmall(4, 200), cfg);

    pred::RunRecorder rec(*inst.sys);
    inst.sys->addListener(&rec);

    fault::FaultConfig fc;
    fc.dramSpikeProb = 0.05;
    fc.dramBankStallProb = 0.02;
    fc.spuriousWakeMeanInterval = 20 * kTicksPerUs;
    fc.preemptProb = 0.1;
    fc.gcInflateProb = 1.0;
    fault::FaultPlan plan(fc);
    fault::installFaults(*inst.sys, plan, inst.runtime.get());

    fault::InvariantAuditor auditor(*inst.sys);
    auditor.observeEpochs(&rec);
    auditor.attach();

    ASSERT_TRUE(inst.sys->run().finished);
    EXPECT_TRUE(auditor.clean()) << (auditor.violations().empty()
                                         ? ""
                                         : auditor.violations()[0].message);
}

TEST(Auditor, WatchdogConvertsDeadlockIntoDiagnostic)
{
    power::VfTable table = power::VfTable::haswell();
    os::SystemConfig cfg = wl::defaultSystemConfig(table.highest());
    os::System sys(cfg);

    // Two waiters park on a futex nobody wakes; the main thread joins
    // them. The energy manager keeps the event queue alive forever, so
    // without the watchdog this run would never return.
    os::SyncId dead = sys.createFutex();
    os::ThreadId a = addScript(sys, "waiter-a",
                               {os::Action::makeCompute(10'000),
                                os::Action::makeFutexWait(dead)});
    os::ThreadId main_tid =
        addScript(sys, "main", {os::Action::makeJoin(a)});
    sys.setMainThread(main_tid);

    pred::RunRecorder rec(sys);
    sys.addListener(&rec);

    fault::AuditorConfig acfg;
    acfg.watchdogTimeout = 500 * kTicksPerUs;
    fault::InvariantAuditor auditor(sys, acfg);
    auditor.observeEpochs(&rec);
    auditor.attach();

    mgr::EnergyManager manager(sys, rec, table, mgr::ManagerConfig{});
    manager.attach();

    os::RunResult res = sys.run();

    EXPECT_FALSE(res.finished);
    EXPECT_TRUE(res.aborted);
    ASSERT_TRUE(auditor.watchdog().fired);
    EXPECT_EQ(auditor.watchdog().blockedThreads.size(), 2u);
    EXPECT_NE(auditor.watchdog().message.find("waiter-a"),
              std::string::npos);
    EXPECT_NE(res.abortReason.find("watchdog"), std::string::npos);
    EXPECT_GE(auditor.watchdog().tick,
              auditor.watchdog().stalledSince + acfg.watchdogTimeout);
}

TEST(Auditor, WatchdogSparesSlowButLiveRuns)
{
    // A run that is merely slow (tight watchdog, healthy workload)
    // must not trip the watchdog: instructions keep retiring.
    power::VfTable table = power::VfTable::haswell();
    os::SystemConfig cfg = wl::defaultSystemConfig(table.highest());
    wl::BenchInstance inst =
        wl::buildBenchmark(wl::syntheticSmall(2, 100), cfg);

    pred::RunRecorder rec(*inst.sys);
    inst.sys->addListener(&rec);

    fault::AuditorConfig acfg;
    acfg.interval = 5 * kTicksPerUs;
    acfg.watchdogTimeout = 20 * kTicksPerUs;
    fault::InvariantAuditor auditor(*inst.sys, acfg);
    auditor.attach();

    ASSERT_TRUE(inst.sys->run().finished);
    EXPECT_FALSE(auditor.watchdog().fired);
}

TEST(AuditorDeathTest, DegenerateConfigIsFatal)
{
    power::VfTable table = power::VfTable::haswell();
    os::System sys(wl::defaultSystemConfig(table.highest()));

    fault::AuditorConfig zero_interval;
    zero_interval.interval = 0;
    EXPECT_EXIT(fault::InvariantAuditor(sys, zero_interval),
                ::testing::ExitedWithCode(1), "interval");

    fault::AuditorConfig short_watchdog;
    short_watchdog.watchdogTimeout = short_watchdog.interval / 2;
    EXPECT_EXIT(fault::InvariantAuditor(sys, short_watchdog),
                ::testing::ExitedWithCode(1), "watchdog");
}

TEST(AuditorDeathTest, DoubleAttachIsFatal)
{
    power::VfTable table = power::VfTable::haswell();
    os::System sys(wl::defaultSystemConfig(table.highest()));
    fault::InvariantAuditor auditor(sys);
    auditor.attach();
    EXPECT_EXIT(auditor.attach(), ::testing::ExitedWithCode(1), "twice");
}
