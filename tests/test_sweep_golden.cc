/**
 * @file
 * Golden-trace regression: a small fixed sweep must produce
 * bit-identical results serially and at any worker count.
 *
 * "Bit-identical" is checked three ways, strongest first: the FNV-1a
 * fingerprint of every cell (covers counters, energy doubles and the
 * full epoch record), the raw totalTime ticks, and a derived
 * predictor-error double computed the way fig3 computes it. The
 * managed-run path is covered through sweepMap with the same
 * contract.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "exp/experiment.hh"
#include "exp/sweep/fingerprint.hh"
#include "exp/sweep/sweep.hh"
#include "pred/predictors.hh"

using namespace dvfs;
using exp::sweep::SweepRunner;
using exp::sweep::SweepSpec;

namespace {

/** The golden grid: 2 synthetic workloads x 2 frequencies x 2 seeds. */
SweepSpec
goldenSpec()
{
    SweepSpec spec;
    spec.workloads = {wl::syntheticSmall(2, 60), wl::syntheticSmall(4, 40)};
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(4.0)};
    spec.seeds = SweepSpec::replicateSeeds(42, 2);
    return spec;
}

exp::sweep::SweepResult
runAt(unsigned workers)
{
    SweepRunner::Options ro;
    ro.workers = workers;
    return SweepRunner(goldenSpec(), ro).run();
}

/** Bitwise double equality (== would also accept -0.0 vs 0.0). */
bool
sameBits(double a, double b)
{
    std::uint64_t ua, ub;
    std::memcpy(&ua, &a, sizeof(ua));
    std::memcpy(&ub, &b, sizeof(ub));
    return ua == ub;
}

/** Combined digest over a grid: mix cell fingerprints in index order. */
std::uint64_t
gridDigest(const exp::sweep::SweepResult &res)
{
    exp::sweep::Fnv1a h;
    for (const auto &cell : res.cells)
        h.mix(exp::sweep::fingerprintRun(cell));
    return h.digest();
}

} // namespace

TEST(SweepGolden, SerialReferenceMatchesDirectRuns)
{
    // The engine at workers=1 is exactly the serial harness: every
    // cell equals a direct runFixed with the same inputs.
    auto res = runAt(1);
    const auto &spec = res.spec;
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
        for (std::size_t f = 0; f < spec.frequencies.size(); ++f) {
            for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
                exp::RunOptions opts = spec.runOptions;
                opts.seed = spec.seeds[s];
                auto direct = exp::runFixed(spec.workloads[w],
                                            spec.frequencies[f], opts);
                const auto &cell = res.at(w, f, s);
                EXPECT_EQ(exp::sweep::fingerprintRun(cell),
                          exp::sweep::fingerprintRun(direct))
                    << "w=" << w << " f=" << f << " s=" << s;
            }
        }
    }
}

TEST(SweepGolden, ParallelBitIdenticalToSerial)
{
    auto serial = runAt(1);
    for (unsigned workers : {2u, 8u}) {
        auto par = runAt(workers);
        ASSERT_EQ(par.cells.size(), serial.cells.size());
        for (std::size_t i = 0; i < serial.cells.size(); ++i) {
            const auto &a = serial.cells[i];
            const auto &b = par.cells[i];
            EXPECT_EQ(exp::sweep::fingerprintRun(a),
                      exp::sweep::fingerprintRun(b))
                << "cell " << i << " workers " << workers;
            EXPECT_EQ(a.totalTime, b.totalTime);
            EXPECT_EQ(a.events, b.events);
            EXPECT_TRUE(sameBits(a.energy.total(), b.energy.total()));
        }
    }
}

TEST(SweepGolden, PredictorErrorsBitIdenticalAcrossWorkerCounts)
{
    // The derived quantity the figures actually print: feed the 1 GHz
    // record to DEP+BURST, compare against the 4 GHz ground truth.
    auto serial = runAt(1);
    auto par = runAt(8);

    pred::DepPredictor p({pred::BaseEstimator::Crit, true}, true);
    for (std::size_t w = 0; w < serial.spec.workloads.size(); ++w) {
        for (std::size_t s = 0; s < serial.spec.seeds.size(); ++s) {
            auto err = [&](const exp::sweep::SweepResult &res) {
                const auto &base = res.at(w, std::size_t{0}, s);
                Tick actual = res.at(w, std::size_t{1}, s).totalTime;
                return pred::Predictor::relativeError(
                    p.predict(base.record, Frequency::ghz(4.0)), actual);
            };
            EXPECT_TRUE(sameBits(err(serial), err(par)))
                << "w=" << w << " s=" << s;
        }
    }
}

TEST(SweepGolden, FingerprintIsInputSensitive)
{
    // Sanity for the witness itself: different seed or frequency must
    // change the fingerprint, otherwise the golden checks above are
    // vacuous.
    auto res = runAt(1);
    EXPECT_NE(exp::sweep::fingerprintRun(res.at(0, std::size_t{0}, 0)),
              exp::sweep::fingerprintRun(res.at(0, std::size_t{0}, 1)));
    EXPECT_NE(exp::sweep::fingerprintRun(res.at(0, std::size_t{0}, 0)),
              exp::sweep::fingerprintRun(res.at(0, std::size_t{1}, 0)));
    EXPECT_NE(exp::sweep::fingerprintRun(res.at(0, std::size_t{0}, 0)),
              exp::sweep::fingerprintRun(res.at(1, std::size_t{0}, 0)));
}

TEST(SweepGolden, CommittedDigestsReproduceAcrossWorkerCounts)
{
    // The exact grid digests committed in BENCH_sweep.json. Any bit
    // of divergence in the simulator — event ordering, cache
    // replacement, energy accounting — lands here first. If a change
    // is *intended* to alter simulated behaviour, re-derive both
    // constants (sweep_bench and micro_simulator print them) and
    // update the committed trajectory in the same commit.
    struct GoldenGrid {
        const char *name;
        SweepSpec spec;
        std::uint64_t digest;
    };
    std::vector<GoldenGrid> grids;

    {
        // sweep_bench's default grid: first 4 DaCapo-style benchmarks
        // x 4 operating points x 1 seed.
        GoldenGrid g;
        g.name = "sweep_bench default";
        for (const auto &params : wl::dacapoSuite()) {
            if (g.spec.workloads.size() >= 4)
                break;
            g.spec.workloads.push_back(params);
        }
        g.spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(2.0),
                              Frequency::ghz(3.0), Frequency::ghz(4.0)};
        g.spec.seeds = SweepSpec::replicateSeeds(42, 1);
        g.digest = 0xb806f47ff81388e0ull;
        grids.push_back(std::move(g));
    }
    {
        // micro_simulator's synthetic trajectory grid.
        GoldenGrid g;
        g.name = "micro synthetic";
        g.spec.workloads = {wl::syntheticSmall(2, 40)};
        g.spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(2.0),
                              Frequency::ghz(3.0), Frequency::ghz(4.0)};
        g.spec.seeds = SweepSpec::replicateSeeds(42, 4);
        g.digest = 0x1f557120fc16bf8full;
        grids.push_back(std::move(g));
    }

    for (const auto &g : grids) {
        for (unsigned workers : {1u, 2u, 8u}) {
            SweepRunner::Options ro;
            ro.workers = workers;
            auto res = SweepRunner(g.spec, ro).run();
            EXPECT_EQ(gridDigest(res), g.digest)
                << g.name << " workers=" << workers;
        }
    }
}

TEST(SweepGolden, ManagedSweepSchedulingInvariant)
{
    // sweepMap over managed runs: same contract, different run type.
    auto managed = [&](unsigned workers) {
        std::vector<wl::WorkloadParams> wls = {wl::syntheticSmall(2, 60),
                                               wl::syntheticSmall(4, 40)};
        return exp::sweep::sweepMap<exp::ManagedRunOutput>(
            wls.size(), workers, [&](std::size_t i) {
                mgr::ManagerConfig mc;
                mc.tolerableSlowdown = 0.10;
                return exp::runManaged(wls[i], mc,
                                       power::VfTable::haswell());
            });
    };
    auto serial = managed(1);
    auto par = managed(8);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(exp::sweep::fingerprintRun(serial[i]),
                  exp::sweep::fingerprintRun(par[i]))
            << "managed cell " << i;
        EXPECT_EQ(serial[i].totalTime, par[i].totalTime);
        EXPECT_EQ(serial[i].decisions.size(), par[i].decisions.size());
    }
}
