/**
 * @file
 * Scheduler precondition enforcement: every illegal transition must
 * panic loudly instead of corrupting core-occupancy state.
 */

#include <gtest/gtest.h>

#include "os/scheduler.hh"

using namespace dvfs;
using namespace dvfs::os;

TEST(SchedulerPreconditions, AssignReleaseRoundTrip)
{
    Scheduler s(3);
    EXPECT_EQ(s.freeCore(), 0);
    s.assign(7, 1);
    EXPECT_EQ(s.occupant(1), 7u);
    EXPECT_EQ(s.busyCores(), 1u);
    EXPECT_EQ(s.freeCore(), 0);
    s.release(1);
    EXPECT_EQ(s.occupant(1), kNoThread);
    EXPECT_EQ(s.busyCores(), 0u);
}

TEST(SchedulerPreconditionsDeathTest, AssignOutOfRangePanics)
{
    Scheduler s(2);
    EXPECT_DEATH(s.assign(1, 2), "out of range");
}

TEST(SchedulerPreconditionsDeathTest, ReleaseOutOfRangePanics)
{
    Scheduler s(2);
    EXPECT_DEATH(s.release(5), "out of range");
}

TEST(SchedulerPreconditionsDeathTest, AssignToOccupiedCorePanics)
{
    Scheduler s(2);
    s.assign(1, 0);
    EXPECT_DEATH(s.assign(2, 0), "occupied");
}

TEST(SchedulerPreconditionsDeathTest, ReleaseFreeCorePanics)
{
    Scheduler s(2);
    EXPECT_DEATH(s.release(0), "free");
}

TEST(SchedulerPreconditionsDeathTest, AssignNoThreadPanics)
{
    Scheduler s(1);
    EXPECT_DEATH(s.assign(kNoThread, 0), "no-thread");
}

TEST(SchedulerPreconditionsDeathTest, EnqueueNoThreadPanics)
{
    Scheduler s(1);
    EXPECT_DEATH(s.enqueueReady(kNoThread), "no-thread");
}

TEST(SchedulerPreconditionsDeathTest, ZeroCoresIsFatal)
{
    EXPECT_EXIT(Scheduler(0), ::testing::ExitedWithCode(1),
                "at least one core");
}
