/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace dvfs::sim;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, TracksMoments)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.add(1.0);
    a.add(3.0);
    a.add(-2.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    EXPECT_NEAR(a.mean(), 2.0 / 3.0, 1e-12);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10, 100.0);  // buckets of width 10
    h.add(5.0);
    h.add(15.0);
    h.add(15.5);
    h.add(250.0);  // overflow
    h.add(-1.0);   // clamped into bucket 0
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.bucketWidth(), 10.0);
}

TEST(Histogram, PercentileMonotone)
{
    Histogram h(100, 1000.0);
    for (int i = 0; i < 1000; ++i)
        h.add(static_cast<double>(i));
    double p50 = h.percentile(0.5);
    double p90 = h.percentile(0.9);
    double p99 = h.percentile(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_NEAR(p50, 500.0, 20.0);
    EXPECT_NEAR(p90, 900.0, 20.0);
}

TEST(HistogramDeathTest, RejectsBadGeometry)
{
    EXPECT_EXIT(Histogram(0, 1.0), ::testing::ExitedWithCode(1), "bucket");
    EXPECT_EXIT(Histogram(4, 0.0), ::testing::ExitedWithCode(1), "bucket");
}

TEST(StatRegistry, SnapshotAndDump)
{
    Counter c;
    Accumulator a;
    c.inc(7);
    a.add(2.5);
    a.add(2.5);

    StatRegistry reg;
    reg.addCounter("events", c);
    reg.addAccumulator("latency", a);

    auto snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("events"), 7.0);
    EXPECT_DOUBLE_EQ(snap.at("latency"), 5.0);

    // Live: the snapshot reflects later mutations.
    c.inc(3);
    EXPECT_DOUBLE_EQ(reg.snapshot().at("events"), 10.0);

    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("events 10"), std::string::npos);
}
