/**
 * @file
 * EnergyManager degraded mode: a broken predictor must never steer
 * the machine. Invalid slowdown predictions (NaN, negative, absurdly
 * large) fall back to the highest operating point, and oscillating
 * decisions back the hold-off window off exponentially.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "mgr/energy_manager.hh"
#include "wl/builder.hh"
#include "wl/suite.hh"

using namespace dvfs;

namespace {

/** A manager whose per-point slowdown prediction is a fixed value. */
class StubManager : public mgr::EnergyManager
{
  public:
    StubManager(os::System &sys, pred::RunRecorder &rec,
                const power::VfTable &table,
                const mgr::ManagerConfig &cfg, double value)
        : EnergyManager(sys, rec, table, cfg), _value(value)
    {
    }

  protected:
    double
    predictSlowdown(std::size_t, std::size_t, Tick, double,
                    bool &) const override
    {
        return _value;
    }

  private:
    double _value;
};

/** Alternates between "everything is free" and "everything is slow". */
class FlipFlopManager : public mgr::EnergyManager
{
  public:
    using EnergyManager::EnergyManager;

  protected:
    double
    predictSlowdown(std::size_t, std::size_t, Tick, double,
                    bool &) const override
    {
        return decisions().size() % 2 == 0 ? 0.0 : 10.0;
    }
};

struct RunResultSummary {
    std::vector<mgr::EnergyManager::Decision> decisions;
    std::uint64_t fallbacks = 0;
    std::uint64_t quanta = 0;
    std::uint32_t backoff = 1;
    bool finished = false;
};

template <typename Manager, typename... Extra>
RunResultSummary
runWith(Extra... extra)
{
    power::VfTable table = power::VfTable::haswell();
    os::SystemConfig sys_cfg = wl::defaultSystemConfig(table.highest());
    wl::BenchInstance inst =
        wl::buildBenchmark(wl::syntheticSmall(2, 300), sys_cfg);

    pred::RunRecorder rec(*inst.sys);
    inst.sys->addListener(&rec);

    mgr::ManagerConfig cfg;
    cfg.quantum = 10 * kTicksPerUs;
    Manager manager(*inst.sys, rec, table, cfg, extra...);
    manager.attach();

    RunResultSummary out;
    out.finished = inst.sys->run().finished;
    out.decisions = manager.decisions();
    out.fallbacks = manager.fallbacks();
    out.quanta = manager.quanta();
    out.backoff = manager.backoff();
    return out;
}

void
expectAllFallbackToHighest(const RunResultSummary &r)
{
    const Frequency highest = power::VfTable::haswell().highest();
    ASSERT_TRUE(r.finished);
    ASSERT_GT(r.decisions.size(), 0u);
    EXPECT_GT(r.fallbacks, 0u);
    for (const auto &d : r.decisions) {
        EXPECT_EQ(d.chosen, highest);
        EXPECT_TRUE(d.fallback);
        EXPECT_EQ(d.predictedSlowdown, 0.0);
    }
}

} // namespace

TEST(ManagerDegraded, NanPredictionFallsBackToHighest)
{
    auto r = runWith<StubManager, double>(
        std::numeric_limits<double>::quiet_NaN());
    expectAllFallbackToHighest(r);
}

TEST(ManagerDegraded, InfinitePredictionFallsBackToHighest)
{
    auto r = runWith<StubManager, double>(
        std::numeric_limits<double>::infinity());
    expectAllFallbackToHighest(r);
}

TEST(ManagerDegraded, NegativePredictionFallsBackToHighest)
{
    auto r = runWith<StubManager, double>(-0.5);
    expectAllFallbackToHighest(r);
}

TEST(ManagerDegraded, AbsurdPredictionFallsBackToHighest)
{
    auto r = runWith<StubManager, double>(1e6);
    expectAllFallbackToHighest(r);
}

TEST(ManagerDegraded, TinyNegativeRoundingIsTolerated)
{
    // -0.001 is rounding noise, not a broken predictor: it reads as
    // "no slowdown" and legitimately selects the lowest point.
    auto r = runWith<StubManager, double>(-0.001);
    ASSERT_TRUE(r.finished);
    EXPECT_EQ(r.fallbacks, 0u);
    ASSERT_GT(r.decisions.size(), 0u);
    EXPECT_EQ(r.decisions.front().chosen,
              power::VfTable::haswell().lowest());
}

TEST(ManagerDegraded, HealthyPredictorNeverFallsBack)
{
    auto r = runWith<mgr::EnergyManager>();
    ASSERT_TRUE(r.finished);
    EXPECT_EQ(r.fallbacks, 0u);
    for (const auto &d : r.decisions)
        EXPECT_FALSE(d.fallback);
}

TEST(ManagerDegraded, OscillationTriggersBackoff)
{
    auto r = runWith<FlipFlopManager>();
    ASSERT_TRUE(r.finished);
    ASSERT_GT(r.quanta, 8u);
    // The A->B->A thrash must have raised the hold-off multiplier...
    EXPECT_GT(r.backoff, 1u);
    // ...so some quanta skipped their decision entirely.
    EXPECT_LT(r.decisions.size(), r.quanta);
}
