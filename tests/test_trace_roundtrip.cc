/**
 * @file
 * Trace round-trip: a .dvfstrace must reproduce the recorded run
 * exactly — every observed field, and therefore every prediction.
 *
 * The bit-identity contract of the replay path rests on two facts
 * checked here: (1) encode/decode round-trips every RunRecord field
 * the observation API exposes, including the raw sync-event trace when
 * it was kept, and (2) predictors are pure functions of the RunView,
 * so a LoadedTrace and a live RecordView over the same run yield
 * bit-identical predictions. A pinned golden payload digest makes the
 * serialization itself part of the repo's determinism witness.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exp/experiment.hh"
#include "pred/registry.hh"
#include "pred/run_view.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"
#include "wl/suite.hh"

using namespace dvfs;

namespace {

/** One mid-size managed-runtime record with the event trace kept. */
const exp::FixedRunOutput &
sampleRun()
{
    static exp::FixedRunOutput out = [] {
        auto params = wl::syntheticSmall(4, 120);
        params.lockProb = 0.3;
        exp::RunOptions opts;
        opts.keepEvents = true;
        return exp::runFixed(params, Frequency::ghz(1.0), opts);
    }();
    return out;
}

void
expectCountersEq(const uarch::PerfCounters &a, const uarch::PerfCounters &b)
{
    EXPECT_EQ(a.busyTime, b.busyTime);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.critNonscaling, b.critNonscaling);
    EXPECT_EQ(a.leadingNonscaling, b.leadingNonscaling);
    EXPECT_EQ(a.stallNonscaling, b.stallNonscaling);
    EXPECT_EQ(a.sqFullTime, b.sqFullTime);
    EXPECT_EQ(a.trueMemTime, b.trueMemTime);
    EXPECT_EQ(a.computeTime, b.computeTime);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l3Hits, b.l3Hits);
    EXPECT_EQ(a.dramLoads, b.dramLoads);
    EXPECT_EQ(a.missClusters, b.missClusters);
    EXPECT_EQ(a.storeBursts, b.storeBursts);
    EXPECT_EQ(a.storeLines, b.storeLines);
}

void
expectRecordsEq(const pred::RunRecord &a, const pred::RunRecord &b)
{
    EXPECT_EQ(a.baseFreq, b.baseFreq);
    EXPECT_EQ(a.totalTime, b.totalTime);

    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        const auto &ea = a.epochs[i];
        const auto &eb = b.epochs[i];
        EXPECT_EQ(ea.start, eb.start) << "epoch " << i;
        EXPECT_EQ(ea.end, eb.end) << "epoch " << i;
        EXPECT_EQ(ea.boundary, eb.boundary) << "epoch " << i;
        EXPECT_EQ(ea.stallTid, eb.stallTid) << "epoch " << i;
        ASSERT_EQ(ea.active.size(), eb.active.size()) << "epoch " << i;
        for (std::size_t t = 0; t < ea.active.size(); ++t) {
            EXPECT_EQ(ea.active[t].tid, eb.active[t].tid);
            expectCountersEq(ea.active[t].delta, eb.active[t].delta);
        }
    }

    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t i = 0; i < a.threads.size(); ++i) {
        EXPECT_EQ(a.threads[i].tid, b.threads[i].tid);
        EXPECT_EQ(a.threads[i].service, b.threads[i].service);
        EXPECT_EQ(a.threads[i].spawnTick, b.threads[i].spawnTick);
        EXPECT_EQ(a.threads[i].exitTick, b.threads[i].exitTick);
        expectCountersEq(a.threads[i].totals, b.threads[i].totals);
    }

    ASSERT_EQ(a.gcMarks.size(), b.gcMarks.size());
    for (std::size_t i = 0; i < a.gcMarks.size(); ++i) {
        EXPECT_EQ(a.gcMarks[i].tick, b.gcMarks[i].tick);
        EXPECT_EQ(a.gcMarks[i].begin, b.gcMarks[i].begin);
    }

    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].tick, b.events[i].tick) << "event " << i;
        EXPECT_EQ(a.events[i].kind, b.events[i].kind) << "event " << i;
        EXPECT_EQ(a.events[i].tid, b.events[i].tid) << "event " << i;
        EXPECT_EQ(a.events[i].futex, b.events[i].futex) << "event " << i;
    }
}

} // namespace

TEST(TraceRoundtrip, EveryObservedFieldSurvives)
{
    const auto &out = sampleRun();
    ASSERT_FALSE(out.record.events.empty())
        << "keepEvents run should retain the sync-event trace";

    auto image = trace::encodeTrace(out.record, {"roundtrip", 7});
    auto loaded = trace::decodeTrace(image);

    EXPECT_EQ(loaded.meta().workload, "roundtrip");
    EXPECT_EQ(loaded.meta().seed, 7u);
    EXPECT_EQ(loaded.payloadDigest(), trace::tracePayloadDigest(image));
    expectRecordsEq(out.record, loaded.record());
}

TEST(TraceRoundtrip, EventlessRecordOmitsEventSection)
{
    // The default (keepEvents=false) record has no event trace; the
    // writer must omit the section and the reader reproduce an empty
    // vector, not fail on a zero-length section.
    auto params = wl::syntheticSmall(2, 40);
    auto out = exp::runFixed(params, Frequency::ghz(1.0));
    ASSERT_TRUE(out.record.events.empty());

    auto loaded =
        trace::decodeTrace(trace::encodeTrace(out.record, {"ev0", 1}));
    expectRecordsEq(out.record, loaded.record());
}

TEST(TraceRoundtrip, PredictionsBitIdenticalToLiveView)
{
    const auto &out = sampleRun();
    auto loaded =
        trace::decodeTrace(trace::encodeTrace(out.record, {"bits", 42}));

    pred::RecordView live(out.record);
    for (const auto &p :
         pred::PredictorRegistry::instance().figure3Set()) {
        for (double ghz : {2.0, 3.0, 4.0}) {
            Frequency t = Frequency::ghz(ghz);
            // Predictions are integer ticks: equality IS bit-identity.
            EXPECT_EQ(p->predict(live, t), p->predict(loaded, t))
                << p->name() << " @ " << t.toString();
        }
    }
    for (const auto &p :
         pred::PredictorRegistry::instance().estimatorLadder()) {
        Frequency t = Frequency::ghz(4.0);
        EXPECT_EQ(p->predict(live, t), p->predict(loaded, t))
            << p->name();
    }
}

TEST(TraceRoundtrip, FileRoundTrip)
{
    const auto &out = sampleRun();
    const std::string path =
        testing::TempDir() + "/" + trace::traceFileName("file_rt", 1000, 9);

    trace::writeTraceFile(path, out.record, {"file_rt", 9});
    auto loaded = trace::readTraceFile(path);
    EXPECT_EQ(loaded.meta().workload, "file_rt");
    expectRecordsEq(out.record, loaded.record());
    std::remove(path.c_str());
}

TEST(TraceRoundtrip, EncodingIsDeterministic)
{
    const auto &out = sampleRun();
    auto a = trace::encodeTrace(out.record, {"det", 42});
    auto b = trace::encodeTrace(out.record, {"det", 42});
    EXPECT_EQ(a, b);
    EXPECT_EQ(trace::tracePayloadDigest(a), trace::tracePayloadDigest(b));
}

TEST(TraceRoundtrip, GoldenPayloadDigest)
{
    // The serialization format's determinism witness: the default
    // DaCapo workload at 1 GHz, seed 42, must always encode to these
    // exact bytes. If a change *intends* to alter the format or the
    // simulated behaviour, bump kTraceVersion when the layout changed,
    // re-derive this constant (the failure message prints the actual
    // digest) and update it in the same commit.
    const std::uint64_t kGoldenPayloadDigest = 0xe0c48a58dbb36557ull;

    auto params = wl::dacapoSuite().front();
    exp::RunOptions opts;
    opts.seed = 42;
    auto out = exp::runFixed(params, Frequency::ghz(1.0), opts);

    auto image = trace::encodeTrace(out.record, {params.name, opts.seed});
    EXPECT_EQ(trace::tracePayloadDigest(image), kGoldenPayloadDigest)
        << "actual digest: 0x" << std::hex
        << trace::tracePayloadDigest(image);
}
