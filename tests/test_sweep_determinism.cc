/**
 * @file
 * Differential determinism: growing a sweep grid never perturbs the
 * cells it already contained.
 *
 * The contract that makes this work: a cell's simulation inputs are a
 * pure function of its (workload, frequency, seed) coordinates —
 * never of its flattened index, the grid shape, or the schedule. So
 * adding a workload, a frequency, or a seed to a spec produces a
 * superset grid whose shared cells are bit-identical to the smaller
 * grid's.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "exp/sweep/fingerprint.hh"
#include "exp/sweep/sweep.hh"

using namespace dvfs;
using exp::sweep::SweepRunner;
using exp::sweep::SweepSpec;

namespace {

SweepSpec
baseSpec()
{
    SweepSpec spec;
    spec.workloads = {wl::syntheticSmall(2, 60)};
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(4.0)};
    spec.seeds = SweepSpec::replicateSeeds(42, 2);
    return spec;
}

exp::sweep::SweepResult
run(const SweepSpec &spec, unsigned workers = 2)
{
    SweepRunner::Options ro;
    ro.workers = workers;
    return SweepRunner(spec, ro).run();
}

/**
 * Every (workload, frequency, seed) cell of @p small must be
 * bit-identical in @p big, looked up by coordinates.
 */
void
expectSubgrid(const exp::sweep::SweepResult &small,
              const exp::sweep::SweepResult &big)
{
    const auto &spec = small.spec;
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
        // Workload lookup by position of the same name in big's list.
        std::size_t bw = spec.workloads.size();
        for (std::size_t i = 0; i < big.spec.workloads.size(); ++i) {
            if (big.spec.workloads[i].name == spec.workloads[w].name) {
                bw = i;
                break;
            }
        }
        ASSERT_LT(bw, big.spec.workloads.size());

        for (auto freq : spec.frequencies) {
            for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
                // Seed lookup by value.
                std::size_t bs = big.spec.seeds.size();
                for (std::size_t i = 0; i < big.spec.seeds.size(); ++i) {
                    if (big.spec.seeds[i] == spec.seeds[s]) {
                        bs = i;
                        break;
                    }
                }
                ASSERT_LT(bs, big.spec.seeds.size());

                EXPECT_EQ(
                    exp::sweep::fingerprintRun(small.at(w, freq, s)),
                    exp::sweep::fingerprintRun(big.at(bw, freq, bs)))
                    << "workload " << spec.workloads[w].name << " freq "
                    << freq.toString() << " seed " << spec.seeds[s];
            }
        }
    }
}

} // namespace

TEST(SweepDeterminism, AddingAWorkloadPreservesExistingCells)
{
    auto small = run(baseSpec());
    auto spec = baseSpec();
    spec.workloads.push_back(wl::syntheticSmall(4, 40));
    auto big = run(spec);
    expectSubgrid(small, big);
}

TEST(SweepDeterminism, AddingAFrequencyPreservesExistingCells)
{
    auto small = run(baseSpec());
    auto spec = baseSpec();
    spec.frequencies.insert(spec.frequencies.begin(),
                            Frequency::ghz(2.0));
    auto big = run(spec);
    expectSubgrid(small, big);
}

TEST(SweepDeterminism, AddingASeedPreservesExistingCells)
{
    auto small = run(baseSpec());
    auto spec = baseSpec();
    spec.seeds = SweepSpec::replicateSeeds(42, 4);
    auto big = run(spec);
    expectSubgrid(small, big);
}

TEST(SweepDeterminism, FrequenciesShareTheSeed)
{
    // Predictor experiments require the *same* instruction stream at
    // every operating point: the seed depends on (workload, seed
    // index) only, never on frequency. Witness: identical allocated
    // bytes and event counts across frequencies of one workload.
    auto res = run(baseSpec());
    const auto &a = res.at(0, std::size_t{0}, 0);
    const auto &b = res.at(0, std::size_t{1}, 0);
    EXPECT_NE(a.freq.toMHz(), b.freq.toMHz());
    EXPECT_EQ(a.allocatedBytes, b.allocatedBytes);
    EXPECT_NE(exp::sweep::fingerprintRun(a),
              exp::sweep::fingerprintRun(b));
}

TEST(SweepDeterminism, ReplicateSeedsPrefixStable)
{
    // Growing the seed list keeps the existing seeds: seeds[i] is a
    // pure function of (base, i).
    auto four = SweepSpec::replicateSeeds(42, 4);
    auto eight = SweepSpec::replicateSeeds(42, 8);
    ASSERT_EQ(four.size(), 4u);
    ASSERT_EQ(eight.size(), 8u);
    for (std::size_t i = 0; i < four.size(); ++i)
        EXPECT_EQ(four[i], eight[i]);
}

TEST(SweepDeterminism, ReplicateSeedsDecorrelated)
{
    // All distinct, and a different base produces a disjoint set.
    auto a = SweepSpec::replicateSeeds(42, 16);
    auto b = SweepSpec::replicateSeeds(43, 16);
    std::set<std::uint64_t> seen(a.begin(), a.end());
    EXPECT_EQ(seen.size(), a.size());
    for (auto s : b)
        EXPECT_FALSE(seen.count(s)) << "seed collision across bases";
}

TEST(SweepDeterminism, IndexRoundTrips)
{
    auto spec = baseSpec();
    spec.workloads.push_back(wl::syntheticSmall(4, 40));
    for (std::size_t i = 0; i < spec.cellCount(); ++i) {
        auto cell = spec.cell(i);
        EXPECT_EQ(cell.index, i);
        EXPECT_LT(cell.workload, spec.workloads.size());
        EXPECT_LT(cell.freq, spec.frequencies.size());
        EXPECT_LT(cell.seed, spec.seeds.size());
        EXPECT_EQ(spec.indexOf(cell.workload, cell.freq, cell.seed), i);
    }
}
