/**
 * @file
 * Tests for the workload thread programs (the benchmark generators).
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "wl/programs.hh"
#include "wl/suite.hh"

using namespace dvfs;
using namespace dvfs::wl;
using namespace dvfs::os;

namespace {

/** Drain a program into an action list (bounded). */
std::vector<Action>
drain(ThreadProgram &prog, ThreadId tid = 0,
      std::size_t limit = 1'000'000)
{
    sim::Rng rng(tid + 1);
    ThreadContext ctx{tid, rng};
    std::vector<Action> out;
    while (out.size() < limit) {
        Action a = prog.next(ctx);
        bool is_exit = a.kind == ActionKind::Exit;
        out.push_back(std::move(a));
        if (is_exit)
            break;
    }
    return out;
}

SharedWorkload
shared(WorkloadParams params)
{
    SharedWorkload sh;
    sh.params = std::move(params);
    for (std::uint32_t i = 0; i < sh.params.numLocks; ++i)
        sh.locks.push_back(100 + i);
    if (sh.params.barrierEvery > 0)
        sh.barrier = 200;
    sh.workers = {0, 1, 2, 3};
    return sh;
}

std::size_t
countKind(const std::vector<Action> &as, ActionKind k)
{
    std::size_t n = 0;
    for (const auto &a : as)
        n += (a.kind == k) ? 1 : 0;
    return n;
}

} // namespace

TEST(WorkerProgram, TerminatesWithExit)
{
    auto sh = shared(syntheticSmall(4, 25));
    WorkerProgram w(sh, 1);
    auto actions = drain(w);
    ASSERT_FALSE(actions.empty());
    EXPECT_EQ(actions.back().kind, ActionKind::Exit);
    EXPECT_LT(actions.size(), 1'000'000u);
}

TEST(WorkerProgram, EmitsExpectedActionMix)
{
    auto params = syntheticSmall(4, 50);
    params.clustersPerItem = 2;
    params.allocBytesPerItem = 2048;
    params.allocChunkBytes = 1024;  // two Alloc actions per item
    auto sh = shared(params);
    WorkerProgram w(sh, 1);
    auto actions = drain(w);

    EXPECT_EQ(countKind(actions, ActionKind::MissCluster), 100u);
    EXPECT_EQ(countKind(actions, ActionKind::Alloc), 100u);
    // Locks are probabilistic; lock/unlock must pair exactly.
    std::size_t locks = countKind(actions, ActionKind::MutexLock);
    EXPECT_EQ(locks, countKind(actions, ActionKind::MutexUnlock));
    // Two compute halves per item, plus one per critical section.
    EXPECT_EQ(countKind(actions, ActionKind::Compute), 100u + locks);
}

TEST(WorkerProgram, LockUnlockNeverNests)
{
    auto params = syntheticSmall(4, 200);
    params.lockProb = 0.9;
    auto sh = shared(params);
    WorkerProgram w(sh, 2);
    int held = 0;
    for (const auto &a : drain(w)) {
        if (a.kind == ActionKind::MutexLock) {
            EXPECT_EQ(held, 0);
            ++held;
        } else if (a.kind == ActionKind::MutexUnlock) {
            EXPECT_EQ(held, 1);
            --held;
        }
    }
    EXPECT_EQ(held, 0);
}

TEST(WorkerProgram, BarrierArrivalCountIsIndexIndependent)
{
    // Straggler or not, every worker must arrive at the barrier the
    // same number of times, or the benchmark deadlocks.
    auto params = syntheticSmall(4, 120);
    params.barrierEvery = 25;
    params.stragglerFactor = 2.0;
    auto sh = shared(params);

    std::vector<std::size_t> arrivals;
    for (std::uint32_t idx = 0; idx < 4; ++idx) {
        WorkerProgram w(sh, idx);
        arrivals.push_back(
            countKind(drain(w, idx), ActionKind::BarrierWait));
    }
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_EQ(arrivals[i], arrivals[0]);
    EXPECT_GT(arrivals[0], 0u);
}

TEST(WorkerProgram, StragglerDoesMoreWorkPerItem)
{
    auto params = syntheticSmall(4, 30);
    params.stragglerFactor = 2.0;
    params.lockProb = 0.0;
    auto sh = shared(params);

    auto sum_instr = [&](std::uint32_t idx) {
        WorkerProgram w(sh, idx);
        std::uint64_t sum = 0;
        for (const auto &a : drain(w, idx)) {
            if (a.kind == ActionKind::Compute)
                sum += a.compute.instructions;
        }
        return sum;
    };
    EXPECT_NEAR(static_cast<double>(sum_instr(0)),
                2.0 * static_cast<double>(sum_instr(1)),
                0.01 * static_cast<double>(sum_instr(0)));
}

TEST(WorkerProgram, ClusterAddressesRespectRegions)
{
    auto params = syntheticSmall(4, 60);
    params.pHot = 1.0;  // everything in the per-thread hot region
    params.pWarm = 0.0;
    auto sh = shared(params);
    WorkerProgram w(sh, 3);
    for (const auto &a : drain(w, 3)) {
        if (a.kind != ActionKind::MissCluster)
            continue;
        for (const auto &chain : a.cluster.chains) {
            for (std::uint64_t addr : chain) {
                EXPECT_GE(addr, kHotBase + 3 * kHotStride);
                EXPECT_LT(addr,
                          kHotBase + 3 * kHotStride + params.hotBytes);
                EXPECT_EQ(addr % 64, 0u);
            }
        }
    }
}

TEST(WorkerProgram, DeterministicForSameSeed)
{
    auto sh = shared(syntheticSmall(4, 40));
    WorkerProgram w1(sh, 1), w2(sh, 1);
    auto a1 = drain(w1, 1), a2 = drain(w2, 1);
    ASSERT_EQ(a1.size(), a2.size());
    for (std::size_t i = 0; i < a1.size(); ++i)
        EXPECT_EQ(a1[i].kind, a2[i].kind);
}

TEST(MainProgram, SetupJoinsTeardownExit)
{
    auto sh = shared(syntheticSmall(4, 10));
    MainProgram m(sh);
    auto actions = drain(m, 99);
    ASSERT_EQ(actions.size(), 2u + 4u + 1u);  // 2 compute + 4 joins + exit
    EXPECT_EQ(actions[0].kind, ActionKind::Compute);
    for (int i = 1; i <= 4; ++i) {
        EXPECT_EQ(actions[static_cast<std::size_t>(i)].kind,
                  ActionKind::Join);
        EXPECT_EQ(actions[static_cast<std::size_t>(i)].joinTarget,
                  sh.workers[static_cast<std::size_t>(i - 1)]);
    }
    EXPECT_EQ(actions[5].kind, ActionKind::Compute);
    EXPECT_EQ(actions.back().kind, ActionKind::Exit);
}
