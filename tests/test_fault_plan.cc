/**
 * @file
 * FaultPlan determinism: the whole point of the fault subsystem is
 * that a schedule is a pure function of its seed, so these tests pin
 * the replay contract down hard.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "fault/fault_plan.hh"

using namespace dvfs;
using namespace dvfs::fault;

namespace {

FaultConfig
everythingOn(std::uint64_t seed)
{
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.dramSpikeProb = 0.1;
    cfg.dramBankStallProb = 0.05;
    cfg.dvfsDelayProb = 0.5;
    cfg.dvfsRejectProb = 0.3;
    cfg.spuriousWakeMeanInterval = 5 * kTicksPerUs;
    cfg.preemptProb = 0.2;
    cfg.preemptMinSpacing = 0;
    cfg.gcInflateProb = 0.8;
    return cfg;
}

/** Drive every query with a fixed tick sequence; gather the results. */
std::vector<std::uint64_t>
drive(FaultPlan &plan, int rounds)
{
    std::vector<std::uint64_t> out;
    Tick t = 0;
    for (int i = 0; i < rounds; ++i) {
        t += kTicksPerUs;
        out.push_back(plan.dramReadSpike(t));
        out.push_back(plan.dramBankStall(t));
        out.push_back(plan.dvfsReject(t) ? 1 : 0);
        out.push_back(plan.dvfsExtraDelay(t));
        out.push_back(plan.preemptNow(t) ? 1 : 0);
        out.push_back(plan.gcExtraClusters(t));
        out.push_back(plan.nextSpuriousWakeDelay());
        out.push_back(plan.pickVictim(7));
    }
    return out;
}

} // namespace

TEST(FaultPlan, DefaultConfigInjectsNothing)
{
    FaultConfig cfg = FaultConfig::none();
    EXPECT_FALSE(cfg.anyEnabled());

    FaultPlan plan(cfg);
    for (Tick t = 0; t < 100; ++t) {
        EXPECT_EQ(plan.dramReadSpike(t), 0u);
        EXPECT_EQ(plan.dramBankStall(t), 0u);
        EXPECT_FALSE(plan.dvfsReject(t));
        EXPECT_EQ(plan.dvfsExtraDelay(t), 0u);
        EXPECT_FALSE(plan.preemptNow(t));
        EXPECT_EQ(plan.gcExtraClusters(t), 0u);
        EXPECT_EQ(plan.nextSpuriousWakeDelay(), 0u);
    }
    EXPECT_EQ(plan.totalInjected(), 0u);
    EXPECT_TRUE(plan.trace().empty());
}

TEST(FaultPlan, SameSeedReplaysBitIdentically)
{
    FaultPlan a(everythingOn(99));
    FaultPlan b(everythingOn(99));
    EXPECT_EQ(drive(a, 500), drive(b, 500));
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.totalInjected(), b.totalInjected());
    EXPECT_GT(a.totalInjected(), 0u);

    std::ostringstream ta, tb;
    a.writeTrace(ta);
    b.writeTrace(tb);
    EXPECT_EQ(ta.str(), tb.str());
}

TEST(FaultPlan, DifferentSeedDiverges)
{
    FaultPlan a(everythingOn(1));
    FaultPlan b(everythingOn(2));
    EXPECT_NE(drive(a, 500), drive(b, 500));
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(FaultPlan, ClassStreamsAreIndependent)
{
    // Enabling an extra class must not perturb another class's
    // schedule: each class draws from its own split stream.
    FaultConfig spike_only;
    spike_only.seed = 7;
    spike_only.dramSpikeProb = 0.1;

    FaultConfig spike_and_preempt = spike_only;
    spike_and_preempt.preemptProb = 0.5;
    spike_and_preempt.preemptMinSpacing = 0;

    FaultPlan a(spike_only);
    FaultPlan b(spike_and_preempt);

    for (int i = 0; i < 1000; ++i) {
        Tick t = static_cast<Tick>(i + 1) * kTicksPerUs;
        // Interleave preempt queries on b only; spikes must agree.
        b.preemptNow(t);
        EXPECT_EQ(a.dramReadSpike(t), b.dramReadSpike(t));
    }
    EXPECT_GT(a.injected(FaultClass::DramLatencySpike), 0u);
    EXPECT_EQ(a.injected(FaultClass::DramLatencySpike),
              b.injected(FaultClass::DramLatencySpike));
    EXPECT_GT(b.injected(FaultClass::PreemptJitter), 0u);
}

TEST(FaultPlan, OnlyEnablesExactlyOneClass)
{
    const FaultClass classes[] = {
        FaultClass::DramLatencySpike, FaultClass::DramBankStall,
        FaultClass::DvfsDelay,        FaultClass::DvfsReject,
        FaultClass::SpuriousWake,     FaultClass::PreemptJitter,
        FaultClass::GcInflation,
    };
    for (FaultClass c : classes) {
        FaultConfig cfg = FaultConfig::only(c);
        EXPECT_TRUE(cfg.anyEnabled()) << faultClassName(c);

        // Count how many class knobs are on.
        int on = 0;
        on += cfg.dramSpikeProb > 0.0;
        on += cfg.dramBankStallProb > 0.0;
        on += cfg.dvfsDelayProb > 0.0;
        on += cfg.dvfsRejectProb > 0.0;
        on += cfg.spuriousWakeMeanInterval > 0;
        on += cfg.preemptProb > 0.0;
        on += cfg.gcInflateProb > 0.0;
        EXPECT_EQ(on, 1) << faultClassName(c);
    }
}

TEST(FaultPlan, PreemptSpacingIsHonoured)
{
    FaultConfig cfg;
    cfg.preemptProb = 1.0;
    cfg.preemptMinSpacing = 10 * kTicksPerUs;
    FaultPlan plan(cfg);

    EXPECT_TRUE(plan.preemptNow(kTicksPerUs));
    // Inside the spacing window: always suppressed.
    EXPECT_FALSE(plan.preemptNow(2 * kTicksPerUs));
    EXPECT_FALSE(plan.preemptNow(10 * kTicksPerUs));
    // Past the window: fires again.
    EXPECT_TRUE(plan.preemptNow(12 * kTicksPerUs));
}

TEST(FaultPlanDeathTest, OutOfRangeProbabilityIsFatal)
{
    FaultConfig cfg;
    cfg.dramSpikeProb = 1.5;
    EXPECT_EXIT(FaultPlan{cfg}, ::testing::ExitedWithCode(1),
                "probabilities");
}

TEST(FaultPlanDeathTest, VictimPickFromEmptySetPanics)
{
    FaultPlan plan(everythingOn(3));
    EXPECT_DEATH(plan.pickVictim(0), "empty");
}
