/**
 * @file
 * Tests for the per-thread scaling laws (pred/scaling.hh).
 */

#include <gtest/gtest.h>

#include "pred/scaling.hh"

using namespace dvfs;
using namespace dvfs::pred;

namespace {

uarch::PerfCounters
counters(Tick busy, Tick stall, Tick leading, Tick crit, Tick sq,
         Tick true_mem = 0)
{
    uarch::PerfCounters c;
    c.busyTime = busy;
    c.stallNonscaling = stall;
    c.leadingNonscaling = leading;
    c.critNonscaling = crit;
    c.sqFullTime = sq;
    c.trueMemTime = true_mem;
    return c;
}

} // namespace

TEST(Scaling, EstimatorSelection)
{
    auto c = counters(100, 10, 20, 30, 5, 40);
    EXPECT_EQ(nonscalingTime(c, {BaseEstimator::StallTime, false}), 10u);
    EXPECT_EQ(nonscalingTime(c, {BaseEstimator::LeadingLoads, false}), 20u);
    EXPECT_EQ(nonscalingTime(c, {BaseEstimator::Crit, false}), 30u);
    EXPECT_EQ(nonscalingTime(c, {BaseEstimator::Oracle, false}), 40u);
}

TEST(Scaling, BurstAddsSqTime)
{
    auto c = counters(100, 10, 20, 30, 5);
    EXPECT_EQ(nonscalingTime(c, {BaseEstimator::Crit, true}), 35u);
    EXPECT_EQ(nonscalingTime(c, {BaseEstimator::StallTime, true}), 15u);
}

TEST(Scaling, RatioOneIsIdentity)
{
    auto c = counters(1000, 0, 0, 300, 50);
    for (auto base : {BaseEstimator::StallTime, BaseEstimator::Crit}) {
        EXPECT_EQ(predictSpan(1000, c, {base, false}, 1.0), 1000u);
        EXPECT_EQ(predictSpan(1000, c, {base, true}, 1.0), 1000u);
    }
}

TEST(Scaling, PureScalingWorkDividesExactly)
{
    auto c = counters(1000, 0, 0, 0, 0);
    EXPECT_EQ(predictSpan(1000, c, {BaseEstimator::Crit, false}, 0.25),
              250u);
    EXPECT_EQ(predictSpan(1000, c, {BaseEstimator::Crit, false}, 4.0),
              4000u);
}

TEST(Scaling, NonScalingPartIsInvariant)
{
    auto c = counters(1000, 0, 0, 400, 0);
    // 600 scaling + 400 non-scaling.
    EXPECT_EQ(predictSpan(1000, c, {BaseEstimator::Crit, false}, 0.5),
              300u + 400u);
    EXPECT_EQ(predictSpan(1000, c, {BaseEstimator::Crit, false}, 2.0),
              1200u + 400u);
}

TEST(Scaling, NonScalingClampedToSpan)
{
    // CRIT can overestimate (fully-overlapped misses): the model must
    // clamp to the observed span rather than go negative.
    auto c = counters(1000, 0, 0, 5000, 0);
    EXPECT_EQ(predictSpan(1000, c, {BaseEstimator::Crit, false}, 0.25),
              1000u);
    EXPECT_EQ(predictSpan(1000, c, {BaseEstimator::Crit, false}, 4.0),
              1000u);
}

TEST(Scaling, ModelSpecNames)
{
    EXPECT_EQ((ModelSpec{BaseEstimator::Crit, false}).name(), "CRIT");
    EXPECT_EQ((ModelSpec{BaseEstimator::Crit, true}).name(), "CRIT+BURST");
    EXPECT_EQ((ModelSpec{BaseEstimator::LeadingLoads, false}).name(), "LL");
    EXPECT_EQ((ModelSpec{BaseEstimator::StallTime, true}).name(),
              "STALL+BURST");
}

/** Property: predictions are monotone in the ratio. */
class ScalingMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(ScalingMonotone, MoreSlowdownMoreTime)
{
    auto c = counters(1000, 100, 150, 200, 50);
    double r = GetParam();
    ModelSpec spec{BaseEstimator::Crit, true};
    Tick at_r = predictSpan(1000, c, spec, r);
    Tick at_2r = predictSpan(1000, c, spec, 2 * r);
    EXPECT_LT(at_r, at_2r);
    // And bounded by the all-scaling / all-nonscaling extremes.
    EXPECT_GE(at_r, std::min<Tick>(1000, nonscalingTime(c, spec)));
    EXPECT_LE(at_r,
              static_cast<Tick>(1000 * std::max(1.0, r)) + 1);
}

INSTANTIATE_TEST_SUITE_P(Ratios, ScalingMonotone,
                         ::testing::Values(0.25, 0.5, 1.0, 1.5, 2.0));
