/**
 * @file
 * Configuration validation: every degenerate configuration must be
 * rejected at construction with a clear message, never silently
 * produce a meaningless simulation.
 */

#include <gtest/gtest.h>

#include <limits>

#include "mgr/energy_manager.hh"
#include "power/vf_table.hh"
#include "pred/record.hh"
#include "wl/builder.hh"
#include "wl/suite.hh"

using namespace dvfs;

namespace {

/** A minimal live machine for manager-construction tests. */
struct ManagerFixture {
    os::System sys;
    pred::RunRecorder rec;
    power::VfTable table;

    ManagerFixture()
        : sys(wl::defaultSystemConfig(Frequency::ghz(3.4))), rec(sys),
          table(power::VfTable::haswell())
    {
    }

    void
    construct(const mgr::ManagerConfig &cfg)
    {
        mgr::EnergyManager mgr(sys, rec, table, cfg);
    }
};

} // namespace

TEST(ManagerConfigDeathTest, ZeroQuantumIsFatal)
{
    ManagerFixture f;
    mgr::ManagerConfig cfg;
    cfg.quantum = 0;
    EXPECT_EXIT(f.construct(cfg), ::testing::ExitedWithCode(1),
                "quantum");
}

TEST(ManagerConfigDeathTest, ZeroHoldOffIsFatal)
{
    ManagerFixture f;
    mgr::ManagerConfig cfg;
    cfg.holdOff = 0;
    EXPECT_EXIT(f.construct(cfg), ::testing::ExitedWithCode(1),
                "hold-off");
}

TEST(ManagerConfigDeathTest, NegativeSlowdownIsFatal)
{
    ManagerFixture f;
    mgr::ManagerConfig cfg;
    cfg.tolerableSlowdown = -0.05;
    EXPECT_EXIT(f.construct(cfg), ::testing::ExitedWithCode(1),
                "slowdown");
}

TEST(ManagerConfigDeathTest, NanSlowdownIsFatal)
{
    ManagerFixture f;
    mgr::ManagerConfig cfg;
    cfg.tolerableSlowdown = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EXIT(f.construct(cfg), ::testing::ExitedWithCode(1),
                "slowdown");
}

TEST(ManagerConfigDeathTest, BadCredibleSlowdownCapIsFatal)
{
    ManagerFixture f;
    mgr::ManagerConfig cfg;
    cfg.maxCredibleSlowdown = 0.0;
    EXPECT_EXIT(f.construct(cfg), ::testing::ExitedWithCode(1),
                "credible");
}

TEST(ManagerConfigDeathTest, ZeroBackoffCapIsFatal)
{
    ManagerFixture f;
    mgr::ManagerConfig cfg;
    cfg.maxBackoff = 0;
    EXPECT_EXIT(f.construct(cfg), ::testing::ExitedWithCode(1),
                "backoff");
}

TEST(VfTableDeathTest, EmptyTableIsFatal)
{
    EXPECT_EXIT(power::VfTable({}), ::testing::ExitedWithCode(1),
                "at least one operating point");
}

TEST(WorkloadDeathTest, ZeroWorkItemsIsFatal)
{
    auto params = wl::syntheticSmall(2, 10);
    params.workItems = 0;
    EXPECT_EXIT(wl::buildBenchmark(
                    params, wl::defaultSystemConfig(Frequency::ghz(1.0))),
                ::testing::ExitedWithCode(1), "work item");
}

TEST(WorkloadDeathTest, ZeroAllocChunkIsFatal)
{
    auto params = wl::syntheticSmall(2, 10);
    params.allocChunkBytes = 0;
    EXPECT_EXIT(wl::buildBenchmark(
                    params, wl::defaultSystemConfig(Frequency::ghz(1.0))),
                ::testing::ExitedWithCode(1), "allocChunkBytes");
}

TEST(WorkloadDeathTest, BadProbabilitiesAreFatal)
{
    auto params = wl::syntheticSmall(2, 10);
    params.lockProb = 1.5;
    EXPECT_EXIT(wl::buildBenchmark(
                    params, wl::defaultSystemConfig(Frequency::ghz(1.0))),
                ::testing::ExitedWithCode(1), "probabilities");
}

TEST(WorkloadDeathTest, LocksWithoutLockPoolIsFatal)
{
    auto params = wl::syntheticSmall(2, 10);
    params.numLocks = 0;
    EXPECT_EXIT(wl::buildBenchmark(
                    params, wl::defaultSystemConfig(Frequency::ghz(1.0))),
                ::testing::ExitedWithCode(1), "locks");
}

TEST(WorkloadDeathTest, ZeroCoresIsFatal)
{
    auto params = wl::syntheticSmall(2, 10);
    auto cfg = wl::defaultSystemConfig(Frequency::ghz(1.0));
    cfg.cores = 0;
    EXPECT_EXIT(wl::buildBenchmark(params, cfg),
                ::testing::ExitedWithCode(1), "core");
}
