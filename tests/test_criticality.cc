/**
 * @file
 * Tests for criticality stacks.
 */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "pred/criticality.hh"

using namespace dvfs;
using namespace dvfs::pred;

namespace {

EpochThread
active(os::ThreadId tid, Tick busy)
{
    EpochThread et;
    et.tid = tid;
    et.delta.busyTime = busy;
    return et;
}

Epoch
epoch(Tick start, Tick end, std::vector<EpochThread> threads)
{
    Epoch e;
    e.start = start;
    e.end = end;
    e.active = std::move(threads);
    return e;
}

} // namespace

TEST(Criticality, SoloRunnerGetsFullCredit)
{
    RunRecord rec;
    rec.totalTime = 100;
    rec.epochs.push_back(epoch(0, 100, {active(3, 100)}));
    CriticalityStack stack(rec);
    ASSERT_EQ(stack.shares().size(), 1u);
    EXPECT_EQ(stack.shares()[0].tid, 3u);
    EXPECT_EQ(stack.shares()[0].criticality, 100u);
    EXPECT_DOUBLE_EQ(stack.shares()[0].fraction, 1.0);
    EXPECT_EQ(stack.mostCritical(), 3u);
}

TEST(Criticality, ParallelEpochSplitsEvenly)
{
    RunRecord rec;
    rec.totalTime = 100;
    rec.epochs.push_back(epoch(0, 100, {active(0, 100), active(1, 100)}));
    CriticalityStack stack(rec);
    ASSERT_EQ(stack.shares().size(), 2u);
    EXPECT_EQ(stack.shares()[0].criticality, 50u);
    EXPECT_EQ(stack.shares()[1].criticality, 50u);
}

TEST(Criticality, SerialThreadDominates)
{
    RunRecord rec;
    rec.totalTime = 300;
    // Parallel phase, then thread 0 alone (it serializes).
    rec.epochs.push_back(epoch(0, 100, {active(0, 100), active(1, 100)}));
    rec.epochs.push_back(epoch(100, 300, {active(0, 200)}));
    CriticalityStack stack(rec);
    EXPECT_EQ(stack.mostCritical(), 0u);
    EXPECT_EQ(stack.shares()[0].criticality, 250u);
    EXPECT_EQ(stack.shares()[1].criticality, 50u);
}

TEST(Criticality, IdleEpochsAccountedSeparately)
{
    RunRecord rec;
    rec.totalTime = 150;
    rec.epochs.push_back(epoch(0, 100, {active(0, 100)}));
    rec.epochs.push_back(epoch(100, 150, {}));
    CriticalityStack stack(rec);
    EXPECT_EQ(stack.idleTime(), 50u);
    EXPECT_EQ(stack.accountedTime(), 150u);
}

TEST(Criticality, DecompositionIsExactWithRemainders)
{
    RunRecord rec;
    rec.totalTime = 101;
    // 101 over 3 threads does not divide evenly; decomposition must
    // still be exact.
    rec.epochs.push_back(
        epoch(0, 101, {active(0, 1), active(1, 1), active(2, 1)}));
    CriticalityStack stack(rec);
    EXPECT_EQ(stack.accountedTime(), 101u);
}

TEST(Criticality, EndToEndStackCoversTheRun)
{
    auto out = exp::runFixed(wl::syntheticSmall(4, 80),
                             Frequency::ghz(1.0));
    CriticalityStack stack(out.record);
    EXPECT_EQ(stack.accountedTime(), out.totalTime);
    EXPECT_NE(stack.mostCritical(), os::kNoThread);
    // Fractions sum to <= 1 (idle takes the rest).
    double sum = 0.0;
    for (const auto &s : stack.shares())
        sum += s.fraction;
    EXPECT_LE(sum, 1.0 + 1e-9);
}

TEST(Criticality, EmptyRecord)
{
    RunRecord rec;
    CriticalityStack stack(rec);
    EXPECT_TRUE(stack.shares().empty());
    EXPECT_EQ(stack.mostCritical(), os::kNoThread);
    EXPECT_EQ(stack.accountedTime(), 0u);
}
