/**
 * @file
 * Unit tests for the banked DRAM model.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "uarch/dram.hh"

using namespace dvfs;
using dvfs::uarch::Dram;
using dvfs::uarch::DramConfig;

namespace {

DramConfig
smallConfig()
{
    DramConfig cfg;
    cfg.channels = 2;
    cfg.banksPerChannel = 4;
    return cfg;
}

} // namespace

TEST(Dram, UnloadedLatencyMatchesTiming)
{
    Dram d(smallConfig());
    const auto &c = d.config();
    Tick expect = nsToTicks(c.tCtrlNs + c.tRcdNs + c.tCasNs + c.tBurstNs);
    EXPECT_EQ(d.unloadedReadLatency(), expect);

    // A cold single read takes exactly the unloaded latency.
    Tick done = d.read(0x1000, 1000);
    EXPECT_EQ(done - 1000, expect);
}

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    Dram d(smallConfig());
    std::uint64_t addr = 64 * 1024;
    Tick t1 = d.read(addr, 0);
    // Same line again, much later (no queueing): row is open.
    Tick lat_hit = d.read(addr, t1 + 100000) - (t1 + 100000);
    // A different row in the same bank: conflict (precharge).
    std::uint64_t far = addr + 4ULL * 1024 * 1024;
    Tick base = t1 + 300000;
    Tick lat_conflict = d.read(far, base) - base;
    EXPECT_LT(lat_hit, lat_conflict);
    EXPECT_EQ(d.rowHits(), 1u);
}

TEST(Dram, SameBankAccessesSerialize)
{
    Dram d(smallConfig());
    // Two simultaneous reads to the same bank but different rows.
    std::uint64_t a = 0;
    std::uint64_t b = 8ULL * 1024 * 1024;  // same channel/bank, other row
    Tick done_a = d.read(a, 0);
    Tick done_b = d.read(b, 0);
    EXPECT_GT(done_b, done_a);  // the second waits for the bank

    // Reads to different channels at the same instant do not stack.
    Dram d2(smallConfig());
    Tick da = d2.read(0, 0);       // channel 0
    Tick db = d2.read(64, 0);      // channel 1
    EXPECT_EQ(da, db);
}

TEST(Dram, WritesDoNotBlockReadsOnOtherResources)
{
    // A write stream pinned to channel 0 / bank 0 must not delay a
    // read on channel 1 (read-priority controller, separate buses).
    Dram d(smallConfig());
    for (int i = 0; i < 16; ++i)
        d.write(static_cast<std::uint64_t>(i) * 512, 0);  // ch0, bank0
    Tick lat = d.read(64, 0);  // channel 1, untouched
    EXPECT_LE(lat, d.unloadedReadLatency());
}

TEST(Dram, SustainedWritesAreThroughputLimited)
{
    Dram d(smallConfig());
    Tick last = 0;
    const int n = 256;
    for (int i = 0; i < n; ++i)
        last = d.write(static_cast<std::uint64_t>(i) * 64, 0);
    // Completion of the burst implies a finite per-line service.
    double per_line_ns = ticksToNs(last) / n;
    EXPECT_GT(per_line_ns, 1.0);
    EXPECT_LT(per_line_ns, 50.0);
}

TEST(Dram, CountsReadsAndWrites)
{
    Dram d(smallConfig());
    d.read(0, 0);
    d.read(64, 0);
    d.write(128, 0);
    EXPECT_EQ(d.reads(), 2u);
    EXPECT_EQ(d.writes(), 1u);
    EXPECT_GT(d.meanReadLatencyNs(), 0.0);
    EXPECT_GT(d.meanWriteLatencyNs(), 0.0);
}

TEST(Dram, ResetClearsState)
{
    Dram d(smallConfig());
    for (int i = 0; i < 100; ++i)
        d.read(static_cast<std::uint64_t>(i) * 4096, 0);
    d.reset();
    EXPECT_EQ(d.reads(), 0u);
    EXPECT_EQ(d.rowHits() + d.rowMisses(), 0u);
    // After reset a cold read is unloaded again.
    EXPECT_EQ(d.read(0, 0), d.unloadedReadLatency());
}

TEST(Dram, CompletionIsMonotonicPerBank)
{
    Dram d(smallConfig());
    std::uint64_t addr = 0;
    Tick prev = 0;
    for (int i = 0; i < 50; ++i) {
        Tick done = d.read(addr + static_cast<std::uint64_t>(i) *
                                      8ULL * 1024 * 1024,
                           10 * static_cast<Tick>(i));
        EXPECT_GE(done, prev);
        prev = done;
    }
}

TEST(Dram, DeterministicAcrossInstances)
{
    Dram d1(smallConfig()), d2(smallConfig());
    for (int i = 0; i < 500; ++i) {
        std::uint64_t addr = (static_cast<std::uint64_t>(i) * 7919) %
                             (1ULL << 24);
        Tick issue = static_cast<Tick>(i) * 3000;
        ASSERT_EQ(d1.read(addr, issue), d2.read(addr, issue));
    }
}

TEST(DramDeathTest, RejectsBadGeometry)
{
    DramConfig cfg;
    cfg.channels = 0;
    EXPECT_EXIT(Dram d(cfg), ::testing::ExitedWithCode(1), "channel");

    DramConfig cfg2;
    cfg2.rowBytes = 100;  // not a multiple of line size
    EXPECT_EXIT(Dram d(cfg2), ::testing::ExitedWithCode(1), "row");
}

/** Property: a read's latency never beats the unloaded latency. */
class DramLatencyFloor : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DramLatencyFloor, NeverBelowUnloaded)
{
    Dram d;
    dvfs::sim::Rng rng(GetParam());
    Tick t = 0;
    for (int i = 0; i < 300; ++i) {
        std::uint64_t addr = rng.nextBounded(1ULL << 28) & ~63ULL;
        t += rng.nextBounded(100);
        Tick done = d.read(addr, t);
        // tCAS + burst is the absolute floor (open row, no queue).
        Tick floor_lat = nsToTicks(d.config().tCtrlNs +
                                   d.config().tCasNs +
                                   d.config().tBurstNs);
        EXPECT_GE(done - t, floor_lat);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramLatencyFloor,
                         ::testing::Values(1, 7, 42, 1001));
