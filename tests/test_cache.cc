/**
 * @file
 * Unit tests for the cache and cache-hierarchy models.
 */

#include <gtest/gtest.h>

#include "uarch/cache.hh"

using namespace dvfs;
using namespace dvfs::uarch;

namespace {

CacheConfig
tinyCache()
{
    // 4 sets x 2 ways x 64 B lines = 512 B.
    return CacheConfig{512, 2, 64, 2};
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache c("t", tinyCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineDifferentByteOffsets)
{
    Cache c("t", tinyCache());
    c.access(0x1000, false);
    EXPECT_TRUE(c.access(0x1037, false).hit);  // same 64B line
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
}

TEST(Cache, LruEvictsOldest)
{
    Cache c("t", tinyCache());
    // Three lines mapping to the same set (set stride = 4 lines).
    std::uint64_t a = 0, b = 4 * 64, d = 8 * 64;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);        // refresh a; b is now LRU
    auto r = c.access(d, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));  // evicted
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c("t", tinyCache());
    std::uint64_t a = 0, b = 4 * 64, d = 8 * 64;
    c.access(a, true);   // dirty
    c.access(b, false);
    auto r = c.access(d, false);  // evicts a (LRU)
    ASSERT_TRUE(r.writeback.has_value());
    EXPECT_EQ(*r.writeback, a);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c("t", tinyCache());
    std::uint64_t a = 0, b = 4 * 64, d = 8 * 64;
    c.access(a, false);
    c.access(b, false);
    auto r = c.access(d, false);
    EXPECT_FALSE(r.writeback.has_value());
}

TEST(Cache, DirtyBitSticksAcrossHits)
{
    Cache c("t", tinyCache());
    std::uint64_t a = 0, b = 4 * 64, d = 8 * 64;
    c.access(a, true);
    c.access(a, false);  // read hit must not clear dirty
    c.access(b, false);
    c.access(a, false);  // refresh a; b LRU
    auto r = c.access(d, false);
    EXPECT_FALSE(r.writeback.has_value());  // b was clean
    auto r2 = c.access(b, false);           // evicts a or d
    // a is dirty; if a is the victim we must see its writeback.
    if (r2.writeback) {
        EXPECT_EQ(*r2.writeback, a);
    }
}

TEST(Cache, ResetDropsContents)
{
    Cache c("t", tinyCache());
    c.access(0x40, true);
    c.reset();
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.hits(), 0u);
}

TEST(CacheDeathTest, RejectsBadGeometry)
{
    EXPECT_EXIT(Cache("x", CacheConfig{512, 3, 64, 1}),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(Cache("x", CacheConfig{512, 2, 48, 1}),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(Cache("x", CacheConfig{512, 0, 64, 1}),
                ::testing::ExitedWithCode(1), "");
}

// ------------------------------------------------------------------
// Hierarchy

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : uncore("uncore", Frequency::mhz(1500)),
          mem(2, HierarchyConfig{}, dram, uncore)
    {
    }

    Dram dram;
    FreqDomain uncore;
    CacheHierarchy mem;
    Frequency f1 = Frequency::ghz(1.0);
    Frequency f4 = Frequency::ghz(4.0);
};

TEST_F(HierarchyTest, ColdLoadGoesToDram)
{
    auto out = mem.load(0, 0x10000, 0, f1);
    EXPECT_EQ(out.level, HitLevel::Dram);
    EXPECT_GT(out.memLatency, mem.l3HitTicks());
}

TEST_F(HierarchyTest, SecondLoadHitsL1)
{
    mem.load(0, 0x10000, 0, f1);
    auto out = mem.load(0, 0x10000, 1000, f1);
    EXPECT_EQ(out.level, HitLevel::L1);
    EXPECT_EQ(out.memLatency, 0u);
    EXPECT_EQ(out.completion, 1000u);
}

TEST_F(HierarchyTest, OtherCoreHitsSharedL3)
{
    mem.load(0, 0x10000, 0, f1);
    auto out = mem.load(1, 0x10000, 1000, f1);
    EXPECT_EQ(out.level, HitLevel::L3);
    EXPECT_EQ(out.memLatency,
              mem.l2HitTicks(f1) + mem.l3HitTicks());
}

TEST_F(HierarchyTest, L2HitLatencyScalesWithCoreClock)
{
    EXPECT_EQ(mem.l2HitTicks(f1), 4 * mem.l2HitTicks(f4));
}

TEST_F(HierarchyTest, L3HitLatencyIsFrequencyInvariant)
{
    Tick l3 = mem.l3HitTicks();
    // 40 uncore cycles at 1.5 GHz = 26.67 ns, independent of core f.
    EXPECT_NEAR(ticksToNs(l3), 40.0 / 1.5, 0.01);
}

TEST_F(HierarchyTest, L1EvictionFallsToL2)
{
    // Fill one L1 set (4 ways; set stride = 128 lines for 32KB/4-way).
    const std::uint64_t stride = 128 * 64;
    for (int i = 0; i < 5; ++i)
        mem.load(0, 0x100000 + static_cast<std::uint64_t>(i) * stride, 0,
                 f1);
    // The first line left L1 but must still be in L2.
    auto out = mem.load(0, 0x100000, 50000, f1);
    EXPECT_EQ(out.level, HitLevel::L2);
}

TEST_F(HierarchyTest, StoreLineOnChipDrainsInstantly)
{
    mem.load(0, 0x20000, 0, f1);  // bring the line on chip
    Tick done = mem.storeLine(0, 0x20000, 1000);
    EXPECT_EQ(done, 1000u);
}

TEST_F(HierarchyTest, StoreMissesDrainAtWritePortRate)
{
    // Cold lines: each drain advances the per-core write port.
    Tick d1 = mem.storeLine(0, 0x1000000, 0);
    Tick d2 = mem.storeLine(0, 0x1000040, 0);
    Tick service = nsToTicks(mem.config().writeDrainNs);
    EXPECT_EQ(d1, service);
    EXPECT_EQ(d2, 2 * service);
}

TEST_F(HierarchyTest, WritePortsArePerCore)
{
    Tick a = mem.storeLine(0, 0x2000000, 0);
    Tick b = mem.storeLine(1, 0x3000000, 0);
    EXPECT_EQ(a, b);  // independent ports: no cross-core stacking
}

TEST_F(HierarchyTest, ResetRestoresColdState)
{
    mem.load(0, 0x10000, 0, f1);
    mem.reset();
    auto out = mem.load(0, 0x10000, 0, f1);
    EXPECT_EQ(out.level, HitLevel::Dram);
}

TEST(HitLevelNames, AreStable)
{
    EXPECT_STREQ(hitLevelName(HitLevel::L1), "L1");
    EXPECT_STREQ(hitLevelName(HitLevel::L2), "L2");
    EXPECT_STREQ(hitLevelName(HitLevel::L3), "L3");
    EXPECT_STREQ(hitLevelName(HitLevel::Dram), "DRAM");
}
