/**
 * @file
 * End-to-end smoke tests: a small benchmark builds, runs to
 * completion, and produces sane top-level quantities.
 */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "wl/suite.hh"

using namespace dvfs;

TEST(Smoke, SyntheticRunsToCompletion)
{
    auto params = wl::syntheticSmall(2, 50);
    auto out = exp::runFixed(params, Frequency::ghz(1.0));
    EXPECT_GT(out.totalTime, 0u);
    EXPECT_GT(out.totals.instructions, 0u);
    EXPECT_FALSE(out.record.epochs.empty());
    EXPECT_GT(out.energy.total(), 0.0);
}

TEST(Smoke, HigherFrequencyIsFaster)
{
    auto params = wl::syntheticSmall(2, 50);
    auto slow = exp::runFixed(params, Frequency::ghz(1.0));
    auto fast = exp::runFixed(params, Frequency::ghz(4.0));
    EXPECT_LT(fast.totalTime, slow.totalTime);
    // But not 4x faster: the non-scaling component persists.
    EXPECT_GT(fast.totalTime, slow.totalTime / 4);
}
