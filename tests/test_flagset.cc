/**
 * @file
 * bench::FlagSet: the declared-flags CLI parser the harnesses share.
 *
 * The consolidation contract: flags are declared once, --help is
 * generated from the declarations, an unknown flag or malformed value
 * is fatal() *naming the offending flag*, and querying a key that was
 * never declared is a programming error (panic). parseKnown() must
 * consume only declared flags so google-benchmark binaries can share
 * argv.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../bench/bench_util.hh"

using dvfs::bench::FlagSet;

namespace {

/** argv builder (parse takes char**, tests hold the storage). */
struct Argv {
    explicit Argv(std::vector<std::string> args) : _args(std::move(args))
    {
        _ptrs.push_back(const_cast<char *>("prog"));
        for (const auto &a : _args)
            _ptrs.push_back(const_cast<char *>(a.c_str()));
        _ptrs.push_back(nullptr);
    }

    int argc() const { return static_cast<int>(_ptrs.size()) - 1; }
    char **argv() { return _ptrs.data(); }

  private:
    std::vector<std::string> _args;
    std::vector<char *> _ptrs;
};

FlagSet
sampleFlags()
{
    FlagSet flags("prog", "test fixture");
    flags.add("count", "N", "how many (default 1)")
        .add("ratio", "X", "scale factor (default 1.0)")
        .add("name", "S", "a label")
        .addBool("verbose", "say more")
        .addWorkers();
    return flags;
}

} // namespace

TEST(FlagSet, ParsesDeclaredFlagsWithTypedAccess)
{
    auto flags = sampleFlags();
    Argv argv({"--count=42", "--ratio=2.5", "--name=abc", "--verbose"});
    flags.parse(argv.argc(), argv.argv());

    EXPECT_EQ(flags.getInt("count", 1), 42);
    EXPECT_DOUBLE_EQ(flags.getDouble("ratio", 1.0), 2.5);
    EXPECT_EQ(flags.get("name"), "abc");
    EXPECT_TRUE(flags.has("verbose"));
    // Declared but not passed: defaults apply, has() is false.
    EXPECT_FALSE(flags.has("workers"));
    EXPECT_EQ(flags.getInt("workers", 0), 0);
}

TEST(FlagSet, ParseKnownLeavesForeignFlagsInPlace)
{
    auto flags = sampleFlags();
    Argv argv({"--benchmark_filter=epoch", "--count=3",
               "--benchmark_min_time=1", "--verbose"});
    const int rest = flags.parseKnown(argv.argc(), argv.argv());

    // Ours were consumed...
    EXPECT_EQ(flags.getInt("count", 1), 3);
    EXPECT_TRUE(flags.has("verbose"));
    // ...and exactly the foreign flags remain, order preserved, for
    // the other parser (google-benchmark) to see.
    ASSERT_EQ(rest, 3);
    EXPECT_STREQ(argv.argv()[1], "--benchmark_filter=epoch");
    EXPECT_STREQ(argv.argv()[2], "--benchmark_min_time=1");
    EXPECT_EQ(argv.argv()[rest], nullptr);
}

TEST(FlagSet, HelpListsEveryDeclaredFlag)
{
    const std::string help = sampleFlags().help();
    EXPECT_NE(help.find("prog: test fixture"), std::string::npos);
    EXPECT_NE(help.find("--count=N"), std::string::npos);
    EXPECT_NE(help.find("--ratio=X"), std::string::npos);
    EXPECT_NE(help.find("--verbose"), std::string::npos);
    // Canned declarations carry the shared spelling and help line.
    EXPECT_NE(help.find("--workers=N"), std::string::npos);
    EXPECT_NE(help.find("sweep pool width"), std::string::npos);
    // Boolean flags show no =HINT.
    EXPECT_EQ(help.find("--verbose="), std::string::npos);
}

TEST(FlagSetDeathTest, UnknownFlagIsFatalNamingTheFlag)
{
    auto flags = sampleFlags();
    Argv argv({"--bogus=1"});
    EXPECT_EXIT(flags.parse(argv.argc(), argv.argv()),
                testing::ExitedWithCode(1),
                "unknown flag '--bogus=1'");
}

TEST(FlagSetDeathTest, MalformedValueIsFatalNamingTheFlag)
{
    auto flags = sampleFlags();
    Argv argv({"--count=abc", "--ratio=x2"});
    flags.parse(argv.argc(), argv.argv());
    EXPECT_EXIT((void)flags.getInt("count", 1),
                testing::ExitedWithCode(1),
                "--count: expected an integer, got 'abc'");
    EXPECT_EXIT((void)flags.getDouble("ratio", 1.0),
                testing::ExitedWithCode(1),
                "--ratio: expected a number, got 'x2'");
}

TEST(FlagSetDeathTest, HelpPrintsListingAndExitsCleanly)
{
    auto flags = sampleFlags();
    Argv argv({"--help"});
    EXPECT_EXIT(flags.parse(argv.argc(), argv.argv()),
                testing::ExitedWithCode(0), "");
}

TEST(FlagSetDeathTest, QueryingUndeclaredFlagIsAProgrammingError)
{
    auto flags = sampleFlags();
    Argv argv({"--count=1"});
    flags.parse(argv.argc(), argv.argv());
    EXPECT_DEATH((void)flags.get("undeclared"),
                 "queried undeclared flag --undeclared");
}
