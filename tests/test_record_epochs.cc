/**
 * @file
 * Tests for the epoch decomposition (RunRecorder) — the DEP kernel
 * module's bookkeeping.
 */

#include <gtest/gtest.h>

#include "pred/record.hh"
#include "test_util.hh"

using namespace dvfs;
using namespace dvfs::os;
using namespace dvfs::pred;
using namespace dvfs::test;

namespace {

SystemConfig
smallConfig(std::uint32_t cores = 2)
{
    SystemConfig cfg;
    cfg.cores = cores;
    cfg.coreFreq = Frequency::ghz(1.0);
    return cfg;
}

} // namespace

TEST(RunRecorder, EpochsPartitionTheRun)
{
    System sys(smallConfig());
    SyncId m = sys.createMutex();
    std::vector<Action> script = {
        Action::makeCompute(50'000), Action::makeMutexLock(m),
        Action::makeCompute(100'000), Action::makeMutexUnlock(m),
        Action::makeCompute(20'000)};
    ThreadId a = addScript(sys, "a", script);
    ThreadId b = addScript(sys, "b", script);
    ThreadId main = addScript(sys, "main",
                              {Action::makeJoin(a), Action::makeJoin(b)});
    sys.setMainThread(main);

    RunRecorder rec(sys);
    sys.addListener(&rec);
    auto res = sys.run();
    auto record = rec.finalize();

    ASSERT_FALSE(record.epochs.empty());
    EXPECT_EQ(record.epochs.front().start, 0u);
    EXPECT_EQ(record.epochs.back().end, res.totalTime);
    Tick sum = 0;
    Tick prev_end = 0;
    for (const auto &ep : record.epochs) {
        EXPECT_EQ(ep.start, prev_end) << "epochs must tile the run";
        EXPECT_GT(ep.end, ep.start);
        prev_end = ep.end;
        sum += ep.duration();
    }
    EXPECT_EQ(sum, res.totalTime);
}

TEST(RunRecorder, StallTidSetOnSleepBoundaries)
{
    System sys(smallConfig(1));
    SyncId f = sys.createFutex();
    ThreadId a = addScript(sys, "a", {Action::makeCompute(10'000),
                                      Action::makeFutexWait(f)});
    ThreadId main = sys.addThread(
        "main", std::make_unique<LambdaProgram>(
                    [&sys, f, a, step = 0](ThreadContext &) mutable
                    -> Action {
                        switch (step++) {
                          case 0:
                            return Action::makeCompute(100'000);
                          case 1:
                            sys.futexWakeAll(f);
                            return Action::makeJoin(a);
                          default:
                            return Action::makeExit();
                        }
                    }));
    sys.setMainThread(main);

    RunRecorder rec(sys);
    sys.addListener(&rec);
    sys.run();
    auto record = rec.finalize();

    bool saw_stall = false;
    for (const auto &ep : record.epochs) {
        if (ep.boundary == SyncEventKind::FutexWait) {
            EXPECT_EQ(ep.stallTid, a);
            saw_stall = true;
        } else {
            EXPECT_EQ(ep.stallTid, kNoThread);
        }
    }
    EXPECT_TRUE(saw_stall);
}

TEST(RunRecorder, ActiveSetMatchesScheduledThreads)
{
    // One core: at any epoch at most one thread can be active.
    System sys(smallConfig(1));
    std::vector<Action> script(4, Action::makeCompute(30'000));
    ThreadId a = addScript(sys, "a", script);
    ThreadId main = addScript(sys, "main", {Action::makeJoin(a)});
    sys.setMainThread(main);

    RunRecorder rec(sys);
    sys.addListener(&rec);
    sys.run();
    auto record = rec.finalize();

    for (const auto &ep : record.epochs)
        EXPECT_LE(ep.active.size(), 1u);
}

TEST(RunRecorder, BusyDeltasSumToThreadTotals)
{
    System sys(smallConfig());
    SyncId m = sys.createMutex();
    std::vector<Action> script = {
        Action::makeCompute(40'000), Action::makeMutexLock(m),
        Action::makeCompute(60'000), Action::makeMutexUnlock(m)};
    ThreadId a = addScript(sys, "a", script);
    ThreadId b = addScript(sys, "b", script);
    ThreadId main = addScript(sys, "main",
                              {Action::makeJoin(a), Action::makeJoin(b)});
    sys.setMainThread(main);

    RunRecorder rec(sys);
    sys.addListener(&rec);
    sys.run();
    auto record = rec.finalize();

    std::vector<Tick> busy(sys.numThreads(), 0);
    for (const auto &ep : record.epochs) {
        for (const auto &et : ep.active)
            busy[et.tid] += et.delta.busyTime;
    }
    // All busy time is attributed to epochs where the thread was
    // active (counters commit at action completion, and completion
    // while running is always inside an active epoch).
    for (std::size_t t = 0; t < sys.numThreads(); ++t) {
        EXPECT_EQ(busy[t],
                  record.threads[t].totals.busyTime)
            << "thread " << t;
    }
}

TEST(RunRecorder, KeepEventsRetainsRawTrace)
{
    System sys(smallConfig());
    ThreadId main = addScript(sys, "main", {Action::makeCompute(1000)});
    sys.setMainThread(main);
    RunRecorder rec(sys, /*keep_events=*/true);
    sys.addListener(&rec);
    sys.run();
    auto record = rec.finalize();
    EXPECT_FALSE(record.events.empty());
    EXPECT_EQ(record.events.back().kind, SyncEventKind::RunEnd);
}

TEST(RunRecorder, ThreadSummariesComplete)
{
    System sys(smallConfig());
    ThreadId a = addScript(sys, "a", {Action::makeCompute(5'000)});
    ThreadId main = addScript(sys, "main", {Action::makeJoin(a)});
    sys.setMainThread(main);
    RunRecorder rec(sys);
    sys.addListener(&rec);
    auto res = sys.run();
    auto record = rec.finalize();

    ASSERT_EQ(record.threads.size(), 2u);
    EXPECT_EQ(record.totalTime, res.totalTime);
    EXPECT_EQ(record.baseFreq, Frequency::ghz(1.0));
    for (const auto &t : record.threads) {
        EXPECT_LE(t.spawnTick, t.exitTick);
        EXPECT_LE(t.exitTick, res.totalTime);
    }
}

TEST(RunRecorderDeathTest, DoubleFinalizeIsFatal)
{
    System sys(smallConfig());
    ThreadId main = addScript(sys, "main", {});
    sys.setMainThread(main);
    RunRecorder rec(sys);
    sys.addListener(&rec);
    sys.run();
    rec.finalize();
    EXPECT_EXIT(rec.finalize(), ::testing::ExitedWithCode(1), "twice");
}
