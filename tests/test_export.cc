/**
 * @file
 * Tests for the CSV export of run artifacts.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exp/experiment.hh"
#include "exp/export.hh"

using namespace dvfs;

namespace {

std::size_t
countLines(const std::string &s)
{
    std::size_t n = 0;
    for (char c : s) {
        if (c == '\n')
            ++n;
    }
    return n;
}

const exp::FixedRunOutput &
sampleRun()
{
    static exp::FixedRunOutput out = [] {
        exp::RunOptions opts;
        opts.keepEvents = true;
        return exp::runFixed(wl::syntheticSmall(2, 40),
                             Frequency::ghz(1.0), opts);
    }();
    return out;
}

} // namespace

TEST(Export, EpochsCsvHasRowPerActiveThread)
{
    const auto &out = sampleRun();
    std::ostringstream os;
    exp::writeEpochsCsv(os, out.record);
    std::string s = os.str();

    std::size_t expected = 0;
    for (const auto &ep : out.record.epochs)
        expected += std::max<std::size_t>(ep.active.size(), 1);
    EXPECT_EQ(countLines(s), expected + 1);  // + header
    EXPECT_EQ(s.substr(0, 5), "epoch");
    EXPECT_NE(s.find("FutexWait"), std::string::npos);
}

TEST(Export, EventsCsvMatchesTrace)
{
    const auto &out = sampleRun();
    std::ostringstream os;
    exp::writeEventsCsv(os, out.record);
    EXPECT_EQ(countLines(os.str()), out.record.events.size() + 1);
    EXPECT_NE(os.str().find("RunEnd"), std::string::npos);
}

TEST(Export, ThreadsCsvHasRowPerThread)
{
    const auto &out = sampleRun();
    std::ostringstream os;
    exp::writeThreadsCsv(os, out.record);
    EXPECT_EQ(countLines(os.str()), out.record.threads.size() + 1);
    // Service threads flagged.
    EXPECT_NE(os.str().find(",1,"), std::string::npos);
}

TEST(Export, DecisionsCsv)
{
    mgr::ManagerConfig mc;
    mc.quantum = 20 * kTicksPerUs;
    mc.tolerableSlowdown = 0.1;
    auto managed = exp::runManaged(wl::syntheticSmall(2, 120), mc,
                                   power::VfTable::haswell());
    std::ostringstream os;
    exp::writeDecisionsCsv(os, managed.decisions);
    EXPECT_EQ(countLines(os.str()), managed.decisions.size() + 1);
    EXPECT_NE(os.str().find("epochs"), std::string::npos);
}

TEST(Export, CsvFieldCountsAreConsistent)
{
    const auto &out = sampleRun();
    std::ostringstream os;
    exp::writeThreadsCsv(os, out.record);
    std::istringstream in(os.str());
    std::string line;
    std::getline(in, line);
    const auto headers =
        static_cast<std::size_t>(
            std::count(line.begin(), line.end(), ',')) + 1;
    while (std::getline(in, line)) {
        EXPECT_EQ(static_cast<std::size_t>(
                      std::count(line.begin(), line.end(), ',')) + 1,
                  headers);
    }
}
