/**
 * @file
 * Tests for the benchmark suite and the workload builder.
 */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "wl/builder.hh"
#include "wl/suite.hh"

using namespace dvfs;
using namespace dvfs::wl;

TEST(Suite, HasTheSevenDacapoBenchmarks)
{
    auto suite = dacapoSuite();
    ASSERT_EQ(suite.size(), 7u);
    const char *expected[] = {"xalan",        "pmd",    "pmd.scale",
                              "lusearch",     "lusearch.fix", "avrora",
                              "sunflow"};
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(Suite, ClassificationMatchesTableOne)
{
    for (const auto &p : dacapoSuite()) {
        bool expect_memory = p.name == "xalan" || p.name == "pmd" ||
                             p.name == "pmd.scale" || p.name == "lusearch";
        EXPECT_EQ(p.memoryIntensive, expect_memory) << p.name;
    }
}

TEST(Suite, AvroraHasSixThreads)
{
    EXPECT_EQ(benchmarkByName("avrora").appThreads, 6u);
    EXPECT_EQ(benchmarkByName("xalan").appThreads, 4u);
}

TEST(Suite, LookupByName)
{
    EXPECT_EQ(benchmarkByName("sunflow").name, "sunflow");
    EXPECT_EQ(benchmarkByName("synthetic").name, "synthetic");
}

TEST(SuiteDeathTest, UnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(benchmarkByName("quake3"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(Suite, MemoryIntensiveSubset)
{
    auto mem = memoryIntensiveSuite();
    EXPECT_EQ(mem.size(), 4u);
    for (const auto &p : mem)
        EXPECT_TRUE(p.memoryIntensive);
}

TEST(Builder, WiresThreadsRuntimeAndLocks)
{
    auto params = syntheticSmall(3, 10);
    auto inst = buildBenchmark(params, defaultSystemConfig(
                                           Frequency::ghz(1.0)));
    ASSERT_TRUE(inst.sys);
    ASSERT_TRUE(inst.runtime);
    // 3 workers + main + GC workers.
    EXPECT_EQ(inst.sys->numThreads(),
              3u + 1u + params.runtime.gcThreads);
    EXPECT_NE(inst.mainTid, os::kNoThread);
    EXPECT_EQ(inst.shared->workers.size(), 3u);
}

TEST(Builder, SyntheticRunsAndAllocates)
{
    auto params = syntheticSmall(2, 40);
    auto out = exp::runFixed(params, Frequency::ghz(2.0));
    EXPECT_GT(out.totalTime, 0u);
    EXPECT_GT(out.allocatedBytes, 0u);
    EXPECT_GT(out.totals.missClusters, 0u);
}

TEST(Builder, IdenticalSeedsAreBitwiseDeterministic)
{
    auto params = syntheticSmall(4, 60);
    auto a = exp::runFixed(params, Frequency::ghz(1.0));
    auto b = exp::runFixed(params, Frequency::ghz(1.0));
    EXPECT_EQ(a.totalTime, b.totalTime);
    EXPECT_EQ(a.totals.instructions, b.totals.instructions);
    EXPECT_EQ(a.totals.busyTime, b.totals.busyTime);
    EXPECT_EQ(a.record.epochs.size(), b.record.epochs.size());
}

TEST(Builder, DifferentSeedsChangeTiming)
{
    auto params = syntheticSmall(4, 60);
    exp::RunOptions o1, o2;
    o1.seed = 1;
    o2.seed = 2;
    auto a = exp::runFixed(params, Frequency::ghz(1.0), o1);
    auto b = exp::runFixed(params, Frequency::ghz(1.0), o2);
    EXPECT_NE(a.totalTime, b.totalTime);
}

TEST(Builder, WorkIsFrequencyInvariant)
{
    // The replay property: the instruction stream and allocation
    // volume are identical at every DVFS setting.
    auto params = syntheticSmall(2, 50);
    auto slow = exp::runFixed(params, Frequency::ghz(1.0));
    auto fast = exp::runFixed(params, Frequency::ghz(4.0));
    EXPECT_EQ(slow.allocatedBytes, fast.allocatedBytes);
    EXPECT_EQ(slow.totals.missClusters, fast.totals.missClusters);
    EXPECT_EQ(slow.totals.storeLines, fast.totals.storeLines);
}

TEST(BuilderDeathTest, ZeroWorkersIsFatal)
{
    auto params = syntheticSmall(1, 10);
    params.appThreads = 0;
    EXPECT_EXIT(buildBenchmark(params,
                               defaultSystemConfig(Frequency::ghz(1.0))),
                ::testing::ExitedWithCode(1), "worker");
}
