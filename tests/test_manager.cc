/**
 * @file
 * Tests for the energy manager (Section VI).
 */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "mgr/energy_manager.hh"

using namespace dvfs;
using namespace dvfs::mgr;

namespace {

ManagerConfig
smallManager(double slowdown)
{
    ManagerConfig mc;
    mc.quantum = 20 * kTicksPerUs;
    mc.holdOff = 1;
    mc.tolerableSlowdown = slowdown;
    return mc;
}

} // namespace

TEST(EnergyManager, ZeroToleranceStaysAtHighestFrequency)
{
    auto table = power::VfTable::haswell();
    auto out = exp::runManaged(wl::syntheticSmall(2, 150),
                               smallManager(0.0), table);
    // With a zero budget nothing below 4 GHz qualifies.
    EXPECT_NEAR(out.averageGHz, 4.0, 0.05);
}

TEST(EnergyManager, LargeToleranceDropsFrequency)
{
    auto table = power::VfTable::haswell();
    auto out = exp::runManaged(wl::syntheticSmall(2, 150),
                               smallManager(1.5), table);
    // A 150% budget admits the lowest operating point everywhere.
    EXPECT_LT(out.averageGHz, 1.5);
}

TEST(EnergyManager, SlowdownStaysNearBudget)
{
    auto params = wl::syntheticSmall(4, 300);
    auto table = power::VfTable::haswell();
    auto baseline = exp::runFixed(params, table.highest());
    auto managed = exp::runManaged(params, smallManager(0.10), table);
    double slowdown = static_cast<double>(managed.totalTime) /
                          static_cast<double>(baseline.totalTime) -
                      1.0;
    // The manager may undershoot (conservative predictions) but must
    // not blow materially past the user bound.
    EXPECT_LT(slowdown, 0.10 + 0.05);
    EXPECT_GT(slowdown, -0.02);
}

TEST(EnergyManager, HigherBudgetSavesMoreEnergy)
{
    auto params = wl::syntheticSmall(4, 300);
    auto table = power::VfTable::haswell();
    auto tight = exp::runManaged(params, smallManager(0.02), table);
    auto loose = exp::runManaged(params, smallManager(0.20), table);
    EXPECT_LT(loose.energy.total(), tight.energy.total());
    EXPECT_LT(loose.averageGHz, tight.averageGHz);
}

TEST(EnergyManager, DecisionsAreRecordedEveryQuantum)
{
    auto params = wl::syntheticSmall(2, 200);
    auto table = power::VfTable::haswell();
    ManagerConfig mc = smallManager(0.05);
    auto out = exp::runManaged(params, mc, table);
    EXPECT_GT(out.decisions.size(), 2u);
    for (std::size_t i = 1; i < out.decisions.size(); ++i) {
        EXPECT_GT(out.decisions[i].tick, out.decisions[i - 1].tick);
        EXPECT_LE(out.decisions[i].predictedSlowdown,
                  mc.tolerableSlowdown + 1e-9);
    }
}

TEST(EnergyManager, HoldOffSkipsDecisions)
{
    auto params = wl::syntheticSmall(2, 200);
    auto table = power::VfTable::haswell();
    ManagerConfig every = smallManager(0.05);
    ManagerConfig held = smallManager(0.05);
    held.holdOff = 4;
    auto out_every = exp::runManaged(params, every, table);
    auto out_held = exp::runManaged(params, held, table);
    EXPECT_LT(out_held.decisions.size(), out_every.decisions.size());
}

TEST(EnergyManager, ChosenFrequenciesComeFromTheTable)
{
    auto params = wl::syntheticSmall(2, 200);
    auto table = power::VfTable::haswell();
    auto out = exp::runManaged(params, smallManager(0.10), table);
    for (const auto &d : out.decisions) {
        bool found = false;
        for (const auto &p : table.points())
            found = found || p.freq == d.chosen;
        EXPECT_TRUE(found) << d.chosen.toString();
    }
}

TEST(EnergyManagerDeathTest, ConfigValidation)
{
    os::SystemConfig sys_cfg = wl::defaultSystemConfig(Frequency::ghz(4.0));
    os::System sys(sys_cfg);
    pred::RunRecorder rec(sys);
    auto table = power::VfTable::haswell();

    ManagerConfig bad;
    bad.quantum = 0;
    EXPECT_EXIT(EnergyManager(sys, rec, table, bad),
                ::testing::ExitedWithCode(1), "quantum");
    ManagerConfig bad2;
    bad2.holdOff = 0;
    EXPECT_EXIT(EnergyManager(sys, rec, table, bad2),
                ::testing::ExitedWithCode(1), "hold");
    ManagerConfig bad3;
    bad3.tolerableSlowdown = -0.1;
    EXPECT_EXIT(EnergyManager(sys, rec, table, bad3),
                ::testing::ExitedWithCode(1), "slowdown");
}
