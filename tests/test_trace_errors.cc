/**
 * @file
 * Trace reader robustness: malformed input must always raise a
 * structured TraceError — never UB, never a silently wrong record.
 *
 * The core property is exhaustive single-byte fuzz: XOR any one byte
 * of a valid image and decoding must throw. This holds by
 * construction — the header digest covers every payload byte, so any
 * payload flip is a DigestMismatch, and every header byte is either
 * magic, version, a must-be-zero reserved field or the digest itself —
 * and the test pins that construction against regressions (e.g. a
 * future field the digest forgets to cover). Truncation at every
 * length and targeted structural corruptions are covered separately,
 * as is the one mutation that must NOT fail: an unknown section id
 * with a recomputed digest (forward compatibility).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "exp/experiment.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

using namespace dvfs;
using trace::TraceError;

namespace {

/** A small but fully-populated image (events kept). */
const std::vector<std::uint8_t> &
sampleImage()
{
    static std::vector<std::uint8_t> image = [] {
        auto params = wl::syntheticSmall(3, 60);
        params.lockProb = 0.3;
        exp::RunOptions opts;
        opts.keepEvents = true;
        auto out = exp::runFixed(params, Frequency::ghz(1.0), opts);
        return trace::encodeTrace(out.record, {"fuzz", 42});
    }();
    return image;
}

void
storeU64(std::vector<std::uint8_t> &image, std::size_t off,
         std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        image[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
loadU64(const std::vector<std::uint8_t> &image, std::size_t off)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(image[off + i]) << (8 * i);
    return v;
}

/** Recompute and store the header digest over payload bytes. */
void
resealDigest(std::vector<std::uint8_t> &image)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = trace::kTraceHeaderBytes; i < image.size(); ++i) {
        h ^= image[i];
        h *= 0x100000001b3ull;
    }
    storeU64(image, 16, h);
}

} // namespace

TEST(TraceErrors, EveryByteFlipIsDetected)
{
    const auto &good = sampleImage();
    // A decode of the pristine image must succeed (guards the fixture).
    ASSERT_NO_THROW(trace::decodeTrace(good));

    for (std::size_t off = 0; off < good.size(); ++off) {
        auto bad = good;
        bad[off] ^= 0x01;
        EXPECT_THROW(trace::decodeTrace(bad), TraceError)
            << "single-bit flip at offset " << off << " not detected";
    }
}

TEST(TraceErrors, EveryTruncationIsDetected)
{
    const auto &good = sampleImage();
    for (std::size_t len = 0; len < good.size(); ++len) {
        std::vector<std::uint8_t> bad(good.begin(), good.begin() + len);
        EXPECT_THROW(trace::decodeTrace(bad), TraceError)
            << "truncation to " << len << " bytes not detected";
    }
}

TEST(TraceErrors, StructuredKinds)
{
    const auto &good = sampleImage();

    {
        auto bad = good;
        storeU64(bad, 0, 0x1122334455667788ull);
        try {
            trace::decodeTrace(bad);
            FAIL() << "bad magic accepted";
        } catch (const TraceError &e) {
            EXPECT_EQ(e.kind(), TraceError::Kind::BadMagic);
        }
    }
    {
        auto bad = good;
        bad[8] = static_cast<std::uint8_t>(trace::kTraceVersion + 1);
        try {
            trace::decodeTrace(bad);
            FAIL() << "future version accepted";
        } catch (const TraceError &e) {
            EXPECT_EQ(e.kind(), TraceError::Kind::BadVersion);
        }
    }
    {
        auto bad = good;
        bad[12] = 0xff;  // reserved header field
        try {
            trace::decodeTrace(bad);
            FAIL() << "nonzero reserved field accepted";
        } catch (const TraceError &e) {
            EXPECT_EQ(e.kind(), TraceError::Kind::BadValue);
        }
    }
    {
        auto bad = good;
        storeU64(bad, 16, loadU64(bad, 16) ^ 1);
        try {
            trace::decodeTrace(bad);
            FAIL() << "wrong digest accepted";
        } catch (const TraceError &e) {
            EXPECT_EQ(e.kind(), TraceError::Kind::DigestMismatch);
        }
    }
    {
        // Payload flip with the digest resealed: the digest no longer
        // protects it, so a structural check must catch it instead.
        // Byte 28 is the first section's id (Meta) — make it an id the
        // reader skips, removing a required section.
        auto bad = good;
        bad[28] = 0x7f;
        resealDigest(bad);
        try {
            trace::decodeTrace(bad);
            FAIL() << "missing Meta section accepted";
        } catch (const TraceError &e) {
            EXPECT_EQ(e.kind(), TraceError::Kind::MissingSection);
        }
    }
    {
        std::vector<std::uint8_t> empty;
        try {
            trace::decodeTrace(empty);
            FAIL() << "empty input accepted";
        } catch (const TraceError &e) {
            EXPECT_EQ(e.kind(), TraceError::Kind::Truncated);
        }
    }
}

TEST(TraceErrors, ErrorsCarryOffsetAndKindName)
{
    auto bad = sampleImage();
    storeU64(bad, 16, loadU64(bad, 16) ^ 1);
    try {
        trace::decodeTrace(bad);
        FAIL();
    } catch (const TraceError &e) {
        EXPECT_STREQ(TraceError::kindName(e.kind()), "DigestMismatch");
        EXPECT_NE(std::string(e.what()).find("digest"),
                  std::string::npos);
        EXPECT_EQ(e.offset(), 16u);  // detected at the header digest
    }
    EXPECT_STREQ(TraceError::kindName(TraceError::Kind::Truncated),
                 "Truncated");
}

TEST(TraceErrors, UnknownSectionIsSkipped)
{
    // Forward compatibility: a future writer may append sections this
    // reader does not know. Append one (valid digest) and the image
    // must still decode to the same record.
    const auto &good = sampleImage();
    auto before = trace::decodeTrace(good);

    auto extended = good;
    // Bump the section count (u32 at the start of the payload).
    const std::size_t count_off = trace::kTraceHeaderBytes;
    extended[count_off] =
        static_cast<std::uint8_t>(extended[count_off] + 1);
    // Append: id=0x7f (unknown), reserved=0, length=4, body=4 bytes.
    const std::uint8_t tail[] = {0x7f, 0, 0, 0, 0, 0, 0, 0,
                                 4,    0, 0, 0, 0, 0, 0, 0,
                                 0xde, 0xad, 0xbe, 0xef};
    extended.insert(extended.end(), std::begin(tail), std::end(tail));
    resealDigest(extended);

    auto after = trace::decodeTrace(extended);
    EXPECT_EQ(after.record().totalTime, before.record().totalTime);
    EXPECT_EQ(after.record().epochs.size(), before.record().epochs.size());
    EXPECT_EQ(after.meta().workload, before.meta().workload);
}

TEST(TraceErrors, MissingFileIsIoError)
{
    try {
        trace::readTraceFile("/nonexistent/definitely_missing.dvfstrace");
        FAIL();
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), TraceError::Kind::Io);
    }
}
