/**
 * @file
 * Tests for the V/f table, power model, and energy meter.
 */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "power/power_model.hh"
#include "power/vf_table.hh"

using namespace dvfs;
using namespace dvfs::power;

TEST(VfTable, HaswellCoversTheDvfsRange)
{
    auto t = VfTable::haswell();
    EXPECT_EQ(t.lowest(), Frequency::ghz(1.0));
    EXPECT_EQ(t.highest(), Frequency::ghz(4.0));
    EXPECT_EQ(t.size(), 25u);  // 125 MHz steps inclusive
    for (std::size_t i = 1; i < t.points().size(); ++i) {
        EXPECT_EQ(t.points()[i].freq.toMHz() -
                      t.points()[i - 1].freq.toMHz(),
                  125u);
    }
}

TEST(VfTable, CoarseStepVariant)
{
    auto t = VfTable::haswell(500);
    EXPECT_EQ(t.size(), 7u);
    EXPECT_EQ(t.highest(), Frequency::ghz(4.0));
}

TEST(VfTable, VoltageIsMonotone)
{
    auto t = VfTable::haswell();
    double prev = 0.0;
    for (const auto &p : t.points()) {
        EXPECT_GE(p.volts, prev);
        prev = p.volts;
    }
    EXPECT_NEAR(t.voltageAt(Frequency::ghz(1.0)), 0.80, 1e-9);
    EXPECT_NEAR(t.voltageAt(Frequency::ghz(4.0)), 1.25, 1e-9);
}

TEST(VfTable, VoltageInterpolatesAndClamps)
{
    auto t = VfTable::haswell(1000);  // 1.0, 2.0, 3.0, 4.0 GHz
    double v15 = t.voltageAt(Frequency::ghz(1.5));
    EXPECT_GT(v15, t.voltageAt(Frequency::ghz(1.0)));
    EXPECT_LT(v15, t.voltageAt(Frequency::ghz(2.0)));
    EXPECT_DOUBLE_EQ(t.voltageAt(Frequency::mhz(500)),
                     t.voltageAt(Frequency::ghz(1.0)));
    EXPECT_DOUBLE_EQ(t.voltageAt(Frequency::ghz(5.0)),
                     t.voltageAt(Frequency::ghz(4.0)));
}

TEST(VfTable, CeilPoint)
{
    auto t = VfTable::haswell();
    EXPECT_EQ(t.ceilPoint(Frequency::mhz(1010)).freq, Frequency::mhz(1125));
    EXPECT_EQ(t.ceilPoint(Frequency::mhz(1125)).freq, Frequency::mhz(1125));
    EXPECT_EQ(t.ceilPoint(Frequency::ghz(9.0)).freq, Frequency::ghz(4.0));
}

TEST(VfTableDeathTest, RejectsUnorderedPoints)
{
    std::vector<OperatingPoint> pts = {{Frequency::ghz(2.0), 1.0},
                                       {Frequency::ghz(1.0), 0.8}};
    EXPECT_EXIT(VfTable t(std::move(pts)), ::testing::ExitedWithCode(1),
                "ascend");
}

TEST(PowerModel, DynamicPowerScalesWithV2F)
{
    PowerModel m;
    double p1 = m.coreDynamicWatts(4, Frequency::ghz(1.0), 0.8, 1.0);
    double p2 = m.coreDynamicWatts(4, Frequency::ghz(2.0), 0.8, 1.0);
    EXPECT_NEAR(p2 / p1, 2.0, 1e-9);
    double pv = m.coreDynamicWatts(4, Frequency::ghz(1.0), 1.6, 1.0);
    EXPECT_NEAR(pv / p1, 4.0, 1e-9);
}

TEST(PowerModel, IdleCoresStillBurnResidual)
{
    PowerModel m;
    double idle = m.coreDynamicWatts(4, Frequency::ghz(2.0), 1.0, 0.0);
    double busy = m.coreDynamicWatts(4, Frequency::ghz(2.0), 1.0, 1.0);
    EXPECT_GT(idle, 0.0);
    EXPECT_NEAR(idle / busy, m.config().idleActivity, 1e-9);
}

TEST(PowerModel, TotalIncludesAllComponents)
{
    PowerModel m;
    double total = m.totalWatts(4, Frequency::ghz(4.0), 1.25, 1.0);
    EXPECT_GT(total, m.coreDynamicWatts(4, Frequency::ghz(4.0), 1.25, 1.0));
    EXPECT_GT(total, m.uncoreWatts());
}

TEST(PowerModel, PlausibleAbsoluteRange)
{
    // A quad-core Haswell-class chip: tens of watts at full tilt.
    PowerModel m;
    double peak = m.totalWatts(4, Frequency::ghz(4.0), 1.25, 1.0);
    EXPECT_GT(peak, 25.0);
    EXPECT_LT(peak, 120.0);
}

TEST(EnergyMeter, RunAtLowerFrequencyUsesLessEnergyWhenMemoryBound)
{
    auto params = wl::syntheticSmall(2, 60);
    auto fast = exp::runFixed(params, Frequency::ghz(4.0));
    auto slow = exp::runFixed(params, Frequency::ghz(3.0));
    EXPECT_GT(fast.energy.total(), 0.0);
    EXPECT_GT(slow.energy.total(), 0.0);
    // Energy breakdown components are all non-negative and sum.
    for (const auto *e : {&fast.energy, &slow.energy}) {
        EXPECT_GE(e->coreDynamic, 0.0);
        EXPECT_GE(e->coreStatic, 0.0);
        EXPECT_GE(e->uncore, 0.0);
        EXPECT_GE(e->dram, 0.0);
        EXPECT_NEAR(e->total(),
                    e->coreDynamic + e->coreStatic + e->uncore + e->dram,
                    1e-12);
    }
}

TEST(EnergyMeter, MidRunTransitionSplitsAccounting)
{
    // Two segments at different frequencies integrate to more than
    // the same wall time at the lower one alone would.
    auto params = wl::syntheticSmall(2, 80);
    auto out = exp::runFixed(params, Frequency::ghz(1.0));
    EXPECT_GT(out.energy.coreDynamic, 0.0);
    // Static power accrues with wall time.
    double expect_static =
        power::PowerModel().coreStaticWatts(4, 0.80) *
        ticksToSeconds(out.totalTime);
    EXPECT_NEAR(out.energy.coreStatic, expect_static,
                expect_static * 0.01);
}
