/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace dvfs;
using dvfs::sim::EventQueue;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickEventsRunInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] { ++fired; });
        // Same-tick scheduling is allowed and runs afterwards.
        eq.schedule(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));  // double-cancel is a no-op
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, CancelOfFiredEventReturnsFalse)
{
    EventQueue eq;
    auto id = eq.schedule(1, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, PendingTracksLiveEvents)
{
    EventQueue eq;
    auto a = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunUntilStopsBeforeLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(20), 1u);  // the event AT the limit stays
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.run(), 2u);
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ExecutedCounterAccumulates)
{
    EventQueue eq;
    for (Tick t = 1; t <= 100; ++t)
        eq.schedule(t, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 100u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(EventQueue, StaleIdAfterSlotReuseCancelsNothing)
{
    EventQueue eq;
    auto a = eq.schedule(1, [] {});
    eq.run();
    // The slot freed by A is recycled for B with a bumped generation:
    // the stale id must neither cancel nor alias the new event.
    bool b_ran = false;
    auto b = eq.schedule(2, [&] { b_ran = true; });
    EXPECT_FALSE(eq.cancel(a));
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_TRUE(b_ran);
    EXPECT_FALSE(eq.cancel(b));
}

TEST(EventQueue, SameTickSelfRescheduleRunsAfterExistingEvents)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(0);
        // Scheduled mid-run at the current tick: runs after the
        // events already queued for tick 5, in insertion order.
        eq.schedule(5, [&] { order.push_back(2); });
        eq.schedule(5, [&] { order.push_back(3); });
    });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.now(), 5u);
}

/**
 * The entry pool recycles slots: a million schedule/cancel/run cycles
 * must not grow the backing storage past the handful of entries that
 * are ever simultaneously live.
 */
TEST(EventQueue, PoolReusedAcrossManyScheduleCancelCycles)
{
    EventQueue eq;
    // Prime: a few live events at once, so the pool has some depth.
    for (int i = 0; i < 4; ++i)
        eq.schedule(1, [] {});
    eq.run();
    const std::size_t primed = eq.entriesAllocated();

    std::uint64_t fired = 0;
    for (int i = 0; i < 1'000'000; ++i) {
        Tick when = eq.now() + static_cast<Tick>(i % 3 + 1);
        auto id = eq.schedule(when, [&fired] { ++fired; });
        if (i % 2 == 0) {
            EXPECT_TRUE(eq.cancel(id));
        } else {
            eq.run();
        }
    }
    eq.run();
    EXPECT_EQ(fired, 500'000u);
    EXPECT_EQ(eq.entriesAllocated(), primed);
}

/** Stress: interleaved schedule/cancel stays consistent. */
TEST(EventQueue, StressManyEventsDeterministic)
{
    EventQueue eq;
    std::uint64_t sum1 = 0;
    for (int i = 0; i < 10000; ++i) {
        Tick when = static_cast<Tick>((i * 7919) % 5000 + 1);
        eq.schedule(when, [&sum1, when] { sum1 += when; });
    }
    eq.run();

    EventQueue eq2;
    std::uint64_t sum2 = 0;
    for (int i = 0; i < 10000; ++i) {
        Tick when = static_cast<Tick>((i * 7919) % 5000 + 1);
        eq2.schedule(when, [&sum2, when] { sum2 += when; });
    }
    eq2.run();
    EXPECT_EQ(sum1, sum2);
}
