/**
 * @file
 * DVFSRPC1 robustness: malformed frames must always raise a
 * structured ProtoError — never UB, never a silently wrong message.
 *
 * Mirrors the trace reader's fuzz property (test_trace_errors.cc) for
 * every message type in the protocol: XOR any single byte of a valid
 * frame and decoding must throw (the header's four fields are all
 * load-bearing — magic, version, length cross-check, digest — and the
 * digest covers the entire payload including request id and type);
 * truncate to any length and decoding must throw. Forward
 * compatibility is the flip side: an unknown message type decodes to
 * a monostate body with the raw type preserved, and unknown trailing
 * sections are skipped, both without error.
 *
 * A canonical Predict request/response pair is pinned by golden
 * payload digest: any change to the wire encoding of an existing
 * field is a compatibility break and must fail here first.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/proto.hh"
#include "net/wire.hh"

using namespace dvfs;
using net::Frame;
using net::ProtoError;

namespace {

/** One valid frame per message type, request and response alike. */
std::vector<std::pair<std::string, Frame>>
sampleFrames()
{
    std::vector<std::pair<std::string, Frame>> frames;

    net::UploadTraceReq up;
    up.image = {0x10, 0x20, 0x30, 0x40, 0x55};
    frames.emplace_back("UploadTraceReq",
                        Frame::request(7, std::move(up)));

    net::UploadTraceResp upr;
    upr.traceDigest = 0x1122334455667788ULL;
    upr.alreadyCached = 1;
    upr.baseMHz = 1000;
    upr.totalTime = 123456789;
    upr.epochs = 12;
    upr.threads = 4;
    frames.emplace_back("UploadTraceResp", Frame::response(7, upr));

    net::PredictReq pq;
    pq.traceDigest = 0xdeadbeefcafef00dULL;
    pq.targetMHz = 4000;
    frames.emplace_back("PredictReq", Frame::request(8, pq));

    net::PredictResp pr;
    pr.baseTotalTime = 1000000;
    pr.cells = {{"M+CRIT", 250000}, {"DEP+BURST", 260000}};
    frames.emplace_back("PredictResp", Frame::response(8, pr));

    net::WhatIfGridReq wq;
    wq.traceDigest = 0xdeadbeefcafef00dULL;
    wq.targetsMHz = {1000, 2000, 4000};
    frames.emplace_back("WhatIfGridReq", Frame::request(9, wq));

    net::WhatIfGridResp wr;
    wr.predictors = {"M+CRIT", "DEP+BURST"};
    wr.targetsMHz = {1000, 2000};
    wr.predicted = {11, 12, 21, 22};
    frames.emplace_back("WhatIfGridResp", Frame::response(9, wr));

    net::OptimalVfReq oq;
    oq.traceDigest = 0xdeadbeefcafef00dULL;
    oq.slowdownPermille = 100;
    oq.stepMHz = 125;
    oq.predictor = "DEP+BURST";
    frames.emplace_back("OptimalVfReq", Frame::request(10, oq));

    net::OptimalVfResp orr;
    orr.chosenMHz = 2250;
    orr.microvolts = 950000;
    orr.predictedAtChosen = 420000;
    orr.predictedAtHighest = 400000;
    frames.emplace_back("OptimalVfResp", Frame::response(10, orr));

    frames.emplace_back("StatsReq",
                        Frame::request(11, net::StatsReq{}));

    net::StatsResp sr;
    sr.requests = 100;
    sr.responses = 95;
    sr.errors = 5;
    sr.tracesCached = 3;
    sr.cacheBytes = 1 << 20;
    sr.cacheHits = 90;
    sr.cacheMisses = 10;
    sr.cacheEvictions = 1;
    sr.shedOverload = 2;
    sr.batches = 40;
    sr.maxBatch = 8;
    frames.emplace_back("StatsResp", Frame::response(11, sr));

    net::ErrorResp er;
    er.code = static_cast<std::uint32_t>(net::ErrorCode::UnknownTrace);
    er.offset = 12;
    er.message = "no cached trace";
    frames.emplace_back("ErrorResp", Frame::response(12, er));

    return frames;
}

void
storeU64(std::vector<std::uint8_t> &image, std::size_t off,
         std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        image[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
loadU64(const std::vector<std::uint8_t> &image, std::size_t off)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(image[off + i]) << (8 * i);
    return v;
}

/** Recompute and store the header digest over payload bytes. */
void
resealDigest(std::vector<std::uint8_t> &image)
{
    storeU64(image, 16,
             net::fnv1aBytes(image.data() + net::kFrameHeaderBytes,
                             image.size() - net::kFrameHeaderBytes));
}

} // namespace

TEST(ProtoErrors, EveryByteFlipIsDetectedForEveryMessageType)
{
    for (const auto &[name, frame] : sampleFrames()) {
        const std::vector<std::uint8_t> good = net::encodeFrame(frame);
        ASSERT_NO_THROW(net::decodeFrame(good)) << name;

        for (std::size_t off = 0; off < good.size(); ++off) {
            auto bad = good;
            bad[off] ^= 0x01;
            EXPECT_THROW(net::decodeFrame(bad), ProtoError)
                << name << ": single-bit flip at offset " << off
                << " not detected";
        }
    }
}

TEST(ProtoErrors, EveryTruncationIsDetectedForEveryMessageType)
{
    for (const auto &[name, frame] : sampleFrames()) {
        const std::vector<std::uint8_t> good = net::encodeFrame(frame);
        for (std::size_t len = 0; len < good.size(); ++len) {
            EXPECT_THROW(net::decodeFrame(good.data(), len),
                         ProtoError)
                << name << ": truncation to " << len
                << " bytes not detected";
        }
    }
}

TEST(ProtoErrors, StructuredKinds)
{
    net::PredictReq pq;
    pq.traceDigest = 1;
    pq.targetMHz = 2000;
    const auto good = net::encodeFrame(Frame::request(1, pq));

    {
        auto bad = good;
        storeU64(bad, 0, 0x1122334455667788ULL);
        try {
            net::decodeFrame(bad);
            FAIL() << "bad magic accepted";
        } catch (const ProtoError &e) {
            EXPECT_EQ(e.kind(), ProtoError::Kind::BadMagic);
            EXPECT_STREQ(ProtoError::kindName(e.kind()), "BadMagic");
        }
    }
    {
        auto bad = good;
        bad[8] = static_cast<std::uint8_t>(net::kRpcVersion + 1);
        try {
            net::decodeFrame(bad);
            FAIL() << "future version accepted";
        } catch (const ProtoError &e) {
            EXPECT_EQ(e.kind(), ProtoError::Kind::BadVersion);
        }
    }
    {
        // Header length larger than the actual input: Truncated.
        auto bad = good;
        bad[12] = static_cast<std::uint8_t>(bad[12] + 1);
        try {
            net::decodeFrame(bad);
            FAIL() << "short input accepted";
        } catch (const ProtoError &e) {
            EXPECT_EQ(e.kind(), ProtoError::Kind::Truncated);
        }
    }
    {
        // Input longer than the header length: BadLength (a stream
        // peer would be out of sync).
        auto bad = good;
        bad.push_back(0);
        try {
            net::decodeFrame(bad);
            FAIL() << "trailing garbage accepted";
        } catch (const ProtoError &e) {
            EXPECT_EQ(e.kind(), ProtoError::Kind::BadLength);
        }
    }
    {
        auto bad = good;
        storeU64(bad, 16, loadU64(bad, 16) ^ 1);
        try {
            net::decodeFrame(bad);
            FAIL() << "wrong digest accepted";
        } catch (const ProtoError &e) {
            EXPECT_EQ(e.kind(), ProtoError::Kind::DigestMismatch);
        }
    }
    {
        // Oversized claim, checked before any allocation.
        auto bad = good;
        const std::uint32_t huge = net::kMaxPayloadBytes + 1;
        for (int i = 0; i < 4; ++i)
            bad[12 + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(huge >> (8 * i));
        try {
            net::peekPayloadLength(bad.data(), net::kFrameHeaderBytes);
            FAIL() << "oversized payload accepted";
        } catch (const ProtoError &e) {
            EXPECT_EQ(e.kind(), ProtoError::Kind::Oversized);
        }
    }
    {
        // Reserved word after the type (payload offset 12) must be
        // zero; reseal so the digest passes and the structural check
        // has to catch it.
        auto bad = good;
        bad[net::kFrameHeaderBytes + 12] = 0xff;
        resealDigest(bad);
        try {
            net::decodeFrame(bad);
            FAIL() << "nonzero reserved field accepted";
        } catch (const ProtoError &e) {
            EXPECT_EQ(e.kind(), ProtoError::Kind::BadValue);
        }
    }
}

TEST(ProtoErrors, UnknownMessageTypeDecodesToMonostate)
{
    // A newer peer's message: type 0x7000 with an arbitrary body. The
    // frame must decode (digest vouches for the bytes), preserving the
    // raw type so the server can answer Error{UnknownMessage}.
    net::Encoder payload;
    payload.u64(77);        // request id
    payload.u32(0x7000);    // unknown type, request direction
    payload.u32(0);         // reserved
    payload.u64(0xabcdef);  // body this version cannot parse
    payload.u32(9);

    net::Encoder file;
    file.u64(net::kRpcMagic);
    file.u32(net::kRpcVersion);
    file.u32(static_cast<std::uint32_t>(payload.bytes().size()));
    file.u64(net::fnv1aBytes(payload.bytes().data(),
                             payload.bytes().size()));
    file.raw(payload.bytes().data(), payload.bytes().size());

    Frame f = net::decodeFrame(file.bytes());
    EXPECT_EQ(f.requestId, 77u);
    EXPECT_FALSE(f.isResponse);
    EXPECT_EQ(f.rawType, 0x7000u);
    EXPECT_TRUE(std::holds_alternative<std::monostate>(f.body));
}

TEST(ProtoErrors, UnknownTrailingSectionsAreSkipped)
{
    // Forward compatibility: a v1.x writer may append trailing
    // sections after the known body fields. Raise the section count,
    // append a section, reseal — the frame must decode identically.
    net::PredictReq pq;
    pq.traceDigest = 42;
    pq.targetMHz = 3000;
    auto image = net::encodeFrame(Frame::request(5, pq));

    // The trailing-section count is the last u32 of the payload.
    const std::size_t count_off = image.size() - 4;
    image[count_off] = static_cast<std::uint8_t>(image[count_off] + 1);
    const std::uint8_t tail[] = {0x7f, 0, 0, 0,  // id (unknown)
                                 0,    0, 0, 0,  // reserved
                                 4,    0, 0, 0, 0, 0, 0, 0,  // length
                                 0xde, 0xad, 0xbe, 0xef};
    image.insert(image.end(), std::begin(tail), std::end(tail));
    image[12] = static_cast<std::uint8_t>(
        image[12] + sizeof(tail));  // payload length (fits in a byte)
    resealDigest(image);

    Frame f = net::decodeFrame(image);
    const auto *req = std::get_if<net::PredictReq>(&f.body);
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->traceDigest, 42u);
    EXPECT_EQ(req->targetMHz, 3000u);
}

TEST(ProtoErrors, RoundTripPreservesEveryField)
{
    for (const auto &[name, frame] : sampleFrames()) {
        const auto image = net::encodeFrame(frame);
        Frame back = net::decodeFrame(image);
        EXPECT_EQ(back.requestId, frame.requestId) << name;
        EXPECT_EQ(back.isResponse, frame.isResponse) << name;
        EXPECT_EQ(back.rawType, frame.rawType) << name;
        // Bit-exact round-trip: re-encoding must reproduce the image.
        EXPECT_EQ(net::encodeFrame(back), image) << name;
    }
}

TEST(ProtoErrors, GoldenPredictWireDigestsArePinned)
{
    // The canonical Predict exchange, pinned by payload digest. If
    // this test fails, the wire encoding of an existing field changed:
    // that is a protocol compatibility break and needs a version bump
    // (DESIGN.md section 12), not a new golden value.
    net::PredictReq pq;
    pq.traceDigest = 0x0123456789abcdefULL;
    pq.targetMHz = 4000;
    const auto req_image = net::encodeFrame(Frame::request(1, pq));

    net::PredictResp pr;
    pr.baseTotalTime = 4000000000ULL;
    pr.cells = {{"M+CRIT", 1100000000ULL},
                {"M+CRIT+BURST", 1050000000ULL},
                {"COOP(CRIT)", 1080000000ULL},
                {"COOP(CRIT+BURST)", 1040000000ULL},
                {"DEP", 1070000000ULL},
                {"DEP+BURST", 1030000000ULL}};
    const auto resp_image = net::encodeFrame(Frame::response(1, pr));

    const std::uint64_t req_digest = loadU64(req_image, 16);
    const std::uint64_t resp_digest = loadU64(resp_image, 16);

    EXPECT_EQ(req_digest, 0x0d35c1512027445fULL)
        << "canonical PredictReq wire digest changed";
    EXPECT_EQ(resp_digest, 0x3d83ced69a331ae2ULL)
        << "canonical PredictResp wire digest changed";
}
