/**
 * @file
 * PredictorRegistry: the canonical name -> factory map.
 *
 * The registry's names appear in tables, JSONL records and CLI flags,
 * so their spelling and ordering are contract: figure3Set must match
 * the paper's column order, the estimator ladder must match the
 * ablation's column order, and an unknown family must be a fatal user
 * error rather than a nullptr.
 */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "pred/registry.hh"

using namespace dvfs;
using pred::BaseEstimator;
using pred::ModelSpec;
using pred::PredictorRegistry;

TEST(PredictorRegistry, FamiliesAreRegisteredInOrder)
{
    const auto &reg = PredictorRegistry::instance();
    EXPECT_EQ(reg.families(),
              (std::vector<std::string>{"M+CRIT", "COOP", "DEP",
                                        "DEP/per-epoch"}));
    for (const auto &f : reg.families())
        EXPECT_TRUE(reg.has(f)) << f;
    EXPECT_FALSE(reg.has("DEP+BURST"));  // a variant, not a family
    EXPECT_FALSE(reg.has(""));
}

TEST(PredictorRegistry, MakeConstructsTheRequestedVariant)
{
    const auto &reg = PredictorRegistry::instance();
    EXPECT_EQ(reg.make("M+CRIT", {BaseEstimator::Crit, false})->name(),
              "M+CRIT");
    EXPECT_EQ(reg.make("COOP", {BaseEstimator::Crit, true})->name(),
              "COOP(CRIT+BURST)");
    EXPECT_EQ(reg.make("DEP", {BaseEstimator::Crit, true})->name(),
              "DEP+BURST");
    EXPECT_EQ(
        reg.make("DEP/per-epoch", {BaseEstimator::Crit, true})->name(),
        "DEP+BURST(per-epoch CTP)");
}

TEST(PredictorRegistry, MakeMatchesDirectConstruction)
{
    // Registry-built and hand-built predictors must be the same code:
    // identical names and identical predictions on a real record.
    auto params = wl::syntheticSmall(3, 60);
    auto out = exp::runFixed(params, Frequency::ghz(1.0));
    const Frequency target = Frequency::ghz(4.0);

    const auto &reg = PredictorRegistry::instance();
    const ModelSpec spec{BaseEstimator::Crit, true};

    pred::MCritPredictor mcrit(spec);
    pred::CoopPredictor coop(spec);
    pred::DepPredictor dep(spec, true);

    EXPECT_EQ(reg.make("M+CRIT", spec)->predict(out.record, target),
              mcrit.predict(out.record, target));
    EXPECT_EQ(reg.make("COOP", spec)->predict(out.record, target),
              coop.predict(out.record, target));
    EXPECT_EQ(reg.make("DEP", spec)->predict(out.record, target),
              dep.predict(out.record, target));
}

TEST(PredictorRegistry, Figure3SetMatchesPaperOrder)
{
    auto zoo = PredictorRegistry::instance().figure3Set();
    std::vector<std::string> names;
    for (const auto &p : zoo)
        names.push_back(p->name());
    EXPECT_EQ(names, (std::vector<std::string>{
                         "M+CRIT", "M+CRIT+BURST", "COOP(CRIT)",
                         "COOP(CRIT+BURST)", "DEP", "DEP+BURST"}));

    // A second materialisation returns the same zoo (fresh instances).
    auto again = pred::PredictorRegistry::instance().figure3Set();
    ASSERT_EQ(again.size(), zoo.size());
    for (std::size_t i = 0; i < zoo.size(); ++i) {
        EXPECT_EQ(again[i]->name(), zoo[i]->name());
        EXPECT_NE(again[i].get(), zoo[i].get());
    }
}

TEST(PredictorRegistry, EstimatorLadderMatchesAblationOrder)
{
    auto ladder = PredictorRegistry::instance().estimatorLadder();
    ASSERT_EQ(ladder.size(), 8u);
    // STALL, STALL+BURST, LL, LL+BURST, CRIT, CRIT+BURST, ORACLE,
    // ORACLE+BURST — the ablation's column order, as DEP variants.
    EXPECT_EQ(ladder[0]->name(), "DEP[STALL]");
    EXPECT_EQ(ladder[1]->name(), "DEP+BURST[STALL]");
    EXPECT_EQ(ladder[4]->name(), "DEP");
    EXPECT_EQ(ladder[5]->name(), "DEP+BURST");
    EXPECT_EQ(ladder[6]->name(), "DEP[ORACLE]");
    EXPECT_EQ(ladder[7]->name(), "DEP+BURST[ORACLE]");
}

TEST(PredictorRegistryDeathTest, UnknownFamilyIsFatal)
{
    EXPECT_DEATH(
        {
            PredictorRegistry::instance().make(
                "NONSUCH", ModelSpec{BaseEstimator::Crit, false});
        },
        "unknown predictor family");
}
