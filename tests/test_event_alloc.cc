/**
 * @file
 * Heap-allocation accounting for the event kernel's steady state.
 *
 * Replaces the global operator new/delete with counting versions and
 * proves the tentpole property of the allocation-free event kernel:
 * once the entry pool is primed, scheduling and running events — with
 * captures up to the inline-callback capacity — performs zero heap
 * allocations.
 *
 * This file defines global operators, so it must live in its own test
 * binary (see CMakeLists.txt): linked into the main suite it would
 * count every other test's allocations too and make the suite
 * order-dependent.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/event_queue.hh"
#include "uarch/perf_counters.hh"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

} // namespace

// Counting global allocator. Counts must be maintained in every
// overload the standard library may pick (aligned and plain): missing
// one would let an allocation escape the audit.
void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     (size + static_cast<std::size_t>(align) - 1) &
                                         ~(static_cast<std::size_t>(align) - 1)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    if (!p)
        return;
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    ::operator delete(p);
}

using namespace dvfs;
using dvfs::sim::EventQueue;

/**
 * Zero heap allocations per steady-state event: prime the pool, then
 * run 10k events — some with large captures near the inline-callback
 * capacity — and require the global allocation counter not to move.
 */
TEST(EventAlloc, SteadyStateScheduleRunAllocatesNothing)
{
    EventQueue eq;

    // Prime: drive the pool to the depth the measured loop needs (a
    // few simultaneously live events), letting the entry vector and
    // freelist do all their growing now.
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 8; ++i)
            eq.schedule(eq.now() + static_cast<Tick>(i + 1), [] {});
        eq.run();
    }

    const std::uint64_t allocs_before = g_allocs.load();
    const std::size_t entries_before = eq.entriesAllocated();

    // Steady state: 10k events, mixing trivial captures with the
    // largest capture the kernel is sized for (PerfCounters plus
    // several pointers, the doMutexUnlock shape).
    std::uint64_t sink = 0;
    uarch::PerfCounters pc;
    pc.instructions = 7;
    for (int i = 0; i < 10'000; ++i) {
        Tick when = eq.now() + static_cast<Tick>(i % 5 + 1);
        if (i % 2 == 0) {
            eq.schedule(when, [&sink] { ++sink; });
        } else {
            void *a = &eq, *b = &sink, *c = &pc;
            eq.schedule(when, [&sink, a, b, c, pc] {
                sink += pc.instructions +
                        static_cast<std::uint64_t>(a != nullptr) +
                        static_cast<std::uint64_t>(b != nullptr) +
                        static_cast<std::uint64_t>(c != nullptr);
            });
        }
        if (i % 4 == 3)
            eq.run();
    }
    eq.run();

    EXPECT_EQ(g_allocs.load(), allocs_before)
        << "the event kernel allocated on the steady-state path";
    EXPECT_EQ(eq.entriesAllocated(), entries_before);
    EXPECT_EQ(sink, 5'000u + 5'000u * 10u);
}

/** Sanity: the counting allocator is actually installed. */
TEST(EventAlloc, CountingAllocatorObservesAllocations)
{
    const std::uint64_t before = g_allocs.load();
    auto *p = new std::uint64_t[32];
    EXPECT_GT(g_allocs.load(), before);
    delete[] p;
}
