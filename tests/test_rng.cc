/**
 * @file
 * Unit tests for the deterministic workload RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.hh"

using dvfs::sim::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextBoundedStaysInBounds)
{
    Rng r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.nextBounded(bound), bound);
    }
    EXPECT_EQ(r.nextBounded(0), 0u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.nextRange(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // all four values appear
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = r.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliRate)
{
    Rng r(13);
    const int n = 20000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
    EXPECT_FALSE(r.nextBool(0.0));
    EXPECT_TRUE(r.nextBool(1.0));
}

TEST(Rng, ExponentialMean)
{
    Rng r(17);
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = r.nextExp(42.0);
        ASSERT_GT(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 42.0, 2.0);
}

TEST(Rng, SplitProducesIndependentStreams)
{
    Rng root(21);
    Rng a = root.split(1);
    Rng b = root.split(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng r1(33);
    Rng r2(33);
    Rng a = r1.split(5);
    Rng b = r2.split(5);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
}

/** Property: bounded draws are roughly uniform across octants. */
class RngUniformity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngUniformity, OctantsBalanced)
{
    Rng r(GetParam());
    const int n = 16000;
    int counts[8] = {0};
    for (int i = 0; i < n; ++i)
        counts[r.nextBounded(8)]++;
    for (int c : counts)
        EXPECT_NEAR(c, n / 8, n / 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformity,
                         ::testing::Values(1, 2, 42, 1234, 99999));
