/**
 * @file
 * Tests for the PerfCounters value type (the predictor interface).
 */

#include <gtest/gtest.h>

#include "uarch/perf_counters.hh"

using dvfs::uarch::PerfCounters;

namespace {

PerfCounters
filled(int k)
{
    PerfCounters c;
    c.busyTime = 100u * k;
    c.instructions = 10u * k;
    c.critNonscaling = 7u * k;
    c.leadingNonscaling = 6u * k;
    c.stallNonscaling = 5u * k;
    c.sqFullTime = 4u * k;
    c.trueMemTime = 3u * k;
    c.computeTime = 2u * k;
    c.l1Hits = 11u * k;
    c.l2Hits = 12u * k;
    c.l3Hits = 13u * k;
    c.dramLoads = 14u * k;
    c.missClusters = 15u * k;
    c.storeBursts = 16u * k;
    c.storeLines = 17u * k;
    return c;
}

} // namespace

TEST(PerfCounters, DefaultIsZero)
{
    PerfCounters c;
    EXPECT_EQ(c.busyTime, 0u);
    EXPECT_EQ(c.instructions, 0u);
    EXPECT_EQ(c.critNonscaling, 0u);
    EXPECT_EQ(c.sqFullTime, 0u);
    EXPECT_EQ(c.storeLines, 0u);
}

TEST(PerfCounters, DifferenceIsFieldWise)
{
    PerfCounters d = filled(5) - filled(2);
    PerfCounters e = filled(3);
    EXPECT_EQ(d.busyTime, e.busyTime);
    EXPECT_EQ(d.instructions, e.instructions);
    EXPECT_EQ(d.critNonscaling, e.critNonscaling);
    EXPECT_EQ(d.leadingNonscaling, e.leadingNonscaling);
    EXPECT_EQ(d.stallNonscaling, e.stallNonscaling);
    EXPECT_EQ(d.sqFullTime, e.sqFullTime);
    EXPECT_EQ(d.trueMemTime, e.trueMemTime);
    EXPECT_EQ(d.computeTime, e.computeTime);
    EXPECT_EQ(d.l1Hits, e.l1Hits);
    EXPECT_EQ(d.l2Hits, e.l2Hits);
    EXPECT_EQ(d.l3Hits, e.l3Hits);
    EXPECT_EQ(d.dramLoads, e.dramLoads);
    EXPECT_EQ(d.missClusters, e.missClusters);
    EXPECT_EQ(d.storeBursts, e.storeBursts);
    EXPECT_EQ(d.storeLines, e.storeLines);
}

TEST(PerfCounters, AccumulateIsInverseOfDifference)
{
    PerfCounters a = filled(4);
    PerfCounters b = filled(9);
    PerfCounters c = a;
    c += b - a;
    EXPECT_EQ(c.busyTime, b.busyTime);
    EXPECT_EQ(c.instructions, b.instructions);
    EXPECT_EQ(c.sqFullTime, b.sqFullTime);
    EXPECT_EQ(c.storeLines, b.storeLines);
}

TEST(PerfCounters, SnapshotDeltaIdiom)
{
    // The recorder's pattern: totals vs earlier snapshot.
    PerfCounters live = filled(2);
    PerfCounters snap = live;
    live += filled(1);
    PerfCounters delta = live - snap;
    EXPECT_EQ(delta.busyTime, filled(1).busyTime);
}
