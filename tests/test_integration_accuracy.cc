/**
 * @file
 * End-to-end accuracy invariants: the paper's qualitative claims,
 * verified on small workloads so they run in test time.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "exp/experiment.hh"
#include "pred/predictors.hh"

using namespace dvfs;
using namespace dvfs::pred;

namespace {

/** A compute-only workload: every predictor's base case. */
wl::WorkloadParams
computeOnly()
{
    auto p = wl::syntheticSmall(2, 80);
    p.clustersPerItem = 0;
    p.allocBytesPerItem = 0;
    p.lockProb = 0.0;
    p.l2LoadsPerItem = 0;
    p.l3LoadsPerItem = 0;
    return p;
}

double
err(const Predictor &p, const RunRecord &rec, Tick actual, Frequency f)
{
    return std::fabs(Predictor::relativeError(p.predict(rec, f), actual));
}

} // namespace

TEST(Accuracy, ComputeOnlyWorkloadPredictsTightly)
{
    auto params = computeOnly();
    auto base = exp::runFixed(params, Frequency::ghz(1.0));
    auto fast = exp::runFixed(params, Frequency::ghz(4.0));

    DepPredictor dep({BaseEstimator::Crit, true}, true);
    // Pure compute scales exactly; residual error only from the fixed
    // scheduler/sync costs around the loop.
    EXPECT_LT(err(dep, base.record, fast.totalTime, Frequency::ghz(4.0)),
              0.05);
}

TEST(Accuracy, DepBurstBeatsMCritOnMemoryIntensiveWork)
{
    auto params = wl::syntheticSmall(4, 150);
    params.allocBytesPerItem = 4096;
    params.allocChunkBytes = 4096;

    auto base = exp::runFixed(params, Frequency::ghz(1.0));
    auto fast = exp::runFixed(params, Frequency::ghz(4.0));

    MCritPredictor mcrit({BaseEstimator::Crit, false});
    DepPredictor depburst({BaseEstimator::Crit, true}, true);
    EXPECT_LT(
        err(depburst, base.record, fast.totalTime, Frequency::ghz(4.0)),
        err(mcrit, base.record, fast.totalTime, Frequency::ghz(4.0)));
}

TEST(Accuracy, BurstHelpsWhenAllocationIsHeavy)
{
    auto params = wl::syntheticSmall(4, 150);
    params.allocBytesPerItem = 6144;
    params.allocChunkBytes = 6144;

    auto base = exp::runFixed(params, Frequency::ghz(4.0));
    auto slow = exp::runFixed(params, Frequency::ghz(1.0));

    DepPredictor plain({BaseEstimator::Crit, false}, true);
    DepPredictor burst({BaseEstimator::Crit, true}, true);
    EXPECT_LT(
        err(burst, base.record, slow.totalTime, Frequency::ghz(1.0)),
        err(plain, base.record, slow.totalTime, Frequency::ghz(1.0)));
}

TEST(Accuracy, CritBeatsStallTimeOnChainedMisses)
{
    auto params = wl::syntheticSmall(2, 150);
    params.chainDepth = 5;
    params.chains = 1;
    params.pHot = 0.0;
    params.pWarm = 0.0;  // all chains go to DRAM
    // Little overlap: the clusters genuinely stall the pipeline (with
    // heavy overlap CRIT instead over-counts hidden misses and the
    // comparison flips — see the model-evaluation discussion).
    params.clusterOverlapInstr = 400;

    auto base = exp::runFixed(params, Frequency::ghz(1.0));
    auto fast = exp::runFixed(params, Frequency::ghz(4.0));

    DepPredictor stall({BaseEstimator::StallTime, false}, true);
    DepPredictor crit({BaseEstimator::Crit, false}, true);
    double e_stall =
        err(stall, base.record, fast.totalTime, Frequency::ghz(4.0));
    double e_crit =
        err(crit, base.record, fast.totalTime, Frequency::ghz(4.0));
    EXPECT_LT(e_crit, e_stall);
}

TEST(Accuracy, PredictionAtBaseFrequencyIsNearExact)
{
    auto params = wl::syntheticSmall(2, 100);
    auto base = exp::runFixed(params, Frequency::ghz(2.0));
    DepPredictor dep({BaseEstimator::Crit, true}, true);
    Tick est = dep.predict(base.record, Frequency::ghz(2.0));
    EXPECT_NEAR(static_cast<double>(est),
                static_cast<double>(base.totalTime),
                0.02 * static_cast<double>(base.totalTime));
}

/** Property sweep: DEP+BURST stays within a sane error envelope when
 * predicting each paper frequency pair on a small mixed workload. */
class AccuracySweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(AccuracySweep, DepBurstWithinEnvelope)
{
    auto [base_mhz, target_mhz] = GetParam();
    auto params = wl::syntheticSmall(4, 120);
    auto base = exp::runFixed(params, Frequency::mhz(base_mhz));
    auto target = exp::runFixed(params, Frequency::mhz(target_mhz));
    DepPredictor dep({BaseEstimator::Crit, true}, true);
    EXPECT_LT(err(dep, base.record, target.totalTime,
                  Frequency::mhz(target_mhz)),
              0.20)
        << base_mhz << " -> " << target_mhz;
}

INSTANTIATE_TEST_SUITE_P(
    FrequencyPairs, AccuracySweep,
    ::testing::Values(std::make_pair(1000, 2000),
                      std::make_pair(1000, 3000),
                      std::make_pair(1000, 4000),
                      std::make_pair(4000, 3000),
                      std::make_pair(4000, 2000),
                      std::make_pair(4000, 1000),
                      std::make_pair(2000, 3000),
                      std::make_pair(3000, 1500)));
