/**
 * @file
 * Integration tests for the managed runtime: allocation (zeroing),
 * safepoints, and the stop-the-world parallel collector.
 */

#include <gtest/gtest.h>

#include "rt/runtime.hh"
#include "test_util.hh"

using namespace dvfs;
using namespace dvfs::os;
using namespace dvfs::test;

namespace {

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.cores = 4;
    cfg.coreFreq = Frequency::ghz(1.0);
    return cfg;
}

rt::RuntimeConfig
smallRuntime()
{
    rt::RuntimeConfig rc;
    rc.heap.nurseryBytes = 64 * 1024;
    rc.gcThreads = 2;
    rc.survivalRate = 0.25;
    return rc;
}

/** Verifies the stop-the-world property while the run executes. */
class StwChecker : public SyncListener
{
  public:
    explicit StwChecker(rt::Runtime &rt) : _rt(rt) {}

    void
    onSyncEvent(const SyncEvent &ev, const System &sys) override
    {
        if (ev.kind == SyncEventKind::GcBegin)
            _active = true;
        if (ev.kind == SyncEventKind::GcEnd)
            _active = false;
        if (_active && ev.kind == SyncEventKind::SchedIn) {
            // Only service threads may be scheduled during a
            // collection.
            if (!sys.thread(ev.tid).service)
                violations += 1;
        }
    }

    int violations = 0;

  private:
    rt::Runtime &_rt;
    bool _active = false;
};

} // namespace

TEST(Runtime, AllocationProducesZeroingStores)
{
    System sys(smallConfig());
    rt::Runtime rt(sys, smallRuntime());
    rt.attach();
    ThreadId main = addScript(sys, "main",
                              {Action::makeAlloc(4096),
                               Action::makeCompute(1000)});
    sys.setMainThread(main);
    EXPECT_TRUE(sys.run().finished);
    // 4096 bytes = 64 zeroed lines charged to the allocating thread.
    EXPECT_EQ(sys.thread(main).counters.storeLines, 64u);
    EXPECT_EQ(rt.heap().totalAllocated(), 4096u);
    EXPECT_EQ(rt.collections(), 0u);
}

TEST(Runtime, LargeAllocationSplitsIntoChunks)
{
    System sys(smallConfig());
    auto rc = smallRuntime();
    rc.maxZeroLinesPerBurst = 16;
    rt::Runtime rt(sys, rc);
    rt.attach();
    ThreadId main = addScript(sys, "main", {Action::makeAlloc(8192)});
    sys.setMainThread(main);
    sys.run();
    const auto &pc = sys.thread(main).counters;
    EXPECT_EQ(pc.storeLines, 128u);
    EXPECT_EQ(pc.storeBursts, 8u);  // 128 lines / 16 per chunk
}

TEST(Runtime, NurseryExhaustionTriggersCollection)
{
    System sys(smallConfig());
    rt::Runtime rt(sys, smallRuntime());
    rt.attach();
    // Allocate 3x the nursery: expect >= 2 collections.
    std::vector<Action> script(48, Action::makeAlloc(4096));
    ThreadId main = addScript(sys, "main", script);
    sys.setMainThread(main);
    EXPECT_TRUE(sys.run().finished);
    EXPECT_GE(rt.collections(), 2u);
    EXPECT_GT(rt.gcTime(), 0u);
    EXPECT_GT(rt.heap().totalCopied(), 0u);
}

TEST(Runtime, CollectionsStopTheWorld)
{
    System sys(smallConfig());
    rt::Runtime rt(sys, smallRuntime());
    rt.attach();
    StwChecker checker(rt);
    sys.addListener(&checker);

    std::vector<Action> worker_script;
    for (int i = 0; i < 24; ++i) {
        worker_script.push_back(Action::makeAlloc(2048));
        worker_script.push_back(Action::makeCompute(2000));
    }
    ThreadId a = addScript(sys, "a", worker_script);
    ThreadId b = addScript(sys, "b", worker_script);
    ThreadId main = addScript(sys, "main",
                              {Action::makeJoin(a), Action::makeJoin(b)});
    sys.setMainThread(main);
    EXPECT_TRUE(sys.run().finished);
    EXPECT_GE(rt.collections(), 1u);
    EXPECT_EQ(checker.violations, 0);
}

TEST(Runtime, GcMarksArePairedAndOrdered)
{
    System sys(smallConfig());
    rt::Runtime rt(sys, smallRuntime());
    rt.attach();
    TraceCollector trace;
    sys.addListener(&trace);

    std::vector<Action> script(40, Action::makeAlloc(4096));
    ThreadId main = addScript(sys, "main", script);
    sys.setMainThread(main);
    sys.run();

    int depth = 0;
    for (const auto &ev : trace.events) {
        if (ev.kind == SyncEventKind::GcBegin) {
            EXPECT_EQ(depth, 0);
            ++depth;
        } else if (ev.kind == SyncEventKind::GcEnd) {
            EXPECT_EQ(depth, 1);
            --depth;
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(trace.count(SyncEventKind::GcBegin), rt.collections());
}

TEST(Runtime, BlockedThreadsDoNotPreventCollection)
{
    // One thread waits on a mutex held across a GC; the collection
    // must still happen and everyone must finish.
    System sys(smallConfig());
    rt::Runtime rt(sys, smallRuntime());
    rt.attach();
    SyncId m = sys.createMutex();

    std::vector<Action> holder = {
        Action::makeMutexLock(m),
    };
    for (int i = 0; i < 40; ++i)
        holder.push_back(Action::makeAlloc(2048));  // triggers GC in CS
    holder.push_back(Action::makeMutexUnlock(m));

    std::vector<Action> waiter = {
        Action::makeCompute(50'000),  // lose the lock race
        Action::makeMutexLock(m),
        Action::makeCompute(1000),
        Action::makeMutexUnlock(m),
    };
    ThreadId h = addScript(sys, "holder", holder);
    ThreadId w = addScript(sys, "waiter", waiter);
    ThreadId main = addScript(sys, "main",
                              {Action::makeJoin(h), Action::makeJoin(w)});
    sys.setMainThread(main);
    EXPECT_TRUE(sys.run().finished);
    EXPECT_GE(rt.collections(), 1u);
}

TEST(Runtime, SurvivalRateControlsCopyVolume)
{
    auto run_with = [](double survival) {
        System sys(smallConfig());
        auto rc = smallRuntime();
        rc.survivalRate = survival;
        rt::Runtime rt(sys, rc);
        rt.attach();
        std::vector<Action> script(48, Action::makeAlloc(4096));
        ThreadId main = addScript(sys, "main", script);
        sys.setMainThread(main);
        sys.run();
        return rt.heap().totalCopied();
    };
    EXPECT_GT(run_with(0.5), 2 * run_with(0.1));
}

TEST(Runtime, GcWorkersUseFutexSynchronization)
{
    // DEP's key requirement: GC-internal coordination is visible in
    // the futex trace.
    System sys(smallConfig());
    rt::Runtime rt(sys, smallRuntime());
    rt.attach();
    TraceCollector trace;
    sys.addListener(&trace);
    std::vector<Action> script(40, Action::makeAlloc(4096));
    ThreadId main = addScript(sys, "main", script);
    sys.setMainThread(main);
    sys.run();

    std::size_t service_waits = 0;
    for (const auto &ev : trace.events) {
        if (ev.kind == SyncEventKind::FutexWait &&
            ev.tid != kNoThread && sys.thread(ev.tid).service) {
            ++service_waits;
        }
    }
    // Parked workers + termination barrier per collection.
    EXPECT_GE(service_waits, 2u * rt.collections());
}

TEST(RuntimeDeathTest, ConfigValidation)
{
    System sys(smallConfig());
    auto rc = smallRuntime();
    rc.gcThreads = 0;
    EXPECT_EXIT(rt::Runtime(sys, rc), ::testing::ExitedWithCode(1),
                "GC thread");
    auto rc2 = smallRuntime();
    rc2.survivalRate = 1.5;
    EXPECT_EXIT(rt::Runtime(sys, rc2), ::testing::ExitedWithCode(1),
                "survival");
}
