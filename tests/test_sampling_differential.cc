/**
 * @file
 * Exact-vs-sampled differential contracts (DESIGN.md section 11).
 *
 * Sampled mode is admitted into the tree only under measured, gated
 * properties:
 *  - sampled sweeps are deterministic and worker-count invariant, with
 *    their own pinned fig3-grid fingerprint (distinct from the exact
 *    golden one, which test_sweep_golden pins),
 *  - compareModes' error bounds are themselves deterministic, so CI
 *    can gate hard on them,
 *  - gapWindow == 0 collapses the differential to zero by
 *    construction,
 *  - collections that begin and end inside fast-forwarded gaps leave
 *    the predictor observation surface well-formed: same collection
 *    count as the exact run, paired GC marks, monotone epochs.
 */

#include <gtest/gtest.h>

#include "exp/sweep/differential.hh"
#include "exp/sweep/sweep.hh"
#include "wl/suite.hh"

using namespace dvfs;

namespace {

/** Windows small enough that tiny synthetic runs still alternate. */
sim::SamplingConfig
tinyWindows()
{
    sim::SamplingConfig cfg;
    cfg.startupDetail = 10 * kTicksPerUs;
    cfg.detailWindow = 5 * kTicksPerUs;
    cfg.gapWindow = 45 * kTicksPerUs;
    return cfg;
}

/** A cheap synthetic grid: 2 workloads x 3 frequencies x 2 seeds. */
exp::sweep::SweepSpec
smallGrid()
{
    exp::sweep::SweepSpec spec;
    spec.workloads = {wl::syntheticSmall(2, 120), wl::syntheticSmall(4, 80)};
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(2.0),
                        Frequency::ghz(4.0)};
    spec.seeds = exp::sweep::SweepSpec::replicateSeeds(42, 2);
    return spec;
}

/** The fig3 ground-truth grid sweep_bench measures (4 benchmarks). */
exp::sweep::SweepSpec
fig3Grid()
{
    exp::sweep::SweepSpec spec;
    for (const auto &params : wl::dacapoSuite()) {
        if (spec.workloads.size() >= 4)
            break;
        spec.workloads.push_back(params);
    }
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(2.0),
                        Frequency::ghz(3.0), Frequency::ghz(4.0)};
    spec.seeds = exp::sweep::SweepSpec::replicateSeeds(42, 1);
    return spec;
}

std::uint64_t
runDigest(const exp::sweep::SweepSpec &spec, unsigned workers)
{
    exp::sweep::SweepRunner::Options ro;
    ro.workers = workers;
    auto res = exp::sweep::SweepRunner(spec, ro).run();
    return exp::sweep::gridDigest(res);
}

} // namespace

TEST(SampledSweepDeterminism, WorkerCountInvariantFingerprint)
{
    exp::sweep::SweepSpec spec = smallGrid();
    spec.runOptions.mode = exp::SimMode::Sampled;
    spec.runOptions.sampling = tinyWindows();

    const std::uint64_t serial = runDigest(spec, 1);
    EXPECT_EQ(runDigest(spec, 2), serial);
    EXPECT_EQ(runDigest(spec, 8), serial);
    // Repeat stability, not just worker invariance.
    EXPECT_EQ(runDigest(spec, 1), serial);
}

TEST(SampledSweepDeterminism, SampledCellsActuallyFastForward)
{
    exp::sweep::SweepSpec spec = smallGrid();
    spec.runOptions.mode = exp::SimMode::Sampled;
    spec.runOptions.sampling = tinyWindows();

    exp::sweep::SweepRunner::Options ro;
    ro.workers = 2;
    auto res = exp::sweep::SweepRunner(spec, ro).run();
    std::uint64_t ff_actions = 0;
    for (const auto &cell : res.cells) {
        EXPECT_EQ(cell.mode, exp::SimMode::Sampled);
        ff_actions += cell.sampling.ffActions;
    }
    EXPECT_GT(ff_actions, 0u);
}

/**
 * The sampled fig3-grid fingerprint, pinned. The exact golden digest
 * (0xb806f47ff81388e0, test_sweep_golden) proves the oracle never
 * moved; this one trips on any drift in the fast path — model
 * emission, warm-overlay behaviour, GC fast-forward batching, window
 * placement — at every worker count the acceptance gate names.
 */
TEST(SampledSweepGolden, Fig3GridFingerprintPinnedAcrossWorkers)
{
    constexpr std::uint64_t kSampledGolden = 0x681d8e2cbc485463ULL;
    exp::sweep::SweepSpec spec = fig3Grid();
    spec.runOptions.mode = exp::SimMode::Sampled;
    for (unsigned workers : {1u, 2u, 8u})
        EXPECT_EQ(runDigest(spec, workers), kSampledGolden)
            << "workers=" << workers;
}

TEST(SampledDifferential, ErrorBoundsOnSmallGridAreDeterministic)
{
    exp::sweep::SweepSpec spec = smallGrid();
    auto cmp = exp::sweep::compareModes(spec, tinyWindows(), 2);

    EXPECT_EQ(cmp.cellTimeErrPct.size(), spec.cellCount());
    EXPECT_GT(cmp.sampleTotals.ffActions, 0u);
    // workloads x seeds x non-base frequencies slowdown samples.
    EXPECT_EQ(cmp.slowdownSamples, 2u * 2u * 2u);
    EXPECT_FALSE(cmp.predictors.empty());
    for (const auto &p : cmp.predictors) {
        EXPECT_EQ(p.samples, cmp.slowdownSamples) << p.predictor;
        EXPECT_GE(p.maxAbsPct, p.meanAbsPct) << p.predictor;
        EXPECT_GE(p.maxAbsPctExactFed, p.meanAbsPctExactFed)
            << p.predictor;
    }
    EXPECT_GE(cmp.maxAbsTimeErrPct, cmp.meanAbsTimeErrPct);
    EXPECT_GE(cmp.maxAbsSlowdownErrPct, cmp.meanAbsSlowdownErrPct);
    // Tiny windows on tiny runs are the worst case for the model;
    // the bound here is a tripwire against gross regressions, not the
    // fig3-grid acceptance bound (fig9_sampling_accuracy gates that).
    EXPECT_LT(cmp.meanAbsSlowdownErrPct, 25.0);

    // The differential is a pure function of (spec, sampling config):
    // digests and error metrics reproduce bit-for-bit; only wall
    // clocks may move between invocations.
    auto again = exp::sweep::compareModes(spec, tinyWindows(), 1);
    EXPECT_EQ(again.exactDigest, cmp.exactDigest);
    EXPECT_EQ(again.sampledDigest, cmp.sampledDigest);
    EXPECT_DOUBLE_EQ(again.meanAbsSlowdownErrPct,
                     cmp.meanAbsSlowdownErrPct);
    EXPECT_DOUBLE_EQ(again.maxAbsTimeErrPct, cmp.maxAbsTimeErrPct);
}

TEST(SampledDifferential, ZeroGapCollapsesTheDifferential)
{
    exp::sweep::SweepSpec spec;
    spec.workloads = {wl::syntheticSmall(2, 60)};
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(2.0)};

    sim::SamplingConfig cfg;
    cfg.gapWindow = 0;
    auto cmp = exp::sweep::compareModes(spec, cfg, 1);

    EXPECT_EQ(cmp.sampledDigest, cmp.exactDigest);
    EXPECT_EQ(cmp.meanAbsTimeErrPct, 0.0);
    EXPECT_EQ(cmp.maxAbsTimeErrPct, 0.0);
    EXPECT_EQ(cmp.maxAbsSlowdownErrPct, 0.0);
    EXPECT_EQ(cmp.sampleTotals.ffActions, 0u);
}

namespace {

/** The fig10 managed-sampling recipe (see bench/fig10_managed_sampling
 *  and the CI sampled-accuracy job): adaptive placement over the
 *  default manager config. */
sim::SamplingConfig
managedRecipe()
{
    sim::SamplingConfig cfg;
    cfg.detailWindow = 10 * kTicksPerUs;
    cfg.gapWindow = 980 * kTicksPerUs;
    cfg.maxGapWindow = 7840 * kTicksPerUs;
    cfg.driftThresholdPermille = 200;
    return cfg;
}

std::uint64_t
managedSampledDigest(unsigned workers)
{
    std::vector<wl::WorkloadParams> wls;
    for (const auto &params : wl::dacapoSuite()) {
        if (wls.size() >= 4)
            break;
        wls.push_back(params);
    }
    const auto seeds = exp::sweep::SweepSpec::replicateSeeds(42, 1);
    auto cells = exp::sweep::sweepMap<exp::ManagedRunOutput>(
        wls.size(), workers, [&](std::size_t i) {
            mgr::ManagerConfig mc;
            exp::RunOptions ro;
            ro.mode = exp::SimMode::Sampled;
            ro.sampling = managedRecipe();
            ro.seed = seeds[0];
            return exp::runManaged(wls[i], mc, power::VfTable::haswell(),
                                   ro);
        });
    return exp::sweep::managedGridDigest(cells);
}

} // namespace

/**
 * The sampled *managed* fingerprint, pinned. Trips on any drift in the
 * managed fast path — per-operating-point era forking, forced detail
 * windows around DVFS transitions and GC boundaries, adaptive gap
 * stretching — at every worker count the acceptance gate names. The
 * grid and sampling config mirror the CI fig10_managed_sampling
 * invocation, which pins the same digest end to end.
 */
TEST(SampledSweepGolden, ManagedGridFingerprintPinnedAcrossWorkers)
{
    constexpr std::uint64_t kManagedSampledGolden = 0x71702eac03704a14ULL;
    for (unsigned workers : {1u, 2u, 8u})
        EXPECT_EQ(managedSampledDigest(workers), kManagedSampledGolden)
            << "workers=" << workers;
}

TEST(ManagedDifferential, ErrorBoundsAreDeterministicAndObserved)
{
    std::vector<wl::WorkloadParams> wls = {wl::syntheticSmall(2, 120),
                                           wl::syntheticSmall(4, 80)};
    mgr::ManagerConfig mc;
    auto table = power::VfTable::haswell();
    auto seeds = exp::sweep::SweepSpec::replicateSeeds(42, 2);

    auto cmp = exp::sweep::compareManagedModes(wls, mc, table,
                                               tinyWindows(), seeds, 2);
    EXPECT_EQ(cmp.cells, 4u);
    EXPECT_EQ(cmp.cellTimeErrPct.size(), 4u);
    EXPECT_EQ(cmp.slowdownSamples, 4u);
    EXPECT_GT(cmp.sampleTotals.ffActions, 0u);
    EXPECT_GE(cmp.maxAbsTimeErrPct, cmp.meanAbsTimeErrPct);
    EXPECT_GE(cmp.maxAbsSlowdownErrPct, cmp.meanAbsSlowdownErrPct);
    // The sampled side observed the manager: transitions were noted
    // and each one (plus every GC boundary) forced a detail window.
    EXPECT_EQ(cmp.sampleTotals.transitions, cmp.transitions);
    if (cmp.transitions > 0)
        EXPECT_GT(cmp.sampleTotals.forcedWindows, 0u);

    // Pure function of (workloads, config, seeds): digests and error
    // metrics reproduce at any worker count; only wall clocks move.
    auto again = exp::sweep::compareManagedModes(wls, mc, table,
                                                 tinyWindows(), seeds, 1);
    EXPECT_EQ(again.exactDigest, cmp.exactDigest);
    EXPECT_EQ(again.sampledDigest, cmp.sampledDigest);
    EXPECT_DOUBLE_EQ(again.meanAbsSlowdownErrPct,
                     cmp.meanAbsSlowdownErrPct);
    EXPECT_DOUBLE_EQ(again.maxAbsTimeErrPct, cmp.maxAbsTimeErrPct);
}

TEST(ManagedDifferential, ZeroGapCollapsesTheDifferential)
{
    std::vector<wl::WorkloadParams> wls = {wl::syntheticSmall(2, 60)};
    mgr::ManagerConfig mc;
    auto table = power::VfTable::haswell();

    sim::SamplingConfig cfg;
    cfg.gapWindow = 0;
    auto cmp = exp::sweep::compareManagedModes(wls, mc, table, cfg);

    EXPECT_EQ(cmp.sampledDigest, cmp.exactDigest);
    EXPECT_EQ(cmp.meanAbsTimeErrPct, 0.0);
    EXPECT_EQ(cmp.maxAbsTimeErrPct, 0.0);
    EXPECT_EQ(cmp.maxAbsSlowdownErrPct, 0.0);
    EXPECT_EQ(cmp.sampleTotals.ffActions, 0u);
    EXPECT_EQ(cmp.sampleTotals.forcedWindows, 0u);
}

TEST(SampledDifferential, GcInsideGapKeepsObservationsWellFormed)
{
    // A real benchmark whose collections overwhelmingly start and end
    // inside fast-forwarded gaps (97% of simulated time is gap under
    // the default windows).
    auto params = wl::benchmarkByName("pmd");

    exp::RunOptions exact;
    auto e = exp::runFixed(params, Frequency::ghz(2.0), exact);

    exp::RunOptions sampled = exact;
    sampled.mode = exp::SimMode::Sampled;
    auto s = exp::runFixed(params, Frequency::ghz(2.0), sampled);

    // The allocation stream is identical, so the collection schedule
    // must be too — fast-forwarding may compress GC time, never drop
    // or invent collections.
    ASSERT_GT(e.collections, 1u);
    EXPECT_EQ(s.collections, e.collections);
    EXPECT_GT(s.sampling.ffActions, 0u);

    // GC phase marks pair up (begin/end) and sit inside the run.
    ASSERT_EQ(s.record.gcMarks.size(), 2u * s.collections);
    for (std::size_t i = 0; i < s.record.gcMarks.size(); ++i) {
        const auto &m = s.record.gcMarks[i];
        EXPECT_EQ(m.begin, i % 2 == 0);
        EXPECT_LE(m.tick, s.totalTime);
        if (i > 0) {
            EXPECT_GE(m.tick, s.record.gcMarks[i - 1].tick);
        }
    }

    // The epoch decomposition the predictors consume stays monotone,
    // non-overlapping and bounded by the run.
    ASSERT_FALSE(s.record.epochs.empty());
    EXPECT_EQ(s.record.totalTime, s.totalTime);
    Tick prev_end = 0;
    for (const auto &ep : s.record.epochs) {
        EXPECT_GE(ep.start, prev_end);
        EXPECT_GT(ep.end, ep.start);
        prev_end = ep.end;
    }
    EXPECT_LE(prev_end, s.totalTime);
}
