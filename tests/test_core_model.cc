/**
 * @file
 * Unit tests for the interval-style core model: compute scaling, miss
 * clusters, store bursts, hardware-counter estimates.
 */

#include <gtest/gtest.h>

#include "uarch/core.hh"

using namespace dvfs;
using namespace dvfs::uarch;

namespace {

/** A self-contained machine fragment around one or two cores. */
struct Rig {
    explicit Rig(Frequency f, std::uint32_t cores = 2)
        : core_domain("core", f), uncore("uncore", Frequency::mhz(1500)),
          mem(cores, HierarchyConfig{}, dram, uncore)
    {
        CoreConfig cc;
        for (std::uint32_t i = 0; i < cores; ++i)
            core.emplace_back(i, cc, mem, core_domain);
    }

    FreqDomain core_domain;
    FreqDomain uncore;
    Dram dram;
    CacheHierarchy mem;
    std::vector<CoreModel> core;
};

} // namespace

TEST(CoreCompute, TimeMatchesIpcAndFrequency)
{
    Rig rig(Frequency::ghz(1.0));
    PerfCounters pc;
    // 2000 instructions at IPC 2 at 1 GHz = 1000 cycles = 1 us.
    Tick end = rig.core[0].executeCompute(ComputeSpec{2000, 0, 0, 1.0},
                                          0, pc);
    EXPECT_EQ(end, kTicksPerUs);
    EXPECT_EQ(pc.instructions, 2000u);
    EXPECT_EQ(pc.busyTime, kTicksPerUs);
    EXPECT_EQ(pc.computeTime, kTicksPerUs);
}

TEST(CoreCompute, ScalesExactlyWithFrequency)
{
    Rig slow(Frequency::ghz(1.0));
    Rig fast(Frequency::ghz(4.0));
    PerfCounters a, b;
    Tick t1 = slow.core[0].executeCompute(ComputeSpec{10000}, 0, a);
    Tick t4 = fast.core[0].executeCompute(ComputeSpec{10000}, 0, b);
    EXPECT_EQ(t1, 4 * t4);
}

TEST(CoreCompute, IpcScaleSpeedsUp)
{
    Rig rig(Frequency::ghz(1.0));
    PerfCounters a, b;
    Tick base = rig.core[0].executeCompute(ComputeSpec{8000, 0, 0, 1.0},
                                           0, a);
    Tick opt = rig.core[0].executeCompute(ComputeSpec{8000, 0, 0, 2.0},
                                          0, b);
    EXPECT_EQ(base, 2 * opt);
}

TEST(CoreCompute, L3LoadsAddNonScalingTime)
{
    Rig slow(Frequency::ghz(1.0));
    Rig fast(Frequency::ghz(4.0));
    PerfCounters a, b;
    Tick t1 = slow.core[0].executeCompute(ComputeSpec{1000, 0, 20}, 0, a);
    Tick t4 = fast.core[0].executeCompute(ComputeSpec{1000, 0, 20}, 0, b);
    // The L3 component is identical; only compute shrank.
    Tick l3_part = a.trueMemTime;
    EXPECT_EQ(l3_part, b.trueMemTime);
    EXPECT_EQ(t1 - l3_part, 4 * (t4 - l3_part));
}

TEST(CoreCluster, DependentChainSerializes)
{
    Rig rig(Frequency::ghz(1.0));
    PerfCounters one, chain;

    MissClusterSpec single;
    single.chains = {{0x10000000}};
    Tick t_single =
        rig.core[0].executeCluster(single, 0, one);

    rig.mem.reset();
    rig.dram.reset();
    MissClusterSpec deep;
    deep.chains = {{0x20000000, 0x30000000, 0x40000000}};
    Tick t_chain = rig.core[0].executeCluster(deep, 0, chain);

    EXPECT_GT(t_chain, 2 * t_single);
    EXPECT_GT(chain.critNonscaling, 2 * one.critNonscaling);
}

TEST(CoreCluster, ParallelChainsOverlap)
{
    Rig rig(Frequency::ghz(1.0));
    PerfCounters serial, parallel;

    MissClusterSpec deep;
    deep.chains = {{0x10000000, 0x20000000, 0x30000000, 0x40000000}};
    Tick t_serial = rig.core[0].executeCluster(deep, 0, serial);

    rig.mem.reset();
    rig.dram.reset();
    MissClusterSpec wide;
    wide.chains = {{0x50000000, 0x60000000},
                   {0x70000000, 0x80000000}};
    Tick t_parallel = rig.core[0].executeCluster(wide, 0, parallel);

    // Same number of misses, but two chains overlap.
    EXPECT_LT(t_parallel, t_serial);
}

TEST(CoreCluster, OverlapInstructionsHideMemoryTime)
{
    Rig rig(Frequency::ghz(4.0));
    PerfCounters pc;
    MissClusterSpec spec;
    spec.chains = {{0x10000000}};
    spec.overlapInstructions = 4'000'000;  // compute >> memory
    Tick end = rig.core[0].executeCluster(spec, 0, pc);
    // Elapsed equals the compute time: memory fully hidden.
    Tick t_cpu = Frequency::ghz(4.0).cyclesToTicks(4'000'000 / 2.0);
    EXPECT_EQ(end, t_cpu);
    // The stall estimator sees no stall; CRIT still books the miss.
    EXPECT_EQ(pc.stallNonscaling, 0u);
    EXPECT_GT(pc.critNonscaling, 0u);
}

TEST(CoreCluster, EstimatorOrderingOnChainedMisses)
{
    // On dependent variable-latency misses with overlap:
    // stall <= leading <= crit (the paper's accuracy ladder).
    Rig rig(Frequency::ghz(2.0));
    PerfCounters pc;
    MissClusterSpec spec;
    spec.chains = {{0x10000000, 0x20000000, 0x30000000},
                   {0x40000000, 0x50000000}};
    spec.overlapInstructions = 2000;
    rig.core[0].executeCluster(spec, 0, pc);
    EXPECT_LE(pc.stallNonscaling, pc.leadingNonscaling);
    EXPECT_LE(pc.leadingNonscaling, pc.critNonscaling);
    EXPECT_EQ(pc.missClusters, 1u);
    EXPECT_EQ(pc.dramLoads, 5u);
}

TEST(CoreCluster, CacheHitsDoNotCountAsNonScaling)
{
    Rig rig(Frequency::ghz(1.0));
    PerfCounters warm;
    MissClusterSpec spec;
    spec.chains = {{0x10000000}};
    rig.core[0].executeCluster(spec, 0, warm);      // cold: DRAM
    PerfCounters hot;
    rig.core[0].executeCluster(spec, 100000, hot);  // warm: L1
    EXPECT_EQ(hot.critNonscaling, 0u);
    EXPECT_EQ(hot.leadingNonscaling, 0u);
    EXPECT_EQ(hot.l1Hits, 1u);
}

TEST(CoreBurst, EmptyBurstIsFree)
{
    Rig rig(Frequency::ghz(1.0));
    PerfCounters pc;
    EXPECT_EQ(rig.core[0].executeStoreBurst(StoreBurstSpec{0, 0, 2}, 500,
                                            pc),
              500u);
    EXPECT_EQ(pc.busyTime, 0u);
}

TEST(CoreBurst, SustainedBurstIsDrainLimited)
{
    Rig rig(Frequency::ghz(4.0));
    PerfCounters pc;
    StoreBurstSpec spec{0x100000000, 256, 2};
    Tick end = rig.core[0].executeStoreBurst(spec, 0, pc);
    // At 4 GHz dispatch of 2 stores/line takes 0.5 ns; the drain port
    // needs ~11 ns per missing line, so the burst is drain-bound and
    // most of its time shows up as SQ-full.
    double per_line_ns = ticksToNs(end) / 256.0;
    EXPECT_GT(per_line_ns, 8.0);
    EXPECT_GT(pc.sqFullTime, end / 2);
    EXPECT_EQ(pc.storeLines, 256u);
    EXPECT_EQ(pc.storeBursts, 1u);
}

TEST(CoreBurst, SqFullTimeIsRoughlyFrequencyInvariant)
{
    // The BURST premise: with wide stores the burst drains at memory
    // speed at every DVFS point, so SQ-full time measured at 1 GHz is
    // a good predictor of SQ-full time at 4 GHz.
    Rig slow(Frequency::ghz(1.0));
    Rig fast(Frequency::ghz(4.0));
    PerfCounters a, b;
    StoreBurstSpec spec{0x100000000, 512, 2};
    Tick t1 = slow.core[0].executeStoreBurst(spec, 0, a);
    Tick t4 = fast.core[0].executeStoreBurst(spec, 0, b);
    EXPECT_GT(a.sqFullTime, 0u);
    double ratio = static_cast<double>(b.sqFullTime) /
                   static_cast<double>(a.sqFullTime);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.3);
    // Total burst time shrinks only a little at 4 GHz.
    EXPECT_GT(t4 * 2, t1);
}

TEST(CoreBurst, WarmLinesDispatchLimited)
{
    Rig rig(Frequency::ghz(1.0));
    PerfCounters warm_up, replay;
    StoreBurstSpec spec{0x100000000, 64, 2};
    rig.core[0].executeStoreBurst(spec, 0, warm_up);
    // Same lines again: all on chip, no drain pressure.
    Tick start = 10 * kTicksPerMs;
    Tick end = rig.core[0].executeStoreBurst(spec, start, replay);
    Tick dispatch_only =
        Frequency::ghz(1.0).cyclesToTicks(64 * 2 / 1.0);
    EXPECT_EQ(end - start, dispatch_only);
    EXPECT_EQ(replay.sqFullTime, 0u);
}

TEST(CoreAtomic, ContendedRmwAddsFixedTransfer)
{
    Rig rig(Frequency::ghz(1.0));
    PerfCounters fast_pc, slow_pc;
    Tick t_fast = rig.core[0].atomicRmw(0, false, fast_pc);
    Tick t_slow = rig.core[0].atomicRmw(0, true, slow_pc);
    EXPECT_EQ(t_slow - t_fast, rig.mem.l3HitTicks());
    // The transfer is invisible to all three DVFS counters.
    EXPECT_EQ(slow_pc.critNonscaling, 0u);
    EXPECT_EQ(slow_pc.stallNonscaling, 0u);
}

/** Property sweep: compute-only work predicts exactly across the
 * whole frequency range (the predictors' base case). */
class ComputeScaling : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ComputeScaling, ExactInverseFrequency)
{
    Rig ref(Frequency::ghz(1.0));
    Rig tgt(Frequency::mhz(GetParam()));
    PerfCounters a, b;
    Tick t_ref = ref.core[0].executeCompute(ComputeSpec{1'000'000}, 0, a);
    Tick t_tgt = tgt.core[0].executeCompute(ComputeSpec{1'000'000}, 0, b);
    double expect = static_cast<double>(t_ref) * 1000.0 / GetParam();
    EXPECT_NEAR(static_cast<double>(t_tgt), expect, expect * 1e-6 + 1);
}

INSTANTIATE_TEST_SUITE_P(DvfsRange, ComputeScaling,
                         ::testing::Values(1000, 1125, 1500, 2000, 2375,
                                           3000, 3625, 4000));
