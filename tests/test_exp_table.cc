/**
 * @file
 * Tests for the experiment harness utilities (Table printer, metrics,
 * runFixed output coherence).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exp/experiment.hh"
#include "exp/table.hh"

using namespace dvfs;
using dvfs::exp::Table;

TEST(Table, PrintsAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("| alpha |"), std::string::npos);
    EXPECT_NE(s.find("| 22222 |"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("+====="), std::string::npos);
}

TEST(Table, SeparatorRowsRender)
{
    Table t({"a"});
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    std::ostringstream os;
    t.print(os);
    // Three horizontal lines (top, header, separator) plus bottom.
    std::string s = os.str();
    std::size_t lines = 0, pos = 0;
    while ((pos = s.find("+--", pos)) != std::string::npos) {
        ++lines;
        pos += 3;
    }
    EXPECT_GE(lines, 3u);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.1234), "12.3%");
    EXPECT_EQ(Table::pct(-0.05, 0), "-5%");
}

TEST(TableDeathTest, MismatchedRowIsFatal)
{
    Table t({"a", "b"});
    EXPECT_EXIT(t.addRow({"only-one"}), ::testing::ExitedWithCode(1),
                "cells");
}

TEST(Metrics, MeanAbs)
{
    EXPECT_DOUBLE_EQ(exp::meanAbs({}), 0.0);
    EXPECT_DOUBLE_EQ(exp::meanAbs({-0.1, 0.3}), 0.2);
}

TEST(RunFixed, OutputIsCoherent)
{
    auto out = exp::runFixed(wl::syntheticSmall(2, 40),
                             Frequency::ghz(2.0));
    EXPECT_EQ(out.freq, Frequency::ghz(2.0));
    EXPECT_EQ(out.record.totalTime, out.totalTime);
    EXPECT_EQ(out.record.baseFreq, Frequency::ghz(2.0));
    EXPECT_GT(out.events, 0u);
    // Busy time across threads cannot exceed cores x wall time.
    EXPECT_LE(out.totals.busyTime, 4 * out.totalTime);
    // Epochs tile the run exactly.
    EXPECT_EQ(out.record.epochs.back().end, out.totalTime);
}

TEST(RunFixed, EnergyCanBeDisabled)
{
    exp::RunOptions opts;
    opts.measureEnergy = false;
    auto out = exp::runFixed(wl::syntheticSmall(2, 20),
                             Frequency::ghz(1.0), opts);
    EXPECT_DOUBLE_EQ(out.energy.total(), 0.0);
}
