/**
 * @file
 * Unit tests for the managed heap.
 */

#include <gtest/gtest.h>

#include "rt/heap.hh"

using namespace dvfs;
using dvfs::rt::Heap;
using dvfs::rt::HeapConfig;

namespace {

HeapConfig
tinyHeap()
{
    HeapConfig cfg;
    cfg.nurseryBytes = 1024;
    cfg.matureBytes = 4096;
    cfg.nurseryWindows = 4;
    return cfg;
}

} // namespace

TEST(Heap, BumpAllocationIsContiguous)
{
    Heap h(tinyHeap());
    auto a = h.allocate(128);
    auto b = h.allocate(64);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*b, *a + 128);
    EXPECT_EQ(h.nurseryUsed(), 192u);
}

TEST(Heap, AllocationRoundsUpToLines)
{
    Heap h(tinyHeap());
    auto a = h.allocate(1);
    auto b = h.allocate(1);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*b - *a, 64u);
    EXPECT_EQ(h.totalAllocated(), 128u);
}

TEST(Heap, FullNurseryReturnsNullopt)
{
    Heap h(tinyHeap());
    ASSERT_TRUE(h.allocate(1024));
    EXPECT_FALSE(h.allocate(64).has_value());
}

TEST(Heap, ResetRotatesWindow)
{
    Heap h(tinyHeap());
    auto a = h.allocate(64);
    h.resetNursery();
    auto b = h.allocate(64);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*b - *a, 1024u);  // next window
    EXPECT_EQ(h.nurseryUsed(), 64u);

    // Windows wrap around.
    for (int i = 0; i < 3; ++i)
        h.resetNursery();
    auto c = h.allocate(64);
    EXPECT_EQ(*c, *a);
}

TEST(Heap, MatureAllocationWraps)
{
    Heap h(tinyHeap());
    std::uint64_t first = h.matureAlloc(2048);
    h.matureAlloc(2048);
    std::uint64_t wrapped = h.matureAlloc(2048);
    EXPECT_EQ(wrapped, first);
    EXPECT_EQ(h.totalCopied(), 3u * 2048);
}

TEST(Heap, SpacesAreDisjoint)
{
    Heap h(tinyHeap());
    auto n = h.allocate(64);
    auto m = h.matureAlloc(64);
    ASSERT_TRUE(n);
    // Nursery windows all live below the mature base.
    EXPECT_LT(*n + 1024 * 4, m + 1);
}

TEST(HeapDeathTest, OversizedAllocationIsFatal)
{
    Heap h(tinyHeap());
    EXPECT_EXIT(h.allocate(4096), ::testing::ExitedWithCode(1),
                "exceeds the nursery");
}
