/**
 * @file
 * Integration tests for the machine: scheduling, synchronization,
 * trace emission, counters, DVFS transitions.
 */

#include <gtest/gtest.h>

#include "sim/log.hh"
#include "test_util.hh"

using namespace dvfs;
using namespace dvfs::os;
using namespace dvfs::test;

namespace {

SystemConfig
smallConfig(std::uint32_t cores = 2)
{
    SystemConfig cfg;
    cfg.cores = cores;
    cfg.coreFreq = Frequency::ghz(1.0);
    return cfg;
}

} // namespace

TEST(System, SingleThreadRunsToExit)
{
    System sys(smallConfig(1));
    ThreadId t = addScript(sys, "main",
                           {Action::makeCompute(10000),
                            Action::makeCompute(5000)});
    sys.setMainThread(t);
    auto res = sys.run();
    EXPECT_TRUE(res.finished);
    // 15000 instructions at IPC 2 at 1 GHz plus context switch.
    Tick work = Frequency::ghz(1.0).cyclesToTicks(15000 / 2.0);
    EXPECT_GE(res.totalTime, work);
    EXPECT_LT(res.totalTime, work + kTicksPerUs);
    EXPECT_EQ(sys.thread(t).state, ThreadState::Finished);
}

TEST(System, CountersChargeTheRunningThread)
{
    System sys(smallConfig(1));
    ThreadId t = addScript(sys, "main", {Action::makeCompute(20000)});
    sys.setMainThread(t);
    sys.run();
    const auto &pc = sys.thread(t).counters;
    EXPECT_EQ(pc.instructions,
              20000u + sys.config().ctxSwitchInstructions);
    EXPECT_GT(pc.busyTime, 0u);
}

TEST(System, MutexProvidesMutualExclusion)
{
    System sys(smallConfig(2));
    SyncId m = sys.createMutex();

    // Two threads increment a shared "in critical section" flag; the
    // flag is checked via lock-step scripts: if exclusion failed, the
    // second locker would not have waited and total time would be
    // shorter than serial execution of the critical sections.
    std::vector<Action> script = {
        Action::makeMutexLock(m),
        Action::makeCompute(400'000),  // 200 us at 1 GHz
        Action::makeMutexUnlock(m),
    };
    ThreadId a = addScript(sys, "a", script);
    ThreadId b = addScript(sys, "b", script);
    ThreadId main = addScript(sys, "main",
                              {Action::makeJoin(a), Action::makeJoin(b)});
    sys.setMainThread(main);
    auto res = sys.run();
    // Critical sections must serialize: >= 400 us total.
    EXPECT_GE(res.totalTime, 2 * Frequency::ghz(1.0).cyclesToTicks(200'000));
}

TEST(System, MutexHandoffWakesFifo)
{
    System sys(smallConfig(4));
    SyncId m = sys.createMutex();
    TraceCollector trace;
    sys.addListener(&trace);

    std::vector<Action> script = {
        Action::makeMutexLock(m),
        Action::makeCompute(100'000),
        Action::makeMutexUnlock(m),
    };
    ThreadId a = addScript(sys, "a", script);
    ThreadId b = addScript(sys, "b", script);
    ThreadId c = addScript(sys, "c", script);
    ThreadId main = addScript(sys, "main",
                              {Action::makeJoin(a), Action::makeJoin(b),
                               Action::makeJoin(c)});
    sys.setMainThread(main);
    EXPECT_TRUE(sys.run().finished);
    // At least two threads blocked on the mutex and were woken.
    EXPECT_GE(trace.count(SyncEventKind::FutexWait), 2u);
    EXPECT_GE(trace.count(SyncEventKind::FutexWake), 2u);
}

TEST(System, BarrierReleasesAllAtOnce)
{
    System sys(smallConfig(4));
    SyncId bar = sys.createBarrier(3);
    TraceCollector trace;
    sys.addListener(&trace);

    auto script = [&](std::uint64_t pre) {
        return std::vector<Action>{Action::makeCompute(pre),
                                   Action::makeBarrierWait(bar),
                                   Action::makeCompute(1000)};
    };
    ThreadId a = addScript(sys, "a", script(1000));
    ThreadId b = addScript(sys, "b", script(400'000));
    ThreadId c = addScript(sys, "c", script(800'000));
    ThreadId main = addScript(sys, "main",
                              {Action::makeJoin(a), Action::makeJoin(b),
                               Action::makeJoin(c)});
    sys.setMainThread(main);
    auto res = sys.run();
    EXPECT_TRUE(res.finished);
    // a and b sleep at the barrier; c releases everyone.
    EXPECT_EQ(trace.count(SyncEventKind::FutexWait), 2u + 1u);  // +main join
    // Everyone finishes shortly after the slowest pre-barrier work.
    Tick slowest = Frequency::ghz(1.0).cyclesToTicks(400'000);
    EXPECT_GE(res.totalTime, slowest);
}

TEST(System, BarrierIsReusableAcrossGenerations)
{
    System sys(smallConfig(2));
    SyncId bar = sys.createBarrier(2);
    std::vector<Action> script;
    for (int i = 0; i < 5; ++i) {
        script.push_back(Action::makeCompute(10'000));
        script.push_back(Action::makeBarrierWait(bar));
    }
    ThreadId a = addScript(sys, "a", script);
    ThreadId b = addScript(sys, "b", script);
    ThreadId main = addScript(sys, "main",
                              {Action::makeJoin(a), Action::makeJoin(b)});
    sys.setMainThread(main);
    EXPECT_TRUE(sys.run().finished);
}

TEST(System, JoinOnFinishedThreadDoesNotBlock)
{
    System sys(smallConfig(2));
    ThreadId a = addScript(sys, "a", {Action::makeCompute(100)});
    ThreadId main = addScript(sys, "main",
                              {Action::makeCompute(4'000'000),
                               Action::makeJoin(a)});
    sys.setMainThread(main);
    EXPECT_TRUE(sys.run().finished);
}

TEST(System, TimesliceRoundRobinRunsEveryone)
{
    // 4 CPU-hungry threads on 1 core must all finish, with SchedOut
    // preemptions in the trace.
    SystemConfig cfg = smallConfig(1);
    cfg.timeslice = 10 * kTicksPerUs;
    System sys(cfg);
    TraceCollector trace;
    sys.addListener(&trace);

    std::vector<ThreadId> workers;
    for (int i = 0; i < 4; ++i) {
        std::vector<Action> script(20, Action::makeCompute(20'000));
        workers.push_back(addScript(sys, strprintf("w%d", i), script));
    }
    std::vector<Action> joins;
    for (ThreadId w : workers)
        joins.push_back(Action::makeJoin(w));
    ThreadId main = addScript(sys, "main", joins);
    sys.setMainThread(main);

    auto res = sys.run();
    EXPECT_TRUE(res.finished);
    EXPECT_GT(trace.count(SyncEventKind::SchedOut), 0u);
    for (ThreadId w : workers)
        EXPECT_TRUE(sys.thread(w).finished());
}

TEST(System, FutexWakeBeforeSleepIsNotLost)
{
    // Thread A parks on a futex; thread B wakes it. Even when the
    // wake lands while A is between queueing and sleeping, A must not
    // sleep forever.
    System sys(smallConfig(2));
    SyncId f = sys.createFutex();
    ThreadId a = addScript(sys, "a", {Action::makeFutexWait(f),
                                      Action::makeCompute(1000)});
    ThreadId b = sys.addThread(
        "b", std::make_unique<LambdaProgram>(
                 [&sys, f, step = 0](ThreadContext &) mutable -> Action {
                     if (step++ == 0) {
                         // Runs strictly after A parked (A spawns
                         // first and parks with zero cost).
                         sys.futexWakeAll(f);
                         return Action::makeCompute(1000);
                     }
                     return Action::makeExit();
                 }));
    ThreadId main = addScript(sys, "main",
                              {Action::makeJoin(a), Action::makeJoin(b)});
    sys.setMainThread(main);
    EXPECT_TRUE(sys.run().finished);
}

TEST(System, TraceEventsAreTimeOrdered)
{
    System sys(smallConfig(2));
    SyncId m = sys.createMutex();
    TraceCollector trace;
    sys.addListener(&trace);
    std::vector<Action> script = {Action::makeMutexLock(m),
                                  Action::makeCompute(50'000),
                                  Action::makeMutexUnlock(m)};
    ThreadId a = addScript(sys, "a", script);
    ThreadId main = addScript(sys, "main", {Action::makeJoin(a)});
    sys.setMainThread(main);
    sys.run();
    for (std::size_t i = 1; i < trace.events.size(); ++i)
        EXPECT_GE(trace.events[i].tick, trace.events[i - 1].tick);
    // The trace ends with RunEnd.
    ASSERT_FALSE(trace.events.empty());
    EXPECT_EQ(trace.events.back().kind, SyncEventKind::RunEnd);
}

TEST(System, DvfsTransitionStallsDispatch)
{
    SystemConfig cfg = smallConfig(1);
    cfg.dvfsTransitionLatency = 10 * kTicksPerUs;
    System sys(cfg);
    ThreadId main = sys.addThread(
        "main", std::make_unique<LambdaProgram>(
                    [&sys, step = 0](ThreadContext &) mutable -> Action {
                        switch (step++) {
                          case 0:
                            return Action::makeCompute(2000);
                          case 1:
                            sys.setFrequency(Frequency::ghz(2.0));
                            return Action::makeCompute(2000);
                          default:
                            return Action::makeExit();
                        }
                    }));
    sys.setMainThread(main);
    auto res = sys.run();
    // The second chunk waited out the 10 us transition stall.
    EXPECT_GE(res.totalTime, 10 * kTicksPerUs);
    EXPECT_EQ(sys.frequency(), Frequency::ghz(2.0));
}

TEST(System, FrequencyObserverSeesTransition)
{
    System sys(smallConfig(1));
    std::vector<std::pair<std::uint32_t, Tick>> seen;
    sys.addFrequencyObserver([&](Frequency f, Tick t) {
        seen.emplace_back(f.toMHz(), t);
    });
    ThreadId main = sys.addThread(
        "main", std::make_unique<LambdaProgram>(
                    [&sys, step = 0](ThreadContext &) mutable -> Action {
                        if (step++ == 0) {
                            sys.setFrequency(Frequency::ghz(3.0));
                            sys.setFrequency(Frequency::ghz(3.0));  // no-op
                            return Action::makeCompute(1000);
                        }
                        return Action::makeExit();
                    }));
    sys.setMainThread(main);
    sys.run();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].first, 3000u);
    EXPECT_EQ(sys.coreDomain().transitions(), 1u);
}

/**
 * Registering an observer from inside another observer's notification
 * (i.e. mid-run, while the observer list is being walked) must be
 * safe, and the new observer must see every subsequent transition.
 * Guards the reallocation-during-notification hazard in
 * System::addFrequencyObserver / setFrequency.
 */
TEST(System, ObserverRegisteredMidRunSeesLaterTransitions)
{
    System sys(smallConfig(1));
    std::vector<std::uint32_t> late_seen;
    bool registered = false;
    // Several pre-registered observers so the vector is near capacity
    // when the mid-notification registration happens.
    for (int i = 0; i < 3; ++i)
        sys.addFrequencyObserver([](Frequency, Tick) {});
    sys.addFrequencyObserver([&](Frequency, Tick) {
        if (registered)
            return;
        registered = true;
        sys.addFrequencyObserver([&](Frequency f, Tick) {
            late_seen.push_back(f.toMHz());
        });
    });
    ThreadId main = sys.addThread(
        "main", std::make_unique<LambdaProgram>(
                    [&sys, step = 0](ThreadContext &) mutable -> Action {
                        switch (step++) {
                          case 0:
                            sys.setFrequency(Frequency::ghz(2.0));
                            return Action::makeCompute(1000);
                          case 1:
                            sys.setFrequency(Frequency::ghz(3.0));
                            return Action::makeCompute(1000);
                          case 2:
                            sys.setFrequency(Frequency::ghz(4.0));
                            return Action::makeCompute(1000);
                          default:
                            return Action::makeExit();
                        }
                    }));
    sys.setMainThread(main);
    EXPECT_TRUE(sys.run().finished);
    // Registered during the 2 GHz notification: sees every transition
    // after that one, and none twice.
    EXPECT_EQ(late_seen, (std::vector<std::uint32_t>{3000u, 4000u}));
}

TEST(System, DeadlockedRunReturnsUnfinished)
{
    System sys(smallConfig(1));
    SyncId f = sys.createFutex();
    ThreadId main = addScript(sys, "main", {Action::makeFutexWait(f)});
    sys.setMainThread(main);
    auto res = sys.run();
    EXPECT_FALSE(res.finished);
}

TEST(System, RunLimitStopsEarly)
{
    System sys(smallConfig(1));
    std::vector<Action> script(100, Action::makeCompute(1'000'000));
    ThreadId main = addScript(sys, "main", script);
    sys.setMainThread(main);
    auto res = sys.run(kTicksPerMs);
    EXPECT_FALSE(res.finished);
}

TEST(System, TotalCountersSumThreads)
{
    System sys(smallConfig(2));
    ThreadId a = addScript(sys, "a", {Action::makeCompute(10'000)});
    ThreadId main = addScript(sys, "main", {Action::makeJoin(a)});
    sys.setMainThread(main);
    sys.run();
    auto total = sys.totalCounters();
    EXPECT_EQ(total.instructions, sys.thread(a).counters.instructions +
                                      sys.thread(main).counters.instructions);
}

TEST(SystemDeathTest, ConfigurationErrors)
{
    System sys(smallConfig(1));
    ThreadId main = addScript(sys, "main", {});
    sys.setMainThread(main);
    EXPECT_EXIT(
        {
            System s2(smallConfig(1));
            s2.run();
        },
        ::testing::ExitedWithCode(1), "no threads");
    EXPECT_EXIT(
        {
            System s3(smallConfig(1));
            addScript(s3, "x", {});
            s3.run();
        },
        ::testing::ExitedWithCode(1), "main thread");
}

TEST(SystemDeathTest, UnlockWithoutOwnershipPanics)
{
    System sys(smallConfig(1));
    SyncId m = sys.createMutex();
    ThreadId main = addScript(sys, "main", {Action::makeMutexUnlock(m)});
    sys.setMainThread(main);
    EXPECT_DEATH(sys.run(), "own");
}

TEST(System, DeterministicAcrossIdenticalRuns)
{
    auto run_once = [] {
        System sys(smallConfig(2));
        SyncId m = sys.createMutex();
        std::vector<Action> script;
        for (int i = 0; i < 10; ++i) {
            script.push_back(Action::makeCompute(5'000));
            script.push_back(Action::makeMutexLock(m));
            script.push_back(Action::makeCompute(2'000));
            script.push_back(Action::makeMutexUnlock(m));
        }
        ThreadId a = addScript(sys, "a", script);
        ThreadId b = addScript(sys, "b", script);
        ThreadId main = addScript(
            sys, "main", {Action::makeJoin(a), Action::makeJoin(b)});
        sys.setMainThread(main);
        return sys.run().totalTime;
    };
    EXPECT_EQ(run_once(), run_once());
}
