/**
 * @file
 * Unit tests for DVFS frequency domains.
 */

#include <gtest/gtest.h>

#include "uarch/freq_domain.hh"

using namespace dvfs;
using dvfs::uarch::FreqDomain;

TEST(FreqDomain, InitialState)
{
    FreqDomain d("core", Frequency::ghz(1.0));
    EXPECT_EQ(d.name(), "core");
    EXPECT_EQ(d.frequency(), Frequency::ghz(1.0));
    EXPECT_EQ(d.transitions(), 0u);
    ASSERT_EQ(d.history().size(), 1u);
    EXPECT_EQ(d.history()[0].since, 0u);
}

TEST(FreqDomain, TransitionsRecorded)
{
    FreqDomain d("core", Frequency::ghz(1.0));
    EXPECT_TRUE(d.setFrequency(Frequency::ghz(2.0), 100));
    EXPECT_FALSE(d.setFrequency(Frequency::ghz(2.0), 200));  // same value
    EXPECT_TRUE(d.setFrequency(Frequency::ghz(3.0), 300));
    EXPECT_EQ(d.transitions(), 2u);
    EXPECT_EQ(d.frequency(), Frequency::ghz(3.0));
    // Same-value sets are recorded in the history (attempted
    // switches) but do not count as transitions.
    EXPECT_EQ(d.history().size(), 4u);
}

TEST(FreqDomain, SameTickTransitionOverwrites)
{
    FreqDomain d("core", Frequency::ghz(1.0));
    d.setFrequency(Frequency::ghz(2.0), 100);
    d.setFrequency(Frequency::ghz(4.0), 100);
    EXPECT_EQ(d.history().size(), 2u);
    EXPECT_EQ(d.frequency(), Frequency::ghz(4.0));
}

TEST(FreqDomain, CyclesToTicksUsesCurrentSetting)
{
    FreqDomain d("core", Frequency::ghz(1.0));
    EXPECT_EQ(d.cyclesToTicks(1000.0), kTicksPerUs);
    d.setFrequency(Frequency::ghz(2.0), 10);
    EXPECT_EQ(d.cyclesToTicks(1000.0), kTicksPerUs / 2);
}

TEST(FreqDomain, AverageGHzWeightsResidency)
{
    FreqDomain d("core", Frequency::ghz(1.0));
    d.setFrequency(Frequency::ghz(3.0), 100);
    // [0,100) at 1 GHz, [100,200) at 3 GHz -> average 2 GHz
    EXPECT_NEAR(d.averageGHz(0, 200), 2.0, 1e-9);
    EXPECT_NEAR(d.averageGHz(0, 100), 1.0, 1e-9);
    EXPECT_NEAR(d.averageGHz(100, 200), 3.0, 1e-9);
    EXPECT_NEAR(d.averageGHz(150, 200), 3.0, 1e-9);
}

TEST(FreqDomain, AverageGHzDegenerateWindow)
{
    FreqDomain d("core", Frequency::ghz(2.5));
    EXPECT_NEAR(d.averageGHz(50, 50), 2.5, 1e-9);
}

TEST(FreqDomainDeathTest, RejectsInvalidFrequency)
{
    FreqDomain d("core", Frequency::ghz(1.0));
    EXPECT_EXIT(d.setFrequency(Frequency(), 10),
                ::testing::ExitedWithCode(1), "invalid");
}

TEST(FreqDomainDeathTest, RejectsOutOfOrderTransition)
{
    FreqDomain d("core", Frequency::ghz(1.0));
    d.setFrequency(Frequency::ghz(2.0), 100);
    EXPECT_DEATH(d.setFrequency(Frequency::ghz(3.0), 50), "order");
}
