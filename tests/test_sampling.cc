/**
 * @file
 * Sampled fast-path simulation: controller schedule, online model
 * conservation, and end-to-end sampled runs (DESIGN.md section 11).
 *
 * The contracts under test:
 *  - the SamplingController's window placement is a pure function of
 *    its config (never of workload content),
 *  - the FastPathModel's integer emission conserves observed sums
 *    (emitted totals track observed means with zero long-run drift),
 *  - a sampled run completes, covers only a fraction of simulated
 *    time in detail, and reproduces bit-identically;
 *  - gapWindow == 0 disables fast-forward entirely (exact behaviour).
 */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "exp/sweep/fingerprint.hh"
#include "sim/event_queue.hh"
#include "sim/sampling.hh"
#include "uarch/fastpath.hh"
#include "wl/suite.hh"

using namespace dvfs;

namespace {

sim::SamplingConfig
smallWindows()
{
    sim::SamplingConfig cfg;
    cfg.startupDetail = 50 * kTicksPerUs;
    cfg.detailWindow = 20 * kTicksPerUs;
    cfg.gapWindow = 180 * kTicksPerUs;
    return cfg;
}

} // namespace

TEST(SamplingController, WindowScheduleIsPureFunctionOfConfig)
{
    sim::EventQueue eq;
    sim::SamplingConfig cfg = smallWindows();
    sim::SamplingController sc(eq, cfg);
    EXPECT_EQ(sc.phase(), sim::SamplePhase::Detail);

    sc.start();
    // Startup detail window: [0, 50us), then alternating 180us/20us.
    EXPECT_FALSE(sc.fastForward());
    EXPECT_EQ(sc.phaseEnd(), cfg.startupDetail);

    while (eq.now() < cfg.startupDetail)
        ASSERT_TRUE(eq.runOne());
    EXPECT_TRUE(sc.fastForward());
    EXPECT_EQ(sc.phaseEnd(), cfg.startupDetail + cfg.gapWindow);

    while (eq.now() < cfg.startupDetail + cfg.gapWindow)
        ASSERT_TRUE(eq.runOne());
    EXPECT_FALSE(sc.fastForward());
    EXPECT_EQ(sc.phaseEnd(),
              cfg.startupDetail + cfg.gapWindow + cfg.detailWindow);

    const sim::SampleStats st = sc.finalStats();
    EXPECT_EQ(st.detailWindows, 1u);
    EXPECT_EQ(st.ffWindows, 1u);
    EXPECT_EQ(st.detailTicks, cfg.startupDetail);
    EXPECT_EQ(st.ffTicks, cfg.gapWindow);
}

TEST(SamplingController, ZeroGapNeverFastForwards)
{
    sim::EventQueue eq;
    sim::SamplingConfig cfg;
    cfg.gapWindow = 0;
    sim::SamplingController sc(eq, cfg);
    sc.start();
    EXPECT_FALSE(sc.fastForward());
    EXPECT_EQ(sc.phaseEnd(), kTickNever);
    // No flip events were scheduled at all.
    EXPECT_FALSE(eq.runOne());
}

TEST(SamplingController, FinalStatsIncludePartialPhase)
{
    sim::EventQueue eq;
    sim::SamplingConfig cfg = smallWindows();
    sim::SamplingController sc(eq, cfg);
    sc.start();
    // Advance half-way into the startup window without reaching it.
    eq.schedule(cfg.startupDetail / 2, [] {});
    ASSERT_TRUE(eq.runOne());
    const sim::SampleStats st = sc.finalStats();
    EXPECT_EQ(st.detailTicks, cfg.startupDetail / 2);
    EXPECT_EQ(st.detailWindows, 0u);
}

TEST(SamplingController, DetailWindowLongerThanGapStillAlternates)
{
    // Degenerate placement: detail >= gap. The schedule must stay a
    // strict alternation with the configured lengths, not collapse.
    sim::EventQueue eq;
    sim::SamplingConfig cfg;
    cfg.startupDetail = 10 * kTicksPerUs;
    cfg.detailWindow = 50 * kTicksPerUs;
    cfg.gapWindow = 20 * kTicksPerUs;
    sim::SamplingController sc(eq, cfg);
    sc.start();

    const Tick gapEnd = cfg.startupDetail + cfg.gapWindow;
    while (eq.now() < cfg.startupDetail)
        ASSERT_TRUE(eq.runOne());
    EXPECT_TRUE(sc.fastForward());
    while (eq.now() < gapEnd)
        ASSERT_TRUE(eq.runOne());
    EXPECT_FALSE(sc.fastForward());
    EXPECT_EQ(sc.phaseEnd(), gapEnd + cfg.detailWindow);

    while (eq.now() < gapEnd + cfg.detailWindow)
        ASSERT_TRUE(eq.runOne());
    EXPECT_TRUE(sc.fastForward());

    const sim::SampleStats st = sc.finalStats();
    EXPECT_EQ(st.detailWindows, 2u);
    EXPECT_EQ(st.detailTicks, cfg.startupDetail + cfg.detailWindow);
    EXPECT_EQ(st.ffWindows, 1u);
    EXPECT_EQ(st.ffTicks, cfg.gapWindow);
}

TEST(SamplingController, ForceDetailOnFlipTickKeepsAccountingExact)
{
    // A transition landing on the very tick of a detail -> gap flip:
    // the flip runs first (it was scheduled when the window opened),
    // then noteTransition() cuts the zero-length gap and opens a full
    // detail window. Tick accounting must stay exact and the schedule
    // must keep exactly one live boundary event (a stale flip would
    // fire at the wrong tick and trip the controller's assert).
    sim::EventQueue eq;
    sim::SamplingConfig cfg = smallWindows();
    sim::SamplingController sc(eq, cfg);
    int ffEntries = 0;
    int detailEntries = 0;
    sc.onFlip([&](sim::SamplePhase p) {
        if (p == sim::SamplePhase::FastForward)
            ffEntries += 1;
        else
            detailEntries += 1;
    });
    sc.start();
    eq.schedule(cfg.startupDetail, [&] { sc.noteTransition(); });

    while (eq.now() < cfg.startupDetail)
        ASSERT_TRUE(eq.runOne());
    // The flip fired; the forcing event is still pending at this tick.
    ASSERT_TRUE(eq.runOne());
    EXPECT_FALSE(sc.fastForward());
    EXPECT_EQ(sc.phaseEnd(), cfg.startupDetail + cfg.detailWindow);

    sim::SampleStats st = sc.finalStats();
    EXPECT_EQ(st.transitions, 1u);
    EXPECT_EQ(st.forcedWindows, 1u);
    EXPECT_EQ(st.ffWindows, 1u);     // the zero-length cut gap
    EXPECT_EQ(st.ffTicks, 0u);
    EXPECT_EQ(st.detailTicks, cfg.startupDetail);
    // The model ages exactly once per fast-forward entry; the forced
    // re-entry into detail is not an aging boundary (this is what
    // keeps era promotion single-shot at a coincident flip).
    EXPECT_EQ(ffEntries, 1);
    EXPECT_EQ(detailEntries, 1);

    // The schedule keeps running cleanly past the forced window.
    const Tick horizon = cfg.startupDetail + 3 * cfg.gapWindow;
    while (eq.now() < horizon)
        ASSERT_TRUE(eq.runOne());
    st = sc.finalStats();
    EXPECT_EQ(st.detailTicks + st.ffTicks, eq.now());
}

TEST(SamplingController, ForceDetailExtendsOnlyShortRemainders)
{
    sim::EventQueue eq;
    sim::SamplingConfig cfg = smallWindows();
    sim::SamplingController sc(eq, cfg);
    sc.start();

    // Early in the startup window a full detailWindow still lies
    // ahead: forcing is a no-op.
    eq.schedule(10 * kTicksPerUs, [&] { sc.forceDetail(); });
    while (eq.now() < 10 * kTicksPerUs)
        ASSERT_TRUE(eq.runOne());
    EXPECT_EQ(sc.finalStats().forcedWindows, 0u);
    EXPECT_EQ(sc.phaseEnd(), cfg.startupDetail);

    // Near the end of the window the remainder is short: forcing
    // extends the window to a full detailWindow from now.
    const Tick late = cfg.startupDetail - kTicksPerUs;
    eq.schedule(late, [&] { sc.forceDetail(); });
    while (eq.now() < late)
        ASSERT_TRUE(eq.runOne());
    EXPECT_EQ(sc.finalStats().forcedWindows, 1u);
    EXPECT_EQ(sc.phaseEnd(), late + cfg.detailWindow);
    EXPECT_FALSE(sc.fastForward());

    // The cancelled original boundary must not fire: running past it
    // flips at the extended end only.
    while (eq.now() < late + cfg.detailWindow)
        ASSERT_TRUE(eq.runOne());
    EXPECT_TRUE(sc.fastForward());
}

TEST(SamplingController, ForceDetailBeforeStartOrZeroGapIsNoOp)
{
    sim::EventQueue eq;
    sim::SamplingConfig cfg = smallWindows();
    sim::SamplingController sc(eq, cfg);
    sc.forceDetail();  // before start(): must not schedule or count
    EXPECT_EQ(sc.finalStats().forcedWindows, 0u);
    EXPECT_FALSE(eq.runOne());

    sim::EventQueue eq0;
    sim::SamplingConfig zero;
    zero.gapWindow = 0;
    sim::SamplingController sc0(eq0, zero);
    sc0.start();
    sc0.noteTransition();
    EXPECT_EQ(sc0.finalStats().forcedWindows, 0u);
    EXPECT_EQ(sc0.finalStats().transitions, 1u);
    EXPECT_EQ(sc0.phaseEnd(), kTickNever);
    EXPECT_FALSE(eq0.runOne());
}

TEST(SamplingController, AdaptiveStretchesGapsWhenProbeReportsSteady)
{
    // A drift probe that always reports "steady" must double the gap
    // up to the cap: with maxGapWindow = 8 x gapWindow the stretch
    // walks 2, 4, 8, 8, ... — the histogram fills buckets 1..3 and
    // nothing beyond the cap. Pure event-queue run: the placement is a
    // function of config and probe output alone.
    sim::EventQueue eq;
    sim::SamplingConfig cfg;
    cfg.startupDetail = 10 * kTicksPerUs;
    cfg.detailWindow = 10 * kTicksPerUs;
    cfg.gapWindow = 100 * kTicksPerUs;
    cfg.maxGapWindow = 800 * kTicksPerUs;
    sim::SamplingController sc(eq, cfg);
    sc.driftProbe([] { return 0u; });
    sc.start();

    const Tick horizon = 10 * kTicksPerMs;
    while (eq.now() < horizon)
        ASSERT_TRUE(eq.runOne());

    const sim::SampleStats st = sc.finalStats();
    EXPECT_EQ(st.gapStretch[0], 0u);  // first gap already stretches
    EXPECT_EQ(st.gapStretch[1], 1u);  // 200us
    EXPECT_EQ(st.gapStretch[2], 1u);  // 400us
    EXPECT_GT(st.gapStretch[3], 2u);  // 800us, the cap, repeatedly
    for (int b = 4; b < sim::SampleStats::kGapStretchBuckets; ++b)
        EXPECT_EQ(st.gapStretch[b], 0u) << "bucket " << b;
    // Long gaps in steady phases: coverage far below the fixed
    // cadence's detail share.
    EXPECT_LT(st.coverage(),
              static_cast<double>(cfg.detailWindow) /
                  static_cast<double>(cfg.detailWindow + cfg.gapWindow));

    // Determinism: the same config and probe reproduce the schedule.
    sim::EventQueue eq2;
    sim::SamplingController sc2(eq2, cfg);
    sc2.driftProbe([] { return 0u; });
    sc2.start();
    while (eq2.now() < horizon)
        ASSERT_TRUE(eq2.runOne());
    const sim::SampleStats st2 = sc2.finalStats();
    EXPECT_EQ(st2.detailWindows, st.detailWindows);
    EXPECT_EQ(st2.ffTicks, st.ffTicks);
    for (int b = 0; b < sim::SampleStats::kGapStretchBuckets; ++b)
        EXPECT_EQ(st2.gapStretch[b], st.gapStretch[b]) << "bucket " << b;
}

TEST(SamplingController, DriftOrForcedWindowResetsTheStretch)
{
    sim::EventQueue eq;
    sim::SamplingConfig cfg;
    cfg.startupDetail = 10 * kTicksPerUs;
    cfg.detailWindow = 10 * kTicksPerUs;
    cfg.gapWindow = 100 * kTicksPerUs;
    cfg.maxGapWindow = 800 * kTicksPerUs;
    cfg.driftThresholdPermille = 50;

    // A drifting probe never stretches: every gap lands in bucket 0.
    sim::SamplingController drifting(eq, cfg);
    drifting.driftProbe([] { return 1000u; });
    drifting.start();
    while (eq.now() < 2 * kTicksPerMs)
        ASSERT_TRUE(eq.runOne());
    const sim::SampleStats ds = drifting.finalStats();
    EXPECT_GT(ds.gapStretch[0], 0u);
    for (int b = 1; b < sim::SampleStats::kGapStretchBuckets; ++b)
        EXPECT_EQ(ds.gapStretch[b], 0u) << "bucket " << b;

    // A steady probe stretches; a forced window snaps back to the
    // base gap, after which stretching restarts from 2x.
    sim::EventQueue eq2;
    sim::SamplingController sc(eq2, cfg);
    sc.driftProbe([] { return 0u; });
    sc.start();
    while (eq2.now() < 2 * kTicksPerMs)
        ASSERT_TRUE(eq2.runOne());
    while (!sc.fastForward())
        ASSERT_TRUE(eq2.runOne());
    const sim::SampleStats before = sc.finalStats();
    ASSERT_GT(before.gapStretch[3], 0u);

    sc.forceDetail();
    EXPECT_FALSE(sc.fastForward());
    // Run out the forced detail window; the flip at its end enters
    // the next gap, which starts over from a single doubling.
    const Tick forcedEnd = sc.phaseEnd();
    while (eq2.now() < forcedEnd)
        ASSERT_TRUE(eq2.runOne());
    const sim::SampleStats after = sc.finalStats();
    EXPECT_EQ(after.forcedWindows, 1u);
    EXPECT_EQ(after.gapStretch[1], before.gapStretch[1] + 1);
}

TEST(FastPathModel, ColdModelRefusesToCharge)
{
    uarch::FastPathModel m(4);
    uarch::MissClusterSpec lite;
    lite.liteChains = 2;
    lite.liteChainDepth = 8;
    lite.overlapInstructions = 100;
    Tick elapsed = 0;
    uarch::PerfCounters pc;
    EXPECT_FALSE(m.chargeCluster(lite, 2, elapsed, pc));

    uarch::StoreBurstSpec burst;
    burst.lines = 16;
    EXPECT_FALSE(m.chargeBurst(burst, 2, elapsed, pc));

    // Observations alone do not make the model chargeable: the window
    // must be promoted by age() first.
    uarch::MissClusterSpec full;
    full.chains = {{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12},
                   {13, 14, 15, 16}};
    full.overlapInstructions = 100;
    for (int i = 0; i < 16; ++i) {
        uarch::PerfCounters d;
        m.observeCluster(full, 2, 1000, d);
    }
    lite.liteChains = 4;
    lite.liteChainDepth = 4;
    EXPECT_FALSE(m.chargeCluster(lite, 2, elapsed, pc));
    m.age();
    EXPECT_TRUE(m.chargeCluster(lite, 2, elapsed, pc));
}

TEST(FastPathModel, EmissionConservesObservedMeans)
{
    uarch::FastPathConfig cfg;
    cfg.minClusterObs = 4;
    uarch::FastPathModel m(4, cfg);

    // Observe a fixed shape with a deliberately awkward elapsed value
    // so integer division must round somewhere.
    uarch::MissClusterSpec spec;
    spec.chains = {{1, 2, 3}, {4, 5}};
    spec.overlapInstructions = 50;
    const Tick obsElapsed = 1000003;
    for (int i = 0; i < 4; ++i) {
        uarch::PerfCounters d;
        d.computeTime = 333335;
        d.l3Hits = 5;
        m.observeCluster(spec, 2, obsElapsed, d);
    }
    m.age();

    uarch::MissClusterSpec lite;
    lite.liteChains = 2;
    lite.liteChainDepth = 0;
    lite.overlapInstructions = 50;
    // loadCount must match the observed shape (5 loads).
    lite.liteChains = 5;
    lite.liteChainDepth = 1;

    Tick sumElapsed = 0;
    std::uint64_t sumL3 = 0;
    uarch::PerfCounters pc;
    const int kCharges = 1000;
    for (int i = 0; i < kCharges; ++i) {
        Tick e = 0;
        ASSERT_TRUE(m.chargeCluster(lite, 2, e, pc));
        sumElapsed += e;
        // Every charge is within one tick of the mean.
        EXPECT_NEAR(static_cast<double>(e),
                    static_cast<double>(obsElapsed), 1.0);
    }
    sumL3 = pc.l3Hits;

    // Cumulative emission: totals equal the entitled share exactly
    // (floor), so drift never accumulates.
    const double meanElapsed =
        static_cast<double>(sumElapsed) / kCharges;
    EXPECT_NEAR(meanElapsed, static_cast<double>(obsElapsed), 0.01);
    EXPECT_NEAR(static_cast<double>(sumL3) / kCharges, 5.0, 0.01);
    EXPECT_EQ(pc.instructions, 50u * kCharges);
    EXPECT_EQ(pc.missClusters, static_cast<std::uint64_t>(kCharges));
}

TEST(FastPathModel, OccupancyLanesAreSeparate)
{
    uarch::FastPathConfig cfg;
    cfg.minClusterObs = 2;
    uarch::FastPathModel m(4, cfg);

    uarch::MissClusterSpec spec;
    spec.chains = {{1, 2}};
    // Same shape, very different latency at different occupancy.
    for (int i = 0; i < 2; ++i) {
        uarch::PerfCounters d;
        m.observeCluster(spec, 1, 1000, d);
        m.observeCluster(spec, 4, 9000, d);
    }
    m.age();

    uarch::PerfCounters pc;
    Tick e1 = 0, e4 = 0;
    ASSERT_TRUE(m.chargeCluster(spec, 1, e1, pc));
    ASSERT_TRUE(m.chargeCluster(spec, 4, e4, pc));
    EXPECT_NEAR(static_cast<double>(e1), 1000.0, 1.0);
    EXPECT_NEAR(static_cast<double>(e4), 9000.0, 1.0);
}

TEST(FastPathModel, OperatingPointForkRescalesOnlyTheComputeShare)
{
    uarch::FastPathConfig cfg;
    cfg.minClusterObs = 4;
    uarch::FastPathModel m(4, cfg);
    m.setOperatingPoint(2000);
    EXPECT_EQ(m.operatingPoint(), 2000u);
    EXPECT_EQ(m.operatingPoints(), 1u);

    // Fit one shape: elapsed 1000 of which 600 is compute (scaling)
    // and 400 memory/sync (non-scaling).
    uarch::MissClusterSpec spec;
    spec.chains = {{1, 2, 3}, {4, 5}};
    spec.overlapInstructions = 50;
    for (int i = 0; i < 4; ++i) {
        uarch::PerfCounters d;
        d.computeTime = 600;
        m.observeCluster(spec, 2, 1000, d);
    }
    m.age();

    uarch::MissClusterSpec lite;
    lite.liteChains = 5;
    lite.liteChainDepth = 1;
    lite.overlapInstructions = 50;

    uarch::PerfCounters pc;
    Tick e = 0;
    ASSERT_TRUE(m.chargeCluster(lite, 2, e, pc));
    EXPECT_NEAR(static_cast<double>(e), 1000.0, 1.0);

    // Halving the frequency forks the era: compute doubles, the
    // non-scaling share carries over -> 400 + 1200 = 1600.
    m.setOperatingPoint(1000);
    EXPECT_EQ(m.operatingPoint(), 1000u);
    EXPECT_EQ(m.operatingPoints(), 2u);
    uarch::PerfCounters pc1;
    Tick e1 = 0;
    ASSERT_TRUE(m.chargeCluster(lite, 2, e1, pc1));
    EXPECT_NEAR(static_cast<double>(e1), 1600.0, 1.0);

    // Revisiting the original point resumes its own era unchanged —
    // no second fork, no accumulation of rescaling error.
    m.setOperatingPoint(2000);
    EXPECT_EQ(m.operatingPoints(), 2u);
    uarch::PerfCounters pc2;
    Tick e2 = 0;
    ASSERT_TRUE(m.chargeCluster(lite, 2, e2, pc2));
    EXPECT_NEAR(static_cast<double>(e2), 1000.0, 1.0);
}

TEST(FastPathModel, AgeOnEmptyWindowKeepsTheEra)
{
    // age() at a flip with nothing observed since the last promotion
    // (e.g. a forced detail window that saw no clusters) must neither
    // clear the charging era nor restart its emission bookkeeping —
    // this is what makes a transition landing exactly on a detail ->
    // gap flip tick safe against double-charging.
    uarch::FastPathConfig cfg;
    cfg.minClusterObs = 4;
    uarch::FastPathModel m(4, cfg);

    uarch::MissClusterSpec spec;
    spec.chains = {{1, 2, 3}, {4, 5}};
    spec.overlapInstructions = 50;
    for (int i = 0; i < 4; ++i) {
        uarch::PerfCounters d;
        d.computeTime = 600;
        m.observeCluster(spec, 2, 1000, d);
    }
    m.age();

    uarch::MissClusterSpec lite;
    lite.liteChains = 5;
    lite.liteChainDepth = 1;
    lite.overlapInstructions = 50;

    uarch::PerfCounters pc;
    Tick sum = 0;
    for (int i = 0; i < 3; ++i) {
        Tick e = 0;
        ASSERT_TRUE(m.chargeCluster(lite, 2, e, pc));
        sum += e;
        m.age();  // empty window: must be a no-op for charging
    }
    // Cumulative emission across the interleaved age() calls matches
    // the era mean exactly — no reset, no double emission.
    EXPECT_NEAR(static_cast<double>(sum) / 3.0, 1000.0, 1.0);
}

TEST(FastPathModel, DriftPermilleComparesConsecutivePromotions)
{
    uarch::FastPathConfig cfg;
    cfg.minClusterObs = 4;
    uarch::FastPathModel m(4, cfg);

    uarch::MissClusterSpec spec;
    spec.chains = {{1, 2, 3}, {4, 5}};
    spec.overlapInstructions = 50;
    auto window = [&](Tick elapsed) {
        for (int i = 0; i < 4; ++i) {
            uarch::PerfCounters d;
            d.computeTime = 600;
            m.observeCluster(spec, 2, elapsed, d);
        }
    };

    // First promotion replaces no live era: drift is unknowable and
    // must be reported as such (callers treat it as drifting).
    window(1000);
    m.age();
    EXPECT_EQ(m.lastDriftPermille(), uarch::FastPathModel::kDriftUnknown);

    // Identical window: zero drift.
    window(1000);
    m.age();
    EXPECT_EQ(m.lastDriftPermille(), 0u);

    // 10% slower window: 100 permille against the era it replaces.
    window(1100);
    m.age();
    EXPECT_EQ(m.lastDriftPermille(), 100u);

    // Nothing new observed: nothing promoted, drift unknown again.
    m.age();
    EXPECT_EQ(m.lastDriftPermille(), uarch::FastPathModel::kDriftUnknown);
}

TEST(SampledRun, CompletesAndCoversFractionOfTime)
{
    exp::RunOptions opts;
    opts.mode = exp::SimMode::Sampled;
    opts.sampling.startupDetail = 10 * kTicksPerUs;
    opts.sampling.detailWindow = 5 * kTicksPerUs;
    opts.sampling.gapWindow = 45 * kTicksPerUs;
    auto out = exp::runFixed(wl::syntheticSmall(2, 200),
                             Frequency::ghz(2.0), opts);

    EXPECT_EQ(out.mode, exp::SimMode::Sampled);
    EXPECT_GT(out.totalTime, 0u);
    EXPECT_GT(out.sampling.ffWindows, 0u);
    EXPECT_GT(out.sampling.ffActions, 0u);
    EXPECT_GT(out.sampling.ffCommits, 0u);
    // Batching: many actions per commit event, or the mode is useless.
    EXPECT_GT(out.sampling.ffActions, 4 * out.sampling.ffCommits);
    // Most of simulated time was fast-forwarded.
    EXPECT_LT(out.sampling.coverage(), 0.5);
    // The observation surface stays well-formed.
    EXPECT_FALSE(out.record.epochs.empty());
    EXPECT_EQ(out.record.totalTime, out.totalTime);
}

TEST(SampledRun, SameSeedBitIdentical)
{
    exp::RunOptions opts;
    opts.mode = exp::SimMode::Sampled;
    opts.sampling.startupDetail = 10 * kTicksPerUs;
    opts.sampling.detailWindow = 5 * kTicksPerUs;
    opts.sampling.gapWindow = 45 * kTicksPerUs;
    opts.seed = 7;
    auto a = exp::runFixed(wl::syntheticSmall(2, 120),
                           Frequency::ghz(2.0), opts);
    auto b = exp::runFixed(wl::syntheticSmall(2, 120),
                           Frequency::ghz(2.0), opts);
    EXPECT_EQ(exp::sweep::fingerprintRun(a), exp::sweep::fingerprintRun(b));
    EXPECT_GT(a.sampling.ffActions, 0u);
    EXPECT_EQ(a.sampling.ffActions, b.sampling.ffActions);
    EXPECT_EQ(a.sampling.ffFallbacks, b.sampling.ffFallbacks);
}

TEST(SampledRun, ZeroGapMatchesExactBitForBit)
{
    exp::RunOptions exact;
    exact.seed = 11;
    auto e = exp::runFixed(wl::syntheticSmall(2, 40),
                           Frequency::ghz(2.0), exact);

    exp::RunOptions sampled = exact;
    sampled.mode = exp::SimMode::Sampled;
    sampled.sampling.gapWindow = 0;
    auto s = exp::runFixed(wl::syntheticSmall(2, 40),
                           Frequency::ghz(2.0), sampled);

    EXPECT_EQ(exp::sweep::fingerprintRun(e), exp::sweep::fingerprintRun(s));
    EXPECT_EQ(s.sampling.ffActions, 0u);
    EXPECT_EQ(s.sampling.ffWindows, 0u);
}

TEST(SampledRun, RunShorterThanStartupWindowMatchesExact)
{
    // A run that ends inside the startup detail window never
    // fast-forwards, so it must equal the exact run bit for bit.
    exp::RunOptions exact;
    exact.seed = 3;
    auto e = exp::runFixed(wl::syntheticSmall(1, 2),
                           Frequency::ghz(2.0), exact);

    exp::RunOptions sampled = exact;
    sampled.mode = exp::SimMode::Sampled;
    sampled.sampling.startupDetail = 100 * kTicksPerMs;
    ASSERT_LT(e.totalTime, sampled.sampling.startupDetail);
    auto s = exp::runFixed(wl::syntheticSmall(1, 2),
                           Frequency::ghz(2.0), sampled);

    EXPECT_EQ(exp::sweep::fingerprintRun(e), exp::sweep::fingerprintRun(s));
    EXPECT_EQ(s.sampling.ffActions, 0u);
}

TEST(SampledRun, ManagedRunAcceptsSampledMode)
{
    exp::RunOptions opts;
    opts.mode = exp::SimMode::Sampled;
    opts.sampling.startupDetail = 10 * kTicksPerUs;
    opts.sampling.detailWindow = 5 * kTicksPerUs;
    opts.sampling.gapWindow = 45 * kTicksPerUs;
    mgr::ManagerConfig mc;
    auto table = power::VfTable::haswell();
    auto out = exp::runManaged(wl::syntheticSmall(2, 400), mc, table,
                               opts);

    EXPECT_EQ(out.mode, exp::SimMode::Sampled);
    EXPECT_GT(out.totalTime, 0u);
    EXPECT_GT(out.sampling.ffActions, 0u);
    EXPECT_LT(out.sampling.coverage(), 1.0);
    // Every DVFS transition the manager performed was observed by the
    // controller (noteTransition), and each one forced detail.
    EXPECT_EQ(out.sampling.transitions, out.transitions);
    if (out.transitions > 0)
        EXPECT_GT(out.sampling.forcedWindows, 0u);
}

TEST(SampledRun, ManagedSampledSameSeedBitIdentical)
{
    exp::RunOptions opts;
    opts.mode = exp::SimMode::Sampled;
    opts.sampling.startupDetail = 10 * kTicksPerUs;
    opts.sampling.detailWindow = 5 * kTicksPerUs;
    opts.sampling.gapWindow = 45 * kTicksPerUs;
    opts.seed = 7;
    mgr::ManagerConfig mc;
    auto table = power::VfTable::haswell();
    auto a = exp::runManaged(wl::syntheticSmall(2, 200), mc, table, opts);
    auto b = exp::runManaged(wl::syntheticSmall(2, 200), mc, table, opts);
    EXPECT_EQ(exp::sweep::fingerprintRun(a),
              exp::sweep::fingerprintRun(b));
    EXPECT_EQ(a.sampling.ffActions, b.sampling.ffActions);
    EXPECT_EQ(a.sampling.forcedWindows, b.sampling.forcedWindows);
    EXPECT_EQ(a.transitions, b.transitions);
}

TEST(SampledRun, ManagedZeroGapMatchesExactManagedBitForBit)
{
    mgr::ManagerConfig mc;
    auto table = power::VfTable::haswell();

    exp::RunOptions exact;
    exact.seed = 11;
    auto e = exp::runManaged(wl::syntheticSmall(2, 120), mc, table, exact);

    exp::RunOptions sampled = exact;
    sampled.mode = exp::SimMode::Sampled;
    sampled.sampling.gapWindow = 0;
    auto s = exp::runManaged(wl::syntheticSmall(2, 120), mc, table,
                             sampled);

    EXPECT_EQ(exp::sweep::fingerprintRun(e),
              exp::sweep::fingerprintRun(s));
    EXPECT_EQ(s.totalTime, e.totalTime);
    EXPECT_EQ(s.transitions, e.transitions);
    EXPECT_EQ(s.sampling.ffActions, 0u);
    EXPECT_EQ(s.sampling.forcedWindows, 0u);
}

TEST(SimMode, NamesRoundTrip)
{
    EXPECT_STREQ(exp::simModeName(exp::SimMode::Exact), "exact");
    EXPECT_STREQ(exp::simModeName(exp::SimMode::Sampled), "sampled");
    EXPECT_EQ(exp::parseSimMode("exact"), exp::SimMode::Exact);
    EXPECT_EQ(exp::parseSimMode("sampled"), exp::SimMode::Sampled);
    EXPECT_DEATH(exp::parseSimMode("fast"), "unknown simulation mode");
}

TEST(SimMode, ParseIsCaseInsensitive)
{
    EXPECT_EQ(exp::parseSimMode("Exact"), exp::SimMode::Exact);
    EXPECT_EQ(exp::parseSimMode("EXACT"), exp::SimMode::Exact);
    EXPECT_EQ(exp::parseSimMode("Sampled"), exp::SimMode::Sampled);
    EXPECT_EQ(exp::parseSimMode("SAMPLED"), exp::SimMode::Sampled);
}

TEST(SimMode, ParseFatalNamesTheOffendingFlag)
{
    EXPECT_DEATH(exp::parseSimMode("fast", "--sim-mode"),
                 "--sim-mode: unknown simulation mode 'fast'");
    // The default flag name appears when none is given.
    EXPECT_DEATH(exp::parseSimMode("turbo"),
                 "--mode: unknown simulation mode 'turbo'");
}
