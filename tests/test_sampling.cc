/**
 * @file
 * Sampled fast-path simulation: controller schedule, online model
 * conservation, and end-to-end sampled runs (DESIGN.md section 11).
 *
 * The contracts under test:
 *  - the SamplingController's window placement is a pure function of
 *    its config (never of workload content),
 *  - the FastPathModel's integer emission conserves observed sums
 *    (emitted totals track observed means with zero long-run drift),
 *  - a sampled run completes, covers only a fraction of simulated
 *    time in detail, and reproduces bit-identically;
 *  - gapWindow == 0 disables fast-forward entirely (exact behaviour).
 */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "exp/sweep/fingerprint.hh"
#include "sim/event_queue.hh"
#include "sim/sampling.hh"
#include "uarch/fastpath.hh"
#include "wl/suite.hh"

using namespace dvfs;

namespace {

sim::SamplingConfig
smallWindows()
{
    sim::SamplingConfig cfg;
    cfg.startupDetail = 50 * kTicksPerUs;
    cfg.detailWindow = 20 * kTicksPerUs;
    cfg.gapWindow = 180 * kTicksPerUs;
    return cfg;
}

} // namespace

TEST(SamplingController, WindowScheduleIsPureFunctionOfConfig)
{
    sim::EventQueue eq;
    sim::SamplingConfig cfg = smallWindows();
    sim::SamplingController sc(eq, cfg);
    EXPECT_EQ(sc.phase(), sim::SamplePhase::Detail);

    sc.start();
    // Startup detail window: [0, 50us), then alternating 180us/20us.
    EXPECT_FALSE(sc.fastForward());
    EXPECT_EQ(sc.phaseEnd(), cfg.startupDetail);

    while (eq.now() < cfg.startupDetail)
        ASSERT_TRUE(eq.runOne());
    EXPECT_TRUE(sc.fastForward());
    EXPECT_EQ(sc.phaseEnd(), cfg.startupDetail + cfg.gapWindow);

    while (eq.now() < cfg.startupDetail + cfg.gapWindow)
        ASSERT_TRUE(eq.runOne());
    EXPECT_FALSE(sc.fastForward());
    EXPECT_EQ(sc.phaseEnd(),
              cfg.startupDetail + cfg.gapWindow + cfg.detailWindow);

    const sim::SampleStats st = sc.finalStats();
    EXPECT_EQ(st.detailWindows, 1u);
    EXPECT_EQ(st.ffWindows, 1u);
    EXPECT_EQ(st.detailTicks, cfg.startupDetail);
    EXPECT_EQ(st.ffTicks, cfg.gapWindow);
}

TEST(SamplingController, ZeroGapNeverFastForwards)
{
    sim::EventQueue eq;
    sim::SamplingConfig cfg;
    cfg.gapWindow = 0;
    sim::SamplingController sc(eq, cfg);
    sc.start();
    EXPECT_FALSE(sc.fastForward());
    EXPECT_EQ(sc.phaseEnd(), kTickNever);
    // No flip events were scheduled at all.
    EXPECT_FALSE(eq.runOne());
}

TEST(SamplingController, FinalStatsIncludePartialPhase)
{
    sim::EventQueue eq;
    sim::SamplingConfig cfg = smallWindows();
    sim::SamplingController sc(eq, cfg);
    sc.start();
    // Advance half-way into the startup window without reaching it.
    eq.schedule(cfg.startupDetail / 2, [] {});
    ASSERT_TRUE(eq.runOne());
    const sim::SampleStats st = sc.finalStats();
    EXPECT_EQ(st.detailTicks, cfg.startupDetail / 2);
    EXPECT_EQ(st.detailWindows, 0u);
}

TEST(FastPathModel, ColdModelRefusesToCharge)
{
    uarch::FastPathModel m(4);
    uarch::MissClusterSpec lite;
    lite.liteChains = 2;
    lite.liteChainDepth = 8;
    lite.overlapInstructions = 100;
    Tick elapsed = 0;
    uarch::PerfCounters pc;
    EXPECT_FALSE(m.chargeCluster(lite, 2, elapsed, pc));

    uarch::StoreBurstSpec burst;
    burst.lines = 16;
    EXPECT_FALSE(m.chargeBurst(burst, 2, elapsed, pc));

    // Observations alone do not make the model chargeable: the window
    // must be promoted by age() first.
    uarch::MissClusterSpec full;
    full.chains = {{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12},
                   {13, 14, 15, 16}};
    full.overlapInstructions = 100;
    for (int i = 0; i < 16; ++i) {
        uarch::PerfCounters d;
        m.observeCluster(full, 2, 1000, d);
    }
    lite.liteChains = 4;
    lite.liteChainDepth = 4;
    EXPECT_FALSE(m.chargeCluster(lite, 2, elapsed, pc));
    m.age();
    EXPECT_TRUE(m.chargeCluster(lite, 2, elapsed, pc));
}

TEST(FastPathModel, EmissionConservesObservedMeans)
{
    uarch::FastPathConfig cfg;
    cfg.minClusterObs = 4;
    uarch::FastPathModel m(4, cfg);

    // Observe a fixed shape with a deliberately awkward elapsed value
    // so integer division must round somewhere.
    uarch::MissClusterSpec spec;
    spec.chains = {{1, 2, 3}, {4, 5}};
    spec.overlapInstructions = 50;
    const Tick obsElapsed = 1000003;
    for (int i = 0; i < 4; ++i) {
        uarch::PerfCounters d;
        d.computeTime = 333335;
        d.l3Hits = 5;
        m.observeCluster(spec, 2, obsElapsed, d);
    }
    m.age();

    uarch::MissClusterSpec lite;
    lite.liteChains = 2;
    lite.liteChainDepth = 0;
    lite.overlapInstructions = 50;
    // loadCount must match the observed shape (5 loads).
    lite.liteChains = 5;
    lite.liteChainDepth = 1;

    Tick sumElapsed = 0;
    std::uint64_t sumL3 = 0;
    uarch::PerfCounters pc;
    const int kCharges = 1000;
    for (int i = 0; i < kCharges; ++i) {
        Tick e = 0;
        ASSERT_TRUE(m.chargeCluster(lite, 2, e, pc));
        sumElapsed += e;
        // Every charge is within one tick of the mean.
        EXPECT_NEAR(static_cast<double>(e),
                    static_cast<double>(obsElapsed), 1.0);
    }
    sumL3 = pc.l3Hits;

    // Cumulative emission: totals equal the entitled share exactly
    // (floor), so drift never accumulates.
    const double meanElapsed =
        static_cast<double>(sumElapsed) / kCharges;
    EXPECT_NEAR(meanElapsed, static_cast<double>(obsElapsed), 0.01);
    EXPECT_NEAR(static_cast<double>(sumL3) / kCharges, 5.0, 0.01);
    EXPECT_EQ(pc.instructions, 50u * kCharges);
    EXPECT_EQ(pc.missClusters, static_cast<std::uint64_t>(kCharges));
}

TEST(FastPathModel, OccupancyLanesAreSeparate)
{
    uarch::FastPathConfig cfg;
    cfg.minClusterObs = 2;
    uarch::FastPathModel m(4, cfg);

    uarch::MissClusterSpec spec;
    spec.chains = {{1, 2}};
    // Same shape, very different latency at different occupancy.
    for (int i = 0; i < 2; ++i) {
        uarch::PerfCounters d;
        m.observeCluster(spec, 1, 1000, d);
        m.observeCluster(spec, 4, 9000, d);
    }
    m.age();

    uarch::PerfCounters pc;
    Tick e1 = 0, e4 = 0;
    ASSERT_TRUE(m.chargeCluster(spec, 1, e1, pc));
    ASSERT_TRUE(m.chargeCluster(spec, 4, e4, pc));
    EXPECT_NEAR(static_cast<double>(e1), 1000.0, 1.0);
    EXPECT_NEAR(static_cast<double>(e4), 9000.0, 1.0);
}

TEST(SampledRun, CompletesAndCoversFractionOfTime)
{
    exp::RunOptions opts;
    opts.mode = exp::SimMode::Sampled;
    opts.sampling.startupDetail = 10 * kTicksPerUs;
    opts.sampling.detailWindow = 5 * kTicksPerUs;
    opts.sampling.gapWindow = 45 * kTicksPerUs;
    auto out = exp::runFixed(wl::syntheticSmall(2, 200),
                             Frequency::ghz(2.0), opts);

    EXPECT_EQ(out.mode, exp::SimMode::Sampled);
    EXPECT_GT(out.totalTime, 0u);
    EXPECT_GT(out.sampling.ffWindows, 0u);
    EXPECT_GT(out.sampling.ffActions, 0u);
    EXPECT_GT(out.sampling.ffCommits, 0u);
    // Batching: many actions per commit event, or the mode is useless.
    EXPECT_GT(out.sampling.ffActions, 4 * out.sampling.ffCommits);
    // Most of simulated time was fast-forwarded.
    EXPECT_LT(out.sampling.coverage(), 0.5);
    // The observation surface stays well-formed.
    EXPECT_FALSE(out.record.epochs.empty());
    EXPECT_EQ(out.record.totalTime, out.totalTime);
}

TEST(SampledRun, SameSeedBitIdentical)
{
    exp::RunOptions opts;
    opts.mode = exp::SimMode::Sampled;
    opts.sampling.startupDetail = 10 * kTicksPerUs;
    opts.sampling.detailWindow = 5 * kTicksPerUs;
    opts.sampling.gapWindow = 45 * kTicksPerUs;
    opts.seed = 7;
    auto a = exp::runFixed(wl::syntheticSmall(2, 120),
                           Frequency::ghz(2.0), opts);
    auto b = exp::runFixed(wl::syntheticSmall(2, 120),
                           Frequency::ghz(2.0), opts);
    EXPECT_EQ(exp::sweep::fingerprintRun(a), exp::sweep::fingerprintRun(b));
    EXPECT_GT(a.sampling.ffActions, 0u);
    EXPECT_EQ(a.sampling.ffActions, b.sampling.ffActions);
    EXPECT_EQ(a.sampling.ffFallbacks, b.sampling.ffFallbacks);
}

TEST(SampledRun, ZeroGapMatchesExactBitForBit)
{
    exp::RunOptions exact;
    exact.seed = 11;
    auto e = exp::runFixed(wl::syntheticSmall(2, 40),
                           Frequency::ghz(2.0), exact);

    exp::RunOptions sampled = exact;
    sampled.mode = exp::SimMode::Sampled;
    sampled.sampling.gapWindow = 0;
    auto s = exp::runFixed(wl::syntheticSmall(2, 40),
                           Frequency::ghz(2.0), sampled);

    EXPECT_EQ(exp::sweep::fingerprintRun(e), exp::sweep::fingerprintRun(s));
    EXPECT_EQ(s.sampling.ffActions, 0u);
    EXPECT_EQ(s.sampling.ffWindows, 0u);
}

TEST(SampledRun, RunShorterThanStartupWindowMatchesExact)
{
    // A run that ends inside the startup detail window never
    // fast-forwards, so it must equal the exact run bit for bit.
    exp::RunOptions exact;
    exact.seed = 3;
    auto e = exp::runFixed(wl::syntheticSmall(1, 2),
                           Frequency::ghz(2.0), exact);

    exp::RunOptions sampled = exact;
    sampled.mode = exp::SimMode::Sampled;
    sampled.sampling.startupDetail = 100 * kTicksPerMs;
    ASSERT_LT(e.totalTime, sampled.sampling.startupDetail);
    auto s = exp::runFixed(wl::syntheticSmall(1, 2),
                           Frequency::ghz(2.0), sampled);

    EXPECT_EQ(exp::sweep::fingerprintRun(e), exp::sweep::fingerprintRun(s));
    EXPECT_EQ(s.sampling.ffActions, 0u);
}

TEST(SampledRun, ManagedRunRejectsSampledMode)
{
    exp::RunOptions opts;
    opts.mode = exp::SimMode::Sampled;
    mgr::ManagerConfig mc;
    auto table = power::VfTable::haswell();
    EXPECT_DEATH(exp::runManaged(wl::syntheticSmall(1, 2), mc, table, opts),
                 "requires SimMode::Exact");
}

TEST(SimMode, NamesRoundTrip)
{
    EXPECT_STREQ(exp::simModeName(exp::SimMode::Exact), "exact");
    EXPECT_STREQ(exp::simModeName(exp::SimMode::Sampled), "sampled");
    EXPECT_EQ(exp::parseSimMode("exact"), exp::SimMode::Exact);
    EXPECT_EQ(exp::parseSimMode("sampled"), exp::SimMode::Sampled);
    EXPECT_DEATH(exp::parseSimMode("fast"), "unknown simulation mode");
}
