/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef DVFS_TESTS_TEST_UTIL_HH
#define DVFS_TESTS_TEST_UTIL_HH

#include <functional>
#include <memory>
#include <vector>

#include "os/system.hh"

namespace dvfs::test {

/** A thread program replaying a fixed list of actions, then exiting. */
class ScriptProgram : public os::ThreadProgram
{
  public:
    explicit ScriptProgram(std::vector<os::Action> script)
        : _script(std::move(script))
    {
    }

    os::Action
    next(os::ThreadContext &) override
    {
        if (_pos < _script.size())
            return _script[_pos++];
        return os::Action::makeExit();
    }

  private:
    std::vector<os::Action> _script;
    std::size_t _pos = 0;
};

/** A thread program delegating to a lambda. */
class LambdaProgram : public os::ThreadProgram
{
  public:
    using Fn = std::function<os::Action(os::ThreadContext &)>;

    explicit LambdaProgram(Fn fn) : _fn(std::move(fn)) {}

    os::Action
    next(os::ThreadContext &ctx) override
    {
        return _fn(ctx);
    }

  private:
    Fn _fn;
};

/** Collects the sync-event trace for assertions. */
class TraceCollector : public os::SyncListener
{
  public:
    void
    onSyncEvent(const os::SyncEvent &ev, const os::System &) override
    {
        events.push_back(ev);
    }

    /** Count events of one kind. */
    std::size_t
    count(os::SyncEventKind kind) const
    {
        std::size_t n = 0;
        for (const auto &e : events) {
            if (e.kind == kind)
                ++n;
        }
        return n;
    }

    std::vector<os::SyncEvent> events;
};

/** Convenience: add a scripted thread. */
inline os::ThreadId
addScript(os::System &sys, const std::string &name,
          std::vector<os::Action> script, bool service = false)
{
    return sys.addThread(name,
                         std::make_unique<ScriptProgram>(std::move(script)),
                         service);
}

} // namespace dvfs::test

#endif // DVFS_TESTS_TEST_UTIL_HH
