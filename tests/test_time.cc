/**
 * @file
 * Unit tests for the tick/frequency foundation (sim/time.hh).
 */

#include <gtest/gtest.h>

#include "sim/time.hh"

using namespace dvfs;

TEST(Time, TickConstantsAreConsistent)
{
    EXPECT_EQ(kTicksPerNs, 1000 * kTicksPerPs);
    EXPECT_EQ(kTicksPerUs, 1000 * kTicksPerNs);
    EXPECT_EQ(kTicksPerMs, 1000 * kTicksPerUs);
    EXPECT_EQ(kTicksPerSec, 1000 * kTicksPerMs);
}

TEST(Time, ConversionsRoundTrip)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerSec), 1.0);
    EXPECT_DOUBLE_EQ(ticksToMs(kTicksPerMs), 1.0);
    EXPECT_DOUBLE_EQ(ticksToUs(kTicksPerUs), 1.0);
    EXPECT_DOUBLE_EQ(ticksToNs(kTicksPerNs), 1.0);
    EXPECT_EQ(secondsToTicks(2.5), 2 * kTicksPerSec + 500 * kTicksPerMs);
    EXPECT_EQ(nsToTicks(13.75), 13'750'000u);
}

TEST(Frequency, DefaultIsInvalid)
{
    Frequency f;
    EXPECT_FALSE(f.valid());
    EXPECT_EQ(f.toMHz(), 0u);
    EXPECT_EQ(f.toString(), "<invalid>");
}

TEST(Frequency, Constructors)
{
    EXPECT_EQ(Frequency::mhz(1500).toMHz(), 1500u);
    EXPECT_EQ(Frequency::ghz(1.5).toMHz(), 1500u);
    EXPECT_EQ(Frequency::ghz(2.125).toMHz(), 2125u);
    EXPECT_DOUBLE_EQ(Frequency::ghz(4.0).toGHz(), 4.0);
    EXPECT_DOUBLE_EQ(Frequency::mhz(1000).toHz(), 1e9);
}

TEST(Frequency, PeriodAtOneGHzIsOneNs)
{
    Frequency f = Frequency::ghz(1.0);
    EXPECT_DOUBLE_EQ(f.periodTicks(), static_cast<double>(kTicksPerNs));
    EXPECT_EQ(f.cyclesToTicks(1.0), kTicksPerNs);
    EXPECT_EQ(f.cyclesToTicks(1000.0), kTicksPerUs);
}

TEST(Frequency, Ordering)
{
    EXPECT_LT(Frequency::ghz(1.0), Frequency::ghz(2.0));
    EXPECT_EQ(Frequency::ghz(1.0), Frequency::mhz(1000));
    EXPECT_GT(Frequency::mhz(1125), Frequency::mhz(1000));
}

TEST(Frequency, ToString)
{
    EXPECT_EQ(Frequency::ghz(1.0).toString(), "1.0 GHz");
    EXPECT_EQ(Frequency::ghz(4.0).toString(), "4.0 GHz");
    EXPECT_EQ(Frequency::mhz(1125).toString(), "1.125 GHz");
}

/** Property sweep: cycles->ticks->cycles round trip over the whole
 * DVFS operating range at 125 MHz steps. */
class FrequencyRoundTrip : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FrequencyRoundTrip, CycleConversionErrorIsTiny)
{
    Frequency f = Frequency::mhz(GetParam());
    for (double cycles : {1.0, 17.0, 1000.0, 123456.0, 9.9e6}) {
        Tick t = f.cyclesToTicks(cycles);
        double back = f.ticksToCycles(t);
        EXPECT_NEAR(back, cycles, cycles * 1e-5 + 0.01)
            << "at " << f.toString();
    }
}

TEST_P(FrequencyRoundTrip, PeriodTimesFrequencyIsUnity)
{
    Frequency f = Frequency::mhz(GetParam());
    EXPECT_NEAR(f.periodTicks() * f.toHz(),
                static_cast<double>(kTicksPerSec), 1.0);
}

INSTANTIATE_TEST_SUITE_P(DvfsRange, FrequencyRoundTrip,
                         ::testing::Values(1000, 1125, 1250, 1375, 1500,
                                           1750, 2000, 2500, 3000, 3375,
                                           3625, 4000));
