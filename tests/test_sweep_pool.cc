/**
 * @file
 * Work-stealing sweep pool: worker-count edge cases, index-keyed
 * aggregation, failure propagation and cancellation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/sweep/pool.hh"

using namespace dvfs::exp::sweep;

TEST(SweepPool, ZeroWorkersIsFatal)
{
    EXPECT_EXIT(runIndexed(4, 0, [](std::size_t) {}),
                ::testing::ExitedWithCode(1), "worker count");
}

TEST(SweepPool, SingleWorkerRunsInIndexOrder)
{
    std::vector<std::size_t> order;
    runIndexed(16, 1, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SweepPool, EveryIndexRunsExactlyOnce)
{
    for (unsigned workers : {1u, 2u, 3u, 8u}) {
        std::vector<std::atomic<int>> hits(100);
        runIndexed(hits.size(), workers,
                   [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " workers "
                                         << workers;
    }
}

TEST(SweepPool, MoreWorkersThanCells)
{
    std::atomic<std::size_t> ran{0};
    runIndexed(3, 16, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 3u);
}

TEST(SweepPool, ZeroCellsIsANoOp)
{
    bool ran = false;
    runIndexed(0, 4, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(SweepPool, ResultsKeyedByIndexNotSchedule)
{
    const std::size_t n = 64;
    auto out = sweepMap<std::size_t>(
        n, 8, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(SweepPool, FailureReportsCellIndex)
{
    for (unsigned workers : {1u, 4u}) {
        try {
            runIndexed(10, workers, [](std::size_t i) {
                if (i == 7)
                    throw std::runtime_error("cell seven exploded");
            });
            FAIL() << "expected SweepError (workers=" << workers << ")";
        } catch (const SweepError &e) {
            EXPECT_EQ(e.cell(), 7u);
            EXPECT_NE(std::string(e.what()).find("cell seven exploded"),
                      std::string::npos);
        }
    }
}

TEST(SweepPool, FailureCancelsRemainingCells)
{
    // Cell 0 fails immediately; every other cell sleeps long enough
    // that cancellation must beat it to the punch. With 2 workers and
    // 64 cells, a full run would take >300 ms of sleeping; require
    // that most of the grid was skipped.
    std::atomic<std::size_t> executed{0};
    try {
        runIndexed(64, 2, [&](std::size_t i) {
            if (i == 0)
                throw std::runtime_error("fail fast");
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            ++executed;
        });
        FAIL() << "expected SweepError";
    } catch (const SweepError &e) {
        EXPECT_EQ(e.cell(), 0u);
    }
    EXPECT_LT(executed.load(), 64u);
}

TEST(SweepPool, FirstFailureWinsWhenSerial)
{
    // Serial mode visits cells in index order, so the reported cell
    // is always the lowest failing index.
    try {
        runIndexed(10, 1, [](std::size_t i) {
            if (i >= 3)
                throw std::runtime_error("boom");
        });
        FAIL() << "expected SweepError";
    } catch (const SweepError &e) {
        EXPECT_EQ(e.cell(), 3u);
    }
}

TEST(SweepPool, PoolIsReusableAfterFailure)
{
    // A failed run must leave no residue: the next call works.
    EXPECT_THROW(
        runIndexed(4, 2,
                   [](std::size_t) { throw std::runtime_error("x"); }),
        SweepError);
    std::atomic<std::size_t> ran{0};
    runIndexed(4, 2, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 4u);
}

TEST(SweepPool, ProgressCallbackMonotoneWhenSerial)
{
    std::vector<std::size_t> done_values;
    runIndexed(
        20, 1, [](std::size_t) {},
        [&](std::size_t done, std::size_t total) {
            EXPECT_EQ(total, 20u);
            done_values.push_back(done);
        });
    ASSERT_EQ(done_values.size(), 20u);
    for (std::size_t i = 0; i < done_values.size(); ++i)
        EXPECT_EQ(done_values[i], i + 1);
}

TEST(SweepPool, ProgressCallbackCoversEveryCountParallel)
{
    // Counts may arrive out of order across workers (the counter is
    // bumped outside the callback lock), but each of 1..n exactly once.
    std::vector<std::size_t> done_values;
    runIndexed(
        20, 4, [](std::size_t) {},
        [&](std::size_t done, std::size_t total) {
            EXPECT_EQ(total, 20u);
            done_values.push_back(done);
        });
    ASSERT_EQ(done_values.size(), 20u);
    std::sort(done_values.begin(), done_values.end());
    for (std::size_t i = 0; i < done_values.size(); ++i)
        EXPECT_EQ(done_values[i], i + 1);
}

TEST(SweepPool, DefaultWorkersIsPositive)
{
    EXPECT_GE(defaultWorkers(), 1u);
}
