/**
 * @file
 * Sweep stress tests (label: slow). Heavier grids and many repeats of
 * the pool machinery — the configurations most likely to surface a
 * race under ThreadSanitizer or a latent aggregation bug.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "exp/sweep/fingerprint.hh"
#include "exp/sweep/pool.hh"
#include "exp/sweep/sweep.hh"

using namespace dvfs;
using exp::sweep::SweepRunner;
using exp::sweep::SweepSpec;

TEST(SweepStress, ManyTinyCellsManyWorkers)
{
    // ~2000 near-empty cells across heavily oversubscribed workers:
    // maximum scheduling churn per unit of work.
    const std::size_t n = 2000;
    for (unsigned workers : {4u, 16u, 32u}) {
        auto out = exp::sweep::sweepMap<std::uint64_t>(
            n, workers, [](std::size_t i) {
                // A little arithmetic so the cell isn't optimized away.
                std::uint64_t h = 0xcbf29ce484222325ULL;
                h = (h ^ i) * 0x100000001b3ULL;
                return h;
            });
        ASSERT_EQ(out.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t h = 0xcbf29ce484222325ULL;
            h = (h ^ i) * 0x100000001b3ULL;
            ASSERT_EQ(out[i], h) << "cell " << i << " workers " << workers;
        }
    }
}

TEST(SweepStress, RepeatedFailuresLeaveNoResidue)
{
    // Alternate failing and clean runs on fresh pools; under
    // DVFS_SANITIZE this doubles as a leak check for the
    // exception/cancellation path.
    for (int round = 0; round < 25; ++round) {
        const auto bad =
            static_cast<std::size_t>(round % 7);
        try {
            exp::sweep::runIndexed(32, 4, [&](std::size_t i) {
                if (i == bad)
                    throw std::runtime_error("stress failure");
            });
            FAIL() << "round " << round << " did not throw";
        } catch (const exp::sweep::SweepError &e) {
            EXPECT_EQ(e.cell(), bad);
        }
        std::atomic<std::size_t> ran{0};
        exp::sweep::runIndexed(32, 4, [&](std::size_t) { ++ran; });
        EXPECT_EQ(ran.load(), 32u);
    }
}

TEST(SweepStress, LargerSimulationGridBitStable)
{
    // A real simulation grid, big enough that work stealing actually
    // migrates cells between workers, repeated to catch flaky
    // nondeterminism rather than a single lucky schedule.
    SweepSpec spec;
    spec.workloads = {wl::syntheticSmall(2, 40), wl::syntheticSmall(4, 30)};
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(2.0),
                        Frequency::ghz(3.0), Frequency::ghz(4.0)};
    spec.seeds = SweepSpec::replicateSeeds(7, 3);

    SweepRunner::Options serial_opts;
    serial_opts.workers = 1;
    auto reference = SweepRunner(spec, serial_opts).run();
    std::vector<std::uint64_t> ref_fp;
    ref_fp.reserve(reference.cells.size());
    for (const auto &cell : reference.cells)
        ref_fp.push_back(exp::sweep::fingerprintRun(cell));

    for (int round = 0; round < 3; ++round) {
        SweepRunner::Options ro;
        ro.workers = 8;
        auto res = SweepRunner(spec, ro).run();
        ASSERT_EQ(res.cells.size(), ref_fp.size());
        for (std::size_t i = 0; i < ref_fp.size(); ++i)
            ASSERT_EQ(exp::sweep::fingerprintRun(res.cells[i]), ref_fp[i])
                << "cell " << i << " round " << round;
    }
}
