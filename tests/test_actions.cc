/**
 * @file
 * Tests for the action vocabulary and its factories.
 */

#include <gtest/gtest.h>

#include "os/action.hh"
#include "os/system.hh"

using namespace dvfs::os;

TEST(Action, ComputeFactory)
{
    Action a = Action::makeCompute(5000, 3, 1, 1.5);
    EXPECT_EQ(a.kind, ActionKind::Compute);
    EXPECT_EQ(a.compute.instructions, 5000u);
    EXPECT_EQ(a.compute.l2Loads, 3u);
    EXPECT_EQ(a.compute.l3Loads, 1u);
    EXPECT_DOUBLE_EQ(a.compute.ipcScale, 1.5);
}

TEST(Action, ClusterFactoryMovesChains)
{
    dvfs::uarch::MissClusterSpec spec;
    spec.chains = {{1, 2, 3}, {4}};
    spec.overlapInstructions = 99;
    Action a = Action::makeCluster(std::move(spec));
    EXPECT_EQ(a.kind, ActionKind::MissCluster);
    ASSERT_EQ(a.cluster.chains.size(), 2u);
    EXPECT_EQ(a.cluster.chains[0].size(), 3u);
    EXPECT_EQ(a.cluster.overlapInstructions, 99u);
}

TEST(Action, StoreBurstFactoryDefaultsToWideStores)
{
    Action a = Action::makeStoreBurst(0x1000, 32);
    EXPECT_EQ(a.kind, ActionKind::StoreBurst);
    EXPECT_EQ(a.burst.baseAddr, 0x1000u);
    EXPECT_EQ(a.burst.lines, 32u);
    EXPECT_EQ(a.burst.storesPerLine, 2u);  // 32-byte vector stores
}

TEST(Action, SyncFactories)
{
    EXPECT_EQ(Action::makeMutexLock(7).kind, ActionKind::MutexLock);
    EXPECT_EQ(Action::makeMutexLock(7).sync, 7u);
    EXPECT_EQ(Action::makeMutexUnlock(7).kind, ActionKind::MutexUnlock);
    EXPECT_EQ(Action::makeBarrierWait(9).kind, ActionKind::BarrierWait);
    EXPECT_EQ(Action::makeFutexWait(3).kind, ActionKind::FutexWait);
    EXPECT_EQ(Action::makeAlloc(4096).allocBytes, 4096u);
    EXPECT_EQ(Action::makeJoin(5).joinTarget, 5u);
    EXPECT_EQ(Action::makeExit().kind, ActionKind::Exit);
}

TEST(Action, KindNamesAreStable)
{
    EXPECT_STREQ(actionKindName(ActionKind::Compute), "Compute");
    EXPECT_STREQ(actionKindName(ActionKind::MissCluster), "MissCluster");
    EXPECT_STREQ(actionKindName(ActionKind::StoreBurst), "StoreBurst");
    EXPECT_STREQ(actionKindName(ActionKind::MutexLock), "MutexLock");
    EXPECT_STREQ(actionKindName(ActionKind::MutexUnlock), "MutexUnlock");
    EXPECT_STREQ(actionKindName(ActionKind::BarrierWait), "BarrierWait");
    EXPECT_STREQ(actionKindName(ActionKind::FutexWait), "FutexWait");
    EXPECT_STREQ(actionKindName(ActionKind::Alloc), "Alloc");
    EXPECT_STREQ(actionKindName(ActionKind::Join), "Join");
    EXPECT_STREQ(actionKindName(ActionKind::Exit), "Exit");
}

TEST(TraceNames, EventAndStateNamesAreStable)
{
    EXPECT_STREQ(syncEventKindName(SyncEventKind::FutexWait), "FutexWait");
    EXPECT_STREQ(syncEventKindName(SyncEventKind::GcBegin), "GcBegin");
    EXPECT_STREQ(syncEventKindName(SyncEventKind::RunEnd), "RunEnd");
    EXPECT_STREQ(threadStateName(ThreadState::Running), "Running");
    EXPECT_STREQ(threadStateName(ThreadState::Blocked), "Blocked");
    EXPECT_STREQ(threadStateName(ThreadState::Finished), "Finished");
}
