/**
 * @file
 * Tests for the whole-application predictors (M+CRIT, COOP, DEP) on
 * hand-built run records, including the paper's Algorithm 1.
 */

#include <gtest/gtest.h>

#include "pred/predictors.hh"
#include "pred/registry.hh"

using namespace dvfs;
using namespace dvfs::pred;

namespace {

uarch::PerfCounters
busyWithCrit(Tick busy, Tick crit, Tick sq = 0)
{
    uarch::PerfCounters c;
    c.busyTime = busy;
    c.critNonscaling = crit;
    c.sqFullTime = sq;
    return c;
}

EpochThread
active(os::ThreadId tid, Tick busy, Tick crit = 0, Tick sq = 0)
{
    EpochThread et;
    et.tid = tid;
    et.delta = busyWithCrit(busy, crit, sq);
    return et;
}

Epoch
epoch(Tick start, Tick end, std::vector<EpochThread> threads,
      os::ThreadId stall = os::kNoThread)
{
    Epoch e;
    e.start = start;
    e.end = end;
    e.active = std::move(threads);
    e.stallTid = stall;
    e.boundary = stall != os::kNoThread ? os::SyncEventKind::FutexWait
                                        : os::SyncEventKind::FutexWake;
    return e;
}

ThreadSummary
thread(os::ThreadId tid, Tick spawn, Tick exit, Tick busy, Tick crit,
       bool service = false)
{
    ThreadSummary s;
    s.tid = tid;
    s.service = service;
    s.spawnTick = spawn;
    s.exitTick = exit;
    s.totals = busyWithCrit(busy, crit);
    return s;
}

RunRecord
simpleRecord()
{
    RunRecord rec;
    rec.baseFreq = Frequency::ghz(1.0);
    rec.totalTime = 1000;
    return rec;
}

} // namespace

// ------------------------------------------------------------- M+CRIT

TEST(MCrit, PicksSlowestPredictedThread)
{
    RunRecord rec = simpleRecord();
    // Thread 0: all scaling. Thread 1: half non-scaling.
    rec.threads.push_back(thread(0, 0, 1000, 900, 0));
    rec.threads.push_back(thread(1, 0, 1000, 900, 500));

    MCritPredictor p({BaseEstimator::Crit, false});
    // At ratio 0.5 (double frequency): t0 -> 500, t1 -> 250+500=750.
    EXPECT_EQ(p.predict(rec, Frequency::ghz(2.0)), 750u);
    // At ratio 2 (half frequency): t0 -> 2000, t1 -> 1000+500=1500.
    EXPECT_EQ(p.predict(rec, Frequency::mhz(500)), 2000u);
}

TEST(MCrit, WaitTimeLandsInScalingComponent)
{
    RunRecord rec = simpleRecord();
    // A thread alive for 1000 but busy only 400 (waits 600). M+CRIT
    // scales the full span — the paper's motivating flaw.
    rec.threads.push_back(thread(0, 0, 1000, 400, 0));
    MCritPredictor p({BaseEstimator::Crit, false});
    EXPECT_EQ(p.predict(rec, Frequency::mhz(500)), 2000u);
}

TEST(MCrit, SkipsPureCoordinatorThreads)
{
    RunRecord rec = simpleRecord();
    // A driver parked in join the whole run: busy 2% of lifetime.
    rec.threads.push_back(thread(0, 0, 1000, 20, 0));
    rec.threads.push_back(thread(1, 0, 800, 700, 100));
    MCritPredictor p({BaseEstimator::Crit, false});
    // Only thread 1 is considered: (800-100)*2 + 100.
    EXPECT_EQ(p.predict(rec, Frequency::mhz(500)), 1500u);
}

// --------------------------------------------------------------- COOP

TEST(Coop, SplitsAtGcBoundaries)
{
    RunRecord rec = simpleRecord();
    rec.totalTime = 1000;
    // App phase [0,600): thread 0 active. GC phase [600,1000):
    // thread 1 (service, alive only for the collection) active, fully
    // non-scaling.
    rec.threads.push_back(thread(0, 0, 1000, 600, 0));
    rec.threads.push_back(thread(1, 600, 1000, 400, 400, true));
    rec.gcMarks.push_back(GcPhaseMark{600, true});
    rec.epochs.push_back(epoch(0, 600, {active(0, 600)}));
    rec.epochs.push_back(epoch(600, 1000, {active(1, 400, 400)}));

    CoopPredictor p({BaseEstimator::Crit, false});
    // At double frequency: app 600/2 = 300; GC stays 400.
    EXPECT_EQ(p.predict(rec, Frequency::ghz(2.0)), 700u);
    // M+CRIT on the same record mis-handles the GC wait: thread 0's
    // span is the whole run with zero non-scaling -> 500.
    MCritPredictor naive({BaseEstimator::Crit, false});
    EXPECT_EQ(naive.predict(rec, Frequency::ghz(2.0)), 500u);
}

// ---------------------------------------------------------------- DEP

TEST(Dep, PerEpochSumsCriticalThreads)
{
    RunRecord rec = simpleRecord();
    rec.epochs.push_back(epoch(0, 400, {active(0, 400), active(1, 200)}));
    rec.epochs.push_back(epoch(400, 1000, {active(0, 300),
                                           active(1, 600)}));
    DepPredictor per_epoch({BaseEstimator::Crit, false}, false);
    // Ratio 1: sum of per-epoch maxima = 400 + 600.
    EXPECT_EQ(per_epoch.predict(rec, Frequency::ghz(1.0)), 1000u);
    // Ratio 0.5: 200 + 300.
    EXPECT_EQ(per_epoch.predict(rec, Frequency::ghz(2.0)), 500u);
}

TEST(Dep, EmptyEpochIsNonScaling)
{
    RunRecord rec = simpleRecord();
    rec.epochs.push_back(epoch(0, 250, {}));
    rec.epochs.push_back(epoch(250, 1000, {active(0, 750)}));
    DepPredictor p({BaseEstimator::Crit, false}, true);
    // The empty (all-asleep) gap does not scale.
    EXPECT_EQ(p.predict(rec, Frequency::ghz(2.0)), 250u + 375u);
}

TEST(Dep, AcrossEpochCtpBanksSlack)
{
    // The paper's Figure 2(d) situation: thread 1 is not critical in
    // epoch 0 (arrives early at the boundary, which is NOT a barrier
    // for it) and its head start must carry into epoch 1.
    RunRecord rec = simpleRecord();
    // Epoch 0 closed by thread 0's sleep; thread 1 keeps running.
    rec.epochs.push_back(
        epoch(0, 400, {active(0, 400), active(1, 400)}, /*stall=*/0));
    rec.epochs.push_back(epoch(400, 1000, {active(1, 600)}));

    // At ratio 1 both CTP modes reproduce the measured time.
    DepPredictor per_epoch({BaseEstimator::Crit, false}, false);
    DepPredictor across({BaseEstimator::Crit, false}, true);
    EXPECT_EQ(per_epoch.predict(rec, Frequency::ghz(1.0)), 1000u);
    EXPECT_EQ(across.predict(rec, Frequency::ghz(1.0)), 1000u);
}

TEST(Dep, Algorithm1WorkedExample)
{
    // Hand-check Algorithm 1: two epochs, two threads, ratio 1.
    //
    // Epoch A (len 100): t0 a=100, t1 a=60; stall = t0.
    //   I' = max(100-0, 60-0) = 100; delta(t0)=0 (stall reset),
    //   delta(t1) = 100-60 = 40.
    // Epoch B (len 100): t0 a=80, t1 a=100.
    //   e(t0) = 80, e(t1) = 100-40 = 60 -> I' = 80.
    // Total = 180 (per-epoch CTP would give 100 + 100 = 200).
    RunRecord rec = simpleRecord();
    rec.totalTime = 200;
    rec.epochs.push_back(
        epoch(0, 100, {active(0, 100), active(1, 60)}, /*stall=*/0));
    rec.epochs.push_back(epoch(100, 200, {active(0, 80),
                                          active(1, 100)}));

    DepPredictor across({BaseEstimator::Crit, false}, true);
    DepPredictor per_epoch({BaseEstimator::Crit, false}, false);
    EXPECT_EQ(across.predict(rec, Frequency::ghz(1.0)), 180u);
    EXPECT_EQ(per_epoch.predict(rec, Frequency::ghz(1.0)), 200u);
}

TEST(Dep, AcrossEpochNeverExceedsPerEpochOnSlackTraces)
{
    // When threads bank slack (finish early without stalling), the
    // across-epoch estimate is at most the per-epoch estimate.
    RunRecord rec = simpleRecord();
    Tick t = 0;
    for (int i = 0; i < 10; ++i) {
        Tick len = 100 + 13 * (i % 3);
        rec.epochs.push_back(epoch(t, t + len,
                                   {active(0, len),
                                    active(1, len - 20 * (i % 2))}));
        t += len;
    }
    rec.totalTime = t;
    for (double ghz : {1.0, 2.0, 4.0}) {
        DepPredictor across({BaseEstimator::Crit, false}, true);
        DepPredictor per_epoch({BaseEstimator::Crit, false}, false);
        EXPECT_LE(across.predict(rec, Frequency::ghz(ghz)),
                  per_epoch.predict(rec, Frequency::ghz(ghz)));
    }
}

TEST(Dep, BurstMovesSqTimeToNonScaling)
{
    RunRecord rec = simpleRecord();
    rec.epochs.push_back(epoch(0, 1000, {active(0, 1000, 0, 600)}));
    DepPredictor plain({BaseEstimator::Crit, false}, true);
    DepPredictor burst({BaseEstimator::Crit, true}, true);
    // Double frequency: plain scales everything (500); burst keeps
    // the 600 SQ-full ticks constant (200 + 600).
    EXPECT_EQ(plain.predict(rec, Frequency::ghz(2.0)), 500u);
    EXPECT_EQ(burst.predict(rec, Frequency::ghz(2.0)), 800u);
}

TEST(Predictors, NamesAreDescriptive)
{
    EXPECT_EQ(MCritPredictor({BaseEstimator::Crit, false}).name(),
              "M+CRIT");
    EXPECT_EQ(MCritPredictor({BaseEstimator::Crit, true}).name(),
              "M+CRIT+BURST");
    EXPECT_EQ(CoopPredictor({BaseEstimator::Crit, false}).name(),
              "COOP(CRIT)");
    EXPECT_EQ(DepPredictor({BaseEstimator::Crit, false}).name(), "DEP");
    EXPECT_EQ(DepPredictor({BaseEstimator::Crit, true}).name(),
              "DEP+BURST");
    EXPECT_EQ(DepPredictor({BaseEstimator::Crit, true}, false).name(),
              "DEP+BURST(per-epoch CTP)");
}

TEST(Predictors, Figure3ZooHasSixEntries)
{
    auto zoo = PredictorRegistry::instance().figure3Set();
    ASSERT_EQ(zoo.size(), 6u);
    EXPECT_EQ(zoo[0]->name(), "M+CRIT");
    EXPECT_EQ(zoo[5]->name(), "DEP+BURST");
}

TEST(Predictors, RelativeError)
{
    EXPECT_NEAR(Predictor::relativeError(110, 100), 0.1, 1e-12);
    EXPECT_NEAR(Predictor::relativeError(90, 100), -0.1, 1e-12);
    EXPECT_NEAR(Predictor::relativeError(100, 100), 0.0, 1e-12);
}

/** Property: all predictors are monotone in the target period. */
class PredictorMonotone
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PredictorMonotone, SlowerTargetNeverFaster)
{
    RunRecord rec = simpleRecord();
    rec.threads.push_back(thread(0, 0, 1000, 800, 200));
    rec.threads.push_back(thread(1, 0, 900, 850, 100));
    rec.epochs.push_back(epoch(0, 500,
                               {active(0, 450, 100, 20),
                                active(1, 480, 50, 10)}, 0));
    rec.epochs.push_back(epoch(500, 1000,
                               {active(0, 350, 100, 30),
                                active(1, 370, 50, 20)}));

    Frequency lo = Frequency::mhz(GetParam());
    Frequency hi = Frequency::mhz(GetParam() + 500);
    for (const auto &p : PredictorRegistry::instance().figure3Set())
        EXPECT_GE(p->predict(rec, lo), p->predict(rec, hi)) << p->name();
}

INSTANTIATE_TEST_SUITE_P(Targets, PredictorMonotone,
                         ::testing::Values(1000, 1500, 2000, 2500, 3000,
                                           3500));
