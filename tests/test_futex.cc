/**
 * @file
 * Unit tests for the futex table and the scheduler bookkeeping.
 */

#include <gtest/gtest.h>

#include "os/futex.hh"
#include "os/scheduler.hh"

using namespace dvfs::os;

TEST(FutexTable, AllocateGivesUniqueIds)
{
    FutexTable t;
    SyncId a = t.allocate();
    SyncId b = t.allocate();
    SyncId c = t.allocate();
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
}

TEST(FutexTable, WakeIsFifo)
{
    FutexTable t;
    SyncId f = t.allocate();
    t.wait(f, 10);
    t.wait(f, 20);
    t.wait(f, 30);
    EXPECT_EQ(t.waiters(f), 3u);

    auto w1 = t.wake(f, 2);
    ASSERT_EQ(w1.size(), 2u);
    EXPECT_EQ(w1[0], 10u);
    EXPECT_EQ(w1[1], 20u);
    EXPECT_EQ(t.waiters(f), 1u);

    auto w2 = t.wake(f, 5);
    ASSERT_EQ(w2.size(), 1u);
    EXPECT_EQ(w2[0], 30u);
    EXPECT_EQ(t.waiters(f), 0u);
}

TEST(FutexTable, WakeOnEmptyFutexReturnsNothing)
{
    FutexTable t;
    SyncId f = t.allocate();
    EXPECT_TRUE(t.wake(f, 1).empty());
    EXPECT_TRUE(t.wake(12345, 1).empty());
}

TEST(FutexTable, RemoveSpecificWaiter)
{
    FutexTable t;
    SyncId f = t.allocate();
    t.wait(f, 1);
    t.wait(f, 2);
    EXPECT_TRUE(t.remove(f, 1));
    EXPECT_FALSE(t.remove(f, 1));
    auto w = t.wake(f, 10);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 2u);
}

TEST(FutexTable, TotalWaitersAcrossFutexes)
{
    FutexTable t;
    SyncId a = t.allocate(), b = t.allocate();
    t.wait(a, 1);
    t.wait(a, 2);
    t.wait(b, 3);
    EXPECT_EQ(t.totalWaiters(), 3u);
    t.reset();
    EXPECT_EQ(t.totalWaiters(), 0u);
}

TEST(FutexTableDeathTest, WaitOnInvalidIdPanics)
{
    FutexTable t;
    EXPECT_DEATH(t.wait(kNoSync, 7), "invalid");
}

TEST(Scheduler, AssignAndRelease)
{
    Scheduler s(2);
    EXPECT_EQ(s.cores(), 2u);
    EXPECT_EQ(s.freeCore(), 0);
    s.assign(7, 0);
    EXPECT_EQ(s.occupant(0), 7u);
    EXPECT_EQ(s.freeCore(), 1);
    s.assign(8, 1);
    EXPECT_EQ(s.freeCore(), -1);
    EXPECT_EQ(s.busyCores(), 2u);
    s.release(0);
    EXPECT_EQ(s.freeCore(), 0);
    EXPECT_EQ(s.occupant(0), kNoThread);
}

TEST(Scheduler, ReadyQueueIsFifo)
{
    Scheduler s(1);
    EXPECT_FALSE(s.hasReady());
    EXPECT_EQ(s.popReady(), kNoThread);
    s.enqueueReady(3);
    s.enqueueReady(1);
    s.enqueueReady(2);
    EXPECT_EQ(s.readyCount(), 3u);
    EXPECT_EQ(s.popReady(), 3u);
    EXPECT_EQ(s.popReady(), 1u);
    EXPECT_EQ(s.popReady(), 2u);
    EXPECT_FALSE(s.hasReady());
}

TEST(Scheduler, ResetClears)
{
    Scheduler s(2);
    s.assign(1, 0);
    s.enqueueReady(2);
    s.reset();
    EXPECT_EQ(s.busyCores(), 0u);
    EXPECT_FALSE(s.hasReady());
}

TEST(SchedulerDeathTest, DoubleAssignPanics)
{
    Scheduler s(1);
    s.assign(1, 0);
    EXPECT_DEATH(s.assign(2, 0), "occupied");
}

TEST(SchedulerDeathTest, ReleasingFreeCorePanics)
{
    Scheduler s(1);
    EXPECT_DEATH(s.release(0), "free");
}
