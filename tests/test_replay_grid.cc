/**
 * @file
 * Trace-backed grids: record once, replay bit-identically.
 *
 * Exercises the full record/replay loop the harnesses use: recordGrid
 * persists a small synthetic grid, loadGrid reconstructs it, and every
 * predictor error computed from the replayed grid must be
 * bit-identical to the live path — the property the CI
 * trace-roundtrip job enforces on the real fig3 grid. Also covers the
 * consolidated exp::RunOptions surface and its deprecated aliases.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "exp/sweep/trace_cache.hh"
#include "pred/registry.hh"
#include "trace/replay.hh"
#include "trace/writer.hh"

using namespace dvfs;
using exp::sweep::ObservedGrid;
using exp::sweep::SweepRunner;
using exp::sweep::SweepSpec;

namespace {

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.workloads = {wl::syntheticSmall(2, 50), wl::syntheticSmall(3, 40)};
    // Trace file names encode the workload name; synthetic variants
    // all spell "synthetic", so distinguish them.
    spec.workloads[0].name = "synthA";
    spec.workloads[1].name = "synthB";
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(4.0)};
    return spec;
}

/** A fresh per-test trace directory under the test tempdir. */
std::string
freshDir(const char *name)
{
    std::string dir = testing::TempDir() + "/dvfstrace_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

bool
sameBits(double a, double b)
{
    std::uint64_t ua, ub;
    std::memcpy(&ua, &a, sizeof(ua));
    std::memcpy(&ub, &b, sizeof(ub));
    return ua == ub;
}

/** Every figure3 predictor error over a grid, in a fixed order. */
std::vector<double>
allErrors(const ObservedGrid &grid)
{
    std::vector<double> errs;
    trace::ReplayEngine engine;
    const Frequency base = Frequency::ghz(1.0);
    const Frequency target = Frequency::ghz(4.0);
    for (std::size_t w = 0; w < grid.spec.workloads.size(); ++w) {
        std::vector<trace::ReplayTarget> targets = {
            {target, grid.at(w, target).totalTime}};
        for (const auto &cell :
             engine.evaluate(grid.at(w, base).view(), targets))
            errs.push_back(cell.error);
    }
    return errs;
}

} // namespace

TEST(ReplayGrid, RecordedGridReplaysBitIdentically)
{
    const std::string dir = freshDir("roundtrip");
    SweepRunner::Options opts;
    opts.workers = 2;

    auto live = exp::sweep::recordGrid(smallSpec(), opts, dir);
    ASSERT_FALSE(live.replayed);
    ASSERT_TRUE(exp::sweep::gridTracesPresent(smallSpec(), dir));

    auto replayed = exp::sweep::loadGrid(smallSpec(), dir);
    EXPECT_TRUE(replayed.replayed);
    ASSERT_EQ(replayed.cells.size(), live.cells.size());

    for (std::size_t i = 0; i < live.cells.size(); ++i) {
        EXPECT_EQ(replayed.cells[i].totalTime, live.cells[i].totalTime);
        EXPECT_EQ(replayed.cells[i].freq, live.cells[i].freq);
    }

    auto live_errs = allErrors(live);
    auto replay_errs = allErrors(replayed);
    ASSERT_EQ(live_errs.size(), replay_errs.size());
    for (std::size_t i = 0; i < live_errs.size(); ++i) {
        EXPECT_TRUE(sameBits(live_errs[i], replay_errs[i]))
            << "error " << i << ": live " << live_errs[i] << " vs replay "
            << replay_errs[i];
    }
    std::filesystem::remove_all(dir);
}

TEST(ReplayGrid, ObserveGridRecordsThenReplays)
{
    const std::string dir = freshDir("observe");
    SweepRunner::Options opts;
    opts.workers = 1;

    // First call: no traces yet -> records (and persists).
    auto first = exp::sweep::observeGrid(smallSpec(), opts, dir);
    EXPECT_FALSE(first.replayed);

    // Second call: complete directory -> replays, same numbers.
    auto second = exp::sweep::observeGrid(smallSpec(), opts, dir);
    EXPECT_TRUE(second.replayed);
    auto a = allErrors(first), b = allErrors(second);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(sameBits(a[i], b[i])) << "error " << i;

    // Empty dir means "never persist": the grid is always live.
    auto inmem = exp::sweep::observeGrid(smallSpec(), opts, "");
    EXPECT_FALSE(inmem.replayed);
    std::filesystem::remove_all(dir);
}

TEST(ReplayGrid, MismatchedTraceIsRejected)
{
    // Traces recorded for one spec must not satisfy a different one:
    // loading with a different seed must fail coordinate cross-checks
    // (the file name encodes the seed, so the lookup itself misses).
    const std::string dir = freshDir("mismatch");
    SweepRunner::Options opts;
    opts.workers = 1;
    exp::sweep::recordGrid(smallSpec(), opts, dir);

    SweepSpec other = smallSpec();
    other.seeds = {43};
    EXPECT_FALSE(exp::sweep::gridTracesPresent(other, dir));
    EXPECT_THROW(exp::sweep::loadGrid(other, dir), trace::TraceError);
    std::filesystem::remove_all(dir);
}

TEST(ReplayGrid, ImpersonatingTraceIsCellMismatch)
{
    // A trace that PARSES but describes a different run than the cell
    // it was loaded for must be the structured CellMismatch kind —
    // here a 1 GHz recording renamed to pose as the 4 GHz cell.
    const std::string dir = freshDir("impersonate");
    SweepRunner::Options opts;
    opts.workers = 1;
    exp::sweep::recordGrid(smallSpec(), opts, dir);

    const std::string low =
        dir + "/" + trace::traceFileName("synthA", 1000, 42);
    const std::string high =
        dir + "/" + trace::traceFileName("synthA", 4000, 42);
    std::filesystem::copy_file(
        low, high, std::filesystem::copy_options::overwrite_existing);

    try {
        exp::sweep::loadGrid(smallSpec(), dir);
        FAIL() << "impersonating trace was accepted";
    } catch (const trace::TraceError &e) {
        EXPECT_EQ(e.kind(), trace::TraceError::Kind::CellMismatch);
    }
    std::filesystem::remove_all(dir);
}

TEST(ReplayGrid, DuplicateCellPathsAreRejected)
{
    // Two workloads sharing a name would alias each other's trace
    // files (record would overwrite, load would impersonate); the
    // cache must refuse the spec up front with the structured
    // DuplicateCell kind — on both the record and the load path.
    const std::string dir = freshDir("dup");
    SweepSpec dup = smallSpec();
    dup.workloads[1].name = dup.workloads[0].name;

    SweepRunner::Options opts;
    opts.workers = 1;
    try {
        exp::sweep::recordGrid(dup, opts, dir);
        FAIL() << "duplicate cell paths were accepted on record";
    } catch (const trace::TraceError &e) {
        EXPECT_EQ(e.kind(), trace::TraceError::Kind::DuplicateCell);
    }
    try {
        exp::sweep::loadGrid(dup, dir);
        FAIL() << "duplicate cell paths were accepted on load";
    } catch (const trace::TraceError &e) {
        EXPECT_EQ(e.kind(), trace::TraceError::Kind::DuplicateCell);
    }
    // In-memory grids never touch the filesystem: no name collision.
    EXPECT_NO_THROW(exp::sweep::recordGrid(dup, opts));
    std::filesystem::remove_all(dir);
}

TEST(ReplayGrid, ReplayEngineOrdersCellsTargetMajor)
{
    SweepRunner::Options opts;
    opts.workers = 1;
    auto grid = exp::sweep::recordGrid(smallSpec(), opts);

    trace::ReplayEngine engine;
    const auto names = engine.predictorNames();
    std::vector<trace::ReplayTarget> targets = {
        {Frequency::ghz(4.0), grid.at(0, Frequency::ghz(4.0)).totalTime},
        {Frequency::ghz(1.0), 0},  // no ground truth
    };
    auto cells =
        engine.evaluate(grid.at(0, Frequency::ghz(1.0)).view(), targets);
    ASSERT_EQ(cells.size(), names.size() * targets.size());
    for (std::size_t t = 0; t < targets.size(); ++t) {
        for (std::size_t p = 0; p < names.size(); ++p) {
            const auto &cell = cells[t * names.size() + p];
            EXPECT_EQ(cell.predictor, names[p]);
            EXPECT_EQ(cell.target, targets[t].freq);
            EXPECT_GT(cell.predicted, 0u);
        }
    }
    // Unknown ground truth -> error stays 0, prediction still made.
    EXPECT_EQ(cells[names.size()].actual, 0u);
    EXPECT_EQ(cells[names.size()].error, 0.0);
}

TEST(ReplayGrid, RunOptionsSurface)
{
    auto params = wl::syntheticSmall(2, 40);

    // Consolidated options: one struct drives fixed and managed runs.
    exp::RunOptions opts;
    opts.seed = 7;
    opts.keepEvents = true;
    auto fixed = exp::runFixed(params, Frequency::ghz(2.0), opts);
    EXPECT_FALSE(fixed.record.events.empty());
    EXPECT_EQ(fixed.mode, exp::SimMode::Exact);
    EXPECT_EQ(fixed.sampling.ffWindows, 0u);

    // Identical options replay bit-identically.
    auto fixed2 = exp::runFixed(params, Frequency::ghz(2.0), opts);
    EXPECT_EQ(fixed.totalTime, fixed2.totalTime);
    EXPECT_EQ(fixed.record.events.size(), fixed2.record.events.size());

    // Managed runs: default options == explicit defaults.
    mgr::ManagerConfig mc;
    mc.tolerableSlowdown = 0.10;
    auto table = power::VfTable::haswell();

    exp::RunOptions mopts;
    mopts.seed = 42;
    auto managed = exp::runManaged(params, mc, table, mopts);
    auto managed_default = exp::runManaged(params, mc, table);
    EXPECT_EQ(managed.totalTime, managed_default.totalTime);
    EXPECT_EQ(managed.decisions.size(), managed_default.decisions.size());

    // measureEnergy=false must not change timing, only metering.
    exp::RunOptions noenergy;
    noenergy.seed = 7;
    noenergy.measureEnergy = false;
    auto cold = exp::runFixed(params, Frequency::ghz(2.0), noenergy);
    EXPECT_EQ(cold.totalTime, fixed.totalTime);
    EXPECT_EQ(cold.energy.total(), 0.0);
}
