/**
 * @file
 * Differential and edge-case tests for the timing-wheel event kernel.
 *
 * The wheel (EventQueue) must be observationally identical to the
 * retired binary-heap implementation (ReferenceEventQueue), which is
 * kept as an executable specification of the dispatch-order contract:
 * earliest tick first, insertion order within a tick. A seeded random
 * op stream — schedule, cancel, same-tick reschedule from inside
 * callbacks, partial runUntil — is driven through both queues and the
 * full observable trace (firing order, firing ticks, cancel results)
 * must match bit for bit.
 *
 * The edge-case tests pin down the wheel-specific machinery the
 * random stream is unlikely to stress deterministically: scheduling
 * at the current tick, cancelling entries parked in the far-future
 * overflow list (before and after a rebase), cursor movement across
 * every wheel level, and pool reuse under a million schedule/cancel
 * cycles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/reference_event_queue.hh"
#include "sim/rng.hh"

using namespace dvfs;
using sim::EventId;

namespace {

/** One observable step: an event firing or a cancel result. */
using TraceStep = std::pair<std::uint64_t, Tick>;

/** Token space for cancel observations, disjoint from event tokens. */
constexpr std::uint64_t kCancelHit = 0x8000000000000000ull;
constexpr std::uint64_t kCancelMiss = 0x4000000000000000ull;

/**
 * Drive a seeded op stream through @p Queue and return the trace.
 *
 * All randomness is drawn *outside* the callbacks, so both queue
 * implementations see exactly the same op stream; any divergence in
 * the trace is a divergence in queue behaviour.
 */
template <typename Queue>
std::vector<TraceStep>
runScript(std::uint32_t seed, unsigned ops)
{
    Queue q;
    std::vector<TraceStep> trace;
    std::vector<EventId> ids;  // every id ever returned, stale or not
    std::uint64_t next_tok = 1;
    std::uint64_t child_tok = 1'000'000;

    sim::Rng rng(seed);
    for (unsigned i = 0; i < ops; ++i) {
        const std::uint32_t r = static_cast<std::uint32_t>(
            rng.nextBounded(100));
        if (r < 55 || ids.empty()) {
            // Schedule. A quarter of events land on an already-used
            // tick bucket (coarse quantization) to force same-tick
            // FIFO ordering; some spawn a same-tick child when they
            // fire, re-entering the live dispatch batch.
            Tick delta = rng.nextBool(0.25)
                             ? rng.nextBounded(8) * 1000
                             : rng.nextBounded(300'000);
            const bool spawn_same_tick = rng.nextBool(0.15);
            const bool spawn_later = rng.nextBool(0.15);
            const std::uint64_t tok = next_tok++;
            Queue *qp = &q;
            auto *tp = &trace;
            auto *ct = &child_tok;
            ids.push_back(q.schedule(
                q.now() + delta,
                [qp, tp, ct, tok, spawn_same_tick, spawn_later] {
                    tp->emplace_back(tok, qp->now());
                    if (spawn_same_tick) {
                        const std::uint64_t c = (*ct)++;
                        qp->schedule(qp->now(), [qp, tp, c] {
                            tp->emplace_back(c, qp->now());
                        });
                    }
                    if (spawn_later) {
                        const std::uint64_t c = (*ct)++;
                        qp->schedule(qp->now() + 777, [qp, tp, c] {
                            tp->emplace_back(c, qp->now());
                        });
                    }
                }));
        } else if (r < 80) {
            // Cancel a random id (possibly stale); the boolean result
            // is part of the observable trace.
            const EventId id =
                ids[static_cast<std::size_t>(rng.nextBounded(ids.size()))];
            trace.emplace_back(q.cancel(id) ? kCancelHit : kCancelMiss,
                               q.now());
        } else {
            q.runUntil(q.now() + rng.nextBounded(500'000));
        }
    }
    q.run();
    return trace;
}

/**
 * Long-horizon stream: deltas big enough to exercise upper wheel
 * levels and the overflow list against the reference.
 */
template <typename Queue>
std::vector<TraceStep>
longHorizonScript(std::uint32_t seed)
{
    Queue q;
    std::vector<TraceStep> trace;
    std::uint64_t tok = 1;
    sim::Rng rng(seed);
    for (unsigned i = 0; i < 300; ++i) {
        // Spread deltas across ~2^50 so placements hit every level
        // and the overflow path.
        const unsigned level_bits =
            static_cast<unsigned>(rng.nextBounded(50));
        Tick delta = (Tick{1} << level_bits) + rng.nextBounded(1000);
        const std::uint64_t t = tok++;
        auto *tp = &trace;
        Queue *qp = &q;
        q.schedule(q.now() + delta, [qp, tp, t] {
            tp->emplace_back(t, qp->now());
        });
        if (i % 7 == 0)
            q.runOne();
    }
    q.run();
    return trace;
}

} // namespace

TEST(EventQueueDifferential, WheelMatchesReferenceHeap)
{
    for (std::uint32_t seed : {1u, 2u, 3u, 77u, 1234u}) {
        auto wheel = runScript<sim::EventQueue>(seed, 2000);
        auto heap = runScript<sim::ReferenceEventQueue>(seed, 2000);
        ASSERT_EQ(wheel.size(), heap.size()) << "seed " << seed;
        for (std::size_t i = 0; i < wheel.size(); ++i) {
            ASSERT_EQ(wheel[i], heap[i])
                << "seed " << seed << " step " << i;
        }
    }
}

TEST(EventQueueDifferential, LongHorizonStreamMatches)
{
    for (std::uint32_t seed : {5u, 6u, 7u}) {
        auto wheel = longHorizonScript<sim::EventQueue>(seed);
        auto heap = longHorizonScript<sim::ReferenceEventQueue>(seed);
        EXPECT_EQ(wheel, heap) << "seed " << seed;
    }
}

TEST(EventQueueWheel, ScheduleAtCurrentTickFiresInBatch)
{
    sim::EventQueue q;
    std::vector<int> order;
    // Before any dispatch, now() == 0; scheduling at exactly now is
    // legal and fires.
    q.schedule(0, [&] { order.push_back(1); });
    q.schedule(0, [&] {
        order.push_back(2);
        // Same-tick child from inside the batch: runs after every
        // previously inserted tick-0 event, before any later tick.
        q.schedule(q.now(), [&] { order.push_back(3); });
    });
    q.schedule(5, [&] { order.push_back(4); });
    EXPECT_EQ(q.runUntil(10), 4u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueueWheel, CancelOverflowAndCascadedEntries)
{
    sim::EventQueue q;
    std::vector<int> fired;

    // Beyond the 48-bit horizon: parked on the overflow list.
    const Tick far = Tick{1} << 49;
    EventId f1 = q.schedule(far, [&] { fired.push_back(1); });
    EventId f2 = q.schedule(far + 5, [&] { fired.push_back(2); });
    EventId f3 = q.schedule(far + 5, [&] { fired.push_back(3); });
    q.schedule(100, [&] { fired.push_back(0); });
    EXPECT_EQ(q.pending(), 4u);

    // Cancel straight off the overflow list — including the entry
    // holding the overflow minimum, forcing the exact-min rescan.
    EXPECT_TRUE(q.cancel(f1));
    EXPECT_FALSE(q.cancel(f1));  // already gone
    EXPECT_EQ(q.pending(), 3u);

    // Fire the near event, then step into the far epoch: the rebase
    // pulls f2/f3 out of overflow into the wheel.
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(fired, std::vector<int>{0});
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(q.now(), far + 5);
    EXPECT_EQ(fired, (std::vector<int>{0, 2}));

    // f3 fired in the same batch? No: runOne dispatches one event.
    // It is now a live wheel entry at the current tick; cancel it
    // post-cascade.
    EXPECT_TRUE(q.cancel(f3));
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueueWheel, CursorCrossesEveryLevel)
{
    sim::EventQueue q;
    std::vector<Tick> fired;
    // One event per wheel level, plus byte-boundary neighbours that
    // force cascades (255 -> 256 crosses level 0 into level 1, etc).
    std::vector<Tick> ticks;
    for (unsigned level = 0; level < 6; ++level) {
        const Tick base = Tick{1} << (8 * level);
        ticks.push_back(base);
        ticks.push_back(base + 1);
        if (level > 0)
            ticks.push_back(base - 1);  // last slot of the level below
    }
    ticks.push_back((Tick{1} << 48) - 1);  // horizon edge: still wheel
    ticks.push_back(Tick{1} << 48);        // first overflow tick
    // Insert in reverse so wheel order, not insertion order, decides.
    for (auto it = ticks.rbegin(); it != ticks.rend(); ++it) {
        Tick t = *it;
        q.schedule(t, [&fired, &q] { fired.push_back(q.now()); });
    }
    EXPECT_EQ(q.run(), ticks.size());
    std::vector<Tick> expect = ticks;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(fired, expect);
}

TEST(EventQueueWheel, SameTickFifoSurvivesCascade)
{
    sim::EventQueue q;
    std::vector<int> order;
    // Two same-tick events filed at an upper level (tick differs from
    // the cursor in byte 3): the cascade down to level 0 must keep
    // their insertion order.
    const Tick t = (Tick{3} << 24) + 42;
    q.schedule(t, [&] { order.push_back(1); });
    q.schedule(t, [&] { order.push_back(2); });
    q.schedule(7, [&] { order.push_back(0); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueWheel, MillionScheduleCancelReusesPool)
{
    sim::EventQueue q;
    // A window of live timers being repeatedly re-armed (the OS
    // timeslice pattern): entry count must stay at the window's
    // high-water mark, not grow with the number of cycles.
    constexpr unsigned kWindow = 32;
    std::vector<EventId> window;
    std::uint64_t fired = 0;
    Tick t = 1;
    for (unsigned i = 0; i < kWindow; ++i)
        window.push_back(q.schedule(t += 10'000, [&] { ++fired; }));
    for (unsigned i = 0; i < 1'000'000; ++i) {
        const std::size_t k = i % kWindow;
        ASSERT_TRUE(q.cancel(window[k]));
        window[k] = q.schedule(t += 10'000, [&] { ++fired; });
    }
    EXPECT_LE(q.entriesAllocated(), kWindow + 1);
    EXPECT_EQ(q.run(), kWindow);
    EXPECT_EQ(fired, kWindow);
}
