/**
 * @file
 * The dvfsd serving stack: trace cache, request handler, socket loop.
 *
 * Three layers, tested bottom-up with the same recorded trace image:
 *
 *  - TraceStore: digest-keyed idempotent put, LRU promotion/eviction,
 *    honest counters.
 *  - Service: every request type answered, every failure a structured
 *    Error reply, and — the property dvfsd_load --verify-live enforces
 *    in production — served predictions bit-identical to a direct
 *    ReplayEngine evaluation of the same trace.
 *  - Server: real sockets end-to-end (TCP and Unix), including the
 *    failure policy: a payload-level decode error keeps the
 *    connection, a header-level one closes it after the Error reply.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment.hh"
#include "net/client.hh"
#include "net/socket.hh"
#include "net/wire.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/trace_store.hh"
#include "power/vf_table.hh"
#include "trace/replay.hh"
#include "trace/writer.hh"
#include "wl/suite.hh"

using namespace dvfs;
using net::Frame;
using serve::Service;
using serve::TraceStore;

namespace {

/** Record a tiny synthetic run and encode it as a .dvfstrace image. */
std::vector<std::uint8_t>
makeImage(std::uint64_t seed)
{
    auto params = wl::syntheticSmall(2, 30);
    exp::RunOptions opts;
    opts.seed = seed;
    auto out = exp::runFixed(params, Frequency::ghz(1.0), opts);
    trace::TraceMeta meta;
    meta.workload = params.name;
    meta.seed = seed;
    return trace::encodeTrace(out.record, meta);
}

const net::ErrorResp &
requireError(const Frame &reply, net::ErrorCode code)
{
    const auto *err = std::get_if<net::ErrorResp>(&reply.body);
    EXPECT_NE(err, nullptr) << "expected an Error reply";
    if (err) {
        EXPECT_EQ(err->code, static_cast<std::uint32_t>(code))
            << err->message;
    }
    static net::ErrorResp none;
    return err ? *err : none;
}

void
storeU64(std::vector<std::uint8_t> &image, std::size_t off,
         std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        image[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

/** Reseal a frame's header digest after editing its payload. */
void
resealDigest(std::vector<std::uint8_t> &image)
{
    storeU64(image, 16,
             net::fnv1aBytes(image.data() + net::kFrameHeaderBytes,
                             image.size() - net::kFrameHeaderBytes));
}

/** Blocking framed receive over a raw fd (the RpcClient recv dance). */
bool
recvFrame(int fd, Frame &out)
{
    std::uint8_t header[net::kFrameHeaderBytes];
    if (!net::recvAll(fd, header, sizeof(header)))
        return false;
    const std::uint32_t length =
        net::peekPayloadLength(header, sizeof(header));
    std::vector<std::uint8_t> image(header, header + sizeof(header));
    image.resize(net::kFrameHeaderBytes + length);
    if (!net::recvAll(fd, image.data() + net::kFrameHeaderBytes, length))
        return false;
    out = net::decodeFrame(image);
    return true;
}

} // namespace

TEST(TraceStore, PutIsIdempotentByDigest)
{
    TraceStore store(64u << 20);
    const auto image = makeImage(7);

    auto first = store.put(image);
    EXPECT_FALSE(first.alreadyCached);
    EXPECT_EQ(first.digest, trace::tracePayloadDigest(image));
    ASSERT_NE(first.trace, nullptr);
    EXPECT_EQ(first.trace->meta().seed, 7u);

    auto again = store.put(image);
    EXPECT_TRUE(again.alreadyCached);
    EXPECT_EQ(again.digest, first.digest);
    EXPECT_EQ(again.trace.get(), first.trace.get());

    auto stats = store.stats();
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.reuses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(TraceStore, GetCountsHitsAndMisses)
{
    TraceStore store(64u << 20);
    const auto image = makeImage(7);
    const std::uint64_t digest = store.put(image).digest;

    EXPECT_NE(store.get(digest), nullptr);
    EXPECT_EQ(store.get(digest ^ 1), nullptr);

    auto stats = store.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(TraceStore, EvictsLeastRecentlyUsedFirst)
{
    const auto a = makeImage(1), b = makeImage(2), c = makeImage(3);

    // Scout the per-entry decoded footprints with an unbounded store.
    TraceStore scout(1u << 30);
    scout.put(a);
    const std::size_t bytes_a = scout.stats().bytes;
    scout.put(b);
    const std::size_t bytes_ab = scout.stats().bytes;

    // A store that holds exactly two entries. Recency order decides
    // the victim: touching A after B's insert must doom B, not A.
    TraceStore store(bytes_ab);
    const std::uint64_t da = store.put(a).digest;
    const std::uint64_t db = store.put(b).digest;
    ASSERT_NE(store.get(da), nullptr);  // A is now most recent
    const std::uint64_t dc = store.put(c).digest;

    EXPECT_EQ(store.get(db), nullptr) << "LRU entry was not evicted";
    EXPECT_NE(store.get(da), nullptr);
    EXPECT_NE(store.get(dc), nullptr);
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_EQ(store.stats().entries, 2u);

    // Even a single entry over budget stays: a cache that cannot hold
    // one trace serves nothing.
    TraceStore tiny(bytes_a / 2 + 1);
    tiny.put(a);
    EXPECT_NE(tiny.get(da), nullptr);
    EXPECT_EQ(tiny.stats().entries, 1u);
}

TEST(ServeService, ServedPredictionsMatchDirectReplay)
{
    TraceStore store(64u << 20);
    Service service(store);
    const auto image = makeImage(7);

    net::UploadTraceReq up;
    up.image = image;
    Frame upReply = service.handle(Frame::request(1, std::move(up)));
    EXPECT_TRUE(upReply.isResponse);
    EXPECT_EQ(upReply.requestId, 1u);
    const auto *upr = std::get_if<net::UploadTraceResp>(&upReply.body);
    ASSERT_NE(upr, nullptr);
    EXPECT_EQ(upr->traceDigest, trace::tracePayloadDigest(image));
    EXPECT_EQ(upr->alreadyCached, 0u);
    EXPECT_EQ(upr->baseMHz, 1000u);

    // The ground truth: a direct ReplayEngine evaluation of the trace.
    trace::ReplayEngine engine;
    const auto loaded = trace::decodeTrace(image);
    EXPECT_EQ(upr->totalTime, loaded.totalTime());

    net::PredictReq pq;
    pq.traceDigest = upr->traceDigest;
    pq.targetMHz = 4000;
    Frame pReply = service.handle(Frame::request(2, pq));
    const auto *pr = std::get_if<net::PredictResp>(&pReply.body);
    ASSERT_NE(pr, nullptr);
    EXPECT_EQ(pr->baseTotalTime, loaded.totalTime());

    auto direct = engine.evaluate(loaded, {{Frequency::mhz(4000), 0}});
    ASSERT_EQ(pr->cells.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(pr->cells[i].predictor, direct[i].predictor);
        EXPECT_EQ(pr->cells[i].predicted, direct[i].predicted);
    }

    net::WhatIfGridReq wq;
    wq.traceDigest = upr->traceDigest;
    wq.targetsMHz = {2000, 3000};
    Frame wReply = service.handle(Frame::request(3, wq));
    const auto *wr = std::get_if<net::WhatIfGridResp>(&wReply.body);
    ASSERT_NE(wr, nullptr);
    EXPECT_EQ(wr->predictors, engine.predictorNames());
    ASSERT_EQ(wr->predicted.size(),
              wr->predictors.size() * wr->targetsMHz.size());

    auto grid = engine.evaluate(loaded, {{Frequency::mhz(2000), 0},
                                         {Frequency::mhz(3000), 0}});
    ASSERT_EQ(wr->predicted.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        EXPECT_EQ(wr->predicted[i], grid[i].predicted);
}

TEST(ServeService, OptimalVfHonorsBoundAndTable)
{
    TraceStore store(64u << 20);
    Service service(store);
    const auto image = makeImage(7);
    net::UploadTraceReq up;
    up.image = image;
    Frame upReply = service.handle(Frame::request(1, std::move(up)));
    const auto *upr = std::get_if<net::UploadTraceResp>(&upReply.body);
    ASSERT_NE(upr, nullptr);

    net::OptimalVfReq oq;
    oq.traceDigest = upr->traceDigest;
    oq.slowdownPermille = 100;
    Frame reply = service.handle(Frame::request(2, oq));
    const auto *resp = std::get_if<net::OptimalVfResp>(&reply.body);
    ASSERT_NE(resp, nullptr);

    const auto table = power::VfTable::haswell(125);
    EXPECT_GE(resp->chosenMHz, table.lowest().toMHz());
    EXPECT_LE(resp->chosenMHz, table.highest().toMHz());
    // The admissibility bound the handler promises.
    EXPECT_LE(static_cast<double>(resp->predictedAtChosen),
              static_cast<double>(resp->predictedAtHighest) * 1.1);
    EXPECT_EQ(resp->microvolts,
              static_cast<std::uint64_t>(std::llround(
                  table.voltageAt(Frequency::mhz(resp->chosenMHz)) *
                  1e6)));

    // A wider bound can only lower (or keep) the chosen frequency: the
    // admissible set grows monotonically with the allowance.
    oq.slowdownPermille = 1000;
    Frame wideReply = service.handle(Frame::request(3, oq));
    const auto *wide = std::get_if<net::OptimalVfResp>(&wideReply.body);
    ASSERT_NE(wide, nullptr);
    EXPECT_LE(wide->chosenMHz, resp->chosenMHz);
}

TEST(ServeService, EveryFailureIsAStructuredErrorReply)
{
    TraceStore store(64u << 20);
    Service service(store);
    const auto image = makeImage(7);
    net::UploadTraceReq up;
    up.image = image;
    Frame upReply = service.handle(Frame::request(1, std::move(up)));
    const auto *upr = std::get_if<net::UploadTraceResp>(&upReply.body);
    ASSERT_NE(upr, nullptr);

    // Query for a digest nobody uploaded.
    net::PredictReq pq;
    pq.traceDigest = upr->traceDigest ^ 1;
    pq.targetMHz = 2000;
    requireError(service.handle(Frame::request(2, pq)),
                 net::ErrorCode::UnknownTrace);

    // A corrupt upload of a NOT-yet-cached trace: strict decode fails
    // and nothing is cached. (Corrupting an already-cached image's
    // payload would hit the digest-keyed idempotency fast path — the
    // unchanged header digest names the cached entry, which is served
    // without re-decoding.)
    net::UploadTraceReq bad;
    bad.image = makeImage(8);
    bad.image[bad.image.size() / 2] ^= 0x01;
    const auto &err = requireError(
        service.handle(Frame::request(3, std::move(bad))),
        net::ErrorCode::BadRequest);
    EXPECT_FALSE(err.message.empty());

    // Unknown predictor name.
    net::OptimalVfReq oq;
    oq.traceDigest = upr->traceDigest;
    oq.slowdownPermille = 100;
    oq.predictor = "NO-SUCH-PREDICTOR";
    requireError(service.handle(Frame::request(4, oq)),
                 net::ErrorCode::BadRequest);

    // A what-if grid with no targets.
    net::WhatIfGridReq wq;
    wq.traceDigest = upr->traceDigest;
    requireError(service.handle(Frame::request(5, wq)),
                 net::ErrorCode::BadRequest);

    // A newer client's message type: answered, not disconnected.
    Frame unknown;
    unknown.requestId = 6;
    unknown.rawType = 0x7000;
    requireError(service.handle(unknown),
                 net::ErrorCode::UnknownMessage);

    // A response frame is not a request.
    requireError(service.handle(Frame::response(7, net::StatsResp{})),
                 net::ErrorCode::BadRequest);

    // Every reply above carried its request's id.
    Frame stats = service.handle(Frame::request(8, net::StatsReq{}));
    const auto *sr = std::get_if<net::StatsResp>(&stats.body);
    ASSERT_NE(sr, nullptr);
    EXPECT_EQ(sr->requests, 8u);
    EXPECT_EQ(sr->errors, 6u);
    EXPECT_EQ(sr->tracesCached, 1u);
}

TEST(ServeServer, TcpEndToEndMatchesLocalServiceBitIdentically)
{
    serve::ServerConfig config;
    config.workers = 2;
    serve::Server server(config);
    ASSERT_NE(server.port(), 0);
    std::thread serverThread([&server] { server.run(); });

    // A local mirror of the server's application state: the same
    // request sequence must produce byte-identical replies.
    TraceStore mirrorStore(config.cacheBytes);
    Service mirror(mirrorStore);

    {
        auto client = net::RpcClient::connectTcp(server.port());
        const auto image = makeImage(7);

        net::UploadTraceReq up;
        up.image = image;
        Frame upReply = client.call(up);
        Frame upMirror =
            mirror.handle(Frame::request(upReply.requestId, up));
        EXPECT_EQ(net::encodeFrame(upReply),
                  net::encodeFrame(upMirror));
        const auto *upr =
            std::get_if<net::UploadTraceResp>(&upReply.body);
        ASSERT_NE(upr, nullptr);

        net::PredictReq pq;
        pq.traceDigest = upr->traceDigest;
        pq.targetMHz = 3000;
        Frame pReply = client.call(pq);
        Frame pMirror =
            mirror.handle(Frame::request(pReply.requestId, pq));
        EXPECT_EQ(net::encodeFrame(pReply), net::encodeFrame(pMirror));

        net::OptimalVfReq oq;
        oq.traceDigest = upr->traceDigest;
        oq.slowdownPermille = 200;
        Frame oReply = client.call(oq);
        Frame oMirror =
            mirror.handle(Frame::request(oReply.requestId, oq));
        EXPECT_EQ(net::encodeFrame(oReply), net::encodeFrame(oMirror));
    }

    server.stop();
    serverThread.join();
    EXPECT_GE(server.requestsServed(), 3u);
}

TEST(ServeServer, PayloadErrorKeepsConnectionHeaderErrorClosesIt)
{
    serve::ServerConfig config;
    config.workers = 1;
    serve::Server server(config);
    std::thread serverThread([&server] { server.run(); });

    const int fd = net::connectTcp(server.port());

    // A frame whose header is sound but whose payload is malformed
    // (nonzero reserved word, digest resealed so only the structural
    // check can catch it): the frame boundary is known, so the server
    // answers Error{BadRequest} and keeps the stream usable.
    net::PredictReq pq;
    pq.traceDigest = 1;
    pq.targetMHz = 2000;
    auto malformed = net::encodeFrame(Frame::request(1, pq));
    malformed[net::kFrameHeaderBytes + 12] = 0xff;
    resealDigest(malformed);
    net::sendAll(fd, malformed.data(), malformed.size());

    Frame reply;
    ASSERT_TRUE(recvFrame(fd, reply));
    requireError(reply, net::ErrorCode::BadRequest);

    // The connection survived: a well-formed request still answers.
    const auto stats = net::encodeFrame(
        Frame::request(2, net::StatsReq{}));
    net::sendAll(fd, stats.data(), stats.size());
    ASSERT_TRUE(recvFrame(fd, reply));
    EXPECT_EQ(reply.requestId, 2u);
    EXPECT_TRUE(std::holds_alternative<net::StatsResp>(reply.body));

    // Garbage where a header should be: the stream itself cannot be
    // trusted, so the Error reply is followed by a close.
    const std::uint8_t junk[net::kFrameHeaderBytes] = {0};
    net::sendAll(fd, junk, sizeof(junk));
    ASSERT_TRUE(recvFrame(fd, reply));
    requireError(reply, net::ErrorCode::BadRequest);
    EXPECT_FALSE(recvFrame(fd, reply))
        << "connection stayed open after a header-level error";
    ::close(fd);

    server.stop();
    serverThread.join();
}

TEST(ServeServer, UnixSocketEndToEnd)
{
    serve::ServerConfig config;
    config.unixPath = testing::TempDir() + "/dvfsd_test.sock";
    config.workers = 1;
    serve::Server server(config);
    EXPECT_EQ(server.port(), 0);
    std::thread serverThread([&server] { server.run(); });

    {
        auto client = net::RpcClient::connectUnix(config.unixPath);
        Frame reply = client.call(net::StatsReq{});
        const auto *sr = std::get_if<net::StatsResp>(&reply.body);
        ASSERT_NE(sr, nullptr);
        EXPECT_EQ(sr->requests, 1u);
    }

    server.stop();
    serverThread.join();
    // The socket file is unlinked on server destruction, not here.
}
