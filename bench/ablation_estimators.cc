/**
 * @file
 * Ablation: the per-thread estimator ladder inside DEP.
 *
 * Section II-A of the paper reviews the three sequential DVFS
 * estimators (Stall Time < Leading Loads < CRIT in accuracy) and the
 * paper builds DEP on CRIT. This harness quantifies that choice in our
 * reproduction by running the full DEP pipeline with each base
 * estimator, with and without BURST, plus the simulator's oracle
 * non-scaling counter as the ceiling.
 *
 * Ground truth (benchmark x {1 GHz, 4 GHz}) is an ObservedGrid that
 * serves both directions: live simulation on the sweep engine by
 * default, or recorded .dvfstrace replay via --trace-dir (recording
 * the traces first when the directory is incomplete).
 *
 * The DEP variants are constructed through the PredictorRegistry
 * ("DEP" family over each ModelSpec); table headers keep the ModelSpec
 * spellings (STALL, STALL+BURST, ...) since the columns ablate specs,
 * not registry families.
 *
 * Usage: ablation_estimators [--dir=up|down|both] [--only=<name>]
 *                            [--trace-dir=DIR] [--workers=N]
 *                            [--progress]
 */

#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "exp/sweep/trace_cache.hh"
#include "exp/table.hh"
#include "pred/registry.hh"

using namespace dvfs;
using namespace dvfs::pred;

namespace {

void
runDirection(const char *label, Frequency base, Frequency target,
             const exp::sweep::ObservedGrid &grid)
{
    const std::vector<ModelSpec> specs = {
        {BaseEstimator::StallTime, false},
        {BaseEstimator::StallTime, true},
        {BaseEstimator::LeadingLoads, false},
        {BaseEstimator::LeadingLoads, true},
        {BaseEstimator::Crit, false},
        {BaseEstimator::Crit, true},
        {BaseEstimator::Oracle, false},
        {BaseEstimator::Oracle, true},
    };
    const auto &registry = PredictorRegistry::instance();

    std::vector<std::string> headers = {"benchmark"};
    for (const auto &s : specs)
        headers.push_back(s.name());
    exp::Table table(headers);

    std::map<std::string, std::vector<double>> errs;
    for (std::size_t w = 0; w < grid.spec.workloads.size(); ++w) {
        const auto &params = grid.spec.workloads[w];
        const auto &base_cell = grid.at(w, base);
        Tick actual = grid.at(w, target).totalTime;

        std::vector<std::string> row = {params.name};
        for (const auto &s : specs) {
            auto p = registry.make("DEP", s);
            double e = Predictor::relativeError(
                p->predict(base_cell.view(), target), actual);
            errs[s.name()].push_back(e);
            row.push_back(exp::Table::pct(e));
        }
        table.addRow(std::move(row));
    }
    table.addSeparator();
    std::vector<std::string> avg = {"avg |err|"};
    for (const auto &s : specs)
        avg.push_back(exp::Table::pct(exp::meanAbs(errs[s.name()])));
    table.addRow(std::move(avg));

    std::cout << "\nEstimator ablation (" << label << "): DEP with each "
              << "base estimator, " << base.toString() << " -> "
              << target.toString() << "\n\n";
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string dir = args.get("dir", "both");
    const std::string only = args.get("only");
    const std::string trace_dir = args.get("trace-dir");

    exp::sweep::SweepSpec spec;
    for (const auto &params : wl::dacapoSuite()) {
        if (only.empty() || params.name == only)
            spec.workloads.push_back(params);
    }
    if (spec.workloads.empty()) {
        std::cerr << "no benchmark matches --only=" << only << "\n";
        return 1;
    }
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(4.0)};

    exp::sweep::SweepRunner::Options opts;
    opts.workers = bench::sweepWorkers(args);
    opts.progress = args.has("progress");
    opts.label = "ablation";
    auto grid = exp::sweep::observeGrid(spec, opts, trace_dir);
    if (!trace_dir.empty()) {
        std::cout << (grid.replayed ? "replaying traces from "
                                    : "recorded traces to ")
                  << trace_dir << "\n";
    }

    if (dir == "up" || dir == "both")
        runDirection("low-to-high", Frequency::ghz(1.0),
                     Frequency::ghz(4.0), grid);
    if (dir == "down" || dir == "both")
        runDirection("high-to-low", Frequency::ghz(4.0),
                     Frequency::ghz(1.0), grid);

    std::cout << "\nExpected ladder (paper Section II-A): STALL "
                 "underestimates the non-scaling\ncomponent (work "
                 "commits underneath misses), Leading Loads misses "
                 "variable\nlatency, CRIT tracks the critical "
                 "dependence path. ORACLE reports the base\nrun's "
                 "true exposed memory time; note that CRIT can beat "
                 "it: overlap\nshrinks at higher frequency, so "
                 "CRIT's deliberate over-counting of\nhidden misses "
                 "anticipates the exposure the oracle cannot.\n";
    return 0;
}
