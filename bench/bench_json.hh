/**
 * @file
 * Append-only JSON-lines perf trajectory (BENCH_sweep.json).
 *
 * Every sweep-capable bench appends one self-contained JSON record per
 * measured configuration, so repeated runs accumulate a performance
 * trajectory over time instead of overwriting each other. The schema
 * (dvfs-sweep-bench-v1) is documented in EXPERIMENTS.md.
 */

#ifndef DVFS_BENCH_BENCH_JSON_HH
#define DVFS_BENCH_BENCH_JSON_HH

#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace dvfs::bench {

/** One BENCH_sweep.json record under construction. */
class SweepJsonRecord
{
  public:
    /**
     * @param bench  Emitting binary, e.g. "sweep_bench".
     * @param run    Configuration label, e.g. "workers=4".
     * @param schema Record schema; the trace record/replay tools emit
     *               "dvfs-trace-bench-v1" rows into the same file.
     */
    SweepJsonRecord(const std::string &bench, const std::string &run,
                    const std::string &schema = "dvfs-sweep-bench-v1")
    {
        _os << "{\"schema\":\"" << schema << "\""
            << ",\"bench\":\"" << bench << "\""
            << ",\"run\":\"" << run << "\"";
        unsigned hw = std::thread::hardware_concurrency();
        add("hardware_threads", static_cast<std::uint64_t>(hw ? hw : 1));
        auto now = std::chrono::system_clock::now().time_since_epoch();
        add("timestamp_unix",
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::seconds>(now)
                    .count()));
    }

    SweepJsonRecord &
    add(const std::string &key, std::uint64_t v)
    {
        _os << ",\"" << key << "\":" << v;
        return *this;
    }

    SweepJsonRecord &
    add(const std::string &key, double v)
    {
        _os << ",\"" << key << "\":" << v;
        return *this;
    }

    /** Add a string value (no escaping: keys/values are identifiers). */
    SweepJsonRecord &
    add(const std::string &key, const std::string &v)
    {
        _os << ",\"" << key << "\":\"" << v << "\"";
        return *this;
    }

    /** Keep string literals from decaying to the bool overload set. */
    SweepJsonRecord &
    add(const std::string &key, const char *v)
    {
        return add(key, std::string(v));
    }

    /** Add a pre-serialized JSON value (object/array) verbatim. */
    SweepJsonRecord &
    addRaw(const std::string &key, const std::string &json)
    {
        _os << ",\"" << key << "\":" << json;
        return *this;
    }

    /** Add a 64-bit fingerprint as a hex string (JSON-safe). */
    SweepJsonRecord &
    addHex(const std::string &key, std::uint64_t v)
    {
        _os << ",\"" << key << "\":\"0x" << std::hex << v << std::dec
            << "\"";
        return *this;
    }

    /** Append the finished record as one line of @p path. */
    void
    appendTo(const std::string &path) const
    {
        std::ofstream f(path, std::ios::app);
        f << _os.str() << "}\n";
    }

  private:
    std::ostringstream _os;
};

} // namespace dvfs::bench

#endif // DVFS_BENCH_BENCH_JSON_HH
