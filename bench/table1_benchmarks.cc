/**
 * @file
 * Table I reproduction: benchmark characterisation at 1 GHz.
 *
 * Prints, per benchmark: type (memory/compute-intensive), heap size,
 * execution time and GC time at 1 GHz (de-scaled to the paper's time
 * base, i.e. simulated value x100), next to the values Table I of the
 * paper reports. The shape to check: relative run-time ordering and
 * the >10%-GC-time rule that classifies a benchmark memory-intensive.
 *
 * Usage: table1_benchmarks [--only=<name>] [--freq-mhz=1000]
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "exp/experiment.hh"
#include "exp/table.hh"

using namespace dvfs;

namespace {

/** Table I reference values (ms at 1 GHz). */
struct PaperRow {
    const char *name;
    double execMs;
    double gcMs;
};

constexpr PaperRow kPaper[] = {
    {"xalan", 1400, 270},       {"pmd", 1345, 230},
    {"pmd.scale", 500, 80},     {"lusearch", 2600, 285},
    {"lusearch.fix", 1249, 42}, {"avrora", 1782, 5},
    {"sunflow", 4900, 82},
};

double
paperExec(const std::string &name)
{
    for (const auto &r : kPaper) {
        if (name == r.name)
            return r.execMs;
    }
    return 0.0;
}

double
paperGc(const std::string &name)
{
    for (const auto &r : kPaper) {
        if (name == r.name)
            return r.gcMs;
    }
    return 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string only = args.get("only");
    const auto freq =
        Frequency::mhz(static_cast<std::uint32_t>(
            args.getInt("freq-mhz", 1000)));

    std::cout << "Table I: benchmark characterisation at "
              << freq.toString()
              << " (simulated times de-scaled x100, see DESIGN.md)\n\n";

    exp::Table table({"benchmark", "type", "heap(MB)", "exec(ms)",
                      "paper exec", "GC(ms)", "paper GC", "GC share",
                      "GCs", "alloc(MB)"});

    for (const auto &params : wl::dacapoSuite()) {
        if (!only.empty() && params.name != only)
            continue;
        auto out = exp::runFixed(params, freq);
        const double exec_ms = wl::descaleMs(out.totalTime);
        const double gc_ms = wl::descaleMs(out.gcTime);
        table.addRow({
            params.name,
            params.memoryIntensive ? "M" : "C",
            std::to_string(params.heapMB),
            exp::Table::fmt(exec_ms, 0),
            exp::Table::fmt(paperExec(params.name), 0),
            exp::Table::fmt(gc_ms, 0),
            exp::Table::fmt(paperGc(params.name), 0),
            exp::Table::pct(static_cast<double>(out.gcTime) /
                            static_cast<double>(out.totalTime)),
            std::to_string(out.collections),
            exp::Table::fmt(static_cast<double>(out.allocatedBytes) /
                                (1 << 20),
                            1),
        });
    }
    table.print(std::cout);
    return 0;
}
