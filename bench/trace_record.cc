/**
 * @file
 * Record the fig3-style ground-truth grid to .dvfstrace files.
 *
 * Simulates every (benchmark x operating point) cell of the Figure 3
 * grid once on the sweep engine and persists each cell's observation
 * record (epochs, per-thread counter deltas, thread summaries, GC
 * marks) to --out. A directory produced here feeds trace_replay,
 * fig3_accuracy --trace-dir and ablation_estimators --trace-dir: the
 * expensive simulation happens once, every later predictor evaluation
 * replays from disk.
 *
 * Appends one dvfs-trace-bench-v1 record (phase=record) per run to
 * the JSONL trajectory (see EXPERIMENTS.md).
 *
 * Usage: trace_record --out=DIR [--benchmarks=N] [--only=<name>]
 *                     [--seed=42] [--workers=N] [--progress]
 *                     [--json=BENCH_sweep.json]
 */

#include <chrono>
#include <iostream>

#include "bench_json.hh"
#include "bench_util.hh"
#include "exp/sweep/fingerprint.hh"
#include "exp/sweep/trace_cache.hh"
#include "exp/table.hh"

using namespace dvfs;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string out = args.get("out");
    if (out.empty()) {
        std::cerr << "trace_record: --out=DIR is required\n";
        return 1;
    }

    exp::sweep::SweepSpec spec = bench::fig3GridSpec(
        static_cast<std::size_t>(args.getInt("benchmarks", 0)),
        args.get("only"));
    if (spec.workloads.empty()) {
        std::cerr << "no benchmark matches --only=" << args.get("only")
                  << "\n";
        return 1;
    }
    spec.seeds = {static_cast<std::uint64_t>(args.getInt("seed", 42))};

    exp::sweep::SweepRunner::Options opts;
    opts.workers = bench::sweepWorkers(args);
    opts.progress = args.has("progress");
    opts.label = "trace_record";

    const std::size_t cells = spec.cellCount();
    std::cout << "trace_record: " << spec.workloads.size()
              << " benchmarks x " << spec.frequencies.size()
              << " frequencies = " << cells << " cells -> " << out
              << "\n";

    const auto t0 = std::chrono::steady_clock::now();
    auto grid = exp::sweep::recordGrid(spec, opts, out);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    // Grid digest over the live cells: lets replay tools prove the
    // recorded traces came from this exact simulation.
    exp::sweep::Fnv1a h;
    for (const auto &cell : grid.live->cells)
        h.mix(exp::sweep::fingerprintRun(cell));

    const double cells_s =
        static_cast<double>(cells) / (wall_ms / 1000.0);
    std::cout << "recorded " << cells << " cells in "
              << exp::Table::fmt(wall_ms, 1) << " ms ("
              << exp::Table::fmt(cells_s, 2) << " cells/s), digest 0x"
              << std::hex << h.digest() << std::dec << "\n";

    bench::SweepJsonRecord rec(
        "trace_record",
        "benchmarks=" + std::to_string(spec.workloads.size()),
        "dvfs-trace-bench-v1");
    rec.add("phase", "record")
        .add("workers", static_cast<std::uint64_t>(opts.workers))
        .add("cells", static_cast<std::uint64_t>(cells))
        .add("wall_ms", wall_ms)
        .add("cells_per_sec", cells_s)
        .addHex("grid_digest", h.digest());
    rec.appendTo(args.get("json", "BENCH_sweep.json"));
    return 0;
}
