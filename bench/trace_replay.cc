/**
 * @file
 * Replay recorded traces through the full predictor zoo — offline.
 *
 * Loads the fig3-style grid from a trace directory produced by
 * trace_record and evaluates every registry predictor across the full
 * frequency grid in both directions, printing the same error tables
 * fig3_accuracy prints — with zero simulation. Predictor names in all
 * output are the PredictorRegistry's canonical spellings.
 *
 * --verify-live re-simulates the grid and fails (exit 1) unless every
 * replayed predictor error is bit-identical to the live path — the CI
 * trace-roundtrip gate. The measured record (live) vs replay speedup
 * goes into the JSONL record.
 *
 * Appends one dvfs-trace-bench-v1 record (phase=replay) per run to
 * the JSONL trajectory (see EXPERIMENTS.md).
 *
 * Usage: trace_replay --traces=DIR [--benchmarks=N] [--only=<name>]
 *                     [--seed=42] [--dir=up|down|both] [--verify-live]
 *                     [--workers=N] [--json=BENCH_sweep.json]
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <vector>

#include "bench_json.hh"
#include "bench_util.hh"
#include "exp/sweep/trace_cache.hh"
#include "exp/table.hh"
#include "pred/registry.hh"
#include "trace/replay.hh"

using namespace dvfs;

namespace {

struct Direction {
    const char *label;
    Frequency base;
    std::vector<Frequency> targets;
};

/** errors[predictor][targetMHz] -> per-benchmark error list. */
using ErrorGrid =
    std::map<std::string, std::map<std::uint32_t, std::vector<double>>>;

/**
 * Evaluate one direction over an observed grid and print the fig3
 * table. Returns every error keyed by (predictor, target).
 */
ErrorGrid
runDirection(const Direction &dir, const exp::sweep::ObservedGrid &grid,
             std::ostream *out)
{
    ErrorGrid errors;

    std::vector<std::string> headers = {"benchmark", "predictor"};
    for (auto t : dir.targets)
        headers.push_back("err @" + t.toString());
    exp::Table table(headers);

    trace::ReplayEngine engine;  // the registry's Figure 3 zoo

    for (std::size_t w = 0; w < grid.spec.workloads.size(); ++w) {
        const auto &base_cell = grid.at(w, dir.base);

        std::vector<trace::ReplayTarget> targets;
        for (auto t : dir.targets)
            targets.push_back({t, grid.at(w, t).totalTime});

        auto cells = engine.evaluate(base_cell.view(), targets);

        // Rows are predictor-major like fig3; cells are target-major.
        const auto names = engine.predictorNames();
        bool first = true;
        for (std::size_t p = 0; p < names.size(); ++p) {
            std::vector<std::string> row = {
                first ? grid.spec.workloads[w].name : "", names[p]};
            first = false;
            for (std::size_t t = 0; t < targets.size(); ++t) {
                const auto &cell = cells[t * names.size() + p];
                errors[cell.predictor][cell.target.toMHz()].push_back(
                    cell.error);
                row.push_back(exp::Table::pct(cell.error));
            }
            table.addRow(std::move(row));
        }
        table.addSeparator();
    }

    for (const auto &name : trace::ReplayEngine().predictorNames()) {
        std::vector<std::string> row = {"avg |err|", name};
        for (auto t : dir.targets)
            row.push_back(
                exp::Table::pct(exp::meanAbs(errors[name][t.toMHz()])));
        table.addRow(std::move(row));
    }

    if (out) {
        *out << "\nFigure 3 (" << dir.label << "): base "
             << dir.base.toString() << "\n\n";
        table.print(*out);
    }
    return errors;
}

/** Bitwise double equality (matches the golden-trace tests). */
bool
sameBits(double a, double b)
{
    std::uint64_t ua, ub;
    std::memcpy(&ua, &a, sizeof(ua));
    std::memcpy(&ub, &b, sizeof(ub));
    return ua == ub;
}

/** Count (predictor, target, benchmark) cells that diverge. */
std::size_t
diffErrors(const ErrorGrid &a, const ErrorGrid &b)
{
    std::size_t diverged = 0;
    if (a.size() != b.size())
        return 1;
    for (const auto &[name, by_target] : a) {
        auto it = b.find(name);
        if (it == b.end())
            return 1;
        for (const auto &[mhz, errs] : by_target) {
            auto jt = it->second.find(mhz);
            if (jt == it->second.end() ||
                jt->second.size() != errs.size())
                return 1;
            for (std::size_t i = 0; i < errs.size(); ++i) {
                if (!sameBits(errs[i], jt->second[i]))
                    ++diverged;
            }
        }
    }
    return diverged;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string traces = args.get("traces");
    if (traces.empty()) {
        std::cerr << "trace_replay: --traces=DIR is required\n";
        return 1;
    }
    const std::string dir = args.get("dir", "both");

    exp::sweep::SweepSpec spec = bench::fig3GridSpec(
        static_cast<std::size_t>(args.getInt("benchmarks", 0)),
        args.get("only"));
    if (spec.workloads.empty()) {
        std::cerr << "no benchmark matches --only=" << args.get("only")
                  << "\n";
        return 1;
    }
    spec.seeds = {static_cast<std::uint64_t>(args.getInt("seed", 42))};

    Direction up{"a: low-to-high", Frequency::ghz(1.0),
                 {Frequency::ghz(2.0), Frequency::ghz(3.0),
                  Frequency::ghz(4.0)}};
    Direction down{"b: high-to-low", Frequency::ghz(4.0),
                   {Frequency::ghz(3.0), Frequency::ghz(2.0),
                    Frequency::ghz(1.0)}};
    std::vector<const Direction *> dirs;
    if (dir == "up" || dir == "both")
        dirs.push_back(&up);
    if (dir == "down" || dir == "both")
        dirs.push_back(&down);

    const std::size_t cells = spec.cellCount();

    const auto t0 = std::chrono::steady_clock::now();
    exp::sweep::ObservedGrid grid;
    try {
        grid = exp::sweep::loadGrid(spec, traces);
    } catch (const trace::TraceError &e) {
        std::cerr << "trace_replay: cannot replay (" << e.what()
                  << "); run trace_record first\n";
        return 1;
    }
    std::vector<ErrorGrid> replayed;
    for (const Direction *d : dirs)
        replayed.push_back(runDirection(*d, grid, &std::cout));
    const auto t1 = std::chrono::steady_clock::now();
    const double replay_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    const double replay_cells_s =
        static_cast<double>(cells) / (replay_ms / 1000.0);
    std::cout << "\nreplayed " << cells << " cells ("
              << dirs.size() * trace::ReplayEngine().predictorNames()
                                   .size()
              << " predictor columns) in "
              << exp::Table::fmt(replay_ms, 1) << " ms ("
              << exp::Table::fmt(replay_cells_s, 2) << " cells/s)\n";

    bench::SweepJsonRecord rec(
        "trace_replay",
        "benchmarks=" + std::to_string(spec.workloads.size()),
        "dvfs-trace-bench-v1");
    rec.add("phase", "replay")
        .add("cells", static_cast<std::uint64_t>(cells))
        .add("wall_ms", replay_ms)
        .add("cells_per_sec", replay_cells_s);

    int status = 0;
    if (args.has("verify-live")) {
        exp::sweep::SweepRunner::Options opts;
        opts.workers = bench::sweepWorkers(args);
        opts.progress = args.has("progress");
        opts.label = "trace_replay verify";

        const auto v0 = std::chrono::steady_clock::now();
        auto live = exp::sweep::recordGrid(spec, opts);
        std::vector<ErrorGrid> live_errors;
        for (const Direction *d : dirs)
            live_errors.push_back(runDirection(*d, live, nullptr));
        const auto v1 = std::chrono::steady_clock::now();
        const double live_ms =
            std::chrono::duration<double, std::milli>(v1 - v0).count();

        std::size_t diverged = 0;
        for (std::size_t i = 0; i < dirs.size(); ++i)
            diverged += diffErrors(live_errors[i], replayed[i]);

        rec.add("live_ms", live_ms)
            .add("replay_speedup_vs_live", live_ms / replay_ms)
            .add("diverged_cells",
                 static_cast<std::uint64_t>(diverged));

        if (diverged != 0) {
            std::cerr << "trace_replay: DIVERGENCE — " << diverged
                      << " replayed predictor errors differ from the "
                         "live path\n";
            status = 1;
        } else {
            std::cout << "verify-live: all replayed predictor errors "
                         "bit-identical to the live path ("
                      << exp::Table::fmt(live_ms, 1)
                      << " ms live vs "
                      << exp::Table::fmt(replay_ms, 1)
                      << " ms replay, "
                      << exp::Table::fmt(live_ms / replay_ms, 1)
                      << "x)\n";
        }
    }

    rec.appendTo(args.get("json", "BENCH_sweep.json"));
    return status;
}
