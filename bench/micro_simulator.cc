/**
 * @file
 * Microbenchmarks (google-benchmark) for the simulator substrate:
 * event-queue throughput, DRAM/cache model cost, and whole-benchmark
 * simulation rate (the "ablation" data for DESIGN.md's atomic-cluster
 * issue decision: how much wall time one simulated run costs).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hh"
#include "bench_util.hh"
#include "exp/experiment.hh"
#include "exp/sweep/fingerprint.hh"
#include "exp/sweep/sweep.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "uarch/cache.hh"
#include "uarch/dram.hh"

using namespace dvfs;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(static_cast<Tick>((i * 7919) % 100000 + 1),
                        [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

static void
BM_DramRandomReads(benchmark::State &state)
{
    uarch::Dram dram;
    sim::Rng rng(1);
    Tick t = 0;
    for (auto _ : state) {
        t += 100000;
        benchmark::DoNotOptimize(
            dram.read(rng.nextBounded(1ULL << 30) & ~63ULL, t));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRandomReads);

static void
BM_CacheHierarchyLoad(benchmark::State &state)
{
    uarch::Dram dram;
    uarch::FreqDomain uncore("uncore", Frequency::mhz(1500));
    uarch::CacheHierarchy mem(4, uarch::HierarchyConfig{}, dram, uncore);
    sim::Rng rng(2);
    Tick t = 0;
    // A mix of hot (small region) and cold accesses.
    for (auto _ : state) {
        t += 1000;
        std::uint64_t addr = rng.nextBool(0.7)
                                 ? rng.nextBounded(64 * 1024)
                                 : rng.nextBounded(1ULL << 28);
        benchmark::DoNotOptimize(
            mem.load(0, addr & ~63ULL, t, Frequency::ghz(2.0)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyLoad);

/** Simulation rate: events per wall second for a full benchmark. */
static void
BM_FullRunSynthetic(benchmark::State &state)
{
    auto params = wl::syntheticSmall(4, 150);
    std::uint64_t events = 0;
    for (auto _ : state) {
        auto out = exp::runFixed(params, Frequency::ghz(2.0));
        events += out.events;
        benchmark::DoNotOptimize(out.totalTime);
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("items = simulated events");
}
BENCHMARK(BM_FullRunSynthetic);

static void
BM_FullRunDacapo(benchmark::State &state)
{
    auto params = wl::benchmarkByName("pmd.scale");
    std::uint64_t events = 0;
    for (auto _ : state) {
        auto out = exp::runFixed(params, Frequency::ghz(2.0));
        events += out.events;
        benchmark::DoNotOptimize(out.totalTime);
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("one full pmd.scale ground-truth run per iteration");
}
BENCHMARK(BM_FullRunDacapo);

/** Same run under interval sampling: the fast-path speedup, isolated. */
static void
BM_FullRunDacapoSampled(benchmark::State &state)
{
    auto params = wl::benchmarkByName("pmd.scale");
    exp::RunOptions opts;
    opts.mode = exp::SimMode::Sampled;
    std::uint64_t events = 0;
    for (auto _ : state) {
        auto out = exp::runFixed(params, Frequency::ghz(2.0), opts);
        events += out.events;
        benchmark::DoNotOptimize(out.totalTime);
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("one sampled pmd.scale run per iteration");
}
BENCHMARK(BM_FullRunDacapoSampled);

/** Sweep-engine overhead: a grid of tiny synthetic runs per worker count. */
static void
BM_SweepSynthetic(benchmark::State &state)
{
    const auto workers = static_cast<unsigned>(state.range(0));
    exp::sweep::SweepSpec spec;
    spec.workloads = {wl::syntheticSmall(2, 40)};
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(2.0),
                        Frequency::ghz(3.0), Frequency::ghz(4.0)};
    spec.seeds = exp::sweep::SweepSpec::replicateSeeds(42, 4);

    exp::sweep::SweepRunner::Options ro;
    ro.workers = workers;
    for (auto _ : state) {
        auto res = exp::sweep::SweepRunner(spec, ro).run();
        benchmark::DoNotOptimize(res.cells.front().totalTime);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(spec.cellCount()));
    state.SetLabel("items = sweep cells");
}
BENCHMARK(BM_SweepSynthetic)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

namespace {

/**
 * Direct wall-clock measurement of the synthetic sweep grid at one
 * worker count, appended to BENCH_sweep.json after the
 * google-benchmark run (google-benchmark's console/JSON reporters are
 * either/or; the trajectory file needs append semantics).
 */
void
appendSweepRecord(exp::SimMode mode, unsigned requested,
                  unsigned effective, unsigned repeat, double serial_ms,
                  double wall_ms, std::uint64_t digest, std::size_t cells,
                  const std::string &json_path)
{
    dvfs::bench::SweepJsonRecord rec(
        "micro_simulator",
        "synthetic workers=" + std::to_string(effective));
    rec.add("mode", exp::simModeName(mode))
        .add("workers", static_cast<std::uint64_t>(effective))
        .add("requested_workers", static_cast<std::uint64_t>(requested))
        .add("effective_workers", static_cast<std::uint64_t>(effective))
        .add("cells", static_cast<std::uint64_t>(cells))
        .add("repeat", static_cast<std::uint64_t>(repeat))
        .add("wall_ms", wall_ms)
        .add("cells_per_sec",
             static_cast<double>(cells) / (wall_ms / 1000.0))
        .add("speedup_vs_serial", serial_ms / wall_ms)
        .addHex("fingerprint", digest);
    rec.appendTo(json_path);
}

/** A trajectory configuration: what was asked vs what will run. */
struct WorkerCfg {
    unsigned requested;
    unsigned effective;
};

/**
 * Worker counts for the appended trajectory. The default {1, 2, 8}
 * ladder is clamped to the hardware width — oversubscribed sweeps
 * only measure scheduler noise — and configurations that collapse to
 * an already-present width are dropped. An explicit --workers=N is
 * honored verbatim (alongside the serial reference).
 */
std::vector<WorkerCfg>
trajectoryWorkers(long explicit_workers)
{
    std::vector<WorkerCfg> cfgs;
    if (explicit_workers >= 1) {
        auto w = static_cast<unsigned>(explicit_workers);
        cfgs.push_back({1, 1});
        if (w != 1)
            cfgs.push_back({w, w});
        return cfgs;
    }
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    for (unsigned w : {1u, 2u, 8u}) {
        const unsigned eff = std::min(w, hw);
        bool dup = false;
        for (const auto &c : cfgs)
            dup = dup || c.effective == eff;
        if (dup) {
            std::fprintf(stderr,
                         "micro_simulator: workers=%u clamped to hardware "
                         "width %u (already measured), skipping\n", w, hw);
            continue;
        }
        cfgs.push_back({w, eff});
    }
    return cfgs;
}

/**
 * @return true if every repeat of every configuration reproduced the
 *         same fingerprint.
 */
bool
emitSweepTrajectory(exp::SimMode mode, unsigned repeat,
                    long explicit_workers, const std::string &json_path)
{
    exp::sweep::SweepSpec spec;
    spec.workloads = {wl::syntheticSmall(2, 40)};
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(2.0),
                        Frequency::ghz(3.0), Frequency::ghz(4.0)};
    spec.seeds = exp::sweep::SweepSpec::replicateSeeds(42, 4);
    spec.runOptions.mode = mode;
    const std::size_t cells = spec.cellCount();

    bool consistent = true;
    double serial_ms = 0.0;
    for (const WorkerCfg &cfg : trajectoryWorkers(explicit_workers)) {
        double best_ms = 0.0;
        std::uint64_t digest = 0;
        for (unsigned r = 0; r < repeat; ++r) {
            exp::sweep::SweepRunner::Options ro;
            ro.workers = cfg.effective;
            auto t0 = std::chrono::steady_clock::now();
            auto res = exp::sweep::SweepRunner(spec, ro).run();
            auto t1 = std::chrono::steady_clock::now();
            double ms =
                std::chrono::duration<double, std::milli>(t1 - t0).count();

            exp::sweep::Fnv1a h;
            for (const auto &cell : res.cells)
                h.mix(exp::sweep::fingerprintRun(cell));
            if (r == 0) {
                best_ms = ms;
                digest = h.digest();
            } else {
                best_ms = std::min(best_ms, ms);
                consistent = consistent && h.digest() == digest;
            }
        }
        if (serial_ms == 0.0)
            serial_ms = best_ms;  // first config is the serial reference
        appendSweepRecord(mode, cfg.requested, cfg.effective, repeat,
                          serial_ms, best_ms, digest, cells, json_path);
    }
    return consistent;
}

} // namespace

int
main(int argc, char **argv)
{
    // --repeat/--workers/--json/--mode are ours, not
    // google-benchmark's: they shape the appended sweep trajectory
    // records. parseKnown() consumes only our declared flags before
    // benchmark::Initialize rejects them as unrecognized; --help
    // prints our flags and then falls through so google-benchmark
    // documents its own.
    bench::FlagSet flags("micro_simulator",
                         "sweep-trajectory flags (the rest go to "
                         "google-benchmark)");
    flags.addMode()
        .add("repeat", "N",
             "repeats per worker count, min wall recorded")
        .add("workers", "N",
             "measure only this pool width (default ladder 1,2,8)")
        .add("json", "PATH",
             "trajectory file (default BENCH_sweep.json)");
    argc = flags.parseKnown(argc, argv);

    const auto repeat = static_cast<unsigned>(
        std::max(1L, flags.getInt("repeat", 1)));
    // 0: default ladder, clamped to hardware width
    const long workers = flags.getInt("workers", 0);
    const std::string json_path =
        flags.get("json", "BENCH_sweep.json");
    const exp::SimMode mode = bench::modeFromArgs(flags);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!emitSweepTrajectory(mode, repeat, workers, json_path)) {
        std::fprintf(stderr,
                     "micro_simulator: FINGERPRINT MISMATCH across "
                     "repeats — runs are not deterministic\n");
        return 1;
    }
    return 0;
}
