/**
 * @file
 * Microbenchmarks (google-benchmark) for the simulator substrate:
 * event-queue throughput, DRAM/cache model cost, and whole-benchmark
 * simulation rate (the "ablation" data for DESIGN.md's atomic-cluster
 * issue decision: how much wall time one simulated run costs).
 */

#include <benchmark/benchmark.h>

#include "exp/experiment.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "uarch/cache.hh"
#include "uarch/dram.hh"

using namespace dvfs;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(static_cast<Tick>((i * 7919) % 100000 + 1),
                        [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

static void
BM_DramRandomReads(benchmark::State &state)
{
    uarch::Dram dram;
    sim::Rng rng(1);
    Tick t = 0;
    for (auto _ : state) {
        t += 100000;
        benchmark::DoNotOptimize(
            dram.read(rng.nextBounded(1ULL << 30) & ~63ULL, t));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRandomReads);

static void
BM_CacheHierarchyLoad(benchmark::State &state)
{
    uarch::Dram dram;
    uarch::FreqDomain uncore("uncore", Frequency::mhz(1500));
    uarch::CacheHierarchy mem(4, uarch::HierarchyConfig{}, dram, uncore);
    sim::Rng rng(2);
    Tick t = 0;
    // A mix of hot (small region) and cold accesses.
    for (auto _ : state) {
        t += 1000;
        std::uint64_t addr = rng.nextBool(0.7)
                                 ? rng.nextBounded(64 * 1024)
                                 : rng.nextBounded(1ULL << 28);
        benchmark::DoNotOptimize(
            mem.load(0, addr & ~63ULL, t, Frequency::ghz(2.0)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyLoad);

/** Simulation rate: events per wall second for a full benchmark. */
static void
BM_FullRunSynthetic(benchmark::State &state)
{
    auto params = wl::syntheticSmall(4, 150);
    std::uint64_t events = 0;
    for (auto _ : state) {
        auto out = exp::runFixed(params, Frequency::ghz(2.0));
        events += out.events;
        benchmark::DoNotOptimize(out.totalTime);
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("items = simulated events");
}
BENCHMARK(BM_FullRunSynthetic);

static void
BM_FullRunDacapo(benchmark::State &state)
{
    auto params = wl::benchmarkByName("pmd.scale");
    std::uint64_t events = 0;
    for (auto _ : state) {
        auto out = exp::runFixed(params, Frequency::ghz(2.0));
        events += out.events;
        benchmark::DoNotOptimize(out.totalTime);
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("one full pmd.scale ground-truth run per iteration");
}
BENCHMARK(BM_FullRunDacapo);

BENCHMARK_MAIN();
