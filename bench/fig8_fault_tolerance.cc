/**
 * @file
 * Figure 8: fault tolerance of the hardened energy manager.
 *
 * For every fault class the harness runs the same workload three
 * times under a seeded FaultPlan with the invariant auditor attached:
 * once pinned at the highest frequency (the faulted baseline) and
 * twice under the energy manager with the same seed. The two managed
 * runs must replay bit-identically (same fault-trace fingerprint,
 * same total time, same decision count), the realized slowdown versus
 * the faulted baseline must stay within Tolerable-Slowdown plus an
 * epsilon, and the auditor must report no invariant violations.
 *
 * A final scenario deliberately hangs the workload on a futex nobody
 * wakes, with the manager keeping the event queue alive forever: the
 * watchdog must convert that would-be infinite loop into a structured
 * diagnostic naming the blocked threads.
 *
 * Exit code is nonzero if any check fails, so this binary doubles as
 * an acceptance test for the fault subsystem.
 *
 * Usage: fig8_fault_tolerance [--seed=1445] [--threshold=0.05]
 *                             [--epsilon=0.05] [--threads=4]
 *                             [--items=600] [--quantum-us=50]
 */

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "exp/experiment.hh"
#include "exp/table.hh"
#include "fault/auditor.hh"
#include "fault/fault_plan.hh"
#include "mgr/energy_manager.hh"
#include "wl/builder.hh"
#include "wl/suite.hh"

using namespace dvfs;

namespace {

/** A thread replaying a fixed action list, then exiting. */
class ScriptProgram : public os::ThreadProgram
{
  public:
    explicit ScriptProgram(std::vector<os::Action> script)
        : _script(std::move(script))
    {
    }

    os::Action
    next(os::ThreadContext &) override
    {
        if (_pos < _script.size())
            return _script[_pos++];
        return os::Action::makeExit();
    }

  private:
    std::vector<os::Action> _script;
    std::size_t _pos = 0;
};

os::ThreadId
addScript(os::System &sys, const std::string &name,
          std::vector<os::Action> script)
{
    return sys.addThread(
        name, std::make_unique<ScriptProgram>(std::move(script)), false);
}

/**
 * The hung-futex scenario: two workers park on a futex that is never
 * woken, the main thread joins them, and the energy manager keeps
 * rescheduling quanta so the event queue never drains. Without the
 * watchdog this spins until the event-count panic; with it the run
 * stops with a diagnostic.
 */
bool
watchdogDemo(const power::VfTable &table, std::uint64_t seed)
{
    os::SystemConfig cfg = wl::defaultSystemConfig(table.highest());
    cfg.seed = seed;
    os::System sys(cfg);

    os::SyncId dead = sys.createFutex();
    os::ThreadId a = addScript(sys, "waiter-a",
                               {os::Action::makeCompute(50'000),
                                os::Action::makeFutexWait(dead)});
    os::ThreadId b = addScript(sys, "waiter-b",
                               {os::Action::makeCompute(80'000),
                                os::Action::makeFutexWait(dead)});
    os::ThreadId main_tid = addScript(sys, "main",
                                      {os::Action::makeJoin(a),
                                       os::Action::makeJoin(b)});
    sys.setMainThread(main_tid);

    pred::RunRecorder rec(sys);
    sys.addListener(&rec);

    fault::InvariantAuditor auditor(sys);
    auditor.observeEpochs(&rec);
    auditor.attach();

    mgr::EnergyManager manager(sys, rec, table, mgr::ManagerConfig{});
    manager.attach();

    os::RunResult res = sys.run();

    const fault::WatchdogReport &wd = auditor.watchdog();
    std::cout << "hung-futex scenario: run "
              << (res.aborted ? "aborted by watchdog" : "DID NOT ABORT")
              << " at " << ticksToUs(res.totalTime) << " us\n";
    if (wd.fired)
        std::cout << wd.message;

    bool ok = res.aborted && !res.finished && wd.fired &&
              wd.blockedThreads.size() == 3;
    if (!ok)
        std::cout << "FAIL: expected a watchdog abort with 3 blocked "
                     "threads\n";
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1445));
    const double threshold = args.getDouble("threshold", 0.05);
    const double epsilon = args.getDouble("epsilon", 0.05);
    const auto threads =
        static_cast<std::uint32_t>(args.getInt("threads", 4));
    const auto items = static_cast<std::uint64_t>(args.getInt("items", 600));
    const Tick quantum =
        static_cast<Tick>(args.getInt("quantum-us", 50)) * kTicksPerUs;

    auto table_vf = power::VfTable::haswell();
    wl::WorkloadParams params = wl::syntheticSmall(threads, items);
    // Enough allocation pressure for several nursery collections, so
    // the gc-inflation class has collections to inflate.
    params.allocBytesPerItem = 8192;
    params.allocChunkBytes = 2048;

    std::cout << "Figure 8: fault tolerance (seed " << seed
              << ", Tolerable-Slowdown " << exp::Table::pct(threshold, 0)
              << " + " << exp::Table::pct(epsilon, 0) << " epsilon)\n\n";

    exp::Table table({"fault class", "injected", "slowdown", "bound",
                      "replay", "violations", "fallbacks"});

    constexpr fault::FaultClass kClasses[] = {
        fault::FaultClass::DramLatencySpike,
        fault::FaultClass::DramBankStall,
        fault::FaultClass::DvfsDelay,
        fault::FaultClass::DvfsReject,
        fault::FaultClass::SpuriousWake,
        fault::FaultClass::PreemptJitter,
        fault::FaultClass::GcInflation,
    };

    bool all_ok = true;
    for (fault::FaultClass cls : kClasses) {
        exp::HardenedRunOptions opts;
        opts.faults = fault::FaultConfig::only(cls, seed);
        opts.seed = seed;
        opts.mgrCfg.quantum = quantum;
        opts.mgrCfg.tolerableSlowdown = threshold;

        // Faulted baseline: same disturbances, pinned at the highest
        // point. The manager's guarantee is relative to this.
        exp::HardenedRunOptions base_opts = opts;
        base_opts.managed = false;
        auto base = exp::runHardened(params, table_vf, base_opts);

        auto m1 = exp::runHardened(params, table_vf, opts);
        auto m2 = exp::runHardened(params, table_vf, opts);

        const bool replay_ok =
            m1.faultFingerprint == m2.faultFingerprint &&
            m1.totalTime == m2.totalTime &&
            m1.decisions.size() == m2.decisions.size();
        const double slowdown =
            static_cast<double>(m1.totalTime) /
                static_cast<double>(base.totalTime) -
            1.0;
        const bool bound_ok = slowdown <= threshold + epsilon;
        const bool clean = m1.violations.empty() &&
                           base.violations.empty() && m1.finished &&
                           base.finished;
        all_ok = all_ok && replay_ok && bound_ok && clean;

        table.addRow({faultClassName(cls),
                      std::to_string(m1.faultsInjected),
                      exp::Table::pct(slowdown),
                      bound_ok ? "ok" : "VIOLATED",
                      replay_ok ? "bit-identical" : "DIVERGED",
                      std::to_string(m1.violations.size() +
                                     base.violations.size()),
                      std::to_string(m1.fallbacks)});
    }
    table.print(std::cout);
    std::cout << "\n";

    bool wd_ok = watchdogDemo(table_vf, seed);
    all_ok = all_ok && wd_ok;

    std::cout << "\noverall: " << (all_ok ? "PASS" : "FAIL") << "\n";
    return all_ok ? 0 : 1;
}
