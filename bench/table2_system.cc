/**
 * @file
 * Table II reproduction: simulated system parameters, plus a
 * self-check that the machine actually exhibits the configured
 * latencies (cache hit levels, unloaded DRAM latency).
 */

#include <iostream>

#include "exp/table.hh"
#include "sim/log.hh"
#include "os/system.hh"
#include "power/vf_table.hh"
#include "wl/builder.hh"

using namespace dvfs;

int
main()
{
    os::SystemConfig cfg = wl::defaultSystemConfig(Frequency::ghz(1.0));
    os::System sys(cfg);

    std::cout << "Table II: simulated system parameters\n\n";

    exp::Table table({"component", "parameters"});
    table.addRow({"Processor",
                  dvfs::strprintf("%u cores, 1.0 GHz to 4.0 GHz (chip-wide DVFS)",
                            cfg.cores)});
    table.addRow({"Core",
                  dvfs::strprintf("out-of-order interval model, base IPC %.1f, "
                            "ROB %u, SQ %u entries",
                            cfg.core.baseIpc, cfg.core.robEntries,
                            cfg.core.sqEntries)});
    const auto &h = cfg.caches;
    table.addRow({"L1-D",
                  dvfs::strprintf("%u KB, %u-way, %u cycles (core clock)",
                            h.l1d.sizeBytes / 1024, h.l1d.assoc,
                            h.l1d.latencyCycles)});
    table.addRow({"L2",
                  dvfs::strprintf("%u KB, %u-way, %u cycles (core clock)",
                            h.l2.sizeBytes / 1024, h.l2.assoc,
                            h.l2.latencyCycles)});
    table.addRow({"L3 (shared)",
                  dvfs::strprintf("%u MB, %u-way, %u cycles @ %s (uncore)",
                            h.l3.sizeBytes / (1024 * 1024), h.l3.assoc,
                            h.l3.latencyCycles,
                            cfg.uncoreFreq.toString().c_str())});
    const auto &d = cfg.dram;
    table.addRow({"DRAM",
                  dvfs::strprintf("%u channels x %u banks, %u B lines, "
                            "tCAS/tRCD/tRP %.2f ns, burst %.1f ns",
                            d.channels, d.banksPerChannel, d.lineBytes,
                            d.tCasNs, d.tBurstNs)});
    table.addRow({"DVFS",
                  dvfs::strprintf("125 MHz steps, transition stall %.0f ns "
                            "(2 us at paper scale)",
                            ticksToNs(cfg.dvfsTransitionLatency))});

    auto vf = power::VfTable::haswell();
    table.addRow({"V/f table",
                  dvfs::strprintf("%zu operating points, %.2f V @ %s to "
                            "%.2f V @ %s",
                            vf.size(), vf.points().front().volts,
                            vf.lowest().toString().c_str(),
                            vf.points().back().volts,
                            vf.highest().toString().c_str())});
    table.print(std::cout);

    // Self-check: modelled latencies.
    std::cout << "\nSelf-check (measured from the model):\n";
    std::cout << "  unloaded DRAM read latency : "
              << ticksToNs(sys.dram().unloadedReadLatency()) << " ns\n";
    std::cout << "  L2 hit @1 GHz              : "
              << ticksToNs(sys.memory().l2HitTicks(Frequency::ghz(1.0)))
              << " ns (scales with core clock)\n";
    std::cout << "  L3 hit (uncore)            : "
              << ticksToNs(sys.memory().l3HitTicks())
              << " ns (fixed)\n";
    return 0;
}
