/**
 * @file
 * Figure 3 reproduction: per-benchmark DVFS prediction errors for
 * M+CRIT, COOP and DEP, each with and without BURST.
 *
 * (a) --dir=up   : base 1 GHz, targets 2/3/4 GHz
 * (b) --dir=down : base 4 GHz, targets 3/2/1 GHz
 * --dir=both (default) prints both.
 *
 * For every benchmark the harness obtains the ground truth at the base
 * and at each target frequency, feeds the base-run observations to
 * each predictor, and reports the signed relative error
 * estimated/actual-1 (negative = execution time underestimated), plus
 * the average absolute error across benchmarks — the paper's headline
 * metric (6% for DEP+BURST at 4 GHz from 1 GHz; 27% for M+CRIT).
 *
 * The (benchmark x frequency) ground-truth grid is an ObservedGrid:
 * with --trace-dir it replays recorded .dvfstrace files when a
 * complete set is present (recording one first otherwise), without it
 * the grid simulates on the sweep engine — both directions share the
 * same four operating points, so each cell is simulated exactly once
 * and cells run concurrently. Results are aggregated by cell index, so
 * the tables are identical at any worker count, and the replayed and
 * simulated paths produce bit-identical errors.
 *
 * Predictors come from the PredictorRegistry; the table's predictor
 * column uses the registry's canonical names.
 *
 * Usage: fig3_accuracy [--dir=up|down|both] [--only=<benchmark>]
 *                      [--trace-dir=DIR] [--workers=N] [--progress]
 */

#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "exp/sweep/trace_cache.hh"
#include "exp/table.hh"
#include "pred/registry.hh"

using namespace dvfs;

namespace {

struct Direction {
    const char *label;
    Frequency base;
    std::vector<Frequency> targets;
};

void
runDirection(const Direction &dir, const exp::sweep::ObservedGrid &grid)
{
    std::cout << "\nFigure 3 (" << dir.label
              << "): base " << dir.base.toString() << "\n\n";

    auto predictors = pred::PredictorRegistry::instance().figure3Set();

    // errors[predictor][target] -> per-benchmark list
    std::map<std::string, std::map<std::uint32_t, std::vector<double>>>
        errors;

    std::vector<std::string> headers = {"benchmark", "predictor"};
    for (auto t : dir.targets)
        headers.push_back("err @" + t.toString());
    exp::Table table(headers);

    for (std::size_t w = 0; w < grid.spec.workloads.size(); ++w) {
        const auto &params = grid.spec.workloads[w];

        const auto &base_cell = grid.at(w, dir.base);
        std::map<std::uint32_t, Tick> actual;
        for (auto t : dir.targets)
            actual[t.toMHz()] = grid.at(w, t).totalTime;

        bool first = true;
        for (const auto &p : predictors) {
            std::vector<std::string> row = {first ? params.name : "",
                                            p->name()};
            first = false;
            for (auto t : dir.targets) {
                Tick est = p->predict(base_cell.view(), t);
                double err =
                    pred::Predictor::relativeError(est, actual[t.toMHz()]);
                errors[p->name()][t.toMHz()].push_back(err);
                row.push_back(exp::Table::pct(err));
            }
            table.addRow(std::move(row));
        }
        table.addSeparator();
    }

    // Average absolute error rows.
    for (const auto &p : predictors) {
        std::vector<std::string> row = {"avg |err|", p->name()};
        for (auto t : dir.targets)
            row.push_back(
                exp::Table::pct(exp::meanAbs(errors[p->name()][t.toMHz()])));
        table.addRow(std::move(row));
    }

    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FlagSet args("fig3_accuracy",
                        "per-benchmark DVFS prediction errors "
                        "(Figure 3)");
    args.add("dir", "up|down|both",
             "prediction direction(s) to print (default both)")
        .add("only", "NAME", "run a single DaCapo benchmark")
        .addTraceDir("replay recorded .dvfstrace files from DIR "
                     "(recording them first if absent)")
        .addWorkers()
        .addBool("progress", "progress/ETA lines on stderr");
    args.parse(argc, argv);

    const std::string dir = args.get("dir", "both");
    const std::string only = args.get("only");
    const std::string trace_dir = args.get("trace-dir");

    Direction up{"a: low-to-high", Frequency::ghz(1.0),
                 {Frequency::ghz(2.0), Frequency::ghz(3.0),
                  Frequency::ghz(4.0)}};
    Direction down{"b: high-to-low", Frequency::ghz(4.0),
                   {Frequency::ghz(3.0), Frequency::ghz(2.0),
                    Frequency::ghz(1.0)}};

    // Both directions read the same four operating points, so one
    // grid covers them (the serial harness simulated each twice).
    exp::sweep::SweepSpec spec = bench::fig3GridSpec(0, only);
    if (spec.workloads.empty()) {
        std::cerr << "no benchmark matches --only=" << only << "\n";
        return 1;
    }

    exp::sweep::SweepRunner::Options opts;
    opts.workers = bench::sweepWorkers(args);
    opts.progress = args.has("progress");
    opts.label = "fig3";
    auto grid = exp::sweep::observeGrid(spec, opts, trace_dir);
    if (!trace_dir.empty()) {
        std::cout << (grid.replayed ? "replaying traces from "
                                    : "recorded traces to ")
                  << trace_dir << "\n";
    }

    if (dir == "up" || dir == "both")
        runDirection(up, grid);
    if (dir == "down" || dir == "both")
        runDirection(down, grid);
    return 0;
}
