/**
 * @file
 * Managed-sampled accuracy: speedup vs error under the energy manager.
 *
 * This is the repo's "Figure 10" extension: fig9 bounds the sampled
 * fast path's error on fixed-frequency grids; this bench bounds it on
 * *managed* runs, where the energy manager changes frequency mid-run
 * and the fast-path model forks per operating point (DESIGN.md section
 * 11.7). Each (benchmark x seed) cell runs under the manager in both
 * modes through exp::sweep::compareManagedModes, plus fixed-at-highest
 * baselines per mode, and the bench reports
 *
 *  - the managed-grid wall-clock speedup of sampled over exact,
 *  - per-cell managed total-time error and (the headline) achieved-
 *    slowdown error — how far the sampled S = T_managed/T_fixedHighest
 *    lands from the exact one, computed within-mode so systematic time
 *    bias cancels (the quantity fig6 reports),
 *  - sampling provenance: DVFS transitions observed, forced detail
 *    windows, and the adaptive gap-stretch histogram.
 *
 * Every measured configuration appends one dvfs-sweep-bench-v1 record
 * (mode="sampled", grid="managed") to BENCH_sweep.json. Error metrics
 * are deterministic — repeats reproduce them bit-for-bit; only wall
 * times move — so CI gates hard on them.
 *
 * Usage: fig10_managed_sampling [--benchmarks=4] [--seeds=1]
 *          [--startup-us=60] [--detail-us=30] [--gap-us=980]
 *          [--max-gap-us=0] [--drift-permille=50]
 *          [--workers=N] [--repeat=1] [--json=BENCH_sweep.json]
 *          [--fail-err-pct=X] [--fail-speedup=X]
 *          [--expect-managed-fingerprint=0x...]
 *
 * --fail-err-pct / --fail-speedup gate on mean |achieved-slowdown
 * error| / managed-grid speedup; --expect-managed-fingerprint pins the
 * sampled managed grid digest. --repeat measures N times, reports
 * minimum walls, and fails if any repeat's digest (either mode)
 * deviates.
 */

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hh"
#include "bench_util.hh"
#include "exp/sweep/differential.hh"
#include "exp/table.hh"

using namespace dvfs;

namespace {

/** Gap-stretch histogram as a JSON array for the trajectory row. */
std::string
gapStretchJson(const sim::SampleStats &s)
{
    std::ostringstream os;
    os << "[";
    for (int i = 0; i < sim::SampleStats::kGapStretchBuckets; ++i)
        os << (i ? "," : "") << s.gapStretch[i];
    os << "]";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FlagSet args("fig10_managed_sampling",
                        "managed sampled-vs-exact error bounds and "
                        "speedup");
    args.add("benchmarks", "N",
             "workloads from the DaCapo suite (default 4)")
        .add("seeds", "N", "replicate seeds per workload (default 1)")
        .addWorkers()
        .addSampling()
        .addRepeat()
        .addJson()
        .add("fail-err-pct", "X",
             "fail if mean |achieved-slowdown err| exceeds X percent")
        .add("fail-speedup", "X",
             "fail if managed-grid speedup falls below X")
        .add("expect-managed-fingerprint", "0x...",
             "pin the sampled managed digest");
    args.parse(argc, argv);

    const auto n_bench =
        static_cast<std::size_t>(args.getInt("benchmarks", 4));
    const auto n_seeds = static_cast<std::size_t>(args.getInt("seeds", 1));
    const std::string json_path = args.get("json", "BENCH_sweep.json");
    const unsigned workers = bench::sweepWorkers(args);
    const auto repeat =
        static_cast<unsigned>(std::max(1L, args.getInt("repeat", 1)));
    const double fail_err = args.getDouble("fail-err-pct", 0.0);
    const double fail_speedup = args.getDouble("fail-speedup", 0.0);
    const std::string expect_fp = args.get("expect-managed-fingerprint");

    const sim::SamplingConfig cfg = bench::samplingFromArgs(args);

    std::vector<wl::WorkloadParams> workloads;
    for (const auto &params : wl::dacapoSuite()) {
        if (workloads.size() >= n_bench)
            break;
        workloads.push_back(params);
    }
    const auto seeds = exp::sweep::SweepSpec::replicateSeeds(42, n_seeds);
    const auto table_vf = power::VfTable::haswell();
    const mgr::ManagerConfig mc;

    std::cout << "fig10_managed_sampling: " << workloads.size()
              << " benchmarks x " << seeds.size() << " seeds under the "
              << "energy manager, detail="
              << cfg.detailWindow / kTicksPerUs
              << "us gap=" << cfg.gapWindow / kTicksPerUs
              << "us max-gap=" << cfg.maxGapWindow / kTicksPerUs
              << "us, workers=" << workers << ", repeat=" << repeat
              << "\n\n";

    exp::sweep::ManagedComparison best;
    bool repeats_ok = true;
    for (unsigned r = 0; r < repeat; ++r) {
        auto cmp = exp::sweep::compareManagedModes(workloads, mc,
                                                   table_vf, cfg, seeds,
                                                   workers);
        if (r == 0) {
            best = std::move(cmp);
            continue;
        }
        if (cmp.exactDigest != best.exactDigest ||
            cmp.sampledDigest != best.sampledDigest) {
            std::cerr << "fig10_managed_sampling: digest drift across "
                         "repeats\n";
            repeats_ok = false;
        }
        best.exactWallSec = std::min(best.exactWallSec, cmp.exactWallSec);
        best.sampledWallSec =
            std::min(best.sampledWallSec, cmp.sampledWallSec);
    }

    const double cov = best.sampleTotals.coverage() * 100.0;
    exp::Table table({"cells", "cov %", "speedup", "time err %",
                      "slowdown err %", "transitions", "forced"});
    table.addRow(
        {std::to_string(best.cells), exp::Table::fmt(cov, 1),
         exp::Table::fmt(best.speedup(), 1),
         exp::Table::fmt(best.meanAbsTimeErrPct, 2) + " / " +
             exp::Table::fmt(best.maxAbsTimeErrPct, 2),
         exp::Table::fmt(best.meanAbsSlowdownErrPct, 2) + " / " +
             exp::Table::fmt(best.maxAbsSlowdownErrPct, 2),
         std::to_string(best.transitions),
         std::to_string(best.sampleTotals.forcedWindows)});
    table.print(std::cout);

    std::cout << "\ngap-stretch histogram (gaps entered at 1x,2x,...):"
              << " " << gapStretchJson(best.sampleTotals) << "\n";

    char fps[80];
    std::snprintf(fps, sizeof(fps),
                  "fingerprints: exact=0x%016llx sampled=0x%016llx\n",
                  static_cast<unsigned long long>(best.exactDigest),
                  static_cast<unsigned long long>(best.sampledDigest));
    std::cout << fps;

    bench::SweepJsonRecord rec(
        "fig10_managed_sampling",
        "gap=" + std::to_string(cfg.gapWindow / kTicksPerUs) +
            "us max-gap=" +
            std::to_string(cfg.maxGapWindow / kTicksPerUs) + "us");
    rec.add("mode", "sampled")
        .add("grid", "managed")
        .add("workers", static_cast<std::uint64_t>(workers))
        .add("cells", static_cast<std::uint64_t>(best.cells))
        .add("repeat", static_cast<std::uint64_t>(repeat))
        .add("startup_us",
             static_cast<std::uint64_t>(cfg.startupDetail / kTicksPerUs))
        .add("detail_us",
             static_cast<std::uint64_t>(cfg.detailWindow / kTicksPerUs))
        .add("gap_us",
             static_cast<std::uint64_t>(cfg.gapWindow / kTicksPerUs))
        .add("max_gap_us",
             static_cast<std::uint64_t>(cfg.maxGapWindow / kTicksPerUs))
        .add("drift_permille",
             static_cast<std::uint64_t>(cfg.driftThresholdPermille))
        .add("detail_coverage_pct", cov)
        .add("exact_wall_ms", best.exactWallSec * 1000.0)
        .add("sampled_wall_ms", best.sampledWallSec * 1000.0)
        .add("cells_per_sec",
             best.sampledWallSec > 0.0
                 ? static_cast<double>(best.cells) / best.sampledWallSec
                 : 0.0)
        .add("speedup_vs_exact", best.speedup())
        .add("mean_abs_time_err_pct", best.meanAbsTimeErrPct)
        .add("max_abs_time_err_pct", best.maxAbsTimeErrPct)
        .add("mean_abs_slowdown_err_pct", best.meanAbsSlowdownErrPct)
        .add("max_abs_slowdown_err_pct", best.maxAbsSlowdownErrPct)
        .add("slowdown_samples",
             static_cast<std::uint64_t>(best.slowdownSamples))
        .add("transitions", best.transitions)
        .add("forced_detail_windows", best.sampleTotals.forcedWindows)
        .add("ff_actions", best.sampleTotals.ffActions)
        .add("detail_actions", best.sampleTotals.detailActions)
        .add("ff_fallbacks", best.sampleTotals.ffFallbacks)
        .addHex("exact_fingerprint", best.exactDigest)
        .addHex("sampled_fingerprint", best.sampledDigest)
        .addRaw("gap_stretch", gapStretchJson(best.sampleTotals));
    rec.appendTo(json_path);
    std::cout << "appended 1 record to " << json_path << "\n";

    bool failed = !repeats_ok;
    if (fail_err > 0.0 && best.meanAbsSlowdownErrPct > fail_err) {
        std::cerr << "fig10_managed_sampling: mean |achieved-slowdown "
                     "err| " << best.meanAbsSlowdownErrPct
                  << "% exceeds the --fail-err-pct=" << fail_err
                  << " bound\n";
        failed = true;
    }
    if (fail_speedup > 0.0 && best.speedup() < fail_speedup) {
        std::cerr << "fig10_managed_sampling: speedup " << best.speedup()
                  << "x below the --fail-speedup=" << fail_speedup
                  << " bound\n";
        failed = true;
    }
    if (!expect_fp.empty()) {
        const std::uint64_t want = std::stoull(expect_fp, nullptr, 16);
        if (best.sampledDigest != want) {
            std::cerr << "fig10_managed_sampling: sampled managed "
                         "fingerprint "
                      << std::hex << best.sampledDigest
                      << " does not match expected " << want << std::dec
                      << " — the managed sampled path drifted\n";
            failed = true;
        } else {
            std::cout << "sampled managed fingerprint matches "
                         "--expect-managed-fingerprint\n";
        }
    }
    if (failed)
        return 1;
    std::cout << "all gates passed\n";
    return 0;
}
