/**
 * @file
 * Microbenchmarks (google-benchmark) for the predictor layer: what the
 * paper's "kernel module" would pay online, per epoch and per quantum.
 *
 * Predictors are constructed through the PredictorRegistry (the same
 * path fig3/ablation/replay use), so these numbers track the code the
 * harnesses actually run.
 */

#include <benchmark/benchmark.h>

#include "exp/experiment.hh"
#include "pred/registry.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

using namespace dvfs;
using namespace dvfs::pred;

namespace {

/** A reusable mid-size record (built once per process). */
const RunRecord &
sampleRecord()
{
    static RunRecord rec = [] {
        auto params = wl::syntheticSmall(4, 300);
        params.lockProb = 0.4;
        return exp::runFixed(params, Frequency::ghz(1.0)).record;
    }();
    return rec;
}

/** Registry shorthand: family over spec. */
std::unique_ptr<Predictor>
make(const char *family, ModelSpec spec)
{
    return PredictorRegistry::instance().make(family, spec);
}

} // namespace

static void
BM_DepBurstPredict(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    auto p = make("DEP", {BaseEstimator::Crit, true});
    for (auto _ : state)
        benchmark::DoNotOptimize(p->predict(rec, Frequency::ghz(4.0)));
    state.counters["epochs"] =
        static_cast<double>(rec.epochs.size());
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(rec.epochs.size()));
}
BENCHMARK(BM_DepBurstPredict);

static void
BM_DepPerEpochPredict(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    auto p = make("DEP/per-epoch", {BaseEstimator::Crit, true});
    for (auto _ : state)
        benchmark::DoNotOptimize(p->predict(rec, Frequency::ghz(4.0)));
}
BENCHMARK(BM_DepPerEpochPredict);

static void
BM_MCritPredict(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    auto p = make("M+CRIT", {BaseEstimator::Crit, false});
    for (auto _ : state)
        benchmark::DoNotOptimize(p->predict(rec, Frequency::ghz(4.0)));
}
BENCHMARK(BM_MCritPredict);

static void
BM_CoopPredict(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    auto p = make("COOP", {BaseEstimator::Crit, false});
    for (auto _ : state)
        benchmark::DoNotOptimize(p->predict(rec, Frequency::ghz(4.0)));
}
BENCHMARK(BM_CoopPredict);

/** The energy manager's inner loop: one quantum, all 25 points. */
static void
BM_ManagerQuantumSweep(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    // Concrete type on purpose: predictEpochRange is the manager-facing
    // epoch-span API, not part of the Predictor interface.
    DepPredictor p({BaseEstimator::Crit, true}, true);
    auto table = power::VfTable::haswell();
    const std::size_t window = std::min<std::size_t>(32, rec.epochs.size());
    for (auto _ : state) {
        Tick acc = 0;
        for (const auto &pt : table.points()) {
            double ratio = 4000.0 / pt.freq.toMHz();
            acc += p.predictEpochRange(rec.epochs, 0, window, ratio);
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_ManagerQuantumSweep);

/** Trace encode cost for the sample record. */
static void
BM_TraceEncode(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    trace::TraceMeta meta{"micro", 42};
    std::size_t bytes = 0;
    for (auto _ : state) {
        auto image = trace::encodeTrace(rec, meta);
        bytes = image.size();
        benchmark::DoNotOptimize(image.data());
    }
    state.counters["bytes"] = static_cast<double>(bytes);
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(bytes));
}
BENCHMARK(BM_TraceEncode);

/** Trace decode + validate cost (digest check included). */
static void
BM_TraceDecode(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    const auto image = trace::encodeTrace(rec, {"micro", 42});
    for (auto _ : state) {
        auto loaded = trace::decodeTrace(image);
        benchmark::DoNotOptimize(loaded.record().epochs.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(image.size()));
}
BENCHMARK(BM_TraceDecode);

BENCHMARK_MAIN();
