/**
 * @file
 * Microbenchmarks (google-benchmark) for the predictor layer: what the
 * paper's "kernel module" would pay online, per epoch and per quantum.
 */

#include <benchmark/benchmark.h>

#include "exp/experiment.hh"
#include "pred/predictors.hh"

using namespace dvfs;
using namespace dvfs::pred;

namespace {

/** A reusable mid-size record (built once per process). */
const RunRecord &
sampleRecord()
{
    static RunRecord rec = [] {
        auto params = wl::syntheticSmall(4, 300);
        params.lockProb = 0.4;
        return exp::runFixed(params, Frequency::ghz(1.0)).record;
    }();
    return rec;
}

} // namespace

static void
BM_DepBurstPredict(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    DepPredictor p({BaseEstimator::Crit, true}, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(p.predict(rec, Frequency::ghz(4.0)));
    state.counters["epochs"] =
        static_cast<double>(rec.epochs.size());
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(rec.epochs.size()));
}
BENCHMARK(BM_DepBurstPredict);

static void
BM_DepPerEpochPredict(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    DepPredictor p({BaseEstimator::Crit, true}, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(p.predict(rec, Frequency::ghz(4.0)));
}
BENCHMARK(BM_DepPerEpochPredict);

static void
BM_MCritPredict(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    MCritPredictor p({BaseEstimator::Crit, false});
    for (auto _ : state)
        benchmark::DoNotOptimize(p.predict(rec, Frequency::ghz(4.0)));
}
BENCHMARK(BM_MCritPredict);

static void
BM_CoopPredict(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    CoopPredictor p({BaseEstimator::Crit, false});
    for (auto _ : state)
        benchmark::DoNotOptimize(p.predict(rec, Frequency::ghz(4.0)));
}
BENCHMARK(BM_CoopPredict);

/** The energy manager's inner loop: one quantum, all 25 points. */
static void
BM_ManagerQuantumSweep(benchmark::State &state)
{
    const RunRecord &rec = sampleRecord();
    DepPredictor p({BaseEstimator::Crit, true}, true);
    auto table = power::VfTable::haswell();
    const std::size_t window = std::min<std::size_t>(32, rec.epochs.size());
    for (auto _ : state) {
        Tick acc = 0;
        for (const auto &pt : table.points()) {
            double ratio = 4000.0 / pt.freq.toMHz();
            acc += p.predictEpochRange(rec.epochs, 0, window, ratio);
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_ManagerQuantumSweep);

BENCHMARK_MAIN();
